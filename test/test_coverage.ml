(* Decision-space coverage tests (DESIGN.md §13).

   The unit tests drive [Obs.Coverage] directly on a tiny hand-built
   universe where every credit is checkable on paper: node visits along
   the action path, intra-path and junction ODG edges, the transition
   matrix and its episode-boundary reset, the entropy series. The
   property test closes the same determinism loop as attribution: the
   streaming table the trainer builds must equal, float for float, the
   brute-force recompute from the progress records it emitted — for
   sequential and pooled training alike, including the tick-aligned
   entropy samples. *)

module Obs = Posetrl_obs
module Cov = Obs.Coverage
module C = Posetrl_core
module O = Posetrl_odg
module W = Posetrl_workloads
module CG = Posetrl_codegen

let x86 = CG.Target.x86_64
let check_float = Alcotest.(check (float 1e-9))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* a 4-node chain a->b->c->d with three actions: [a;b], [c], [c;d] *)
let tiny_universe =
  { Cov.nodes = [| "a"; "b"; "c"; "d" |];
    Cov.edges = [| (0, 1); (1, 2); (2, 3) |];
    Cov.action_paths = [| [| 0; 1 |]; [| 2 |]; [| 2; 3 |] |] }

(* the walkthrough every unit test below shares: two episodes,
   exercising an intra-path edge, a junction edge and the boundary
   reset *)
let tiny_table () =
  let t = Cov.create tiny_universe in
  Cov.observe t ~action:0 ~pos:0 ~reward:1.0 ~r_binsize:0.5 ~r_throughput:0.25;
  Cov.observe t ~action:1 ~pos:1 ~reward:2.0 ~r_binsize:1.0 ~r_throughput:0.5;
  Cov.observe t ~action:2 ~pos:0 ~reward:4.0 ~r_binsize:2.0 ~r_throughput:1.0;
  t

let test_observe_semantics () =
  let t = tiny_table () in
  Alcotest.(check int) "steps" 3 (Cov.steps t);
  Alcotest.(check int) "episodes (two pos=0 marks)" 2 (Cov.episodes t);
  Alcotest.(check (list int)) "node visits along paths" [ 1; 1; 2; 1 ]
    (List.init 4 (Cov.node_visits t));
  Alcotest.(check int) "all nodes reached" 4 (Cov.nodes_visited t);
  (* edge (0,1) intra-path, (1,2) junction b->c, (2,3) intra-path *)
  Alcotest.(check int) "all edges reached" 3 (Cov.edges_visited t);
  check_float "edge pct" 100.0 (Cov.edge_pct t);
  Alcotest.(check int) "transition 0->1 recorded" 1
    (Cov.transition t ~from:0 ~to_:1);
  Alcotest.(check int) "episode boundary resets the cursor" 0
    (Cov.transition t ~from:1 ~to_:2);
  check_float "uniform 3-action entropy" (Float.log2 3.0) (Cov.entropy t);
  (* the junction edge carries the *current* step's reward split *)
  (match Cov.top_edges t ~k:10 with
   | [ (0, 1, 1, r01, _, _); (1, 2, 1, r12, rb12, rt12); (2, 3, 1, r23, _, _) ]
     ->
     check_float "intra-path edge reward" 1.0 r01;
     check_float "junction edge takes step reward" 2.0 r12;
     check_float "junction binsize" 1.0 rb12;
     check_float "junction throughput" 0.5 rt12;
     check_float "second episode edge" 4.0 r23
   | es -> Alcotest.failf "unexpected top_edges (%d rows)" (List.length es));
  Alcotest.(check (list (triple int int int))) "one transition" [ (0, 1, 1) ]
    (Cov.top_transitions t ~k:5)

let test_create_validates () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty action set rejected" true
    (raises (fun () ->
         Cov.create
           { Cov.nodes = [| "a" |]; Cov.edges = [||]; Cov.action_paths = [||] }));
  Alcotest.(check bool) "edge endpoint out of range rejected" true
    (raises (fun () ->
         Cov.create
           { Cov.nodes = [| "a" |];
             Cov.edges = [| (0, 5) |];
             Cov.action_paths = [| [| 0 |] |] }));
  Alcotest.(check bool) "out-of-range action rejected" true
    (raises (fun () ->
         Cov.observe (tiny_table ()) ~action:7 ~pos:0 ~reward:0.0 ~r_binsize:0.0
           ~r_throughput:0.0))

let test_sample_series () =
  let t = Cov.create tiny_universe in
  Cov.sample t ~step:0;
  Cov.observe t ~action:0 ~pos:0 ~reward:1.0 ~r_binsize:0.0 ~r_throughput:0.0;
  Cov.sample t ~step:1;
  match Cov.series t with
  | [ (0, p0, e0); (1, p1, e1) ] ->
    check_float "empty table: 0%" 0.0 p0;
    check_float "empty table: 0 bits" 0.0 e0;
    check_float "one edge of three" (100.0 /. 3.0) p1;
    check_float "single action: 0 bits" 0.0 e1
  | s -> Alcotest.failf "unexpected series length %d" (List.length s)

let test_json_roundtrip_exact () =
  let t = tiny_table () in
  Cov.observe_state t [| 0.5; -1.25; 3.0 |];
  Cov.sample t ~step:3;
  let doc = Cov.to_json t in
  (* a serialize → parse → deserialize cycle through the %.17g printer
     must reproduce the table exactly *)
  match Cov.of_json (Obs.Json.of_string (Obs.Json.to_string doc)) with
  | None -> Alcotest.fail "coverage did not round-trip"
  | Some t' ->
    Alcotest.(check bool) "exact equality after round-trip" true
      (Cov.equal t t');
    Alcotest.(check int) "episodes preserved" (Cov.episodes t)
      (Cov.episodes t');
    Alcotest.(check int) "sketch occupancy preserved" (Cov.sketch_occupied t)
      (Cov.sketch_occupied t')

let test_of_json_robust () =
  let bad =
    [ Obs.Json.Str "x";
      Obs.Json.Obj [ ("kind", Obs.Json.Str "coverage") ];
      (* structurally complete but with an edge endpoint out of range:
         the embedded universe must re-validate, not crash *)
      (match Cov.to_json (tiny_table ()) with
       | Obs.Json.Obj fields ->
         Obs.Json.Obj
           (List.map
              (function
                | "universe", _ ->
                  ( "universe",
                    Obs.Json.Obj
                      [ ("nodes", Obs.Json.Arr [ Obs.Json.Str "a" ]);
                        ("edges",
                         Obs.Json.Arr
                           [ Obs.Json.Arr [ Obs.Json.Int 0; Obs.Json.Int 9 ] ]);
                        ("action_paths",
                         Obs.Json.Arr [ Obs.Json.Arr [ Obs.Json.Int 0 ] ]) ] )
                | kv -> kv)
              fields)
       | j -> j) ]
  in
  List.iter
    (fun doc ->
      Alcotest.(check bool) "malformed doc is None" true (Cov.of_json doc = None))
    bad

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_run_coverage_file () =
  let dir = Filename.temp_file "posetrl_cov" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let rdir = Filename.concat dir "r1" in
      let run =
        Obs.Run.create ~dir:rdir ~name:"r1"
          ~meta:[ ("kind", Obs.Json.Str "train") ]
          ()
      in
      let info () = Obs.Run.find rdir in
      Alcotest.(check bool) "absent file is None" true
        (Obs.Run.read_coverage (info ()) = None);
      Obs.Run.write_coverage run (Cov.to_json (tiny_table ()));
      Obs.Run.finish run;
      (match Option.bind (Obs.Run.read_coverage (info ())) Cov.of_json with
       | Some t -> Alcotest.(check int) "written table read back" 3 (Cov.steps t)
       | None -> Alcotest.fail "coverage.json should read back");
      (* a torn write must degrade to None, never an exception *)
      let oc = open_out (Obs.Run.coverage_path rdir) in
      output_string oc "{\"kind\": \"cov";
      close_out oc;
      Alcotest.(check bool) "corrupt file is None" true
        (Obs.Run.read_coverage (info ()) = None))

let test_to_dot_heat () =
  let t = Cov.create tiny_universe in
  (* five episodes of action 0: edge (0,1) hot, (1,2)/(2,3) unvisited *)
  for _ = 1 to 5 do
    Cov.observe t ~action:0 ~pos:0 ~reward:0.0 ~r_binsize:0.0 ~r_throughput:0.0
  done;
  let dot = Cov.to_dot ~k:2 t in
  Alcotest.(check bool) "same header as odg --dot" true
    (String.starts_with ~prefix:"digraph odg {\n  rankdir=LR;\n" dot);
  (* b and c both touch two universe edges: critical at k=2 *)
  Alcotest.(check bool) "critical node styled" true
    (contains dot "\"b\" [shape=doublecircle,style=bold];");
  Alcotest.(check bool) "visited edge carries its count" true
    (contains dot "\"a\" -> \"b\" [color=\"#cc0000\",penwidth=4.00,label=\"5\"];");
  Alcotest.(check bool) "unvisited edge dashed" true
    (contains dot "\"c\" -> \"d\" [style=dashed,color=\"#cccccc\"];");
  Alcotest.(check bool) "closed" true (String.ends_with ~suffix:"}\n" dot)

let test_sketch_deterministic () =
  let mk () = Cov.create ~sketch_bits:4 ~sketch_seed:7 ~state_dim:8 tiny_universe in
  let states =
    List.init 16 (fun i ->
        Array.init 8 (fun j -> Float.sin (float_of_int ((i * 8) + j))))
  in
  let a = mk () and b = mk () in
  List.iter (Cov.observe_state a) states;
  List.iter (Cov.observe_state b) states;
  Alcotest.(check (array int)) "same seed + stream = same buckets"
    (Cov.sketch_buckets a) (Cov.sketch_buckets b);
  Alcotest.(check bool) "occupancy within 2^bits" true
    (Cov.sketch_occupied a >= 1 && Cov.sketch_occupied a <= 16)

(* --- coverage universe over the real ODG ------------------------------------ *)

let test_coverage_universe_shape () =
  let u = C.Trainer.coverage_universe O.Action_space.odg in
  let g = Lazy.force O.Graph.default in
  Alcotest.(check int) "one path per action"
    (O.Action_space.n_actions O.Action_space.odg)
    (Array.length u.Cov.action_paths);
  Alcotest.(check bool) "at least the ODG nodes" true
    (Array.length u.Cov.nodes >= O.Graph.node_count g);
  Alcotest.(check int) "all ODG edges present" (O.Graph.edge_count g)
    (Array.length u.Cov.edges);
  (* a table over the real universe accepts every action *)
  let t = Cov.create u in
  for a = 0 to Array.length u.Cov.action_paths - 1 do
    Cov.observe t ~action:a ~pos:0 ~reward:0.0 ~r_binsize:0.0 ~r_throughput:0.0
  done;
  Alcotest.(check bool) "every-action sweep visits edges" true
    (Cov.edges_visited t > 0)

(* --- streaming = recompute (the determinism property) ------------------------ *)

(* 250 steps so one progress tick (step 200) lands mid-run: the
   recompute has to interleave the entropy sample into the flattened
   episode stream at exactly the right step. *)
let cov_hp =
  { C.Trainer.fast with
    C.Trainer.total_steps = 250;
    C.Trainer.epsilon =
      Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.2 ~decay_steps:150 ();
    C.Trainer.warmup_steps = 32;
    C.Trainer.target_sync_every = 60 }

(* One short training run; returns the streaming table and the progress
   records (ticks and episodes interleaved) exactly as the CLI would
   persist them to progress.jsonl. *)
let train_capture ~seed ~jobs =
  let corpus = W.Genprog.corpus ~n:4 () in
  let records = ref [] in
  let on_progress (p : C.Trainer.progress) =
    records :=
      Obs.Runlog.tick_record ~step:p.C.Trainer.step
        ~episode:p.C.Trainer.episode ~epsilon:p.C.Trainer.epsilon_now
        ~mean_reward:p.C.Trainer.mean_reward
        ~mean_size_gain:p.C.Trainer.mean_size_gain
        ~r_binsize:p.C.Trainer.r_binsize
        ~r_throughput:p.C.Trainer.r_throughput ~loss:p.C.Trainer.loss ()
      :: !records
  in
  let on_episode (e : C.Trainer.episode_summary) =
    records :=
      Obs.Runlog.episode_record ~actions:e.C.Trainer.ep_actions
        ~step_rewards:e.C.Trainer.ep_step_rewards ~episode:e.C.Trainer.ep_index
        ~step:e.C.Trainer.ep_end_step ~reward:e.C.Trainer.ep_reward
        ~r_binsize:e.C.Trainer.ep_r_binsize
        ~r_throughput:e.C.Trainer.ep_r_throughput
        ~size_gain_pct:e.C.Trainer.ep_size_gain_pct
        ~thru_gain_pct:e.C.Trainer.ep_thru_gain_pct
        ~epsilon:e.C.Trainer.ep_epsilon ~loss:e.C.Trainer.ep_loss ()
      :: !records
  in
  let train pool =
    C.Trainer.train ?pool ~hp:cov_hp ~on_progress ~on_episode ~seed ~corpus
      ~actions:O.Action_space.manual ~target:x86 ()
  in
  let res =
    if jobs <= 1 then train None
    else
      Posetrl_support.Pool.with_pool ~name:"test-coverage" ~jobs (fun p ->
          train (Some p))
  in
  (res.C.Trainer.coverage, List.rev !records)

let prop_streaming_eq_recompute =
  QCheck2.Test.make ~count:2
    ~name:"streaming coverage = ledger recompute (jobs 1 and 4)"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      List.for_all
        (fun jobs ->
          let streaming, records = train_capture ~seed ~jobs in
          (* serialize through JSON strings first: the recompute must
             hold over what's actually on disk, not in-memory values *)
          let reread =
            List.map
              (fun r -> Obs.Json.of_string (Obs.Json.to_string r))
              records
          in
          let brute = Cov.of_records ~like:(Cov.universe streaming) reread in
          Cov.equal streaming brute)
        [ 1; 4 ])

let suite =
  [ Alcotest.test_case "observe credits nodes/edges/transitions" `Quick
      test_observe_semantics;
    Alcotest.test_case "create and observe validate indices" `Quick
      test_create_validates;
    Alcotest.test_case "sample appends the entropy series" `Quick
      test_sample_series;
    Alcotest.test_case "coverage json round-trip is exact" `Quick
      test_json_roundtrip_exact;
    Alcotest.test_case "coverage reader rejects malformed docs" `Quick
      test_of_json_robust;
    Alcotest.test_case "run ledger coverage.json read/write hardened" `Quick
      test_run_coverage_file;
    Alcotest.test_case "heat dot export" `Quick test_to_dot_heat;
    Alcotest.test_case "state sketch is seed-deterministic" `Quick
      test_sketch_deterministic;
    Alcotest.test_case "universe over the real ODG" `Quick
      test_coverage_universe_shape;
    QCheck_alcotest.to_alcotest prop_streaming_eq_recompute ]
