(* Tests for the MiniIR core: types, values, instructions, builder,
   verifier, printer/parser round trips, CFG, dominators, loops. *)

open Posetrl_ir

let test_type_sizes () =
  Alcotest.(check int) "i1" 1 (Types.size_bytes Types.I1);
  Alcotest.(check int) "i8" 1 (Types.size_bytes Types.I8);
  Alcotest.(check int) "i32" 4 (Types.size_bytes Types.I32);
  Alcotest.(check int) "i64" 8 (Types.size_bytes Types.I64);
  Alcotest.(check int) "f64" 8 (Types.size_bytes Types.F64);
  Alcotest.(check int) "ptr" 8 (Types.size_bytes Types.Ptr);
  Alcotest.(check int) "vec" 32 (Types.size_bytes (Types.Vec (Types.I64, 4)))

let test_type_wrap () =
  Alcotest.(check int64) "i8 wrap 200" (-56L) (Types.wrap Types.I8 200L);
  Alcotest.(check int64) "i8 wrap -1" (-1L) (Types.wrap Types.I8 (-1L));
  Alcotest.(check int64) "i32 wrap 2^31" (-2147483648L) (Types.wrap Types.I32 2147483648L);
  Alcotest.(check int64) "i1 wrap 3" 1L (Types.wrap Types.I1 3L);
  Alcotest.(check int64) "i64 identity" 123456789L (Types.wrap Types.I64 123456789L)

let test_type_strings () =
  Alcotest.(check string) "vec" "<4 x i32>" (Types.to_string (Types.Vec (Types.I32, 4)));
  Alcotest.(check string) "ptr" "ptr" (Types.to_string Types.Ptr)

let test_value_equal () =
  Alcotest.(check bool) "int eq" true (Value.equal (Value.ci64 5) (Value.ci64 5));
  Alcotest.(check bool) "nan eq nan (bitwise)" true
    (Value.equal (Value.cfloat Float.nan) (Value.cfloat Float.nan));
  Alcotest.(check bool) "reg eq" true (Value.equal (Value.Reg 3) (Value.Reg 3));
  Alcotest.(check bool) "reg ne" false (Value.equal (Value.Reg 3) (Value.Reg 4))

let test_value_predicates () =
  Alcotest.(check bool) "zero" true (Value.is_zero (Value.ci64 0));
  Alcotest.(check bool) "null is zero" true (Value.is_zero Value.cnull);
  Alcotest.(check bool) "one" true (Value.is_one (Value.ci64 1));
  Alcotest.(check bool) "all ones" true (Value.is_all_ones (Value.cint Types.I64 (-1L)))

let test_instr_operands () =
  let op = Instr.Select (Types.I64, Value.Reg 0, Value.Reg 1, Value.ci64 2) in
  Alcotest.(check int) "select has 3 operands" 3 (List.length (Instr.operands op));
  let mapped = Instr.map_operands (fun _ -> Value.ci64 9) op in
  Alcotest.(check int) "mapped all" 3
    (List.length (List.filter (Value.equal (Value.ci64 9)) (Instr.operands mapped)))

let test_instr_purity () =
  Alcotest.(check bool) "add pure" true
    (Instr.is_pure (Instr.Binop (Instr.Add, Types.I64, Value.Reg 0, Value.Reg 1)));
  Alcotest.(check bool) "div by var impure" false
    (Instr.is_pure (Instr.Binop (Instr.Sdiv, Types.I64, Value.Reg 0, Value.Reg 1)));
  Alcotest.(check bool) "div by const pure" true
    (Instr.is_pure (Instr.Binop (Instr.Sdiv, Types.I64, Value.Reg 0, Value.ci64 3)));
  Alcotest.(check bool) "store impure" false
    (Instr.is_pure (Instr.Store (Types.I64, Value.Reg 0, Value.Reg 1)));
  Alcotest.(check bool) "load reads memory" true
    (Instr.reads_memory (Instr.Load (Types.I64, Value.Reg 0)))

let test_instr_successors () =
  Alcotest.(check (list string)) "cbr" [ "a"; "b" ]
    (Instr.successors (Instr.Cbr (Value.Reg 0, "a", "b")));
  Alcotest.(check (list string)) "cbr same" [ "a" ]
    (Instr.successors (Instr.Cbr (Value.Reg 0, "a", "a")));
  Alcotest.(check (list string)) "switch dedup" [ "a"; "d" ]
    (Instr.successors (Instr.Switch (Types.I64, Value.Reg 0, [ (1L, "a"); (2L, "a") ], "d")))

let test_icmp_helpers () =
  Alcotest.(check bool) "swap slt" true (Instr.swap_icmp Instr.Slt = Instr.Sgt);
  Alcotest.(check bool) "negate sle" true (Instr.negate_icmp Instr.Sle = Instr.Sgt);
  Alcotest.(check bool) "commutative add" true (Instr.is_commutative Instr.Add);
  Alcotest.(check bool) "non-commutative sub" false (Instr.is_commutative Instr.Sub)

let test_builder_basic () =
  let m = Testutil.sum_squares_module () in
  Alcotest.(check (list string)) "no verifier errors" []
    (List.map Verifier.error_to_string (Verifier.verify_module m));
  Alcotest.(check string) "executes" "285" (Testutil.ret_of m)

let test_builder_unterminated () =
  let b = Builder.create ~name:"f" ~params:[] ~ret:Types.Void () in
  Builder.block b "entry";
  Alcotest.(check bool) "finish raises" true
    (try ignore (Builder.finish b); false with Invalid_argument _ -> true)

let test_verifier_catches_undefined_reg () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  Builder.ret b Types.I64 (Value.Reg 99);
  let m = Modul.mk ~name:"bad" [ Builder.finish b ] in
  Alcotest.(check bool) "caught" false (Verifier.is_valid m)

let test_verifier_catches_bad_label () =
  let blk = Block.mk "entry" [] (Instr.Br "nowhere") in
  let f =
    Func.mk ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.Void
      ~blocks:[ blk ] ~next_id:0 ()
  in
  Alcotest.(check bool) "caught" false (Verifier.is_valid (Modul.mk ~name:"bad" [ f ]))

let test_verifier_catches_duplicate_def () =
  let insns =
    [ Instr.mk 0 (Instr.Binop (Instr.Add, Types.I64, Value.ci64 1, Value.ci64 2));
      Instr.mk 0 (Instr.Binop (Instr.Add, Types.I64, Value.ci64 1, Value.ci64 2)) ]
  in
  let blk = Block.mk "entry" insns (Instr.Ret (Some (Types.I64, Value.Reg 0))) in
  let f =
    Func.mk ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64
      ~blocks:[ blk ] ~next_id:2 ()
  in
  Alcotest.(check bool) "caught" false (Verifier.is_valid (Modul.mk ~name:"bad" [ f ]))

let test_verifier_catches_phi_after_insn () =
  let insns =
    [ Instr.mk 0 (Instr.Binop (Instr.Add, Types.I64, Value.ci64 1, Value.ci64 2));
      Instr.mk 1 (Instr.Phi (Types.I64, [])) ]
  in
  let blk = Block.mk "entry" insns (Instr.Ret (Some (Types.I64, Value.Reg 0))) in
  let f =
    Func.mk ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64
      ~blocks:[ blk ] ~next_id:2 ()
  in
  Alcotest.(check bool) "caught" false (Verifier.is_valid (Modul.mk ~name:"bad" [ f ]))

let test_verifier_ret_type () =
  let blk = Block.mk "entry" [] (Instr.Ret None) in
  let f =
    Func.mk ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64
      ~blocks:[ blk ] ~next_id:0 ()
  in
  Alcotest.(check bool) "caught" false (Verifier.is_valid (Modul.mk ~name:"bad" [ f ]))

let test_verifier_accepts_suites () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check (list string)) (name ^ " verifies") []
        (List.map Verifier.error_to_string (Verifier.verify_module m)))
    (Posetrl_workloads.Suites.all_programs ())

(* a cbr diamond where "right" uses a reg defined only on "left":
   structurally fine, SSA-dominance invalid *)
let undominated_use_module () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let c = Builder.icmp b Instr.Slt Types.I64 (Value.ci64 1) (Value.ci64 2) in
  Builder.cbr b c "left" "right";
  Builder.block b "left";
  let x = Builder.add b Types.I64 (Value.ci64 1) (Value.ci64 2) in
  Builder.ret b Types.I64 x;
  Builder.block b "right";
  let y = Builder.add b Types.I64 x (Value.ci64 3) in
  Builder.ret b Types.I64 y;
  Modul.mk ~name:"undom" [ Builder.finish b ]

let test_verifier_dom_catches_undominated_use () =
  let m = undominated_use_module () in
  Alcotest.(check bool) "structural check passes" true (Verifier.is_valid m);
  Alcotest.(check bool) "dominance check fails" false (Verifier.is_valid ~dom:true m)

let test_verifier_dom_phi_pred_rule () =
  (* a phi may name a value defined in the predecessor itself — that is
     dominance-legal (def-block dominates the incoming edge's source) *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let c = Builder.icmp b Instr.Slt Types.I64 (Value.ci64 1) (Value.ci64 2) in
  Builder.cbr b c "left" "right";
  Builder.block b "left";
  let l = Builder.add b Types.I64 (Value.ci64 1) (Value.ci64 2) in
  Builder.br b "join";
  Builder.block b "right";
  let r = Builder.add b Types.I64 (Value.ci64 3) (Value.ci64 4) in
  Builder.br b "join";
  Builder.block b "join";
  let p = Builder.phi b Types.I64 [ ("left", l); ("right", r) ] in
  Builder.ret b Types.I64 p;
  let m = Modul.mk ~name:"phi_ok" [ Builder.finish b ] in
  Alcotest.(check (list string)) "phi incoming from defining pred is legal" []
    (List.map Verifier.error_to_string (Verifier.verify_module ~dom:true m))

let test_verifier_dom_accepts_suites () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check (list string)) (name ^ " verifies with ~dom") []
        (List.map Verifier.error_to_string (Verifier.verify_module ~dom:true m)))
    (Posetrl_workloads.Suites.all_programs ())

let test_roundtrip_sum_squares () =
  let m = Testutil.sum_squares_module () in
  let text = Printer.module_to_string m in
  let m' = Parser.parse_module text in
  Alcotest.(check string) "reprint equal" text (Printer.module_to_string m');
  Alcotest.(check string) "same behaviour" (Testutil.ret_of m) (Testutil.ret_of m')

let test_roundtrip_suites () =
  List.iter
    (fun (name, m) ->
      let text = Printer.module_to_string m in
      let m' = Parser.parse_module text in
      Alcotest.(check string) (name ^ " roundtrip") text (Printer.module_to_string m'))
    (Posetrl_workloads.Suites.all_programs ())

let test_parser_rejects_garbage () =
  Alcotest.(check bool) "parse error" true
    (try ignore (Parser.parse_module "module x\nfunc oops"); false
     with Parser.Parse_error _ -> true)

let test_parser_global_forms () =
  let text =
    "module g\n\
     internal const @tbl: i64 x 3 = ints [1, 2, 3]\n\
     internal global @buf: i8 x 16 = zeroinit\n\
     internal const @msg: i8 x 3 = bytes \"hi\\n\"\n\
     func @main(): i64 {\n\
     entry:\n\
     \  %0 = load i64, @tbl\n\
     \  ret i64 %0\n\
     }\n"
  in
  let m = Parser.parse_module text in
  Alcotest.(check int) "3 globals" 3 (List.length m.Modul.globals);
  Alcotest.(check string) "runs" "1" (Testutil.ret_of m)

(* --- CFG / dominators / loops ------------------------------------------- *)

let diamond_func () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let c = Builder.icmp b Instr.Slt Types.I64 (Value.ci64 1) (Value.ci64 2) in
  Builder.cbr b c "then" "else";
  Builder.block b "then";
  Builder.br b "join";
  Builder.block b "else";
  Builder.br b "join";
  Builder.block b "join";
  let p = Builder.phi b Types.I64 [ ("then", Value.ci64 1); ("else", Value.ci64 2) ] in
  Builder.ret b Types.I64 p;
  Builder.finish b

let test_cfg_preds_succs () =
  let f = diamond_func () in
  let cfg = Cfg.of_func f in
  Alcotest.(check (list string)) "entry succs" [ "then"; "else" ] (Cfg.succs cfg "entry");
  Alcotest.(check int) "join preds" 2 (List.length (Cfg.preds cfg "join"));
  Alcotest.(check (list string)) "join succs" [] (Cfg.succs cfg "join")

let test_cfg_rpo () =
  let f = diamond_func () in
  let cfg = Cfg.of_func f in
  let rpo = Cfg.rpo cfg in
  Alcotest.(check string) "entry first" "entry" (List.hd rpo);
  Alcotest.(check string) "join last" "join" (List.nth rpo 3);
  Alcotest.(check int) "all blocks" 4 (List.length rpo)

let test_dominators_diamond () =
  let f = diamond_func () in
  let dom = Dom.of_func f in
  Alcotest.(check bool) "entry dominates join" true (Dom.dominates dom "entry" "join");
  Alcotest.(check bool) "then does not dominate join" false
    (Dom.dominates dom "then" "join");
  Alcotest.(check (option string)) "idom of join" (Some "entry") (Dom.idom dom "join");
  Alcotest.(check bool) "reflexive" true (Dom.dominates dom "then" "then")

let test_loops_detection () =
  let m = Testutil.sum_squares_module () in
  let f = Testutil.main_func m in
  let li = Loops.compute f in
  Alcotest.(check int) "one loop" 1 (Loops.loop_count li);
  let l = List.hd li.Loops.loops in
  Alcotest.(check string) "header" "loop" l.Loops.header;
  Alcotest.(check int) "depth of loop" 1 (Loops.depth li "loop");
  Alcotest.(check int) "depth of entry" 0 (Loops.depth li "entry")

let test_loops_nested_depth () =
  let open Posetrl_workloads in
  let m = Mibench.dijkstra () in
  let f = Testutil.main_func m in
  let li = Loops.compute f in
  let max_depth = List.fold_left (fun d l -> max d l.Loops.depth) 0 li.Loops.loops in
  Alcotest.(check bool) "has nested loops" true (max_depth >= 2)

let test_func_use_counts () =
  let m = Testutil.sum_squares_module () in
  let f = Testutil.main_func m in
  let uses = Func.use_counts f in
  (* register 2 (alloca i) is loaded and stored: at least 2 uses *)
  Alcotest.(check bool) "alloca used" true (Hashtbl.length uses > 0)

let test_modul_callgraph () =
  let m = Testutil.sum_squares_module () in
  Alcotest.(check (list string)) "main calls square" [ "square" ]
    (Modul.callees (Testutil.main_func m));
  Alcotest.(check (list string)) "square called by main" [ "main" ]
    (Modul.callers m "square")

let suite =
  [ Alcotest.test_case "type sizes" `Quick test_type_sizes;
    Alcotest.test_case "type wrap" `Quick test_type_wrap;
    Alcotest.test_case "type strings" `Quick test_type_strings;
    Alcotest.test_case "value equal" `Quick test_value_equal;
    Alcotest.test_case "value predicates" `Quick test_value_predicates;
    Alcotest.test_case "instr operands" `Quick test_instr_operands;
    Alcotest.test_case "instr purity" `Quick test_instr_purity;
    Alcotest.test_case "instr successors" `Quick test_instr_successors;
    Alcotest.test_case "icmp helpers" `Quick test_icmp_helpers;
    Alcotest.test_case "builder basic" `Quick test_builder_basic;
    Alcotest.test_case "builder unterminated" `Quick test_builder_unterminated;
    Alcotest.test_case "verifier undefined reg" `Quick test_verifier_catches_undefined_reg;
    Alcotest.test_case "verifier bad label" `Quick test_verifier_catches_bad_label;
    Alcotest.test_case "verifier duplicate def" `Quick test_verifier_catches_duplicate_def;
    Alcotest.test_case "verifier phi position" `Quick test_verifier_catches_phi_after_insn;
    Alcotest.test_case "verifier ret type" `Quick test_verifier_ret_type;
    Alcotest.test_case "verifier accepts suites" `Quick test_verifier_accepts_suites;
    Alcotest.test_case "verifier ~dom catches undominated use" `Quick
      test_verifier_dom_catches_undominated_use;
    Alcotest.test_case "verifier ~dom phi-pred rule" `Quick test_verifier_dom_phi_pred_rule;
    Alcotest.test_case "verifier ~dom accepts suites" `Quick test_verifier_dom_accepts_suites;
    Alcotest.test_case "roundtrip sum_squares" `Quick test_roundtrip_sum_squares;
    Alcotest.test_case "roundtrip suites" `Quick test_roundtrip_suites;
    Alcotest.test_case "parser rejects garbage" `Quick test_parser_rejects_garbage;
    Alcotest.test_case "parser global forms" `Quick test_parser_global_forms;
    Alcotest.test_case "cfg preds/succs" `Quick test_cfg_preds_succs;
    Alcotest.test_case "cfg rpo" `Quick test_cfg_rpo;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "loops detection" `Quick test_loops_detection;
    Alcotest.test_case "loops nested depth" `Quick test_loops_nested_depth;
    Alcotest.test_case "func use counts" `Quick test_func_use_counts;
    Alcotest.test_case "module callgraph" `Quick test_modul_callgraph ]
