(* Tests for the observability layer (Posetrl_obs): metric semantics,
   span nesting and self-time under a fake clock, and the JSONL sink →
   report aggregator round trip. *)

module Obs = Posetrl_obs
module M = Obs.Metrics
module Span = Obs.Span
module Event = Obs.Event

let check_float = Alcotest.(check (float 1e-9))

(* --- metrics ---------------------------------------------------------------- *)

let test_counter () =
  let r = M.create () in
  let c = M.counter ~r "posetrl.test.hits" in
  M.inc c;
  M.inc ~by:2.5 c;
  (match M.value ~r "posetrl.test.hits" with
   | Some v -> check_float "total" 3.5 v
   | None -> Alcotest.fail "counter not registered");
  (* a second lookup hits the same cell *)
  M.inc (M.counter ~r "posetrl.test.hits");
  check_float "shared cell" 4.5 (Option.get (M.value ~r "posetrl.test.hits"))

let test_labels () =
  let r = M.create () in
  M.inc (M.counter ~r ~labels:[ ("space", "odg") ] "posetrl.test.runs");
  M.inc ~by:5.0 (M.counter ~r ~labels:[ ("space", "manual") ] "posetrl.test.runs");
  check_float "odg series" 1.0
    (Option.get (M.value ~r ~labels:[ ("space", "odg") ] "posetrl.test.runs"));
  check_float "manual series" 5.0
    (Option.get (M.value ~r ~labels:[ ("space", "manual") ] "posetrl.test.runs"));
  (* label order does not create a new series *)
  let c =
    M.counter ~r ~labels:[ ("b", "2"); ("a", "1") ] "posetrl.test.multi"
  in
  M.inc c;
  check_float "label order normalized" 1.0
    (Option.get (M.value ~r ~labels:[ ("a", "1"); ("b", "2") ] "posetrl.test.multi"))

let test_gauge () =
  let r = M.create () in
  let g = M.gauge ~r "posetrl.test.eps" in
  M.set g 1.0;
  M.set g 0.25;
  check_float "last write wins" 0.25 (Option.get (M.value ~r "posetrl.test.eps"))

let test_histogram () =
  let r = M.create () in
  let h = M.histogram ~r ~buckets:[| 1.0; 2.0; 5.0 |] "posetrl.test.lat" in
  M.observe h 0.5;
  M.observe h 1.5;
  M.observe h 10.0;
  (* histogram is not readable as a scalar *)
  Alcotest.(check (option (float 0.0))) "no scalar value" None
    (M.value ~r "posetrl.test.lat");
  match M.snapshot ~r () with
  | [ row ] ->
    Alcotest.(check string) "kind" "histogram" row.M.row_kind;
    Alcotest.(check int) "count" 3 row.M.row_count;
    check_float "mean" 4.0 row.M.row_value
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

(* quantile summary at the edges: no data, one observation, overflow *)
let hist_detail r name =
  match
    List.find_opt (fun row -> row.M.row_name = name) (M.snapshot ~r ())
  with
  | Some row -> row.M.row_detail
  | None -> Alcotest.failf "no row for %s" name

let test_histogram_empty () =
  let r = M.create () in
  ignore (M.histogram ~r ~buckets:[| 1.0; 2.0 |] "posetrl.test.empty");
  Alcotest.(check string) "no quantiles without data" "p50<=- p95<=- sum=0"
    (hist_detail r "posetrl.test.empty");
  (match M.snapshot ~r () with
   | [ row ] ->
     Alcotest.(check int) "count 0" 0 row.M.row_count;
     check_float "mean 0 by convention" 0.0 row.M.row_value
   | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))

let test_histogram_single_observation () =
  let r = M.create () in
  let h = M.histogram ~r ~buckets:[| 1.0; 2.0; 5.0 |] "posetrl.test.one" in
  M.observe h 1.5;
  (* every quantile of a single sample is its covering bucket bound *)
  Alcotest.(check string) "both quantiles in the 2.0 bucket"
    "p50<=2 p95<=2 sum=1.5"
    (hist_detail r "posetrl.test.one")

let test_histogram_overflow_bucket () =
  let r = M.create () in
  let h = M.histogram ~r ~buckets:[| 1.0; 2.0 |] "posetrl.test.over" in
  M.observe h 0.5;
  M.observe h 100.0;
  M.observe h 200.0;
  (* 2 of 3 samples exceed every bound: p95 lands in the implicit +inf
     bucket, p50 on the last finite bound's successor *)
  Alcotest.(check string) "overflow renders +inf" "p50<=+inf p95<=+inf sum=300.5"
    (hist_detail r "posetrl.test.over");
  M.observe h 0.6;
  M.observe h 0.7;
  Alcotest.(check string) "median back in range once most samples fit"
    "p50<=1 p95<=+inf sum=301.8"
    (hist_detail r "posetrl.test.over")

let test_kind_clash () =
  let r = M.create () in
  ignore (M.counter ~r "posetrl.test.k");
  Alcotest.(check bool) "kind clash raises" true
    (try ignore (M.gauge ~r "posetrl.test.k"); false
     with Invalid_argument _ -> true)

let test_snapshot_sorted () =
  let r = M.create () in
  ignore (M.counter ~r "posetrl.z");
  ignore (M.counter ~r "posetrl.a");
  ignore (M.gauge ~r "posetrl.m");
  let names = List.map (fun row -> row.M.row_name) (M.snapshot ~r ()) in
  Alcotest.(check (list string)) "sorted by name"
    [ "posetrl.a"; "posetrl.m"; "posetrl.z" ] names

(* --- spans ------------------------------------------------------------------- *)

let with_memory_sink f =
  let sink, events = Obs.Sink.memory () in
  Span.with_sink sink (fun () -> f events)

let test_span_disabled () =
  (* no sink: result passthrough, nothing recorded anywhere *)
  Alcotest.(check bool) "disabled" false (Span.enabled ());
  let r = Span.with_ "posetrl.test.noop" (fun _ -> 42) in
  Alcotest.(check int) "result" 42 r

let test_span_nesting () =
  Obs.Clock.with_fake (fun advance ->
      with_memory_sink (fun events ->
          Span.with_ "outer" (fun _ ->
              advance 1.0;
              Span.with_ "inner" (fun _ -> advance 2.0);
              advance 3.0);
          match events () with
          | [ inner; outer ] ->
            (* children complete (and are emitted) before parents *)
            Alcotest.(check string) "inner name" "inner" inner.Event.name;
            Alcotest.(check int) "inner depth" 1 inner.Event.depth;
            check_float "inner dur" 2.0 inner.Event.dur;
            check_float "inner self" 2.0 inner.Event.self;
            Alcotest.(check string) "outer name" "outer" outer.Event.name;
            Alcotest.(check int) "outer depth" 0 outer.Event.depth;
            check_float "outer dur" 6.0 outer.Event.dur;
            check_float "outer self (dur - child)" 4.0 outer.Event.self;
            check_float "inner starts 1s in" 1.0 inner.Event.t_start
          | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)))

let test_span_attrs_and_exceptions () =
  Obs.Clock.with_fake (fun advance ->
      with_memory_sink (fun events ->
          (try
             Span.with_ "failing" ~attrs:[ ("k", Event.S "v") ] (fun sp ->
                 advance 1.0;
                 Span.set_attr sp "extra" (Event.I 7);
                 failwith "boom")
           with Failure _ -> ());
          (* the span still emitted, stack unwound, tracing still works *)
          Span.with_ "after" (fun _ -> advance 0.5);
          match events () with
          | [ failing; after ] ->
            Alcotest.(check string) "name" "failing" failing.Event.name;
            check_float "dur" 1.0 failing.Event.dur;
            Alcotest.(check (option string)) "seed attr" (Some "v")
              (Event.attr_string failing "k");
            Alcotest.(check (option int)) "set_attr" (Some 7)
              (Event.attr_int failing "extra");
            Alcotest.(check bool) "error recorded" true
              (Option.is_some (Event.attr_string failing "error"));
            Alcotest.(check int) "stack unwound" 0 after.Event.depth
          | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)))

(* --- JSONL sink → report aggregator ------------------------------------------ *)

let emit_fixture advance =
  (* two env steps with nested pass spans, distinct actions *)
  List.iter
    (fun (action, pass, d_insns, reward) ->
      Span.with_ "posetrl.env.step"
        ~attrs:[ ("action", Event.I action); ("passes", Event.S pass) ]
        (fun sp ->
          Span.with_ "posetrl.pass.run"
            ~attrs:[ ("pass", Event.S pass); ("d_insns", Event.I d_insns) ]
            (fun _ -> advance 1.0);
          advance 0.5;
          Span.set_attr sp "reward" (Event.F reward);
          Span.set_attr sp "d_size" (Event.F (8.0 *. float_of_int d_insns))))
    [ (3, "simplifycfg", 4, 1.25); (3, "simplifycfg", 2, 0.75); (7, "licm", -1, -0.5) ]

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "posetrl_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let golden =
        Obs.Clock.with_fake (fun advance ->
            let mem, events = Obs.Sink.memory () in
            Span.install mem;
            Fun.protect
              ~finally:(fun () -> Span.remove mem)
              (fun () ->
                Span.with_sink (Obs.Sink.jsonl path) (fun () ->
                    emit_fixture advance));
            events ())
      in
      let parsed = Obs.Report.read_jsonl path in
      Alcotest.(check int) "event count" (List.length golden) (List.length parsed);
      (* byte-exact structural round trip against the in-memory golden *)
      Alcotest.(check bool) "events round-trip" true (parsed = golden))

let test_report_aggregation () =
  let path = Filename.temp_file "posetrl_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Clock.with_fake (fun advance ->
          Span.with_sink (Obs.Sink.jsonl path) (fun () -> emit_fixture advance));
      let events = Obs.Report.read_jsonl path in
      (* span table: env.step cum = 3 * 1.5, self = 3 * 0.5 *)
      (match Obs.Report.spans events with
       | [ step; pass ] ->
         Alcotest.(check string) "top span" "posetrl.env.step" step.Obs.Report.sr_name;
         Alcotest.(check int) "step count" 3 step.Obs.Report.sr_count;
         check_float "step cum" 4.5 step.Obs.Report.sr_cum;
         check_float "step self" 1.5 step.Obs.Report.sr_self;
         check_float "pass cum" 3.0 pass.Obs.Report.sr_cum
       | rows -> Alcotest.failf "expected 2 span rows, got %d" (List.length rows));
      (* pass table groups by pass attr and sums insn deltas *)
      (match Obs.Report.passes events with
       | [ scfg; licm ] ->
         Alcotest.(check string) "pass" "simplifycfg" scfg.Obs.Report.pr_pass;
         Alcotest.(check int) "runs" 2 scfg.Obs.Report.pr_count;
         Alcotest.(check int) "d_insns summed" 6 scfg.Obs.Report.pr_d_insns;
         Alcotest.(check int) "licm d_insns" (-1) licm.Obs.Report.pr_d_insns
       | rows -> Alcotest.failf "expected 2 pass rows, got %d" (List.length rows));
      (* action table groups env.step by action index *)
      (match Obs.Report.actions events with
       | [ a3; a7 ] ->
         Alcotest.(check int) "action" 3 a3.Obs.Report.ar_action;
         Alcotest.(check int) "steps" 2 a3.Obs.Report.ar_count;
         check_float "d_size summed" 48.0 a3.Obs.Report.ar_d_size;
         check_float "mean reward" 1.0 a3.Obs.Report.ar_mean_reward;
         check_float "negative delta" (-8.0) a7.Obs.Report.ar_d_size
       | rows -> Alcotest.failf "expected 2 action rows, got %d" (List.length rows));
      (* the rendered report carries all three tables with the fixture's
         span/pass/action rows *)
      let rendered = Obs.Report.render events in
      let contains needle =
        let nl = String.length needle and hl = String.length rendered in
        let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
        Alcotest.(check bool) (Printf.sprintf "render mentions %S" needle) true (go 0)
      in
      List.iter contains
        [ "span summary"; "per-pass cumulative time"; "per-action";
          "posetrl.env.step"; "posetrl.pass.run"; "simplifycfg"; "licm" ])

let test_report_render_empty () =
  (* an empty trace still renders (headers only), and the aggregators
     agree it holds nothing *)
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Report.spans []));
  Alcotest.(check int) "no actions" 0 (List.length (Obs.Report.actions []));
  Alcotest.(check bool) "render total on empty" true
    (String.length (Obs.Report.render []) > 0)

let test_json_values () =
  (* attr value kinds survive the JSON round trip exactly *)
  let e =
    { Event.name = "posetrl.test.kinds";
      attrs =
        [ ("s", Event.S "a \"quoted\"\nline");
          ("i", Event.I (-42));
          ("f", Event.F 0.1) ];
      t_start = 1.5;
      dur = 0.25;
      self = 0.125;
      depth = 2;
      tid = 0 }
  in
  let e' = Event.of_json (Obs.Json.of_string (Obs.Json.to_string (Event.to_json e))) in
  Alcotest.(check bool) "event equal after round trip" true (e = e')

let suite =
  [ Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "labeled series" `Quick test_labels;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram single obs" `Quick test_histogram_single_observation;
    Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow_bucket;
    Alcotest.test_case "metric kind clash" `Quick test_kind_clash;
    Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
    Alcotest.test_case "span disabled passthrough" `Quick test_span_disabled;
    Alcotest.test_case "span nesting + self time" `Quick test_span_nesting;
    Alcotest.test_case "span attrs + exception" `Quick test_span_attrs_and_exceptions;
    Alcotest.test_case "jsonl golden round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "report aggregation" `Quick test_report_aggregation;
    Alcotest.test_case "report empty trace" `Quick test_report_render_empty;
    Alcotest.test_case "json value kinds" `Quick test_json_values ]
