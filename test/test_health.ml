(* Training-health watchdog and reward-attribution tests (DESIGN.md §12).

   The watchdog tests drive Health.check directly with hand-built
   samples — under Clock.with_fake where the stall rule is involved —
   and assert the edge-trigger contract: one alert per incident, silence
   on healthy runs. The attribution tests close the determinism loop:
   the streaming table the trainer builds must equal, float for float,
   the brute-force recompute from the episode records it emitted — for
   sequential and pooled training alike. *)

module Obs = Posetrl_obs
module Rl = Posetrl_rl
module C = Posetrl_core
module O = Posetrl_odg
module W = Posetrl_workloads
module CG = Posetrl_codegen
module H = Obs.Health

let x86 = CG.Target.x86_64

(* a private registry per test so alert counters don't cross-talk *)
let engine ?config () =
  let r = Obs.Metrics.create () in
  (H.create ?config ~registry:r (), r)

let sample ?(step = 200) ?(episode = 10) ?(loss = 0.5) ?(mean_reward = 5.0)
    ?(q_max = 10.0) ?(replay_size = 100) ?(replay_capacity = 1000)
    ?(replay_age_mean = 100.0) ?(weights_finite = true)
    ?(actions = [| 5; 5; 5; 5 |]) () : H.sample =
  { H.s_step = step;
    s_episode = episode;
    s_loss = loss;
    s_mean_reward = mean_reward;
    s_q_max = q_max;
    s_replay_size = replay_size;
    s_replay_capacity = replay_capacity;
    s_replay_age_mean = replay_age_mean;
    s_weights_finite = weights_finite;
    s_actions = actions }

let rules_of = List.map (fun (a : H.alert) -> a.H.a_rule)

(* --- watchdog rules --------------------------------------------------------- *)

let test_healthy_run_silent () =
  let t, r = engine () in
  for i = 1 to 20 do
    let fired = H.check t (sample ~step:(i * 200) ~episode:(i * 13) ()) in
    Alcotest.(check (list string)) "no alerts" [] (rules_of fired)
  done;
  Alcotest.(check (list string)) "nothing retained" [] (rules_of (H.alerts t));
  List.iter
    (fun rule ->
      Alcotest.(check (option (float 0.0)))
        (rule ^ " counter untouched") None
        (Obs.Metrics.value ~r ~labels:[ ("rule", rule) ] "posetrl.alerts.total"))
    H.rules

let test_nan_loss_edge_trigger () =
  let t, _ = engine () in
  ignore (H.check t (sample ()));
  let fired = H.check t (sample ~loss:Float.nan ()) in
  Alcotest.(check (list string)) "nan fires" [ "nan_loss" ] (rules_of fired);
  Alcotest.(check string) "severity error" "error"
    (List.hd fired).H.a_severity;
  (* still broken: edge-triggered, so no second alert *)
  Alcotest.(check (list string)) "no re-fire while condition holds" []
    (rules_of (H.check t (sample ~loss:Float.infinity ())));
  (* recovers, then breaks again: a second incident, a second alert *)
  Alcotest.(check (list string)) "re-arms on clear" []
    (rules_of (H.check t (sample ())));
  Alcotest.(check (list string)) "second incident fires" [ "nan_loss" ]
    (rules_of (H.check t (sample ~weights_finite:false ())));
  Alcotest.(check int) "two retained" 2 (List.length (H.alerts t))

let test_reward_collapse () =
  let t, _ = engine () in
  Alcotest.(check (list string)) "building best" []
    (rules_of (H.check t (sample ~mean_reward:10.0 ())));
  Alcotest.(check (list string)) "small dip silent" []
    (rules_of (H.check t (sample ~mean_reward:7.0 ())));
  let fired = H.check t (sample ~mean_reward:2.0 ()) in
  Alcotest.(check (list string)) "collapse fires" [ "reward_collapse" ]
    (rules_of fired);
  Alcotest.(check bool) "message names the drop" true
    (let m = (List.hd fired).H.a_message in
     (* the message carries the current mean and the trailing best *)
     String.length m > 0
     && Option.is_some (String.index_opt m '%'))

let test_q_explosion () =
  let t, _ = engine () in
  Alcotest.(check (list string)) "sane q silent" []
    (rules_of (H.check t (sample ~q_max:1e5 ())));
  Alcotest.(check (list string)) "explosion fires" [ "q_explosion" ]
    (rules_of (H.check t (sample ~q_max:(-2e6) ())))

let test_stalled_episode_fake_clock () =
  Obs.Clock.with_fake (fun advance ->
      let t, _ = engine () in
      ignore (H.check t (sample ~episode:5 ()));
      advance 200.0;
      Alcotest.(check (list string)) "within stall_s" []
        (rules_of (H.check t (sample ~episode:5 ())));
      advance 150.0;
      let fired = H.check t (sample ~episode:5 ()) in
      Alcotest.(check (list string)) "stall fires after 350s" [ "stalled_episode" ]
        (rules_of fired);
      (* an episode completing resets the stall timer and re-arms *)
      ignore (H.check t (sample ~episode:6 ()));
      advance 100.0;
      Alcotest.(check (list string)) "fresh episode clears it" []
        (rules_of (H.check t (sample ~episode:6 ()))))

let test_replay_stale () =
  let t, _ = engine () in
  Alcotest.(check (list string)) "fresh replay silent" []
    (rules_of (H.check t (sample ~replay_age_mean:3000.0 ())));
  Alcotest.(check (list string)) "stale replay fires" [ "replay_stale" ]
    (rules_of
       (H.check t (sample ~replay_age_mean:5000.0 ~replay_capacity:1000 ())))

let test_action_drift () =
  let t, _ = engine () in
  let uniform = [| 25; 25; 25; 25 |] in
  ignore (H.check t (sample ~actions:uniform ()));
  Alcotest.(check (list string)) "same distribution silent" []
    (rules_of (H.check t (sample ~actions:uniform ())));
  Alcotest.(check (list string)) "mild shift silent" []
    (rules_of (H.check t (sample ~actions:[| 30; 25; 25; 20 |] ())));
  (* everything concentrates on one action: an abrupt policy shift *)
  let fired = H.check t (sample ~actions:[| 100; 0; 0; 0 |] ()) in
  Alcotest.(check (list string)) "abrupt shift fires" [ "action_drift" ]
    (rules_of fired);
  Alcotest.(check bool) "kl value above threshold" true
    ((List.hd fired).H.a_value > H.default_config.H.drift_kl)

let test_kl_basics () =
  Alcotest.(check (float 1e-9)) "identical histograms" 0.0
    (H.kl [| 10; 10 |] [| 10; 10 |]);
  Alcotest.(check bool) "divergent > 0" true (H.kl [| 100; 0 |] [| 0; 100 |] > 0.0);
  Alcotest.(check bool) "length mismatch zero-pads, stays finite" true
    (Float.is_finite (H.kl [| 5 |] [| 1; 2; 3 |]))

let test_max_alerts_cap () =
  let t, _ =
    engine ~config:{ H.default_config with H.max_alerts = 3 } ()
  in
  (* five incidents: break, recover, break... — retention caps at 3,
     newest kept *)
  for i = 1 to 5 do
    ignore (H.check t (sample ~step:(i * 2) ~loss:Float.nan ()));
    ignore (H.check t (sample ~step:((i * 2) + 1) ()))
  done;
  let retained = H.alerts t in
  Alcotest.(check int) "capped at 3" 3 (List.length retained);
  Alcotest.(check int) "newest retained" 10
    (List.fold_left (fun m (a : H.alert) -> max m a.H.a_step) 0 retained)

let test_alert_json_roundtrip () =
  let roundtrip (a : H.alert) =
    match H.alert_of_json (H.alert_to_json a) with
    | None -> Alcotest.fail "alert did not round-trip"
    | Some b ->
      Alcotest.(check string) "rule" a.H.a_rule b.H.a_rule;
      Alcotest.(check int) "step" a.H.a_step b.H.a_step;
      Alcotest.(check string) "severity" a.H.a_severity b.H.a_severity;
      Alcotest.(check string) "message" a.H.a_message b.H.a_message;
      if Float.is_nan a.H.a_value then
        Alcotest.(check bool) "nan value survives" true (Float.is_nan b.H.a_value)
      else Alcotest.(check (float 0.0)) "value" a.H.a_value b.H.a_value
  in
  roundtrip
    { H.a_rule = "q_explosion"; a_step = 400; a_severity = "error";
      a_message = "q_max 2e7 beyond 1e6"; a_value = 2e7 };
  (* the value the nan_loss rule exists to report: Json.Float would
     serialize it as null, the schema encodes it as "nan" *)
  roundtrip
    { H.a_rule = "nan_loss"; a_step = 200; a_severity = "error";
      a_message = "non-finite td_loss"; a_value = Float.nan };
  roundtrip
    { H.a_rule = "nan_loss"; a_step = 200; a_severity = "error";
      a_message = "inf"; a_value = Float.neg_infinity };
  Alcotest.(check bool) "garbage is None, not an exception" true
    (H.alert_of_json (Obs.Json.Str "nope") = None
     && H.alert_of_json (Obs.Json.Obj [ ("kind", Obs.Json.Str "alert") ]) = None)

(* --- attribution: unit ------------------------------------------------------- *)

let test_attrib_accumulates () =
  let t = Rl.Attrib.create ~n_actions:4 ~max_pos:5 () in
  Rl.Attrib.observe t ~action:2 ~pos:0 ~reward:1.5 ~r_binsize:0.5 ~r_throughput:0.2;
  Rl.Attrib.observe t ~action:2 ~pos:3 ~reward:(-0.5) ~r_binsize:0.25 ~r_throughput:(-0.15);
  Rl.Attrib.observe t ~action:0 ~pos:99 ~reward:2.0 ~r_binsize:0.0 ~r_throughput:0.4;
  Alcotest.(check int) "steps" 3 (Rl.Attrib.steps t);
  Alcotest.(check int) "count" 2 (Rl.Attrib.count t 2);
  Alcotest.(check (float 1e-12)) "reward total" 1.0 (Rl.Attrib.total_reward t 2);
  Alcotest.(check (float 1e-12)) "binsize total" 0.75 (Rl.Attrib.total_binsize t 2);
  Alcotest.(check (float 1e-12)) "mean" 0.5 (Rl.Attrib.mean_reward t 2);
  (* out-of-range positions clamp into the last bucket *)
  Alcotest.(check int) "pos clamped" 1 (Rl.Attrib.positions t 0).(4);
  Alcotest.(check (option int)) "top position" (Some 4) (Rl.Attrib.top_position t 0);
  Alcotest.(check (option int)) "unused action" None (Rl.Attrib.top_position t 1)

let test_attrib_json_roundtrip () =
  let t = Rl.Attrib.create ~n_actions:3 ~max_pos:4 () in
  Rl.Attrib.observe t ~action:1 ~pos:2 ~reward:0.1 ~r_binsize:0.30000000000000004
    ~r_throughput:(-1.25e-3);
  Rl.Attrib.observe t ~action:0 ~pos:0 ~reward:7.0 ~r_binsize:0.0 ~r_throughput:1.4;
  let doc = Rl.Attrib.to_json ~labels:(fun a -> Printf.sprintf "p%d" a) t in
  (* a serialize → parse → deserialize cycle through the %.17g printer
     must reproduce the table exactly *)
  match Rl.Attrib.of_json (Obs.Json.of_string (Obs.Json.to_string doc)) with
  | None -> Alcotest.fail "attrib did not round-trip"
  | Some t' ->
    Alcotest.(check bool) "exact equality after round-trip" true
      (Rl.Attrib.equal t t')

let test_attrib_of_json_robust () =
  let bad =
    [ Obs.Json.Str "x";
      Obs.Json.Obj [ ("kind", Obs.Json.Str "attrib") ];
      (* wrong actions arity vs n_actions *)
      Obs.Json.Obj
        [ ("kind", Obs.Json.Str "attrib");
          ("n_actions", Obs.Json.Int 2);
          ("max_pos", Obs.Json.Int 3);
          ("steps", Obs.Json.Int 0);
          ("actions", Obs.Json.Arr []) ] ]
  in
  List.iter
    (fun doc ->
      Alcotest.(check bool) "malformed doc is None" true
        (Rl.Attrib.of_json doc = None))
    bad

(* --- attribution: streaming = recompute (the determinism property) ----------- *)

let tiny_hp =
  { C.Trainer.fast with
    C.Trainer.total_steps = 150;
    C.Trainer.epsilon = Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.2 ~decay_steps:100 ();
    C.Trainer.warmup_steps = 32;
    C.Trainer.target_sync_every = 60 }

(* One short training run; returns the streaming table and the episode
   records exactly as the CLI would persist them to progress.jsonl. *)
let train_capture ~seed ~jobs =
  let corpus = W.Genprog.corpus ~n:4 () in
  let records = ref [] in
  let on_episode (e : C.Trainer.episode_summary) =
    records :=
      Obs.Runlog.episode_record ~actions:e.C.Trainer.ep_actions
        ~step_rewards:e.C.Trainer.ep_step_rewards ~episode:e.C.Trainer.ep_index
        ~step:e.C.Trainer.ep_end_step ~reward:e.C.Trainer.ep_reward
        ~r_binsize:e.C.Trainer.ep_r_binsize
        ~r_throughput:e.C.Trainer.ep_r_throughput
        ~size_gain_pct:e.C.Trainer.ep_size_gain_pct
        ~thru_gain_pct:e.C.Trainer.ep_thru_gain_pct
        ~epsilon:e.C.Trainer.ep_epsilon ~loss:e.C.Trainer.ep_loss ()
      :: !records
  in
  let train pool =
    C.Trainer.train ?pool ~hp:tiny_hp ~on_episode ~seed ~corpus
      ~actions:O.Action_space.manual ~target:x86 ()
  in
  let res =
    if jobs <= 1 then train None
    else
      Posetrl_support.Pool.with_pool ~name:"test-attrib" ~jobs (fun p ->
          train (Some p))
  in
  (res.C.Trainer.attrib, List.rev !records)

let prop_streaming_eq_recompute =
  QCheck2.Test.make ~count:3
    ~name:"streaming attribution = ledger recompute (jobs 1 and 4)"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      List.for_all
        (fun jobs ->
          let streaming, records = train_capture ~seed ~jobs in
          (* serialize through JSON strings first: the recompute must
             hold over what's actually on disk, not in-memory values *)
          let reread =
            List.map
              (fun r -> Obs.Json.of_string (Obs.Json.to_string r))
              records
          in
          let brute =
            Rl.Attrib.of_records
              ~n_actions:(Rl.Attrib.n_actions streaming)
              ~max_pos:(Rl.Attrib.max_pos streaming)
              reread
          in
          Rl.Attrib.equal streaming brute)
        [ 1; 4 ])

let suite =
  [ Alcotest.test_case "healthy run is silent" `Quick test_healthy_run_silent;
    Alcotest.test_case "nan_loss fires once per incident" `Quick
      test_nan_loss_edge_trigger;
    Alcotest.test_case "reward collapse vs trailing best" `Quick
      test_reward_collapse;
    Alcotest.test_case "q explosion" `Quick test_q_explosion;
    Alcotest.test_case "stalled episode under fake clock" `Quick
      test_stalled_episode_fake_clock;
    Alcotest.test_case "replay staleness" `Quick test_replay_stale;
    Alcotest.test_case "action-distribution drift" `Quick test_action_drift;
    Alcotest.test_case "kl divergence basics" `Quick test_kl_basics;
    Alcotest.test_case "retained alerts cap" `Quick test_max_alerts_cap;
    Alcotest.test_case "alert json round-trip (incl. nan)" `Quick
      test_alert_json_roundtrip;
    Alcotest.test_case "attrib accumulates per action" `Quick
      test_attrib_accumulates;
    Alcotest.test_case "attrib json round-trip is exact" `Quick
      test_attrib_json_roundtrip;
    Alcotest.test_case "attrib reader rejects malformed docs" `Quick
      test_attrib_of_json_robust;
    QCheck_alcotest.to_alcotest prop_streaming_eq_recompute ]
