(* Posetrl_analysis: dataflow framework, analyses, sanitizer, delta
   minimizer and lint.

   The framework is checked against an independent brute-force liveness
   recompute on generated programs (qcheck); the sanitizer against a
   deliberately miscompiling pass whose minimized repro must re-fail
   verification; the dce/dse ports against verbatim copies of the
   pre-port implementations (byte-identical printer output). *)

open Posetrl_ir
module A = Posetrl_analysis
module P = Posetrl_passes
module W = Posetrl_workloads
module Pool = Posetrl_support.Pool
module ISet = Set.Make (Int)
module SMap = Map.Make (String)

(* --- brute-force liveness oracle ------------------------------------------ *)

(* Naive round-robin per-block recompute, sharing no code with the
   worklist framework: iterate the dataflow equations over the plain
   block list until nothing changes. *)
let brute_liveness (f : Func.t) : ISet.t SMap.t * ISet.t SMap.t =
  let cfg = Cfg.of_func f in
  let bmap = Func.block_map f in
  let regs vs =
    ISet.of_list (List.filter_map (function Value.Reg r -> Some r | _ -> None) vs)
  in
  let block_in (b : Block.t) (out : ISet.t) : ISet.t =
    let live = ref (ISet.union out (regs (Instr.term_operands b.Block.term))) in
    List.iter
      (fun (i : Instr.t) ->
        if i.Instr.id >= 0 then live := ISet.remove i.Instr.id !live;
        match i.Instr.op with
        | Instr.Phi _ -> ()
        | op -> live := ISet.union !live (regs (Instr.operands op)))
      (List.rev b.Block.insns);
    !live
  in
  let phi_uses ~(succ : string) ~(pred : string) : ISet.t =
    match SMap.find_opt succ bmap with
    | None -> ISet.empty
    | Some sb ->
      List.fold_left
        (fun acc (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi (_, incs) ->
            (match List.assoc_opt pred incs with
             | Some (Value.Reg r) -> ISet.add r acc
             | _ -> acc)
          | _ -> acc)
        ISet.empty sb.Block.insns
  in
  let live_in = ref SMap.empty and live_out = ref SMap.empty in
  let get m l = Option.value (SMap.find_opt l !m) ~default:ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Block.t) ->
        let l = b.Block.label in
        let out =
          List.fold_left
            (fun acc s ->
              ISet.union acc (ISet.union (get live_in s) (phi_uses ~succ:s ~pred:l)))
            ISet.empty (Cfg.succs cfg l)
        in
        let inn = block_in b out in
        if not (ISet.equal out (get live_out l)) || not (ISet.equal inn (get live_in l))
        then begin
          changed := true;
          live_out := SMap.add l out !live_out;
          live_in := SMap.add l inn !live_in
        end)
      f.Func.blocks
  done;
  (!live_in, !live_out)

let liveness_matches_brute (m : Modul.t) : bool =
  List.for_all
    (fun (f : Func.t) ->
      let lv = A.Liveness.of_func f in
      let bin, bout = brute_liveness f in
      List.for_all
        (fun (b : Block.t) ->
          let l = b.Block.label in
          ISet.equal (A.Liveness.live_in lv l)
            (Option.value (SMap.find_opt l bin) ~default:ISet.empty)
          && ISet.equal (A.Liveness.live_out lv l)
               (Option.value (SMap.find_opt l bout) ~default:ISet.empty))
        f.Func.blocks)
    (Modul.defined_funcs m)

let prop_liveness_eq_brute =
  QCheck2.Test.make ~count:60 ~name:"framework liveness = brute-force recompute"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let m =
        if seed mod 2 = 0 then W.Templates.generate ~seed
        else W.Genprog.generate ~seed
      in
      liveness_matches_brute m)

let test_liveness_on_suites () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ ": liveness = brute force") true
        (liveness_matches_brute m))
    (W.Suites.all_programs ())

(* --- forward analyses ------------------------------------------------------ *)

(* entry defines %x, a diamond rejoins, both arms use %x *)
let diamond_module () : Modul.t =
  Testutil.wrap_main (fun b ->
      Builder.block b "entry";
      let x = Builder.add b Types.I64 (Value.ci64 2) (Value.ci64 3) in
      let c = Builder.icmp b Instr.Slt Types.I64 x (Value.ci64 10) in
      Builder.cbr b c "left" "right";
      Builder.block b "left";
      let l = Builder.add b Types.I64 x (Value.ci64 1) in
      Builder.br b "join";
      Builder.block b "right";
      let r = Builder.add b Types.I64 x (Value.ci64 2) in
      Builder.br b "join";
      Builder.block b "join";
      let p = Builder.phi b Types.I64 [ ("left", l); ("right", r) ] in
      Builder.ret b Types.I64 p)

let test_reaching_defs () =
  let m = diamond_module () in
  let f = Testutil.main_func m in
  let rd = A.Reaching.of_func f in
  let x_id =
    match (List.hd f.Func.blocks).Block.insns with
    | i :: _ -> i.Instr.id
    | [] -> Alcotest.fail "empty entry"
  in
  Alcotest.(check bool) "entry def reaches join" true
    (ISet.mem x_id (A.Reaching.reach_in rd "join"));
  Alcotest.(check bool) "join defs do not reach entry" false
    (ISet.mem x_id (A.Reaching.reach_in rd "entry"))

let test_available_exprs () =
  (* the same pure expression on both arms is available (and redundant)
     when recomputed at the join *)
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let c = Builder.icmp b Instr.Slt Types.I64 (Value.ci64 1) (Value.ci64 2) in
        Builder.cbr b c "left" "right";
        Builder.block b "left";
        let _ = Builder.add b Types.I64 (Value.ci64 4) (Value.ci64 5) in
        Builder.br b "join";
        Builder.block b "right";
        let _ = Builder.add b Types.I64 (Value.ci64 4) (Value.ci64 5) in
        Builder.br b "join";
        Builder.block b "join";
        let again = Builder.add b Types.I64 (Value.ci64 4) (Value.ci64 5) in
        Builder.ret b Types.I64 again)
  in
  let f = Testutil.main_func m in
  let av = A.Available.of_func f in
  let red = A.Available.redundant av f in
  Alcotest.(check bool) "join recompute flagged" true
    (List.exists (fun (blk, _) -> String.equal blk "join") red)

let test_effects_summary () =
  let m = Testutil.sum_squares_module () in
  let s = A.Effects.summarize m in
  Alcotest.(check string) "square is pure" "pure"
    (A.Effects.effect_to_string (A.Effects.effect_of s "square"));
  Alcotest.(check string) "main reads+writes memory" "readwrite"
    (A.Effects.effect_to_string (A.Effects.effect_of s "main"))

(* --- delta minimizer ------------------------------------------------------- *)

let test_delta_minimize () =
  (* three functions; the predicate only needs "bad", which drags an
     unreachable junk block the minimizer must also drop *)
  let simple name =
    let b = Builder.create ~name ~params:[] ~ret:Types.I64 () in
    Builder.block b "entry";
    Builder.ret b Types.I64 (Value.ci64 1);
    Builder.finish b
  in
  let bad =
    let b = Builder.create ~name:"bad" ~params:[] ~ret:Types.I64 () in
    Builder.block b "entry";
    Builder.ret b Types.I64 (Value.ci64 7);
    Builder.block b "junk";
    Builder.ret b Types.I64 (Value.ci64 8);
    Builder.finish b
  in
  let m = Modul.mk ~name:"delta" [ simple "keep1"; bad; simple "keep2" ] in
  let valid c = Verifier.verify_module c = [] in
  let check c = Option.is_some (Modul.find_func c "bad") in
  let mini = A.Delta.minimize ~valid ~check m in
  Alcotest.(check int) "only bad survives" 1 (List.length mini.Modul.funcs);
  let bad' = Modul.find_func_exn mini "bad" in
  Alcotest.(check int) "junk block dropped" 1 (List.length bad'.Func.blocks);
  Alcotest.(check bool) "minimized module still valid" true (valid mini)

(* --- sanitizer vs a seeded miscompile -------------------------------------- *)

(* Deliberately broken transform: sink the entry block's first def into
   the next block. Uses in other blocks become undominated — the IR
   stays structurally valid (the def still exists) but violates SSA
   dominance. *)
let sink_pass : P.Pass.t =
  P.Pass.mk "sink-bug" ~description:"moves a def below some of its uses"
    (fun _ m ->
      Modul.map_defined
        (fun (f : Func.t) ->
          match f.Func.blocks with
          | ({ Block.insns = i :: tl; _ } as entry) :: next :: rest
            when i.Instr.id >= 0 ->
            let entry' = { entry with Block.insns = tl } in
            let next' = { next with Block.insns = next.Block.insns @ [ i ] } in
            Func.with_blocks f (entry' :: next' :: rest)
          | _ -> f)
        m)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_sanitizer_catches_miscompile () =
  let m = diamond_module () in
  (* the broken output is structurally fine — only dominance sees it *)
  let broken = sink_pass.P.Pass.run P.Config.oz m in
  Alcotest.(check bool) "structural verifier is blind to the bug" true
    (Verifier.verify_module broken = []);
  Alcotest.(check bool) "dominance check sees the bug" true
    (Verifier.verify_module ~dom:true broken <> []);
  let repro_dir = Filename.concat (Filename.get_temp_dir_name ()) "posetrl-test-repros" in
  match
    P.Pass_manager.run_pass ~sanitize:A.Sanitize.Ssa ~repro_dir sink_pass
      P.Config.oz m
  with
  | _ -> Alcotest.fail "sanitizer did not catch the sunk def"
  | exception A.Sanitize.Failed { pass; errors; repro_path } ->
    Alcotest.(check string) "failure names the pass" "sink-bug" pass;
    Alcotest.(check bool) "failure carries errors" true (errors <> []);
    let path =
      match repro_path with
      | Some p -> p
      | None -> Alcotest.fail "no repro written"
    in
    let repro = Parser.parse_module (read_file path) in
    Alcotest.(check bool) "repro input is itself dominance-clean" true
      (Verifier.verify_module ~dom:true repro = []);
    (* the minimized repro re-fails: running the pass on it still
       produces dominance-invalid IR *)
    let out = sink_pass.P.Pass.run P.Config.oz repro in
    Alcotest.(check bool) "repro re-fails dominance verification" true
      (Verifier.verify_module ~dom:true out <> []);
    Alcotest.(check bool) "structural sanitize level would miss it" true
      (A.Sanitize.check_module A.Sanitize.Structural out = [])

let test_sanitize_levels () =
  Alcotest.(check bool) "off level checks nothing" true
    (A.Sanitize.check_module A.Sanitize.Off (diamond_module ()) = []);
  (match A.Sanitize.level_of_string "ssa" with
   | Ok A.Sanitize.Ssa -> ()
   | _ -> Alcotest.fail "ssa level parse");
  (match A.Sanitize.level_of_string "bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus level accepted")

(* --- dce/dse ports: byte-identical vs the pre-port implementations --------- *)

(* Verbatim copy of the adce mark/sweep as it existed before the port to
   Usedef.demand_closure. *)
let legacy_adce (f : Func.t) : Func.t =
  let defs = Func.def_map f in
  let live = Hashtbl.create 64 in
  let work = Queue.create () in
  let mark v =
    match v with
    | Value.Reg r when not (Hashtbl.mem live r) ->
      Hashtbl.replace live r ();
      Queue.add r work
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter mark (Instr.term_operands b.Block.term);
      List.iter
        (fun (i : Instr.t) ->
          if Instr.has_side_effects i.Instr.op then begin
            if i.Instr.id >= 0 then begin
              Hashtbl.replace live i.Instr.id ();
              Queue.add i.Instr.id work
            end;
            List.iter mark (Instr.operands i.Instr.op)
          end)
        b.Block.insns)
    f.Func.blocks;
  while not (Queue.is_empty work) do
    let r = Queue.pop work in
    match Hashtbl.find_opt defs r with
    | Some (_, i) -> List.iter mark (Instr.operands i.Instr.op)
    | None -> ()
  done;
  let keep (i : Instr.t) =
    if i.Instr.id < 0 then true
    else Hashtbl.mem live i.Instr.id || Instr.has_side_effects i.Instr.op
  in
  Func.map_blocks (Block.filter_insns keep) f

(* Verbatim copy of the dse body as it existed before the port to the
   Effects helpers. *)
let legacy_dse (f : Func.t) : Func.t =
  let allocas =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with Instr.Alloca _ -> ISet.add i.Instr.id acc | _ -> acc)
      ISet.empty f
  in
  let escaped = ref ISet.empty in
  let check v =
    match v with
    | Value.Reg r when ISet.mem r allocas -> escaped := ISet.add r !escaped
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load (_, _) -> ()
          | Instr.Store (_, v, _) -> check v
          | Instr.Gep (_, base, idx) -> check base; check idx
          | op -> List.iter check (Instr.operands op))
        b.Block.insns;
      List.iter check (Instr.term_operands b.Block.term))
    f.Func.blocks;
  let priv = ISet.diff allocas !escaped in
  let loaded = ref ISet.empty in
  let gep_based = ref ISet.empty in
  Func.iter_insns
    (fun _ i ->
      match i.Instr.op with
      | Instr.Load (_, Value.Reg r) -> loaded := ISet.add r !loaded
      | Instr.Gep (_, Value.Reg r, _) -> gep_based := ISet.add r !gep_based
      | Instr.Memcpy (_, Value.Reg r, _) -> loaded := ISet.add r !loaded
      | _ -> ())
    f;
  let never_read r =
    ISet.mem r priv && (not (ISet.mem r !loaded)) && not (ISet.mem r !gep_based)
  in
  let rewrite_block (b : Block.t) =
    let pending : (Value.t, int ref) Hashtbl.t = Hashtbl.create 8 in
    let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iteri
      (fun idx (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Store (_, _, p) ->
          (match Hashtbl.find_opt pending p with
           | Some prev -> Hashtbl.replace dead !prev ()
           | None -> ());
          Hashtbl.replace pending p (ref idx)
        | Instr.Load _ | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _ ->
          Hashtbl.reset pending
        | _ -> ())
      b.Block.insns;
    let insns =
      List.filteri (fun idx _ -> not (Hashtbl.mem dead idx)) b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  let keep (i : Instr.t) =
    match i.Instr.op with
    | Instr.Store (_, _, Value.Reg r) when never_read r -> false
    | _ -> true
  in
  let f = Func.map_blocks (Block.filter_insns keep) f in
  P.Utils.trivial_dce f

let check_port_identical ~(pass : string) ~(legacy : Func.t -> Func.t)
    (progs : (string * Modul.t) list) =
  let p = P.Registry.find_exn pass in
  List.iter
    (fun (name, m) ->
      let ported = p.P.Pass.run P.Config.oz m in
      let reference = Modul.map_defined legacy m in
      Alcotest.(check string)
        (Printf.sprintf "%s on %s is byte-identical to the pre-port pass" pass name)
        (Printer.module_to_string reference)
        (Printer.module_to_string ported))
    progs

let port_corpus () =
  W.Suites.all_programs ()
  @ [ ("fixture/sum_squares", Testutil.sum_squares_module ()) ]
  @ List.init 8 (fun k -> (Printf.sprintf "gen/%d" k, W.Genprog.generate ~seed:(900 + k)))

let test_adce_port_identical () =
  check_port_identical ~pass:"adce" ~legacy:legacy_adce (port_corpus ())

let test_dse_port_identical () =
  check_port_identical ~pass:"dse" ~legacy:legacy_dse (port_corpus ())

(* --- lint ------------------------------------------------------------------ *)

let test_lint_flags_dead_store () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        Builder.store b Types.I64 (Value.ci64 2) p;
        let v = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 v)
  in
  let fs = A.Lint.lint_module m in
  Alcotest.(check bool) "dead store reported" true
    (List.exists (fun (f : A.Lint.finding) -> f.A.Lint.rule = "dead-store") fs)

let test_lint_flags_undominated_use () =
  let broken = sink_pass.P.Pass.run P.Config.oz (diamond_module ()) in
  let fs = A.Lint.lint_module broken in
  Alcotest.(check bool) "undominated use reported as error" true
    (List.exists
       (fun (f : A.Lint.finding) ->
         f.A.Lint.rule = "undominated-use" && f.A.Lint.severity = A.Lint.Error)
       fs)

let test_lint_suite_oz_zero_errors () =
  (* the full-suite run is CI's job (posetrl lint --suite -O Oz
     --fail-on error); here a sample of each suite keeps runtest fast *)
  let sample = [ "541.leela"; "462.libquantum"; "crc32"; "sha"; "fft" ] in
  List.iter
    (fun name ->
      match W.Suites.find_program name with
      | None -> Alcotest.fail ("unknown sample program " ^ name)
      | Some mk ->
        let m = P.Pass_manager.run_level P.Pipelines.Oz (mk ()) in
        let fs = A.Lint.lint_module m in
        Alcotest.(check int)
          (name ^ " at -Oz lints with zero errors")
          0 (A.Lint.count A.Lint.Error fs))
    sample

(* --- domain safety: parallel sanitized evaluation -------------------------- *)

let test_parallel_sanitize_deterministic () =
  let progs =
    Array.of_list
      [ ("crc32", Option.get (W.Suites.find_program "crc32"));
        ("sha", Option.get (W.Suites.find_program "sha"));
        ("fft", Option.get (W.Suites.find_program "fft"));
        ("dijkstra", Option.get (W.Suites.find_program "dijkstra")) ]
  in
  let work (name, mk) =
    let m = mk () in
    let m' = P.Pass_manager.run_level ~sanitize:A.Sanitize.Ssa P.Pipelines.Oz m in
    let fs = A.Lint.lint_module m' in
    (name, Modul.insn_count m', List.length fs, A.Lint.count A.Lint.Error fs)
  in
  let seq = Array.map work progs in
  let par = Pool.with_pool ~name:"test-analysis" ~jobs:4 (fun p -> Pool.map p work progs) in
  Alcotest.(check bool) "parallel sanitized runs = sequential" true (seq = par)

(* --- solver guard ---------------------------------------------------------- *)

let test_solver_rejects_non_monotone () =
  let module Osc = struct
    type t = int

    let bottom = 0
    let equal = Int.equal
    let join = max
  end in
  let module S = A.Dataflow.Make (Osc) in
  let m = Testutil.sum_squares_module () in
  let f = Modul.find_func_exn m "main" in
  (* transfer that never stabilizes: strictly increases every visit *)
  let counter = ref 0 in
  let transfer _ x = incr counter; x + 1 in
  match S.solve ~transfer f with
  | _ -> Alcotest.fail "non-monotone transfer reached a fixpoint"
  | exception Failure msg ->
    Alcotest.(check bool) "diagnostic names the solver" true
      (String.length msg > 0)

(* --- alias analysis -------------------------------------------------------- *)

let test_alias_facts () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let a = Builder.alloca b Types.I64 1 in
        let c = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) a;
        Builder.store b Types.I64 (Value.ci64 2) c;
        let v = Builder.load b Types.I64 a in
        Builder.ret b Types.I64 v)
  in
  let f = Testutil.main_func m in
  let fi = A.Alias.of_func f in
  Alcotest.(check bool) "distinct allocas do not alias" false
    (let p, q =
       match (List.hd f.Func.blocks).Block.insns with
       | a :: c :: _ -> (Value.Reg a.Instr.id, Value.Reg c.Instr.id)
       | _ -> Alcotest.fail "expected two allocas"
     in
     A.Alias.may_alias fi p q);
  Alcotest.(check bool) "a pointer always may-alias itself" true
    (let p = Value.Reg (List.hd (List.hd f.Func.blocks).Block.insns).Instr.id in
     A.Alias.may_alias fi p p);
  Alcotest.(check bool) "non-escaping allocas are invisible to calls" false
    (let p = Value.Reg (List.hd (List.hd f.Func.blocks).Block.insns).Instr.id in
     A.Alias.call_may_touch fi p)

let test_alias_modref () =
  (* @main stores through an escaped pointer it passed to @ext *)
  let t = A.Alias.summarize (Testutil.sum_squares_module ()) in
  let mr = A.Alias.modref_of t "square" in
  Alcotest.(check bool) "pure callee neither reads nor writes unknown memory"
    false
    (mr.A.Alias.mod_unknown || mr.A.Alias.ref_unknown);
  Alcotest.(check bool) "unknown function gets the top summary" true
    (A.Alias.modref_equal (A.Alias.modref_of t "no_such_fn") A.Alias.modref_top)

(* Alias-aware dse/licm/gvn are opt-in and must be byte-identical to the
   legacy fact providers on real programs (sampled here; the full
   suites-times-levels sweep runs in CI via `posetrl validate`). *)
let test_alias_pipelines_byte_identical () =
  let progs =
    List.filteri (fun i _ -> i < 6) (W.Suites.all_programs ())
  in
  List.iter
    (fun level ->
      let cfg = P.Pipelines.config_of level in
      let seq = P.Pipelines.sequence_of level in
      let acfg = { cfg with P.Config.use_alias = true } in
      List.iter
        (fun (name, m) ->
          let legacy = Printer.module_to_string (P.Pass_manager.run cfg seq m) in
          let aliased = Printer.module_to_string (P.Pass_manager.run acfg seq m) in
          Alcotest.(check bool)
            (Printf.sprintf "%s at %s: alias-aware = legacy" name
               (P.Pipelines.level_to_string level))
            true (String.equal legacy aliased))
        progs)
    [ P.Pipelines.O2; P.Pipelines.Oz ]

(* --- abstract interpretation ---------------------------------------------- *)

(* constant condition: the else arm is provably dead *)
let const_branch_module () : Modul.t =
  Testutil.wrap_main (fun b ->
      Builder.block b "entry";
      let x = Builder.add b Types.I64 (Value.ci64 3) (Value.ci64 4) in
      let c = Builder.icmp b Instr.Slt Types.I64 x (Value.ci64 100) in
      Builder.cbr b c "then" "else";
      Builder.block b "then";
      let l = Builder.add b Types.I64 x (Value.ci64 1) in
      Builder.br b "join";
      Builder.block b "else";
      let r = Builder.mul b Types.I64 x (Value.ci64 2) in
      Builder.br b "join";
      Builder.block b "join";
      let p = Builder.phi b Types.I64 [ ("then", l); ("else", r) ] in
      Builder.ret b Types.I64 p)

let test_absint_constant_branch () =
  let f = Testutil.main_func (const_branch_module ()) in
  let ai = A.Absint.of_func f in
  Alcotest.(check bool) "else arm is unreachable" false
    (A.Absint.reachable ai "else");
  Alcotest.(check bool) "then arm is reachable" true
    (A.Absint.reachable ai "then");
  (match (List.hd f.Func.blocks).Block.insns with
   | x :: _ ->
     Alcotest.(check bool) "3 + 4 evaluates to the singleton [7, 7]" true
       (match A.Absint.val_of ai x.Instr.id with
        | A.Absint.Range (lo, hi) -> Int64.equal lo 7L && Int64.equal hi 7L
        | _ -> false)
   | [] -> Alcotest.fail "empty entry")

let test_absint_lint_rules () =
  let f = Testutil.main_func (const_branch_module ()) in
  let fs = A.Lint.absint_findings f in
  let has rule = List.exists (fun (g : A.Lint.finding) -> g.A.Lint.rule = rule) fs in
  Alcotest.(check bool) "dead-branch fires on a constant condition" true
    (has "dead-branch");
  Alcotest.(check bool) "contradicted-range flags the dead arm" true
    (has "contradicted-range");
  List.iter
    (fun (g : A.Lint.finding) ->
      Alcotest.(check bool) "range rules never reach error severity" true
        (g.A.Lint.severity <> A.Lint.Error))
    fs

(* Soundness: every concrete integer value a register takes during a
   real execution must be contained in its abstract value. Checked by
   hooking the interpreter's register assignments on generated
   programs. *)
let absint_sound (m : Modul.t) : bool =
  let ais =
    List.fold_left
      (fun acc (f : Func.t) -> SMap.add f.Func.name (A.Absint.of_func f) acc)
      SMap.empty (Modul.defined_funcs m)
  in
  let module I = Posetrl_interp.Interp in
  let bad = ref None in
  let on_assign ~fname r v =
    match v, !bad with
    | I.VInt k, None -> (
      match SMap.find_opt fname ais with
      | None -> ()
      | Some ai -> (
        match A.Absint.val_of ai r with
        | A.Absint.Bot ->
          bad := Some (Printf.sprintf "@%s %%%d: concrete %Ld but Bot" fname r k)
        | av ->
          if not (A.Absint.contains_int av k) then
            bad :=
              Some
                (Printf.sprintf "@%s %%%d: concrete %Ld outside %s" fname r k
                   (A.Absint.aval_to_string av))))
    | _ -> ()
  in
  (try ignore (I.run ~fuel:200_000 ~on_assign m) with I.Trap _ -> ());
  match !bad with
  | None -> true
  | Some msg ->
    QCheck2.Test.fail_reportf "absint unsound on %s: %s" m.Modul.name msg

let prop_absint_sound =
  QCheck2.Test.make ~count:60
    ~name:"absint over-approximates every concrete register value"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let m =
        if seed mod 2 = 0 then W.Templates.generate ~seed
        else W.Genprog.generate ~seed
      in
      absint_sound m)

let test_absint_sound_on_suites () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ ": absint sound on concrete run") true
        (absint_sound m))
    (List.filteri (fun i _ -> i < 8) (W.Suites.all_programs ()))

(* --- translation validation (equiv tier) ----------------------------------- *)

(* [P.Sink.pass] miscompiles (add -> sub) while keeping the module
   perfectly well-formed: the Ssa tier must accept it, the Equiv tier
   must reject it and write a behavioural repro. *)
let test_equiv_catches_semantic_miscompile () =
  let m = diamond_module () in
  (match
     P.Pass_manager.run_pass ~sanitize:A.Sanitize.Ssa P.Sink.pass P.Config.oz m
   with
  | _ -> ()
  | exception A.Sanitize.Failed _ ->
    Alcotest.fail "ssa tier should be blind to a semantic-only bug");
  let repro_dir =
    Filename.concat (Filename.get_temp_dir_name ()) "posetrl-test-equiv-repros"
  in
  match
    P.Pass_manager.run_pass ~sanitize:A.Sanitize.Equiv ~repro_dir P.Sink.pass
      P.Config.oz m
  with
  | _ -> Alcotest.fail "equiv tier missed the miscompile"
  | exception A.Sanitize.Failed { pass; errors; repro_path } ->
    Alcotest.(check string) "failure names the pass" "sink" pass;
    Alcotest.(check bool) "errors mention translation validation" true
      (List.exists
         (fun (e : Verifier.error) ->
           String.length e.Verifier.message >= 22
           && String.sub e.Verifier.message 0 22 = "translation validation")
         errors);
    let path =
      match repro_path with
      | Some p -> p
      | None -> Alcotest.fail "no repro written"
    in
    let repro = Parser.parse_module (read_file path) in
    (* the minimized repro still diverges under the pass *)
    let out = P.Sink.pass.P.Pass.run P.Config.oz repro in
    Alcotest.(check bool) "repro re-fails translation validation" true
      (A.Sanitize.check_transform A.Sanitize.Equiv ~before:repro out <> [])

let test_equiv_accepts_behavior_preserving_pipeline () =
  (* smallest two suite programs through full pipelines under the equiv
     tier; the whole-suite sweep is the CI `posetrl validate` job *)
  let progs =
    List.sort
      (fun (_, a) (_, b) -> compare (Modul.insn_count a) (Modul.insn_count b))
      (W.Suites.all_programs ())
  in
  let progs = List.filteri (fun i _ -> i < 2) progs in
  List.iter
    (fun level ->
      List.iter
        (fun (name, m) ->
          match P.Pass_manager.run_level ~sanitize:A.Sanitize.Equiv level m with
          | _ -> ()
          | exception A.Sanitize.Failed { pass; _ } ->
            Alcotest.fail
              (Printf.sprintf "%s at %s: pass %s flagged by equiv tier" name
                 (P.Pipelines.level_to_string level)
                 pass))
        progs)
    [ P.Pipelines.O2; P.Pipelines.Oz ]

(* --- lint json golden ------------------------------------------------------ *)

let test_lint_json_golden () =
  let m =
    { (const_branch_module ()) with Modul.name = "golden" }
  in
  let got =
    Posetrl_obs.Json.to_string (A.Lint.to_json ~name:"golden" (A.Lint.lint_module m))
  in
  let expected =
    "{\"kind\":\"lint-report\",\"module\":\"golden\",\"errors\":0,\"warnings\":2,\"infos\":1,\"findings\":[{\"severity\":\"warning\",\"rule\":\"contradicted-range\",\"func\":\"main\",\"block\":\"else\",\"message\":\"value ranges prove the path conditions contradict: block cannot execute\"},{\"severity\":\"warning\",\"rule\":\"dead-branch\",\"func\":\"main\",\"block\":\"entry\",\"message\":\"condition %1 is always true: the edge to else is dead\"},{\"severity\":\"info\",\"rule\":\"missing-purity-attr\",\"func\":\"main\",\"block\":null,\"message\":\"body is pure but carries no purity attribute\"}]}"
  in
  Alcotest.(check string) "lint --json output is byte-stable" expected got

let suite =
  [ QCheck_alcotest.to_alcotest prop_liveness_eq_brute;
    Alcotest.test_case "liveness = brute force on all suites" `Quick
      test_liveness_on_suites;
    Alcotest.test_case "reaching definitions on a diamond" `Quick test_reaching_defs;
    Alcotest.test_case "available expressions flag a redundant recompute" `Quick
      test_available_exprs;
    Alcotest.test_case "effect summaries over the callgraph" `Quick
      test_effects_summary;
    Alcotest.test_case "delta minimizer shrinks to the failing function" `Quick
      test_delta_minimize;
    Alcotest.test_case "sanitizer catches a seeded miscompile with repro" `Quick
      test_sanitizer_catches_miscompile;
    Alcotest.test_case "sanitize levels parse and gate" `Quick test_sanitize_levels;
    Alcotest.test_case "adce port byte-identical" `Slow test_adce_port_identical;
    Alcotest.test_case "dse port byte-identical" `Slow test_dse_port_identical;
    Alcotest.test_case "lint flags a dead store" `Quick test_lint_flags_dead_store;
    Alcotest.test_case "lint flags an undominated use as error" `Quick
      test_lint_flags_undominated_use;
    Alcotest.test_case "lint: sampled suites at -Oz have zero errors" `Slow
      test_lint_suite_oz_zero_errors;
    Alcotest.test_case "sanitized evaluation is pool-deterministic" `Slow
      test_parallel_sanitize_deterministic;
    Alcotest.test_case "solver budget rejects non-monotone transfers" `Quick
      test_solver_rejects_non_monotone;
    Alcotest.test_case "alias: points-to facts on allocas" `Quick test_alias_facts;
    Alcotest.test_case "alias: mod/ref summaries" `Quick test_alias_modref;
    Alcotest.test_case "alias-aware pipelines byte-identical (sampled)" `Slow
      test_alias_pipelines_byte_identical;
    Alcotest.test_case "absint: constant branch folds to a singleton" `Quick
      test_absint_constant_branch;
    Alcotest.test_case "lint: range rules fire on a constant branch" `Quick
      test_absint_lint_rules;
    QCheck_alcotest.to_alcotest prop_absint_sound;
    Alcotest.test_case "absint sound on suite programs (sampled)" `Slow
      test_absint_sound_on_suites;
    Alcotest.test_case "equiv tier catches a semantic miscompile" `Quick
      test_equiv_catches_semantic_miscompile;
    Alcotest.test_case "equiv tier accepts real pipelines (sampled)" `Slow
      test_equiv_accepts_behavior_preserving_pipeline;
    Alcotest.test_case "lint --json golden is byte-stable" `Quick
      test_lint_json_golden ]
