(* Tests for the run ledger: the Runlog persistence format, the Run
   directory lifecycle (create → progress → finish → load), cross-run
   regression comparison, the crash-tolerant JSONL sink, and the
   sparkline renderer behind [posetrl runs show]. *)

module Obs = Posetrl_obs
module Json = Obs.Json
module Runlog = Obs.Runlog
module Run = Obs.Run
module Stats = Posetrl_support.Stats

let check_float = Alcotest.(check (float 1e-9))

(* --- scratch directories ---------------------------------------------------- *)

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_temp_dir (f : string -> 'a) : 'a =
  let dir = Filename.temp_file "posetrl_ledger" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- sparkline --------------------------------------------------------------- *)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Stats.sparkline []);
  (* a flat series renders at mid-height, one glyph per sample *)
  let flat = Stats.sparkline [ 2.0; 2.0; 2.0 ] in
  Alcotest.(check string) "flat mid-height" "▄▄▄" flat;
  (* a monotone ramp starts at the lowest block and ends at the highest *)
  let ramp =
    Stats.sparkline (List.init 8 (fun i -> float_of_int i))
  in
  Alcotest.(check string) "monotone ramp" "▁▂▃▄▅▆▇█" ramp;
  (* downsampling: 100 points into 10 columns of some block character *)
  let wide =
    Stats.sparkline ~width:10 (List.init 100 (fun i -> float_of_int i))
  in
  (* each block glyph is 3 bytes of UTF-8 *)
  Alcotest.(check int) "downsampled to width" (10 * 3) (String.length wide);
  (* non-finite samples are dropped, not rendered *)
  Alcotest.(check string) "nan dropped" "▁█"
    (Stats.sparkline [ 0.0; Float.nan; 1.0 ])

(* --- Runlog: files and records ----------------------------------------------- *)

let test_json_file_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "doc.json" in
      let doc =
        Json.Obj
          [ ("id", Json.Str "r1");
            ("seed", Json.Int 42);
            ("result", Json.Obj [ ("final_mean_reward", Json.Float 15.25) ]) ]
      in
      Runlog.write_json_file path doc;
      Alcotest.(check bool) "round trip" true (Runlog.read_json_file path = doc);
      (* no tmp file left behind by the atomic write *)
      Alcotest.(check (list string)) "no temp litter" [ "doc.json" ]
        (Array.to_list (Sys.readdir dir) |> List.sort compare);
      check_float "path_num" 15.25
        (Option.get (Runlog.path_num [ "result"; "final_mean_reward" ] doc)))

let test_read_jsonl_torn_line () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "progress.jsonl" in
      let oc = open_out path in
      Runlog.append_jsonl_line oc (Json.Obj [ ("step", Json.Int 1) ]);
      Runlog.append_jsonl_line oc (Json.Obj [ ("step", Json.Int 2) ]);
      (* a killed process tears the last line mid-object *)
      output_string oc "{\"step\": 3, \"mean_rew";
      close_out oc;
      let records, dropped = Runlog.read_jsonl path in
      Alcotest.(check int) "intact records kept" 2 (List.length records);
      Alcotest.(check int) "torn line counted" 1 dropped;
      Alcotest.(check (option (float 0.0))) "records parse" (Some 2.0)
        (Runlog.num "step" (List.nth records 1)))

let test_progress_records_and_series () =
  let ticks =
    List.init 4 (fun i ->
        Runlog.tick_record ~step:(i * 100) ~episode:i ~epsilon:0.9
          ~mean_reward:(float_of_int i) ~mean_size_gain:1.0
          ~r_binsize:0.1 ~r_throughput:0.2 ~loss:0.5 ())
  in
  let eps =
    [ Runlog.episode_record ~episode:0 ~step:15 ~reward:3.0 ~r_binsize:0.2
        ~r_throughput:0.2 ~size_gain_pct:10.0 ~thru_gain_pct:2.0 ~epsilon:0.8
        ~loss:0.4 () ]
  in
  let records = ticks @ eps in
  (* series selects one kind and skips the other *)
  let s = Runlog.series ~kind:"tick" ~x:"step" ~y:"mean_reward" records in
  Alcotest.(check int) "tick series length" 4 (List.length s);
  check_float "last x" 300.0 (fst (List.nth s 3));
  check_float "last y" 3.0 (snd (List.nth s 3));
  let e = Runlog.series ~kind:"episode" ~x:"episode" ~y:"reward" records in
  Alcotest.(check int) "episode series length" 1 (List.length e);
  (* the episode record carries the reward decomposition *)
  let ep = List.hd eps in
  check_float "r_binsize persisted" 0.2 (Option.get (Runlog.num "r_binsize" ep));
  check_float "r_throughput persisted" 0.2
    (Option.get (Runlog.num "r_throughput" ep))

(* --- Run: directory lifecycle ------------------------------------------------- *)

let test_run_lifecycle () =
  with_temp_dir (fun root ->
      Obs.Clock.with_fake (fun advance ->
          let dir = Filename.concat root "r1" in
          let run =
            Run.create ~dir ~name:"trainA"
              ~meta:[ ("kind", Json.Str "train"); ("seed", Json.Int 7) ] ()
          in
          (* a "running" manifest exists from the start *)
          let m0 = Runlog.read_json_file (Run.manifest_path dir) in
          Alcotest.(check (option string)) "status running" (Some "running")
            (Runlog.str "status" m0);
          Alcotest.(check (option string)) "name" (Some "trainA")
            (Runlog.str "name" m0);
          for i = 0 to 19 do
            Run.progress run
              (Runlog.tick_record ~step:i ~episode:0 ~epsilon:1.0
                 ~mean_reward:(float_of_int i) ~mean_size_gain:0.0
                 ~r_binsize:0.0 ~r_throughput:0.0 ~loss:0.0 ())
          done;
          advance 2.5;
          Run.finish ~result:[ ("final_mean_reward", Json.Float 19.0) ] run;
          Run.finish run; (* idempotent *)
          let info = Run.load dir in
          Alcotest.(check string) "run_id is the dir name" "r1" info.Run.run_id;
          Alcotest.(check (option string)) "status complete" (Some "complete")
            (Runlog.str "status" info.Run.manifest);
          check_float "wall_s from the fake clock" 2.5
            (Option.get (Runlog.num "wall_s" info.Run.manifest));
          check_float "result preserved" 19.0
            (Option.get
               (Runlog.path_num [ "result"; "final_mean_reward" ]
                  info.Run.manifest));
          let records, dropped = Run.read_progress info in
          Alcotest.(check int) "all records flushed on finish" 20
            (List.length records);
          Alcotest.(check int) "no torn lines" 0 dropped;
          (* list/find resolve it under the root *)
          (match Run.list_runs ~root () with
           | [ only ] -> Alcotest.(check string) "listed" "r1" only.Run.run_id
           | l -> Alcotest.failf "expected 1 run, got %d" (List.length l));
          Alcotest.(check string) "find by id" dir
            (Run.find ~root "r1").Run.run_dir;
          Alcotest.(check string) "find by path" dir (Run.find dir).Run.run_dir))

(* --- attrib.json / alerts.jsonl hardening ------------------------------------
   The health-layer files follow the same robustness contract as the
   rest of the ledger: missing or corrupt → "no data" (None), never an
   exception — `posetrl explain` and `watch` must render any ledger,
   including PR 2–6 runs that predate these files. *)

let test_attrib_alerts_lifecycle () =
  with_temp_dir (fun root ->
      let dir = Filename.concat root "r1" in
      let run = Run.create ~dir ~name:"t" ~meta:[] () in
      (* alerts.jsonl exists (empty) from create: a healthy finished run
         is distinguishable from one predating the watchdog *)
      Alcotest.(check bool) "alerts file created empty" true
        (Sys.file_exists (Run.alerts_path dir));
      Run.alert run
        (Json.Obj [ ("kind", Json.Str "alert"); ("rule", Json.Str "nan_loss");
                    ("step", Json.Int 200) ]);
      Run.write_attrib run
        (Json.Obj [ ("kind", Json.Str "attrib"); ("steps", Json.Int 3) ]);
      Run.finish run;
      let info = Run.load dir in
      (match Run.read_attrib info with
       | Some doc ->
         Alcotest.(check (option (float 0.0))) "attrib read back" (Some 3.0)
           (Runlog.num "steps" doc)
       | None -> Alcotest.fail "attrib.json should read back");
      match Run.read_alerts info with
      | Some ([ a ], 0) ->
        Alcotest.(check (option string)) "alert read back" (Some "nan_loss")
          (Runlog.str "rule" a)
      | _ -> Alcotest.fail "expected one alert, no torn lines")

let test_attrib_alerts_missing_is_none () =
  with_temp_dir (fun root ->
      (* a pre-watchdog run: manifest only, neither file present *)
      let dir = Filename.concat root "old" in
      Unix.mkdir dir 0o755;
      Runlog.write_json_file (Run.manifest_path dir)
        (Json.Obj [ ("id", Json.Str "old"); ("status", Json.Str "complete") ]);
      let info = Run.load dir in
      Alcotest.(check bool) "attrib None" true (Run.read_attrib info = None);
      Alcotest.(check bool) "alerts None" true (Run.read_alerts info = None))

let test_attrib_corrupt_is_none () =
  with_temp_dir (fun root ->
      let dir = Filename.concat root "r1" in
      let run = Run.create ~dir ~name:"t" ~meta:[] () in
      Run.finish run;
      let oc = open_out (Run.attrib_path dir) in
      output_string oc "{ torn mid-write";
      close_out oc;
      let info = Run.load dir in
      Alcotest.(check bool) "corrupt attrib is None, not an exception" true
        (Run.read_attrib info = None))

let test_alerts_torn_line_skipped () =
  with_temp_dir (fun root ->
      let dir = Filename.concat root "r1" in
      let run = Run.create ~dir ~name:"t" ~meta:[] () in
      Run.alert run (Json.Obj [ ("rule", Json.Str "q_explosion") ]);
      Run.finish run;
      (* simulate a crash tearing the last line *)
      let oc =
        open_out_gen [ Open_append ] 0o644 (Run.alerts_path dir)
      in
      output_string oc "{\"rule\": \"nan_lo";
      close_out oc;
      let info = Run.load dir in
      match Run.read_alerts info with
      | Some ([ a ], 1) ->
        Alcotest.(check (option string)) "intact alert kept"
          (Some "q_explosion") (Runlog.str "rule" a)
      | Some (l, d) ->
        Alcotest.failf "expected 1 alert + 1 torn, got %d + %d"
          (List.length l) d
      | None -> Alcotest.fail "present file must not read as None")

let test_alerts_empty_is_healthy () =
  with_temp_dir (fun root ->
      let dir = Filename.concat root "r1" in
      let run = Run.create ~dir ~name:"t" ~meta:[] () in
      Run.finish run;
      let info = Run.load dir in
      Alcotest.(check bool) "present-but-empty is Some ([], 0)" true
        (Run.read_alerts info = Some ([], 0)))

let test_run_progress_flush_prefix () =
  (* a run killed before finish still leaves a readable flushed prefix *)
  with_temp_dir (fun root ->
      let dir = Filename.concat root "killed" in
      let run = Run.create ~dir ~name:"killed" ~meta:[] () in
      for i = 0 to 9 do
        Run.progress run
          (Runlog.tick_record ~step:i ~episode:0 ~epsilon:1.0 ~mean_reward:0.0
             ~mean_size_gain:0.0 ~r_binsize:0.0 ~r_throughput:0.0 ~loss:0.0 ())
      done;
      (* no finish, no close: read what made it to disk *)
      let records, _ = Runlog.read_jsonl (Run.progress_path dir) in
      Alcotest.(check bool)
        (Printf.sprintf "flushed prefix (%d records)" (List.length records))
        true
        (List.length records >= 8);
      Run.finish run)

(* --- Run: listing robustness --------------------------------------------------
   [posetrl runs list] / [posetrl watch] must survive a missing, empty or
   partially-corrupt ledger root without raising Sys_error. *)

let test_list_runs_missing_root () =
  with_temp_dir (fun dir ->
      let missing = Filename.concat dir "never-created" in
      Alcotest.(check (list string)) "missing root yields []" []
        (List.map (fun i -> i.Run.run_id) (Run.list_runs ~root:missing ())));
  (* a root that is a regular file, not a directory *)
  with_temp_dir (fun dir ->
      let file = Filename.concat dir "plain" in
      let oc = open_out file in
      output_string oc "not a directory\n";
      close_out oc;
      Alcotest.(check (list string)) "file root yields []" []
        (List.map (fun i -> i.Run.run_id) (Run.list_runs ~root:file ())))

let test_list_runs_skips_corrupt () =
  with_temp_dir (fun root ->
      (* one good run, one directory with a corrupt manifest, one with no
         manifest at all, one stray regular file *)
      let good = Filename.concat root "good" in
      Run.finish (Run.create ~dir:good ~name:"good" ~meta:[] ());
      let corrupt = Filename.concat root "corrupt" in
      Unix.mkdir corrupt 0o755;
      let oc = open_out (Run.manifest_path corrupt) in
      output_string oc "{ torn json\n";
      close_out oc;
      Unix.mkdir (Filename.concat root "empty") 0o755;
      let oc = open_out (Filename.concat root "stray.txt") in
      output_string oc "hello\n";
      close_out oc;
      Alcotest.(check (list string)) "only the readable run is listed"
        [ "good" ]
        (List.map (fun i -> i.Run.run_id) (Run.list_runs ~root ())))

let test_list_runs_same_second_order () =
  (* manifests written within the same clock second must still list in a
     stable order: mtime first, run id as the tiebreak *)
  with_temp_dir (fun root ->
      List.iter
        (fun id ->
          Run.finish
            (Run.create ~dir:(Filename.concat root id) ~name:id ~meta:[] ()))
        [ "b"; "c"; "a" ];
      (* force identical mtimes, as a same-second burst would produce *)
      let t = Unix.time () in
      List.iter
        (fun id ->
          Unix.utimes (Run.manifest_path (Filename.concat root id)) t t)
        [ "a"; "b"; "c" ];
      Alcotest.(check (list string)) "run id breaks the mtime tie"
        [ "a"; "b"; "c" ]
        (List.map (fun i -> i.Run.run_id) (Run.list_runs ~root ())))

(* --- Run: comparison / regression gate ---------------------------------------- *)

let mk_run ~root ~id ~reward ~suites () =
  let dir = Filename.concat root id in
  let run = Run.create ~dir ~name:id ~meta:[] () in
  (match suites with
   | [] -> ()
   | s ->
     Run.write_eval run
       (Json.Obj
          [ ("suites",
             Json.Arr
               (List.map
                  (fun (name, red) ->
                    Json.Obj
                      [ ("suite", Json.Str name); ("avg_red", Json.Float red) ])
                  s)) ]));
  (match reward with
   | Some r -> Run.finish ~result:[ ("final_mean_reward", Json.Float r) ] run
   | None -> Run.finish run);
  Run.load dir

let test_compare_within_thresholds () =
  with_temp_dir (fun root ->
      let base =
        mk_run ~root ~id:"base" ~reward:(Some 15.0)
          ~suites:[ ("mibench", 10.0); ("genprog", 8.0) ] ()
      in
      let cand =
        mk_run ~root ~id:"cand" ~reward:(Some 14.2)
          ~suites:[ ("mibench", 9.5); ("genprog", 8.5) ] ()
      in
      let deltas = Run.compare_runs ~base ~cand () in
      (* reward drop 5.3% < 10%, size drops < 2pts: within thresholds *)
      Alcotest.(check bool) "no regression" false (Run.has_regression deltas);
      Alcotest.(check int) "reward + 2 suites + wall" 4 (List.length deltas))

let test_compare_reward_regression () =
  with_temp_dir (fun root ->
      let base = mk_run ~root ~id:"base" ~reward:(Some 15.0) ~suites:[] () in
      let cand = mk_run ~root ~id:"cand" ~reward:(Some 10.0) ~suites:[] () in
      let deltas = Run.compare_runs ~base ~cand () in
      Alcotest.(check bool) "33% reward drop regresses" true
        (Run.has_regression deltas);
      (* a lenient threshold lets the same pair pass *)
      let lenient =
        { Run.default_thresholds with Run.max_reward_drop_pct = 50.0 }
      in
      Alcotest.(check bool) "lenient threshold passes" false
        (Run.has_regression (Run.compare_runs ~thresholds:lenient ~base ~cand ())))

let test_compare_size_regression () =
  with_temp_dir (fun root ->
      let base =
        mk_run ~root ~id:"base" ~reward:None ~suites:[ ("mibench", 12.0) ] ()
      in
      let cand =
        mk_run ~root ~id:"cand" ~reward:None ~suites:[ ("mibench", 7.0) ] ()
      in
      let deltas = Run.compare_runs ~base ~cand () in
      Alcotest.(check bool) "5pt size drop regresses" true
        (Run.has_regression deltas);
      match List.find_opt (fun d -> d.Run.d_regressed) deltas with
      | Some d ->
        Alcotest.(check string) "on the suite metric" "size_red.mibench"
          d.Run.d_metric
      | None -> Alcotest.fail "regressed delta missing")

let test_compare_missing_never_regresses () =
  with_temp_dir (fun root ->
      (* base has an eval + reward, candidate has neither: reported, not failed *)
      let base =
        mk_run ~root ~id:"base" ~reward:(Some 15.0)
          ~suites:[ ("mibench", 12.0) ] ()
      in
      let cand = mk_run ~root ~id:"cand" ~reward:None ~suites:[] () in
      let deltas = Run.compare_runs ~base ~cand () in
      Alcotest.(check bool) "missing metrics never regress" false
        (Run.has_regression deltas);
      Alcotest.(check bool) "still reported" true (deltas <> []))

(* --- Sink.jsonl: crash tolerance ---------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let mk_event name =
  { Obs.Event.name; attrs = []; t_start = 0.0; dur = 1.0; self = 1.0; depth = 0;
    tid = 0 }

let test_sink_flush_every () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "trace.jsonl" in
      let sink = Obs.Sink.jsonl ~flush_every:4 path in
      for i = 1 to 10 do
        sink.Obs.Sink.emit (mk_event (Printf.sprintf "e%d" i))
      done;
      (* before close: the two full flush batches are on disk *)
      Alcotest.(check int) "flushed batches visible" 8
        (List.length (read_lines path));
      sink.Obs.Sink.close ();
      Alcotest.(check int) "close flushes the tail" 10
        (List.length (read_lines path)))

let test_sink_append () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "trace.jsonl" in
      let s1 = Obs.Sink.jsonl path in
      s1.Obs.Sink.emit (mk_event "first");
      s1.Obs.Sink.close ();
      (* append extends; the default truncates *)
      let s2 = Obs.Sink.jsonl ~append:true path in
      s2.Obs.Sink.emit (mk_event "second");
      s2.Obs.Sink.close ();
      Alcotest.(check int) "appended" 2 (List.length (read_lines path));
      let s3 = Obs.Sink.jsonl path in
      s3.Obs.Sink.emit (mk_event "third");
      s3.Obs.Sink.close ();
      let events = Obs.Report.read_jsonl path in
      Alcotest.(check (list string)) "truncate is still the default" [ "third" ]
        (List.map (fun e -> e.Obs.Event.name) events))

let suite =
  [ Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "json file round trip" `Quick test_json_file_roundtrip;
    Alcotest.test_case "jsonl torn line" `Quick test_read_jsonl_torn_line;
    Alcotest.test_case "progress records + series" `Quick
      test_progress_records_and_series;
    Alcotest.test_case "run lifecycle" `Quick test_run_lifecycle;
    Alcotest.test_case "killed run keeps prefix" `Quick
      test_run_progress_flush_prefix;
    Alcotest.test_case "attrib/alerts lifecycle" `Quick
      test_attrib_alerts_lifecycle;
    Alcotest.test_case "attrib/alerts missing → None" `Quick
      test_attrib_alerts_missing_is_none;
    Alcotest.test_case "corrupt attrib → None" `Quick
      test_attrib_corrupt_is_none;
    Alcotest.test_case "torn alert line skipped" `Quick
      test_alerts_torn_line_skipped;
    Alcotest.test_case "empty alerts = healthy" `Quick
      test_alerts_empty_is_healthy;
    Alcotest.test_case "list_runs missing root" `Quick
      test_list_runs_missing_root;
    Alcotest.test_case "list_runs skips corrupt" `Quick
      test_list_runs_skips_corrupt;
    Alcotest.test_case "list_runs same-second order" `Quick
      test_list_runs_same_second_order;
    Alcotest.test_case "compare within thresholds" `Quick
      test_compare_within_thresholds;
    Alcotest.test_case "compare reward regression" `Quick
      test_compare_reward_regression;
    Alcotest.test_case "compare size regression" `Quick
      test_compare_size_regression;
    Alcotest.test_case "compare missing metrics" `Quick
      test_compare_missing_never_regresses;
    Alcotest.test_case "sink flush_every" `Quick test_sink_flush_every;
    Alcotest.test_case "sink append flag" `Quick test_sink_append ]
