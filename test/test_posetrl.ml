(* Test entry point: aggregates every library's suite. Run with
   [dune runtest]; slow suites (whole-pipeline differential tests,
   trainer smoke) are tagged `Slow and included by default. *)

let () =
  Alcotest.run "posetrl"
    [ ("support", Test_support.suite);
      ("pool", Test_pool.suite);
      ("obs", Test_obs.suite);
      ("runledger", Test_runledger.suite);
      ("telemetry", Test_telemetry.suite);
      ("health", Test_health.suite);
      ("coverage", Test_coverage.suite);
      ("prof", Test_prof.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("interp", Test_interp.suite);
      ("passes.scalar", Test_passes_scalar.suite);
      ("passes.loop", Test_passes_loop.suite);
      ("passes.ipo", Test_passes_ipo.suite);
      ("pipeline", Test_pipeline.suite);
      ("codegen+mca", Test_codegen_mca.suite);
      ("ir2vec", Test_ir2vec.suite);
      ("nn", Test_nn.suite);
      ("rl", Test_rl.suite);
      ("odg", Test_odg.suite);
      ("core", Test_core.suite);
      ("serve", Test_serve.suite);
      ("workloads", Test_workloads.suite);
      ("utils+clone", Test_utils_clone.suite);
      ("switch+misc", Test_switch_misc.suite) ]
