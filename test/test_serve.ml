(* Tests for the optimization-as-a-service layer (lib/serve): the
   byte-bounded LRU result cache, admission control over untrusted IR,
   the cached/uncached/batched byte-identity contract against
   [Inference.predict], and the live server loop — routing, cache hits,
   backpressure — over a loopback ephemeral port. *)

module Obs = Posetrl_obs
module Json = Obs.Json
module Runlog = Obs.Runlog
module Httpd = Obs.Httpd
module Cache = Posetrl_serve.Cache
module Engine = Posetrl_serve.Engine
module Server = Posetrl_serve.Server
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module W = Posetrl_workloads
module Rl = Posetrl_rl
open Posetrl_ir

(* --- the LRU result cache ------------------------------------------------------ *)

let test_cache_lru_eviction () =
  let c = Cache.create ~max_bytes:100 () in
  Cache.add c ~key:"a" ~bytes:40 1;
  Cache.add c ~key:"b" ~bytes:40 2;
  Cache.add c ~key:"c" ~bytes:40 3;
  (* a was least-recently-used: evicted to fit c *)
  Alcotest.(check (list string)) "MRU-first order" [ "c"; "b" ] (Cache.keys c);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "bytes fit the bound" 80 (Cache.total_bytes c);
  Alcotest.(check (option int)) "a gone" None (Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c")

let test_cache_find_refreshes () =
  let c = Cache.create ~max_bytes:100 () in
  Cache.add c ~key:"a" ~bytes:40 1;
  Cache.add c ~key:"b" ~bytes:40 2;
  ignore (Cache.find c "a");
  (* a is now MRU, so the next eviction takes b *)
  Cache.add c ~key:"c" ~bytes:40 3;
  Alcotest.(check (list string)) "b evicted, a kept" [ "c"; "a" ] (Cache.keys c);
  (* mem neither refreshes order nor counts toward hit/miss *)
  let h = Cache.hits c and m = Cache.misses c in
  ignore (Cache.mem c "a");
  ignore (Cache.mem c "nope");
  Alcotest.(check int) "mem leaves hits" h (Cache.hits c);
  Alcotest.(check int) "mem leaves misses" m (Cache.misses c)

let test_cache_replace_and_oversize () =
  let c = Cache.create ~max_bytes:100 () in
  Cache.add c ~key:"a" ~bytes:40 1;
  Cache.add c ~key:"a" ~bytes:60 2;
  Alcotest.(check int) "replace keeps one entry" 1 (Cache.length c);
  Alcotest.(check int) "replace swaps the bytes" 60 (Cache.total_bytes c);
  Alcotest.(check (option int)) "replace swaps the value" (Some 2)
    (Cache.find c "a");
  (* an entry that can never fit is refused without evicting the rest *)
  Cache.add c ~key:"huge" ~bytes:200 3;
  Alcotest.(check (option int)) "oversize refused" None (Cache.find c "huge");
  Alcotest.(check int) "existing entry survives" 1 (Cache.length c)

let test_cache_hit_miss_counters () =
  let c = Cache.create () in
  Cache.add c ~key:"a" ~bytes:1 0;
  ignore (Cache.find c "a");
  ignore (Cache.find c "a");
  ignore (Cache.find c "nope");
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

(* --- engine: admission + inference identity ------------------------------------ *)

let x86 = CG.Target.x86_64

let mk_agent () =
  let rng = Posetrl_support.Rng.create 0 in
  Rl.Dqn.create rng ~state_dim:C.Environment.state_dim ~hidden:[ 16; 8 ]
    ~n_actions:(O.Action_space.n_actions O.Action_space.odg)

let mk_engine ?cache_bytes ?max_steps () =
  Engine.create ?cache_bytes ?max_steps ~agent:(mk_agent ())
    ~actions:O.Action_space.odg ~target:x86 ()

let suite_programs = lazy (W.Suites.all_programs ())

let program (i : int) : Modul.t =
  let ps = Lazy.force suite_programs in
  snd (List.nth ps (i mod List.length ps))

let test_admit () =
  let e = mk_engine () in
  (match Engine.admit e "complete garbage !!" with
   | Error diag ->
     Alcotest.(check (option string)) "parse error reported"
       (Some "parse error") (Runlog.str "error" diag)
   | Ok _ -> Alcotest.fail "garbage must not be admitted");
  let text = Printer.module_to_string (program 0) in
  match Engine.admit e text, Engine.admit e (text ^ "\n\n") with
  | Ok a, Ok b ->
    Alcotest.(check string) "whitespace variants share a key" a.Engine.key
      b.Engine.key
  | _ -> Alcotest.fail "a suite program must be admitted"

let schedule_of (doc : Json.t) : int list =
  match Runlog.field "schedule" doc with
  | Some (Json.Arr xs) ->
    List.map (function Json.Int i -> i | _ -> -1) xs
  | _ -> Alcotest.fail "result document has no schedule"

(* The serving contract: cached, uncached and batched answers are all
   byte-identical to a plain [Inference.predict] rollout. *)
let prop_cache_identity =
  QCheck2.Test.make ~count:4
    ~name:"/optimize = cached /optimize = Inference.predict"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let e = mk_engine () in
      let m = program seed in
      let adm =
        match Engine.admit e (Printer.module_to_string m) with
        | Ok adm -> adm
        | Error _ -> QCheck2.Test.fail_report "suite program rejected"
      in
      let cold = Engine.optimize e adm in
      let hot = Engine.optimize e adm in
      if Json.to_string cold <> Json.to_string hot then
        QCheck2.Test.fail_report "cached answer differs from uncached";
      let roll =
        C.Inference.predict ~agent:(mk_agent ()) ~actions:O.Action_space.odg
          ~target:x86 m
      in
      if schedule_of cold <> roll.C.Inference.actions then
        QCheck2.Test.fail_report "schedule differs from Inference.predict";
      (match Runlog.str "optimized_ir" cold with
       | Some ir
         when ir = Printer.module_to_string roll.C.Inference.optimized ->
         ()
       | _ -> QCheck2.Test.fail_report "optimized IR differs");
      true)

let test_batched_rollout_matches_sequential () =
  let e = mk_engine () in
  let ms = [ program 0; program 3; program 7 ] in
  let adms =
    List.map
      (fun m ->
        match Engine.admit e (Printer.module_to_string m) with
        | Ok adm -> adm
        | Error _ -> Alcotest.fail "suite program rejected")
      ms
  in
  let docs = Engine.optimize_many e adms in
  List.iter2
    (fun m doc ->
      let roll =
        C.Inference.predict ~agent:(mk_agent ()) ~actions:O.Action_space.odg
          ~target:x86 m
      in
      Alcotest.(check (list int))
        (Printf.sprintf "batched schedule for %s" m.Modul.name)
        roll.C.Inference.actions (schedule_of doc))
    ms docs;
  (* a duplicate in the batch is deduplicated but still answered *)
  let twice = Engine.optimize_many e [ List.hd adms; List.hd adms ] in
  match twice with
  | [ a; b ] ->
    Alcotest.(check string) "duplicate answered identically"
      (Json.to_string a) (Json.to_string b)
  | _ -> Alcotest.fail "two requests, two answers"

(* --- server: live socket -------------------------------------------------------- *)

(* Open a connection and write the request bytes without reading yet —
   the pump answers once all concurrent clients are connected. *)
let send ~port (raw : string) : Unix.file_descr =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  ignore (Unix.write_substring sock raw 0 (String.length raw));
  sock

let recv (sock : Unix.file_descr) : string =
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 8192 in
      let eof = ref false in
      while not !eof do
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> eof := true
        | n -> Buffer.add_subbytes buf chunk 0 n
      done;
      Buffer.contents buf)

let post ?(path = "/optimize") (body : string) : string =
  Printf.sprintf "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
    path (String.length body) body

let status_of (raw : string) : int = int_of_string (String.sub raw 9 3)

let body_of (raw : string) : string =
  let rec find i =
    if i + 3 >= String.length raw then String.length raw
    else if String.sub raw i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let i = find 0 in
  String.sub raw i (String.length raw - i)

let with_server ?max_body ?queue_cap (f : Server.t -> 'a) : 'a =
  let engine = mk_engine () in
  let srv = Server.create ?max_body ?queue_cap ~port:0 ~engine () in
  Fun.protect ~finally:(fun () -> Server.close srv) (fun () -> f srv)

let test_server_optimize_and_cache () =
  with_server (fun srv ->
      let port = Server.port srv in
      let text = Printer.module_to_string (program 0) in
      let s1 = send ~port (post text) in
      Server.pump srv;
      let r1 = recv s1 in
      Alcotest.(check int) "cold optimize is 200" 200 (status_of r1);
      let doc = Json.of_string (body_of r1) in
      Alcotest.(check (option string)) "result kind" (Some "optimize-result")
        (Runlog.str "kind" doc);
      (match Runlog.str "optimized_ir" doc with
       | Some ir -> ignore (Parser.parse_module ir)
       | None -> Alcotest.fail "optimized IR missing");
      Alcotest.(check bool) "non-empty schedule" true (schedule_of doc <> []);
      (* second POST: byte-identical bytes, counted as a cache hit *)
      let s2 = send ~port (post text) in
      Server.pump srv;
      let r2 = recv s2 in
      Alcotest.(check string) "hit is byte-identical" r1 r2;
      let stats = Server.stats_json srv in
      Alcotest.(check (option (float 0.0))) "one cache hit" (Some 1.0)
        (Runlog.num "cache_hits" stats);
      Alcotest.(check (option (float 0.0))) "stats count requests" (Some 2.0)
        (Runlog.num "requests" stats))

let test_server_backpressure () =
  with_server ~queue_cap:1 (fun srv ->
      let port = Server.port srv in
      let text = Printer.module_to_string (program 1) in
      (* two concurrent misses against a queue of one: exactly one gets
         served, the other is told to come back *)
      let s1 = send ~port (post text) in
      let s2 = send ~port (post text) in
      Server.pump srv;
      let rs = [ recv s1; recv s2 ] in
      let codes = List.sort compare (List.map status_of rs) in
      Alcotest.(check (list int)) "one 200, one 429" [ 200; 429 ] codes;
      let busy = List.find (fun r -> status_of r = 429) rs in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "Retry-After advertised" true
        (contains busy "Retry-After:");
      (* the rejected client retries once the queue drained: now a hit *)
      let s3 = send ~port (post text) in
      Server.pump srv;
      Alcotest.(check int) "retry succeeds" 200 (status_of (recv s3)))

let test_server_batch_route () =
  with_server (fun srv ->
      let port = Server.port srv in
      let good = Printer.module_to_string (program 2) in
      let body = Json.to_string (Json.Arr [ Json.Str good; Json.Str "junk !" ]) in
      let s = send ~port (post ~path:"/optimize/batch" body) in
      Server.pump srv;
      let raw = recv s in
      Alcotest.(check int) "batch is 200" 200 (status_of raw);
      match Runlog.field "results" (Json.of_string (body_of raw)) with
      | Some (Json.Arr [ ok; bad ]) ->
        Alcotest.(check (option string)) "first optimized"
          (Some "optimize-result") (Runlog.str "kind" ok);
        Alcotest.(check (option string)) "second rejected with diagnostics"
          (Some "parse error") (Runlog.str "error" bad)
      | _ -> Alcotest.fail "batch must answer per-item results")

let test_server_admission_and_limits () =
  with_server ~max_body:512 (fun srv ->
      let port = Server.port srv in
      (* malformed IR: a 400 carrying the diagnostics document *)
      let s1 = send ~port (post "module broken\nfunc @f() {") in
      Server.pump srv;
      let r1 = recv s1 in
      Alcotest.(check int) "malformed IR is 400" 400 (status_of r1);
      let diag = Json.of_string (body_of r1) in
      Alcotest.(check bool) "diagnostics present" true
        (Runlog.field "diagnostics" diag <> None);
      (* a body over the bound: 413 before any parsing happens *)
      let s2 = send ~port (post (String.make 2048 'x')) in
      Server.pump srv;
      Alcotest.(check int) "oversized body is 413" 413 (status_of (recv s2));
      (* GET /serve: the live stats document *)
      let s3 = send ~port "GET /serve HTTP/1.1\r\nHost: t\r\n\r\n" in
      Server.pump srv;
      let stats = Json.of_string (body_of (recv s3)) in
      Alcotest.(check (option string)) "stats kind" (Some "serve-stats")
        (Runlog.str "kind" stats))

let suite =
  [ Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache find refreshes" `Quick test_cache_find_refreshes;
    Alcotest.test_case "cache replace + oversize" `Quick
      test_cache_replace_and_oversize;
    Alcotest.test_case "cache hit/miss counters" `Quick
      test_cache_hit_miss_counters;
    Alcotest.test_case "admission" `Quick test_admit;
    QCheck_alcotest.to_alcotest prop_cache_identity;
    Alcotest.test_case "batched = sequential rollout" `Slow
      test_batched_rollout_matches_sequential;
    Alcotest.test_case "server optimize + cache hit" `Quick
      test_server_optimize_and_cache;
    Alcotest.test_case "server backpressure" `Quick test_server_backpressure;
    Alcotest.test_case "server batch route" `Quick test_server_batch_route;
    Alcotest.test_case "server admission + limits" `Quick
      test_server_admission_and_limits ]
