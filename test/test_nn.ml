(* Tests for the neural-network substrate: matrices, layers (gradient
   check against finite differences), MLP training, Adam. *)

open Posetrl_support
open Posetrl_nn

let check_float = Alcotest.(check (float 1e-6))

let test_matvec () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((i * 3) + j + 1)) in
  (* [[1 2 3];[4 5 6]] * [1;1;1] = [6;15] *)
  let y = Matrix.matvec m [| 1.0; 1.0; 1.0 |] in
  check_float "y0" 6.0 y.(0);
  check_float "y1" 15.0 y.(1)

let test_matvec_t () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((i * 3) + j + 1)) in
  let y = Matrix.matvec_t m [| 1.0; 1.0 |] in
  check_float "col sums" 5.0 y.(0);
  check_float "col sums" 7.0 y.(1);
  check_float "col sums" 9.0 y.(2)

let test_outer_add () =
  let m = Matrix.create 2 2 in
  Matrix.outer_add m ~k:2.0 [| 1.0; 3.0 |] [| 4.0; 5.0 |];
  check_float "m00" 8.0 (Matrix.get m 0 0);
  check_float "m11" 30.0 (Matrix.get m 1 1)

let test_layer_forward_relu () =
  let rng = Rng.create 1 in
  let l = Layer.create rng ~in_dim:2 ~out_dim:2 ~relu:true in
  (* force known weights *)
  Matrix.set l.Layer.w 0 0 1.0;
  Matrix.set l.Layer.w 0 1 0.0;
  Matrix.set l.Layer.w 1 0 0.0;
  Matrix.set l.Layer.w 1 1 (-1.0);
  l.Layer.b.(0) <- 0.5;
  l.Layer.b.(1) <- 0.0;
  let out, _ = Layer.forward l [| 1.0; 2.0 |] in
  check_float "relu passes positive" 1.5 out.(0);
  check_float "relu clamps negative" 0.0 out.(1)

(* numerical gradient check of a 2-layer MLP on a scalar loss *)
let test_gradient_check () =
  let rng = Rng.create 13 in
  let net = Mlp.create rng [ 3; 4; 2 ] in
  let x = [| 0.3; -0.8; 0.5 |] in
  let target = 1 in
  let loss_of () =
    let out = Mlp.forward net x in
    let l, _ = Loss.huber ~pred:out.(target) ~target:2.0 () in
    l
  in
  (* analytical gradients *)
  Mlp.zero_grad net;
  let out, caches = Mlp.forward_cached net x in
  let _, dpred = Loss.huber ~pred:out.(target) ~target:2.0 () in
  let dout = Array.make 2 0.0 in
  dout.(target) <- dpred;
  Mlp.backward net caches dout;
  (* compare against central differences on a few weights *)
  let eps = 1e-5 in
  let layer = net.Mlp.layers.(0) in
  for idx = 0 to 5 do
    let orig = layer.Layer.w.Matrix.data.(idx) in
    layer.Layer.w.Matrix.data.(idx) <- orig +. eps;
    let lp = loss_of () in
    layer.Layer.w.Matrix.data.(idx) <- orig -. eps;
    let lm = loss_of () in
    layer.Layer.w.Matrix.data.(idx) <- orig;
    let numeric = (lp -. lm) /. (2.0 *. eps) in
    let analytic = layer.Layer.gw.Matrix.data.(idx) in
    Alcotest.(check bool)
      (Printf.sprintf "grad[%d] %.6f vs %.6f" idx analytic numeric)
      true
      (Float.abs (analytic -. numeric) < 1e-3)
  done

let test_mlp_learns_xor () =
  let rng = Rng.create 5 in
  let net = Mlp.create rng [ 2; 8; 1 ] in
  let optim = Optim.create ~lr:0.02 ~grad_clip:0.0 () in
  let data =
    [| ([| 0.0; 0.0 |], 0.0); ([| 0.0; 1.0 |], 1.0);
       ([| 1.0; 0.0 |], 1.0); ([| 1.0; 1.0 |], 0.0) |]
  in
  for _epoch = 1 to 3000 do
    Mlp.zero_grad net;
    Array.iter
      (fun (x, y) ->
        let out, caches = Mlp.forward_cached net x in
        let _, d = Loss.mse ~pred:out.(0) ~target:y () in
        Mlp.backward net caches [| d /. 4.0 |])
      data;
    Optim.step optim net
  done;
  Array.iter
    (fun (x, y) ->
      let out = Mlp.forward net x in
      Alcotest.(check bool)
        (Printf.sprintf "xor(%g,%g)=%g got %g" x.(0) x.(1) y out.(0))
        true
        (Float.abs (out.(0) -. y) < 0.25))
    data

let test_adam_decreases_loss () =
  let rng = Rng.create 7 in
  let net = Mlp.create rng [ 4; 8; 1 ] in
  let optim = Optim.create ~lr:0.01 () in
  let inputs = Array.init 16 (fun k -> Array.init 4 (fun j -> float_of_int ((k + j) mod 5) /. 5.0)) in
  let target x = (2.0 *. x.(0)) -. x.(2) +. 0.5 in
  let epoch_loss () =
    Array.fold_left
      (fun acc x ->
        let out = Mlp.forward net x in
        let l, _ = Loss.mse ~pred:out.(0) ~target:(target x) () in
        acc +. l)
      0.0 inputs
  in
  let before = epoch_loss () in
  for _ = 1 to 500 do
    Mlp.zero_grad net;
    Array.iter
      (fun x ->
        let out, caches = Mlp.forward_cached net x in
        let _, d = Loss.mse ~pred:out.(0) ~target:(target x) () in
        Mlp.backward net caches [| d /. 16.0 |])
      inputs;
    Optim.step optim net
  done;
  let after = epoch_loss () in
  Alcotest.(check bool)
    (Printf.sprintf "loss %.4f -> %.4f" before after)
    true (after < before /. 5.0)

let test_copy_params () =
  let rng = Rng.create 3 in
  let a = Mlp.create rng [ 2; 3; 2 ] in
  let b = Mlp.create rng [ 2; 3; 2 ] in
  Mlp.copy_params ~src:a ~dst:b;
  let x = [| 0.5; -0.5 |] in
  Alcotest.(check bool) "identical outputs" true (Mlp.forward a x = Mlp.forward b x)

let test_param_count () =
  let rng = Rng.create 3 in
  let net = Mlp.create rng [ 300; 128; 64; 34 ] in
  Alcotest.(check int) "param count"
    ((300 * 128) + 128 + (128 * 64) + 64 + (64 * 34) + 34)
    (Mlp.param_count net)

let test_huber_regions () =
  let l1, d1 = Loss.huber ~pred:0.5 ~target:0.0 () in
  check_float "quadratic" 0.125 l1;
  check_float "grad" 0.5 d1;
  let l2, d2 = Loss.huber ~pred:3.0 ~target:0.0 () in
  check_float "linear" 2.5 l2;
  check_float "clipped grad" 1.0 d2

let test_grad_clip () =
  let rng = Rng.create 4 in
  let net = Mlp.create rng [ 2; 2 ] in
  Mlp.zero_grad net;
  (* inject a huge gradient *)
  net.Mlp.layers.(0).Layer.gw.Matrix.data.(0) <- 1e9;
  let optim = Optim.create ~lr:0.1 ~grad_clip:1.0 () in
  let before = net.Mlp.layers.(0).Layer.w.Matrix.data.(0) in
  Optim.step optim net;
  let after = net.Mlp.layers.(0).Layer.w.Matrix.data.(0) in
  Alcotest.(check bool) "clipped step bounded" true (Float.abs (after -. before) < 1.0)

(* --- batched gemm kernels ---------------------------------------------------

   The determinism contract (DESIGN.md §9): every gemm accumulates each
   output element in ascending inner-index order, so the tiled, the
   pool-parallel and the naive triple loop all produce *equal floats*,
   not merely close ones. These properties cross the tile boundary
   (tile = 64) on purpose. *)

let random_matrix rng rows cols =
  Matrix.init rows cols (fun _ _ -> Rng.normal rng)

let naive_mm (a : Matrix.t) (b : Matrix.t) : Matrix.t =
  let c = Matrix.create a.Matrix.rows b.Matrix.cols in
  for i = 0 to a.Matrix.rows - 1 do
    for j = 0 to b.Matrix.cols - 1 do
      let acc = ref 0.0 in
      for k = 0 to a.Matrix.cols - 1 do
        acc := !acc +. (Matrix.get a i k *. Matrix.get b k j)
      done;
      Matrix.set c i j !acc
    done
  done;
  c

let prop_gemm_matches_naive =
  QCheck2.Test.make ~count:40 ~name:"gemm = naive matmul (exact floats)"
    QCheck2.Gen.(
      quad (int_range 1 20) (int_range 1 90) (int_range 1 90) (int_range 0 10_000))
    (fun (m, k, n, seed) ->
      let rng = Rng.create seed in
      let a = random_matrix rng m k in
      let b = random_matrix rng k n in
      (Matrix.gemm a b).Matrix.data = (naive_mm a b).Matrix.data)

let prop_gemm_pool_matches_serial =
  QCheck2.Test.make ~count:20 ~name:"gemm ~pool = gemm (exact floats)"
    QCheck2.Gen.(
      quad (int_range 1 20) (int_range 1 90) (int_range 1 90) (int_range 0 10_000))
    (fun (m, k, n, seed) ->
      let rng = Rng.create seed in
      let a = random_matrix rng m k in
      let b = random_matrix rng k n in
      Pool.with_pool ~jobs:3 (fun pool ->
          (Matrix.gemm ~pool a b).Matrix.data = (Matrix.gemm a b).Matrix.data))

let prop_gemm_nt_matches_naive =
  QCheck2.Test.make ~count:40 ~name:"gemm_nt = a * b^T (exact floats)"
    QCheck2.Gen.(
      quad (int_range 1 20) (int_range 1 90) (int_range 1 90) (int_range 0 10_000))
    (fun (m, k, n, seed) ->
      let rng = Rng.create seed in
      let a = random_matrix rng m k in
      let b = random_matrix rng n k in
      let bt = Matrix.init k n (fun i j -> Matrix.get b j i) in
      (Matrix.gemm_nt a b).Matrix.data = (naive_mm a bt).Matrix.data)

let test_gemm_tn_acc () =
  (* c += a^T b, accumulating sample-major (ascending row of a/b) — the
     weight-gradient kernel. Must equal the per-sample outer_add loop
     exactly, including on a non-zero initial c. *)
  let rng = Rng.create 99 in
  let samples = 17 and d_out = 5 and d_in = 9 in
  let a = random_matrix rng samples d_out in
  let b = random_matrix rng samples d_in in
  let c_gemm = random_matrix rng d_out d_in in
  let c_ref = Matrix.copy c_gemm in
  Matrix.gemm_tn_acc c_gemm a b;
  for s = 0 to samples - 1 do
    Matrix.outer_add c_ref ~k:1.0 (Matrix.row a s) (Matrix.row b s)
  done;
  Alcotest.(check bool) "gemm_tn_acc = outer_add loop" true
    (c_gemm.Matrix.data = c_ref.Matrix.data)

let test_batch_forward_matches_per_sample () =
  let rng = Rng.create 21 in
  let net = Mlp.create rng [ 6; 11; 4 ] in
  let xs = Array.init 9 (fun _ -> Array.init 6 (fun _ -> Rng.normal rng)) in
  let q = Mlp.forward_batch net (Matrix.of_rows xs) in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "row %d equals per-sample forward" i)
        true
        (Matrix.row q i = Mlp.forward net x))
    xs

let test_batch_backward_matches_per_sample () =
  let rng = Rng.create 22 in
  let net_b = Mlp.create rng [ 6; 11; 4 ] in
  let net_s = Mlp.create rng [ 6; 11; 4 ] in
  Mlp.copy_params ~src:net_b ~dst:net_s;
  let xs = Array.init 9 (fun _ -> Array.init 6 (fun _ -> Rng.normal rng)) in
  let douts = Array.init 9 (fun _ -> Array.init 4 (fun _ -> Rng.normal rng)) in
  (* batched *)
  Mlp.zero_grad net_b;
  let _, caches = Mlp.forward_batch_cached net_b (Matrix.of_rows xs) in
  Mlp.backward_batch net_b caches (Matrix.of_rows douts);
  (* per-sample reference, samples ascending *)
  Mlp.zero_grad net_s;
  Array.iteri
    (fun i x ->
      let _, caches = Mlp.forward_cached net_s x in
      Mlp.backward net_s caches douts.(i))
    xs;
  Array.iteri
    (fun k (lb : Layer.t) ->
      let ls = net_s.Mlp.layers.(k) in
      Alcotest.(check bool)
        (Printf.sprintf "layer %d weight grads exact" k)
        true
        (lb.Layer.gw.Matrix.data = ls.Layer.gw.Matrix.data);
      Alcotest.(check bool)
        (Printf.sprintf "layer %d bias grads exact" k)
        true (lb.Layer.gb = ls.Layer.gb))
    net_b.Mlp.layers

let suite =
  [ Alcotest.test_case "matvec" `Quick test_matvec;
    Alcotest.test_case "matvec transpose" `Quick test_matvec_t;
    Alcotest.test_case "outer add" `Quick test_outer_add;
    Alcotest.test_case "layer relu" `Quick test_layer_forward_relu;
    Alcotest.test_case "gradient check" `Quick test_gradient_check;
    Alcotest.test_case "mlp learns xor" `Quick test_mlp_learns_xor;
    Alcotest.test_case "adam decreases loss" `Quick test_adam_decreases_loss;
    Alcotest.test_case "copy params" `Quick test_copy_params;
    Alcotest.test_case "param count" `Quick test_param_count;
    Alcotest.test_case "huber regions" `Quick test_huber_regions;
    Alcotest.test_case "grad clip" `Quick test_grad_clip;
    QCheck_alcotest.to_alcotest prop_gemm_matches_naive;
    QCheck_alcotest.to_alcotest prop_gemm_pool_matches_serial;
    QCheck_alcotest.to_alcotest prop_gemm_nt_matches_naive;
    Alcotest.test_case "gemm_tn_acc accumulates" `Quick test_gemm_tn_acc;
    Alcotest.test_case "batch forward = per-sample" `Quick
      test_batch_forward_matches_per_sample;
    Alcotest.test_case "batch backward = per-sample" `Quick
      test_batch_backward_matches_per_sample ]
