(* Tests for the live-telemetry layer: Prometheus exposition (Expo),
   the HTTP server (Httpd) request/response plumbing and route table,
   the Chrome trace-event export, and the [posetrl watch] dashboard
   renderer. Socket behaviour is covered end-to-end on a loopback
   ephemeral port; everything else is pure. *)

module Obs = Posetrl_obs
module Json = Obs.Json
module Metrics = Obs.Metrics
module Expo = Obs.Expo
module Httpd = Obs.Httpd
module Runlog = Obs.Runlog
module Run = Obs.Run

let check_float = Alcotest.(check (float 1e-9))

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_temp_dir (f : string -> 'a) : 'a =
  let dir = Filename.temp_file "posetrl_telemetry" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- Expo: name/label/value formatting ---------------------------------------- *)

let test_sanitize_name () =
  Alcotest.(check string) "dots" "posetrl_train_mean_reward"
    (Expo.sanitize_name "posetrl.train.mean-reward");
  Alcotest.(check string) "kept verbatim" "already_fine:name"
    (Expo.sanitize_name "already_fine:name");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Expo.sanitize_name "9lives")

let test_escape_label_value () =
  Alcotest.(check string) "backslash quote newline" "a\\\\b\\\"c\\nd"
    (Expo.escape_label_value "a\\b\"c\nd");
  Alcotest.(check string) "plain untouched" "x86-64"
    (Expo.escape_label_value "x86-64")

let test_format_value () =
  Alcotest.(check string) "integral without point" "3" (Expo.format_value 3.0);
  Alcotest.(check string) "fraction" "0.25" (Expo.format_value 0.25);
  Alcotest.(check string) "+Inf" "+Inf" (Expo.format_value infinity);
  Alcotest.(check string) "-Inf" "-Inf" (Expo.format_value neg_infinity);
  Alcotest.(check string) "NaN" "NaN" (Expo.format_value Float.nan)

(* --- Expo: golden scrape -------------------------------------------------------
   Byte-exact exposition of a counter, a gauge and a labeled histogram:
   the contract a Prometheus scraper actually parses. *)

let test_scrape_golden () =
  let r = Metrics.create () in
  let c = Metrics.counter ~r "posetrl.train.steps" in
  Metrics.inc c; Metrics.inc ~by:2.0 c;
  Metrics.set (Metrics.gauge ~r "posetrl.train.epsilon") 0.25;
  let h =
    Metrics.histogram ~r ~labels:[ ("space", "odg") ]
      ~buckets:[| 0.1; 1.0 |] "posetrl.odg.walk_len"
  in
  Metrics.observe h 0.05; Metrics.observe h 0.5; Metrics.observe h 5.0;
  Metrics.inc (Metrics.counter ~r ~labels:[ ("rule", "nan_loss") ] "posetrl.alerts.total");
  Metrics.set
    (Metrics.gauge ~r ~labels:[ ("action", "3") ] "posetrl.attrib.reward_total")
    12.5;
  (* the coverage gauges are published by a real table's [sample], not
     set by hand: a 3-node chain, both edges visited, a 50/50 action
     split — entropy exactly 1 bit, coverage exactly 100% *)
  let cov =
    Obs.Coverage.create ~registry:r
      { Obs.Coverage.nodes = [| "a"; "b"; "c" |];
        Obs.Coverage.edges = [| (0, 1); (1, 2) |];
        Obs.Coverage.action_paths = [| [| 0; 1 |]; [| 2 |] |] }
  in
  Obs.Coverage.observe cov ~action:0 ~pos:0 ~reward:0.0 ~r_binsize:0.0
    ~r_throughput:0.0;
  Obs.Coverage.observe cov ~action:1 ~pos:1 ~reward:0.0 ~r_binsize:0.0
    ~r_throughput:0.0;
  Obs.Coverage.sample cov ~step:2;
  (* the serve daemon's family: counter, labeled counter, histogram *)
  let hits = Metrics.counter ~r "posetrl.serve.cache_hits_total" in
  Metrics.inc hits; Metrics.inc hits;
  let lat =
    Metrics.histogram ~r ~buckets:[| 0.01; 0.1 |] "posetrl.serve.latency_seconds"
  in
  Metrics.observe lat 0.005; Metrics.observe lat 0.25;
  Metrics.inc ~by:3.0
    (Metrics.counter ~r ~labels:[ ("route", "optimize") ]
       "posetrl.serve.requests_total");
  let expected =
    String.concat ""
      [ "# HELP posetrl_alerts_total posetrl.alerts.total\n";
        "# TYPE posetrl_alerts_total counter\n";
        "posetrl_alerts_total{rule=\"nan_loss\"} 1\n";
        "# HELP posetrl_attrib_reward_total posetrl.attrib.reward_total\n";
        "# TYPE posetrl_attrib_reward_total gauge\n";
        "posetrl_attrib_reward_total{action=\"3\"} 12.5\n";
        "# HELP posetrl_coverage_edge_pct posetrl.coverage.edge_pct\n";
        "# TYPE posetrl_coverage_edge_pct gauge\n";
        "posetrl_coverage_edge_pct 100\n";
        "# HELP posetrl_coverage_edges_visited posetrl.coverage.edges_visited\n";
        "# TYPE posetrl_coverage_edges_visited gauge\n";
        "posetrl_coverage_edges_visited 2\n";
        "# HELP posetrl_coverage_entropy_bits posetrl.coverage.entropy_bits\n";
        "# TYPE posetrl_coverage_entropy_bits gauge\n";
        "posetrl_coverage_entropy_bits 1\n";
        "# HELP posetrl_coverage_nodes_visited posetrl.coverage.nodes_visited\n";
        "# TYPE posetrl_coverage_nodes_visited gauge\n";
        "posetrl_coverage_nodes_visited 3\n";
        "# HELP posetrl_odg_walk_len posetrl.odg.walk_len\n";
        "# TYPE posetrl_odg_walk_len histogram\n";
        "posetrl_odg_walk_len_bucket{space=\"odg\",le=\"0.1\"} 1\n";
        "posetrl_odg_walk_len_bucket{space=\"odg\",le=\"1\"} 2\n";
        "posetrl_odg_walk_len_bucket{space=\"odg\",le=\"+Inf\"} 3\n";
        "posetrl_odg_walk_len_sum{space=\"odg\"} 5.55\n";
        "posetrl_odg_walk_len_count{space=\"odg\"} 3\n";
        "# HELP posetrl_serve_cache_hits_total posetrl.serve.cache_hits_total\n";
        "# TYPE posetrl_serve_cache_hits_total counter\n";
        "posetrl_serve_cache_hits_total 2\n";
        "# HELP posetrl_serve_latency_seconds posetrl.serve.latency_seconds\n";
        "# TYPE posetrl_serve_latency_seconds histogram\n";
        "posetrl_serve_latency_seconds_bucket{le=\"0.01\"} 1\n";
        "posetrl_serve_latency_seconds_bucket{le=\"0.1\"} 1\n";
        "posetrl_serve_latency_seconds_bucket{le=\"+Inf\"} 2\n";
        "posetrl_serve_latency_seconds_sum 0.255\n";
        "posetrl_serve_latency_seconds_count 2\n";
        "# HELP posetrl_serve_requests_total posetrl.serve.requests_total\n";
        "# TYPE posetrl_serve_requests_total counter\n";
        "posetrl_serve_requests_total{route=\"optimize\"} 3\n";
        "# HELP posetrl_train_epsilon posetrl.train.epsilon\n";
        "# TYPE posetrl_train_epsilon gauge\n";
        "posetrl_train_epsilon 0.25\n";
        "# HELP posetrl_train_steps posetrl.train.steps\n";
        "# TYPE posetrl_train_steps counter\n";
        "posetrl_train_steps 3\n" ]
  in
  Alcotest.(check string) "golden exposition" expected (Expo.scrape ~r ())

let test_metrics_sum_accessor () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~r ~buckets:[| 1.0 |] "posetrl.test.h" in
  Metrics.observe h 0.5; Metrics.observe h 2.0;
  Metrics.inc (Metrics.counter ~r "posetrl.test.c");
  (* sum is exact for histograms and None elsewhere; value is the
     mirror image (histograms have no single scalar reading) *)
  check_float "histogram sum" 2.5 (Option.get (Metrics.sum ~r "posetrl.test.h"));
  Alcotest.(check (option (float 0.0))) "sum of a counter" None
    (Metrics.sum ~r "posetrl.test.c");
  Alcotest.(check (option (float 0.0))) "value of a histogram" None
    (Metrics.value ~r "posetrl.test.h");
  (* the snapshot row carries the mean as row_value, the sum as row_sum *)
  match
    List.find_opt
      (fun row -> row.Metrics.row_name = "posetrl.test.h")
      (Metrics.snapshot ~r ())
  with
  | None -> Alcotest.fail "histogram row missing from snapshot"
  | Some row ->
    check_float "row_value is the mean" 1.25 row.Metrics.row_value;
    check_float "row_sum is the sum" 2.5 row.Metrics.row_sum;
    Alcotest.(check int) "row_count" 2 row.Metrics.row_count;
    Alcotest.(check bool) "buckets end at +Inf" true
      (match List.rev row.Metrics.row_buckets with
       | (b, _) :: _ -> b = infinity
       | [] -> false)

(* --- Httpd: request/response plumbing ------------------------------------------ *)

let test_parse_request () =
  (match Httpd.parse_request "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" with
   | Ok req ->
     Alcotest.(check string) "method" "GET" req.Httpd.meth;
     Alcotest.(check string) "path" "/metrics" req.Httpd.path;
     Alcotest.(check string) "no body" "" req.Httpd.body
   | Error _ -> Alcotest.fail "GET should parse");
  (match Httpd.parse_request "GET /metrics?format=text HTTP/1.0\r\n" with
   | Ok req -> Alcotest.(check string) "query dropped" "/metrics" req.Httpd.path
   | Error _ -> Alcotest.fail "query string should parse");
  (match
     Httpd.parse_request
       "POST /optimize HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello-extra"
   with
   | Ok req ->
     Alcotest.(check string) "POST parses" "POST" req.Httpd.meth;
     Alcotest.(check string) "body cut at Content-Length" "hello" req.Httpd.body
   | Error _ -> Alcotest.fail "POST with a declared body should parse");
  match Httpd.parse_request "complete garbage" with
  | Error resp -> Alcotest.(check int) "garbage is 400" 400 resp.Httpd.status
  | Ok _ -> Alcotest.fail "garbage must be rejected"

(* Hardened POST parsing (DESIGN.md §14): missing/invalid/torn declared
   lengths are 400s, an oversized declaration is a 413, unknown methods
   stay 405 — all as responses, never as exceptions. *)
let test_parse_request_hardening () =
  let err raw =
    match Httpd.parse_request ~max_body:64 raw with
    | Error resp -> resp.Httpd.status
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" raw)
  in
  Alcotest.(check int) "POST without Content-Length" 400
    (err "POST /optimize HTTP/1.1\r\n\r\nbody");
  Alcotest.(check int) "non-numeric Content-Length" 400
    (err "POST /optimize HTTP/1.1\r\nContent-Length: two\r\n\r\nxx");
  Alcotest.(check int) "negative Content-Length" 400
    (err "POST /optimize HTTP/1.1\r\nContent-Length: -5\r\n\r\nxx");
  Alcotest.(check int) "torn body is 400"
    400
    (err "POST /optimize HTTP/1.1\r\nContent-Length: 40\r\n\r\nonly this");
  Alcotest.(check int) "oversized declaration is 413" 413
    (err "POST /optimize HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
  Alcotest.(check int) "PUT is 405" 405 (err "PUT /x HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "DELETE is 405" 405 (err "DELETE /x HTTP/1.1\r\n\r\n");
  (* headers are looked up case-insensitively *)
  match
    Httpd.parse_request "POST /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nok"
  with
  | Ok req -> Alcotest.(check string) "lowercase header" "ok" req.Httpd.body
  | Error _ -> Alcotest.fail "lowercase content-length should parse"

let test_render_response () =
  let wire = Httpd.render_response (Httpd.response "hello") in
  Alcotest.(check bool) "status line" true
    (String.starts_with ~prefix:"HTTP/1.1 200 OK\r\n" wire);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no keep-alive" true (contains wire "Connection: close\r\n");
  Alcotest.(check bool) "content length" true (contains wire "Content-Length: 5\r\n");
  Alcotest.(check bool) "body last" true (String.ends_with ~suffix:"\r\n\r\nhello" wire)

let test_telemetry_routes () =
  with_temp_dir (fun root ->
      let dir = Filename.concat root "r1" in
      let run = Run.create ~dir ~name:"r1" ~meta:[ ("kind", Json.Str "train") ] () in
      Run.progress run
        (Runlog.tick_record ~step:1 ~episode:0 ~epsilon:1.0 ~mean_reward:0.5
           ~mean_size_gain:0.0 ~r_binsize:0.0 ~r_throughput:0.0 ~loss:0.1 ());
      Run.finish run;
      let r = Metrics.create () in
      Metrics.set (Metrics.gauge ~r "posetrl.train.reward") 1.5;
      let handler =
        Httpd.telemetry_handler ~registry:r ~runs_root:root
          ~health:(fun () -> Json.Obj [ ("status", Json.Str "running") ])
          ()
      in
      let get path = handler { Httpd.meth = "GET"; path; body = "" } in
      let metrics = get "/metrics" in
      Alcotest.(check int) "metrics 200" 200 metrics.Httpd.status;
      Alcotest.(check bool) "exposition body" true
        (String.starts_with ~prefix:"# HELP posetrl_train_reward"
           metrics.Httpd.body);
      let health = get "/healthz" in
      Alcotest.(check int) "healthz 200" 200 health.Httpd.status;
      Alcotest.(check (option string)) "healthz json" (Some "running")
        (Runlog.str "status" (Json.of_string health.Httpd.body));
      (match Json.of_string (get "/runs").Httpd.body with
       | Json.Arr [ one ] ->
         Alcotest.(check (option string)) "runs lists r1" (Some "r1")
           (Runlog.str "id" one)
       | _ -> Alcotest.fail "/runs should list exactly one run");
      (match Json.of_string (get "/runs/r1/progress").Httpd.body with
       | doc ->
         Alcotest.(check (option string)) "progress id" (Some "r1")
           (Runlog.str "id" doc);
         (match Runlog.field "records" doc with
          | Some (Json.Arr [ tick ]) ->
            Alcotest.(check (option (float 0.0))) "tick round trip" (Some 1.0)
              (Runlog.num "step" tick)
          | _ -> Alcotest.fail "expected one progress record"));
      Alcotest.(check int) "unknown run 404" 404
        (get "/runs/nope/progress").Httpd.status;
      Alcotest.(check int) "unknown route 404" 404 (get "/nope").Httpd.status;
      (* no alerts thunk wired: /alerts still answers, with [] *)
      Alcotest.(check string) "alerts default empty" "[]\n"
        (get "/alerts").Httpd.body)

let test_alerts_route () =
  let fired = ref [] in
  let handler =
    Httpd.telemetry_handler
      ~alerts:(fun () -> !fired)
      ~health:(fun () -> Json.Obj [])
      ()
  in
  let get () = handler { Httpd.meth = "GET"; path = "/alerts"; body = "" } in
  Alcotest.(check string) "empty before any alert" "[]\n" (get ()).Httpd.body;
  fired :=
    [ Obs.Health.alert_to_json
        { Obs.Health.a_rule = "nan_loss"; a_step = 200; a_severity = "error";
          a_message = "boom"; a_value = Float.nan } ];
  let resp = get () in
  Alcotest.(check int) "alerts 200" 200 resp.Httpd.status;
  match Json.of_string resp.Httpd.body with
  | Json.Arr [ a ] ->
    Alcotest.(check (option string)) "rule served" (Some "nan_loss")
      (Runlog.str "rule" a);
    (* the non-finite value crossed the wire as its string encoding *)
    Alcotest.(check (option string)) "nan encoded" (Some "nan")
      (Runlog.str "value" a)
  | _ -> Alcotest.fail "/alerts should serve the fired alert"

let test_coverage_route () =
  (* default thunk: the route answers 404, not a crash or empty body *)
  let bare = Httpd.telemetry_handler ~health:(fun () -> Json.Obj []) () in
  Alcotest.(check int) "no thunk wired is 404" 404
    (bare { Httpd.meth = "GET"; path = "/coverage"; body = "" }).Httpd.status;
  let doc = ref None in
  let handler =
    Httpd.telemetry_handler
      ~coverage:(fun () -> !doc)
      ~health:(fun () -> Json.Obj [])
      ()
  in
  let get () = handler { Httpd.meth = "GET"; path = "/coverage"; body = "" } in
  Alcotest.(check int) "thunk says None: still 404" 404 (get ()).Httpd.status;
  doc :=
    Some
      (Json.Obj
         [ ("kind", Json.Str "coverage"); ("edge_pct", Json.Float 42.5) ]);
  let resp = get () in
  Alcotest.(check int) "coverage 200" 200 resp.Httpd.status;
  let served = Json.of_string resp.Httpd.body in
  Alcotest.(check (option string)) "kind served" (Some "coverage")
    (Runlog.str "kind" served);
  Alcotest.(check (option (float 0.0))) "live value served" (Some 42.5)
    (Runlog.num "edge_pct" served)

(* --- Httpd: live socket -------------------------------------------------------- *)

let test_live_socket () =
  let server =
    Httpd.create ~port:0
      ~handler:(fun req ->
        if req.Httpd.path = "/healthz" then
          Httpd.json_response (Json.Obj [ ("status", Json.Str "running") ])
        else Httpd.response ~status:404 "nope")
      ()
  in
  Fun.protect
    ~finally:(fun () -> Httpd.close server)
    (fun () ->
      Alcotest.(check bool) "ephemeral port assigned" true (Httpd.port server > 0);
      (* no pending connection: pump returns immediately *)
      Httpd.pump server;
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect sock
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Httpd.port server));
          let req = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" in
          ignore (Unix.write_substring sock req 0 (String.length req));
          Httpd.pump server;
          let buf = Bytes.create 8192 in
          let n = ref 0 and eof = ref false in
          while not !eof do
            match Unix.read sock buf !n (Bytes.length buf - !n) with
            | 0 -> eof := true
            | k -> n := !n + k
          done;
          let raw = Bytes.sub_string buf 0 !n in
          Alcotest.(check bool) "HTTP 200 over the wire" true
            (String.starts_with ~prefix:"HTTP/1.1 200" raw);
          Alcotest.(check bool) "json body served" true
            (String.ends_with ~suffix:"{\"status\":\"running\"}\n" raw)))

(* --- Chrome trace export -------------------------------------------------------- *)

let mk_event ?(attrs = []) ?(depth = 0) ?(tid = 0) name ~t ~dur =
  { Obs.Event.name; attrs; t_start = t; dur; self = dur; depth; tid }

let test_chrome_roundtrip () =
  let events =
    [ mk_event "posetrl.pass.run" ~t:0.002 ~dur:0.001 ~depth:1
        ~attrs:[ ("pass", Obs.Event.S "dce") ];
      mk_event "posetrl.train.episode" ~t:0.001 ~dur:0.004 ]
  in
  match Json.of_string (Obs.Chrome.to_string events) with
  | Json.Arr [ meta; first; second ] ->
    (* thread_name metadata first, then X events sorted by start time *)
    Alcotest.(check (option string)) "thread metadata" (Some "M")
      (Runlog.str "ph" meta);
    Alcotest.(check (option string)) "main track named" (Some "main")
      (Option.bind (Runlog.field "args" meta) (Runlog.str "name"));
    Alcotest.(check (option string)) "outer first" (Some "posetrl.train.episode")
      (Runlog.str "name" first);
    Alcotest.(check (option string)) "phase X" (Some "X")
      (Runlog.str "ph" first);
    check_float "ts in us" 1000.0 (Option.get (Runlog.num "ts" first));
    check_float "dur in us" 4000.0 (Option.get (Runlog.num "dur" first));
    Alcotest.(check (option (float 0.0))) "track = emitting domain" (Some 0.0)
      (Runlog.num "tid" second);
    Alcotest.(check (option string)) "attrs land in args" (Some "dce")
      (Option.bind (Runlog.field "args" second) (Runlog.str "pass"));
    Alcotest.(check (option (float 0.0))) "depth in args" (Some 1.0)
      (Option.bind (Runlog.field "args" second) (Runlog.num "depth"))
  | _ -> Alcotest.fail "expected metadata + two trace events"

let test_chrome_worker_tracks () =
  (* events from two domains get distinct labeled tracks *)
  let events =
    [ mk_event "posetrl.pool.task" ~t:0.001 ~dur:0.002 ~tid:3;
      mk_event "posetrl.eval.batch" ~t:0.0 ~dur:0.004 ]
  in
  match Json.of_string (Obs.Chrome.to_string events) with
  | Json.Arr [ m0; m3; _batch; task ] ->
    Alcotest.(check (option string)) "main label" (Some "main")
      (Option.bind (Runlog.field "args" m0) (Runlog.str "name"));
    Alcotest.(check (option string)) "worker label" (Some "domain-3")
      (Option.bind (Runlog.field "args" m3) (Runlog.str "name"));
    Alcotest.(check (option (float 0.0))) "task on worker track" (Some 3.0)
      (Runlog.num "tid" task)
  | _ -> Alcotest.fail "expected two metadata + two trace events"

let test_chrome_write_is_valid_json () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "trace.chrome.json" in
      Obs.Chrome.write ~path [ mk_event "e" ~t:0.0 ~dur:0.5 ];
      match Runlog.read_json_file path with
      | Json.Arr [ _meta; _event ] -> ()
      | _ -> Alcotest.fail "written file should be metadata + one event")

(* --- watch dashboard ------------------------------------------------------------ *)

let test_action_histogram () =
  let ep actions =
    Runlog.episode_record ~actions ~episode:0 ~step:1 ~reward:0.0 ~r_binsize:0.0
      ~r_throughput:0.0 ~size_gain_pct:0.0 ~thru_gain_pct:0.0 ~epsilon:1.0
      ~loss:0.0 ()
  in
  let tick =
    Runlog.tick_record ~step:1 ~episode:0 ~epsilon:1.0 ~mean_reward:0.0
      ~mean_size_gain:0.0 ~r_binsize:0.0 ~r_throughput:0.0 ~loss:0.0 ()
  in
  (* ticks don't contribute; counts sort descending, ties by action id *)
  Alcotest.(check (list (pair int int))) "fold + sort"
    [ (2, 3); (0, 1); (5, 1) ]
    (Obs.Dashboard.action_histogram [ tick; ep [ 2; 0; 2 ]; ep [ 5; 2 ] ]);
  Alcotest.(check (list (pair int int))) "empty" []
    (Obs.Dashboard.action_histogram [ tick ])

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dashboard_render () =
  let manifest =
    Json.Obj [ ("kind", Json.Str "train"); ("status", Json.Str "running") ]
  in
  let records =
    [ Runlog.tick_record ~step:200 ~episode:13 ~epsilon:0.9 ~mean_reward:4.5
        ~mean_size_gain:1.0 ~r_binsize:0.1 ~r_throughput:0.2 ~loss:0.05 ();
      Runlog.episode_record ~actions:[ 1; 1; 3 ] ~episode:13 ~step:195
        ~reward:6.0 ~r_binsize:0.5 ~r_throughput:0.25 ~size_gain_pct:8.0
        ~thru_gain_pct:1.0 ~epsilon:0.9 ~loss:0.04 () ]
  in
  let frame =
    Obs.Dashboard.render ~id:"r7" ~manifest ~records ~dropped:1 ()
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "frame has %S" needle) true
        (contains frame needle))
    [ "run r7  [train, running]";
      "step 200";
      "eps 0.900";
      "(1 torn progress line skipped)";
      "reward";
      "epsilon";
      "loss";
      "action selections";
      "action 1        2";
      "action 3        1" ];
  (* empty ledger: a placeholder, not an exception or a blank screen *)
  let empty = Obs.Dashboard.render ~id:"r8" ~manifest ~records:[] ~dropped:0 () in
  Alcotest.(check bool) "placeholder on empty" true
    (contains empty "(no progress records yet)")

let test_dashboard_alerts_row () =
  let manifest =
    Json.Obj [ ("kind", Json.Str "train"); ("status", Json.Str "running") ]
  in
  let render alerts =
    Obs.Dashboard.render ?alerts:(Some alerts) ~id:"r9" ~manifest ~records:[]
      ~dropped:0 ()
  in
  (* pre-watchdog run (PR 2–6 ledgers): an explicit placeholder, never a
     blank or garbled row *)
  let old_run = render None in
  Alcotest.(check bool) "placeholder for pre-watchdog runs" true
    (contains old_run "alerts (not recorded by this run)");
  Alcotest.(check bool) "no red escape in placeholder" false
    (contains old_run "\027[31m");
  (* healthy run: alerts file present and empty *)
  Alcotest.(check bool) "healthy run says none" true
    (contains (render (Some [])) "alerts none");
  (* fired alerts render as red rows, newest kept under the cap *)
  let alert step =
    Obs.Health.alert_to_json
      { Obs.Health.a_rule = "reward_collapse"; a_step = step;
        a_severity = "warn"; a_message = "collapse"; a_value = 1.0 }
  in
  let one = render (Some [ alert 400 ]) in
  Alcotest.(check bool) "count row" true (contains one "1 fired");
  Alcotest.(check bool) "red escape present" true (contains one "\027[31m");
  Alcotest.(check bool) "rule named" true (contains one "reward_collapse");
  let many = render (Some (List.init 8 (fun i -> alert (i * 100)))) in
  Alcotest.(check bool) "cap note" true (contains many "(last 5 shown)");
  Alcotest.(check bool) "newest retained" true (contains many "step 700");
  Alcotest.(check bool) "oldest dropped" false (contains many "step 0  ")

let test_dashboard_coverage_row () =
  let manifest =
    Json.Obj [ ("kind", Json.Str "train"); ("status", Json.Str "running") ]
  in
  let render coverage =
    Obs.Dashboard.render ?coverage:(Some coverage) ~id:"r10" ~manifest
      ~records:[] ~dropped:0 ()
  in
  (* pre-coverage run: an explicit placeholder, like the alerts row *)
  Alcotest.(check bool) "placeholder for pre-coverage runs" true
    (contains (render None) "coverage (not recorded by this run)");
  (* a real document renders the summary straight from coverage.json *)
  let cov =
    Obs.Coverage.create
      { Obs.Coverage.nodes = [| "a"; "b"; "c" |];
        Obs.Coverage.edges = [| (0, 1); (1, 2) |];
        Obs.Coverage.action_paths = [| [| 0; 1 |]; [| 2 |] |] }
  in
  Obs.Coverage.observe cov ~action:0 ~pos:0 ~reward:0.0 ~r_binsize:0.0
    ~r_throughput:0.0;
  let frame = render (Some (Obs.Coverage.to_json cov)) in
  Alcotest.(check bool) "edge fraction rendered" true
    (contains frame "coverage edges 1/2 (50.0%)");
  Alcotest.(check bool) "entropy rendered" true (contains frame "0.00 bits");
  Alcotest.(check bool) "node fraction rendered" true
    (contains frame "nodes 2/3")

(* --- progress-record diagnostics fields ----------------------------------------- *)

let test_record_diagnostic_fields () =
  let with_q =
    Runlog.tick_record ~q_mean:0.5 ~q_max:2.0 ~step:1 ~episode:0 ~epsilon:1.0
      ~mean_reward:0.0 ~mean_size_gain:0.0 ~r_binsize:0.0 ~r_throughput:0.0
      ~loss:0.0 ()
  in
  check_float "q_mean persisted" 0.5 (Option.get (Runlog.num "q_mean" with_q));
  check_float "q_max persisted" 2.0 (Option.get (Runlog.num "q_max" with_q));
  let without_q =
    Runlog.tick_record ~step:1 ~episode:0 ~epsilon:1.0 ~mean_reward:0.0
      ~mean_size_gain:0.0 ~r_binsize:0.0 ~r_throughput:0.0 ~loss:0.0 ()
  in
  Alcotest.(check (option (float 0.0))) "q fields omitted when absent" None
    (Runlog.num "q_mean" without_q);
  let ep =
    Runlog.episode_record ~actions:[ 4; 2 ] ~episode:0 ~step:15 ~reward:1.0
      ~r_binsize:0.0 ~r_throughput:0.0 ~size_gain_pct:0.0 ~thru_gain_pct:0.0
      ~epsilon:1.0 ~loss:0.0 ()
  in
  match Runlog.field "actions" ep with
  | Some (Json.Arr [ Json.Int 4; Json.Int 2 ]) -> ()
  | _ -> Alcotest.fail "episode actions should persist in order"

let suite =
  [ Alcotest.test_case "sanitize_name" `Quick test_sanitize_name;
    Alcotest.test_case "escape_label_value" `Quick test_escape_label_value;
    Alcotest.test_case "format_value" `Quick test_format_value;
    Alcotest.test_case "scrape golden" `Quick test_scrape_golden;
    Alcotest.test_case "Metrics.sum + row fields" `Quick test_metrics_sum_accessor;
    Alcotest.test_case "parse_request" `Quick test_parse_request;
    Alcotest.test_case "parse_request hardening" `Quick
      test_parse_request_hardening;
    Alcotest.test_case "render_response" `Quick test_render_response;
    Alcotest.test_case "telemetry routes" `Quick test_telemetry_routes;
    Alcotest.test_case "/alerts route" `Quick test_alerts_route;
    Alcotest.test_case "/coverage route" `Quick test_coverage_route;
    Alcotest.test_case "live socket" `Quick test_live_socket;
    Alcotest.test_case "chrome round trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "chrome worker tracks" `Quick test_chrome_worker_tracks;
    Alcotest.test_case "chrome write" `Quick test_chrome_write_is_valid_json;
    Alcotest.test_case "action histogram" `Quick test_action_histogram;
    Alcotest.test_case "dashboard render" `Quick test_dashboard_render;
    Alcotest.test_case "dashboard alerts row" `Quick test_dashboard_alerts_row;
    Alcotest.test_case "dashboard coverage row" `Quick
      test_dashboard_coverage_row;
    Alcotest.test_case "record diagnostics" `Quick test_record_diagnostic_fields ]
