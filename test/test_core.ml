(* Tests for the POSET-RL core: reward equations, environment dynamics,
   trainer smoke runs, inference, evaluation plumbing. *)

module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module W = Posetrl_workloads
module Rl = Posetrl_rl

let x86 = CG.Target.x86_64

let meas size thr = { C.Reward.bin_size = size; C.Reward.throughput = thr }

let check_float = Alcotest.(check (float 1e-9))

(* --- reward (Eqns 1-3) ------------------------------------------------------ *)

let test_reward_weights_default () =
  check_float "alpha" 10.0 C.Reward.paper_weights.C.Reward.alpha;
  check_float "beta" 5.0 C.Reward.paper_weights.C.Reward.beta

let test_reward_binsize_component () =
  (* Eqn 2: (last - curr) / base *)
  let base = meas 1000.0 10.0 in
  let r = C.Reward.r_binsize ~base ~last:(meas 900.0 10.0) ~curr:(meas 800.0 10.0) in
  check_float "R_BinSize" 0.1 r

let test_reward_throughput_component () =
  (* Eqn 3: (curr - last) / base *)
  let base = meas 1000.0 10.0 in
  let r = C.Reward.r_throughput ~base ~last:(meas 900.0 10.0) ~curr:(meas 900.0 12.0) in
  check_float "R_Throughput" 0.2 r

let test_reward_combined () =
  let base = meas 1000.0 10.0 in
  let r =
    C.Reward.compute ~base ~last:(meas 1000.0 10.0) ~curr:(meas 900.0 11.0) ()
  in
  (* 10 * 0.1 + 5 * 0.1 = 1.5 *)
  check_float "R" 1.5 r

let test_reward_negative_on_growth () =
  let base = meas 1000.0 10.0 in
  let r =
    C.Reward.compute ~base ~last:(meas 1000.0 10.0) ~curr:(meas 1100.0 10.0) ()
  in
  Alcotest.(check bool) "size growth punished" true (r < 0.0)

let test_reward_telescopes () =
  (* the sum of step rewards over an episode equals the end-to-end reward *)
  let base = meas 1000.0 10.0 in
  let states = [ meas 1000.0 10.0; meas 950.0 10.5; meas 930.0 10.2; meas 800.0 11.0 ] in
  let rec steps acc = function
    | a :: (b :: _ as rest) ->
      steps (acc +. C.Reward.compute ~base ~last:a ~curr:b ()) rest
    | _ -> acc
  in
  let stepwise = steps 0.0 states in
  let direct =
    C.Reward.compute ~base ~last:(List.hd states) ~curr:(List.nth states 3) ()
  in
  check_float "telescoping" direct stepwise

let test_reward_decompose () =
  (* decompose = compute plus the unweighted Eqn-2/3 parts it is made of *)
  let base = meas 1000.0 10.0 in
  let last = meas 950.0 10.5 and curr = meas 900.0 11.0 in
  let c = C.Reward.decompose ~base ~last ~curr () in
  check_float "binsize part is Eqn 2" (C.Reward.r_binsize ~base ~last ~curr)
    c.C.Reward.binsize;
  check_float "throughput part is Eqn 3"
    (C.Reward.r_throughput ~base ~last ~curr) c.C.Reward.throughput;
  check_float "total recombines with paper weights"
    ((10.0 *. c.C.Reward.binsize) +. (5.0 *. c.C.Reward.throughput))
    c.C.Reward.total;
  check_float "compute agrees" (C.Reward.compute ~base ~last ~curr ())
    c.C.Reward.total;
  (* custom weights flow through the recombination *)
  let w = { C.Reward.alpha = 2.0; beta = 3.0 } in
  let cw = C.Reward.decompose ~weights:w ~base ~last ~curr () in
  check_float "custom weights" ((2.0 *. cw.C.Reward.binsize) +. (3.0 *. cw.C.Reward.throughput))
    cw.C.Reward.total;
  check_float "components independent of weights" c.C.Reward.binsize cw.C.Reward.binsize

(* --- environment --------------------------------------------------------------- *)

let test_environment_episode () =
  let env = C.Environment.create ~target:x86 ~actions:O.Action_space.odg () in
  let m = Testutil.sum_squares_module () in
  let s0 = C.Environment.reset env m in
  Alcotest.(check int) "state dim" 300 (Array.length s0);
  let steps = ref 0 in
  let rec go s =
    incr steps;
    let r = C.Environment.step env ((!steps * 7) mod 34) in
    ignore s;
    if not r.C.Environment.terminal then go r.C.Environment.state
  in
  go s0;
  Alcotest.(check int) "episode length 15" 15 !steps;
  (* behaviour is preserved by whatever the episode applied *)
  Testutil.check_same_behaviour "episode" m (C.Environment.current_module env)

let test_environment_reward_consistency () =
  let env = C.Environment.create ~target:x86 ~actions:O.Action_space.odg () in
  let m = Testutil.sum_squares_module () in
  ignore (C.Environment.reset env m);
  (* applying the mem2reg-carrying action must yield a positive reward on
     this allocation-heavy program *)
  let idx_with_mem2reg =
    let found = ref (-1) in
    Array.iteri
      (fun i a -> if !found < 0 && List.mem "mem2reg" a then found := i)
      O.Action_space.odg.O.Action_space.actions;
    !found
  in
  let r = C.Environment.step env idx_with_mem2reg in
  Alcotest.(check bool) "promotion rewarded" true (r.C.Environment.reward > 0.0)

let test_environment_step_components () =
  (* each step's reward decomposes into the paper-weighted Eqn-2/3 parts
     the run ledger records *)
  let env = C.Environment.create ~target:x86 ~actions:O.Action_space.odg () in
  ignore (C.Environment.reset env (Testutil.sum_squares_module ()));
  let rec go i =
    let r = C.Environment.step env ((i * 7) mod 34) in
    check_float "reward = α·r_binsize + β·r_throughput"
      ((10.0 *. r.C.Environment.r_binsize)
       +. (5.0 *. r.C.Environment.r_throughput))
      r.C.Environment.reward;
    Alcotest.(check bool) "components finite" true
      (Float.is_finite r.C.Environment.r_binsize
       && Float.is_finite r.C.Environment.r_throughput);
    if not r.C.Environment.terminal then go (i + 1)
  in
  go 1

let test_environment_needs_reset () =
  let env = C.Environment.create ~target:x86 ~actions:O.Action_space.odg () in
  Alcotest.(check bool) "step before reset raises" true
    (try ignore (C.Environment.step env 0); false with Invalid_argument _ -> true)

let test_environment_n_actions () =
  let env = C.Environment.create ~target:x86 ~actions:O.Action_space.manual () in
  Alcotest.(check int) "manual actions" 15 (C.Environment.n_actions env)

(* --- trainer / inference ----------------------------------------------------------- *)

let tiny_hp =
  { C.Trainer.fast with
    C.Trainer.total_steps = 240;
    C.Trainer.epsilon = Rl.Schedule.create ~start:1.0 ~stop:0.2 ~decay_steps:150 ();
    C.Trainer.warmup_steps = 32;
    C.Trainer.target_sync_every = 60 }

let test_trainer_smoke () =
  let corpus = W.Genprog.corpus ~n:8 () in
  let res =
    C.Trainer.train ~hp:tiny_hp ~seed:1 ~corpus ~actions:O.Action_space.odg
      ~target:x86 ()
  in
  Alcotest.(check bool) "episodes ran" true (res.C.Trainer.episodes >= 16);
  (* the trained agent produces a full-length greedy rollout *)
  let m = Testutil.sum_squares_module () in
  let roll = C.Inference.predict ~agent:res.C.Trainer.agent ~actions:O.Action_space.odg ~target:x86 m in
  Alcotest.(check int) "rollout length" 15 (List.length roll.C.Inference.actions);
  Testutil.check_same_behaviour "rollout result" m roll.C.Inference.optimized

let test_trainer_progress () =
  (* the on_progress callback: fields populated, step monotone on the
     200-step tick grid, ε following the fast schedule exactly *)
  let corpus = W.Genprog.corpus ~n:4 () in
  let hp = { C.Trainer.fast with C.Trainer.total_steps = 600 } in
  let ticks = ref [] in
  ignore
    (C.Trainer.train ~hp
       ~on_progress:(fun p -> ticks := p :: !ticks)
       ~seed:7 ~corpus ~actions:O.Action_space.manual ~target:x86 ());
  let ticks = List.rev !ticks in
  Alcotest.(check int) "one tick per 200 steps" 3 (List.length ticks);
  ignore
    (List.fold_left
       (fun prev (p : C.Trainer.progress) ->
         Alcotest.(check bool) "step monotone" true (p.C.Trainer.step > prev);
         Alcotest.(check int) "tick grid" 0 (p.C.Trainer.step mod 200);
         Alcotest.(check bool) "episode populated" true (p.C.Trainer.episode >= 1);
         check_float "epsilon follows fast schedule"
           (Rl.Schedule.value hp.C.Trainer.epsilon p.C.Trainer.step)
           p.C.Trainer.epsilon_now;
         Alcotest.(check bool) "mean reward finite" true
           (Float.is_finite p.C.Trainer.mean_reward);
         Alcotest.(check bool) "reward components finite" true
           (Float.is_finite p.C.Trainer.r_binsize
            && Float.is_finite p.C.Trainer.r_throughput);
         Alcotest.(check bool) "loss finite" true (Float.is_finite p.C.Trainer.loss);
         p.C.Trainer.step)
       0 ticks);
  (* past the warmup + batch fill, training has actually happened *)
  match List.rev ticks with
  | last :: _ ->
    Alcotest.(check bool) "loss nonzero by final tick" true
      (last.C.Trainer.loss <> 0.0)
  | [] -> ()

let test_trainer_episode_stream () =
  (* the on_episode stream: one summary per finished episode, indices
     monotone, and each episode's reward recombining from its components
     with the paper weights *)
  let corpus = W.Genprog.corpus ~n:4 () in
  let eps = ref [] in
  let res =
    C.Trainer.train ~hp:tiny_hp
      ~on_episode:(fun e -> eps := e :: !eps)
      ~seed:11 ~corpus ~actions:O.Action_space.manual ~target:x86 ()
  in
  let eps = List.rev !eps in
  Alcotest.(check int) "one summary per episode" res.C.Trainer.episodes
    (List.length eps);
  ignore
    (List.fold_left
       (fun prev (e : C.Trainer.episode_summary) ->
         Alcotest.(check int) "indices consecutive" (prev + 1) e.C.Trainer.ep_index;
         Alcotest.(check (float 1e-6)) "reward recombines (Eqn 1)"
           ((10.0 *. e.C.Trainer.ep_r_binsize)
            +. (5.0 *. e.C.Trainer.ep_r_throughput))
           e.C.Trainer.ep_reward;
         Alcotest.(check bool) "epsilon in range" true
           (e.C.Trainer.ep_epsilon >= 0.0 && e.C.Trainer.ep_epsilon <= 1.0);
         Alcotest.(check bool) "gains finite" true
           (Float.is_finite e.C.Trainer.ep_size_gain_pct
            && Float.is_finite e.C.Trainer.ep_thru_gain_pct);
         e.C.Trainer.ep_index)
       0 eps)

let test_trainer_metrics_registry () =
  (* the trainer publishes its posetrl.train.* series to the global
     registry; the CLI progress line renders from these *)
  let corpus = W.Genprog.corpus ~n:4 () in
  let before =
    Option.value ~default:0.0
      (Posetrl_obs.Metrics.value "posetrl.train.steps")
  in
  ignore
    (C.Trainer.train ~hp:tiny_hp ~seed:3 ~corpus ~actions:O.Action_space.manual
       ~target:x86 ());
  let v name = Posetrl_obs.Metrics.value name in
  (match v "posetrl.train.steps" with
   | Some after -> check_float "steps counted" 240.0 (after -. before)
   | None -> Alcotest.fail "posetrl.train.steps missing");
  Alcotest.(check bool) "epsilon gauge set" true
    (match v "posetrl.train.epsilon" with Some e -> e > 0.0 && e <= 1.0 | None -> false);
  Alcotest.(check bool) "replay occupancy set" true
    (match v "posetrl.train.replay_occupancy" with Some o -> o > 0.0 | None -> false)

let test_trainer_deterministic () =
  let corpus = W.Genprog.corpus ~n:4 () in
  let train () =
    let res =
      C.Trainer.train ~hp:tiny_hp ~seed:99 ~corpus ~actions:O.Action_space.manual
        ~target:x86 ()
    in
    let m = Testutil.sum_squares_module () in
    (C.Inference.predict ~agent:res.C.Trainer.agent ~actions:O.Action_space.manual ~target:x86 m).C.Inference.actions
  in
  Alcotest.(check (list int)) "same seed same policy" (train ()) (train ())

let test_apply_sequence () =
  let m = Testutil.sum_squares_module () in
  let m' = C.Inference.apply_sequence ~actions:O.Action_space.odg [ 30; 23; 7 ] m in
  Testutil.check_same_behaviour "apply sequence" m m'

(* --- evaluation ---------------------------------------------------------------------- *)

let test_evaluate_program_fields () =
  let corpus = W.Genprog.corpus ~n:4 () in
  let res =
    C.Trainer.train ~hp:tiny_hp ~seed:5 ~corpus ~actions:O.Action_space.odg
      ~target:x86 ()
  in
  let m = W.Mibench.crc32 () in
  let r =
    C.Evaluate.evaluate_program ~agent:res.C.Trainer.agent ~actions:O.Action_space.odg
      ~target:x86 ~name:"crc32" m
  in
  Alcotest.(check bool) "unopt biggest-ish" true (r.C.Evaluate.size_unopt > 0);
  Alcotest.(check bool) "oz smaller than unopt" true
    (r.C.Evaluate.size_oz < r.C.Evaluate.size_unopt);
  Alcotest.(check bool) "model size positive" true (r.C.Evaluate.size_model > 0);
  Alcotest.(check bool) "times measured" true
    (Option.is_some r.C.Evaluate.time_oz && Option.is_some r.C.Evaluate.time_model)

let test_summarize_suite () =
  let mk name oz model =
    { C.Evaluate.prog_name = name;
      size_unopt = 2000;
      size_oz = oz;
      size_model = model;
      time_oz = Some 100;
      time_model = Some 90;
      predicted = [] }
  in
  let s =
    C.Evaluate.summarize_suite ~suite:"s"
      [ mk "a" 1000 900; mk "b" 1000 1100; mk "c" 1000 800 ]
  in
  check_float "min" (-10.0) s.C.Evaluate.min_red;
  check_float "max" 20.0 s.C.Evaluate.max_red;
  check_float "avg" (20.0 /. 3.0) s.C.Evaluate.avg_red;
  (match s.C.Evaluate.avg_time_impr with
   | Some t -> check_float "time" 10.0 t
   | None -> Alcotest.fail "time expected")

let suite =
  [ Alcotest.test_case "reward weights" `Quick test_reward_weights_default;
    Alcotest.test_case "reward binsize (Eqn 2)" `Quick test_reward_binsize_component;
    Alcotest.test_case "reward throughput (Eqn 3)" `Quick test_reward_throughput_component;
    Alcotest.test_case "reward combined (Eqn 1)" `Quick test_reward_combined;
    Alcotest.test_case "reward punishes growth" `Quick test_reward_negative_on_growth;
    Alcotest.test_case "reward telescopes" `Quick test_reward_telescopes;
    Alcotest.test_case "environment episode" `Quick test_environment_episode;
    Alcotest.test_case "environment reward sign" `Quick test_environment_reward_consistency;
    Alcotest.test_case "environment needs reset" `Quick test_environment_needs_reset;
    Alcotest.test_case "environment n_actions" `Quick test_environment_n_actions;
    Alcotest.test_case "trainer smoke" `Slow test_trainer_smoke;
    Alcotest.test_case "trainer progress callback" `Slow test_trainer_progress;
    Alcotest.test_case "trainer metrics registry" `Slow test_trainer_metrics_registry;
    Alcotest.test_case "trainer deterministic" `Slow test_trainer_deterministic;
    Alcotest.test_case "apply sequence" `Quick test_apply_sequence;
    Alcotest.test_case "evaluate program" `Slow test_evaluate_program_fields;
    Alcotest.test_case "summarize suite" `Quick test_summarize_suite ]
