(* Tests for the profiling layer (Posetrl_obs.Prof): self-vs-total time
   over nested span streams under a fake clock, folded-stack goldens,
   GC-gauge sampling (including the trainer tick), pool-utilization
   aggregates, and the atomic counter/histogram updates under
   concurrent domains. *)

module Obs = Posetrl_obs
module M = Obs.Metrics
module Span = Obs.Span
module Event = Obs.Event
module Prof = Obs.Prof
module Pool = Posetrl_support.Pool
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module W = Posetrl_workloads

let x86 = CG.Target.x86_64
let check_float = Alcotest.(check (float 1e-9))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

let ev ?(attrs = []) ?(depth = 0) ?(tid = 0) ?(t = 0.0) ~dur ~self name =
  { Event.name; attrs; t_start = t; dur; self; depth; tid }

(* --- hotspot attribution ------------------------------------------------------ *)

let test_collect_self_time () =
  (* live collection through a sink, exact times via the fake clock:
     outer spends 12ms around a 5ms child, three times over *)
  Obs.Clock.with_fake (fun advance ->
      let (), p =
        Prof.collect ~alloc:false (fun () ->
            for _ = 1 to 3 do
              Span.with_ "outer" (fun _ ->
                  advance 0.010;
                  Span.with_ "inner" (fun _ -> advance 0.005);
                  advance 0.002)
            done;
            Span.with_ "solo" (fun _ -> advance 0.001))
      in
      Alcotest.(check bool) "sink uninstalled" false (Span.enabled ());
      Alcotest.(check int) "events" 7 (Prof.events p);
      check_float "outer self = dur - children" 0.036 (Prof.self_of p "outer");
      check_float "inner self" 0.015 (Prof.self_of p "inner");
      check_float "total self = wall" 0.052 (Prof.total_self p);
      (match Prof.hotspots p with
       | [ o; i; s ] ->
         Alcotest.(check string) "ranked by self" "outer" o.Prof.e_name;
         Alcotest.(check string) "then inner" "inner" i.Prof.e_name;
         Alcotest.(check string) "then solo" "solo" s.Prof.e_name;
         Alcotest.(check int) "outer count" 3 o.Prof.e_count;
         check_float "outer total keeps child time" 0.051 o.Prof.e_total;
         check_float "outer p50 per-event self" 0.012 o.Prof.e_p50
       | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es));
      (* the same run as folded stacks: self-times, child nested under parent *)
      Alcotest.(check string) "folded"
        "outer 36000\nouter;inner 15000\nsolo 1000\n" (Prof.folded p))

let test_hotspot_aggregates () =
  (* offline replay: counts, sums and quantiles from hand-built events *)
  let p =
    Prof.of_events
      [ ev ~dur:0.010 ~self:0.004 ~attrs:[ ("self_alloc_b", Event.F 1000.0) ] "a";
        ev ~dur:0.020 ~self:0.006 ~attrs:[ ("self_alloc_b", Event.F 500.0) ] "a";
        ev ~dur:0.001 ~self:0.001 "b" ]
  in
  match Prof.hotspots p with
  | [ a; b ] ->
    Alcotest.(check string) "rank 1" "a" a.Prof.e_name;
    Alcotest.(check int) "count" 2 a.Prof.e_count;
    check_float "total" 0.030 a.Prof.e_total;
    check_float "self" 0.010 a.Prof.e_self;
    check_float "alloc attr summed" 1500.0 a.Prof.e_alloc_b;
    check_float "p50" 0.004 a.Prof.e_p50;
    check_float "p99" 0.006 a.Prof.e_p99;
    Alcotest.(check string) "rank 2" "b" b.Prof.e_name;
    check_float "total_alloc" 1500.0 (Prof.total_alloc p)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_quantiles () =
  (* nearest-rank over 100 distinct per-event self times *)
  let evs =
    List.init 100 (fun i ->
        let v = float_of_int (i + 1) /. 100.0 in
        ev ~dur:v ~self:v "q")
  in
  match Prof.hotspots (Prof.of_events evs) with
  | [ e ] ->
    check_float "p50" 0.50 e.Prof.e_p50;
    check_float "p99" 0.99 e.Prof.e_p99
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let test_alloc_attribution () =
  (* collect ~alloc:true attributes bytes to the allocating span and
     restores the global flag on the way out *)
  let (), p =
    Prof.collect (fun () ->
        Span.with_ "posetrl.test.alloc" (fun _ ->
            ignore (Sys.opaque_identity (Array.make 100_000 0.0))))
  in
  (* 100k floats is ~0.8 MB before any surrounding noise *)
  Alcotest.(check bool) "alloc attributed" true
    (Prof.total_alloc p >= 700_000.0);
  Alcotest.(check bool) "flag restored" false (Span.alloc_attrs_enabled ())

let test_render_smoke () =
  let p = Prof.of_events [ ev ~dur:0.01 ~self:0.01 "posetrl.x" ] in
  let s = Prof.render ~top:5 p in
  Alcotest.(check bool) "row rendered" true (contains s "posetrl.x");
  Alcotest.(check bool) "totals line" true (contains s "1 events, 1 span names");
  let q = Prof.of_events [ ev ~dur:0.002 ~self:0.002 "posetrl.x" ] in
  let cmp = Prof.render_compare ~jobs:4 p q in
  Alcotest.(check bool) "compare title" true (contains cmp "jobs=4");
  Alcotest.(check bool) "speedup column" true (contains cmp "5.00")

(* --- folded-stack export ------------------------------------------------------ *)

let test_folded_golden () =
  (* completion order: children strictly before their parent *)
  let p =
    Prof.of_events
      [ ev ~depth:1 ~dur:0.005 ~self:0.005 "inner";
        ev ~dur:0.017 ~self:0.012 "outer";
        ev ~depth:1 ~dur:0.005 ~self:0.005 "inner";
        ev ~dur:0.017 ~self:0.012 "outer";
        ev ~dur:0.001 ~self:0.001 "solo";
        ev ~dur:0.0 ~self:0.0 "zero" (* 0µs stacks are dropped *) ]
  in
  let golden = "outer 24000\nouter;inner 10000\nsolo 1000\n" in
  Alcotest.(check string) "golden" golden (Prof.folded p);
  let path = Filename.temp_file "posetrl_prof" ".folded" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Prof.write_folded ~path p;
      Alcotest.(check string) "write_folded same bytes" golden (read_file path))

let test_folded_multi_domain () =
  (* two emitting domains: stacks get a main/domain-N root frame and
     the tid-3 task is not nested under the main-domain batch *)
  let p =
    Prof.of_events
      [ ev ~depth:1 ~dur:0.002 ~self:0.002 "task";
        ev ~dur:0.010 ~self:0.008 "batch";
        ev ~tid:3 ~dur:0.004 ~self:0.004 "task" ]
  in
  Alcotest.(check string) "tid-rooted stacks"
    "domain-3;task 4000\nmain;batch 8000\nmain;batch;task 2000\n"
    (Prof.folded p)

(* --- GC / allocation telemetry ------------------------------------------------ *)

let test_gc_delta () =
  Obs.Clock.with_fake (fun advance ->
      let m = Prof.gc_mark () in
      ignore (Sys.opaque_identity (Array.make 100_000 0.0));
      advance 2.0;
      let d = Prof.gc_delta m in
      check_float "elapsed on the obs clock" 2.0 d.Prof.d_elapsed_s;
      Alcotest.(check bool) "allocation counted" true
        (d.Prof.d_alloc_b >= 700_000.0);
      Alcotest.(check bool) "heap words present" true (d.Prof.d_heap_w > 0);
      Alcotest.(check bool) "render" true
        (contains (Prof.render_gc d) "MB allocated"))

let test_sample_gc_gauges () =
  let r = M.create () in
  let s = Prof.sample_gc ~r () in
  Alcotest.(check bool) "minor collections happened" true (s.Prof.gs_minor > 0);
  (match M.value ~r "posetrl.gc.minor_collections" with
   | Some v -> check_float "gauge mirrors sample" (float_of_int s.Prof.gs_minor) v
   | None -> Alcotest.fail "posetrl.gc.minor_collections missing");
  ignore (Sys.opaque_identity (Array.make 50_000 0.0));
  let s2 = Prof.sample_gc ~r () in
  Alcotest.(check bool) "alloc rate non-negative" true
    (s2.Prof.gs_alloc_mb_s >= 0.0);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (M.value ~r name <> None))
    [ "posetrl.gc.major_collections"; "posetrl.gc.promoted_words";
      "posetrl.gc.heap_words"; "posetrl.gc.alloc_rate_mb_s" ]

let test_train_gc_smoke () =
  (* the trainer tick (every 200 steps) samples GC into the global
     registry; a fast 240-step run must leave the gauges set *)
  let corpus = W.Genprog.corpus ~n:8 () in
  let hp =
    { C.Trainer.fast with
      C.Trainer.total_steps = 240;
      C.Trainer.warmup_steps = 32;
      C.Trainer.target_sync_every = 60 }
  in
  ignore
    (C.Trainer.train ~hp ~seed:5 ~corpus ~actions:O.Action_space.manual
       ~target:x86 ());
  match M.value "posetrl.gc.minor_collections" with
  | Some v -> Alcotest.(check bool) "sampled on the tick" true (v > 0.0)
  | None -> Alcotest.fail "posetrl.gc.minor_collections not set by trainer"

(* --- pool utilization --------------------------------------------------------- *)

let test_pool_util_deterministic () =
  (* hand-built batch: 2 workers over a 1s wall, 3 tasks *)
  let timings =
    [| { Pool.t_index = 0; t_start = 0.0; t_dur = 0.5; t_domain = 1 };
       { Pool.t_index = 1; t_start = 0.1; t_dur = 0.5; t_domain = 2 };
       { Pool.t_index = 2; t_start = 0.6; t_dur = 0.4; t_domain = 1 } |]
  in
  let u = Prof.pool_util ~jobs:2 ~t0:0.0 ~t1:1.0 timings in
  Alcotest.(check int) "jobs" 2 u.Prof.pu_jobs;
  Alcotest.(check int) "tasks" 3 u.Prof.pu_tasks;
  check_float "busy = 1.4 / (2 x 1.0)" 0.7 u.Prof.pu_busy_frac;
  check_float "queue mean over all tasks" (0.7 /. 3.0) u.Prof.pu_queue_mean;
  check_float "dispatch = mean of first wave" 0.05 u.Prof.pu_dispatch_s;
  Alcotest.(check bool) "render" true
    (contains (Prof.render_pool u) "jobs=2 tasks=3");
  (* note_pool_batch publishes the same numbers to metrics *)
  let r = M.create () in
  let u' = Prof.note_pool_batch ~r ~jobs:2 ~t0:0.0 ~t1:1.0 timings in
  check_float "same aggregate" u.Prof.pu_busy_frac u'.Prof.pu_busy_frac;
  check_float "busy gauge" 0.7 (Option.get (M.value ~r "posetrl.pool.busy_frac"));
  check_float "queue gauge" (0.7 /. 3.0)
    (Option.get (M.value ~r "posetrl.pool.queue_wait_mean_s"));
  check_float "dispatch histogram sums all waits" 0.7
    (Option.get (M.sum ~r "posetrl.pool.dispatch_s"));
  let row =
    List.find
      (fun row -> row.M.row_name = "posetrl.pool.dispatch_s")
      (M.snapshot ~r ())
  in
  Alcotest.(check int) "one observation per task" 3 row.M.row_count

let test_pool_util_live_batch () =
  (* a real Pool.map_timed batch: workers stamp their domain ids and the
     aggregate stays inside its envelope *)
  Pool.with_pool ~jobs:2 (fun p ->
      let xs = Array.init 8 (fun i -> i) in
      let t0 = Unix.gettimeofday () in
      let _ys, timings =
        Pool.map_timed p
          (fun i ->
            let acc = ref 0.0 in
            for k = 1 to 50_000 do
              acc := !acc +. float_of_int (k land i)
            done;
            !acc)
          xs
      in
      let t1 = Unix.gettimeofday () in
      let u = Prof.pool_util ~jobs:2 ~t0 ~t1 timings in
      Alcotest.(check int) "tasks" 8 u.Prof.pu_tasks;
      Alcotest.(check bool) "busy fraction in (0, 1]" true
        (u.Prof.pu_busy_frac > 0.0 && u.Prof.pu_busy_frac <= 1.0);
      Alcotest.(check bool) "dispatch <= overall queue mean" true
        (u.Prof.pu_dispatch_s <= u.Prof.pu_queue_mean +. 1e-12);
      Alcotest.(check bool) "worker domain ids recorded" true
        (Array.for_all (fun tm -> tm.Pool.t_domain > 0) timings))

(* --- metric updates under concurrent domains ---------------------------------- *)

let test_metrics_domain_safety () =
  (* the lock-free-update fix: atomic counters lose no increments and
     histogram rows stay internally consistent under 4 domains *)
  let r = M.create () in
  let c = M.counter ~r "posetrl.test.atomic" in
  let h = M.histogram ~r "posetrl.test.hist" in
  let worker () =
    for _ = 1 to 25_000 do
      M.inc c
    done;
    for _ = 1 to 10_000 do
      M.observe h 0.5
    done
  in
  let ds = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join ds;
  check_float "no lost increments" 100_000.0
    (Option.get (M.value ~r "posetrl.test.atomic"));
  check_float "histogram sum exact" 20_000.0
    (Option.get (M.sum ~r "posetrl.test.hist"));
  let row =
    List.find (fun row -> row.M.row_name = "posetrl.test.hist") (M.snapshot ~r ())
  in
  Alcotest.(check int) "observation count" 40_000 row.M.row_count;
  Alcotest.(check int) "bucket counts agree with count" 40_000
    (List.fold_left (fun acc (_, n) -> acc + n) 0 row.M.row_buckets)

let suite =
  [ Alcotest.test_case "collect self vs total time" `Quick test_collect_self_time;
    Alcotest.test_case "hotspot aggregates" `Quick test_hotspot_aggregates;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
    Alcotest.test_case "alloc attribution" `Quick test_alloc_attribution;
    Alcotest.test_case "render smoke" `Quick test_render_smoke;
    Alcotest.test_case "folded golden" `Quick test_folded_golden;
    Alcotest.test_case "folded multi-domain" `Quick test_folded_multi_domain;
    Alcotest.test_case "gc delta" `Quick test_gc_delta;
    Alcotest.test_case "gc sample gauges" `Quick test_sample_gc_gauges;
    Alcotest.test_case "train gc smoke" `Slow test_train_gc_smoke;
    Alcotest.test_case "pool util deterministic" `Quick test_pool_util_deterministic;
    Alcotest.test_case "pool util live batch" `Quick test_pool_util_live_batch;
    Alcotest.test_case "metrics under domains" `Quick test_metrics_domain_safety ]
