(* Tests for the domain pool: the deterministic [map] contract (results
   in input order, byte-identical to the sequential map for every pool
   width), exception propagation, shutdown semantics and per-task
   timings. *)

open Posetrl_support

(* the property the whole multicore engine rests on:
   Pool.map ~jobs:n f xs = List.map f xs for any n *)
let prop_map_matches_list_map =
  QCheck2.Test.make ~count:40
    ~name:"Pool.map agrees with List.map (jobs 1/2/8)"
    QCheck2.Gen.(
      pair (int_range 0 2)
        (list_size (int_range 0 40) (int_range (-1000) 1000)))
    (fun (jidx, xs) ->
      let jobs = List.nth [ 1; 2; 8 ] jidx in
      let f x = (x * 31) lxor (x asr 2) in
      Pool.with_pool ~jobs (fun p -> Pool.map_list p f xs) = List.map f xs)

(* results stay in input order even when early tasks finish last *)
let test_order_under_skew () =
  Pool.with_pool ~jobs:4 (fun p ->
      let f i =
        if i = 0 then Unix.sleepf 0.02;
        i * i
      in
      Alcotest.(check (array int))
        "input order" [| 0; 1; 4; 9; 16; 25; 36; 49 |]
        (Pool.map p f (Array.init 8 Fun.id)))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun p ->
      (match
         Pool.map p
           (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
           (Array.init 10 Fun.id)
       with
       | _ -> Alcotest.fail "expected Boom"
       | exception Boom i ->
         Alcotest.(check int) "lowest failing index wins" 1 i);
      (* a failed batch must not poison the pool *)
      Alcotest.(check (array int)) "pool survives the failure"
        [| 0; 2; 4 |]
        (Pool.map p (fun x -> 2 * x) [| 0; 1; 2 |]))

let test_exception_propagation_inline () =
  (* the jobs=1 inline path propagates immediately too *)
  Pool.with_pool ~jobs:1 (fun p ->
      match Pool.map p (fun i -> raise (Boom i)) [| 7 |] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "index" 7 i)

let test_shutdown_idempotent () =
  let shutdown_then_probe jobs =
    let p = Pool.create ~jobs () in
    Alcotest.(check int) "jobs recorded" jobs (Pool.jobs p);
    Alcotest.(check bool) "alive after create" false (Pool.is_shutdown p);
    Pool.shutdown p;
    Pool.shutdown p;
    (* second call is a no-op *)
    Alcotest.(check bool) "shut down" true (Pool.is_shutdown p);
    match Pool.map p Fun.id [| 1 |] with
    | _ -> Alcotest.fail "map after shutdown must raise"
    | exception Invalid_argument _ -> ()
  in
  shutdown_then_probe 1;
  shutdown_then_probe 3

let test_with_pool_shuts_down () =
  let leaked = ref None in
  let r = Pool.with_pool ~jobs:2 (fun p -> leaked := Some p; 41 + 1) in
  Alcotest.(check int) "result passed through" 42 r;
  Alcotest.(check bool) "pool closed on exit" true
    (Pool.is_shutdown (Option.get !leaked));
  (* ... also on the exception path *)
  (match Pool.with_pool ~jobs:2 (fun p -> leaked := Some p; raise (Boom 0)) with
   | () -> Alcotest.fail "expected Boom"
   | exception Boom _ -> ());
  Alcotest.(check bool) "pool closed on raise" true
    (Pool.is_shutdown (Option.get !leaked))

let test_map_timed () =
  Pool.with_pool ~jobs:2 (fun p ->
      let rs, ts = Pool.map_timed p (fun x -> x + 1) [| 10; 20; 30 |] in
      Alcotest.(check (array int)) "results" [| 11; 21; 31 |] rs;
      Alcotest.(check int) "one timing per task" 3 (Array.length ts);
      Array.iteri
        (fun i (tm : Pool.timing) ->
          Alcotest.(check int) "timing indexed like the input" i tm.Pool.t_index;
          Alcotest.(check bool) "duration non-negative" true (tm.Pool.t_dur >= 0.0))
        ts)

(* Obs.Clock.set mirrors into Pool.clock, so under a fake clock the
   per-task stamps are fully deterministic: the jobs=1 inline path
   reads the clock exactly twice per task. *)
let test_map_timed_fake_clock () =
  Posetrl_obs.Clock.with_fake (fun advance ->
      Pool.with_pool ~jobs:1 (fun p ->
          let _, ts =
            Pool.map_timed p (fun x -> advance 2.0; x) [| 1; 2 |]
          in
          Array.iter
            (fun (tm : Pool.timing) ->
              Alcotest.(check (float 1e-9)) "fake-clock task duration" 2.0
                tm.Pool.t_dur)
            ts;
          Alcotest.(check (float 1e-9)) "tasks stamped back to back" 2.0
            (ts.(1).Pool.t_start -. ts.(0).Pool.t_start)));
  (* with_fake restored both clocks: real time flows again *)
  Alcotest.(check bool) "wall clock restored" true
    (Posetrl_obs.Clock.now () > 1e9)

let test_empty_and_create_guard () =
  Pool.with_pool ~jobs:2 (fun p ->
      Alcotest.(check (array int)) "empty batch" [||] (Pool.map p Fun.id [||]));
  match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs=0 must be rejected"
  | exception Invalid_argument _ -> ()

(* many batches through one pool: workers are reused, results stay exact *)
let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 20 do
        let xs = Array.init (1 + (round mod 7)) (fun i -> (round * 100) + i) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.map (fun x -> x + 1) xs)
          (Pool.map p (fun x -> x + 1) xs)
      done)

let suite =
  [ QCheck_alcotest.to_alcotest prop_map_matches_list_map;
    Alcotest.test_case "order under skew" `Quick test_order_under_skew;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "exception propagation (inline)" `Quick
      test_exception_propagation_inline;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "with_pool shuts down" `Quick test_with_pool_shuts_down;
    Alcotest.test_case "map_timed" `Quick test_map_timed;
    Alcotest.test_case "map_timed under fake clock" `Quick
      test_map_timed_fake_clock;
    Alcotest.test_case "empty batch + create guard" `Quick
      test_empty_and_create_guard;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse ]
