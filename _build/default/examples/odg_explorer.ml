(* ODG explorer: how the action space falls out of the graph.

     dune exec examples/odg_explorer.exe

   Rebuilds the Oz Dependence Graph, sweeps the critical-node threshold k,
   and shows how the derived sub-sequence space grows/shrinks — the design
   knob behind the paper's Table III (k >= 8 gives 34 sub-sequences). Also
   demonstrates applying a single derived walk as an optimization recipe. *)

open Posetrl_ir
module P = Posetrl_passes
module O = Posetrl_odg
module W = Posetrl_workloads

let () =
  let g = Lazy.force O.Graph.default in
  Printf.printf "Oz sequence: %d pass instances over %d unique passes\n"
    (List.length P.Pipelines.oz_sequence)
    (O.Graph.node_count g);
  Printf.printf "ODG: %d edges\n\n" (O.Graph.edge_count g);

  print_endline "threshold sweep:";
  List.iter
    (fun k ->
      let crit = O.Graph.critical_nodes ~k g in
      let walks = O.Walks.derive ~k g in
      Printf.printf "  k >= %2d: %d critical nodes [%s], %d derived sub-sequences\n" k
        (List.length crit)
        (String.concat ", " (List.map fst crit))
        (List.length walks))
    [ 4; 6; 8; 10; 11 ];
  print_endline "\n(the paper picks k >= 8: simplifycfg/11, instcombine/10, loop-simplify/8 -> 34 walks)";

  (* use one derived walk as a standalone recipe *)
  let walks = O.Walks.derive ~k:8 g in
  let loop_walk =
    List.find (fun w -> List.mem "loop-unroll" w && List.mem "gvn" w) walks
  in
  Printf.printf "\napplying derived walk [%s] to 525.x264:\n"
    (String.concat " " loop_walk);
  let m =
    match W.Suites.find_program "525.x264" with
    | Some mk -> mk ()
    | None -> failwith "benchmark missing"
  in
  (* promote to SSA first so the loop walk has something to chew on *)
  let m = P.Pass_manager.run P.Config.oz [ "mem2reg"; "simplifycfg" ] m in
  let m' = P.Pass_manager.run ~verify:true P.Config.oz loop_walk m in
  Printf.printf "  instructions: %d -> %d\n" (Modul.insn_count m) (Modul.insn_count m');
  let obs = Posetrl_interp.Interp.observe in
  assert (obs m = obs m');
  print_endline "  behaviour preserved";

  (* write the graph for rendering *)
  let oc = open_out "odg_explorer.dot" in
  output_string oc (O.Graph.to_dot ~k:8 g);
  close_out oc;
  print_endline "\ngraph written to odg_explorer.dot (render with: dot -Tpdf)"
