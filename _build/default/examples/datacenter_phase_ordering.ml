(* Datacenter phase ordering: trading bytes for throughput.

     dune exec examples/datacenter_phase_ordering.exe

   The inverse of the embedded scenario: a fleet operator cares mostly
   about runtime but still pays for instruction-cache footprint. This
   example reweights the paper's reward (Eqn 1) toward throughput
   (alpha=2, beta=10), trains on the same corpus, and evaluates runtime
   on the SPEC-2017-like suite — showing how the reward weights steer the
   learned policy, the knob the paper fixes at alpha=10/beta=5. *)

module P = Posetrl_passes
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module W = Posetrl_workloads
module I = Posetrl_interp.Interp

let x86 = CG.Target.x86_64

let runtime m = match I.run m with o -> Some o.I.cycles | exception I.Trap _ -> None

(* Trainer with custom reward weights: reuse the library trainer but wrap
   the environment weights through a custom hyperparameter run. *)
let train_with_weights ~weights ~steps ~seed corpus =
  (* the stock trainer always uses paper weights; for the reweighted run we
     drive the environment loop directly — it is ~30 lines and shows the
     library's lower-level API *)
  let open Posetrl_support in
  let rng = Rng.create seed in
  let env = C.Environment.create ~weights ~target:x86 ~actions:O.Action_space.odg () in
  let agent =
    Posetrl_rl.Dqn.create (Rng.split rng) ~state_dim:C.Environment.state_dim
      ~hidden:[ 128; 64 ] ~n_actions:(C.Environment.n_actions env)
  in
  let replay = Posetrl_rl.Replay.create 4000 in
  let schedule = Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.05 ~decay_steps:(steps * 3 / 4) () in
  let step = ref 0 in
  while !step < steps do
    let program = Rng.choose rng corpus in
    let state = ref (C.Environment.reset env program) in
    let terminal = ref false in
    while (not !terminal) && !step < steps do
      incr step;
      let eps = Posetrl_rl.Schedule.value schedule !step in
      let a = Posetrl_rl.Dqn.select_action agent rng ~epsilon:eps !state in
      let r = C.Environment.step env a in
      Posetrl_rl.Replay.push replay
        { Posetrl_rl.Replay.state = !state; action = a; reward = r.C.Environment.reward;
          next_state = (if r.C.Environment.terminal then None else Some r.C.Environment.state) };
      state := r.C.Environment.state;
      terminal := r.C.Environment.terminal;
      if !step > 64 && !step mod 4 = 0 then
        ignore (Posetrl_rl.Dqn.train_batch agent (Posetrl_rl.Replay.sample rng replay 32));
      if !step mod 200 = 0 then Posetrl_rl.Dqn.sync_target agent
    done
  done;
  agent

let evaluate label agent =
  Printf.printf "\n%s:\n" label;
  let times = ref [] and sizes = ref [] in
  List.iter
    (fun (name, mk) ->
      let m = mk () in
      let m_oz = P.Pass_manager.run_level P.Pipelines.Oz m in
      let roll = C.Inference.predict ~agent ~actions:O.Action_space.odg ~target:x86 m in
      let t_oz = runtime m_oz and t_m = runtime roll.C.Inference.optimized in
      let s_oz = CG.Objfile.size x86 m_oz in
      let s_m = CG.Objfile.size x86 roll.C.Inference.optimized in
      (match t_oz, t_m with
       | Some a, Some b when a > 0 ->
         let impr = 100.0 *. float_of_int (a - b) /. float_of_int a in
         times := impr :: !times;
         let ds = 100.0 *. float_of_int (s_oz - s_m) /. float_of_int s_oz in
         sizes := ds :: !sizes;
         Printf.printf "  %-14s runtime %+6.2f%%  size %+6.2f%% vs -Oz\n" name impr ds
       | _ -> Printf.printf "  %-14s (no runtime)\n" name))
    W.Suites.spec2017.W.Suites.programs;
  Printf.printf "  average: runtime %+.2f%%, size %+.2f%%\n"
    (Posetrl_support.Stats.mean !times) (Posetrl_support.Stats.mean !sizes)

let () =
  print_endline "== datacenter phase ordering: reward-weight steering ==";
  let corpus = W.Suites.training_corpus ~n:60 () in
  let steps = 3500 in
  Printf.printf "training two models (%d steps each)...\n%!" steps;
  let size_first =
    train_with_weights ~weights:C.Reward.paper_weights ~steps ~seed:3 corpus
  in
  let speed_first =
    train_with_weights
      ~weights:{ C.Reward.alpha = 2.0; C.Reward.beta = 10.0 }
      ~steps ~seed:3 corpus
  in
  evaluate "paper weights (alpha=10 size, beta=5 throughput)" size_first;
  evaluate "datacenter weights (alpha=2 size, beta=10 throughput)" speed_first
