examples/quickstart.ml: Builder Func List Modul Posetrl_codegen Posetrl_core Posetrl_interp Posetrl_ir Posetrl_odg Posetrl_passes Posetrl_workloads Printf String Types Verifier
