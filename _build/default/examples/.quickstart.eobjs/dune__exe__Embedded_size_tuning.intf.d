examples/embedded_size_tuning.mli:
