examples/odg_explorer.ml: Lazy List Modul Posetrl_interp Posetrl_ir Posetrl_odg Posetrl_passes Posetrl_workloads Printf String
