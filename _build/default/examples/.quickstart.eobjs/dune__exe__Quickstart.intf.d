examples/quickstart.mli:
