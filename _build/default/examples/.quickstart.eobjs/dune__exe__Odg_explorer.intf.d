examples/odg_explorer.mli:
