(* Quickstart: the whole POSET-RL loop on one program, end to end.

     dune exec examples/quickstart.exe

   1. build a program with the MiniIR builder API
   2. compare the standard -Oz pipeline against the unoptimized module
   3. train a small DQN over the ODG action space
   4. let the trained policy pick a phase ordering and compare it to -Oz *)

open Posetrl_ir
module P = Posetrl_passes
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module W = Posetrl_workloads

(* a little program: dot product of two vectors, clang -O0 style *)
let my_program () : Modul.t =
  let open W.Dsl in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let xs = arr c Types.I64 64 in
  let ys = arr c Types.I64 64 in
  for_up c ~from:0 ~bound:(i64 64) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 xs iv (Builder.mul c.b Types.I64 iv (i64 3));
      set_at c Types.I64 ys iv (Builder.add c.b Types.I64 iv (i64 7)));
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 64) (fun ip ->
      let iv = get c Types.I64 ip in
      let x = get_at c Types.I64 xs iv in
      let y = get_at c Types.I64 ys iv in
      bump c acc (Builder.mul c.b Types.I64 x y));
  Builder.ret b Types.I64 (get c Types.I64 acc);
  Modul.mk ~name:"quickstart" [ Builder.finish b ]

let describe label m =
  let size = CG.Objfile.size CG.Target.x86_64 m in
  let cycles = (Posetrl_interp.Interp.run m).Posetrl_interp.Interp.cycles in
  Printf.printf "  %-12s %4d instructions  %5d bytes  %7d cycles\n"
    label (Modul.insn_count m) size cycles

let () =
  print_endline "== 1. build a program ==";
  let m = my_program () in
  Verifier.check m;
  describe "unoptimized" m;

  print_endline "\n== 2. the fixed -Oz pipeline ==";
  let m_oz = P.Pass_manager.run_level P.Pipelines.Oz m in
  describe "-Oz" m_oz;

  print_endline "\n== 3. train a phase-ordering agent (ODG action space) ==";
  let corpus = W.Suites.training_corpus ~n:40 () in
  let hp = { C.Trainer.fast with C.Trainer.total_steps = 2500 } in
  let res =
    C.Trainer.train ~hp ~seed:7 ~corpus ~actions:O.Action_space.odg
      ~target:CG.Target.x86_64 ()
  in
  Printf.printf "  trained for %d episodes\n" res.C.Trainer.episodes;

  print_endline "\n== 4. the agent picks a custom phase ordering ==";
  let roll =
    C.Inference.predict ~agent:res.C.Trainer.agent ~actions:O.Action_space.odg
      ~target:CG.Target.x86_64 m
  in
  Printf.printf "  predicted sub-sequence indices (Table III rows): %s\n"
    (String.concat " -> " (List.map string_of_int roll.C.Inference.actions));
  describe "POSET-RL" roll.C.Inference.optimized;

  (* sanity: all three compute the same answer *)
  let obs m = Posetrl_interp.Interp.observe m in
  assert (obs m = obs m_oz);
  assert (obs m = obs roll.C.Inference.optimized);
  print_endline "\nall three binaries agree on the program result"
