(* Embedded firmware size tuning (the paper's motivating scenario).

     dune exec examples/embedded_size_tuning.exe

   An embedded team targets an AArch64-class microcontroller with a tight
   flash budget. They already build with -Oz; this example trains a
   POSET-RL model for the AArch64 size model and checks whether learned
   phase orderings buy additional bytes on MiBench-style firmware
   kernels — exactly the Table IV (AArch64) experiment, scoped down. *)

module P = Posetrl_passes
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module W = Posetrl_workloads

let arm = CG.Target.aarch64

let () =
  print_endline "== embedded size tuning (AArch64) ==";
  let flash_budget = 12_000 in

  (* the firmware image: all MiBench-like kernels linked together *)
  let firmware = W.Suites.mibench.W.Suites.programs in
  let total level =
    List.fold_left
      (fun acc (_, mk) ->
        acc + CG.Objfile.size arm (P.Pass_manager.run_level level (mk ())))
      0 firmware
  in
  let base = total P.Pipelines.O0 in
  let oz = total P.Pipelines.Oz in
  Printf.printf "firmware at -O0: %d bytes\nfirmware at -Oz: %d bytes (budget %d)\n"
    base oz flash_budget;

  print_endline "\ntraining a size-focused model (alpha=10, beta=5, as in the paper)...";
  let corpus = W.Suites.training_corpus ~n:60 () in
  let hp = { C.Trainer.fast with C.Trainer.total_steps = 4000 } in
  let res = C.Trainer.train ~hp ~seed:11 ~corpus ~actions:O.Action_space.odg ~target:arm () in

  print_endline "\nper-kernel flash cost, -Oz vs learned ordering:";
  let model_total = ref 0 in
  List.iter
    (fun (name, mk) ->
      let m = mk () in
      let r =
        C.Evaluate.evaluate_program ~measure_time:false ~agent:res.C.Trainer.agent
          ~actions:O.Action_space.odg ~target:arm ~name m
      in
      model_total := !model_total + r.C.Evaluate.size_model;
      Printf.printf "  %-14s oz=%6dB  model=%6dB  (%+.2f%%)\n" name
        r.C.Evaluate.size_oz r.C.Evaluate.size_model
        (C.Evaluate.size_reduction_pct r))
    firmware;
  Printf.printf "\nfirmware with learned orderings: %d bytes (%+.2f%% vs -Oz)\n"
    !model_total
    (100.0 *. float_of_int (oz - !model_total) /. float_of_int oz);
  Printf.printf "flash budget %d bytes: -Oz %s, learned %s\n" flash_budget
    (if oz <= flash_budget then "FITS" else "OVER")
    (if !model_total <= flash_budget then "FITS" else "OVER")
