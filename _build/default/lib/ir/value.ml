(* Operand values: constants, SSA registers, and global addresses. *)

type const =
  | Cint of Types.t * int64
  | Cfloat of float
  | Cnull
  | Cundef of Types.t

type t =
  | Const of const
  | Reg of int
  | Global of string

let cint ty v = Const (Cint (ty, Types.wrap ty v))

let ci1 b = cint Types.I1 (if b then 1L else 0L)

let ci32 v = cint Types.I32 (Int64.of_int v)

let ci64 v = cint Types.I64 (Int64.of_int v)

let cfloat f = Const (Cfloat f)

let cnull = Const Cnull

let cundef ty = Const (Cundef ty)

let reg r = Reg r

let global g = Global g

let is_const = function Const _ -> true | _ -> false

let is_zero = function
  | Const (Cint (_, 0L)) -> true
  | Const (Cfloat 0.0) -> true
  | Const Cnull -> true
  | _ -> false

let is_one = function
  | Const (Cint (_, 1L)) -> true
  | Const (Cfloat 1.0) -> true
  | _ -> false

let is_all_ones = function
  | Const (Cint (_, -1L)) -> true
  | Const (Cint (Types.I1, 1L)) -> true
  | _ -> false

let const_ty = function
  | Cint (ty, _) -> ty
  | Cfloat _ -> Types.F64
  | Cnull -> Types.Ptr
  | Cundef ty -> ty

let equal (a : t) (b : t) =
  match a, b with
  | Const (Cfloat x), Const (Cfloat y) ->
    (* bitwise comparison so that nan = nan and -0. <> 0. for CSE purposes *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> a = b

(* Floats are printed so they survive a print/parse round trip and are
   lexically distinct from integers (always contain '.', 'e' or a letter). *)
let float_repr f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let pp_const ppf = function
  | Cint (Types.I1, v) -> Fmt.string ppf (if Int64.equal v 0L then "false" else "true")
  | Cint (_, v) -> Fmt.pf ppf "%Ld" v
  | Cfloat f -> Fmt.string ppf (float_repr f)
  | Cnull -> Fmt.string ppf "null"
  | Cundef _ -> Fmt.string ppf "undef"

let pp ppf = function
  | Const c -> pp_const ppf c
  | Reg r -> Fmt.pf ppf "%%%d" r
  | Global g -> Fmt.pf ppf "@%s" g

let to_string v = Fmt.str "%a" pp v
