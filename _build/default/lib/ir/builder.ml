(* Imperative construction API for MiniIR functions.

   Workload programs and tests build IR through this module rather than by
   assembling records by hand. A builder accumulates blocks; each
   instruction helper returns the [Value.t] of the defined register. *)

type t = {
  name : string;
  params : (int * Types.t) list;
  ret : Types.t;
  attrs : Attrs.t;
  linkage : Func.linkage;
  mutable next_id : int;
  mutable done_blocks : Block.t list; (* reverse order *)
  mutable cur_label : string option;
  mutable cur_insns : Instr.t list;   (* reverse order *)
}

let create ?(attrs = Attrs.empty) ?(linkage = Func.Internal) ~name ~params ~ret () =
  let params = List.mapi (fun i ty -> (i, ty)) params in
  { name; params; ret; attrs; linkage;
    next_id = List.length params;
    done_blocks = []; cur_label = None; cur_insns = [] }

let param t i = Value.Reg (fst (List.nth t.params i))

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* Open a new block; the previous block must have been terminated. *)
let block t label =
  (match t.cur_label with
   | Some l ->
     invalid_arg (Printf.sprintf "Builder.block: block %s not terminated before %s" l label)
   | None -> ());
  t.cur_label <- Some label;
  t.cur_insns <- []

let emit t op =
  match t.cur_label with
  | None -> invalid_arg "Builder.emit: no open block"
  | Some _ ->
    let ty = Instr.result_ty op in
    let id = if Types.equal ty Types.Void then Instr.no_result else fresh t in
    t.cur_insns <- Instr.mk id op :: t.cur_insns;
    if id >= 0 then Value.Reg id else Value.cundef Types.Void

let terminate t term =
  match t.cur_label with
  | None -> invalid_arg "Builder.terminate: no open block"
  | Some label ->
    t.done_blocks <- Block.mk label (List.rev t.cur_insns) term :: t.done_blocks;
    t.cur_label <- None;
    t.cur_insns <- []

let finish t =
  (match t.cur_label with
   | Some l -> invalid_arg ("Builder.finish: unterminated block " ^ l)
   | None -> ());
  Func.mk ~attrs:t.attrs ~linkage:t.linkage ~name:t.name ~params:t.params
    ~ret:t.ret ~blocks:(List.rev t.done_blocks) ~next_id:t.next_id ()

(* --- instruction helpers ------------------------------------------------ *)

let binop t b ty x y = emit t (Instr.Binop (b, ty, x, y))

let add t ty x y = binop t Instr.Add ty x y
let sub t ty x y = binop t Instr.Sub ty x y
let mul t ty x y = binop t Instr.Mul ty x y
let sdiv t ty x y = binop t Instr.Sdiv ty x y
let udiv t ty x y = binop t Instr.Udiv ty x y
let srem t ty x y = binop t Instr.Srem ty x y
let and_ t ty x y = binop t Instr.And ty x y
let or_ t ty x y = binop t Instr.Or ty x y
let xor t ty x y = binop t Instr.Xor ty x y
let shl t ty x y = binop t Instr.Shl ty x y
let lshr t ty x y = binop t Instr.Lshr ty x y
let ashr t ty x y = binop t Instr.Ashr ty x y
let fadd t x y = binop t Instr.Fadd Types.F64 x y
let fsub t x y = binop t Instr.Fsub Types.F64 x y
let fmul t x y = binop t Instr.Fmul Types.F64 x y
let fdiv t x y = binop t Instr.Fdiv Types.F64 x y

let icmp t p ty x y = emit t (Instr.Icmp (p, ty, x, y))
let fcmp t p x y = emit t (Instr.Fcmp (p, x, y))
let select t ty c x y = emit t (Instr.Select (ty, c, x, y))
let cast t c ~from_ty ~to_ty v = emit t (Instr.Cast (c, from_ty, to_ty, v))
let zext t ~from_ty ~to_ty v = cast t Instr.Zext ~from_ty ~to_ty v
let sext t ~from_ty ~to_ty v = cast t Instr.Sext ~from_ty ~to_ty v
let trunc t ~from_ty ~to_ty v = cast t Instr.Trunc ~from_ty ~to_ty v
let alloca t ty n = emit t (Instr.Alloca (ty, n))
let load t ty p = emit t (Instr.Load (ty, p))
let store t ty v p = ignore (emit t (Instr.Store (ty, v, p)))
let gep t ty b i = emit t (Instr.Gep (ty, b, i))
let call t ty g args = emit t (Instr.Call (ty, g, args))
let callind t ty f args = emit t (Instr.Callind (ty, f, args))
let phi t ty incs = emit t (Instr.Phi (ty, incs))
let memcpy t d s n = ignore (emit t (Instr.Memcpy (d, s, n)))
let expect t ty v e = emit t (Instr.Expect (ty, v, e))
let intrinsic t n ty args = emit t (Instr.Intrinsic (n, ty, args))

(* --- terminator helpers ------------------------------------------------- *)

let ret t ty v = terminate t (Instr.Ret (Some (ty, v)))
let ret_void t = terminate t (Instr.Ret None)
let br t l = terminate t (Instr.Br l)
let cbr t c l1 l2 = terminate t (Instr.Cbr (c, l1, l2))
let switch t ty v cases d = terminate t (Instr.Switch (ty, v, cases, d))
let unreachable t = terminate t Instr.Unreachable
