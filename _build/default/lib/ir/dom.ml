(* Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm. *)

module SMap = Map.Make (String)

type t = {
  idom : string SMap.t;  (* immediate dominator; entry maps to itself *)
  entry : string;
  order : string array;  (* reverse post-order, entry first *)
  index : int SMap.t;    (* label -> rpo index *)
}

let compute (cfg : Cfg.t) =
  let order = Array.of_list (Cfg.rpo cfg) in
  let n = Array.length order in
  let index =
    Array.to_seqi order
    |> Seq.fold_left (fun m (i, l) -> SMap.add l i m) SMap.empty
  in
  (* idoms over rpo indices; -1 = undefined *)
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while !f1 > !f2 do f1 := idom.(!f1) done;
      while !f2 > !f1 do f2 := idom.(!f2) done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds =
        Cfg.preds cfg order.(i)
        |> List.filter_map (fun p -> SMap.find_opt p index) (* reachable only *)
        |> List.filter (fun p -> idom.(p) >= 0 || p = 0)
      in
      match preds with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left (fun acc p -> if idom.(p) >= 0 then intersect acc p else acc) first rest in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let idom_map =
    Array.to_seqi order
    |> Seq.fold_left
         (fun m (i, l) ->
           if idom.(i) >= 0 then SMap.add l order.(idom.(i)) m else m)
         SMap.empty
  in
  { idom = idom_map; entry = cfg.Cfg.entry; order; index }

let of_func f = compute (Cfg.of_func f)

let idom t label = SMap.find_opt label t.idom

(* [dominates t a b]: does [a] dominate [b]? Reflexive. *)
let dominates t a b =
  let rec walk l =
    if String.equal l a then true
    else
      match SMap.find_opt l t.idom with
      | Some p when not (String.equal p l) -> walk p
      | _ -> false
  in
  walk b

let strictly_dominates t a b = (not (String.equal a b)) && dominates t a b

(* Children in the dominator tree. *)
let children t label =
  SMap.fold
    (fun l p acc ->
      if String.equal p label && not (String.equal l label) then l :: acc else acc)
    t.idom []
