(* Constant evaluation of MiniIR operations.

   Shared by the constant-folding passes (instcombine, instsimplify, sccp,
   ipsccp) and used as the reference semantics by the interpreter tests. *)

open Instr

let bool_to_i1 b = Value.ci1 b

let eval_binop bop ty (a : int64) (b : int64) : int64 option =
  let open Int64 in
  let wrap v = Types.wrap ty v in
  match bop with
  | Add -> Some (wrap (add a b))
  | Sub -> Some (wrap (sub a b))
  | Mul -> Some (wrap (mul a b))
  | Sdiv -> if equal b 0L then None else Some (wrap (div a b))
  | Udiv -> if equal b 0L then None else Some (wrap (unsigned_div a b))
  | Srem -> if equal b 0L then None else Some (wrap (rem a b))
  | Urem -> if equal b 0L then None else Some (wrap (unsigned_rem a b))
  | And -> Some (wrap (logand a b))
  | Or -> Some (wrap (logor a b))
  | Xor -> Some (wrap (logxor a b))
  | Shl ->
    let s = to_int (logand b 63L) in
    Some (wrap (shift_left a s))
  | Lshr ->
    let width = Types.bit_width ty in
    let s = to_int (logand b 63L) in
    (* mask to the type width before the logical shift *)
    let mask = if width >= 64 then minus_one else sub (shift_left 1L width) 1L in
    Some (wrap (shift_right_logical (logand a mask) s))
  | Ashr ->
    let s = to_int (logand b 63L) in
    Some (wrap (shift_right a s))
  | Fadd | Fsub | Fmul | Fdiv -> None

let eval_fbinop bop (a : float) (b : float) : float option =
  match bop with
  | Fadd -> Some (a +. b)
  | Fsub -> Some (a -. b)
  | Fmul -> Some (a *. b)
  | Fdiv -> Some (a /. b)
  | _ -> None

let eval_icmp pred (a : int64) (b : int64) : bool =
  let ucmp x y = Int64.unsigned_compare x y in
  match pred with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Slt -> Int64.compare a b < 0
  | Sle -> Int64.compare a b <= 0
  | Sgt -> Int64.compare a b > 0
  | Sge -> Int64.compare a b >= 0
  | Ult -> ucmp a b < 0
  | Ule -> ucmp a b <= 0
  | Ugt -> ucmp a b > 0
  | Uge -> ucmp a b >= 0

let eval_fcmp pred (a : float) (b : float) : bool =
  match pred with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt | Ult -> a < b
  | Sle | Ule -> a <= b
  | Sgt | Ugt -> a > b
  | Sge | Uge -> a >= b

let eval_cast cop ~from_ty ~to_ty (v : Value.const) : Value.const option =
  ignore from_ty;
  match cop, v with
  (* bitcast folds only between identical types or int-to-int; in
     particular a scalar-to-vector bitcast (the vectorizer's splat) and
     int<->float bit reinterpretations must NOT fold to their operand *)
  | Bitcast, c when Types.equal from_ty to_ty -> Some c
  | Bitcast, Value.Cint (_, x) when Types.is_integer to_ty ->
    Some (Value.Cint (to_ty, Types.wrap to_ty x))
  | Bitcast, _ -> None
  | (Trunc | Zext | Sext), Value.Cint (src_ty, x) when Types.is_integer to_ty ->
    (match cop with
     | Trunc -> Some (Value.Cint (to_ty, Types.wrap to_ty x))
     | Sext -> Some (Value.Cint (to_ty, Types.wrap to_ty x))
     | _ ->
       let width = Types.bit_width src_ty in
       let mask =
         if width >= 64 then Int64.minus_one
         else Int64.sub (Int64.shift_left 1L width) 1L
       in
       Some (Value.Cint (to_ty, Types.wrap to_ty (Int64.logand x mask))))
  | Fptosi, Value.Cfloat f ->
    if Float.is_nan f then Some (Value.Cundef to_ty)
    else Some (Value.Cint (to_ty, Types.wrap to_ty (Int64.of_float f)))
  | Sitofp, Value.Cint (_, x) -> Some (Value.Cfloat (Int64.to_float x))
  | _ -> None

(* Fold a whole operation if all relevant operands are constant. Returns
   the resulting value, or [None] if not foldable. *)
let fold_op (op : op) : Value.t option =
  match op with
  | Binop (b, ty, Value.Const (Value.Cint (_, x)), Value.Const (Value.Cint (_, y)))
    when Types.is_integer ty ->
    Option.map (fun r -> Value.cint ty r) (eval_binop b ty x y)
  | Binop (b, Types.F64, Value.Const (Value.Cfloat x), Value.Const (Value.Cfloat y)) ->
    Option.map Value.cfloat (eval_fbinop b x y)
  | Icmp (p, ty, Value.Const (Value.Cint (_, x)), Value.Const (Value.Cint (_, y)))
    when Types.is_integer ty ->
    Some (bool_to_i1 (eval_icmp p x y))
  | Icmp (p, Types.Ptr, Value.Const Value.Cnull, Value.Const Value.Cnull) ->
    (match p with
     | Eq -> Some (bool_to_i1 true)
     | Ne -> Some (bool_to_i1 false)
     | _ -> None)
  | Icmp (p, Types.Ptr, Value.Global a, Value.Global b) ->
    (* distinct globals have distinct addresses *)
    (match p with
     | Eq -> Some (bool_to_i1 (String.equal a b))
     | Ne -> Some (bool_to_i1 (not (String.equal a b)))
     | _ -> None)
  | Icmp (p, Types.Ptr, Value.Global _, Value.Const Value.Cnull)
  | Icmp (p, Types.Ptr, Value.Const Value.Cnull, Value.Global _) ->
    (match p with
     | Eq -> Some (bool_to_i1 false)
     | Ne -> Some (bool_to_i1 true)
     | _ -> None)
  | Fcmp (p, Value.Const (Value.Cfloat x), Value.Const (Value.Cfloat y)) ->
    Some (bool_to_i1 (eval_fcmp p x y))
  | Select (_, Value.Const (Value.Cint (Types.I1, c)), a, b) ->
    Some (if Int64.equal c 1L then a else b)
  | Select (_, _, a, b) when Value.equal a b -> Some a
  | Cast (cop, from_ty, to_ty, Value.Const c) ->
    Option.map (fun c -> Value.Const c) (eval_cast cop ~from_ty ~to_ty c)
  | Expect (_, v, _) when Value.is_const v -> Some v
  | Gep (_, base, Value.Const (Value.Cint (_, 0L))) -> Some base
  | Phi (_, incs) ->
    (* all incoming values identical (ignoring self-references is left to
       the dedicated phi simplification in instcombine) *)
    (match incs with
     | (_, v) :: rest when List.for_all (fun (_, v') -> Value.equal v v') rest -> Some v
     | _ -> None)
  | _ -> None
