lib/ir/value.ml: Float Fmt Int64 Printf String Types
