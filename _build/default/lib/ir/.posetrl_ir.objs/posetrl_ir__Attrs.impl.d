lib/ir/attrs.ml: Fmt Set String
