lib/ir/parser.ml: Array Attrs Block Buffer Char Float Func Global Instr Int64 List Modul Option Printf String Types Value
