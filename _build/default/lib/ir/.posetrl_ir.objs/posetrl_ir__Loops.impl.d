lib/ir/loops.ml: Block Cfg Dom Func Hashtbl List Map Option Set String
