lib/ir/modul.ml: Func Global Instr List Printf String
