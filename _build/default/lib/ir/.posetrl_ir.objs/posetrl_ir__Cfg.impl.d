lib/ir/cfg.ml: Block Func Hashtbl List Map Option Set String
