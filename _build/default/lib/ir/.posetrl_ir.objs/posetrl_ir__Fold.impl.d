lib/ir/fold.ml: Float Instr Int64 List Option String Types Value
