lib/ir/builder.ml: Attrs Block Func Instr List Printf Types Value
