lib/ir/func.ml: Attrs Block Hashtbl Instr List Map Option Printf String Types Value
