lib/ir/printer.ml: Attrs Block Fmt Func Global Instr List Modul Types Value
