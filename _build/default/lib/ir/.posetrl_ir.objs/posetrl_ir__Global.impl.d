lib/ir/global.ml: Option Types
