lib/ir/dom.ml: Array Cfg List Map Seq String
