lib/ir/instr.ml: Int64 List String Types Value
