lib/ir/verifier.ml: Block Cfg Func Hashtbl Instr List Modul Option Printf Set String Types Value
