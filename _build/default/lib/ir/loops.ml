(* Natural-loop detection from back edges in the dominator tree.

   A back edge is an edge [latch -> header] where [header] dominates
   [latch]; the natural loop is the set of blocks that can reach the latch
   without passing through the header. Loop nesting depth drives both the
   static block-frequency estimate (MCA) and several loop passes. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type loop = {
  header : string;
  latches : string list;
  blocks : SSet.t;
  depth : int; (* 1 = outermost *)
  preheader : string option;
  exits : string list; (* blocks outside the loop targeted from inside *)
}

type t = {
  loops : loop list; (* outermost first *)
  depth_of : int SMap.t; (* 0 for non-loop blocks *)
}

let natural_loop cfg ~header ~latch =
  let rec go body work =
    match work with
    | [] -> body
    | b :: rest ->
      if SSet.mem b body || String.equal b header then go body rest
      else go (SSet.add b body) (Cfg.preds cfg b @ rest)
  in
  go (SSet.singleton header) [ latch ]

let compute (f : Func.t) =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let reach = Cfg.reachable cfg in
  (* back edges *)
  let back_edges =
    List.concat_map
      (fun b ->
        let l = b.Block.label in
        if not (Cfg.SSet.mem l reach) then []
        else
          List.filter_map
            (fun s -> if Dom.dominates dom s l then Some (l, s) else None)
            (Block.successors b))
      f.Func.blocks
  in
  (* merge back edges sharing a header into one loop *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let cur = Option.value (Hashtbl.find_opt by_header header) ~default:[] in
      Hashtbl.replace by_header header (latch :: cur))
    back_edges;
  let raw_loops =
    Hashtbl.fold
      (fun header latches acc ->
        let blocks =
          List.fold_left
            (fun acc latch -> SSet.union acc (natural_loop cfg ~header ~latch))
            SSet.empty latches
        in
        (header, latches, blocks) :: acc)
      by_header []
  in
  (* nesting depth: number of loops containing a block *)
  let depth_of =
    List.fold_left
      (fun m b ->
        let l = b.Block.label in
        let d =
          List.length (List.filter (fun (_, _, blocks) -> SSet.mem l blocks) raw_loops)
        in
        SMap.add l d m)
      SMap.empty f.Func.blocks
  in
  let loop_of (header, latches, blocks) =
    let depth = Option.value (SMap.find_opt header depth_of) ~default:1 in
    (* preheader: unique predecessor of header outside the loop whose only
       successor is the header *)
    let outside_preds =
      List.filter (fun p -> not (SSet.mem p blocks)) (Cfg.preds cfg header)
    in
    let preheader =
      match outside_preds with
      | [ p ] ->
        (match Cfg.succs cfg p with
         | [ s ] when String.equal s header -> Some p
         | _ -> None)
      | _ -> None
    in
    let exits =
      SSet.fold
        (fun b acc ->
          List.fold_left
            (fun acc s -> if SSet.mem s blocks then acc else s :: acc)
            acc (Cfg.succs cfg b))
        blocks []
      |> List.sort_uniq String.compare
    in
    { header; latches; blocks; depth; preheader; exits }
  in
  let loops =
    raw_loops |> List.map loop_of
    |> List.sort (fun a b -> compare a.depth b.depth)
  in
  { loops; depth_of }

let depth t label = Option.value (SMap.find_opt label t.depth_of) ~default:0

let innermost t =
  let max_depth = List.fold_left (fun d l -> max d l.depth) 0 t.loops in
  List.filter (fun l -> l.depth = max_depth) t.loops

(* Loops whose body contains no other loop's header. *)
let leaf_loops t =
  List.filter
    (fun l ->
      not
        (List.exists
           (fun l' ->
             (not (String.equal l'.header l.header)) && SSet.mem l'.header l.blocks)
           t.loops))
    t.loops

let loop_count t = List.length t.loops
