(* Basic blocks: a label, a straight-line instruction list (phis first),
   and a single terminator. *)

type t = {
  label : string;
  insns : Instr.t list;
  term : Instr.term;
}

let mk label insns term = { label; insns; term }

let phis b = List.filter (fun i -> Instr.is_phi i.Instr.op) b.insns

let non_phis b = List.filter (fun i -> not (Instr.is_phi i.Instr.op)) b.insns

(* Split [insns] into the phi prefix and the rest. *)
let split_phis b =
  let rec go acc = function
    | ({ Instr.op = Instr.Phi _; _ } as i) :: rest -> go (i :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] b.insns

let map_insns f b = { b with insns = List.map f b.insns }

let filter_insns p b = { b with insns = List.filter p b.insns }

let successors b = Instr.successors b.term

(* Rewrite every operand (including the terminator's) with [f]. *)
let map_operands f b =
  { b with
    insns = List.map (fun i -> { i with Instr.op = Instr.map_operands f i.Instr.op }) b.insns;
    term = Instr.map_term_operands f b.term }

(* Update phi incoming labels when a predecessor is renamed. *)
let rename_phi_pred ~from ~to_ b =
  let fix i =
    match i.Instr.op with
    | Instr.Phi (ty, incs) ->
      let incs = List.map (fun (l, v) -> ((if String.equal l from then to_ else l), v)) incs in
      { i with Instr.op = Instr.Phi (ty, incs) }
    | _ -> i
  in
  map_insns fix b

(* Drop phi entries coming from a predecessor that no longer exists. *)
let remove_phi_pred ~pred b =
  let fix i =
    match i.Instr.op with
    | Instr.Phi (ty, incs) ->
      let incs = List.filter (fun (l, _) -> not (String.equal l pred)) incs in
      { i with Instr.op = Instr.Phi (ty, incs) }
    | _ -> i
  in
  map_insns fix b
