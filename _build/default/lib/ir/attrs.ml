(* Function and module attributes.

   Several Oz passes (functionattrs, inferattrs, forceattrs, attributor,
   rpo-functionattrs, alignment-from-assumptions, ...) communicate through
   attributes rather than by rewriting instructions. We model attributes as
   a sorted string set; the codegen size model and the MCA throughput model
   consult a few of them (e.g. [optsize], [align16]). *)

module S = Set.Make (String)

type t = S.t

let empty = S.empty

let of_list = S.of_list

let to_list = S.elements

let add = S.add

let remove = S.remove

let mem = S.mem

let union = S.union

let equal = S.equal

(* Attribute names used across the code base; kept here so passes and cost
   models agree on spelling. *)
let readonly = "readonly"
let readnone = "readnone"
let nounwind = "nounwind"
let norecurse = "norecurse"
let willreturn = "willreturn"
let inline_hint = "inlinehint"
let noinline = "noinline"
let always_inline = "alwaysinline"
let optsize = "optsize"
let minsize = "minsize"
let cold = "cold"
let instrumented = "instrumented"
let aligned16 = "align16"
let speculatable = "speculatable"

let pp ppf t =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") string) (to_list t)
