(* Parser for the textual MiniIR syntax produced by [Printer].

   The grammar is deliberately regular: registers are written [%N] with
   the numbering used internally, so [parse (print m)] reconstructs [m]
   exactly. Used by tests, example programs and the CLI. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexer -------------------------------------------------------------- *)

type token =
  | IDENT of string
  | INT of int64
  | FLOAT of float
  | STRING of string
  | REG of int
  | GLOB of string
  | LPAREN | RPAREN | LBRACK | RBRACK | LBRACE | RBRACE
  | COLON | COMMA | EQUALS | LT | GT
  | EOF

let token_to_string = function
  | IDENT s -> s
  | INT v -> Int64.to_string v
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | REG r -> Printf.sprintf "%%%d" r
  | GLOB g -> "@" ^ g
  | LPAREN -> "(" | RPAREN -> ")" | LBRACK -> "[" | RBRACK -> "]"
  | LBRACE -> "{" | RBRACE -> "}"
  | COLON -> ":" | COMMA -> "," | EQUALS -> "=" | LT -> "<" | GT -> ">"
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let advance () = incr i in
  let read_while p =
    let start = !i in
    while !i < n && p src.[!i] do incr i done;
    String.sub src start (!i - start)
  in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | ';' -> (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    | '(' -> advance (); push LPAREN
    | ')' -> advance (); push RPAREN
    | '[' -> advance (); push LBRACK
    | ']' -> advance (); push RBRACK
    | '{' -> advance (); push LBRACE
    | '}' -> advance (); push RBRACE
    | ':' -> advance (); push COLON
    | ',' -> advance (); push COMMA
    | '=' -> advance (); push EQUALS
    | '<' -> advance (); push LT
    | '>' -> advance (); push GT
    | '%' ->
      advance ();
      let digits = read_while is_digit in
      if String.length digits = 0 then fail "expected register number after %%";
      push (REG (int_of_string digits))
    | '@' ->
      advance ();
      let name = read_while is_ident_char in
      if String.length name = 0 then fail "expected name after @";
      push (GLOB name)
    | '"' ->
      advance ();
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
           | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
           | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
           | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
           | Some '\'' -> advance (); Buffer.add_char buf '\''; go ()
           | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
           | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
           | Some 'x' ->
             advance ();
             let h1 = Option.get (peek ()) in advance ();
             let h2 = Option.get (peek ()) in advance ();
             Buffer.add_char buf (Char.chr (int_of_string (Printf.sprintf "0x%c%c" h1 h2)));
             go ()
           | Some d1 when is_digit d1 ->
             (* decimal escape \DDD as produced by %S *)
             let d = read_while is_digit in
             Buffer.add_char buf (Char.chr (int_of_string d));
             go ()
           | _ -> fail "bad escape in string")
        | Some c -> advance (); Buffer.add_char buf c; go ()
      in
      go ();
      push (STRING (Buffer.contents buf))
    | '-' | '0' .. '9' ->
      let start = !i in
      if src.[!i] = '-' then advance ();
      let _ = read_while is_digit in
      let is_float = ref false in
      if !i < n && src.[!i] = '.' then begin
        is_float := true;
        advance ();
        let _ = read_while is_digit in
        ()
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        advance ();
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance ();
        let _ = read_while is_digit in
        ()
      end;
      let text = String.sub src start (!i - start) in
      if String.equal text "-" then fail "stray '-'";
      if !is_float then push (FLOAT (float_of_string text))
      else push (INT (Int64.of_string text))
    | c when is_ident_start c ->
      let word = read_while is_ident_char in
      (match word with
       | "inf" -> push (FLOAT Float.infinity)
       | "nan" -> push (FLOAT Float.nan)
       | _ -> push (IDENT word))
    | c -> fail "unexpected character %C" c
  done;
  List.rev (EOF :: !toks)

(* --- token stream ------------------------------------------------------- *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> EOF | t :: _ -> t

let next s =
  match s.toks with
  | [] -> EOF
  | t :: rest ->
    s.toks <- rest;
    t

let expect s tok =
  let t = next s in
  if t <> tok then fail "expected %s, got %s" (token_to_string tok) (token_to_string t)

let expect_ident s word =
  match next s with
  | IDENT w when String.equal w word -> ()
  | t -> fail "expected %s, got %s" word (token_to_string t)

let ident s =
  match next s with
  | IDENT w -> w
  | t -> fail "expected identifier, got %s" (token_to_string t)

let int_lit s =
  match next s with
  | INT v -> v
  | t -> fail "expected integer, got %s" (token_to_string t)

(* --- types -------------------------------------------------------------- *)

let rec parse_ty s : Types.t =
  match next s with
  | IDENT "i1" -> Types.I1
  | IDENT "i8" -> Types.I8
  | IDENT "i32" -> Types.I32
  | IDENT "i64" -> Types.I64
  | IDENT "f64" -> Types.F64
  | IDENT "ptr" -> Types.Ptr
  | IDENT "void" -> Types.Void
  | LT ->
    let n = Int64.to_int (int_lit s) in
    expect_ident s "x";
    let ty = parse_ty s in
    expect s GT;
    Types.Vec (ty, n)
  | t -> fail "expected type, got %s" (token_to_string t)

(* --- values ------------------------------------------------------------- *)

let parse_value s ~(ty : Types.t) : Value.t =
  match next s with
  | REG r -> Value.Reg r
  | GLOB g -> Value.Global g
  | INT v -> Value.cint (if Types.is_integer ty then ty else Types.I64) v
  | FLOAT f -> Value.cfloat f
  | IDENT "true" -> Value.ci1 true
  | IDENT "false" -> Value.ci1 false
  | IDENT "null" -> Value.cnull
  | IDENT "undef" -> Value.cundef ty
  | t -> fail "expected value, got %s" (token_to_string t)

let parse_args s ~ty =
  expect s LPAREN;
  if peek s = RPAREN then begin
    ignore (next s);
    []
  end
  else begin
    let rec go acc =
      let v = parse_value s ~ty in
      match next s with
      | COMMA -> go (v :: acc)
      | RPAREN -> List.rev (v :: acc)
      | t -> fail "expected ',' or ')', got %s" (token_to_string t)
    in
    go []
  end

(* --- instructions ------------------------------------------------------- *)

let binop_of_name = function
  | "add" -> Some Instr.Add | "sub" -> Some Instr.Sub | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.Sdiv | "udiv" -> Some Instr.Udiv
  | "srem" -> Some Instr.Srem | "urem" -> Some Instr.Urem
  | "and" -> Some Instr.And | "or" -> Some Instr.Or | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl | "lshr" -> Some Instr.Lshr | "ashr" -> Some Instr.Ashr
  | "fadd" -> Some Instr.Fadd | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul | "fdiv" -> Some Instr.Fdiv
  | _ -> None

let icmp_of_name = function
  | "eq" -> Instr.Eq | "ne" -> Instr.Ne
  | "slt" -> Instr.Slt | "sle" -> Instr.Sle | "sgt" -> Instr.Sgt | "sge" -> Instr.Sge
  | "ult" -> Instr.Ult | "ule" -> Instr.Ule | "ugt" -> Instr.Ugt | "uge" -> Instr.Uge
  | p -> fail "unknown predicate %s" p

let castop_of_name = function
  | "trunc" -> Some Instr.Trunc | "zext" -> Some Instr.Zext | "sext" -> Some Instr.Sext
  | "bitcast" -> Some Instr.Bitcast | "fptosi" -> Some Instr.Fptosi
  | "sitofp" -> Some Instr.Sitofp
  | _ -> None

let parse_op s (opname : string) : Instr.op =
  match binop_of_name opname with
  | Some b ->
    let ty = parse_ty s in
    let x = parse_value s ~ty in
    expect s COMMA;
    let y = parse_value s ~ty in
    Instr.Binop (b, ty, x, y)
  | None ->
    (match castop_of_name opname with
     | Some c ->
       let from_ty = parse_ty s in
       let v = parse_value s ~ty:from_ty in
       expect_ident s "to";
       let to_ty = parse_ty s in
       Instr.Cast (c, from_ty, to_ty, v)
     | None ->
       (match opname with
        | "icmp" ->
          let p = icmp_of_name (ident s) in
          let ty = parse_ty s in
          let x = parse_value s ~ty in
          expect s COMMA;
          let y = parse_value s ~ty in
          Instr.Icmp (p, ty, x, y)
        | "fcmp" ->
          let p = icmp_of_name (ident s) in
          let x = parse_value s ~ty:Types.F64 in
          expect s COMMA;
          let y = parse_value s ~ty:Types.F64 in
          Instr.Fcmp (p, x, y)
        | "select" ->
          let ty = parse_ty s in
          let c = parse_value s ~ty:Types.I1 in
          expect s COMMA;
          let x = parse_value s ~ty in
          expect s COMMA;
          let y = parse_value s ~ty in
          Instr.Select (ty, c, x, y)
        | "alloca" ->
          let ty = parse_ty s in
          expect_ident s "x";
          let n = Int64.to_int (int_lit s) in
          Instr.Alloca (ty, n)
        | "load" ->
          let ty = parse_ty s in
          expect s COMMA;
          let p = parse_value s ~ty:Types.Ptr in
          Instr.Load (ty, p)
        | "store" ->
          let ty = parse_ty s in
          let v = parse_value s ~ty in
          expect s COMMA;
          let p = parse_value s ~ty:Types.Ptr in
          Instr.Store (ty, v, p)
        | "gep" ->
          let ty = parse_ty s in
          let b = parse_value s ~ty:Types.Ptr in
          expect s COMMA;
          let i = parse_value s ~ty:Types.I64 in
          Instr.Gep (ty, b, i)
        | "call" ->
          let ty = parse_ty s in
          let g =
            match next s with
            | GLOB g -> g
            | t -> fail "expected @callee, got %s" (token_to_string t)
          in
          let args = parse_args s ~ty:Types.I64 in
          Instr.Call (ty, g, args)
        | "callind" ->
          let ty = parse_ty s in
          let f = parse_value s ~ty:Types.Ptr in
          let args = parse_args s ~ty:Types.I64 in
          Instr.Callind (ty, f, args)
        | "phi" ->
          let ty = parse_ty s in
          let rec go acc =
            expect s LBRACK;
            let l = ident s in
            expect s COLON;
            let v = parse_value s ~ty in
            expect s RBRACK;
            if peek s = COMMA then begin
              ignore (next s);
              go ((l, v) :: acc)
            end
            else List.rev ((l, v) :: acc)
          in
          Instr.Phi (ty, go [])
        | "memcpy" ->
          let d = parse_value s ~ty:Types.Ptr in
          expect s COMMA;
          let src = parse_value s ~ty:Types.Ptr in
          expect s COMMA;
          let n = parse_value s ~ty:Types.I64 in
          Instr.Memcpy (d, src, n)
        | "expect" ->
          let ty = parse_ty s in
          let v = parse_value s ~ty in
          expect s COMMA;
          let e = parse_value s ~ty in
          Instr.Expect (ty, v, e)
        | "intrinsic" ->
          let name = ident s in
          let ty = parse_ty s in
          let args = parse_args s ~ty:Types.I64 in
          Instr.Intrinsic (name, ty, args)
        | _ -> fail "unknown opcode %s" opname))

let parse_term s (kw : string) : Instr.term =
  match kw with
  | "ret" ->
    (match peek s with
     | IDENT "void" ->
       ignore (next s);
       Instr.Ret None
     | _ ->
       let ty = parse_ty s in
       let v = parse_value s ~ty in
       Instr.Ret (Some (ty, v)))
  | "br" -> Instr.Br (ident s)
  | "cbr" ->
    let c = parse_value s ~ty:Types.I1 in
    expect s COMMA;
    let t = ident s in
    expect s COMMA;
    let e = ident s in
    Instr.Cbr (c, t, e)
  | "switch" ->
    let ty = parse_ty s in
    let v = parse_value s ~ty in
    expect s LBRACK;
    let rec go acc =
      match peek s with
      | RBRACK ->
        ignore (next s);
        List.rev acc
      | _ ->
        let k = int_lit s in
        expect s COLON;
        let l = ident s in
        let acc = (k, l) :: acc in
        (match peek s with
         | COMMA -> ignore (next s); go acc
         | _ ->
           expect s RBRACK;
           List.rev acc)
    in
    let cases = go [] in
    expect s COMMA;
    expect_ident s "default";
    let d = ident s in
    Instr.Switch (ty, v, cases, d)
  | "unreachable" -> Instr.Unreachable
  | _ -> fail "unknown terminator %s" kw

let terminator_kw = function
  | "ret" | "br" | "cbr" | "switch" | "unreachable" -> true
  | _ -> false

(* --- functions, globals, module ----------------------------------------- *)

let parse_params s =
  expect s LPAREN;
  if peek s = RPAREN then begin
    ignore (next s);
    []
  end
  else begin
    let rec go acc =
      match next s with
      | REG r ->
        expect s COLON;
        let ty = parse_ty s in
        let acc = (r, ty) :: acc in
        (match next s with
         | COMMA -> go acc
         | RPAREN -> List.rev acc
         | t -> fail "expected ',' or ')', got %s" (token_to_string t))
      | t -> fail "expected parameter register, got %s" (token_to_string t)
    in
    go []
  end

let parse_attrs s =
  if peek s = LBRACK then begin
    ignore (next s);
    let rec go acc =
      match next s with
      | RBRACK -> Attrs.of_list acc
      | IDENT a -> go (a :: acc)
      | t -> fail "expected attribute, got %s" (token_to_string t)
    in
    go []
  end
  else Attrs.empty

let parse_block s label =
  let insns = ref [] in
  let rec go () =
    match peek s with
    | REG r ->
      ignore (next s);
      expect s EQUALS;
      let opname = ident s in
      let op = parse_op s opname in
      insns := Instr.mk r op :: !insns;
      go ()
    | IDENT kw when terminator_kw kw ->
      ignore (next s);
      parse_term s kw
    | IDENT opname ->
      ignore (next s);
      let op = parse_op s opname in
      insns := Instr.mk Instr.no_result op :: !insns;
      go ()
    | t -> fail "expected instruction, got %s" (token_to_string t)
  in
  let term = go () in
  Block.mk label (List.rev !insns) term

let parse_func s ~linkage =
  let name =
    match next s with
    | GLOB g -> g
    | t -> fail "expected @name, got %s" (token_to_string t)
  in
  let params = parse_params s in
  expect s COLON;
  let ret = parse_ty s in
  let attrs = parse_attrs s in
  expect s LBRACE;
  let rec go acc =
    match next s with
    | RBRACE -> List.rev acc
    | IDENT label ->
      expect s COLON;
      go (parse_block s label :: acc)
    | t -> fail "expected block label or '}', got %s" (token_to_string t)
  in
  let blocks = go [] in
  let max_id =
    List.fold_left
      (fun acc b ->
        List.fold_left (fun acc i -> max acc i.Instr.id) acc b.Block.insns)
      (List.fold_left (fun acc (r, _) -> max acc r) (-1) params)
      blocks
  in
  Func.mk ~attrs ~linkage ~name ~params ~ret ~blocks ~next_id:(max_id + 1) ()

let parse_declare s =
  let name =
    match next s with
    | GLOB g -> g
    | t -> fail "expected @name, got %s" (token_to_string t)
  in
  let params = parse_params s in
  expect s COLON;
  let ret = parse_ty s in
  let max_id = List.fold_left (fun acc (r, _) -> max acc r) (-1) params in
  Func.mk ~linkage:Func.External ~name ~params ~ret ~blocks:[] ~next_id:(max_id + 1) ()

let parse_global s ~linkage ~is_const =
  let name =
    match next s with
    | GLOB g -> g
    | t -> fail "expected @name, got %s" (token_to_string t)
  in
  expect s COLON;
  let elt_ty = parse_ty s in
  expect_ident s "x";
  let elems = Int64.to_int (int_lit s) in
  let init =
    if peek s = EQUALS then begin
      ignore (next s);
      match next s with
      | IDENT "zeroinit" -> Some Global.Zeroinit
      | IDENT "ints" ->
        expect s LBRACK;
        let rec go acc =
          match next s with
          | RBRACK -> Some (Global.Ints (Array.of_list (List.rev acc)))
          | INT v ->
            (match peek s with
             | COMMA -> ignore (next s)
             | _ -> ());
            go (v :: acc)
          | t -> fail "expected int in global init, got %s" (token_to_string t)
        in
        go []
      | IDENT "floats" ->
        expect s LBRACK;
        let rec go acc =
          match next s with
          | RBRACK -> Some (Global.Floats (Array.of_list (List.rev acc)))
          | FLOAT v ->
            (match peek s with
             | COMMA -> ignore (next s)
             | _ -> ());
            go (v :: acc)
          | INT v ->
            (match peek s with
             | COMMA -> ignore (next s)
             | _ -> ());
            go (Int64.to_float v :: acc)
          | t -> fail "expected float in global init, got %s" (token_to_string t)
        in
        go []
      | IDENT "bytes" ->
        (match next s with
         | STRING str -> Some (Global.Bytes str)
         | t -> fail "expected string, got %s" (token_to_string t))
      | t -> fail "unknown global initializer %s" (token_to_string t)
    end
    else None
  in
  Global.mk ~is_const ~linkage ?init name elt_ty elems

let parse_module (src : string) : Modul.t =
  let s = { toks = tokenize src } in
  expect_ident s "module";
  let name = ident s in
  let globals = ref [] in
  let funcs = ref [] in
  let rec go () =
    match next s with
    | EOF -> ()
    | IDENT "internal" ->
      (match next s with
       | IDENT "func" -> funcs := parse_func s ~linkage:Func.Internal :: !funcs
       | IDENT "global" ->
         globals := parse_global s ~linkage:Global.Internal ~is_const:false :: !globals
       | IDENT "const" ->
         globals := parse_global s ~linkage:Global.Internal ~is_const:true :: !globals
       | t -> fail "expected func/global/const after internal, got %s" (token_to_string t));
      go ()
    | IDENT "func" ->
      (* a bare [func] in printed output means external linkage *)
      funcs := parse_func s ~linkage:Func.External :: !funcs;
      go ()
    | IDENT "declare" ->
      funcs := parse_declare s :: !funcs;
      go ()
    | IDENT "global" ->
      globals := parse_global s ~linkage:Global.External ~is_const:false :: !globals;
      go ()
    | IDENT "const" ->
      globals := parse_global s ~linkage:Global.External ~is_const:true :: !globals;
      go ()
    | t -> fail "expected top-level item, got %s" (token_to_string t)
  in
  go ();
  Modul.mk ~globals:(List.rev !globals) ~name (List.rev !funcs)
