(* Functions: a parameter list (each parameter owns an SSA register), a
   return type, a CFG given as an ordered block list (entry first), and a
   fresh-register counter threaded through passes. *)

module SMap = Map.Make (String)

type linkage = Internal | External

type t = {
  name : string;
  params : (int * Types.t) list;
  ret : Types.t;
  blocks : Block.t list; (* empty for declarations; entry block first *)
  next_id : int;
  attrs : Attrs.t;
  linkage : linkage;
}

let mk ?(attrs = Attrs.empty) ?(linkage = Internal) ~name ~params ~ret ~blocks ~next_id () =
  { name; params; ret; blocks; next_id; attrs; linkage }

let declare ?(attrs = Attrs.empty) ~name ~params ~ret () =
  let params = List.mapi (fun i ty -> (i, ty)) params in
  { name; params; ret; blocks = []; next_id = List.length params;
    attrs; linkage = External }

let is_declaration f = f.blocks = []

let entry f =
  match f.blocks with
  | [] -> invalid_arg ("Func.entry: declaration " ^ f.name)
  | b :: _ -> b

let find_block f label =
  List.find_opt (fun b -> String.equal b.Block.label label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.find_block: no block %s in %s" label f.name)

let block_map f =
  List.fold_left (fun m b -> SMap.add b.Block.label b m) SMap.empty f.blocks

let with_blocks ?next_id f blocks =
  { f with blocks; next_id = Option.value next_id ~default:f.next_id }

let map_blocks fn f = { f with blocks = List.map fn f.blocks }

(* Rewrite every operand in the function body. *)
let map_operands fn f = map_blocks (Block.map_operands fn) f

(* Substitute register [r] by value [v] everywhere. *)
let replace_reg r v f =
  let subst = function Value.Reg r' when r' = r -> v | x -> x in
  map_operands subst f

let iter_insns fn f =
  List.iter (fun b -> List.iter (fn b) b.Block.insns) f.blocks

let fold_insns fn acc f =
  List.fold_left
    (fun acc b -> List.fold_left (fun acc i -> fn acc b i) acc b.Block.insns)
    acc f.blocks

let insn_count f =
  fold_insns (fun n _ _ -> n + 1) 0 f + List.length f.blocks (* + terminators *)

(* Map from defining register to (block label, instruction). *)
let def_map f =
  fold_insns
    (fun m b i -> if i.Instr.id >= 0 then (i.Instr.id, (b.Block.label, i)) :: m else m)
    [] f
  |> List.to_seq |> Hashtbl.of_seq

(* Number of uses of each register across the body (terminators included). *)
let use_counts f =
  let tbl = Hashtbl.create 64 in
  let bump = function
    | Value.Reg r -> Hashtbl.replace tbl r (1 + Option.value (Hashtbl.find_opt tbl r) ~default:0)
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter (fun i -> List.iter bump (Instr.operands i.Instr.op)) b.Block.insns;
      List.iter bump (Instr.term_operands b.Block.term))
    f.blocks;
  tbl

(* Allocate [n] fresh registers; returns the first id and the updated
   function. Passes typically use the mutable [fresh_counter] instead. *)
let alloc_regs f n = (f.next_id, { f with next_id = f.next_id + n })

(* Mutable fresh-id source for use inside a pass body. *)
type counter = { mutable next : int }

let fresh_counter f = { next = f.next_id }

let fresh c =
  let id = c.next in
  c.next <- id + 1;
  id

let commit_counter f c = { f with next_id = c.next }

let param_regs f = List.map fst f.params

let has_attr a f = Attrs.mem a f.attrs

let add_attr a f = { f with attrs = Attrs.add a f.attrs }

let remove_attr a f = { f with attrs = Attrs.remove a f.attrs }
