(* MiniIR first-class types.

   A deliberately small lattice: scalar integers of the widths the passes
   distinguish, double floats, an opaque pointer, void, and fixed-width
   vectors (produced only by loop-vectorize). *)

type t =
  | I1
  | I8
  | I32
  | I64
  | F64
  | Ptr
  | Void
  | Vec of t * int

let rec size_bytes = function
  | I1 | I8 -> 1
  | I32 -> 4
  | I64 | F64 | Ptr -> 8
  | Void -> 0
  | Vec (t, n) -> n * size_bytes t

let is_integer = function I1 | I8 | I32 | I64 -> true | _ -> false

let is_float = function F64 -> true | _ -> false

let is_vector = function Vec _ -> true | _ -> false

let elt_type = function Vec (t, _) -> t | t -> t

let bit_width = function
  | I1 -> 1
  | I8 -> 8
  | I32 -> 32
  | I64 -> 64
  | F64 -> 64
  | Ptr -> 64
  | Void -> 0
  | Vec (t, n) -> n * (8 * size_bytes t)

let rec to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"
  | Void -> "void"
  | Vec (t, n) -> Printf.sprintf "<%d x %s>" n (to_string t)

let pp ppf t = Fmt.string ppf (to_string t)

let equal (a : t) (b : t) = a = b

(* Wrap an int64 to the signed range of an integer type; the semantics of
   every arithmetic op in the interpreter and constant folder. *)
let wrap ty (v : int64) =
  match ty with
  | I1 -> Int64.logand v 1L
  | I8 ->
    let m = Int64.logand v 0xFFL in
    if Int64.compare m 0x80L >= 0 then Int64.sub m 0x100L else m
  | I32 ->
    let m = Int64.logand v 0xFFFFFFFFL in
    if Int64.compare m 0x80000000L >= 0 then Int64.sub m 0x100000000L else m
  | I64 -> v
  | _ -> invalid_arg "Types.wrap: not an integer type"
