(* Textual form of MiniIR; the inverse of [Parser]. *)

open Instr

let pp_value = Value.pp

let pp_ty = Types.pp

let pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_value) ppf args

let pp_op ppf (op : op) =
  match op with
  | Binop (b, ty, x, y) ->
    Fmt.pf ppf "%s %a %a, %a" (binop_name b) pp_ty ty pp_value x pp_value y
  | Icmp (p, ty, x, y) ->
    Fmt.pf ppf "icmp %s %a %a, %a" (icmp_name p) pp_ty ty pp_value x pp_value y
  | Fcmp (p, x, y) -> Fmt.pf ppf "fcmp %s %a, %a" (icmp_name p) pp_value x pp_value y
  | Select (ty, c, x, y) ->
    Fmt.pf ppf "select %a %a, %a, %a" pp_ty ty pp_value c pp_value x pp_value y
  | Cast (c, t1, t2, v) ->
    Fmt.pf ppf "%s %a %a to %a" (castop_name c) pp_ty t1 pp_value v pp_ty t2
  | Alloca (ty, n) -> Fmt.pf ppf "alloca %a x %d" pp_ty ty n
  | Load (ty, p) -> Fmt.pf ppf "load %a, %a" pp_ty ty pp_value p
  | Store (ty, v, p) -> Fmt.pf ppf "store %a %a, %a" pp_ty ty pp_value v pp_value p
  | Gep (ty, b, i) -> Fmt.pf ppf "gep %a %a, %a" pp_ty ty pp_value b pp_value i
  | Call (ty, g, args) -> Fmt.pf ppf "call %a @%s(%a)" pp_ty ty g pp_args args
  | Callind (ty, f, args) ->
    Fmt.pf ppf "callind %a %a(%a)" pp_ty ty pp_value f pp_args args
  | Phi (ty, incs) ->
    let pp_inc ppf (l, v) = Fmt.pf ppf "[%s: %a]" l pp_value v in
    Fmt.pf ppf "phi %a %a" pp_ty ty Fmt.(list ~sep:(any ", ") pp_inc) incs
  | Memcpy (d, s, n) -> Fmt.pf ppf "memcpy %a, %a, %a" pp_value d pp_value s pp_value n
  | Expect (ty, v, e) -> Fmt.pf ppf "expect %a %a, %a" pp_ty ty pp_value v pp_value e
  | Intrinsic (n, ty, args) -> Fmt.pf ppf "intrinsic %s %a (%a)" n pp_ty ty pp_args args

let pp_insn ppf (i : Instr.t) =
  if i.id >= 0 then Fmt.pf ppf "  %%%d = %a" i.id pp_op i.op
  else Fmt.pf ppf "  %a" pp_op i.op

let pp_term ppf (t : term) =
  match t with
  | Ret None -> Fmt.string ppf "  ret void"
  | Ret (Some (ty, v)) -> Fmt.pf ppf "  ret %a %a" pp_ty ty pp_value v
  | Br l -> Fmt.pf ppf "  br %s" l
  | Cbr (c, t, e) -> Fmt.pf ppf "  cbr %a, %s, %s" pp_value c t e
  | Switch (ty, v, cases, d) ->
    let pp_case ppf (k, l) = Fmt.pf ppf "%Ld: %s" k l in
    Fmt.pf ppf "  switch %a %a [%a], default %s" pp_ty ty pp_value v
      Fmt.(list ~sep:(any ", ") pp_case)
      cases d
  | Unreachable -> Fmt.string ppf "  unreachable"

let pp_block ppf (b : Block.t) =
  Fmt.pf ppf "%s:@\n" b.Block.label;
  List.iter (fun i -> Fmt.pf ppf "%a@\n" pp_insn i) b.Block.insns;
  Fmt.pf ppf "%a@\n" pp_term b.Block.term

let pp_func ppf (f : Func.t) =
  let pp_param ppf (r, ty) = Fmt.pf ppf "%%%d: %a" r pp_ty ty in
  let linkage = match f.Func.linkage with Func.Internal -> "internal " | Func.External -> "" in
  if Func.is_declaration f then
    Fmt.pf ppf "declare @%s(%a): %a@\n" f.Func.name
      Fmt.(list ~sep:(any ", ") pp_param)
      f.Func.params pp_ty f.Func.ret
  else begin
    Fmt.pf ppf "%sfunc @%s(%a): %a" linkage f.Func.name
      Fmt.(list ~sep:(any ", ") pp_param)
      f.Func.params pp_ty f.Func.ret;
    if not (Attrs.equal f.Func.attrs Attrs.empty) then
      Fmt.pf ppf " %a" Attrs.pp f.Func.attrs;
    Fmt.pf ppf " {@\n";
    List.iter (pp_block ppf) f.Func.blocks;
    Fmt.pf ppf "}@\n"
  end

let pp_global ppf (g : Global.t) =
  let kind = if g.Global.is_const then "const" else "global" in
  let linkage =
    match g.Global.linkage with Global.Internal -> "internal " | Global.External -> ""
  in
  Fmt.pf ppf "%s%s @%s: %a x %d" linkage kind g.Global.name pp_ty g.Global.elt_ty
    g.Global.elems;
  (match g.Global.init with
   | None -> ()
   | Some Global.Zeroinit -> Fmt.pf ppf " = zeroinit"
   | Some (Global.Ints vs) ->
     Fmt.pf ppf " = ints [%a]" Fmt.(array ~sep:(any ", ") int64) vs
   | Some (Global.Floats vs) ->
     Fmt.pf ppf " = floats [%a]" Fmt.(array ~sep:(any ", ") float) vs
   | Some (Global.Bytes s) -> Fmt.pf ppf " = bytes %S" s);
  Fmt.pf ppf "@\n"

let pp_module ppf (m : Modul.t) =
  Fmt.pf ppf "module %s@\n@\n" m.Modul.name;
  List.iter (pp_global ppf) m.Modul.globals;
  if m.Modul.globals <> [] then Fmt.pf ppf "@\n";
  List.iter (fun f -> Fmt.pf ppf "%a@\n" pp_func f) m.Modul.funcs

let func_to_string f = Fmt.str "%a" pp_func f

let module_to_string m = Fmt.str "%a" pp_module m
