(* MiniIR instructions and block terminators. *)

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type castop = Trunc | Zext | Sext | Bitcast | Fptosi | Sitofp

type op =
  | Binop of binop * Types.t * Value.t * Value.t
  | Icmp of icmp * Types.t * Value.t * Value.t
  | Fcmp of icmp * Value.t * Value.t
  | Select of Types.t * Value.t * Value.t * Value.t
  | Cast of castop * Types.t * Types.t * Value.t  (* from, to, v *)
  | Alloca of Types.t * int                        (* elt type, elt count *)
  | Load of Types.t * Value.t
  | Store of Types.t * Value.t * Value.t           (* stored value, pointer *)
  | Gep of Types.t * Value.t * Value.t             (* elt type, base, index *)
  | Call of Types.t * string * Value.t list
  | Callind of Types.t * Value.t * Value.t list
  | Phi of Types.t * (string * Value.t) list       (* predecessor label, value *)
  | Memcpy of Value.t * Value.t * Value.t          (* dst, src, byte count *)
  | Expect of Types.t * Value.t * Value.t          (* value, expected constant *)
  | Intrinsic of string * Types.t * Value.t list   (* assume, lifetime, ... *)

type t = { id : int; op : op }
(* [id] is the SSA register defined by the instruction, or [-1] when the
   instruction produces no value (store, void call, memcpy, ...). *)

type term =
  | Ret of (Types.t * Value.t) option
  | Br of string
  | Cbr of Value.t * string * string
  | Switch of Types.t * Value.t * (int64 * string) list * string
  | Unreachable

let mk id op = { id; op }

let no_result = -1

(* --- structural queries ------------------------------------------------ *)

let operands = function
  | Binop (_, _, a, b) | Icmp (_, _, a, b) | Fcmp (_, a, b) -> [ a; b ]
  | Select (_, c, a, b) -> [ c; a; b ]
  | Cast (_, _, _, v) -> [ v ]
  | Alloca _ -> []
  | Load (_, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Gep (_, b, i) -> [ b; i ]
  | Call (_, _, args) -> args
  | Callind (_, f, args) -> f :: args
  | Phi (_, incs) -> List.map snd incs
  | Memcpy (d, s, n) -> [ d; s; n ]
  | Expect (_, v, e) -> [ v; e ]
  | Intrinsic (_, _, args) -> args

let map_operands f op =
  match op with
  | Binop (b, ty, x, y) -> Binop (b, ty, f x, f y)
  | Icmp (p, ty, x, y) -> Icmp (p, ty, f x, f y)
  | Fcmp (p, x, y) -> Fcmp (p, f x, f y)
  | Select (ty, c, x, y) -> Select (ty, f c, f x, f y)
  | Cast (c, t1, t2, v) -> Cast (c, t1, t2, f v)
  | Alloca _ -> op
  | Load (ty, p) -> Load (ty, f p)
  | Store (ty, v, p) -> Store (ty, f v, f p)
  | Gep (ty, b, i) -> Gep (ty, f b, f i)
  | Call (ty, g, args) -> Call (ty, g, List.map f args)
  | Callind (ty, fn, args) -> Callind (ty, f fn, List.map f args)
  | Phi (ty, incs) -> Phi (ty, List.map (fun (l, v) -> (l, f v)) incs)
  | Memcpy (d, s, n) -> Memcpy (f d, f s, f n)
  | Expect (ty, v, e) -> Expect (ty, f v, f e)
  | Intrinsic (n, ty, args) -> Intrinsic (n, ty, List.map f args)

let term_operands = function
  | Ret (Some (_, v)) -> [ v ]
  | Ret None -> []
  | Br _ -> []
  | Cbr (c, _, _) -> [ c ]
  | Switch (_, v, _, _) -> [ v ]
  | Unreachable -> []

let map_term_operands f = function
  | Ret (Some (ty, v)) -> Ret (Some (ty, f v))
  | Ret None -> Ret None
  | Br l -> Br l
  | Cbr (c, t, e) -> Cbr (f c, t, e)
  | Switch (ty, v, cases, d) -> Switch (ty, f v, cases, d)
  | Unreachable -> Unreachable

let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cbr (_, t, e) -> if String.equal t e then [ t ] else [ t; e ]
  | Switch (_, _, cases, d) ->
    let ls = d :: List.map snd cases in
    List.sort_uniq String.compare ls

let map_term_labels f = function
  | Ret v -> Ret v
  | Unreachable -> Unreachable
  | Br l -> Br (f l)
  | Cbr (c, t, e) -> Cbr (c, f t, f e)
  | Switch (ty, v, cases, d) ->
    Switch (ty, v, List.map (fun (k, l) -> (k, f l)) cases, f d)

(* Result type of an instruction; [Void] when it defines no register. *)
let result_ty = function
  | Binop (_, ty, _, _) -> ty
  | Icmp (_, ty, _, _) ->
    (match ty with Types.Vec (_, n) -> Types.Vec (Types.I1, n) | _ -> Types.I1)
  | Fcmp _ -> Types.I1
  | Select (ty, _, _, _) -> ty
  | Cast (_, _, ty, _) -> ty
  | Alloca _ -> Types.Ptr
  | Load (ty, _) -> ty
  | Store _ -> Types.Void
  | Gep _ -> Types.Ptr
  | Call (ty, _, _) | Callind (ty, _, _) -> ty
  | Phi (ty, _) -> ty
  | Memcpy _ -> Types.Void
  | Expect (ty, _, _) -> ty
  | Intrinsic (_, ty, _) -> ty

let is_phi = function Phi _ -> true | _ -> false

(* An instruction is pure if it neither reads nor writes memory and cannot
   trap; pure instructions are fair game for CSE, GVN, DCE and hoisting. *)
let is_pure = function
  | Binop ((Sdiv | Udiv | Srem | Urem), _, _, Value.Const (Value.Cint (_, k)))
    when not (Int64.equal k 0L) -> true
  | Binop ((Sdiv | Udiv | Srem | Urem), _, _, _) -> false (* may trap *)
  | Binop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Gep _ | Expect _ -> true
  | Phi _ -> false (* position-dependent *)
  | Alloca _ | Load _ | Store _ | Call _ | Callind _ | Memcpy _ | Intrinsic _ -> false

let writes_memory = function
  | Store _ | Memcpy _ | Call _ | Callind _ -> true
  | Intrinsic (("assume" | "lifetime.start" | "lifetime.end" | "expect"), _, _) -> false
  | Intrinsic _ -> true
  | _ -> false

let reads_memory = function
  | Load _ | Memcpy _ | Call _ | Callind _ -> true
  | _ -> false

let has_side_effects op = writes_memory op

(* --- pretty names for opcodes (used by IR2Vec vocabulary & printer) ----- *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Sdiv -> "sdiv" | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let castop_name = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Bitcast -> "bitcast" | Fptosi -> "fptosi" | Sitofp -> "sitofp"

let opcode_name = function
  | Binop (b, _, _, _) -> binop_name b
  | Icmp _ -> "icmp"
  | Fcmp _ -> "fcmp"
  | Select _ -> "select"
  | Cast (c, _, _, _) -> castop_name c
  | Alloca _ -> "alloca"
  | Load _ -> "load"
  | Store _ -> "store"
  | Gep _ -> "gep"
  | Call _ -> "call"
  | Callind _ -> "callind"
  | Phi _ -> "phi"
  | Memcpy _ -> "memcpy"
  | Expect _ -> "expect"
  | Intrinsic (n, _, _) -> "intrinsic." ^ n

let term_name = function
  | Ret _ -> "ret"
  | Br _ -> "br"
  | Cbr _ -> "cbr"
  | Switch _ -> "switch"
  | Unreachable -> "unreachable"

(* Commutative integer/float ops, used for operand canonicalization. *)
let is_commutative = function
  | Add | Mul | And | Or | Xor | Fadd | Fmul -> true
  | Sub | Sdiv | Udiv | Srem | Urem | Shl | Lshr | Ashr | Fsub | Fdiv -> false

let swap_icmp = function
  | Eq -> Eq | Ne -> Ne
  | Slt -> Sgt | Sle -> Sge | Sgt -> Slt | Sge -> Sle
  | Ult -> Ugt | Ule -> Uge | Ugt -> Ult | Uge -> Ule

let negate_icmp = function
  | Eq -> Ne | Ne -> Eq
  | Slt -> Sge | Sle -> Sgt | Sgt -> Sle | Sge -> Slt
  | Ult -> Uge | Ule -> Ugt | Ugt -> Ule | Uge -> Ult
