(* A MiniIR module: globals plus functions, the unit the pass manager,
   codegen and evaluation pipelines operate on. ("module" is a keyword.) *)

type t = {
  name : string;
  globals : Global.t list;
  funcs : Func.t list;
}

let mk ?(globals = []) ~name funcs = { name; globals; funcs }

let find_func m name = List.find_opt (fun f -> String.equal f.Func.name name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Modul.find_func: no function %s in %s" name m.name)

let find_global m name = List.find_opt (fun g -> String.equal g.Global.name name) m.globals

let map_funcs fn m = { m with funcs = List.map fn m.funcs }

(* Apply [fn] only to function definitions, leaving declarations alone. *)
let map_defined fn m =
  map_funcs (fun f -> if Func.is_declaration f then f else fn f) m

let defined_funcs m = List.filter (fun f -> not (Func.is_declaration f)) m.funcs

let replace_func m f =
  { m with
    funcs = List.map (fun g -> if String.equal g.Func.name f.Func.name then f else g) m.funcs }

let insn_count m =
  List.fold_left (fun n f -> n + if Func.is_declaration f then 0 else Func.insn_count f) 0 m.funcs

(* Direct call graph: function name -> callee names (with multiplicity). *)
let callees f =
  Func.fold_insns
    (fun acc _ i ->
      match i.Instr.op with Instr.Call (_, g, _) -> g :: acc | _ -> acc)
    [] f

let callers m name =
  List.filter_map
    (fun f ->
      if Func.is_declaration f then None
      else if List.exists (String.equal name) (callees f) then Some f.Func.name
      else None)
    m.funcs
