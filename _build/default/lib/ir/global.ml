(* Module-level global variables. *)

type linkage = Internal | External

type init =
  | Zeroinit
  | Ints of int64 array
  | Floats of float array
  | Bytes of string

type t = {
  name : string;
  elt_ty : Types.t;
  elems : int;
  init : init option; (* [None] = external declaration *)
  is_const : bool;
  linkage : linkage;
  align : int;
}

let mk ?(is_const = false) ?(linkage = Internal) ?(align = 8) ?init name elt_ty elems =
  { name; elt_ty; elems; init; is_const; linkage; align }

let size_bytes g = g.elems * Types.size_bytes g.elt_ty

let is_definition g = Option.is_some g.init
