(* Control-flow-graph queries over a function: successor/predecessor maps,
   reachability, and reverse post-order. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  succs : string list SMap.t;
  preds : string list SMap.t;
  entry : string;
}

let of_func (f : Func.t) =
  let entry = (Func.entry f).Block.label in
  let succs =
    List.fold_left
      (fun m b -> SMap.add b.Block.label (Block.successors b) m)
      SMap.empty f.Func.blocks
  in
  let preds =
    List.fold_left
      (fun m b ->
        List.fold_left
          (fun m s ->
            let cur = Option.value (SMap.find_opt s m) ~default:[] in
            SMap.add s (b.Block.label :: cur) m)
          m (Block.successors b))
      (List.fold_left (fun m b -> SMap.add b.Block.label [] m) SMap.empty f.Func.blocks)
      f.Func.blocks
  in
  { succs; preds; entry }

let succs t label = Option.value (SMap.find_opt label t.succs) ~default:[]

let preds t label = Option.value (SMap.find_opt label t.preds) ~default:[]

(* Blocks reachable from entry. *)
let reachable t =
  let rec go seen = function
    | [] -> seen
    | l :: rest ->
      if SSet.mem l seen then go seen rest
      else go (SSet.add l seen) (succs t l @ rest)
  in
  go SSet.empty [ t.entry ]

(* Reverse post-order of the reachable subgraph, entry first. *)
let rpo t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      List.iter dfs (succs t l);
      order := l :: !order
    end
  in
  dfs t.entry;
  !order

(* Post-order (reverse of rpo). *)
let postorder t = List.rev (rpo t)
