(* Evaluation harness: the model-vs-Oz comparisons behind Table IV,
   Table V and Fig. 5.

   For each validation program we compile three ways — unoptimized, -Oz,
   and with the trained model's predicted sequence — then compare object
   sizes (codegen model) and execution time (interpreter cycles on the
   x86 cost model), exactly the two axes the paper reports. *)

open Posetrl_ir
module Rl = Posetrl_rl

type program_result = {
  prog_name : string;
  size_unopt : int;
  size_oz : int;
  size_model : int;
  time_oz : int option;    (* interpreter cycles; None if not executed *)
  time_model : int option;
  predicted : int list;
}

(* percentage of size reduction of the model binary vs the Oz binary;
   positive = model smaller (paper Table IV) *)
let size_reduction_pct (r : program_result) : float =
  if r.size_oz = 0 then 0.0
  else 100.0 *. float_of_int (r.size_oz - r.size_model) /. float_of_int r.size_oz

(* percentage decrease of execution time vs Oz; positive = model faster
   (paper Table V) *)
let time_improvement_pct (r : program_result) : float option =
  match r.time_oz, r.time_model with
  | Some toz, Some tm when toz > 0 ->
    Some (100.0 *. float_of_int (toz - tm) /. float_of_int toz)
  | _ -> None

let run_time (m : Modul.t) : int option =
  match Posetrl_interp.Interp.run m with
  | { Posetrl_interp.Interp.cycles; _ } -> Some cycles
  | exception Posetrl_interp.Interp.Trap _ -> None

let evaluate_program ?(measure_time = true) ~(agent : Rl.Dqn.t)
    ~(actions : Posetrl_odg.Action_space.t)
    ~(target : Posetrl_codegen.Target.t) ~(name : string) (m : Modul.t) :
    program_result =
  let size_of m = Posetrl_codegen.Objfile.size target m in
  let m_oz = Posetrl_passes.Pass_manager.run_level Posetrl_passes.Pipelines.Oz m in
  let rollout = Inference.predict ~agent ~actions ~target m in
  let m_model = rollout.Inference.optimized in
  { prog_name = name;
    size_unopt = size_of m;
    size_oz = size_of m_oz;
    size_model = size_of m_model;
    time_oz = (if measure_time then run_time m_oz else None);
    time_model = (if measure_time then run_time m_model else None);
    predicted = rollout.Inference.actions }

type suite_summary = {
  suite : string;
  n : int;
  min_red : float;
  avg_red : float;
  max_red : float;
  avg_time_impr : float option;
}

let summarize_suite ~(suite : string) (results : program_result list) :
    suite_summary =
  let reds = List.map size_reduction_pct results in
  let times = List.filter_map time_improvement_pct results in
  { suite;
    n = List.length results;
    min_red = Posetrl_support.Stats.minimum reds;
    avg_red = Posetrl_support.Stats.mean reds;
    max_red = Posetrl_support.Stats.maximum reds;
    avg_time_impr =
      (if times = [] then None else Some (Posetrl_support.Stats.mean times)) }
