lib/core/inference.mli: Format Posetrl_codegen Posetrl_ir Posetrl_odg Posetrl_passes Posetrl_rl
