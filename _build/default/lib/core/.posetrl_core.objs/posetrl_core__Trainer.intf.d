lib/core/trainer.mli: Posetrl_codegen Posetrl_ir Posetrl_odg Posetrl_rl
