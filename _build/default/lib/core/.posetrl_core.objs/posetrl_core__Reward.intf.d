lib/core/reward.mli: Posetrl_codegen Posetrl_ir
