lib/core/environment.ml: Modul Posetrl_codegen Posetrl_ir Posetrl_ir2vec Posetrl_odg Posetrl_passes Reward
