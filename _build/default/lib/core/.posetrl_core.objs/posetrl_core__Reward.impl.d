lib/core/reward.ml: Posetrl_codegen Posetrl_ir Posetrl_mca
