lib/core/evaluate.ml: Inference List Modul Posetrl_codegen Posetrl_interp Posetrl_ir Posetrl_odg Posetrl_passes Posetrl_rl Posetrl_support
