lib/core/inference.ml: Environment Fmt List Modul Posetrl_codegen Posetrl_ir Posetrl_odg Posetrl_passes Posetrl_rl
