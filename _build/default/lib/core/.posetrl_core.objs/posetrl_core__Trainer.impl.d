lib/core/trainer.ml: Array Environment Modul Posetrl_codegen Posetrl_ir Posetrl_nn Posetrl_odg Posetrl_rl Posetrl_support Queue Rng
