lib/core/environment.mli: Posetrl_codegen Posetrl_ir Posetrl_odg Posetrl_passes Reward
