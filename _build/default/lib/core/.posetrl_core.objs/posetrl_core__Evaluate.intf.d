lib/core/evaluate.mli: Posetrl_codegen Posetrl_ir Posetrl_odg Posetrl_rl
