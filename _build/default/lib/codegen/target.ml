(* Target machine descriptions.

   The size model needs two architectures because the paper evaluates on
   both: x86-64 (variable-length encodings, many addressing modes) and
   AArch64 (fixed 4-byte encodings, large immediates need extra moves).
   Machine instructions are abstracted into classes that the MCA
   throughput model maps onto execution ports. *)

type mclass =
  | MAlu      (* integer add/sub/logic/shift/cmp *)
  | MMul
  | MDiv
  | MFpAdd
  | MFpMul
  | MFpDiv
  | MLoad
  | MStore
  | MBranch
  | MCall
  | MMov      (* register moves, immediates, extensions *)
  | MLea      (* address arithmetic *)
  | MVecAlu
  | MVecMem
  | MNop

type minst = { klass : mclass; bytes : int }

let mi klass bytes = { klass; bytes }

type arch = X86_64 | AArch64

type t = {
  arch : arch;
  name : string;
  ptr_bytes : int;
  int_regs : int;        (* allocatable integer registers *)
  func_align : int;      (* function start alignment in .text *)
  prologue_bytes : int;
  epilogue_bytes : int;
  call_reloc_bytes : int; (* relocation record per call/global reference *)
  symtab_entry_bytes : int;
  header_bytes : int;     (* fixed object-file overhead *)
}

let x86_64 = {
  arch = X86_64;
  name = "x86-64";
  ptr_bytes = 8;
  int_regs = 12;
  func_align = 16;
  prologue_bytes = 4;  (* push rbp; mov rbp,rsp *)
  epilogue_bytes = 2;  (* leave; (ret counted per-ret) *)
  call_reloc_bytes = 24;
  symtab_entry_bytes = 24;
  header_bytes = 680;
}

let aarch64 = {
  arch = AArch64;
  name = "aarch64";
  ptr_bytes = 8;
  int_regs = 24;
  func_align = 8;
  prologue_bytes = 8;  (* stp x29,x30; mov x29,sp *)
  epilogue_bytes = 8;
  call_reloc_bytes = 24;
  symtab_entry_bytes = 24;
  header_bytes = 680;
}

let arch_to_string = function X86_64 -> "x86" | AArch64 -> "AArch64"
