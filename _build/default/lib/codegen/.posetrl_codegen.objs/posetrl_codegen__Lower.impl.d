lib/codegen/lower.ml: Block Func Hashtbl Instr Int64 List Posetrl_ir Target Types Value
