lib/codegen/objfile.ml: Func Global List Lower Modul Posetrl_ir String Target
