lib/codegen/target.ml:
