(* Object-file size model.

   Mirrors the size a compiled-but-unlinked object file would have: text
   section (functions aligned per target), data section (initialized
   globals), no file space for bss (zero-initialized data), relocation
   records for calls and global references, and a symbol-table entry per
   defined symbol. This is the [BinSize] used by the paper's reward (Eqn
   2) and size tables (Table IV, Fig 5c/5d). *)

open Posetrl_ir

type section_sizes = {
  text : int;
  data : int;
  bss : int; (* informational; does not contribute to object size *)
  relocs : int;
  symtab : int;
  headers : int;
}

let align n a = (n + a - 1) / a * a

let measure (t : Target.t) (m : Modul.t) : section_sizes =
  let text, relocs =
    List.fold_left
      (fun (text, relocs) f ->
        if Func.is_declaration f then (text, relocs)
        else begin
          let lf = Lower.lower_func t f in
          (align text t.Target.func_align + lf.Lower.code_bytes,
           relocs + (lf.Lower.call_sites * t.Target.call_reloc_bytes))
        end)
      (0, 0) m.Modul.funcs
  in
  let data, bss =
    List.fold_left
      (fun (data, bss) (g : Global.t) ->
        match g.Global.init with
        | None -> (data, bss)
        | Some Global.Zeroinit -> (data, align bss 8 + Global.size_bytes g)
        | Some _ -> (align data 8 + Global.size_bytes g, bss))
      (0, 0) m.Modul.globals
  in
  let symbols =
    List.length (Modul.defined_funcs m)
    + List.length (List.filter Global.is_definition m.Modul.globals)
  in
  let sym_names =
    List.fold_left (fun acc f -> acc + String.length f.Func.name + 1) 0 m.Modul.funcs
    + List.fold_left
        (fun acc (g : Global.t) -> acc + String.length g.Global.name + 1)
        0 m.Modul.globals
  in
  { text = align text t.Target.func_align;
    data;
    bss;
    relocs;
    symtab = (symbols * t.Target.symtab_entry_bytes) + sym_names;
    headers = t.Target.header_bytes }

(* Total object-file size in bytes. *)
let size (t : Target.t) (m : Modul.t) : int =
  let s = measure t m in
  s.text + s.data + s.relocs + s.symtab + s.headers

(* Text-only size, useful for per-function reporting. *)
let text_size (t : Target.t) (m : Modul.t) : int = (measure t m).text

let func_size (t : Target.t) (f : Func.t) : int =
  if Func.is_declaration f then 0 else (Lower.lower_func t f).Lower.code_bytes
