(* Instruction selection as a size/resource model.

   Each MiniIR instruction lowers to a short list of machine-instruction
   records (class + encoded bytes) per target. The mapping captures the
   encoding properties that matter for the paper's size results:
   variable-length x86 versus fixed-width AArch64, immediate-size
   penalties, per-phi copies, and a register-pressure spill estimate that
   makes unrolling and inlining pay a realistic size cost. *)

open Posetrl_ir
open Target

let imm_needs_wide (v : int64) =
  Int64.compare v 65535L > 0 || Int64.compare v (-65536L) < 0

(* extra instructions needed to materialize constants in operands *)
let const_cost (t : Target.t) (v : Value.t) : minst list =
  match t.arch, v with
  | X86_64, Value.Const (Value.Cint (_, k)) when imm_needs_wide k ->
    [ mi MMov 10 ] (* movabs *)
  | X86_64, Value.Const (Value.Cfloat _) -> [ mi MLoad 8 ] (* rip-relative load *)
  | X86_64, Value.Global _ -> [ mi MLea 7 ]
  | AArch64, Value.Const (Value.Cint (_, k)) when imm_needs_wide k ->
    [ mi MMov 4; mi MMov 4 ] (* movz + movk *)
  | AArch64, Value.Const (Value.Cfloat _) -> [ mi MLoad 4; mi MLoad 4 ]
  | AArch64, Value.Global _ -> [ mi MLea 4; mi MLea 4 ] (* adrp + add *)
  | _ -> []

let binop_minsts (t : Target.t) (b : Instr.binop) (ty : Types.t) : minst list =
  let vec = Types.is_vector ty in
  match t.arch, b with
  | _, (Instr.Fadd | Instr.Fsub) when vec -> [ mi MVecAlu (if t.arch = X86_64 then 4 else 4) ]
  | _, Instr.Fmul when vec -> [ mi MVecAlu 4 ]
  | _, Instr.Fdiv when vec -> [ mi MVecAlu 5 ]
  | _, _ when vec -> [ mi MVecAlu (if t.arch = X86_64 then 5 else 4) ]
  | X86_64, (Instr.Fadd | Instr.Fsub) -> [ mi MFpAdd 4 ]
  | X86_64, Instr.Fmul -> [ mi MFpMul 4 ]
  | X86_64, Instr.Fdiv -> [ mi MFpDiv 4 ]
  | X86_64, Instr.Mul -> [ mi MMul 4 ]
  | X86_64, (Instr.Sdiv | Instr.Srem) -> [ mi MMov 3; mi MDiv 3 ] (* cqo; idiv *)
  | X86_64, (Instr.Udiv | Instr.Urem) -> [ mi MMov 2; mi MDiv 3 ]
  | X86_64, (Instr.Shl | Instr.Lshr | Instr.Ashr) -> [ mi MAlu 3 ]
  | X86_64, _ -> [ mi MAlu 3 ]
  | AArch64, (Instr.Fadd | Instr.Fsub) -> [ mi MFpAdd 4 ]
  | AArch64, Instr.Fmul -> [ mi MFpMul 4 ]
  | AArch64, Instr.Fdiv -> [ mi MFpDiv 4 ]
  | AArch64, Instr.Mul -> [ mi MMul 4 ]
  | AArch64, (Instr.Sdiv | Instr.Udiv) -> [ mi MDiv 4 ]
  | AArch64, (Instr.Srem | Instr.Urem) -> [ mi MDiv 4; mi MMul 4 ] (* div + msub *)
  | AArch64, _ -> [ mi MAlu 4 ]

(* lower one IR instruction *)
let lower_insn (t : Target.t) (i : Instr.t) : minst list =
  let consts op = List.concat_map (const_cost t) (Instr.operands op) in
  let base =
    match i.Instr.op with
    | Instr.Binop (b, ty, _, _) -> binop_minsts t b ty
    | Instr.Icmp _ -> [ mi MAlu (if t.arch = X86_64 then 3 else 4) ]
    | Instr.Fcmp _ -> [ mi MFpAdd 4 ]
    | Instr.Select _ -> [ mi MMov 4 ] (* cmov / csel *)
    | Instr.Cast (Instr.Bitcast, from_ty, to_ty, _)
      when (not (Types.is_vector from_ty)) && Types.is_vector to_ty ->
      (* splat / broadcast *)
      [ mi MVecAlu (if t.arch = X86_64 then 5 else 4) ]
    | Instr.Cast (Instr.Bitcast, _, _, _) -> []
    | Instr.Cast ((Instr.Trunc | Instr.Zext | Instr.Sext), _, _, _) ->
      [ mi MMov (if t.arch = X86_64 then 3 else 4) ]
    | Instr.Cast ((Instr.Sitofp | Instr.Fptosi), _, _, _) -> [ mi MFpAdd 4 ]
    | Instr.Alloca _ -> [] (* folded into the frame *)
    | Instr.Load (ty, _) when Types.is_vector ty ->
      [ mi MVecMem (if t.arch = X86_64 then 5 else 4) ]
    | Instr.Load _ -> [ mi MLoad 4 ]
    | Instr.Store (ty, _, _) when Types.is_vector ty ->
      [ mi MVecMem (if t.arch = X86_64 then 5 else 4) ]
    | Instr.Store _ -> [ mi MStore 4 ]
    | Instr.Gep _ -> [ mi MLea 4 ]
    | Instr.Call (_, _, args) ->
      List.map (fun _ -> mi MMov (if t.arch = X86_64 then 3 else 4)) args
      @ [ mi MCall (if t.arch = X86_64 then 5 else 4) ]
    | Instr.Callind (_, _, args) ->
      List.map (fun _ -> mi MMov (if t.arch = X86_64 then 3 else 4)) args
      @ [ mi MCall (if t.arch = X86_64 then 3 else 4) ]
    | Instr.Phi _ -> [ mi MMov (if t.arch = X86_64 then 3 else 4) ]
    | Instr.Memcpy _ ->
      [ mi MMov 3; mi MMov 3; mi MMov 3; mi MCall (if t.arch = X86_64 then 5 else 4) ]
    | Instr.Expect _ -> []
    | Instr.Intrinsic ("memset", _, _) ->
      [ mi MMov 3; mi MMov 3; mi MMov 3; mi MCall (if t.arch = X86_64 then 5 else 4) ]
    | Instr.Intrinsic _ -> []
  in
  base @ consts i.Instr.op

let lower_term (t : Target.t) (term : Instr.term) : minst list =
  match term with
  | Instr.Ret _ -> [ mi MBranch (if t.arch = X86_64 then 1 else 4) ]
  | Instr.Br _ -> [ mi MBranch (if t.arch = X86_64 then 2 else 4) ]
  | Instr.Cbr _ -> [ mi MBranch (if t.arch = X86_64 then 6 else 4) ]
  | Instr.Switch (_, _, cases, _) ->
    List.concat_map
      (fun _ ->
        [ mi MAlu (if t.arch = X86_64 then 4 else 4);
          mi MBranch (if t.arch = X86_64 then 6 else 4) ])
      cases
    @ [ mi MBranch (if t.arch = X86_64 then 2 else 4) ]
  | Instr.Unreachable -> [ mi MNop 1 ]

(* Register-pressure spill estimate: values live in a block beyond the
   allocatable set spill to the stack (one store + reload pair each). *)
let spill_minsts (t : Target.t) (b : Block.t) : minst list =
  let distinct = Hashtbl.create 16 in
  List.iter
    (fun (i : Instr.t) ->
      if i.Instr.id >= 0 then Hashtbl.replace distinct i.Instr.id ();
      List.iter
        (fun v -> match v with Value.Reg r -> Hashtbl.replace distinct r () | _ -> ())
        (Instr.operands i.Instr.op))
    b.Block.insns;
  let live = Hashtbl.length distinct in
  let over = max 0 (live - t.int_regs) in
  List.concat
    (List.init over (fun _ ->
         [ mi MStore (if t.arch = X86_64 then 5 else 4);
           mi MLoad (if t.arch = X86_64 then 5 else 4) ]))

type lowered_block = {
  label : string;
  minsts : minst list;
}

type lowered_func = {
  func_name : string;
  blocks : lowered_block list;
  code_bytes : int;
  n_minsts : int;
  call_sites : int; (* relocation count *)
}

let lower_func (t : Target.t) (f : Func.t) : lowered_func =
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let minsts =
          List.concat_map (lower_insn t) b.Block.insns
          @ lower_term t b.Block.term @ spill_minsts t b
        in
        { label = b.Block.label; minsts })
      f.Func.blocks
  in
  let body_bytes =
    List.fold_left
      (fun acc lb -> List.fold_left (fun acc m -> acc + m.bytes) acc lb.minsts)
      0 blocks
  in
  let call_sites =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with
        | Instr.Call _ | Instr.Memcpy _ -> acc + 1
        | Instr.Intrinsic ("memset", _, _) -> acc + 1
        | op ->
          acc
          + List.length
              (List.filter
                 (fun v -> match v with Value.Global _ -> true | _ -> false)
                 (Instr.operands op)))
      0 f
  in
  let n_minsts =
    List.fold_left (fun acc lb -> acc + List.length lb.minsts) 0 blocks
  in
  { func_name = f.Func.name;
    blocks;
    code_bytes = t.prologue_bytes + body_bytes + t.epilogue_bytes;
    n_minsts;
    call_sites }
