(* -loop-idiom: recognize memset/memcpy loops.

   A counted loop whose body only stores a loop-invariant byte-sized
   pattern through a unit-stride gep (memset idiom), or copies between two
   unit-stride geps (memcpy idiom), is replaced by the corresponding
   memory intrinsic, deleting the loop. The interpreter, codegen and MCA
   all understand the resulting [memset]/[memcpy] operations. *)

open Posetrl_ir
module SSet = Set.Make (String)

(* Try to rewrite one counted loop; returns the new function on success. *)
let rewrite_one (f : Func.t) (loop : Loops.loop) : Func.t option =
  match loop.Loops.preheader, loop.Loops.exits, loop.Loops.latches with
  | Some pre, [ exit_lbl ], [ latch ] ->
    (match Utils.analyze_counted_loop f loop with
     | Some info when Int64.equal info.Utils.step 1L && info.Utils.trip_count >= 4 ->
       let in_loop l = SSet.mem l loop.Loops.blocks in
       let loop_blocks =
         List.filter (fun (b : Block.t) -> in_loop b.Block.label) f.Func.blocks
       in
       (* single-block body (header = latch) keeps the matching simple *)
       if List.length loop_blocks <> 1 then None
       else begin
         let body = List.hd loop_blocks in
         ignore latch;
         let _, insns = Block.split_phis body in
         (* classify: phis + gep(base, iv) + store(v, gep) + iv increment +
            cmp; anything else rejects the idiom *)
         let defs = Hashtbl.create 8 in
         List.iter
           (fun (i : Instr.t) ->
             if i.Instr.id >= 0 then Hashtbl.replace defs i.Instr.id i.Instr.op)
           body.Block.insns;
         let is_iv v = match v with Value.Reg r -> r = info.Utils.phi_reg | _ -> false in
         let invariant v =
           match v with
           | Value.Reg r -> not (Hashtbl.mem defs r)
           | _ -> true
         in
         let stores =
           List.filter_map
             (fun (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Store (ty, v, Value.Reg p) ->
                 (match Hashtbl.find_opt defs p with
                  | Some (Instr.Gep (gty, base, idx))
                    when Types.equal gty ty && is_iv idx && invariant base ->
                    Some (ty, v, base)
                  | _ -> None)
               | _ -> None)
             insns
         in
         let other_effects =
           List.exists
             (fun (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Store (_, _, Value.Reg p) ->
                 (match Hashtbl.find_opt defs p with
                  | Some (Instr.Gep (_, _, idx)) -> not (is_iv idx)
                  | _ -> true)
               | Instr.Store _ | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _ -> true
               | _ -> false)
             insns
         in
         (* only the IV may be observed outside *)
         match stores, other_effects with
         | [ (ty, stored, base) ], false when invariant stored ->
           (* memset idiom (invariant value) or memcpy idiom (load of
              src[i]) *)
           let n_bytes = info.Utils.trip_count * Types.size_bytes ty in
           let replacement =
             match stored with
             | Value.Reg r ->
               (match Hashtbl.find_opt defs r with
                | Some (Instr.Load (lty, Value.Reg lp)) ->
                  (match Hashtbl.find_opt defs lp with
                   | Some (Instr.Gep (gty, src, idx))
                     when Types.equal gty lty && is_iv idx && invariant src ->
                     Some (Instr.Memcpy (base, src, Value.ci64 n_bytes))
                   | _ -> None)
                | _ -> None)
             | Value.Const _ ->
               Some
                 (Instr.Intrinsic
                    ("memset", Types.Void,
                     [ base; stored; Value.ci64 info.Utils.trip_count;
                       Value.ci64 (Types.size_bytes ty) ]))
             | _ -> None
           in
           (match replacement with
            | None -> None
            | Some op ->
              (* nothing defined in the loop may be observed outside;
                 indvars' exit-value rewriting normally guarantees this *)
              let loop_defs =
                List.fold_left
                  (fun acc (i : Instr.t) ->
                    if i.Instr.id >= 0 then i.Instr.id :: acc else acc)
                  [] body.Block.insns
              in
              let defined_in_loop v =
                match v with Value.Reg r -> List.mem r loop_defs | _ -> false
              in
              let used_outside =
                List.exists
                  (fun (b : Block.t) ->
                    (not (in_loop b.Block.label))
                    && (List.exists
                          (fun (i : Instr.t) ->
                            List.exists defined_in_loop (Instr.operands i.Instr.op))
                          b.Block.insns
                        || List.exists defined_in_loop (Instr.term_operands b.Block.term)))
                  f.Func.blocks
              in
              if used_outside then None
              else begin
                let blocks =
                  f.Func.blocks
                  |> List.filter (fun (b : Block.t) -> not (in_loop b.Block.label))
                  |> List.map (fun (b : Block.t) ->
                         if String.equal b.Block.label pre then
                           { b with
                             Block.insns =
                               b.Block.insns @ [ Instr.mk Instr.no_result op ];
                             Block.term =
                               Instr.map_term_labels
                                 (fun l ->
                                   if String.equal l loop.Loops.header then exit_lbl else l)
                                 b.Block.term }
                         else if String.equal b.Block.label exit_lbl then
                           Block.map_insns
                             (fun (i : Instr.t) ->
                               match i.Instr.op with
                               | Instr.Phi (ty', incs) ->
                                 let incs =
                                   List.map
                                     (fun (l, v) -> if in_loop l then (pre, v) else (l, v))
                                     incs
                                 in
                                 { i with Instr.op = Instr.Phi (ty', incs) }
                               | _ -> i)
                             b
                         else b)
                in
                Some (Func.with_blocks f blocks |> Utils.simplify_single_incoming_phis)
              end)
         | _ -> None
       end
     | _ -> None)
  | _ -> None

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  (* canonicalize and merge straight-line chains so single-block bodies
     are recognizable *)
  let f = Loop_simplify.loop_simplify_func _cfg f |> Utils.merge_blocks in
  let rec go f budget =
    if budget = 0 then f
    else begin
      let li = Loops.compute f in
      match List.find_map (rewrite_one f) (Loops.leaf_loops li) with
      | Some f' -> go f' (budget - 1)
      | None -> f
    end
  in
  go f 4

let pass =
  Pass.function_pass "loop-idiom"
    ~description:"replace memset/memcpy-shaped loops with memory intrinsics"
    run_func
