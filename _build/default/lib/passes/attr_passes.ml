(* Attribute-inference passes: -forceattrs, -inferattrs, -functionattrs,
   -rpo-functionattrs, -attributor, -alignment-from-assumptions,
   -ee-instrument, -barrier.

   These passes do not rewrite instructions; they derive facts about
   functions that other passes (inliner, LICM via readonly calls) and the
   cost models consume. *)

open Posetrl_ir
module SMap = Map.Make (String)

(* memory behaviour of a function body: does it write / read memory,
   assuming callees behave per their current attributes *)
let infer_memory_attrs (m : Modul.t) : Modul.t =
  (* iterate to a fixed point over the call graph (attrs only grow) *)
  let attrs = ref SMap.empty in
  List.iter
    (fun f -> attrs := SMap.add f.Func.name f.Func.attrs !attrs)
    m.Modul.funcs;
  let get name = Option.value (SMap.find_opt name !attrs) ~default:Attrs.empty in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        if not (Func.is_declaration f) then begin
          let writes = ref false and reads = ref false and recurses = ref false in
          let unknown = ref false in
          Func.iter_insns
            (fun _ i ->
              match i.Instr.op with
              | Instr.Store _ | Instr.Memcpy _ -> writes := true
              | Instr.Intrinsic ("memset", _, _) -> writes := true
              | Instr.Load _ -> reads := true
              | Instr.Call (_, g, _) ->
                if String.equal g f.Func.name then recurses := true;
                let ga = get g in
                if Attrs.mem Attrs.readnone ga then ()
                else if Attrs.mem Attrs.readonly ga then reads := true
                else unknown := true
              | Instr.Callind _ -> unknown := true
              | _ -> ())
            f;
          let cur = get f.Func.name in
          let next = cur in
          let next =
            if (not !writes) && (not !unknown) then Attrs.add Attrs.readonly next
            else next
          in
          let next =
            if (not !writes) && (not !reads) && not !unknown then
              Attrs.add Attrs.readnone next
            else next
          in
          let next = if not !recurses then Attrs.add Attrs.norecurse next else next in
          if not (Attrs.equal next cur) then begin
            attrs := SMap.add f.Func.name next !attrs;
            changed := true
          end
        end)
      m.Modul.funcs
  done;
  Modul.map_funcs
    (fun f -> { f with Func.attrs = Attrs.union f.Func.attrs (get f.Func.name) })
    m

let functionattrs_pass =
  Pass.mk "functionattrs"
    ~description:"infer readonly/readnone/norecurse on the call-graph SCCs"
    (fun _cfg m -> infer_memory_attrs m)

(* rpo-functionattrs re-runs the same inference in reverse post-order over
   the call graph; the derivation is idempotent so sharing it is exact. *)
let rpo_functionattrs_pass =
  Pass.mk "rpo-functionattrs"
    ~description:"RPO re-run of function attribute inference"
    (fun _cfg m -> infer_memory_attrs m)

(* -inferattrs: annotates well-known library declarations. *)
let known_library_attrs =
  [ ("memcpy", [ Attrs.nounwind; Attrs.willreturn ]);
    ("memset", [ Attrs.nounwind; Attrs.willreturn ]);
    ("abs", [ Attrs.readnone; Attrs.nounwind; Attrs.willreturn ]);
    ("labs", [ Attrs.readnone; Attrs.nounwind; Attrs.willreturn ]);
    ("sqrt", [ Attrs.readnone; Attrs.nounwind; Attrs.willreturn ]);
    ("sin", [ Attrs.readnone; Attrs.nounwind; Attrs.willreturn ]);
    ("cos", [ Attrs.readnone; Attrs.nounwind; Attrs.willreturn ]);
    ("strlen", [ Attrs.readonly; Attrs.nounwind; Attrs.willreturn ]);
    ("printf", [ Attrs.nounwind ]);
    ("putchar", [ Attrs.nounwind; Attrs.willreturn ]) ]

let inferattrs_pass =
  Pass.mk "inferattrs" ~description:"annotate known library declarations"
    (fun _cfg m ->
      Modul.map_funcs
        (fun f ->
          if Func.is_declaration f then
            match List.assoc_opt f.Func.name known_library_attrs with
            | Some attrs ->
              { f with Func.attrs = Attrs.union f.Func.attrs (Attrs.of_list attrs) }
            | None -> f
          else f)
        m)

(* -forceattrs: applies attributes forced by the build configuration; the
   size pipelines force optsize/minsize, which the codegen and inliner
   read. *)
let forceattrs_pass =
  Pass.mk "forceattrs" ~description:"force configuration-mandated attributes"
    (fun cfg m ->
      Modul.map_defined
        (fun f ->
          let f = if cfg.Config.size_level >= 1 then Func.add_attr Attrs.optsize f else f in
          let f = if cfg.Config.size_level >= 2 then Func.add_attr Attrs.minsize f else f in
          f)
        m)

(* -attributor: the stronger fixed-point inference; adds willreturn for
   functions whose every loop is provably counted and whose callees will
   return. *)
let attributor_pass =
  Pass.mk "attributor" ~description:"deduce willreturn and strengthen attributes"
    (fun _cfg m ->
      let m = infer_memory_attrs m in
      let will_return_locally (f : Func.t) =
        let li = Loops.compute f in
        List.for_all
          (fun loop -> Option.is_some (Utils.analyze_counted_loop f loop))
          li.Loops.loops
      in
      Modul.map_defined
        (fun f ->
          if will_return_locally f && Func.has_attr Attrs.norecurse f then
            Func.add_attr Attrs.willreturn f
          else f)
        m)

(* -alignment-from-assumptions: assume intrinsics asserting alignment mark
   the function, letting codegen pick aligned (shorter/faster) memory
   forms. *)
let alignment_pass =
  Pass.mk "alignment-from-assumptions"
    ~description:"derive alignment facts from assume intrinsics"
    (fun _cfg m ->
      Modul.map_defined
        (fun f ->
          let has_align_assume =
            Func.fold_insns
              (fun acc _ i ->
                acc
                ||
                match i.Instr.op with
                | Instr.Intrinsic ("assume.aligned", _, _) -> true
                | _ -> false)
              false f
          in
          if has_align_assume then Func.add_attr Attrs.aligned16 f else f)
        m)

(* -ee-instrument: inserts entry/exit instrumentation when requested by a
   function attribute; our programs never request it, so the IR is
   unchanged, matching LLVM's default behaviour. *)
let ee_instrument_pass =
  Pass.no_op_pass "ee-instrument"
    ~description:"entry/exit instrumentation (no-op without the request attribute)"

(* -barrier: a pass-manager sequencing barrier with no IR effect. *)
let barrier_pass =
  Pass.no_op_pass "barrier" ~description:"pass-manager barrier (no IR effect)"
