(* -loop-rotate: convert top-tested (while) loops into bottom-tested
   (do-while) loops.

   The exit test of the header is duplicated into the preheader (guarding
   loop entry) and into the latch (deciding the backedge); the header's
   own branch then provably always enters the body and is rewritten to an
   unconditional branch. This removes one taken branch per iteration and
   is the canonical enabler for latch-tested unrolling — at the price of
   duplicated test code, the classic size/speed trade the paper's action
   sub-sequences exercise. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

let max_duplicated_insns = 16

let rotate_one (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader, loop.Loops.latches with
  | Some pre, [ latch ] when not (String.equal latch loop.Loops.header) ->
    let header = Func.find_block_exn f loop.Loops.header in
    let latch_blk = Func.find_block_exn f latch in
    (match header.Block.term, latch_blk.Block.term with
     | Instr.Cbr (cond, t, e), Instr.Br back when String.equal back loop.Loops.header ->
       let in_loop l = SSet.mem l loop.Loops.blocks in
       let inner, exit_lbl, exit_on_false =
         if in_loop t && not (in_loop e) then (t, e, true)
         else if in_loop e && not (in_loop t) then (e, t, false)
         else ("", "", true)
       in
       if String.equal inner "" || String.equal inner loop.Loops.header then (f, false)
       else begin
         let phis, body_insns = Block.split_phis header in
         if List.length body_insns > max_duplicated_insns
            || not (List.for_all (fun (i : Instr.t) -> Instr.is_pure i.Instr.op) body_insns)
         then (f, false)
         else begin
           (* header-defined registers (phis + body) *)
           let header_defs =
             List.fold_left
               (fun acc (i : Instr.t) ->
                 if i.Instr.id >= 0 then ISet.add i.Instr.id acc else acc)
               ISet.empty header.Block.insns
           in
           (* outside uses of loop-defined regs must go through exit phis *)
           let loop_defs =
             List.fold_left
               (fun acc (b : Block.t) ->
                 if in_loop b.Block.label then
                   List.fold_left
                     (fun acc (i : Instr.t) ->
                       if i.Instr.id >= 0 then ISet.add i.Instr.id acc else acc)
                     acc b.Block.insns
                 else acc)
               ISet.empty f.Func.blocks
           in
           let bad_outside_use = ref false in
           List.iter
             (fun (b : Block.t) ->
               if not (in_loop b.Block.label) then begin
                 let check v =
                   match v with
                   | Value.Reg r when ISet.mem r loop_defs -> bad_outside_use := true
                   | _ -> ()
                 in
                 List.iter
                   (fun (i : Instr.t) ->
                     match i.Instr.op with
                     | Instr.Phi (_, incs) when String.equal b.Block.label exit_lbl ->
                       (* exit phi entries from the header must be
                          header-computable values *)
                       List.iter
                         (fun (l, v) ->
                           if String.equal l loop.Loops.header then
                             match v with
                             | Value.Reg r when ISet.mem r loop_defs && not (ISet.mem r header_defs) ->
                               bad_outside_use := true
                             | _ -> ())
                         incs
                     | op -> List.iter check (Instr.operands op))
                   b.Block.insns;
                 List.iter check (Instr.term_operands b.Block.term)
               end)
             f.Func.blocks;
           (* exit must not have non-phi references to loop regs; checked
              above since any such use sets the flag *)
           if !bad_outside_use then (f, false)
           else begin
             let counter = Func.fresh_counter f in
             (* substitution of header phis by their incoming value on a
                given edge *)
             let phi_map edge_label =
               List.filter_map
                 (fun (i : Instr.t) ->
                   match i.Instr.op with
                   | Instr.Phi (_, incs) ->
                     Option.map (fun v -> (i.Instr.id, v)) (List.assoc_opt edge_label incs)
                   | _ -> None)
                 phis
             in
             let clone_test init_map =
               let blk = Block.mk "tmp" body_insns (Instr.Br "tmp") in
               let cloned, find =
                 Clone.clone_blocks ~counter ~rename_label:(fun l -> l) ~init_map [ blk ]
               in
               let insns = (List.hd cloned).Block.insns in
               let subst v =
                 match v with
                 | Value.Reg r -> (match find r with Some v' -> v' | None -> v)
                 | _ -> v
               in
               (insns, subst)
             in
             let pre_insns, pre_subst = clone_test (phi_map pre) in
             let latch_insns, latch_subst = clone_test (phi_map latch) in
             let pre_cond = pre_subst cond in
             let latch_cond = latch_subst cond in
             let mk_cbr c =
               if exit_on_false then Instr.Cbr (c, loop.Loops.header, exit_lbl)
               else Instr.Cbr (c, exit_lbl, loop.Loops.header)
             in
             let blocks =
               List.map
                 (fun (b : Block.t) ->
                   if String.equal b.Block.label pre then
                     { b with
                       Block.insns = b.Block.insns @ pre_insns;
                       Block.term = mk_cbr pre_cond }
                   else if String.equal b.Block.label loop.Loops.header then
                     { b with Block.term = Instr.Br inner }
                   else if String.equal b.Block.label latch then
                     { b with
                       Block.insns = b.Block.insns @ latch_insns;
                       Block.term = mk_cbr latch_cond }
                   else if String.equal b.Block.label exit_lbl then
                     (* exit preds: header -> {pre, latch} *)
                     Block.map_insns
                       (fun (i : Instr.t) ->
                         match i.Instr.op with
                         | Instr.Phi (ty, incs) ->
                           (match List.assoc_opt loop.Loops.header incs with
                            | None -> i
                            | Some v ->
                              let others =
                                List.filter
                                  (fun (l, _) -> not (String.equal l loop.Loops.header))
                                  incs
                              in
                              let incs' =
                                (pre, pre_subst v) :: (latch, latch_subst v) :: others
                              in
                              { i with Instr.op = Instr.Phi (ty, incs') })
                         | _ -> i)
                       b
                   else b)
                 f.Func.blocks
             in
             (Func.with_blocks ~next_id:counter.Func.next f blocks, true)
           end
         end
       end
     | _ -> (f, false))
  | _ -> (f, false)

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  (* the loop pass manager guarantees simplified form before loop passes *)
  let f = Loop_simplify.loop_simplify_func _cfg f in
  let li = Loops.compute f in
  let f, _ =
    List.fold_left
      (fun (f, rotated) loop ->
        (* recompute loop info after each successful rotation *)
        if rotated then begin
          let li' = Loops.compute f in
          match
            List.find_opt
              (fun l -> String.equal l.Loops.header loop.Loops.header)
              li'.Loops.loops
          with
          | Some loop' ->
            let f', c = rotate_one f loop' in
            (f', rotated || c)
          | None -> (f, rotated)
        end
        else
          let f', c = rotate_one f loop in
          (f', c))
      (f, false) li.Loops.loops
  in
  Utils.trivial_dce f

let pass =
  Pass.function_pass "loop-rotate"
    ~description:"rotate top-tested loops into bottom-tested form" run_func
