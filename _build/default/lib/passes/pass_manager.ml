(* Sequencing of passes by name, with optional per-pass IR verification
   (the test suite's main weapon against miscompiling passes). *)

open Posetrl_ir

type stats = {
  pass_name : string;
  insns_before : int;
  insns_after : int;
  seconds : float;
}

let run_names ?(verify = false) ?(collect = false) (cfg : Config.t)
    (names : string list) (m : Modul.t) : Modul.t * stats list =
  let stats = ref [] in
  let m =
    List.fold_left
      (fun m name ->
        let p = Registry.find_exn name in
        let before = if collect then Modul.insn_count m else 0 in
        let t0 = if collect then Unix.gettimeofday () else 0.0 in
        let m' = Pass.run ~verify p cfg m in
        if collect then
          stats :=
            { pass_name = name;
              insns_before = before;
              insns_after = Modul.insn_count m';
              seconds = Unix.gettimeofday () -. t0 }
            :: !stats;
        m')
      m names
  in
  (m, List.rev !stats)

let run ?(verify = false) (cfg : Config.t) (names : string list) (m : Modul.t) :
    Modul.t =
  fst (run_names ~verify cfg names m)

(* Run a standard -Olevel pipeline. *)
let run_level ?(verify = false) (level : Pipelines.level) (m : Modul.t) : Modul.t =
  run ~verify (Pipelines.config_of level) (Pipelines.sequence_of level) m
