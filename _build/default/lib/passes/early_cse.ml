(* -early-cse / -early-cse-memssa: dominator-scoped common subexpression
   elimination.

   Walks the dominator tree carrying a scoped table of available pure
   expressions. The memssa variant additionally tracks a memory generation
   along each dominator path, enabling redundant-load elimination and
   store-to-load forwarding across blocks; the plain variant restricts
   memory reasoning to a single block (mirroring the LLVM split). *)

open Posetrl_ir

module OpMap = Map.Make (struct
  type t = Instr.op
  let compare = Stdlib.compare
end)

module PtrMap = Map.Make (struct
  type t = Value.t
  let compare = Stdlib.compare
end)

type scope = {
  avail : Value.t OpMap.t;          (* pure expression -> leader value *)
  loads : (Types.t * Value.t * int) PtrMap.t; (* ptr -> ty, value, gen *)
  gen : int;
}

let run_with ~memssa (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let killed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec walk label (sc : scope) =
    let blk = Func.find_block_exn f label in
    (* Memory facts carried down the dominator tree are only valid when
       every path into this block goes through the facts' origin; at join
       points (several predecessors, e.g. loop headers reached by a
       backedge) a sibling path may have stored, so memory facts reset.
       The plain variant resets at every block boundary. *)
    let multi_pred = match Cfg.preds cfg label with _ :: _ :: _ -> true | _ -> false in
    let sc =
      if (not memssa) || multi_pred then
        { sc with loads = PtrMap.empty; gen = sc.gen + 1 }
      else sc
    in
    let sc =
      List.fold_left
        (fun sc (i : Instr.t) ->
          let op = i.Instr.op in
          if Instr.is_pure op && i.Instr.id >= 0 then begin
            match OpMap.find_opt op sc.avail with
            | Some leader ->
              Hashtbl.replace subst i.Instr.id leader;
              Hashtbl.replace killed i.Instr.id ();
              sc
            | None -> { sc with avail = OpMap.add op (Value.Reg i.Instr.id) sc.avail }
          end
          else
            match op with
            | Instr.Load (ty, p) when i.Instr.id >= 0 ->
              (match PtrMap.find_opt p sc.loads with
               | Some (ty', v, g) when Types.equal ty ty' && g = sc.gen ->
                 Hashtbl.replace subst i.Instr.id v;
                 Hashtbl.replace killed i.Instr.id ();
                 sc
               | _ ->
                 { sc with
                   loads = PtrMap.add p (ty, Value.Reg i.Instr.id, sc.gen) sc.loads })
            | Instr.Store (ty, v, p) ->
              (* a store invalidates everything except the stored slot *)
              { sc with
                gen = sc.gen + 1;
                loads = PtrMap.singleton p (ty, v, sc.gen + 1) }
            | op when Instr.writes_memory op ->
              { sc with gen = sc.gen + 1; loads = PtrMap.empty }
            | _ -> sc)
        sc blk.Block.insns
    in
    List.iter (fun child -> walk child sc) (Dom.children dom label)
  in
  walk dom.Dom.entry { avail = OpMap.empty; loads = PtrMap.empty; gen = 0 };
  if Hashtbl.length subst = 0 then f
  else begin
    let rec resolve v =
      match v with
      | Value.Reg r ->
        (match Hashtbl.find_opt subst r with
         | Some v' when v' <> v -> resolve v'
         | _ -> v)
      | _ -> v
    in
    let f =
      Func.map_blocks
        (Block.filter_insns (fun i -> not (Hashtbl.mem killed i.Instr.id)))
        f
    in
    Func.map_operands resolve f |> Utils.trivial_dce
  end

let pass =
  Pass.function_pass "early-cse"
    ~description:"dominator-scoped CSE with block-local load forwarding"
    (fun _cfg f -> run_with ~memssa:false f)

let memssa_pass =
  Pass.function_pass "early-cse-memssa"
    ~description:"early-cse with cross-block memory-generation tracking"
    (fun _cfg f -> run_with ~memssa:true f)
