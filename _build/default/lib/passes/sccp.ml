(* -sccp / -ipsccp: sparse conditional constant propagation.

   The classic Wegman-Zadeck lattice algorithm: registers carry
   Top/Const/Bottom facts, CFG edges become executable lazily, and phi
   nodes meet only over executable incoming edges, so constants propagate
   through conditionally-dead regions that a simple folder cannot see.

   The interprocedural variant additionally specializes parameters of
   internal functions whose every call site passes the same constant. *)

open Posetrl_ir

type lattice = Top | Const of Value.const | Bottom

let meet a b =
  match a, b with
  | Top, x | x, Top -> x
  | Const c1, Const c2 when Value.equal (Value.Const c1) (Value.Const c2) -> Const c1
  | _ -> Bottom

let run_func_sccp (f : Func.t) : Func.t =
  let lat : (int, lattice) Hashtbl.t = Hashtbl.create 64 in
  let get r = Option.value (Hashtbl.find_opt lat r) ~default:Top in
  (* parameters are unknown inputs *)
  List.iter (fun (r, _) -> Hashtbl.replace lat r Bottom) f.Func.params;
  let edge_exec : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let block_exec : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let block_work = Queue.create () in
  let insn_work = Queue.create () in
  (* users of each register: instructions AND terminators ([None]) *)
  let uses : (int, (string * Instr.t option) list) Hashtbl.t = Hashtbl.create 64 in
  let add_use r entry =
    let cur = Option.value (Hashtbl.find_opt uses r) ~default:[] in
    Hashtbl.replace uses r (entry :: cur)
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun v ->
              match v with
              | Value.Reg r -> add_use r (b.Block.label, Some i)
              | _ -> ())
            (Instr.operands i.Instr.op))
        b.Block.insns;
      List.iter
        (fun v ->
          match v with
          | Value.Reg r -> add_use r (b.Block.label, None)
          | _ -> ())
        (Instr.term_operands b.Block.term))
    f.Func.blocks;
  let lat_of_value v =
    match v with
    | Value.Const c -> Const c
    | Value.Global _ -> Bottom (* addresses are runtime values *)
    | Value.Reg r -> get r
  in
  let mark_edge src dst =
    if not (Hashtbl.mem edge_exec (src, dst)) then begin
      Hashtbl.replace edge_exec (src, dst) ();
      Queue.add dst block_work
    end
  in
  let update r v =
    let old = get r in
    let nv = meet old v in
    let nv = match old, v with Top, x -> x | _ -> nv in
    if nv <> old then begin
      Hashtbl.replace lat r nv;
      List.iter (fun u -> Queue.add u insn_work) (Option.value (Hashtbl.find_opt uses r) ~default:[])
    end
  in
  let eval_insn block (i : Instr.t) =
    if i.Instr.id >= 0 then begin
      match i.Instr.op with
      | Instr.Phi (_, incs) ->
        let v =
          List.fold_left
            (fun acc (l, v) ->
              if Hashtbl.mem edge_exec (l, block) then meet acc (lat_of_value v)
              else acc)
            Top incs
        in
        update i.Instr.id v
      | op when Instr.is_pure op ->
        let all_const =
          List.for_all
            (fun v -> match lat_of_value v with Const _ -> true | _ -> false)
            (Instr.operands op)
        in
        let any_bottom =
          List.exists
            (fun v -> match lat_of_value v with Bottom -> true | _ -> false)
            (Instr.operands op)
        in
        if all_const then begin
          (* substitute and fold *)
          let resolved =
            Instr.map_operands
              (fun v ->
                match lat_of_value v with
                | Const c -> Value.Const c
                | _ -> v)
              op
          in
          match Fold.fold_op resolved with
          | Some (Value.Const c) -> update i.Instr.id (Const c)
          | Some _ | None -> update i.Instr.id Bottom
        end
        else if any_bottom then update i.Instr.id Bottom
      | _ -> update i.Instr.id Bottom
    end
  in
  let eval_term (b : Block.t) =
    match b.Block.term with
    | Instr.Ret _ | Instr.Unreachable -> ()
    | Instr.Br l -> mark_edge b.Block.label l
    | Instr.Cbr (c, t, e) ->
      (match lat_of_value c with
       | Const (Value.Cint (_, v)) ->
         mark_edge b.Block.label (if Int64.equal v 1L then t else e)
       | Top -> ()
       | _ ->
         mark_edge b.Block.label t;
         mark_edge b.Block.label e)
    | Instr.Switch (_, v, cases, d) ->
      (match lat_of_value v with
       | Const (Value.Cint (_, k)) ->
         let target = Option.value (List.assoc_opt k cases) ~default:d in
         mark_edge b.Block.label target
       | Top -> ()
       | _ ->
         mark_edge b.Block.label d;
         List.iter (fun (_, l) -> mark_edge b.Block.label l) cases)
  in
  let entry = (Func.entry f).Block.label in
  Queue.add entry block_work;
  let iter_limit = ref (200 * (1 + Func.insn_count f)) in
  while (not (Queue.is_empty block_work && Queue.is_empty insn_work)) && !iter_limit > 0 do
    decr iter_limit;
    if not (Queue.is_empty block_work) then begin
      let label = Queue.pop block_work in
      let first_visit = not (Hashtbl.mem block_exec label) in
      Hashtbl.replace block_exec label ();
      let blk = Func.find_block_exn f label in
      (* phis must be re-evaluated whenever a new incoming edge appears *)
      List.iter (fun i -> eval_insn label i) (Block.phis blk);
      if first_visit then begin
        List.iter (fun i -> eval_insn label i) (Block.non_phis blk);
        eval_term blk
      end
      else eval_term blk
    end
    else begin
      let label, i = Queue.pop insn_work in
      if Hashtbl.mem block_exec label then begin
        (match i with
         | Some i -> eval_insn label i
         | None -> ());
        (* condition changes can extend executable edges *)
        eval_term (Func.find_block_exn f label)
      end
    end
  done;
  (* rewrite: replace constant registers, fold branches of blocks whose
     condition is now constant, drop unexecutable blocks *)
  let resolve v =
    match v with
    | Value.Reg r -> (match get r with Const c -> Value.Const c | _ -> v)
    | _ -> v
  in
  (* a Top-valued branch condition means the branch is dynamically
     unreachable-as-written (its inputs are undef); its non-executable
     targets are deleted, so retarget such terminators onto whatever
     executable successor remains *)
  let fix_term (b : Block.t) =
    let live l = Hashtbl.mem block_exec l in
    match b.Block.term with
    | Instr.Cbr (_, t, e) when not (live t && live e) ->
      if live t then { b with Block.term = Instr.Br t }
      else if live e then { b with Block.term = Instr.Br e }
      else { b with Block.term = Instr.Unreachable }
    | Instr.Switch (ty, v, cases, d) when not (List.for_all (fun (_, l) -> live l) cases && live d) ->
      let cases = List.filter (fun (_, l) -> live l) cases in
      let d =
        if live d then d
        else (match cases with (_, l) :: _ -> l | [] -> d)
      in
      if cases = [] && not (live d) then { b with Block.term = Instr.Unreachable }
      else { b with Block.term = Instr.Switch (ty, v, cases, d) }
    | Instr.Br l when not (live l) -> { b with Block.term = Instr.Unreachable }
    | _ -> b
  in
  let blocks =
    List.filter_map
      (fun (b : Block.t) ->
        if not (Hashtbl.mem block_exec b.Block.label) then None
        else
          Some
            (fix_term
               (Block.filter_insns
                  (fun i ->
                    not (i.Instr.id >= 0
                         && (match get i.Instr.id with Const _ -> Instr.is_pure i.Instr.op | _ -> false)))
                  b)))
      f.Func.blocks
  in
  if blocks = [] then f
  else
    Func.with_blocks f blocks
    |> Func.map_operands resolve
    |> Utils.fold_terminators
    |> Utils.trivial_dce

let pass =
  Pass.function_pass "sccp"
    ~description:"sparse conditional constant propagation" (fun _cfg f ->
      run_func_sccp f)

(* Interprocedural variant: specialize internal functions whose parameters
   receive the same constant at every call site, then run SCCP per
   function. *)
let run_module (m : Modul.t) : Modul.t =
  let call_args : (string, Value.t list list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if not (Func.is_declaration f) then
        Func.iter_insns
          (fun _ i ->
            match i.Instr.op with
            | Instr.Call (_, g, args) ->
              let cur = Option.value (Hashtbl.find_opt call_args g) ~default:[] in
              Hashtbl.replace call_args g (args :: cur)
            | _ -> ())
          f)
    m.Modul.funcs;
  let address_taken : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if not (Func.is_declaration f) then
        Func.iter_insns
          (fun _ i ->
            List.iter
              (fun v ->
                match v with
                | Value.Global g when Option.is_some (Modul.find_func m g) ->
                  (match i.Instr.op with
                   | Instr.Call (_, callee, _) when String.equal callee g -> ()
                   | _ -> Hashtbl.replace address_taken g ())
                | _ -> ())
              (Instr.operands i.Instr.op))
          f)
    m.Modul.funcs;
  let specialize (f : Func.t) =
    if Func.is_declaration f || f.Func.linkage = Func.External
       || Hashtbl.mem address_taken f.Func.name then f
    else
      match Hashtbl.find_opt call_args f.Func.name with
      | None | Some [] -> f
      | Some sites ->
        (* for each param, if all sites agree on one constant, substitute *)
        let n = List.length f.Func.params in
        let consts =
          List.init n (fun idx ->
              let vals = List.map (fun args -> List.nth_opt args idx) sites in
              match vals with
              | Some (Value.Const c) :: rest
                when List.for_all
                       (function
                         | Some v -> Value.equal v (Value.Const c)
                         | None -> false)
                       rest ->
                Some c
              | _ -> None)
        in
        List.fold_left2
          (fun f (r, _) c ->
            match c with
            | Some c -> Func.replace_reg r (Value.Const c) f
            | None -> f)
          f f.Func.params consts
  in
  let m = Modul.map_defined specialize m in
  Modul.map_defined run_func_sccp m

let ipsccp_pass =
  Pass.mk "ipsccp"
    ~description:"interprocedural SCCP with constant-argument specialization"
    (fun _cfg m -> run_module m)
