(** Sequencing of passes by name, with optional per-pass IR verification. *)

open Posetrl_ir

type stats = {
  pass_name : string;
  insns_before : int;
  insns_after : int;
  seconds : float;
}

val run_names :
  ?verify:bool -> ?collect:bool -> Config.t -> string list -> Modul.t ->
  Modul.t * stats list
(** Run the named passes in order; with [~collect:true] per-pass stats
    are gathered. Unknown names raise [Invalid_argument]. *)

val run : ?verify:bool -> Config.t -> string list -> Modul.t -> Modul.t

val run_level : ?verify:bool -> Pipelines.level -> Modul.t -> Modul.t
(** Run a standard -O level pipeline with its matching config. *)
