(* Transformation utilities shared by many passes. *)

open Posetrl_ir
module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* --- dead-code primitives ----------------------------------------------- *)

(* Delete pure instructions whose results are unused; iterates to a fixed
   point so chains of dead computation disappear. This is the classic
   "trivially dead instruction elimination" many LLVM passes perform as a
   clean-up step. *)
let trivial_dce (f : Func.t) : Func.t =
  let rec go f =
    let uses = Func.use_counts f in
    let used r = Option.value (Hashtbl.find_opt uses r) ~default:0 > 0 in
    let changed = ref false in
    let keep (i : Instr.t) =
      if i.Instr.id >= 0 && (not (used i.Instr.id)) && Instr.is_pure i.Instr.op then begin
        changed := true;
        false
      end
      else true
    in
    let f' = Func.map_blocks (Block.filter_insns keep) f in
    if !changed then go f' else f'
  in
  go f

(* Also removes side-effect-free non-pure instructions that are safe to
   drop when unused: loads, allocas, read-only calls. *)
let aggressive_trivial_dce ?(is_dead_call = fun _ -> false) (f : Func.t) : Func.t =
  let rec go f =
    let uses = Func.use_counts f in
    let used r = Option.value (Hashtbl.find_opt uses r) ~default:0 > 0 in
    let changed = ref false in
    let droppable (op : Instr.op) =
      Instr.is_pure op
      ||
      match op with
      | Instr.Load _ | Instr.Alloca _ | Instr.Phi _ -> true
      | Instr.Call (_, g, _) -> is_dead_call g
      | _ -> false
    in
    let keep (i : Instr.t) =
      if i.Instr.id >= 0 && (not (used i.Instr.id)) && droppable i.Instr.op then begin
        changed := true;
        false
      end
      else true
    in
    let f' = Func.map_blocks (Block.filter_insns keep) f in
    if !changed then go f' else f'
  in
  go f

(* --- CFG cleanup -------------------------------------------------------- *)

(* Drop blocks unreachable from the entry and fix up phi nodes of the
   survivors. *)
let remove_unreachable_blocks (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let reach = Cfg.reachable cfg in
  let dead =
    List.filter_map
      (fun b ->
        if Cfg.SSet.mem b.Block.label reach then None else Some b.Block.label)
      f.Func.blocks
  in
  if dead = [] then f
  else
    let blocks =
      f.Func.blocks
      |> List.filter (fun b -> Cfg.SSet.mem b.Block.label reach)
      |> List.map (fun b ->
             List.fold_left (fun b d -> Block.remove_phi_pred ~pred:d b) b dead)
    in
    Func.with_blocks f blocks

(* Fold conditional branches and switches with constant operands. *)
let fold_terminators (f : Func.t) : Func.t =
  let fold_block (b : Block.t) =
    match b.Block.term with
    | Instr.Cbr (Value.Const (Value.Cint (Types.I1, c)), t, e) ->
      { b with Block.term = Instr.Br (if Int64.equal c 1L then t else e) }
    | Instr.Cbr (_, t, e) when String.equal t e -> { b with Block.term = Instr.Br t }
    | Instr.Switch (_, Value.Const (Value.Cint (_, v)), cases, d) ->
      let target =
        match List.assoc_opt v cases with Some l -> l | None -> d
      in
      { b with Block.term = Instr.Br target }
    | Instr.Switch (_, _, [], d) -> { b with Block.term = Instr.Br d }
    | _ -> b
  in
  let f' = Func.map_blocks fold_block f in
  (* folding may strand blocks and leave stale phi entries: when an edge
     from p to s disappeared, s's phis must drop the p entry *)
  let cfg = Cfg.of_func f' in
  let blocks =
    List.map
      (fun b ->
        let preds = SSet.of_list (Cfg.preds cfg b.Block.label) in
        Block.map_insns
          (fun i ->
            match i.Instr.op with
            | Instr.Phi (ty, incs) ->
              let incs = List.filter (fun (l, _) -> SSet.mem l preds) incs in
              { i with Instr.op = Instr.Phi (ty, incs) }
            | _ -> i)
          b)
      f'.Func.blocks
  in
  remove_unreachable_blocks (Func.with_blocks f' blocks)

(* Replace single-incoming phis by a copy (direct substitution). *)
let simplify_single_incoming_phis (f : Func.t) : Func.t =
  let subst = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi (_, [ (_, v) ]) -> Hashtbl.replace subst i.Instr.id v
          | Instr.Phi (_, incs) ->
            (* all non-self incomings equal *)
            let non_self =
              List.filter (fun (_, v) -> v <> Value.Reg i.Instr.id) incs
            in
            (match non_self with
             | (_, v) :: rest when List.for_all (fun (_, v') -> Value.equal v v') rest ->
               Hashtbl.replace subst i.Instr.id v
             | _ -> ())
          | _ -> ())
        b.Block.insns)
    f.Func.blocks;
  if Hashtbl.length subst = 0 then f
  else begin
    (* resolve chains: a -> b where b is itself substituted *)
    let rec resolve v =
      match v with
      | Value.Reg r ->
        (match Hashtbl.find_opt subst r with
         | Some v' when v' <> v -> resolve v'
         | _ -> v)
      | _ -> v
    in
    let f =
      Func.map_blocks
        (Block.filter_insns (fun i -> not (Hashtbl.mem subst i.Instr.id)))
        f
    in
    Func.map_operands resolve f
  end

(* Merge [b] into its unique predecessor when that predecessor
   unconditionally branches to [b]. Applied to a fixed point. *)
let merge_blocks (f : Func.t) : Func.t =
  let rec go f =
    let cfg = Cfg.of_func f in
    let entry = (Func.entry f).Block.label in
    (* find a mergeable pair *)
    let candidate =
      List.find_map
        (fun (b : Block.t) ->
          if String.equal b.Block.label entry then None
          else
            match Cfg.preds cfg b.Block.label with
            | [ p ] when not (String.equal p b.Block.label) ->
              let pred = Func.find_block_exn f p in
              (match pred.Block.term with
               | Instr.Br _ -> Some (pred, b)
               | _ -> None)
            | _ -> None)
        f.Func.blocks
    in
    match candidate with
    | None -> f
    | Some (pred, b) ->
      (* resolve b's phis: single predecessor, so each phi is a copy *)
      let phis, rest = Block.split_phis b in
      let subst = Hashtbl.create 4 in
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi (_, incs) ->
            let v =
              match List.assoc_opt pred.Block.label incs with
              | Some v -> v
              | None -> (match incs with (_, v) :: _ -> v | [] -> Value.cundef Types.I64)
            in
            Hashtbl.replace subst i.Instr.id v
          | _ -> ())
        phis;
      let resolve v =
        match v with
        | Value.Reg r -> (match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
        | _ -> v
      in
      let merged =
        Block.mk pred.Block.label (pred.Block.insns @ rest) b.Block.term
      in
      let blocks =
        f.Func.blocks
        |> List.filter (fun blk ->
               not (String.equal blk.Block.label b.Block.label))
        |> List.map (fun blk ->
               if String.equal blk.Block.label pred.Block.label then merged else blk)
        (* successors of b now see pred as the branching block *)
        |> List.map (Block.rename_phi_pred ~from:b.Block.label ~to_:pred.Block.label)
      in
      let f = Func.with_blocks f blocks in
      let f = Func.map_operands resolve f in
      go f
  in
  go f

(* Remove empty forwarding blocks (only a [br]), retargeting predecessors.
   Blocks whose target has phis are kept when folding would create
   duplicate incoming labels. *)
let remove_forwarding_blocks (f : Func.t) : Func.t =
  let rec go f =
    let cfg = Cfg.of_func f in
    let entry = (Func.entry f).Block.label in
    let candidate =
      List.find_map
        (fun (b : Block.t) ->
          match b.Block.insns, b.Block.term with
          | [], Instr.Br target
            when (not (String.equal b.Block.label entry))
                 && not (String.equal target b.Block.label) ->
            let preds = Cfg.preds cfg b.Block.label in
            let target_blk = Func.find_block_exn f target in
            let target_preds = SSet.of_list (Cfg.preds cfg target) in
            let has_phis = Block.phis target_blk <> [] in
            (* folding is safe if no pred of b is already a pred of target
               (would duplicate phi entries), or if target has no phis *)
            let safe =
              (not has_phis)
              || List.for_all (fun p -> not (SSet.mem p target_preds)) preds
            in
            if safe && preds <> [] then Some (b, target, preds) else None
          | _ -> None)
        f.Func.blocks
    in
    match candidate with
    | None -> f
    | Some (b, target, preds) ->
      let retarget l = if String.equal l b.Block.label then target else l in
      let blocks =
        f.Func.blocks
        |> List.filter (fun blk -> not (String.equal blk.Block.label b.Block.label))
        |> List.map (fun blk ->
               { blk with Block.term = Instr.map_term_labels retarget blk.Block.term })
        |> List.map (fun blk ->
               if String.equal blk.Block.label target then
                 (* each pred of b becomes a pred of target with b's value *)
                 Block.map_insns
                   (fun i ->
                     match i.Instr.op with
                     | Instr.Phi (ty, incs) ->
                       (match List.assoc_opt b.Block.label incs with
                        | None -> i
                        | Some v ->
                          let incs =
                            List.filter (fun (l, _) -> not (String.equal l b.Block.label)) incs
                            @ List.map (fun p -> (p, v)) preds
                          in
                          { i with Instr.op = Instr.Phi (ty, incs) })
                     | _ -> i)
                   blk
               else blk)
      in
      go (Func.with_blocks f blocks)
  in
  go f

(* Insert a fresh block named [label] on every edge from a block in
   [froms] to [to_]; the new block unconditionally branches to [to_] and
   inherits the relevant phi entries. Returns the updated function. *)
let insert_block_on_edges (f : Func.t) ~(froms : string list) ~(to_ : string) ~(label : string) : Func.t =
  if froms = [] then f
  else begin
    let from_set = SSet.of_list froms in
    let retarget l = if String.equal l to_ then label else l in
    let blocks =
      List.concat_map
        (fun (b : Block.t) ->
          let b =
            if SSet.mem b.Block.label from_set then
              { b with Block.term = Instr.map_term_labels retarget b.Block.term }
            else b
          in
          if String.equal b.Block.label to_ then begin
            (* phi entries from [froms] move to the new block; since several
               preds can funnel through one new block only when the phi
               values agree, we keep per-pred entries by pointing them at
               the new block only when there is exactly one from; for
               multiple froms we require the caller to pass distinct labels
               per edge (loop-simplify does). *)
            let new_blk = Block.mk label [] (Instr.Br to_) in
            let fixed =
              Block.map_insns
                (fun i ->
                  match i.Instr.op with
                  | Instr.Phi (ty, incs) ->
                    let from_vals, others =
                      List.partition (fun (l, _) -> SSet.mem l from_set) incs
                    in
                    (match from_vals with
                     | [] -> i
                     | (_, v) :: rest ->
                       if List.for_all (fun (_, v') -> Value.equal v v') rest then
                         { i with Instr.op = Instr.Phi (ty, (label, v) :: others) }
                       else
                         (* differing values cannot be funnelled without a
                            new phi in the new block; the caller avoids
                            this case *)
                         invalid_arg "insert_block_on_edges: conflicting phi values")
                  | _ -> i)
                b
            in
            [ new_blk; fixed ]
          end
          else [ b ])
        f.Func.blocks
    in
    Func.with_blocks f blocks
  end

(* --- misc --------------------------------------------------------------- *)

(* Fresh label not already used in the function. *)
let fresh_label (f : Func.t) (base : string) : string =
  let used = SSet.of_list (List.map (fun b -> b.Block.label) f.Func.blocks) in
  if not (SSet.mem base used) then base
  else
    let rec go i =
      let l = Printf.sprintf "%s.%d" base i in
      if SSet.mem l used then go (i + 1) else l
    in
    go 1

(* Static cost of a function body, used by the inliner threshold. *)
let func_cost (f : Func.t) : int =
  Func.fold_insns
    (fun acc _ i ->
      acc
      +
      match i.Instr.op with
      | Instr.Call _ | Instr.Callind _ -> 3
      | Instr.Load _ | Instr.Store _ -> 2
      | Instr.Phi _ -> 0
      | _ -> 1)
    0 f
  + List.length f.Func.blocks

(* Run a function transform to a fixed point, with a safety bound. *)
let to_fixed_point ?(max_iters = 8) (step : Func.t -> Func.t * bool) (f : Func.t) : Func.t =
  let rec go f i =
    if i >= max_iters then f
    else
      let f', changed = step f in
      if changed then go f' (i + 1) else f'
  in
  go f 0

(* Estimate trip count of a simple counted loop:
   header phi  i = phi [init, preheader] [next, latch]
   latch next  = i + step
   guard       = icmp pred i, bound  (controls the back edge)
   Returns [Some n] when the loop runs a compile-time-known n >= 0 times. *)
type counted_loop = {
  phi_reg : int;
  init : int64;
  step : int64;
  bound : int64;
  pred : Instr.icmp;
  trip_count : int;
  next_reg : int;
  cmp_reg : int;
  ty : Types.t;
}

let analyze_counted_loop (f : Func.t) (loop : Loops.loop) : counted_loop option =
  match loop.Loops.latches, loop.Loops.preheader with
  | [ latch ], Some pre ->
    let header = Func.find_block_exn f loop.Loops.header in
    let latch_blk = Func.find_block_exn f latch in
    (* find the exit condition: the latch (or header) ends in a cbr whose
       condition is an icmp on the induction phi's next value *)
    let defs = Func.def_map f in
    let find_icmp c =
      match c with
      | Value.Reg r ->
        (match Hashtbl.find_opt defs r with
         | Some (_, { Instr.op = Instr.Icmp (p, ty, a, b); Instr.id; _ }) ->
           Some (id, p, ty, a, b)
         | _ -> None)
      | _ -> None
    in
    let phis = Block.phis header in
    let try_phi (i : Instr.t) =
      match i.Instr.op with
      | Instr.Phi (ty, incs) when Types.is_integer ty ->
        let init_v = List.assoc_opt pre incs in
        let next_v = List.assoc_opt latch incs in
        (match init_v, next_v with
         | Some (Value.Const (Value.Cint (_, init))), Some (Value.Reg next_reg) ->
           (match Hashtbl.find_opt defs next_reg with
            | Some (_, { Instr.op = Instr.Binop (Instr.Add, _, Value.Reg p, Value.Const (Value.Cint (_, step))); _ })
              when p = i.Instr.id && not (Int64.equal step 0L) ->
              (* guard: cbr in latch *)
              (match latch_blk.Block.term with
               | Instr.Cbr (c, t, e) ->
                 (match find_icmp c with
                  | Some (cmp_reg, pred, _, Value.Reg lhs, Value.Const (Value.Cint (_, bound)))
                    when lhs = next_reg || lhs = i.Instr.id ->
                    (* normalize: continue branch goes to header *)
                    let continue_on_true = String.equal t loop.Loops.header in
                    let continue_on_false = String.equal e loop.Loops.header in
                    if not (continue_on_true || continue_on_false) then None
                    else begin
                      let pred =
                        if continue_on_true then pred else Instr.negate_icmp pred
                      in
                      (* count iterations by direct simulation, bounded *)
                      let uses_next = lhs = next_reg in
                      let limit = 4096 in
                      let rec count i iters =
                        if iters > limit then None
                        else
                          let next = Int64.add i step in
                          let probe = if uses_next then next else i in
                          if Fold.eval_icmp pred probe bound then count next (iters + 1)
                          else Some (iters + 1)
                      in
                      match count init 0 with
                      | Some trip_count ->
                        Some
                          { phi_reg = i.Instr.id; init; step; bound; pred;
                            trip_count; next_reg; cmp_reg; ty }
                      | None -> None
                    end
                  | _ -> None)
               | _ -> None)
            | _ -> None)
         | _ -> None)
      | _ -> None
    in
    List.find_map try_phi phis
  | _ -> None
