(* -loop-unswitch: hoist loop-invariant conditions out of loops.

   When a conditional branch inside a loop tests a loop-invariant value,
   the loop is duplicated: the preheader tests the condition once and
   enters a version of the loop specialized to each outcome, in which the
   branch is folded. Classic speed-for-size trade; gated by a body-size
   budget that shrinks with the size level. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

let size_budget (cfg : Config.t) =
  match cfg.Config.size_level with
  | 0 -> 60
  | 1 -> 24
  | _ -> 10

let unswitch_one (cfg : Config.t) (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader with
  | None -> (f, false)
  | Some pre ->
    let in_loop l = SSet.mem l loop.Loops.blocks in
    let loop_blocks = List.filter (fun (b : Block.t) -> in_loop b.Block.label) f.Func.blocks in
    let body_size =
      List.fold_left (fun acc (b : Block.t) -> acc + List.length b.Block.insns) 0 loop_blocks
    in
    if body_size > size_budget cfg then (f, false)
    else begin
      let loop_defs = ISet.of_list (Clone.region_defs loop_blocks) in
      let invariant v =
        match v with Value.Reg r -> not (ISet.mem r loop_defs) | _ -> false
      in
      (* find an in-loop cbr on an invariant, non-constant condition whose
         both targets are inside the loop *)
      let candidate =
        List.find_map
          (fun (b : Block.t) ->
            match b.Block.term with
            | Instr.Cbr (c, t, e)
              when invariant c && in_loop t && in_loop e && not (String.equal t e) ->
              Some (b.Block.label, c, t, e)
            | _ -> None)
          loop_blocks
      in
      match candidate with
      | None -> (f, false)
      | Some (br_block, cond, t_lbl, e_lbl) ->
        (* values defined in the loop and used outside must flow through
           exit phis for the clone's exits to merge; require unique exit
           with phis or no outside uses at all *)
        let outside_use = ref false in
        List.iter
          (fun (b : Block.t) ->
            if not (in_loop b.Block.label) then begin
              let check v =
                match v with
                | Value.Reg r when ISet.mem r loop_defs -> outside_use := true
                | _ -> ()
              in
              List.iter
                (fun (i : Instr.t) ->
                  match i.Instr.op with
                  | Instr.Phi _ when List.mem b.Block.label loop.Loops.exits -> ()
                  | op -> List.iter check (Instr.operands op))
                b.Block.insns;
              List.iter check (Instr.term_operands b.Block.term)
            end)
          f.Func.blocks;
        if !outside_use then (f, false)
        else begin
          let counter = Func.fresh_counter f in
          let rename l = if in_loop l then l ^ ".us" else l in
          let cloned, find = Clone.clone_blocks ~counter ~rename_label:rename ~init_map:[] loop_blocks in
          (* specialize: original takes the true arm, clone the false arm;
             the abandoned target in each copy loses the branch block as a
             predecessor, so its phis must drop that entry *)
          let orig_blocks =
            List.map
              (fun (b : Block.t) ->
                if String.equal b.Block.label br_block then
                  { b with Block.term = Instr.Br t_lbl }
                else if String.equal b.Block.label e_lbl then
                  Block.remove_phi_pred ~pred:br_block b
                else b)
              loop_blocks
          in
          let cloned =
            List.map
              (fun (b : Block.t) ->
                if String.equal b.Block.label (rename br_block) then
                  { b with Block.term = Instr.Br (rename e_lbl) }
                else if String.equal b.Block.label (rename t_lbl) then
                  Block.remove_phi_pred ~pred:(rename br_block) b
                else b)
              cloned
          in
          (* preheader now tests the condition *)
          let blocks =
            f.Func.blocks
            |> List.filter (fun (b : Block.t) -> not (in_loop b.Block.label))
            |> List.map (fun (b : Block.t) ->
                   if String.equal b.Block.label pre then
                     { b with
                       Block.term = Instr.Cbr (cond, loop.Loops.header, rename loop.Loops.header) }
                   else if List.mem b.Block.label loop.Loops.exits then
                     (* exit phis gain entries from the cloned exiting blocks *)
                     Block.map_insns
                       (fun (i : Instr.t) ->
                         match i.Instr.op with
                         | Instr.Phi (ty, incs) ->
                           let extra =
                             List.filter_map
                               (fun (l, v) ->
                                 if in_loop l then
                                   let v' =
                                     match v with
                                     | Value.Reg r ->
                                       (match find r with Some v' -> v' | None -> v)
                                     | _ -> v
                                   in
                                   Some (rename l, v')
                                 else None)
                               incs
                           in
                           { i with Instr.op = Instr.Phi (ty, incs @ extra) }
                         | _ -> i)
                       b
                   else b)
          in
          let f' =
            Func.with_blocks ~next_id:counter.Func.next f (blocks @ orig_blocks @ cloned)
          in
          (Utils.remove_unreachable_blocks f', true)
        end
    end

let run_func (cfg : Config.t) (f : Func.t) : Func.t =
  let f = Loop_simplify.loop_simplify_func cfg f in
  let li = Loops.compute f in
  (* one unswitch per pass invocation per function keeps growth bounded *)
  let f', _ =
    List.fold_left
      (fun (f, done_) loop ->
        if done_ then (f, done_)
        else
          let f', c = unswitch_one cfg f loop in
          (f', c))
      (f, false) (Loops.leaf_loops li)
  in
  f'

let pass =
  Pass.function_pass "loop-unswitch"
    ~description:"duplicate loops to hoist invariant conditions" run_func
