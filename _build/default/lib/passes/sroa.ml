(* -sroa: scalar replacement of aggregates.

   Multi-element allocas whose every access goes through a constant-index
   gep are split into independent single-element allocas, which mem2reg
   can then promote to registers. Direct loads/stores on the base pointer
   access element 0. *)

open Posetrl_ir
module IMap = Map.Make (Int)

type candidate = {
  reg : int;
  ty : Types.t;
  elems : int;
}

let find_candidates (f : Func.t) : candidate list =
  let allocas =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with
        | Instr.Alloca (ty, n) when n > 1 && n <= 64 && not (Types.is_vector ty) ->
          { reg = i.Instr.id; ty; elems = n } :: acc
        | _ -> acc)
      [] f
  in
  if allocas = [] then []
  else begin
    let bad : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let is_cand r = List.exists (fun c -> c.reg = r) allocas in
    (* geps from candidate allocas with constant in-range index *)
    let gep_of : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
    Func.iter_insns
      (fun _ i ->
        match i.Instr.op with
        | Instr.Gep (gty, Value.Reg base, idx) when is_cand base ->
          let c = List.find (fun c -> c.reg = base) allocas in
          (match idx with
           | Value.Const (Value.Cint (_, k))
             when Types.equal gty c.ty
                  && Int64.compare k 0L >= 0
                  && Int64.compare k (Int64.of_int c.elems) < 0 ->
             Hashtbl.replace gep_of i.Instr.id (base, Int64.to_int k)
           | _ -> Hashtbl.replace bad base ())
        | _ -> ())
      f;
    (* any other use of the alloca or non-load/store use of a gep taints *)
    let check_use v ~as_ptr_of_load_store =
      match v with
      | Value.Reg r ->
        if is_cand r && not as_ptr_of_load_store then
          (* direct load/store on the base is fine (element 0); anything
             else is an escape *)
          Hashtbl.replace bad r ();
        (match Hashtbl.find_opt gep_of r with
         | Some (base, _) when not as_ptr_of_load_store -> Hashtbl.replace bad base ()
         | _ -> ())
      | _ -> ()
    in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Load (_, p) -> check_use p ~as_ptr_of_load_store:true
            | Instr.Store (_, v, p) ->
              check_use v ~as_ptr_of_load_store:false;
              check_use p ~as_ptr_of_load_store:true
            | Instr.Gep (_, base, idx) ->
              (* candidate-based geps with constant index were classified
                 above; everything else taints via check_use *)
              (match base with
               | Value.Reg r when is_cand r ->
                 if not (Hashtbl.mem gep_of i.Instr.id) then Hashtbl.replace bad r ()
               | _ -> check_use base ~as_ptr_of_load_store:false);
              check_use idx ~as_ptr_of_load_store:false
            | op ->
              List.iter (fun v -> check_use v ~as_ptr_of_load_store:false) (Instr.operands op))
          b.Block.insns;
        List.iter
          (fun v -> check_use v ~as_ptr_of_load_store:false)
          (Instr.term_operands b.Block.term))
      f.Func.blocks;
    List.filter (fun c -> not (Hashtbl.mem bad c.reg)) allocas
  end

let split_func (f : Func.t) : Func.t =
  let cands = find_candidates f in
  if cands = [] then f
  else begin
    let counter = Func.fresh_counter f in
    (* fresh scalar alloca registers per (candidate, element) *)
    let scalar : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun c ->
        for k = 0 to c.elems - 1 do
          Hashtbl.replace scalar (c.reg, k) (Func.fresh counter)
        done)
      cands;
    let is_cand r = List.exists (fun c -> c.reg = r) cands in
    let gep_subst : (int, int) Hashtbl.t = Hashtbl.create 16 in
    Func.iter_insns
      (fun _ i ->
        match i.Instr.op with
        | Instr.Gep (_, Value.Reg base, Value.Const (Value.Cint (_, k)))
          when is_cand base ->
          (match Hashtbl.find_opt scalar (base, Int64.to_int k) with
           | Some s -> Hashtbl.replace gep_subst i.Instr.id s
           | None -> ())
        | _ -> ())
      f;
    let rewrite (i : Instr.t) : Instr.t list =
      match i.Instr.op with
      | Instr.Alloca (ty, _) when is_cand i.Instr.id ->
        let c = List.find (fun c -> c.reg = i.Instr.id) cands in
        List.init c.elems (fun k ->
            Instr.mk (Hashtbl.find scalar (c.reg, k)) (Instr.Alloca (ty, 1)))
      | Instr.Gep _ when Hashtbl.mem gep_subst i.Instr.id -> []
      | _ -> [ i ]
    in
    let resolve v =
      match v with
      | Value.Reg r ->
        (match Hashtbl.find_opt gep_subst r with
         | Some s -> Value.Reg s
         | None ->
           (* direct base use = element 0 *)
           (match Hashtbl.find_opt scalar (r, 0) with
            | Some s when is_cand r -> Value.Reg s
            | _ -> v))
      | _ -> v
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          { b with Block.insns = List.concat_map rewrite b.Block.insns })
        f.Func.blocks
    in
    Func.with_blocks ~next_id:counter.Func.next f blocks
    |> Func.map_operands resolve
  end

(* LLVM's sroa also performs the promotion itself; we reuse mem2reg. *)
let run_func (cfg : Config.t) (f : Func.t) : Func.t =
  split_func f |> Mem2reg.run_func cfg

let pass =
  Pass.function_pass "sroa"
    ~description:"split constant-indexed aggregates into scalars and promote"
    run_func
