(* -instcombine: algebraic peephole simplification.

   Works instruction-at-a-time: each rewrite either folds an instruction to
   an existing value (recorded in a substitution) or replaces its opcode
   with a cheaper one. Runs to a fixed point, then cleans up with trivial
   DCE. The rule set mirrors the high-value LLVM combines: identities,
   constant folding, strength reduction, cast and comparison combines,
   select simplification, and operand canonicalization. *)

open Posetrl_ir
open Instr

let pow2 (v : int64) =
  Int64.compare v 0L > 0 && Int64.equal (Int64.logand v (Int64.sub v 1L)) 0L

let log2 (v : int64) =
  let rec go v acc = if Int64.compare v 1L <= 0 then acc else go (Int64.shift_right_logical v 1) (acc + 1) in
  go v 0

(* Canonicalize: constants on the right of commutative ops, registers
   ordered for CSE friendliness. *)
let canonicalize (op : op) : op =
  match op with
  | Binop (b, ty, (Value.Const _ as c), x) when is_commutative b && not (Value.is_const x) ->
    Binop (b, ty, x, c)
  | Binop (b, ty, Value.Reg r1, Value.Reg r2) when is_commutative b && r2 < r1 ->
    Binop (b, ty, Value.Reg r2, Value.Reg r1)
  | Icmp (p, ty, (Value.Const _ as c), x) when not (Value.is_const x) ->
    Icmp (swap_icmp p, ty, x, c)
  | op -> op

(* One rewriting step for a single instruction. [`Value v] folds the whole
   instruction to [v]; [`Op op] replaces the opcode; [`Keep] leaves it. *)
let combine_op (defs : (int, Instr.op) Hashtbl.t) (op : op) :
    [ `Value of Value.t | `Op of op | `Keep ] =
  let def v = match v with Value.Reg r -> Hashtbl.find_opt defs r | _ -> None in
  match Fold.fold_op op with
  | Some v -> `Value v
  | None ->
    (match canonicalize op with
     | Binop (b, ty, x, y) as op' ->
       (match b, x, y with
        (* x + 0, x - 0, x | 0, x ^ 0, x << 0, ... *)
        | (Add | Sub | Or | Xor | Shl | Lshr | Ashr), x, y when Value.is_zero y -> ignore x; `Value x
        | (Fadd | Fsub), x, Value.Const (Value.Cfloat 0.0) -> `Value x
        (* 0 - x stays; x * 1, x / 1 *)
        | (Mul | Sdiv | Udiv), x, y when Value.is_one y -> `Value x
        | (Fmul | Fdiv), x, Value.Const (Value.Cfloat 1.0) -> `Value x
        (* x * 0, x & 0 *)
        | (Mul | And), _, y when Value.is_zero y -> `Value (Value.cint ty 0L)
        | Fmul, _, Value.Const (Value.Cfloat 0.0) -> `Value (Value.cfloat 0.0)
        (* x & -1 = x; x | -1 = -1 *)
        | And, x, y when Value.is_all_ones y -> `Value x
        | Or, _, y when Value.is_all_ones y -> `Value y
        (* x - x, x ^ x *)
        | (Sub | Xor), x, y when Value.equal x y && not (Value.is_const x) ->
          `Value (Value.cint ty 0L)
        (* x & x, x | x *)
        | (And | Or), x, y when Value.equal x y -> `Value x
        (* srem/urem by 1 *)
        | (Srem | Urem), _, y when Value.is_one y -> `Value (Value.cint ty 0L)
        (* strength reduction: x * 2^k -> x << k; udiv by 2^k -> lshr *)
        | Mul, x, Value.Const (Value.Cint (_, k)) when pow2 k ->
          `Op (Binop (Shl, ty, x, Value.cint ty (Int64.of_int (log2 k))))
        | Udiv, x, Value.Const (Value.Cint (_, k)) when pow2 k ->
          `Op (Binop (Lshr, ty, x, Value.cint ty (Int64.of_int (log2 k))))
        | Urem, x, Value.Const (Value.Cint (_, k)) when pow2 k ->
          `Op (Binop (And, ty, x, Value.cint ty (Int64.sub k 1L)))
        (* (x + c1) + c2 -> x + (c1+c2); same for sub folded into add *)
        | Add, x, Value.Const (Value.Cint (_, c2)) ->
          (match def x with
           | Some (Binop (Add, ty', x', Value.Const (Value.Cint (_, c1))))
             when Types.equal ty ty' ->
             `Op (Binop (Add, ty, x', Value.cint ty (Int64.add c1 c2)))
           | Some (Binop (Sub, ty', x', Value.Const (Value.Cint (_, c1))))
             when Types.equal ty ty' ->
             `Op (Binop (Add, ty, x', Value.cint ty (Int64.sub c2 c1)))
           | _ -> `Keep)
        (* x - c -> x + (-c): canonical form enabling reassociation *)
        | Sub, x, Value.Const (Value.Cint (_, c)) when not (Int64.equal c Int64.min_int) ->
          `Op (Binop (Add, ty, x, Value.cint ty (Int64.neg c)))
        (* (x ^ c1) ^ c2 -> x ^ (c1^c2) *)
        | Xor, x, Value.Const (Value.Cint (_, c2)) ->
          (match def x with
           | Some (Binop (Xor, ty', x', Value.Const (Value.Cint (_, c1))))
             when Types.equal ty ty' ->
             `Op (Binop (Xor, ty, x', Value.cint ty (Int64.logxor c1 c2)))
           | _ -> `Keep)
        (* (x & c1) & c2 -> x & (c1&c2); (x | c1) | c2 -> x | (c1|c2) *)
        | And, x, Value.Const (Value.Cint (_, c2)) ->
          (match def x with
           | Some (Binop (And, ty', x', Value.Const (Value.Cint (_, c1))))
             when Types.equal ty ty' ->
             `Op (Binop (And, ty, x', Value.cint ty (Int64.logand c1 c2)))
           | _ -> `Keep)
        | Or, x, Value.Const (Value.Cint (_, c2)) ->
          (match def x with
           | Some (Binop (Or, ty', x', Value.Const (Value.Cint (_, c1))))
             when Types.equal ty ty' ->
             `Op (Binop (Or, ty, x', Value.cint ty (Int64.logor c1 c2)))
           | _ -> `Keep)
        (* (x << c1) << c2 -> x << (c1+c2) when in range *)
        | Shl, x, Value.Const (Value.Cint (_, c2)) ->
          (match def x with
           | Some (Binop (Shl, ty', x', Value.Const (Value.Cint (_, c1))))
             when Types.equal ty ty'
                  && Int64.to_int (Int64.add c1 c2) < Types.bit_width ty ->
             `Op (Binop (Shl, ty, x', Value.cint ty (Int64.add c1 c2)))
           | _ -> `Keep)
        | _ -> ignore op'; `Keep)
     | Icmp (p, ty, x, y) ->
       (match p, x, y with
        (* x == x, x != x on non-float *)
        | Eq, x, y when Value.equal x y && not (Value.is_const x) -> `Value (Value.ci1 true)
        | Ne, x, y when Value.equal x y && not (Value.is_const x) -> `Value (Value.ci1 false)
        (* unsigned x < 0 is false; unsigned x >= 0 is true *)
        | Ult, _, y when Value.is_zero y -> `Value (Value.ci1 false)
        | Uge, _, y when Value.is_zero y -> `Value (Value.ci1 true)
        (* (x - y) ==/!= 0  ->  x ==/!= y *)
        | (Eq | Ne), x, y when Value.is_zero y ->
          (match def x with
           | Some (Binop (Sub, ty', a, b)) when Types.equal ty ty' ->
             `Op (Icmp (p, ty, a, b))
           | Some (Binop (Xor, ty', a, b)) when Types.equal ty ty' ->
             `Op (Icmp (p, ty, a, b))
           | _ -> `Keep)
        (* icmp of zext: compare in the narrow type *)
        | _, x, Value.Const (Value.Cint (_, c)) ->
          (match def x with
           | Some (Cast (Zext, from_ty, _, v))
             when Types.is_integer from_ty
                  && Int64.compare c (Int64.shift_left 1L (Types.bit_width from_ty - 1)) < 0
                  && Int64.compare c 0L >= 0 ->
             `Op (Icmp (p, from_ty, v, Value.cint from_ty c))
           | _ -> `Keep)
        | _ -> `Keep)
     | Select (ty, c, a, b) ->
       (match c, a, b with
        | _, a, b when Value.equal a b -> `Value a
        (* select c, true, false -> c ; select c, false, true -> !c *)
        | c, a, b when Types.equal ty Types.I1 && Value.is_one a && Value.is_zero b ->
          `Value c
        | c, a, b when Types.equal ty Types.I1 && Value.is_zero a && Value.is_one b ->
          `Op (Binop (Xor, Types.I1, c, Value.ci1 true))
        (* select (icmp) with swapped arms when condition is a negation *)
        | Value.Reg r, a, b ->
          (match Hashtbl.find_opt defs r with
           | Some (Binop (Xor, Types.I1, inner, one)) when Value.is_one one ->
             `Op (Select (ty, inner, b, a))
           | _ -> `Keep)
        | _ -> `Keep)
     | Cast (cop, from_ty, to_ty, v) ->
       if Types.equal from_ty to_ty then `Value v
       else
         (match def v with
          (* zext(zext x) / sext(sext x) -> single cast *)
          | Some (Cast (cop', t0, _, v0))
            when cop = cop' && (cop = Zext || cop = Sext) ->
            `Op (Cast (cop, t0, to_ty, v0))
          (* trunc(zext x) where widths line up *)
          | Some (Cast ((Zext | Sext), t0, _, v0))
            when cop = Trunc && Types.equal t0 to_ty -> `Value v0
          | _ -> `Keep)
     | Phi (_, _) -> `Keep
     | Expect (_, v, _) -> `Value v (* semantically transparent *)
     | Gep (ty, base, idx) ->
       (match def base with
        (* gep(gep(b, i), j) -> gep(b, i + j) when both constant *)
        | Some (Gep (ty', b0, Value.Const (Value.Cint (_, i))))
          when Types.equal ty ty' ->
          (match idx with
           | Value.Const (Value.Cint (_, j)) ->
             `Op (Gep (ty, b0, Value.ci64 (Int64.to_int (Int64.add i j))))
           | _ -> `Keep)
        | _ -> `Keep)
     | _ -> `Keep)

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let step (f : Func.t) : Func.t * bool =
    let defs : (int, Instr.op) Hashtbl.t = Hashtbl.create 64 in
    Func.iter_insns (fun _ i -> if i.Instr.id >= 0 then Hashtbl.replace defs i.Instr.id i.Instr.op) f;
    let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
    let changed = ref false in
    let rewrite (i : Instr.t) : Instr.t option =
      match combine_op defs i.Instr.op with
      | `Value v ->
        if i.Instr.id >= 0 then begin
          Hashtbl.replace subst i.Instr.id v;
          changed := true;
          None
        end
        else Some i
      | `Op op' ->
        changed := true;
        Hashtbl.replace defs i.Instr.id op';
        Some { i with Instr.op = op' }
      | `Keep ->
        let op' = canonicalize i.Instr.op in
        if op' <> i.Instr.op then begin
          changed := true;
          Hashtbl.replace defs i.Instr.id op';
          Some { i with Instr.op = op' }
        end
        else Some i
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          { b with Block.insns = List.filter_map rewrite b.Block.insns })
        f.Func.blocks
    in
    let f = Func.with_blocks f blocks in
    let f =
      if Hashtbl.length subst = 0 then f
      else
        let rec resolve v =
          match v with
          | Value.Reg r ->
            (match Hashtbl.find_opt subst r with
             | Some v' when v' <> v -> resolve v'
             | _ -> v)
          | _ -> v
        in
        Func.map_operands resolve f
    in
    (f, !changed)
  in
  let f = Utils.to_fixed_point ~max_iters:6 step f in
  f |> Utils.fold_terminators |> Utils.trivial_dce

let pass =
  Pass.function_pass "instcombine"
    ~description:"algebraic instruction combining and peephole simplification"
    run_func

(* -instsimplify is the non-creating subset: it only folds instructions to
   existing values (no new instructions). We reuse the fold logic with the
   `Op rewrites disabled. *)
let simplify_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if i.Instr.id >= 0 then
            match Fold.fold_op i.Instr.op with
            | Some v -> Hashtbl.replace subst i.Instr.id v
            | None -> ())
        b.Block.insns)
    f.Func.blocks;
  let f =
    if Hashtbl.length subst = 0 then f
    else begin
      let rec resolve v =
        match v with
        | Value.Reg r ->
          (match Hashtbl.find_opt subst r with
           | Some v' when v' <> v -> resolve v'
           | _ -> v)
        | _ -> v
      in
      let f =
        Func.map_blocks
          (Block.filter_insns (fun i -> not (Hashtbl.mem subst i.Instr.id)))
          f
      in
      Func.map_operands resolve f
    end
  in
  Utils.trivial_dce f

let instsimplify_pass =
  Pass.function_pass "instsimplify"
    ~description:"fold instructions to existing values without creating new ones"
    simplify_func
