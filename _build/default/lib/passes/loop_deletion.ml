(* -loop-deletion: remove loops that compute nothing observable.

   A loop is deletable when it has no side effects, none of its values
   are used outside (except exit phis whose loop entries are invariant),
   and it provably terminates (we require a recognized counted loop). The
   preheader then branches straight to the exit. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

let delete_one (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader, loop.Loops.exits with
  | Some pre, [ exit_lbl ] ->
    let in_loop l = SSet.mem l loop.Loops.blocks in
    let loop_blocks = List.filter (fun (b : Block.t) -> in_loop b.Block.label) f.Func.blocks in
    let has_side_effects =
      List.exists
        (fun (b : Block.t) ->
          List.exists (fun (i : Instr.t) -> Instr.has_side_effects i.Instr.op) b.Block.insns)
        loop_blocks
    in
    if has_side_effects then (f, false)
    else if Option.is_none (Utils.analyze_counted_loop f loop) then (f, false)
    else begin
      let loop_defs = ISet.of_list (Clone.region_defs loop_blocks) in
      (* outside uses of loop values: only allowed in exit phis with
         loop-invariant replacements, i.e. the phi's in-loop entries must
         all be the same loop-invariant value *)
      let ok = ref true in
      let exit_phi_fix : (int * Value.t) list ref = ref [] in
      List.iter
        (fun (b : Block.t) ->
          if not (in_loop b.Block.label) then begin
            let check v =
              match v with
              | Value.Reg r when ISet.mem r loop_defs -> ok := false
              | _ -> ()
            in
            List.iter
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Phi (_, incs) when String.equal b.Block.label exit_lbl ->
                  let from_loop =
                    List.filter_map
                      (fun (l, v) -> if in_loop l then Some v else None)
                      incs
                  in
                  (match from_loop with
                   | [] -> ()
                   | v :: rest ->
                     let invariant =
                       (match v with
                        | Value.Reg r -> not (ISet.mem r loop_defs)
                        | _ -> true)
                       && List.for_all (Value.equal v) rest
                     in
                     if invariant then exit_phi_fix := (i.Instr.id, v) :: !exit_phi_fix
                     else ok := false)
                | op -> List.iter check (Instr.operands op))
              b.Block.insns;
            List.iter check (Instr.term_operands b.Block.term)
          end)
        f.Func.blocks;
      if not !ok then (f, false)
      else begin
        let blocks =
          f.Func.blocks
          |> List.filter (fun (b : Block.t) -> not (in_loop b.Block.label))
          |> List.map (fun (b : Block.t) ->
                 if String.equal b.Block.label pre then
                   { b with
                     Block.term =
                       Instr.map_term_labels
                         (fun l -> if String.equal l loop.Loops.header then exit_lbl else l)
                         b.Block.term }
                 else if String.equal b.Block.label exit_lbl then
                   Block.map_insns
                     (fun (i : Instr.t) ->
                       match i.Instr.op with
                       | Instr.Phi (ty, incs) ->
                         let outside =
                           List.filter (fun (l, _) -> not (in_loop l)) incs
                         in
                         (match List.assoc_opt i.Instr.id !exit_phi_fix with
                          | Some v -> { i with Instr.op = Instr.Phi (ty, (pre, v) :: outside) }
                          | None ->
                            if List.length outside < List.length incs then
                              (* phi had loop entries but no outside users
                                 checked it; entries all invariant-equal was
                                 required, so this is unreachable; keep safe *)
                              { i with Instr.op = Instr.Phi (ty, outside) }
                            else i)
                       | _ -> i)
                     b
                 else b)
        in
        (Func.with_blocks f blocks |> Utils.simplify_single_incoming_phis, true)
      end
    end
  | _ -> (f, false)

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let f = Loop_simplify.loop_simplify_func _cfg f in
  let rec go f budget =
    if budget = 0 then f
    else begin
      let li = Loops.compute f in
      let step =
        List.find_map
          (fun loop ->
            let f', changed = delete_one f loop in
            if changed then Some f' else None)
          (Loops.leaf_loops li)
      in
      match step with Some f' -> go f' (budget - 1) | None -> f
    end
  in
  go f 8

let pass =
  Pass.function_pass "loop-deletion"
    ~description:"delete side-effect-free terminating loops" run_func
