(* -dse: dead-store elimination.

   Removes a store when the same pointer is overwritten by a later store
   in the same block with no intervening read or escape, and removes
   stores to non-escaping allocas that are never loaded afterwards
   anywhere in the function. *)

open Posetrl_ir
module ISet = Set.Make (Int)

(* pointers that never escape the function: allocas used only by
   load/store addressing *)
let private_allocas (f : Func.t) : ISet.t =
  let allocas =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with Instr.Alloca _ -> ISet.add i.Instr.id acc | _ -> acc)
      ISet.empty f
  in
  let escaped = ref ISet.empty in
  let check v =
    match v with
    | Value.Reg r when ISet.mem r allocas -> escaped := ISet.add r !escaped
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load (_, _) -> ()
          | Instr.Store (_, v, _) -> check v
          | Instr.Gep (_, base, idx) -> check base; check idx
          | op -> List.iter check (Instr.operands op))
        b.Block.insns;
      List.iter check (Instr.term_operands b.Block.term))
    f.Func.blocks;
  ISet.diff allocas !escaped

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let priv = private_allocas f in
  (* does any load from [r] (directly, geps excluded since gep of private
     alloca with distinct indices is separate, we stay conservative and
     treat any gep on it as a load barrier) exist after? We precompute
     whether each private alloca is loaded at all. *)
  let loaded = ref ISet.empty in
  let gep_based = ref ISet.empty in
  Func.iter_insns
    (fun _ i ->
      match i.Instr.op with
      | Instr.Load (_, Value.Reg r) -> loaded := ISet.add r !loaded
      | Instr.Gep (_, Value.Reg r, _) -> gep_based := ISet.add r !gep_based
      | Instr.Memcpy (_, Value.Reg r, _) -> loaded := ISet.add r !loaded
      | _ -> ())
    f;
  let never_read r =
    ISet.mem r priv && (not (ISet.mem r !loaded)) && not (ISet.mem r !gep_based)
  in
  (* same-block overwrite: scan forward remembering the last store per
     pointer; a read/call/memcpy clears the pending map *)
  let rewrite_block (b : Block.t) =
    let pending : (Value.t, int ref) Hashtbl.t = Hashtbl.create 8 in
    let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iteri
      (fun idx (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Store (_, _, p) ->
          (match Hashtbl.find_opt pending p with
           | Some prev -> Hashtbl.replace dead !prev ()
           | None -> ());
          Hashtbl.replace pending p (ref idx)
        | Instr.Load _ | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _ ->
          Hashtbl.reset pending
        | _ -> ())
      b.Block.insns;
    let insns =
      List.filteri (fun idx _ -> not (Hashtbl.mem dead idx)) b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  (* stores to never-read private allocas are dead *)
  let keep (i : Instr.t) =
    match i.Instr.op with
    | Instr.Store (_, _, Value.Reg r) when never_read r -> false
    | _ -> true
  in
  let f = Func.map_blocks (Block.filter_insns keep) f in
  Utils.trivial_dce f

let pass =
  Pass.function_pass "dse" ~description:"dead-store elimination" run_func
