(* -loop-vectorize: widen unit-stride counted loops to vector operations.

   Conservative, single-block vectorizer: loads and stores through
   gep(base, iv) with loop-invariant bases become vector memory ops, the
   connecting pure arithmetic is widened elementwise, invariant scalars
   are splatted (represented as a scalar-to-vector bitcast), and the
   induction step is multiplied by the vector width. Loops whose trip
   count is not divisible by the width, or whose loads may alias the
   stores, are left alone. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

let vectorize_one (cfg : Config.t) (f : Func.t) (loop : Loops.loop) : Func.t option =
  let w = cfg.Config.vector_width in
  if (not cfg.Config.vectorize) || w < 2 then None
  else
    match loop.Loops.preheader, loop.Loops.latches with
    | Some _pre, [ latch ] when String.equal latch loop.Loops.header ->
      (match Utils.analyze_counted_loop f loop with
       | Some info
         when Int64.equal info.Utils.step 1L
              && info.Utils.trip_count mod w = 0
              && info.Utils.trip_count >= 2 * w ->
         let body = Func.find_block_exn f loop.Loops.header in
         let defs = Hashtbl.create 16 in
         List.iter
           (fun (i : Instr.t) ->
             if i.Instr.id >= 0 then Hashtbl.replace defs i.Instr.id i.Instr.op)
           body.Block.insns;
         let is_iv v = match v with Value.Reg r -> r = info.Utils.phi_reg | _ -> false in
         let invariant v =
           match v with
           | Value.Reg r -> not (Hashtbl.mem defs r)
           | _ -> true
         in
         let iv_gep r =
           match Hashtbl.find_opt defs r with
           | Some (Instr.Gep (ty, base, idx)) when is_iv idx && invariant base ->
             Some (ty, base)
           | _ -> None
         in
         (* classify registers: Vec means the register becomes a vector *)
         let vec : (int, Types.t) Hashtbl.t = Hashtbl.create 16 in
         let store_bases = ref [] in
         let load_bases = ref [] in
         let ok = ref true in
         List.iter
           (fun (i : Instr.t) ->
             match i.Instr.op with
             | Instr.Phi _ when i.Instr.id = info.Utils.phi_reg -> ()
             | Instr.Phi _ -> ok := false
             | Instr.Gep (_, base, idx) ->
               if not (is_iv idx && invariant base) then ok := false
             | Instr.Load (ty, Value.Reg p) ->
               (match iv_gep p with
                | Some (gty, base) when Types.equal gty ty && not (Types.is_vector ty) ->
                  Hashtbl.replace vec i.Instr.id ty;
                  load_bases := base :: !load_bases
                | _ -> ok := false)
             | Instr.Load _ -> ok := false
             | Instr.Store (ty, v, Value.Reg p) ->
               (match iv_gep p with
                | Some (gty, base) when Types.equal gty ty && not (Types.is_vector ty) ->
                  store_bases := base :: !store_bases;
                  (* the stored value must be a widened register or a
                     loop-invariant scalar; a loop-varying scalar (e.g. the
                     IV itself) cannot be splatted *)
                  (match v with
                   | Value.Reg r when Hashtbl.mem vec r -> ()
                   | v when invariant v -> ()
                   | _ -> ok := false)
                | _ -> ok := false)
             | Instr.Store _ -> ok := false
             | Instr.Binop (_, ty, a, b)
               when i.Instr.id <> info.Utils.next_reg && not (Types.is_vector ty) ->
               (* widen iff any operand is (or becomes) a vector *)
               let operand_vec v =
                 match v with Value.Reg r -> Hashtbl.mem vec r | _ -> false
               in
               if operand_vec a || operand_vec b then Hashtbl.replace vec i.Instr.id ty
               else if List.exists is_iv [ a; b ] then ok := false
             | Instr.Binop _ -> ()
             | Instr.Icmp _ when i.Instr.id = info.Utils.cmp_reg -> ()
             | Instr.Select _ | Instr.Cast _ | Instr.Icmp _ | Instr.Fcmp _
             | Instr.Expect _ ->
               (* only allowed when untouched by vector values *)
               let touches_vec =
                 List.exists
                   (fun v -> match v with Value.Reg r -> Hashtbl.mem vec r | _ -> false)
                   (Instr.operands i.Instr.op)
               in
               if touches_vec then ok := false
             | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _ | Instr.Intrinsic _
             | Instr.Alloca _ ->
               ok := false)
           body.Block.insns;
         (* iterate the widening to a fixed point (chains of binops) *)
         let changed = ref true in
         while !ok && !changed do
           changed := false;
           List.iter
             (fun (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Binop (_, ty, a, b)
                 when i.Instr.id <> info.Utils.next_reg
                      && (not (Hashtbl.mem vec i.Instr.id))
                      && not (Types.is_vector ty) ->
                 let operand_vec v =
                   match v with Value.Reg r -> Hashtbl.mem vec r | _ -> false
                 in
                 if operand_vec a || operand_vec b then begin
                   Hashtbl.replace vec i.Instr.id ty;
                   changed := true
                 end
               | _ -> ())
             body.Block.insns
         done;
         (* alias check: loads must not read what the loop writes *)
         let disjoint =
           List.for_all
             (fun lb -> List.for_all (fun sb -> not (Value.equal lb sb)) !store_bases)
             !load_bases
         in
         (* every vector value must only flow into vector ops or stores *)
         let flows_ok =
           List.for_all
             (fun (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Gep (_, _, idx) ->
                 (match idx with
                  | Value.Reg r -> not (Hashtbl.mem vec r)
                  | _ -> true)
               | _ -> true)
             body.Block.insns
           &&
           (* the latch branch and the IV chain must stay scalar *)
           not (Hashtbl.mem vec info.Utils.next_reg)
         in
         if (not !ok) || (not disjoint) || (not flows_ok) || !store_bases = [] then None
         else begin
           (* nothing vector-defined may be used outside the loop *)
           let used_outside =
             List.exists
               (fun (b : Block.t) ->
                 (not (String.equal b.Block.label loop.Loops.header))
                 && List.exists
                      (fun (i : Instr.t) ->
                        List.exists
                          (fun v ->
                            match v with
                            | Value.Reg r -> Hashtbl.mem vec r
                            | _ -> false)
                          (Instr.operands i.Instr.op))
                      b.Block.insns)
               f.Func.blocks
           in
           if used_outside then None
           else begin
             let counter = Func.fresh_counter f in
             let vty ty = Types.Vec (ty, w) in
             (* rewrite the body *)
             let splats = ref [] in
             let splat ty v =
               let r = Func.fresh counter in
               splats := Instr.mk r (Instr.Cast (Instr.Bitcast, ty, vty ty, v)) :: !splats;
               Value.Reg r
             in
             let widen_operand ty v =
               match v with
               | Value.Reg r when Hashtbl.mem vec r -> v
               | v -> splat ty v
             in
             let insns =
               List.concat_map
                 (fun (i : Instr.t) ->
                   splats := [];
                   let i' =
                     match i.Instr.op with
                     | Instr.Load (ty, p) when Hashtbl.mem vec i.Instr.id ->
                       { i with Instr.op = Instr.Load (vty ty, p) }
                     | Instr.Store (ty, v, p) when not (Types.is_vector ty) ->
                       let v' = widen_operand ty v in
                       { i with Instr.op = Instr.Store (vty ty, v', p) }
                     | Instr.Binop (b, ty, x, y) when Hashtbl.mem vec i.Instr.id ->
                       let x' = widen_operand ty x and y' = widen_operand ty y in
                       { i with Instr.op = Instr.Binop (b, vty ty, x', y') }
                     | Instr.Binop (Instr.Add, ty, x, Value.Const (Value.Cint (_, 1L)))
                       when i.Instr.id = info.Utils.next_reg ->
                       { i with
                         Instr.op =
                           Instr.Binop (Instr.Add, ty, x, Value.cint ty (Int64.of_int w)) }
                     | _ -> i
                   in
                   List.rev !splats @ [ i' ])
                 body.Block.insns
             in
             let body' = { body with Block.insns = insns } in
             let blocks =
               List.map
                 (fun (b : Block.t) ->
                   if String.equal b.Block.label loop.Loops.header then body' else b)
                 f.Func.blocks
             in
             Some (Func.with_blocks ~next_id:counter.Func.next f blocks)
           end
         end
       | _ -> None)
    | _ -> None

let run_func (cfg : Config.t) (f : Func.t) : Func.t =
  let f = Loop_simplify.loop_simplify_func cfg f |> Utils.merge_blocks in
  let li = Loops.compute f in
  match List.find_map (vectorize_one cfg f) (Loops.leaf_loops li) with
  | Some f' -> f'
  | None -> f

let pass =
  Pass.function_pass "loop-vectorize"
    ~description:"widen unit-stride counted loops to vector width" run_func
