(* Smaller loop passes: -loop-sink, -loop-load-elim, -loop-distribute. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

(* --- loop-sink ----------------------------------------------------------

   The inverse of LICM: moves computation from the preheader into the
   loop when it is only used in a conditionally-executed block, so the
   work is not paid on iterations (or entries) that never need it. *)

let sink_one (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader with
  | None -> (f, false)
  | Some pre ->
    let pre_blk = Func.find_block_exn f pre in
    let uses = Func.use_counts f in
    (* map register -> unique using block, if any *)
    let use_block = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        let record v =
          match v with
          | Value.Reg r ->
            (match Hashtbl.find_opt use_block r with
             | Some l when not (String.equal l b.Block.label) ->
               Hashtbl.replace use_block r "<many>"
             | _ -> Hashtbl.replace use_block r b.Block.label)
          | _ -> ()
        in
        (* a phi use needs the value at the end of the incoming
           predecessor, not in the phi's block: never sink such values *)
        let poison v =
          match v with
          | Value.Reg r -> Hashtbl.replace use_block r "<many>"
          | _ -> ()
        in
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Phi (_, incs) -> List.iter (fun (_, v) -> poison v) incs
            | op -> List.iter record (Instr.operands op))
          b.Block.insns;
        List.iter record (Instr.term_operands b.Block.term))
      f.Func.blocks;
    let sinkable (i : Instr.t) =
      i.Instr.id >= 0 && Instr.is_pure i.Instr.op
      && Option.value (Hashtbl.find_opt uses i.Instr.id) ~default:0 >= 1
      &&
      match Hashtbl.find_opt use_block i.Instr.id with
      | Some l ->
        SSet.mem l loop.Loops.blocks
        && (not (String.equal l loop.Loops.header))
        && not (List.exists (String.equal l) loop.Loops.latches)
      | None -> false
    in
    let to_sink = List.filter sinkable pre_blk.Block.insns in
    (* an instruction can only sink if everything it depends on stays
       available; sink whole dependency-closed suffixes only — approximate
       by requiring sunk instructions not be used by other preheader insns *)
    let sunk_ids = ISet.of_list (List.map (fun (i : Instr.t) -> i.Instr.id) to_sink) in
    let to_sink =
      List.filter
        (fun (i : Instr.t) ->
          not
            (List.exists
               (fun (j : Instr.t) ->
                 (not (ISet.mem j.Instr.id sunk_ids))
                 && List.exists
                      (fun v -> v = Value.Reg i.Instr.id)
                      (Instr.operands j.Instr.op))
               pre_blk.Block.insns))
        to_sink
    in
    if to_sink = [] then (f, false)
    else begin
      let sunk_ids = ISet.of_list (List.map (fun (i : Instr.t) -> i.Instr.id) to_sink) in
      let dest r = Hashtbl.find use_block r in
      let blocks =
        List.map
          (fun (b : Block.t) ->
            if String.equal b.Block.label pre then
              Block.filter_insns (fun i -> not (ISet.mem i.Instr.id sunk_ids)) b
            else
              let incoming =
                List.filter (fun (i : Instr.t) -> String.equal (dest i.Instr.id) b.Block.label) to_sink
              in
              if incoming = [] then b
              else
                let phis, rest = Block.split_phis b in
                { b with Block.insns = phis @ incoming @ rest })
          f.Func.blocks
      in
      (Func.with_blocks f blocks, true)
    end

let loop_sink_pass =
  Pass.function_pass "loop-sink"
    ~description:"sink preheader computation into conditionally-executed loop blocks"
    (fun _cfg f ->
      let li = Loops.compute f in
      List.fold_left (fun f loop -> fst (sink_one f loop)) f li.Loops.loops)

(* --- loop-load-elim ------------------------------------------------------

   Store-to-load forwarding restricted to loop bodies: a load from a
   pointer stored earlier in the same block (same iteration) reuses the
   stored value. *)

let forward_block (b : Block.t) : Block.t * bool =
  let pending : (Value.t, Types.t * Value.t) Hashtbl.t = Hashtbl.create 8 in
  let changed = ref false in
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let insns =
    List.filter_map
      (fun (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Store (ty, v, p) ->
          Hashtbl.replace pending p (ty, v);
          Some i
        | Instr.Load (ty, p) ->
          (match Hashtbl.find_opt pending p with
           | Some (ty', v) when Types.equal ty ty' ->
             Hashtbl.replace subst i.Instr.id v;
             changed := true;
             None
           | _ -> Some i)
        | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _ | Instr.Intrinsic _ ->
          Hashtbl.reset pending;
          Some i
        | _ -> Some i)
      b.Block.insns
  in
  if not !changed then (b, false)
  else begin
    let resolve v =
      match v with
      | Value.Reg r -> (match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
      | _ -> v
    in
    (Block.map_operands resolve { b with Block.insns }, true)
  end

let loop_load_elim_pass =
  Pass.function_pass "loop-load-elim"
    ~description:"store-to-load forwarding within loop bodies"
    (fun _cfg f ->
      let li = Loops.compute f in
      let in_any_loop l = Loops.depth li l > 0 in
      Func.map_blocks
        (fun b -> if in_any_loop b.Block.label then fst (forward_block b) else b)
        f
      |> Utils.trivial_dce)

(* --- loop-distribute -----------------------------------------------------

   Splits a load-free single-block counted loop that stores through
   several distinct invariant bases into one loop per base, enabling
   later per-loop idiom recognition or vectorization. *)

let distribute_one (f : Func.t) (loop : Loops.loop) : Func.t option =
  match loop.Loops.preheader, loop.Loops.exits, loop.Loops.latches with
  | Some pre, [ exit_lbl ], [ latch ]
    when String.equal latch loop.Loops.header ->
    let body = Func.find_block_exn f loop.Loops.header in
    let has_load_or_call =
      List.exists
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load _ | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _
          | Instr.Intrinsic _ -> true
          | _ -> false)
        body.Block.insns
    in
    if has_load_or_call then None
    else begin
      let defs = Hashtbl.create 8 in
      List.iter
        (fun (i : Instr.t) ->
          if i.Instr.id >= 0 then Hashtbl.replace defs i.Instr.id i.Instr.op)
        body.Block.insns;
      let base_of_store (i : Instr.t) =
        match i.Instr.op with
        | Instr.Store (_, _, Value.Reg p) ->
          (match Hashtbl.find_opt defs p with
           | Some (Instr.Gep (_, base, _)) when not (Hashtbl.mem defs (match base with Value.Reg r -> r | _ -> -1)) ->
             Some base
           | _ -> None)
        | Instr.Store _ -> None
        | _ -> None
      in
      let stores = List.filter (fun i -> match i.Instr.op with Instr.Store _ -> true | _ -> false) body.Block.insns in
      let bases = List.map base_of_store stores in
      if List.exists Option.is_none bases then None
      else begin
        let bases = List.filter_map Fun.id bases in
        let distinct = List.sort_uniq Stdlib.compare bases in
        (* nothing defined in the loop may be used outside *)
        let loop_defs = ISet.of_list (Clone.region_defs [ body ]) in
        let used_outside =
          List.exists
            (fun (b : Block.t) ->
              (not (String.equal b.Block.label loop.Loops.header))
              && (List.exists
                    (fun (i : Instr.t) ->
                      List.exists
                        (fun v -> match v with Value.Reg r -> ISet.mem r loop_defs | _ -> false)
                        (Instr.operands i.Instr.op))
                    b.Block.insns
                  || List.exists
                       (fun v -> match v with Value.Reg r -> ISet.mem r loop_defs | _ -> false)
                       (Instr.term_operands b.Block.term)))
            f.Func.blocks
        in
        if List.length distinct < 2 || used_outside then None
        else begin
          let counter = Func.fresh_counter f in
          (* one clone per base, chained sequentially *)
          let n = List.length distinct in
          let clones =
            List.mapi
              (fun k base ->
                let rename l =
                  if String.equal l loop.Loops.header then
                    Printf.sprintf "%s.dist%d" l k
                  else l
                in
                let cloned, _ =
                  Clone.clone_blocks ~counter ~rename_label:rename ~init_map:[] [ body ]
                in
                let blk = List.hd cloned in
                (* keep only stores whose base matches *)
                let blk =
                  Block.filter_insns
                    (fun (i : Instr.t) ->
                      match base_of_store i with
                      | Some b -> Value.equal b base
                      | None -> true)
                    blk
                in
                (* retarget: exit edge of clone k goes to clone k+1's
                   preheader-equivalent (directly to its header) *)
                let next =
                  if k = n - 1 then exit_lbl
                  else Printf.sprintf "%s.dist%d" loop.Loops.header (k + 1)
                in
                let term =
                  Instr.map_term_labels
                    (fun l -> if String.equal l exit_lbl then next else l)
                    blk.Block.term
                in
                (* clone k > 0 enters from clone k-1's exit edge: its phis'
                   preheader entries must point at the predecessor clone *)
                let blk =
                  if k = 0 then blk
                  else
                    Block.rename_phi_pred ~from:pre
                      ~to_:(Printf.sprintf "%s.dist%d" loop.Loops.header (k - 1))
                      blk
                in
                { blk with Block.term = term })
              distinct
          in
          let first = Printf.sprintf "%s.dist%d" loop.Loops.header 0 in
          let last = Printf.sprintf "%s.dist%d" loop.Loops.header (n - 1) in
          let blocks =
            f.Func.blocks
            |> List.filter (fun (b : Block.t) -> not (String.equal b.Block.label loop.Loops.header))
            |> List.map (fun (b : Block.t) ->
                   if String.equal b.Block.label pre then
                     { b with
                       Block.term =
                         Instr.map_term_labels
                           (fun l -> if String.equal l loop.Loops.header then first else l)
                           b.Block.term }
                   else if String.equal b.Block.label exit_lbl then
                     Block.rename_phi_pred ~from:loop.Loops.header ~to_:last b
                   else b)
          in
          Some
            (Func.with_blocks ~next_id:counter.Func.next f (blocks @ clones)
            |> Utils.trivial_dce)
        end
      end
    end
  | _ -> None

let loop_distribute_pass =
  Pass.function_pass "loop-distribute"
    ~description:"split independent store streams into separate loops"
    (fun _cfg f ->
      let li = Loops.compute f in
      match List.find_map (distribute_one f) (Loops.leaf_loops li) with
      | Some f' -> f'
      | None -> f)
