(* -simplifycfg: CFG cleanup.

   The workhorse cleanup pass, mirroring LLVM's: fold constant branches,
   delete unreachable blocks, merge straight-line block chains, remove
   empty forwarding blocks, simplify degenerate phis, and convert simple
   diamonds/triangles whose arms are side-effect-free into selects
   (if-conversion), which shrinks code and removes branches. *)

open Posetrl_ir

(* If-conversion of the triangle/diamond shapes:

     head: cbr c, then, else        head: cbr c, then, join
     then: br join                  then: br join
     else: br join                  join: x = phi [then: a] [head: b]
     join: x = phi [then: a] [else: b]

   When the arms contain only a few pure instructions, move them into the
   head and replace each join phi with a select. *)
let if_convert (f : Func.t) : Func.t * bool =
  let cfg = Cfg.of_func f in
  let changed = ref false in
  let pure_arm (b : Block.t) =
    List.length b.Block.insns <= 3
    && List.for_all (fun (i : Instr.t) -> Instr.is_pure i.Instr.op) b.Block.insns
  in
  let single_pred l = match Cfg.preds cfg l with [ _ ] -> true | _ -> false in
  let candidate =
    List.find_map
      (fun (head : Block.t) ->
        match head.Block.term with
        | Instr.Cbr (c, t_lbl, e_lbl) when not (String.equal t_lbl e_lbl) ->
          let t_blk = Func.find_block_exn f t_lbl in
          let e_blk = Func.find_block_exn f e_lbl in
          (match t_blk.Block.term, e_blk.Block.term with
           (* diamond *)
           | Instr.Br jt, Instr.Br je
             when String.equal jt je && single_pred t_lbl && single_pred e_lbl
                  && pure_arm t_blk && pure_arm e_blk
                  && (not (String.equal jt head.Block.label)) ->
             Some (`Diamond (head, c, t_blk, e_blk, jt))
           (* triangle: then -> join, head -> join directly *)
           | Instr.Br jt, _
             when String.equal jt e_lbl && single_pred t_lbl && pure_arm t_blk ->
             Some (`Triangle (head, c, t_blk, e_lbl, true))
           | _, Instr.Br je
             when String.equal je t_lbl && single_pred e_lbl && pure_arm e_blk ->
             Some (`Triangle (head, c, e_blk, t_lbl, false))
           | _ -> None)
        | _ -> None)
      f.Func.blocks
  in
  match candidate with
  | None -> (f, false)
  | Some shape ->
    changed := true;
    let counter = Func.fresh_counter f in
    (match shape with
     | `Diamond (head, c, t_blk, e_blk, join_lbl) ->
       let join = Func.find_block_exn f join_lbl in
       (* phis in join become selects placed in head *)
       let selects = ref [] in
       let phis, rest = Block.split_phis join in
       let join_has_other_preds =
         List.exists
           (fun p ->
             not (String.equal p t_blk.Block.label || String.equal p e_blk.Block.label))
           (Cfg.preds cfg join_lbl)
       in
       if join_has_other_preds then (f, false)
       else begin
         List.iter
           (fun (i : Instr.t) ->
             match i.Instr.op with
             | Instr.Phi (ty, incs) ->
               let tv = Option.value (List.assoc_opt t_blk.Block.label incs) ~default:(Value.cundef ty) in
               let ev = Option.value (List.assoc_opt e_blk.Block.label incs) ~default:(Value.cundef ty) in
               selects := Instr.mk i.Instr.id (Instr.Select (ty, c, tv, ev)) :: !selects
             | _ -> ())
           phis;
         ignore counter;
         let new_head =
           Block.mk head.Block.label
             (head.Block.insns @ t_blk.Block.insns @ e_blk.Block.insns
             @ List.rev !selects @ rest)
             join.Block.term
         in
         let dead = [ t_blk.Block.label; e_blk.Block.label; join_lbl ] in
         let blocks =
           f.Func.blocks
           |> List.filter (fun b -> not (List.mem b.Block.label dead))
           |> List.map (fun b ->
                  if String.equal b.Block.label head.Block.label then new_head else b)
           |> List.map (Block.rename_phi_pred ~from:join_lbl ~to_:head.Block.label)
         in
         (Func.with_blocks f blocks, true)
       end
     | `Triangle (head, c, arm_blk, join_lbl, arm_is_then) ->
       let join = Func.find_block_exn f join_lbl in
       let phis, rest = Block.split_phis join in
       let other_preds =
         List.filter
           (fun p ->
             not
               (String.equal p arm_blk.Block.label
               || String.equal p head.Block.label))
           (Cfg.preds cfg join_lbl)
       in
       if other_preds <> [] || phis = [] then
         (* without phis there is nothing to select; still profitable to
            hoist the arm when tiny, but keep it simple: only phi case *)
         (f, false)
       else begin
         let selects =
           List.filter_map
             (fun (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Phi (ty, incs) ->
                 let av = Option.value (List.assoc_opt arm_blk.Block.label incs) ~default:(Value.cundef ty) in
                 let hv = Option.value (List.assoc_opt head.Block.label incs) ~default:(Value.cundef ty) in
                 let tv, ev = if arm_is_then then (av, hv) else (hv, av) in
                 Some (Instr.mk i.Instr.id (Instr.Select (ty, c, tv, ev)))
               | _ -> None)
             phis
         in
         let new_head =
           Block.mk head.Block.label
             (head.Block.insns @ arm_blk.Block.insns @ selects @ rest)
             join.Block.term
         in
         let dead = [ arm_blk.Block.label; join_lbl ] in
         let blocks =
           f.Func.blocks
           |> List.filter (fun b -> not (List.mem b.Block.label dead))
           |> List.map (fun b ->
                  if String.equal b.Block.label head.Block.label then new_head else b)
           |> List.map (Block.rename_phi_pred ~from:join_lbl ~to_:head.Block.label)
         in
         (Func.with_blocks f blocks, true)
       end)

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let cleanup f =
    f
    |> Utils.fold_terminators
    |> Utils.remove_unreachable_blocks
    |> Utils.simplify_single_incoming_phis
    |> Utils.remove_forwarding_blocks
    |> Utils.merge_blocks
  in
  let f = cleanup f in
  let f =
    Utils.to_fixed_point
      (fun f ->
        let f', changed = if_convert f in
        ((if changed then cleanup f' else f'), changed))
      f
  in
  Utils.trivial_dce f

let pass =
  Pass.function_pass "simplifycfg"
    ~description:"simplify the CFG: fold branches, merge blocks, if-convert"
    run_func
