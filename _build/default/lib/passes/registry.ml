(* Name-to-pass registry.

   All 54 unique passes of the LLVM-10 -Oz pipeline (paper Table I) are
   registered under their LLVM flag names; the ODG, the action spaces and
   the pipelines refer to passes exclusively through this table. *)

let all : Pass.t list =
  [ Attr_passes.ee_instrument_pass;
    Simplifycfg.pass;
    Sroa.pass;
    Early_cse.pass;
    Scalar_misc.lower_expect_pass;
    Attr_passes.forceattrs_pass;
    Attr_passes.inferattrs_pass;
    Sccp.ipsccp_pass;
    Ipo.cvp_pass;
    Attr_passes.attributor_pass;
    Ipo.globalopt_pass;
    Mem2reg.pass;
    Ipo.deadargelim_pass;
    Instcombine.pass;
    Ipo.prune_eh_pass;
    Inline.pass;
    Attr_passes.functionattrs_pass;
    Early_cse.memssa_pass;
    Scalar_misc.speculative_pass;
    Scalar_misc.jump_threading_pass;
    Scalar_misc.correlated_pass;
    Scalar_misc.tailcallelim_pass;
    Scalar_misc.reassociate_pass;
    Loop_simplify.pass;
    Loop_simplify.lcssa_pass;
    Loop_rotate.pass;
    Licm.pass;
    Loop_unswitch.pass;
    Indvars.pass;
    Loop_idiom.pass;
    Loop_deletion.pass;
    Loop_unroll.pass;
    Memory_opts.mldst_pass;
    Gvn.pass;
    Memory_opts.memcpyopt_pass;
    Sccp.pass;
    Dce.bdce_pass;
    Dse.pass;
    Dce.adce_pass;
    Attr_passes.barrier_pass;
    Ipo.elim_avail_pass;
    Attr_passes.rpo_functionattrs_pass;
    Ipo.globaldce_pass;
    Scalar_misc.float2int_pass;
    Scalar_misc.lower_ci_pass;
    Loop_misc.loop_distribute_pass;
    Loop_vectorize.pass;
    Loop_misc.loop_load_elim_pass;
    Attr_passes.alignment_pass;
    Ipo.strip_pass;
    Ipo.constmerge_pass;
    Loop_misc.loop_sink_pass;
    Instcombine.instsimplify_pass;
    Scalar_misc.div_rem_pass ]

let table : (string, Pass.t) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter (fun (p : Pass.t) -> Hashtbl.replace t p.Pass.name p) all;
  t

(* Spelling variants seen in the paper's tables. *)
let aliases =
  [ ("alignmentfromassumptions", "alignment-from-assumptions");
    ("alignment-from-assumptions", "alignment-from-assumptions") ]

let find (name : string) : Pass.t option =
  match Hashtbl.find_opt table name with
  | Some p -> Some p
  | None ->
    (match List.assoc_opt name aliases with
     | Some canonical -> Hashtbl.find_opt table canonical
     | None -> None)

let find_exn name =
  match find name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: unknown pass %s" name)

let names () = List.map (fun (p : Pass.t) -> p.Pass.name) all
