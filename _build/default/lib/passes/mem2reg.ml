(* -mem2reg: promote memory to registers.

   The classic SSA-construction pass: single-element allocas whose address
   never escapes (used only as the pointer of loads and stores) are
   rewritten into SSA values, inserting phi nodes at iterated dominance
   frontiers and renaming along the dominator tree. *)

open Posetrl_ir
module SMap = Map.Make (String)
module ISet = Set.Make (Int)

type alloca_info = { reg : int; ty : Types.t }

(* Allocas eligible for promotion. *)
let promotable_allocas (f : Func.t) : alloca_info list =
  let allocas =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with
        | Instr.Alloca (ty, 1) when not (Types.is_vector ty) ->
          (i.Instr.id, ty) :: acc
        | _ -> acc)
      [] f
  in
  let escaped = Hashtbl.create 8 in
  Func.iter_insns
    (fun _ i ->
      let check_escape v =
        match v with
        | Value.Reg r when List.mem_assoc r allocas -> Hashtbl.replace escaped r ()
        | _ -> ()
      in
      match i.Instr.op with
      | Instr.Load (_, _) -> () (* pointer use of a load is fine *)
      | Instr.Store (_, v, _) -> check_escape v (* storing the address escapes *)
      | op -> List.iter check_escape (Instr.operands op))
    f;
  (* terminator uses also escape *)
  List.iter
    (fun b ->
      List.iter
        (fun v ->
          match v with
          | Value.Reg r when List.mem_assoc r allocas -> Hashtbl.replace escaped r ()
          | _ -> ())
        (Instr.term_operands b.Block.term))
    f.Func.blocks;
  List.filter_map
    (fun (reg, ty) ->
      if Hashtbl.mem escaped reg then None else Some { reg; ty })
    allocas

(* Dominance frontiers (Cooper-Harvey-Kennedy). *)
let compute_df (f : Func.t) (cfg : Cfg.t) (dom : Dom.t) : string list SMap.t =
  let df = ref SMap.empty in
  let add b x =
    let cur = Option.value (SMap.find_opt b !df) ~default:[] in
    if not (List.exists (String.equal x) cur) then df := SMap.add b (x :: cur) !df
  in
  List.iter
    (fun (blk : Block.t) ->
      let b = blk.Block.label in
      let preds = Cfg.preds cfg b in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            (* only consider reachable preds with an idom *)
            let rec walk runner =
              match Dom.idom dom b with
              | None -> ()
              | Some idom_b ->
                if String.equal runner idom_b then ()
                else begin
                  add runner b;
                  match Dom.idom dom runner with
                  | Some next when not (String.equal next runner) -> walk next
                  | _ -> ()
                end
            in
            if Option.is_some (Dom.idom dom p) || String.equal p dom.Dom.entry then
              walk p)
          preds)
    f.Func.blocks;
  !df

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let allocas = promotable_allocas f in
  if allocas = [] then f
  else begin
    let cfg = Cfg.of_func f in
    let dom = Dom.compute cfg in
    let df = compute_df f cfg dom in
    let counter = Func.fresh_counter f in
    let alloca_regs = ISet.of_list (List.map (fun a -> a.reg) allocas) in
    (* blocks containing a store to each alloca *)
    let store_blocks a =
      List.filter_map
        (fun (b : Block.t) ->
          if
            List.exists
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Store (_, _, Value.Reg r) -> r = a.reg
                | _ -> false)
              b.Block.insns
          then Some b.Block.label
          else None)
        f.Func.blocks
    in
    (* phi placement: (block -> (alloca reg -> phi reg)) *)
    let phi_at : (string, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
    let reach = Cfg.reachable cfg in
    List.iter
      (fun a ->
        let work = Queue.create () in
        List.iter (fun b -> Queue.add b work) (store_blocks a);
        let has_phi = Hashtbl.create 4 in
        while not (Queue.is_empty work) do
          let x = Queue.pop work in
          List.iter
            (fun y ->
              if Cfg.SSet.mem y reach && not (Hashtbl.mem has_phi y) then begin
                Hashtbl.add has_phi y ();
                let tbl =
                  match Hashtbl.find_opt phi_at y with
                  | Some t -> t
                  | None ->
                    let t = Hashtbl.create 4 in
                    Hashtbl.add phi_at y t;
                    t
                in
                Hashtbl.replace tbl a.reg (Func.fresh counter);
                Queue.add y work
              end)
            (Option.value (SMap.find_opt x df) ~default:[])
        done)
      allocas;
    (* renaming along the dominator tree *)
    let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 32 in
    let new_blocks : (string, Block.t) Hashtbl.t = Hashtbl.create 16 in
    (* pending phi incomings: (block, phi reg) -> (pred, value) list *)
    let phi_incomings : (string * int, (string * Value.t) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let alloca_ty =
      List.fold_left (fun m a -> (a.reg, a.ty) :: m) [] allocas
    in
    let module IMap = Map.Make (Int) in
    let rec rename label (cur_env : Value.t IMap.t) =
      let blk = Func.find_block_exn f label in
      let cur = Hashtbl.create 8 in
      IMap.iter (fun r v -> Hashtbl.replace cur r v) cur_env;
      (* inserted phis define new current values *)
      (match Hashtbl.find_opt phi_at label with
       | Some tbl ->
         Hashtbl.iter (fun areg phireg -> Hashtbl.replace cur areg (Value.Reg phireg)) tbl
       | None -> ());
      let insns =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Alloca _ when ISet.mem i.Instr.id alloca_regs -> None
            | Instr.Load (_, Value.Reg r) when ISet.mem r alloca_regs ->
              let v =
                match Hashtbl.find_opt cur r with
                | Some v -> v
                | None -> Value.cundef (List.assoc r alloca_ty)
              in
              Hashtbl.replace subst i.Instr.id v;
              None
            | Instr.Store (_, v, Value.Reg r) when ISet.mem r alloca_regs ->
              Hashtbl.replace cur r v;
              None
            | _ -> Some i)
          blk.Block.insns
      in
      Hashtbl.replace new_blocks label { blk with Block.insns };
      (* push incomings into successors' pending phis *)
      List.iter
        (fun succ ->
          match Hashtbl.find_opt phi_at succ with
          | Some tbl ->
            Hashtbl.iter
              (fun areg phireg ->
                let v =
                  match Hashtbl.find_opt cur areg with
                  | Some v -> v
                  | None -> Value.cundef (List.assoc areg alloca_ty)
                in
                let key = (succ, phireg) in
                let cell =
                  match Hashtbl.find_opt phi_incomings key with
                  | Some c -> c
                  | None ->
                    let c = ref [] in
                    Hashtbl.add phi_incomings key c;
                    c
                in
                cell := (label, v) :: !cell)
              tbl
          | None -> ())
        (Block.successors blk);
      (* recurse into dominator-tree children *)
      let child_env = Hashtbl.fold IMap.add cur IMap.empty in
      List.iter (fun child -> rename child child_env) (Dom.children dom label)
    in
    rename dom.Dom.entry IMap.empty;
    (* materialize blocks: prepend inserted phis, keep dominator order of
       the original block list; unreachable blocks are dropped *)
    let blocks =
      List.filter_map
        (fun (b : Block.t) ->
          match Hashtbl.find_opt new_blocks b.Block.label with
          | None -> None (* unreachable *)
          | Some nb ->
            let phis =
              match Hashtbl.find_opt phi_at b.Block.label with
              | None -> []
              | Some tbl ->
                Hashtbl.fold
                  (fun areg phireg acc ->
                    let ty = List.assoc areg alloca_ty in
                    let incs =
                      match Hashtbl.find_opt phi_incomings (b.Block.label, phireg) with
                      | Some c -> List.rev !c
                      | None -> []
                    in
                    (* any predecessor that never reached the rename walk is
                       unreachable; remaining preds must all be present *)
                    Instr.mk phireg (Instr.Phi (ty, incs)) :: acc)
                  tbl []
            in
            Some { nb with Block.insns = phis @ nb.Block.insns })
        f.Func.blocks
    in
    let resolve v =
      let rec go v seen =
        match v with
        | Value.Reg r when not (ISet.mem r seen) ->
          (match Hashtbl.find_opt subst r with
           | Some v' -> go v' (ISet.add r seen)
           | None -> v)
        | _ -> v
      in
      go v ISet.empty
    in
    let f = Func.with_blocks ~next_id:counter.Func.next f blocks in
    let f = Func.map_operands resolve f in
    f |> Utils.simplify_single_incoming_phis |> Utils.trivial_dce
  end

let pass =
  Pass.function_pass "mem2reg"
    ~description:"promote single-element non-escaping allocas to SSA registers"
    run_func
