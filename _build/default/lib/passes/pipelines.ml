(* Standard optimization pipelines.

   [oz_sequence] is the canonical -Oz pass list of LLVM-10 reconstructed
   from the paper: concatenating the 15 manual sub-sequences of Table II
   (which the authors state is a grouping of the full Oz pipeline) and
   dropping the barrier that the grouping duplicated between groups 4 and
   11 yields exactly 90 pass instances over 54 unique passes — the counts
   the paper quotes. *)

let manual_groups : string list list =
  [ (* 1 *)
    [ "ee-instrument"; "simplifycfg"; "sroa"; "early-cse"; "lower-expect";
      "forceattrs"; "inferattrs"; "mem2reg" ];
    (* 2 *)
    [ "ipsccp"; "called-value-propagation"; "attributor"; "globalopt" ];
    (* 3 *)
    [ "deadargelim"; "instcombine"; "simplifycfg" ];
    (* 4 — the trailing barrier is the grouping's duplicate of group 11's
       leading barrier; Table I places the single barrier in group 11 *)
    [ "prune-eh"; "inline"; "functionattrs"; "barrier" ];
    (* 5 *)
    [ "sroa"; "early-cse-memssa"; "speculative-execution"; "jump-threading";
      "correlated-propagation" ];
    (* 6 *)
    [ "simplifycfg"; "instcombine"; "tailcallelim"; "simplifycfg"; "reassociate" ];
    (* 7 *)
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "licm"; "loop-unswitch";
      "simplifycfg"; "instcombine" ];
    (* 8 *)
    [ "loop-simplify"; "lcssa"; "indvars"; "loop-idiom"; "loop-deletion";
      "loop-unroll" ];
    (* 9 *)
    [ "mldst-motion"; "gvn"; "memcpyopt"; "sccp"; "bdce"; "instcombine";
      "jump-threading"; "correlated-propagation"; "dse" ];
    (* 10 *)
    [ "loop-simplify"; "lcssa"; "licm"; "adce"; "simplifycfg"; "instcombine" ];
    (* 11 — the barrier here is the same barrier that closes group 4 *)
    [ "barrier"; "elim-avail-extern"; "rpo-functionattrs"; "globalopt";
      "globaldce"; "float2int"; "lower-constant-intrinsics" ];
    (* 12 *)
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "loop-distribute"; "loop-vectorize" ];
    (* 13 *)
    [ "loop-simplify"; "loop-load-elim"; "instcombine"; "simplifycfg"; "instcombine" ];
    (* 14 *)
    [ "loop-simplify"; "lcssa"; "loop-unroll"; "instcombine"; "loop-simplify";
      "lcssa"; "licm"; "alignment-from-assumptions" ];
    (* 15 *)
    [ "strip-dead-prototypes"; "globaldce"; "constmerge"; "loop-simplify";
      "lcssa"; "loop-sink"; "instsimplify"; "div-rem-pairs"; "simplifycfg" ] ]

(* Drop the duplicated barrier: group 4's trailing barrier is the same
   pass instance as group 11's leading one, and Table I shows it between
   instcombine and elim-avail-extern (i.e. at group 11's position). *)
let oz_sequence : string list =
  List.concat
    (List.mapi
       (fun idx group ->
         if idx = 3 then List.filter (fun p -> p <> "barrier") group else group)
       manual_groups)

let unique_passes : string list =
  List.sort_uniq String.compare oz_sequence

(* The speed pipelines run the same passes with speed-oriented thresholds;
   Os/Oz share the structure with size-oriented thresholds (this mirrors
   how LLVM derives the levels from one pipeline builder). *)
let o2_sequence : string list = oz_sequence
let o3_sequence : string list = oz_sequence
let os_sequence : string list = oz_sequence

let o1_sequence : string list =
  [ "ee-instrument"; "simplifycfg"; "sroa"; "early-cse"; "lower-expect";
    "forceattrs"; "inferattrs"; "mem2reg"; "instcombine"; "simplifycfg";
    "loop-simplify"; "lcssa"; "licm"; "sccp"; "adce"; "simplifycfg";
    "instsimplify" ]

type level = O0 | O1 | O2 | O3 | Os | Oz

let level_of_string = function
  | "O0" | "o0" -> Some O0
  | "O1" | "o1" -> Some O1
  | "O2" | "o2" -> Some O2
  | "O3" | "o3" -> Some O3
  | "Os" | "os" -> Some Os
  | "Oz" | "oz" -> Some Oz
  | _ -> None

let level_to_string = function
  | O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3" | Os -> "Os" | Oz -> "Oz"

let sequence_of = function
  | O0 -> []
  | O1 -> o1_sequence
  | O2 -> o2_sequence
  | O3 -> o3_sequence
  | Os -> os_sequence
  | Oz -> oz_sequence

let config_of = function
  | O0 -> Config.o0
  | O1 -> Config.o1
  | O2 -> Config.o2
  | O3 -> Config.o3
  | Os -> Config.os
  | Oz -> Config.oz
