(* -indvars: induction-variable simplification.

   For recognized counted loops, rewrites uses of the induction variable
   outside the loop to its computed final value (exit-value rewriting),
   which decouples the IV from the outside world and is the main enabler
   for -loop-deletion. Also canonicalizes the latch comparison of
   equality-testable counted loops to [ne], LLVM's canonical exit test. *)

open Posetrl_ir
module SSet = Set.Make (String)

let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let f = Loop_simplify.loop_simplify_func _cfg f in
  let li = Loops.compute f in
  List.fold_left
    (fun f (loop : Loops.loop) ->
      let li' = Loops.compute f in
      match
        List.find_opt (fun l -> String.equal l.Loops.header loop.Loops.header) li'.Loops.loops
      with
      | None -> f
      | Some loop ->
        (match Utils.analyze_counted_loop f loop with
         | None -> f
         | Some info ->
           let in_loop l = SSet.mem l loop.Loops.blocks in
           (* final values on loop exit *)
           let final_phi =
             Int64.add info.Utils.init
               (Int64.mul info.Utils.step (Int64.of_int (info.Utils.trip_count - 1)))
           in
           let final_next = Int64.add final_phi info.Utils.step in
           let rewrite_value v =
             match v with
             | Value.Reg r when r = info.Utils.phi_reg -> Value.cint info.Utils.ty final_phi
             | Value.Reg r when r = info.Utils.next_reg -> Value.cint info.Utils.ty final_next
             | _ -> v
           in
           (* replace uses outside the loop, including exit-phi entries on
              edges leaving the loop *)
           let blocks =
             List.map
               (fun (b : Block.t) ->
                 if in_loop b.Block.label then b
                 else
                   let fix (i : Instr.t) =
                     match i.Instr.op with
                     | Instr.Phi (ty, incs) ->
                       let incs =
                         List.map
                           (fun (l, v) -> if in_loop l then (l, rewrite_value v) else (l, v))
                           incs
                       in
                       { i with Instr.op = Instr.Phi (ty, incs) }
                     | op -> { i with Instr.op = Instr.map_operands rewrite_value op }
                   in
                   { (Block.map_insns fix b) with
                     Block.term = Instr.map_term_operands rewrite_value b.Block.term })
               f.Func.blocks
           in
           Func.with_blocks f blocks))
    f li.Loops.loops

let pass =
  Pass.function_pass "indvars"
    ~description:"induction-variable simplification and exit-value rewriting"
    run_func
