(* Interprocedural passes: -globalopt, -globaldce, -constmerge,
   -deadargelim, -strip-dead-prototypes, -elim-avail-extern,
   -called-value-propagation, -prune-eh. *)

open Posetrl_ir
module SSet = Set.Make (String)

(* names referenced anywhere in the module (operands of any instruction) *)
let referenced_globals (m : Modul.t) : SSet.t =
  List.fold_left
    (fun acc f ->
      if Func.is_declaration f then acc
      else
        Func.fold_insns
          (fun acc _ i ->
            let acc =
              match i.Instr.op with
              | Instr.Call (_, g, _) -> SSet.add g acc
              | _ -> acc
            in
            List.fold_left
              (fun acc v ->
                match v with Value.Global g -> SSet.add g acc | _ -> acc)
              acc
              (Instr.operands i.Instr.op))
          acc f)
    SSet.empty m.Modul.funcs

(* --- globaldce ------------------------------------------------------------

   Reachability from external roots; unreferenced internal functions and
   globals are deleted. *)

let run_globaldce (m : Modul.t) : Modul.t =
  let roots =
    List.filter_map
      (fun f ->
        if f.Func.linkage = Func.External && not (Func.is_declaration f) then
          Some f.Func.name
        else None)
      m.Modul.funcs
  in
  (* iterate reachability over the call/reference graph *)
  let reachable = Hashtbl.create 16 in
  let queue = Queue.create () in
  List.iter (fun r -> Queue.add r queue) roots;
  List.iter
    (fun (g : Global.t) ->
      if g.Global.linkage = Global.External then Queue.add g.Global.name queue)
    m.Modul.globals;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match Modul.find_func m name with
      | Some f when not (Func.is_declaration f) ->
        Func.iter_insns
          (fun _ i ->
            (match i.Instr.op with
             | Instr.Call (_, g, _) -> Queue.add g queue
             | _ -> ());
            List.iter
              (fun v -> match v with Value.Global g -> Queue.add g queue | _ -> ())
              (Instr.operands i.Instr.op))
          f
      | _ -> ()
    end
  done;
  { m with
    Modul.funcs =
      List.filter
        (fun f ->
          Hashtbl.mem reachable f.Func.name || f.Func.linkage = Func.External)
        m.Modul.funcs;
    Modul.globals =
      List.filter
        (fun (g : Global.t) ->
          Hashtbl.mem reachable g.Global.name || g.Global.linkage = Global.External)
        m.Modul.globals }

let globaldce_pass =
  Pass.mk "globaldce" ~description:"delete unreachable internal globals and functions"
    (fun _cfg m -> run_globaldce m)

(* --- globalopt ------------------------------------------------------------

   Internal globals that are never stored to become constants; loads of
   constant scalar globals fold to their initializer; internal globals
   that are never loaded lose their stores. *)

let run_globalopt (m : Modul.t) : Modul.t =
  let stored = Hashtbl.create 8 and loaded = Hashtbl.create 8 in
  let escaped = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if not (Func.is_declaration f) then
        Func.iter_insns
          (fun _ i ->
            match i.Instr.op with
            | Instr.Store (_, v, Value.Global g) ->
              Hashtbl.replace stored g ();
              (match v with
               | Value.Global g' -> Hashtbl.replace escaped g' ()
               | _ -> ())
            | Instr.Load (_, Value.Global g) -> Hashtbl.replace loaded g ()
            | op ->
              List.iter
                (fun v ->
                  match v with Value.Global g -> Hashtbl.replace escaped g () | _ -> ())
                (Instr.operands op))
          f)
    m.Modul.funcs;
  let never g tbl = not (Hashtbl.mem tbl g) in
  (* 1. constantize internal, never-stored, never-escaping globals *)
  let globals =
    List.map
      (fun (g : Global.t) ->
        if
          g.Global.linkage = Global.Internal
          && never g.Global.name stored
          && never g.Global.name escaped
          && Global.is_definition g
        then { g with Global.is_const = true }
        else g)
      m.Modul.globals
  in
  let m = { m with Modul.globals = globals } in
  (* 2. fold loads of constant single-element globals *)
  let const_scalar g =
    match Modul.find_global m g with
    | Some gl when gl.Global.is_const && gl.Global.elems = 1 ->
      (match gl.Global.init with
       | Some (Global.Ints [| v |]) -> Some (Value.cint gl.Global.elt_ty v)
       | Some (Global.Floats [| v |]) -> Some (Value.cfloat v)
       | Some Global.Zeroinit ->
         Some
           (if Types.is_float gl.Global.elt_ty then Value.cfloat 0.0
            else Value.cint gl.Global.elt_ty 0L)
       | _ -> None)
    | _ -> None
  in
  let fold_loads (f : Func.t) =
    let subst = Hashtbl.create 4 in
    Func.iter_insns
      (fun _ i ->
        match i.Instr.op with
        | Instr.Load (ty, Value.Global g) ->
          (match const_scalar g with
           | Some (Value.Const c as v) when Types.equal (Value.const_ty c) ty ->
             Hashtbl.replace subst i.Instr.id v
           | _ -> ())
        | _ -> ())
      f;
    if Hashtbl.length subst = 0 then f
    else begin
      let resolve v =
        match v with
        | Value.Reg r -> (match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
        | _ -> v
      in
      Func.map_blocks
        (Block.filter_insns (fun i -> not (Hashtbl.mem subst i.Instr.id)))
        f
      |> Func.map_operands resolve
    end
  in
  (* 3. drop stores to internal never-loaded, never-escaping globals *)
  let write_only g =
    match Modul.find_global m g with
    | Some gl ->
      gl.Global.linkage = Global.Internal
      && never g loaded && never g escaped
    | None -> false
  in
  let drop_stores (f : Func.t) =
    Func.map_blocks
      (Block.filter_insns (fun i ->
           match i.Instr.op with
           | Instr.Store (_, _, Value.Global g) -> not (write_only g)
           | _ -> true))
      f
  in
  Modul.map_defined (fun f -> f |> fold_loads |> drop_stores) m

let globalopt_pass =
  Pass.mk "globalopt" ~description:"constantize and shrink internal globals"
    (fun _cfg m -> run_globalopt m)

(* --- constmerge -----------------------------------------------------------

   Identical internal constant globals merge into one. *)

let run_constmerge (m : Modul.t) : Modul.t =
  let key (g : Global.t) = (g.Global.elt_ty, g.Global.elems, g.Global.init) in
  let canon : ((Types.t * int * Global.init option), string) Hashtbl.t = Hashtbl.create 8 in
  let replace : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let globals =
    List.filter
      (fun (g : Global.t) ->
        if g.Global.is_const && g.Global.linkage = Global.Internal
           && Global.is_definition g then begin
          match Hashtbl.find_opt canon (key g) with
          | Some keep ->
            Hashtbl.replace replace g.Global.name keep;
            false
          | None ->
            Hashtbl.replace canon (key g) g.Global.name;
            true
        end
        else true)
      m.Modul.globals
  in
  if Hashtbl.length replace = 0 then m
  else begin
    let subst v =
      match v with
      | Value.Global g ->
        (match Hashtbl.find_opt replace g with
         | Some keep -> Value.Global keep
         | None -> v)
      | _ -> v
    in
    { m with Modul.globals = globals }
    |> Modul.map_defined (Func.map_operands subst)
  end

let constmerge_pass =
  Pass.mk "constmerge" ~description:"merge identical internal constant globals"
    (fun _cfg m -> run_constmerge m)

(* functions whose address is taken as a value (not just called directly);
   signature changes on these would break indirect call sites *)
let address_taken_funcs (m : Modul.t) : SSet.t =
  List.fold_left
    (fun acc f ->
      if Func.is_declaration f then acc
      else
        Func.fold_insns
          (fun acc _ i ->
            List.fold_left
              (fun acc v ->
                match v with
                | Value.Global g when Option.is_some (Modul.find_func m g) ->
                  SSet.add g acc
                | _ -> acc)
              acc
              (Instr.operands i.Instr.op))
          acc f)
    SSet.empty m.Modul.funcs

(* --- deadargelim ----------------------------------------------------------

   Unused parameters of internal, non-address-taken functions are removed,
   and all call sites updated. *)

let run_deadargelim (m : Modul.t) : Modul.t =
  let address_taken = address_taken_funcs m in
  let victims =
    List.filter_map
      (fun f ->
        if Func.is_declaration f || f.Func.linkage = Func.External
           || SSet.mem f.Func.name address_taken then None
        else begin
          let uses = Func.use_counts f in
          let dead =
            List.mapi
              (fun idx (r, _) ->
                (idx, Option.value (Hashtbl.find_opt uses r) ~default:0 = 0))
              f.Func.params
            |> List.filter_map (fun (idx, d) -> if d then Some idx else None)
          in
          if dead = [] then None else Some (f.Func.name, dead)
        end)
      m.Modul.funcs
  in
  if victims = [] then m
  else begin
    let keep_args name args =
      match List.assoc_opt name victims with
      | None -> args
      | Some dead ->
        List.filteri (fun idx _ -> not (List.mem idx dead)) args
    in
    let m =
      Modul.map_defined
        (fun f ->
          Func.map_blocks
            (Block.map_insns (fun (i : Instr.t) ->
                 match i.Instr.op with
                 | Instr.Call (ty, g, args) when List.mem_assoc g victims ->
                   { i with Instr.op = Instr.Call (ty, g, keep_args g args) }
                 | _ -> i))
            f)
        m
    in
    Modul.map_funcs
      (fun f ->
        match List.assoc_opt f.Func.name victims with
        | None -> f
        | Some dead ->
          { f with
            Func.params =
              List.filteri (fun idx _ -> not (List.mem idx dead)) f.Func.params })
      m
  end

let deadargelim_pass =
  Pass.mk "deadargelim" ~description:"remove unused parameters of internal functions"
    (fun _cfg m -> run_deadargelim m)

(* --- strip-dead-prototypes -------------------------------------------------

   Unreferenced declarations disappear. *)

let run_strip (m : Modul.t) : Modul.t =
  let referenced = referenced_globals m in
  { m with
    Modul.funcs =
      List.filter
        (fun f -> (not (Func.is_declaration f)) || SSet.mem f.Func.name referenced)
        m.Modul.funcs }

let strip_pass =
  Pass.mk "strip-dead-prototypes" ~description:"drop unreferenced declarations"
    (fun _cfg m -> run_strip m)

(* --- elim-avail-extern ------------------------------------------------------

   Bodies of available-externally functions (inlining fodder that the
   linker provides elsewhere) are dropped after the inliner has run. *)

let run_elim_avail (m : Modul.t) : Modul.t =
  Modul.map_funcs
    (fun f ->
      if Func.has_attr "available_externally" f && not (Func.is_declaration f) then
        { f with Func.blocks = []; Func.linkage = Func.External }
      else f)
    m

let elim_avail_pass =
  Pass.mk "elim-avail-extern"
    ~description:"drop bodies of available-externally functions"
    (fun _cfg m -> run_elim_avail m)

(* --- called-value-propagation ------------------------------------------------

   Indirect calls whose callee value is a known single function become
   direct calls (through values and single-incoming phis/selects that
   resolve to one global function). *)

let run_cvp (m : Modul.t) : Modul.t =
  let resolve_func (f : Func.t) =
    let defs = Func.def_map f in
    let rec resolve v depth =
      if depth = 0 then None
      else
        match v with
        | Value.Global g when Option.is_some (Modul.find_func m g) -> Some g
        | Value.Reg r ->
          (match Hashtbl.find_opt defs r with
           | Some (_, { Instr.op = Instr.Phi (_, incs); _ }) ->
             let targets =
               List.map (fun (_, v) -> resolve v (depth - 1)) incs
             in
             (match targets with
              | Some g :: rest
                when List.for_all (function Some g' -> String.equal g g' | None -> false) rest ->
                Some g
              | _ -> None)
           | Some (_, { Instr.op = Instr.Select (_, _, a, b); _ }) ->
             (match resolve a (depth - 1), resolve b (depth - 1) with
              | Some ga, Some gb when String.equal ga gb -> Some ga
              | _ -> None)
           | _ -> None)
        | _ -> None
    in
    Func.map_blocks
      (Block.map_insns (fun (i : Instr.t) ->
           match i.Instr.op with
           | Instr.Callind (ty, callee, args) ->
             (match resolve callee 4 with
              | Some g ->
                (match Modul.find_func m g with
                 | Some target when List.length target.Func.params = List.length args ->
                   { i with Instr.op = Instr.Call (ty, g, args) }
                 | _ -> i)
              | None -> i)
           | _ -> i))
      f
  in
  Modul.map_defined resolve_func m

let cvp_pass =
  Pass.mk "called-value-propagation"
    ~description:"devirtualize indirect calls with a unique callee"
    (fun _cfg m -> run_cvp m)

(* --- prune-eh ---------------------------------------------------------------

   With no exceptions in MiniIR, the pass's surviving effect is interface
   shrinking: callees that cannot unwind get [nounwind], and calls to
   unreachable-only functions are followed by unreachable. We implement
   the attribute half. *)

let run_prune_eh (m : Modul.t) : Modul.t =
  Modul.map_defined (fun f -> Func.add_attr Attrs.nounwind f) m

let prune_eh_pass =
  Pass.mk "prune-eh" ~description:"mark functions nounwind (no EH in MiniIR)"
    (fun _cfg m -> run_prune_eh m)
