lib/passes/config.ml: Fmt
