lib/passes/instcombine.ml: Block Config Fold Func Hashtbl Instr Int64 List Pass Posetrl_ir Types Utils Value
