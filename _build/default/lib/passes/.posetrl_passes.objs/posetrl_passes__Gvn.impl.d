lib/passes/gvn.ml: Block Cfg Config Dom Func Hashtbl Instr List Pass Posetrl_ir Stdlib String Utils Value
