lib/passes/loop_vectorize.ml: Block Config Func Hashtbl Instr Int Int64 List Loop_simplify Loops Pass Posetrl_ir Set String Types Utils Value
