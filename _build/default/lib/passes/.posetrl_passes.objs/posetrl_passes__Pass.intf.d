lib/passes/pass.mli: Config Func Modul Posetrl_ir
