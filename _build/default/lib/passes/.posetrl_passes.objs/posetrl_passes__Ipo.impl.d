lib/passes/ipo.ml: Attrs Block Func Global Hashtbl Instr List Modul Option Pass Posetrl_ir Queue Set String Types Value
