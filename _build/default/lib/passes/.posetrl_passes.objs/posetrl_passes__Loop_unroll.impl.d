lib/passes/loop_unroll.ml: Array Block Clone Config Func Hashtbl Instr Int List Loop_simplify Loops Pass Posetrl_ir Printf Set String Utils Value
