lib/passes/loop_rotate.ml: Block Clone Config Func Instr Int List Loop_simplify Loops Option Pass Posetrl_ir Set String Utils Value
