lib/passes/loop_misc.ml: Block Clone Fun Func Hashtbl Instr Int List Loops Option Pass Posetrl_ir Printf Set Stdlib String Types Utils Value
