lib/passes/inline.ml: Attrs Block Clone Config Func Instr List Modul Pass Posetrl_ir Printf String Types Utils Value
