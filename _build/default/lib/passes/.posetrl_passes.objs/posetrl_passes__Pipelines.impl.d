lib/passes/pipelines.ml: Config List String
