lib/passes/sccp.ml: Block Fold Func Hashtbl Instr Int64 List Modul Option Pass Posetrl_ir Queue String Utils Value
