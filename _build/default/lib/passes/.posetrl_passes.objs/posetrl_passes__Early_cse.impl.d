lib/passes/early_cse.ml: Block Cfg Dom Func Hashtbl Instr List Map Pass Posetrl_ir Stdlib Types Utils Value
