lib/passes/licm.ml: Block Config Func Instr Int Int64 List Loop_simplify Loops Pass Posetrl_ir Set String Value
