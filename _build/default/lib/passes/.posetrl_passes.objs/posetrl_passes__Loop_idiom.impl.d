lib/passes/loop_idiom.ml: Block Config Func Hashtbl Instr Int64 List Loop_simplify Loops Pass Posetrl_ir Set String Types Utils Value
