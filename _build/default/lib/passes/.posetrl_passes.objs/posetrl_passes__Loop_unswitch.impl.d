lib/passes/loop_unswitch.ml: Block Clone Config Func Instr Int List Loop_simplify Loops Pass Posetrl_ir Set String Utils Value
