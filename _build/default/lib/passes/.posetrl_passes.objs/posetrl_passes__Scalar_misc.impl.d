lib/passes/scalar_misc.ml: Block Cfg Config Dom Float Fold Func Hashtbl Instr Int64 List Option Pass Posetrl_ir Set String Types Utils Value
