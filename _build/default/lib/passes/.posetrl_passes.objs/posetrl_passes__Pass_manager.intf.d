lib/passes/pass_manager.mli: Config Modul Pipelines Posetrl_ir
