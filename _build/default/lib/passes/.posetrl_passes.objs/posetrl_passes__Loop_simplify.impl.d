lib/passes/loop_simplify.ml: Block Cfg Config Func Hashtbl Instr Int List Loops Option Pass Posetrl_ir Set String Types Utils Value
