lib/passes/mem2reg.ml: Block Cfg Config Dom Func Hashtbl Instr Int List Map Option Pass Posetrl_ir Queue Set String Types Utils Value
