lib/passes/registry.mli: Pass
