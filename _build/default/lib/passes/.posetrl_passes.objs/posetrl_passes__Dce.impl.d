lib/passes/dce.ml: Block Config Func Hashtbl Instr Int Int64 List Option Pass Posetrl_ir Queue Set Types Utils Value
