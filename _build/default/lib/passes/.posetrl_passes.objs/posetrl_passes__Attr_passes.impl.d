lib/passes/attr_passes.ml: Attrs Config Func Instr List Loops Map Modul Option Pass Posetrl_ir String Utils
