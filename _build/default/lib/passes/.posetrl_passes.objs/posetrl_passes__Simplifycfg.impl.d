lib/passes/simplifycfg.ml: Block Cfg Config Func Instr List Option Pass Posetrl_ir String Utils Value
