lib/passes/pass_manager.ml: Config List Modul Pass Pipelines Posetrl_ir Registry Unix
