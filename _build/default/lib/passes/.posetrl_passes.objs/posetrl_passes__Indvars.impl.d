lib/passes/indvars.ml: Block Config Func Instr Int64 List Loop_simplify Loops Pass Posetrl_ir Set String Utils Value
