lib/passes/dse.ml: Block Config Func Hashtbl Instr Int List Pass Posetrl_ir Set Utils Value
