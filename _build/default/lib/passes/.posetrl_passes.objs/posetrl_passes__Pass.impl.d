lib/passes/pass.ml: Config List Modul Posetrl_ir Printf String Verifier
