lib/passes/memory_opts.ml: Block Cfg Config Func Instr Int64 List Pass Posetrl_ir Set String Types Value
