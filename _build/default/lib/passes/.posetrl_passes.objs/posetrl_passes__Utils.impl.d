lib/passes/utils.ml: Block Cfg Fold Func Hashtbl Instr Int64 List Loops Map Option Posetrl_ir Printf Set String Types Value
