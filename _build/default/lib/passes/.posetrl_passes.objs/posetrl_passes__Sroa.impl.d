lib/passes/sroa.ml: Block Config Func Hashtbl Instr Int Int64 List Map Mem2reg Pass Posetrl_ir Types Value
