lib/passes/loop_deletion.ml: Block Clone Config Func Instr Int List Loop_simplify Loops Option Pass Posetrl_ir Set String Utils Value
