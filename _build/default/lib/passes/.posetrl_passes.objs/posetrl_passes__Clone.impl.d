lib/passes/clone.ml: Block Func Hashtbl Instr List Posetrl_ir Value
