(* Assorted scalar passes from the Oz pipeline:
   -jump-threading, -correlated-propagation, -speculative-execution,
   -tailcallelim, -reassociate, -float2int, -lower-expect,
   -lower-constant-intrinsics, -div-rem-pairs. *)

open Posetrl_ir
module SSet = Set.Make (String)

(* --- jump-threading ------------------------------------------------------

   When a block's conditional branch is decided by a phi of constants,
   each predecessor contributing a constant can jump directly to the
   decided target, skipping the test. We thread the common shape: a block
   containing only the phi (plus other phis) and a cbr on it. *)

let thread_one (f : Func.t) : (Func.t * bool) =
  let cfg = Cfg.of_func f in
  let candidate =
    List.find_map
      (fun (b : Block.t) ->
        match b.Block.term with
        | Instr.Cbr (Value.Reg c, t, e) when not (String.equal t e) ->
          let phis, rest = Block.split_phis b in
          if rest <> [] then None
          else
            List.find_map
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Phi (Types.I1, incs) when i.Instr.id = c ->
                  let const_preds =
                    List.filter_map
                      (fun (l, v) ->
                        match v with
                        | Value.Const (Value.Cint (Types.I1, k)) ->
                          Some (l, Int64.equal k 1L)
                        | _ -> None)
                      incs
                  in
                  if const_preds = [] then None else Some (b, t, e, const_preds, phis)
                | _ -> None)
              phis
        | _ -> None)
      f.Func.blocks
  in
  match candidate with
  | None -> (f, false)
  | Some (b, t_lbl, e_lbl, const_preds, phis) ->
    (* a predecessor can only be retargeted when the destination's phis can
       absorb the new edge: destination phi entries from [b] reference
       either constants or [b]'s phis, which we resolve per-pred *)
    let label = b.Block.label in
    let dest_of k = if k then t_lbl else e_lbl in
    let resolvable pred k =
      let dest = Func.find_block_exn f (dest_of k) in
      (* threading may not create a duplicate incoming edge *)
      let already_pred =
        List.exists (String.equal pred) (Cfg.preds cfg (dest_of k))
      in
      (not already_pred)
      && List.for_all
           (fun (i : Instr.t) ->
             match i.Instr.op with
             | Instr.Phi (_, incs) ->
               (match List.assoc_opt label incs with
                | None -> true
                | Some (Value.Const _) -> true
                | Some (Value.Reg r) ->
                  List.exists (fun (p : Instr.t) -> p.Instr.id = r) phis
                | Some _ -> true)
             | _ -> true)
           dest.Block.insns
    in
    let threadable = List.filter (fun (p, k) -> resolvable p k) const_preds in
    if threadable = [] then (f, false)
    else begin
      (* resolve [b]'s phi values for a given pred *)
      let phi_value_for pred (r : int) =
        List.find_map
          (fun (i : Instr.t) ->
            if i.Instr.id = r then
              match i.Instr.op with
              | Instr.Phi (_, incs) -> List.assoc_opt pred incs
              | _ -> None
            else None)
          phis
      in
      let blocks =
        List.map
          (fun (blk : Block.t) ->
            (* retarget threaded predecessors *)
            let blk =
              match List.find_opt (fun (p, _) -> String.equal p blk.Block.label) threadable with
              | Some (_, k) ->
                { blk with
                  Block.term =
                    Instr.map_term_labels
                      (fun l -> if String.equal l label then dest_of k else l)
                      blk.Block.term }
              | None -> blk
            in
            (* destinations absorb new incoming edges *)
            let new_edges_into =
              List.filter (fun (_, k) -> String.equal (dest_of k) blk.Block.label) threadable
            in
            let blk =
              if new_edges_into = [] then blk
              else
                Block.map_insns
                  (fun (i : Instr.t) ->
                    match i.Instr.op with
                    | Instr.Phi (ty, incs) ->
                      let base_v = List.assoc_opt label incs in
                      let extra =
                        List.filter_map
                          (fun (pred, _) ->
                            match base_v with
                            | None -> None
                            | Some (Value.Reg r) ->
                              (match phi_value_for pred r with
                               | Some v -> Some (pred, v)
                               | None -> Some (pred, Value.Reg r))
                            | Some v -> Some (pred, v))
                          new_edges_into
                      in
                      { i with Instr.op = Instr.Phi (ty, incs @ extra) }
                    | _ -> i)
                  blk
            in
            (* [b] itself drops the threaded predecessors from its phis *)
            if String.equal blk.Block.label label then
              List.fold_left
                (fun blk (pred, _) -> Block.remove_phi_pred ~pred blk)
                blk threadable
            else blk)
          f.Func.blocks
      in
      let f = Func.with_blocks f blocks in
      (Utils.remove_unreachable_blocks f |> Utils.simplify_single_incoming_phis, true)
    end

let jump_threading_pass =
  Pass.function_pass "jump-threading"
    ~description:"thread edges whose branch outcome the predecessor determines"
    (fun _cfg f ->
      Utils.to_fixed_point ~max_iters:8 thread_one f |> Utils.trivial_dce)

(* --- correlated-propagation ----------------------------------------------

   Uses branch conditions to refine values in dominated regions: inside
   the true successor of [cbr (icmp eq x, C)], x is C; a re-test of the
   same condition register folds to its known truth value. *)

let correlated_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let rewrites = ref [] in
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Cbr (Value.Reg c, t, e) when not (String.equal t e) ->
        let defs = Func.def_map f in
        let add_region succ facts =
          (* the facts hold in blocks dominated by succ, provided succ has
             the branch as only entry *)
          match Cfg.preds cfg succ with
          | [ p ] when String.equal p b.Block.label ->
            List.iter (fun fact -> rewrites := (succ, fact) :: !rewrites) facts
          | _ -> ()
        in
        let eq_fact =
          match Hashtbl.find_opt defs c with
          | Some (_, { Instr.op = Instr.Icmp (Instr.Eq, _, Value.Reg x, (Value.Const _ as k)); _ }) ->
            Some (x, k)
          | _ -> None
        in
        add_region t
          ((c, Value.ci1 true) :: (match eq_fact with Some f' -> [ f' ] | None -> []));
        add_region e [ (c, Value.ci1 false) ]
      | _ -> ())
    f.Func.blocks;
  if !rewrites = [] then f
  else begin
    let blocks =
      List.map
        (fun (blk : Block.t) ->
          (* apply facts whose region dominates this block *)
          let applicable =
            List.filter (fun (root, _) -> Dom.dominates dom root blk.Block.label) !rewrites
          in
          if applicable = [] then blk
          else
            let fix v =
              match v with
              | Value.Reg r ->
                (match List.find_opt (fun (_, (fr, _)) -> fr = r) applicable with
                 | Some (_, (_, v')) -> v'
                 | None -> v)
              | _ -> v
            in
            (* phi operands flow along edges, not within the block: skip *)
            let fix_insn (i : Instr.t) =
              match i.Instr.op with
              | Instr.Phi _ -> i
              | op -> { i with Instr.op = Instr.map_operands fix op }
            in
            { (Block.map_insns fix_insn blk) with
              Block.term = Instr.map_term_operands fix blk.Block.term })
        f.Func.blocks
    in
    Func.with_blocks f blocks |> Utils.fold_terminators |> Utils.trivial_dce
  end

let correlated_pass =
  Pass.function_pass "correlated-propagation"
    ~description:"propagate values implied by dominating branch conditions"
    correlated_func

(* --- speculative-execution -----------------------------------------------

   Hoists a handful of cheap pure instructions from both successors of a
   conditional branch into the branching block, exposing if-conversion
   opportunities for simplifycfg. *)

let speculative_func (cfg_opt : Config.t) (f : Func.t) : Func.t =
  let budget = cfg_opt.Config.speculate_max_insns in
  if budget = 0 then f
  else begin
    let cfg = Cfg.of_func f in
    let single_pred l = match Cfg.preds cfg l with [ _ ] -> true | _ -> false in
    let blocks_tbl = Hashtbl.create 16 in
    List.iter (fun (b : Block.t) -> Hashtbl.replace blocks_tbl b.Block.label b) f.Func.blocks;
    let hoisted : (string, Instr.t list) Hashtbl.t = Hashtbl.create 4 in
    let cleared : (string, unit) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun (b : Block.t) ->
        match b.Block.term with
        | Instr.Cbr (_, t, e) when not (String.equal t e) ->
          let try_hoist lbl =
            if single_pred lbl && not (Hashtbl.mem cleared lbl) then begin
              let succ = Hashtbl.find blocks_tbl lbl in
              let phis, rest = Block.split_phis succ in
              let cheap (i : Instr.t) =
                Instr.is_pure i.Instr.op
                &&
                match i.Instr.op with
                | Instr.Binop ((Instr.Sdiv | Instr.Udiv | Instr.Srem | Instr.Urem), _, _, _) ->
                  false
                | _ -> true
              in
              if phis = [] && List.length rest <= budget && List.for_all cheap rest
                 && rest <> [] then begin
                let cur = Option.value (Hashtbl.find_opt hoisted b.Block.label) ~default:[] in
                Hashtbl.replace hoisted b.Block.label (cur @ rest);
                Hashtbl.replace cleared lbl ()
              end
            end
          in
          try_hoist t;
          try_hoist e
        | _ -> ())
      f.Func.blocks;
    if Hashtbl.length hoisted = 0 then f
    else
      Func.map_blocks
        (fun (b : Block.t) ->
          let b =
            if Hashtbl.mem cleared b.Block.label then
              Block.filter_insns (fun i -> Instr.is_phi i.Instr.op) b
            else b
          in
          match Hashtbl.find_opt hoisted b.Block.label with
          | Some insns -> { b with Block.insns = b.Block.insns @ insns }
          | None -> b)
        f
  end

let speculative_pass =
  Pass.function_pass "speculative-execution"
    ~description:"hoist cheap instructions above conditional branches"
    speculative_func

(* --- tailcallelim --------------------------------------------------------

   Rewrites self-recursive tail calls into a loop: parameters become phis
   in a new loop header and each `ret (call self)` becomes a backedge. *)

let tailcall_func (_cfg : Config.t) (f : Func.t) : Func.t =
  if Func.is_declaration f then f
  else begin
    (* find tail sites: call to self immediately followed by ret of the
       call's result (or both void) *)
    let tail_sites =
      List.filter_map
        (fun (b : Block.t) ->
          match List.rev b.Block.insns, b.Block.term with
          | ( { Instr.id; Instr.op = Instr.Call (ty, g, args) } :: _,
              Instr.Ret (Some (_, Value.Reg r)) )
            when String.equal g f.Func.name && r = id && Types.equal ty f.Func.ret ->
            Some (b.Block.label, args)
          | ( { Instr.id = _; Instr.op = Instr.Call (_, g, args) } :: _,
              Instr.Ret None )
            when String.equal g f.Func.name ->
            Some (b.Block.label, args)
          | _ -> None)
        f.Func.blocks
    in
    if tail_sites = [] then f
    else begin
      let counter = Func.fresh_counter f in
      let entry = Func.entry f in
      let header_lbl = Utils.fresh_label f "tailrecurse" in
      let new_entry_lbl = Utils.fresh_label f "tailentry" in
      (* new phis: one per parameter *)
      let phis =
        List.map
          (fun (p, ty) ->
            let r = Func.fresh counter in
            (p, ty, r))
          f.Func.params
      in
      let site_labels = List.map fst tail_sites in
      let phi_insns =
        List.mapi
          (fun idx (p, ty, r) ->
            let incs =
              (new_entry_lbl, Value.Reg p)
              :: List.map
                   (fun (lbl, args) -> (lbl, List.nth args idx))
                   tail_sites
            in
            Instr.mk r (Instr.Phi (ty, incs)))
          phis
      in
      (* substitution: parameter -> phi inside the old body *)
      let subst v =
        match v with
        | Value.Reg r ->
          (match List.find_opt (fun (p, _, _) -> p = r) phis with
           | Some (_, _, nr) -> Value.Reg nr
           | None -> v)
        | _ -> v
      in
      let rewrite_block (b : Block.t) =
        let b = Block.map_operands subst b in
        if List.exists (String.equal b.Block.label) site_labels then
          (* drop the tail call and loop back *)
          let insns =
            match List.rev b.Block.insns with
            | { Instr.op = Instr.Call _; _ } :: rest -> List.rev rest
            | insns -> List.rev insns
          in
          { b with Block.insns; Block.term = Instr.Br header_lbl }
        else b
      in
      let old_blocks = List.map rewrite_block f.Func.blocks in
      let header = Block.mk header_lbl phi_insns (Instr.Br entry.Block.label) in
      (* the old entry may have phis only if it had predecessors; in MiniIR
         the entry has no preds, so it is safe to branch into it; but it
         now has two preds (header) — still fine since the header is the
         only one *)
      let new_entry = Block.mk new_entry_lbl [] (Instr.Br header_lbl) in
      let f' =
        Func.with_blocks ~next_id:counter.Func.next f
          (new_entry :: header :: old_blocks)
      in
      (* tail sites now feed the header phis; phi incomings referencing the
         parameters were already substituted by rewrite_block's
         map_operands — but the phi_insns themselves must not substitute
         their new_entry incoming (they reference the raw parameter) *)
      f'
    end
  end

let tailcallelim_pass =
  Pass.function_pass "tailcallelim"
    ~description:"turn self-recursive tail calls into loops" tailcall_func

(* --- reassociate ----------------------------------------------------------

   Flattens single-use chains of one commutative-associative operator,
   reorders operands so constants meet (and fold), and rebuilds a
   left-leaning chain. *)

let reassociate_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let uses = Func.use_counts f in
  let single_use r = Option.value (Hashtbl.find_opt uses r) ~default:0 = 1 in
  let counter = Func.fresh_counter f in
  let rewrite_block (b : Block.t) =
    let defs = Hashtbl.create 16 in
    List.iter
      (fun (i : Instr.t) ->
        if i.Instr.id >= 0 then Hashtbl.replace defs i.Instr.id i.Instr.op)
      b.Block.insns;
    let absorbed = Hashtbl.create 8 in
    (* flatten the operator chain rooted at a binop *)
    let rec leaves bop ty v =
      match v with
      | Value.Reg r when single_use r ->
        (match Hashtbl.find_opt defs r with
         | Some (Instr.Binop (b', ty', x, y)) when b' = bop && Types.equal ty ty' ->
           Hashtbl.replace absorbed r ();
           leaves bop ty x @ leaves bop ty y
         | _ -> [ v ])
      | v -> [ v ]
    in
    let rewrite (i : Instr.t) =
      match i.Instr.op with
      | Instr.Binop (bop, ty, x, y)
        when Instr.is_commutative bop && Types.is_integer ty
             && not (Hashtbl.mem absorbed i.Instr.id) ->
        let ls = leaves bop ty x @ leaves bop ty y in
        if List.length ls <= 2 then [ i ]
        else begin
          (* fold all constant leaves together *)
          let consts, vars =
            List.partition (fun v -> Value.is_const v) ls
          in
          let ident =
            match bop with
            | Instr.Add | Instr.Or | Instr.Xor -> 0L
            | Instr.Mul -> 1L
            | Instr.And -> -1L
            | _ -> 0L
          in
          let cval =
            List.fold_left
              (fun acc v ->
                match v with
                | Value.Const (Value.Cint (_, k)) ->
                  Option.value (Fold.eval_binop bop ty acc k) ~default:acc
                | _ -> acc)
              ident consts
          in
          let operands =
            vars @ (if Int64.equal cval ident && vars <> [] then [] else [ Value.cint ty cval ])
          in
          match operands with
          | [] -> [ { i with Instr.op = Instr.Binop (bop, ty, Value.cint ty cval, Value.cint ty ident) } ]
          | [ v ] ->
            (* chain collapsed to a single value: keep as v op ident *)
            [ { i with Instr.op = Instr.Binop (bop, ty, v, Value.cint ty ident) } ]
          | v0 :: rest ->
            (* left-leaning rebuild; the last op keeps the original id *)
            let rec build acc = function
              | [] -> assert false
              | [ last ] -> [ Instr.mk i.Instr.id (Instr.Binop (bop, ty, acc, last)) ]
              | v :: tl ->
                let r = Func.fresh counter in
                Instr.mk r (Instr.Binop (bop, ty, acc, v)) :: build (Value.Reg r) tl
            in
            build v0 rest
        end
      | _ -> [ i ]
    in
    let insns =
      List.concat_map
        (fun (i : Instr.t) ->
          if Hashtbl.mem absorbed i.Instr.id then [] else rewrite i)
        b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  Func.commit_counter f counter |> Utils.trivial_dce

let reassociate_pass =
  Pass.function_pass "reassociate"
    ~description:"reassociate commutative chains to expose constant folding"
    reassociate_func

(* --- float2int ------------------------------------------------------------

   Demotes float arithmetic whose inputs come from integers and whose only
   consumer converts back to integer: fptosi(fop(sitofp a, sitofp b)). *)

let float2int_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let defs = Hashtbl.create 16 in
  Func.iter_insns
    (fun _ i -> if i.Instr.id >= 0 then Hashtbl.replace defs i.Instr.id i.Instr.op)
    f;
  let as_int v =
    match v with
    | Value.Reg r ->
      (match Hashtbl.find_opt defs r with
       | Some (Instr.Cast (Instr.Sitofp, from_ty, _, x)) -> Some (from_ty, x)
       | _ -> None)
    | Value.Const (Value.Cfloat fl) when Float.is_integer fl && Float.abs fl < 1e15 ->
      Some (Types.I64, Value.ci64 (int_of_float fl))
    | _ -> None
  in
  let int_op = function
    | Instr.Fadd -> Some Instr.Add
    | Instr.Fsub -> Some Instr.Sub
    | Instr.Fmul -> Some Instr.Mul
    | _ -> None
  in
  let rewrite (i : Instr.t) =
    match i.Instr.op with
    | Instr.Cast (Instr.Fptosi, _, to_ty, Value.Reg r) ->
      (match Hashtbl.find_opt defs r with
       | Some (Instr.Binop (fop, Types.F64, a, b)) ->
         (match int_op fop, as_int a, as_int b with
          | Some iop, Some (ta, ia), Some (_, ib) when Types.equal ta to_ty ->
            { i with Instr.op = Instr.Binop (iop, to_ty, ia, ib) }
          | _ -> i)
       | _ -> i)
    | _ -> i
  in
  Func.map_blocks (Block.map_insns rewrite) f |> Utils.trivial_dce

let float2int_pass =
  Pass.function_pass "float2int"
    ~description:"demote int-to-int float arithmetic back to integers"
    float2int_func

(* --- lower-expect ---------------------------------------------------------

   [expect v, e] conveys branch-probability information; after lowering,
   the value is just [v]. We keep a function attribute marking that
   expectation data was seen (the MCA block-frequency model gives such
   functions slightly better static predictions). *)

let lower_expect_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let had = ref false in
  let subst = Hashtbl.create 4 in
  Func.iter_insns
    (fun _ i ->
      match i.Instr.op with
      | Instr.Expect (_, v, _) ->
        had := true;
        Hashtbl.replace subst i.Instr.id v
      | _ -> ())
    f;
  if not !had then f
  else begin
    let resolve v =
      match v with
      | Value.Reg r -> (match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
      | _ -> v
    in
    let f =
      Func.map_blocks
        (Block.filter_insns (fun i ->
             match i.Instr.op with Instr.Expect _ -> false | _ -> true))
        f
    in
    Func.map_operands resolve f |> Func.add_attr "branch-hints"
  end

let lower_expect_pass =
  Pass.function_pass "lower-expect"
    ~description:"lower expect intrinsics to their value" lower_expect_func

(* --- lower-constant-intrinsics ---------------------------------------------

   Folds [is.constant] and [objectsize] intrinsics to constants. *)

let lower_ci_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let subst = Hashtbl.create 4 in
  Func.iter_insns
    (fun _ i ->
      match i.Instr.op with
      | Instr.Intrinsic ("is.constant", _, [ v ]) ->
        Hashtbl.replace subst i.Instr.id (Value.ci1 (Value.is_const v))
      | Instr.Intrinsic ("objectsize", ty, _) ->
        (* unknown at compile time: canonical -1 *)
        Hashtbl.replace subst i.Instr.id (Value.cint ty (-1L))
      | _ -> ())
    f;
  if Hashtbl.length subst = 0 then f
  else begin
    let resolve v =
      match v with
      | Value.Reg r -> (match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
      | _ -> v
    in
    let f =
      Func.map_blocks
        (Block.filter_insns (fun i -> not (Hashtbl.mem subst i.Instr.id)))
        f
    in
    Func.map_operands resolve f
  end

let lower_ci_pass =
  Pass.function_pass "lower-constant-intrinsics"
    ~description:"fold is.constant and objectsize intrinsics" lower_ci_func

(* --- div-rem-pairs ---------------------------------------------------------

   When both x/y and x%y are computed, derive the remainder from the
   quotient (r = x - (x/y)*y), trading an expensive division for a
   multiply and subtract. *)

let div_rem_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let counter = Func.fresh_counter f in
  let rewrite_block (b : Block.t) =
    (* record divisions seen earlier in this block *)
    let divs : ((Instr.binop * Types.t * Value.t * Value.t) * int) list ref = ref [] in
    let insns =
      List.concat_map
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Binop ((Instr.Sdiv | Instr.Udiv) as d, ty, x, y) ->
            divs := ((d, ty, x, y), i.Instr.id) :: !divs;
            [ i ]
          | Instr.Binop ((Instr.Srem | Instr.Urem) as rop, ty, x, y) ->
            let want = if rop = Instr.Srem then Instr.Sdiv else Instr.Udiv in
            (match List.assoc_opt (want, ty, x, y) !divs with
             | Some q ->
               let m = Func.fresh counter in
               [ Instr.mk m (Instr.Binop (Instr.Mul, ty, Value.Reg q, y));
                 Instr.mk i.Instr.id (Instr.Binop (Instr.Sub, ty, x, Value.Reg m)) ]
             | None -> [ i ])
          | _ -> [ i ])
        b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  Func.commit_counter f counter

let div_rem_pass =
  Pass.function_pass "div-rem-pairs"
    ~description:"compute remainders from existing quotients" div_rem_func
