(* -inline: bottom-up function inlining.

   Call sites whose callee's estimated cost is under the pipeline
   threshold are expanded in place: the callee body is cloned into the
   caller, parameters become the argument values, the call block is split
   at the call site, and every callee return branches to the continuation
   block (merging return values through a phi). Inlining is the prime
   mover of both the speed gains and the size growth the action
   sub-sequences trade against each other. *)

open Posetrl_ir

let caller_growth_limit = 4000

let never_inline (callee : Func.t) =
  Func.is_declaration callee || Func.has_attr Attrs.noinline callee

let should_inline (cfg : Config.t) ~(caller : Func.t) (callee : Func.t) =
  (not (never_inline callee))
  && (not (String.equal caller.Func.name callee.Func.name))
  && (Func.has_attr Attrs.always_inline callee
     ||
     let cost = Utils.func_cost callee in
     let bonus = if Func.has_attr Attrs.inline_hint callee then 2 else 1 in
     cost <= cfg.Config.inline_threshold * bonus)

(* Inline one qualifying call site in [caller]; [None] if there is none. *)
let inline_one (cfg : Config.t) (m : Modul.t) (caller : Func.t) : Func.t option =
  if Utils.func_cost caller > caller_growth_limit then None
  else
    let site =
      List.find_map
        (fun (b : Block.t) ->
          let rec scan before = function
            | [] -> None
            | ({ Instr.op = Instr.Call (ty, g, args); _ } as i) :: after ->
              (match Modul.find_func m g with
               | Some callee when should_inline cfg ~caller callee ->
                 Some (b, List.rev before, i, ty, args, callee, after)
               | _ -> scan (i :: before) after)
            | i :: after -> scan (i :: before) after
          in
          scan [] b.Block.insns)
        caller.Func.blocks
    in
    match site with
    | None -> None
    | Some (blk, before, call_insn, ret_ty, args, callee, after) ->
      let counter = Func.fresh_counter caller in
      let cont_lbl = Utils.fresh_label caller (blk.Block.label ^ ".cont") in
      let prefix = Printf.sprintf "%s.i%d." callee.Func.name counter.Func.next in
      let callee_label l =
        List.exists (fun (b : Block.t) -> String.equal b.Block.label l) callee.Func.blocks
      in
      let rename l = if callee_label l then prefix ^ l else l in
      let init_map =
        List.map2 (fun (p, _) arg -> (p, arg)) callee.Func.params args
      in
      let cloned, _find =
        Clone.clone_blocks ~counter ~rename_label:rename ~init_map callee.Func.blocks
      in
      (* redirect callee returns to the continuation block *)
      let ret_sites = ref [] in
      let cloned =
        List.map
          (fun (b : Block.t) ->
            match b.Block.term with
            | Instr.Ret (Some (_, v)) ->
              ret_sites := (b.Block.label, v) :: !ret_sites;
              { b with Block.term = Instr.Br cont_lbl }
            | Instr.Ret None ->
              ret_sites := (b.Block.label, Value.cundef Types.Void) :: !ret_sites;
              { b with Block.term = Instr.Br cont_lbl }
            | _ -> b)
          cloned
      in
      let entry_lbl = rename (Func.entry callee).Block.label in
      (* if blk was its own predecessor, that backedge now leaves from the
         continuation block, so blk's own phis must be re-labelled too *)
      let new_blk =
        Block.rename_phi_pred ~from:blk.Block.label ~to_:cont_lbl
          (Block.mk blk.Block.label before (Instr.Br entry_lbl))
      in
      let has_result = call_insn.Instr.id >= 0 in
      let cont_phis =
        if has_result && !ret_sites <> [] then
          [ Instr.mk call_insn.Instr.id
              (Instr.Phi (ret_ty, List.rev !ret_sites)) ]
        else []
      in
      let cont_blk = Block.mk cont_lbl (cont_phis @ after) blk.Block.term in
      let blocks =
        List.concat_map
          (fun (b : Block.t) ->
            if String.equal b.Block.label blk.Block.label then
              [ new_blk; cont_blk ] @ cloned
            else
              (* successors of the original block now see cont as pred *)
              [ Block.rename_phi_pred ~from:blk.Block.label ~to_:cont_lbl b ])
          caller.Func.blocks
      in
      let f = Func.with_blocks ~next_id:counter.Func.next caller blocks in
      (* a never-returning callee leaves the result undefined *)
      let f =
        if has_result && !ret_sites = [] then
          Func.replace_reg call_insn.Instr.id (Value.cundef ret_ty) f
          |> Utils.remove_unreachable_blocks
        else f
      in
      Some f

let max_sites_per_run = 24

let run (cfg : Config.t) (m : Modul.t) : Modul.t =
  if cfg.Config.inline_threshold <= 0 then m
  else begin
    (* bottom-up: handle callees before callers so costs reflect the final
       shape; approximate post-order by iterating twice *)
    let inline_into m (f : Func.t) =
      if Func.is_declaration f then (m, f)
      else begin
        let rec go f n =
          if n = 0 then f
          else
            match inline_one cfg m f with
            | Some f' -> go f' (n - 1)
            | None -> f
        in
        let f' = go f max_sites_per_run in
        (Modul.replace_func m f', f')
      end
    in
    List.fold_left
      (fun m name ->
        match Modul.find_func m name with
        | Some f -> fst (inline_into m f)
        | None -> m)
      m
      (List.map (fun f -> f.Func.name) m.Modul.funcs)
  end

let pass =
  Pass.mk "inline" ~description:"threshold-based bottom-up function inlining"
    (fun cfg m -> run cfg m)
