(* Memory optimization passes: -memcpyopt and -mldst-motion. *)

open Posetrl_ir
module SSet = Set.Make (String)

(* --- memcpyopt ------------------------------------------------------------

   Expands small constant-length memcpys into load/store pairs (letting
   the scalar pipeline optimize through them), and elides self-copies. *)

let memcpy_expand_limit = 16 (* bytes *)

let run_memcpyopt (_cfg : Config.t) (f : Func.t) : Func.t =
  let counter = Func.fresh_counter f in
  let rewrite (i : Instr.t) : Instr.t list =
    match i.Instr.op with
    | Instr.Memcpy (d, s, _) when Value.equal d s -> []
    | Instr.Memcpy (_, _, Value.Const (Value.Cint (_, 0L))) -> []
    | Instr.Memcpy (d, s, Value.Const (Value.Cint (_, n)))
      when Int64.compare n (Int64.of_int memcpy_expand_limit) <= 0
           && Int64.compare n 0L > 0
           && Int64.rem n 8L = 0L ->
      (* expand to i64 load/store pairs *)
      let words = Int64.to_int n / 8 in
      List.concat
        (List.init words (fun k ->
             let sp = Func.fresh counter in
             let dp = Func.fresh counter in
             let v = Func.fresh counter in
             [ Instr.mk sp (Instr.Gep (Types.I64, s, Value.ci64 k));
               Instr.mk v (Instr.Load (Types.I64, Value.Reg sp));
               Instr.mk dp (Instr.Gep (Types.I64, d, Value.ci64 k));
               Instr.mk Instr.no_result (Instr.Store (Types.I64, Value.Reg v, Value.Reg dp)) ]))
    | _ -> [ i ]
  in
  let f =
    Func.map_blocks
      (fun b -> { b with Block.insns = List.concat_map rewrite b.Block.insns })
      f
  in
  Func.commit_counter f counter

let memcpyopt_pass =
  Pass.function_pass "memcpyopt"
    ~description:"expand and elide memcpy operations" run_memcpyopt

(* --- mldst-motion ----------------------------------------------------------

   Merged load/store motion: when both arms of a diamond store to the same
   pointer, the store sinks into the join block with a phi selecting the
   value — removing one store from the encoded program. *)

let run_mldst (_cfg : Config.t) (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let single_pred l = match Cfg.preds cfg l with [ _ ] -> true | _ -> false in
  let find_diamond () =
    List.find_map
      (fun (head : Block.t) ->
        match head.Block.term with
        | Instr.Cbr (_, t, e) when not (String.equal t e) ->
          let tb = Func.find_block_exn f t and eb = Func.find_block_exn f e in
          (match tb.Block.term, eb.Block.term with
           | Instr.Br jt, Instr.Br je
             when String.equal jt je && single_pred t && single_pred e
                  && (match List.sort String.compare (Cfg.preds cfg jt) with
                      | [ a; b ] ->
                        String.equal a (min t e) && String.equal b (max t e)
                      | _ -> false) ->
             (* last instruction of each arm is a store to the same ptr *)
             (match List.rev tb.Block.insns, List.rev eb.Block.insns with
              | ( { Instr.op = Instr.Store (ty1, v1, p1); _ } :: _,
                  { Instr.op = Instr.Store (ty2, v2, p2); _ } :: _ )
                when Types.equal ty1 ty2 && Value.equal p1 p2 ->
                Some (tb, eb, jt, ty1, v1, v2, p1)
              | _ -> None)
           | _ -> None)
        | _ -> None)
      f.Func.blocks
  in
  match find_diamond () with
  | None -> f
  | Some (tb, eb, join, ty, v1, v2, ptr) ->
    let counter = Func.fresh_counter f in
    let phi_reg = Func.fresh counter in
    let drop_last_store (b : Block.t) =
      match List.rev b.Block.insns with
      | { Instr.op = Instr.Store _; _ } :: rest -> { b with Block.insns = List.rev rest }
      | _ -> b
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          if String.equal b.Block.label tb.Block.label then drop_last_store b
          else if String.equal b.Block.label eb.Block.label then drop_last_store b
          else if String.equal b.Block.label join then begin
            let phis, rest = Block.split_phis b in
            let phi =
              Instr.mk phi_reg
                (Instr.Phi (ty, [ (tb.Block.label, v1); (eb.Block.label, v2) ]))
            in
            let store =
              Instr.mk Instr.no_result (Instr.Store (ty, Value.Reg phi_reg, ptr))
            in
            { b with Block.insns = phis @ [ phi; store ] @ rest }
          end
          else b)
        f.Func.blocks
    in
    Func.with_blocks ~next_id:counter.Func.next f blocks

let mldst_pass =
  Pass.function_pass "mldst-motion"
    ~description:"sink matching stores from diamond arms into the join"
    run_mldst
