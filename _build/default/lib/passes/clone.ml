(* Region cloning with register and label renaming.

   Shared by the inliner, loop unrolling, unswitching and distribution:
   clones a set of blocks, giving every defined register a fresh id and
   every block a new label, while leaving references to values and labels
   outside the region untouched. *)

open Posetrl_ir

(* [clone_blocks ~counter ~rename_label ~init_map blocks] returns the
   cloned blocks plus the substitution that was applied, so callers can
   find where a region value went. [init_map] pre-seeds register
   substitutions (e.g. parameter -> argument for inlining); registers
   defined inside the region get fresh ids. [rename_label l] must return
   [l] itself for labels outside the region. *)
let clone_blocks ~(counter : Func.counter) ~(rename_label : string -> string)
    ~(init_map : (int * Value.t) list) (blocks : Block.t list) :
    Block.t list * (int -> Value.t option) =
  let reg_map : (int, Value.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (r, v) -> Hashtbl.replace reg_map r v) init_map;
  (* first pass: allocate fresh ids for every definition in the region *)
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if i.Instr.id >= 0 then
            Hashtbl.replace reg_map i.Instr.id (Value.Reg (Func.fresh counter)))
        b.Block.insns)
    blocks;
  let subst v =
    match v with
    | Value.Reg r -> (match Hashtbl.find_opt reg_map r with Some v' -> v' | None -> v)
    | _ -> v
  in
  let new_id old =
    match Hashtbl.find_opt reg_map old with
    | Some (Value.Reg r) -> r
    | _ -> old
  in
  let cloned =
    List.map
      (fun (b : Block.t) ->
        let insns =
          List.map
            (fun (i : Instr.t) ->
              let op = Instr.map_operands subst i.Instr.op in
              let op =
                match op with
                | Instr.Phi (ty, incs) ->
                  Instr.Phi (ty, List.map (fun (l, v) -> (rename_label l, v)) incs)
                | op -> op
              in
              Instr.mk (if i.Instr.id >= 0 then new_id i.Instr.id else i.Instr.id) op)
            b.Block.insns
        in
        let term =
          b.Block.term |> Instr.map_term_operands subst
          |> Instr.map_term_labels rename_label
        in
        Block.mk (rename_label b.Block.label) insns term)
      blocks
  in
  (cloned, fun r -> Hashtbl.find_opt reg_map r)

(* Registers defined within a region. *)
let region_defs (blocks : Block.t list) : int list =
  List.concat_map
    (fun (b : Block.t) ->
      List.filter_map
        (fun (i : Instr.t) -> if i.Instr.id >= 0 then Some i.Instr.id else None)
        b.Block.insns)
    blocks
