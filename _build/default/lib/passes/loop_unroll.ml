(* -loop-unroll: full unrolling of counted loops.

   Bottom-tested loops with a compile-time trip count (as produced by
   loop-rotate + indvars) are replaced by straight-line copies of the
   body. Each copy's latch branch is resolved statically, so the loop
   control disappears entirely. Thresholds come from the pipeline config:
   O3 unrolls aggressively (faster, bigger), Oz barely at all. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

let unroll_one (cfg_opt : Config.t) (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader, loop.Loops.latches with
  | Some pre, [ latch ] ->
    (match Utils.analyze_counted_loop f loop with
     | Some info
       when info.Utils.trip_count >= 1
            && info.Utils.trip_count <= max cfg_opt.Config.unroll_count 1 ->
       let in_loop l = SSet.mem l loop.Loops.blocks in
       let loop_blocks =
         List.filter (fun (b : Block.t) -> in_loop b.Block.label) f.Func.blocks
       in
       let body_size =
         List.fold_left
           (fun acc (b : Block.t) -> acc + List.length b.Block.insns)
           0 loop_blocks
       in
       let trip = info.Utils.trip_count in
       if body_size > cfg_opt.Config.unroll_size_limit
          || body_size * trip > cfg_opt.Config.unroll_size_limit * 8
       then (f, false)
       else begin
         (* the only exit edge must be the latch's cbr *)
         let exits_ok =
           List.for_all
             (fun (b : Block.t) ->
               List.for_all
                 (fun s -> in_loop s || String.equal b.Block.label latch)
                 (Block.successors b))
             loop_blocks
         in
         let exit_lbl =
           match
             List.filter (fun s -> not (in_loop s))
               (Block.successors (Func.find_block_exn f latch))
           with
           | [ e ] -> Some e
           | _ -> None
         in
         match exits_ok, exit_lbl with
         | true, Some exit_lbl ->
           let header = Func.find_block_exn f loop.Loops.header in
           let phis, _ = Block.split_phis header in
           (* phi incomings on the two edges *)
           let phi_edges =
             List.filter_map
               (fun (i : Instr.t) ->
                 match i.Instr.op with
                 | Instr.Phi (_, incs) ->
                   (match List.assoc_opt pre incs, List.assoc_opt latch incs with
                    | Some vp, Some vl -> Some (i.Instr.id, vp, vl)
                    | _ -> None)
                 | _ -> None)
               phis
           in
           if List.length phi_edges <> List.length phis then (f, false)
           else begin
             let counter = Func.fresh_counter f in
             (* template: loop blocks with header phis stripped *)
             let template =
               List.map
                 (fun (b : Block.t) ->
                   if String.equal b.Block.label loop.Loops.header then
                     { b with Block.insns = snd (Block.split_phis b) }
                   else b)
                 loop_blocks
             in
             let uid = counter.Func.next in
             let suffix k l = Printf.sprintf "%s.u%d.%d" l uid k in
             let copies = Array.make trip ([], fun (_ : int) -> (None : Value.t option)) in
             (* current value of each header phi entering copy k *)
             let cur_vals = Hashtbl.create 8 in
             List.iter (fun (r, vp, _) -> Hashtbl.replace cur_vals r vp) phi_edges;
             (* phi values as seen inside the final iteration; needed to fix
                exit-edge references to the phi itself *)
             let last_entry_vals = Hashtbl.create 8 in
             for k = 0 to trip - 1 do
               let init_map =
                 List.map (fun (r, _, _) -> (r, Hashtbl.find cur_vals r)) phi_edges
               in
               if k = trip - 1 then
                 List.iter (fun (r, v) -> Hashtbl.replace last_entry_vals r v) init_map;
               let rename l = if in_loop l then suffix k l else l in
               let cloned, find =
                 Clone.clone_blocks ~counter ~rename_label:rename ~init_map template
               in
               (* resolve the latch terminator statically *)
               let next_target =
                 if k = trip - 1 then exit_lbl
                 else suffix (k + 1) loop.Loops.header
               in
               let cloned =
                 List.map
                   (fun (b : Block.t) ->
                     if String.equal b.Block.label (suffix k latch) then
                       { b with Block.term = Instr.Br next_target }
                     else b)
                   cloned
               in
               copies.(k) <- (cloned, find);
               (* compute entry values for the next copy: latch incoming of
                  each phi, mapped through this copy's substitution *)
               List.iter
                 (fun (r, _, vl) ->
                   let v =
                     match vl with
                     | Value.Reg vr ->
                       (match find vr with
                        | Some v' -> v'
                        | None -> vl (* defined outside the loop *))
                     | _ -> vl
                   in
                   Hashtbl.replace cur_vals r v)
                 phi_edges
             done;
             let _, final_find = copies.(trip - 1) in
             (* exit-block phi entries from the latch move to the last copy;
                values defined in the loop map through the last copy *)
             let map_final v =
               match v with
               | Value.Reg r ->
                 (match final_find r with
                  | Some v' -> v'
                  | None ->
                    (* header phi: on the exit edge the observable value is
                       the one that entered the final iteration *)
                    (match Hashtbl.find_opt last_entry_vals r with
                     | Some v' -> v'
                     | None -> v))
               | _ -> v
             in
             let blocks =
               f.Func.blocks
               |> List.filter (fun (b : Block.t) -> not (in_loop b.Block.label))
               |> List.concat_map (fun (b : Block.t) ->
                      if String.equal b.Block.label pre then
                        [ { b with
                            Block.term =
                              Instr.map_term_labels
                                (fun l ->
                                  if String.equal l loop.Loops.header then
                                    suffix 0 loop.Loops.header
                                  else l)
                                b.Block.term } ]
                      else if String.equal b.Block.label exit_lbl then
                        [ Block.map_insns
                            (fun (i : Instr.t) ->
                              match i.Instr.op with
                              | Instr.Phi (ty, incs) ->
                                let incs =
                                  List.map
                                    (fun (l, v) ->
                                      if String.equal l latch then
                                        (suffix (trip - 1) latch, map_final v)
                                      else (l, v))
                                    incs
                                in
                                { i with Instr.op = Instr.Phi (ty, incs) }
                              | _ -> i)
                            b ]
                      else [ b ])
             in
             (* append copies after the preheader position: simply add them
                at the end; block order only matters for entry *)
             let all_copies = Array.to_list copies |> List.concat_map fst in
             (* stray outside uses of loop values (non-lcssa) resolve to the
                final copy *)
             let blocks = blocks @ all_copies in
             let f' = Func.with_blocks ~next_id:counter.Func.next f blocks in
             let loop_def_set =
               ISet.of_list (Clone.region_defs loop_blocks)
             in
             let f' =
               Func.map_blocks
                 (fun (b : Block.t) ->
                   let is_copy =
                     List.exists
                       (fun (c : Block.t) -> String.equal c.Block.label b.Block.label)
                       all_copies
                   in
                   if is_copy then b
                   else
                     Block.map_operands
                       (fun v ->
                         match v with
                         | Value.Reg r when ISet.mem r loop_def_set -> map_final v
                         | _ -> v)
                       b)
                 f'
             in
             (f', true)
           end
         | _ -> (f, false)
       end
     | _ -> (f, false))
  | _ -> (f, false)

(* --- partial unrolling ----------------------------------------------------

   When the trip count is too large to unroll fully, O2/O3 replicate the
   body [u] times inside the loop (u = the configured partial factor,
   provided it divides the trip count exactly, so no remainder loop is
   needed): copy 0 keeps the original header and phis, copies 1..u-1 are
   clones chained behind it, and only the last copy tests the backedge.
   This divides the per-iteration branch overhead by [u] at the cost of
   a [u]x bigger body — the canonical O3-vs-Oz trade. *)

let partial_unroll_one (cfg : Config.t) (f : Func.t) (loop : Loops.loop) :
    Func.t * bool =
  let u = cfg.Config.unroll_partial in
  match loop.Loops.preheader, loop.Loops.latches with
  | Some pre, [ latch ] when u >= 2 ->
    (match Utils.analyze_counted_loop f loop with
     | Some info
       when info.Utils.trip_count > max cfg.Config.unroll_count 1
            && info.Utils.trip_count mod u = 0 ->
       let in_loop l = SSet.mem l loop.Loops.blocks in
       let loop_blocks =
         List.filter (fun (b : Block.t) -> in_loop b.Block.label) f.Func.blocks
       in
       let body_size =
         List.fold_left
           (fun acc (b : Block.t) -> acc + List.length b.Block.insns)
           0 loop_blocks
       in
       if body_size * u > cfg.Config.unroll_size_limit * 4 then (f, false)
       else begin
         let exits_ok =
           List.for_all
             (fun (b : Block.t) ->
               List.for_all
                 (fun s -> in_loop s || String.equal b.Block.label latch)
                 (Block.successors b))
             loop_blocks
         in
         let exit_lbl =
           match
             List.filter (fun s -> not (in_loop s))
               (Block.successors (Func.find_block_exn f latch))
           with
           | [ e ] -> Some e
           | _ -> None
         in
         match exits_ok, exit_lbl with
         | true, Some exit_lbl ->
           let header = Func.find_block_exn f loop.Loops.header in
           let phis, _ = Block.split_phis header in
           let phi_edges =
             List.filter_map
               (fun (i : Instr.t) ->
                 match i.Instr.op with
                 | Instr.Phi (_, incs) ->
                   (match List.assoc_opt pre incs, List.assoc_opt latch incs with
                    | Some vp, Some vl -> Some (i.Instr.id, vp, vl)
                    | _ -> None)
                 | _ -> None)
               phis
           in
           if List.length phi_edges <> List.length phis then (f, false)
           else begin
             let counter = Func.fresh_counter f in
             let template =
               List.map
                 (fun (b : Block.t) ->
                   if String.equal b.Block.label loop.Loops.header then
                     { b with Block.insns = snd (Block.split_phis b) }
                   else b)
                 loop_blocks
             in
             let uid = counter.Func.next in
             let suffix k l = Printf.sprintf "%s.pu%d.%d" l uid k in
             (* running values of each header phi entering each copy; the
                phi register itself stands for copy 0 *)
             let cur_vals = Hashtbl.create 8 in
             List.iter
               (fun (r, _, _) -> Hashtbl.replace cur_vals r (Value.Reg r))
               phi_edges;
             let copies = ref [] in
             let last_find = ref (fun (_ : int) -> (None : Value.t option)) in
             let last_entry_vals = Hashtbl.create 8 in
             (* after copy k, the phi's next value is subst_k(latch incoming) *)
             let orig_latch_vals =
               List.map (fun (r, _, vl) -> (r, vl)) phi_edges
             in
             for k = 1 to u - 1 do
               (* entry values for copy k = latch incomings of copy k-1 *)
               let entry_vals =
                 List.map
                   (fun (r, vl) ->
                     let v =
                       if k = 1 then vl
                       else
                         match vl with
                         | Value.Reg vr ->
                           (match !last_find vr with Some v' -> v' | None -> vl)
                         | _ -> vl
                     in
                     Hashtbl.replace cur_vals r v;
                     (r, v))
                   orig_latch_vals
               in
               if k = u - 1 then
                 List.iter (fun (r, v) -> Hashtbl.replace last_entry_vals r v) entry_vals;
               let rename l = if in_loop l then suffix k l else l in
               let cloned, find =
                 Clone.clone_blocks ~counter ~rename_label:rename
                   ~init_map:entry_vals template
               in
               (* interior copies fall through to the next copy; the final
                  copy keeps the backedge test but targets the original
                  header *)
               let cloned =
                 List.map
                   (fun (b : Block.t) ->
                     if String.equal b.Block.label (suffix k latch) then
                       if k < u - 1 then
                         { b with Block.term = Instr.Br (suffix (k + 1) loop.Loops.header) }
                       else
                         { b with
                           Block.term =
                             Instr.map_term_labels
                               (fun l ->
                                 if String.equal l (suffix k loop.Loops.header) then
                                   loop.Loops.header
                                 else l)
                               b.Block.term }
                     else b)
                   cloned
               in
               copies := !copies @ cloned;
               last_find := (fun r -> find r)
             done;
             let final_find = !last_find in
             let map_final v =
               match v with
               | Value.Reg r ->
                 (match final_find r with
                  | Some v' -> v'
                  | None ->
                    (match Hashtbl.find_opt last_entry_vals r with
                     | Some v' -> v'
                     | None -> v))
               | _ -> v
             in
             let last_latch = suffix (u - 1) latch in
             let blocks =
               List.map
                 (fun (b : Block.t) ->
                   if String.equal b.Block.label latch && in_loop b.Block.label then
                     (* copy 0 falls through into copy 1 *)
                     { b with Block.term = Instr.Br (suffix 1 loop.Loops.header) }
                   else b)
                 f.Func.blocks
             in
             let blocks =
               List.map
                 (fun (b : Block.t) ->
                   if String.equal b.Block.label loop.Loops.header then
                     (* header phis' backedge now comes from the last copy *)
                     Block.map_insns
                       (fun (i : Instr.t) ->
                         match i.Instr.op with
                         | Instr.Phi (ty, incs) ->
                           let incs =
                             List.map
                               (fun (l, v) ->
                                 if String.equal l latch then (last_latch, map_final v)
                                 else (l, v))
                               incs
                           in
                           { i with Instr.op = Instr.Phi (ty, incs) }
                         | _ -> i)
                       b
                   else if String.equal b.Block.label exit_lbl then
                     Block.map_insns
                       (fun (i : Instr.t) ->
                         match i.Instr.op with
                         | Instr.Phi (ty, incs) ->
                           let incs =
                             List.map
                               (fun (l, v) ->
                                 if String.equal l latch then (last_latch, map_final v)
                                 else (l, v))
                               incs
                           in
                           { i with Instr.op = Instr.Phi (ty, incs) }
                         | _ -> i)
                       b
                   else b)
                 blocks
             in
             (* raw outside uses of loop values observe the last copy *)
             let loop_def_set = ISet.of_list (Clone.region_defs loop_blocks) in
             let copy_labels =
               SSet.of_list (List.map (fun (b : Block.t) -> b.Block.label) !copies)
             in
             let blocks = blocks @ !copies in
             let f' = Func.with_blocks ~next_id:counter.Func.next f blocks in
             let map_raw v =
               match v with
               | Value.Reg r when ISet.mem r loop_def_set -> map_final v
               | _ -> v
             in
             let f' =
               Func.map_blocks
                 (fun (b : Block.t) ->
                   if in_loop b.Block.label || SSet.mem b.Block.label copy_labels then b
                   else if String.equal b.Block.label exit_lbl then
                     (* phi incomings were fixed per-edge above; only the
                        straight-line uses map to the last copy *)
                     { (Block.map_insns
                          (fun (i : Instr.t) ->
                            match i.Instr.op with
                            | Instr.Phi _ -> i
                            | op -> { i with Instr.op = Instr.map_operands map_raw op })
                          b)
                       with Block.term = Instr.map_term_operands map_raw b.Block.term }
                   else Block.map_operands map_raw b)
                 f'
             in
             (f', true)
           end
         | _ -> (f, false)
       end
     | _ -> (f, false))
  | _ -> (f, false)

let run_func (cfg : Config.t) (f : Func.t) : Func.t =
  if cfg.Config.unroll_count <= 1 then f
  else begin
    (* canonicalize first, as the loop pass manager would *)
    let f = Loop_simplify.loop_simplify_func cfg f in
    let rec go f budget =
      if budget = 0 then f
      else begin
        let li = Loops.compute f in
        (* unroll innermost loops first *)
        let loops = Loops.leaf_loops li in
        let step =
          List.find_map
            (fun loop ->
              let f', changed = unroll_one cfg f loop in
              if changed then Some f'
              else
                let f', changed = partial_unroll_one cfg f loop in
                if changed then Some f' else None)
            loops
        in
        match step with
        | Some f' -> go f' (budget - 1)
        | None -> f
      end
    in
    let f = go f 4 in
    f |> Utils.simplify_single_incoming_phis |> Utils.trivial_dce
  end

let pass =
  Pass.function_pass "loop-unroll"
    ~description:"fully unroll short counted loops (threshold-gated)" run_func
