(* -loop-simplify and -lcssa: canonicalize loop shape.

   loop-simplify gives every natural loop a dedicated preheader (a block
   whose sole purpose is to branch to the header) and, where cheap, merges
   multiple latches through a single backedge block. Most other loop
   passes require this canonical form.

   lcssa inserts single-incoming phis in exit blocks for every value
   defined inside a loop and used outside it, so that later loop
   transforms only have to patch exit phis. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

(* Create a preheader for [loop] if it lacks one. *)
let ensure_preheader (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader with
  | Some _ -> (f, false)
  | None ->
    let cfg = Cfg.of_func f in
    let outside_preds =
      List.filter
        (fun p -> not (SSet.mem p loop.Loops.blocks))
        (Cfg.preds cfg loop.Loops.header)
    in
    if outside_preds = [] then (f, false) (* unreachable loop *)
    else begin
      let label = Utils.fresh_label f (loop.Loops.header ^ ".preheader") in
      (* header phis: entries from outside preds must agree, or we must
         create a phi in the preheader *)
      let header = Func.find_block_exn f loop.Loops.header in
      let phis = Block.phis header in
      let conflicting =
        List.exists
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Phi (_, incs) ->
              let vals =
                List.filter_map
                  (fun (l, v) ->
                    if List.exists (String.equal l) outside_preds then Some v else None)
                  incs
              in
              (match vals with
               | [] -> false
               | v :: rest -> not (List.for_all (Value.equal v) rest))
            | _ -> false)
          phis
      in
      if conflicting && List.length outside_preds > 1 then begin
        (* funnel through a preheader that carries its own phis *)
        let counter = Func.fresh_counter f in
        let pre_phis = ref [] in
        let header' =
          Block.map_insns
            (fun (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Phi (ty, incs) ->
                let outside, inside =
                  List.partition
                    (fun (l, _) -> List.exists (String.equal l) outside_preds)
                    incs
                in
                if outside = [] then i
                else begin
                  let pre_reg = Func.fresh counter in
                  pre_phis := Instr.mk pre_reg (Instr.Phi (ty, outside)) :: !pre_phis;
                  { i with Instr.op = Instr.Phi (ty, (label, Value.Reg pre_reg) :: inside) }
                end
              | _ -> i)
            header
        in
        let pre_blk = Block.mk label (List.rev !pre_phis) (Instr.Br loop.Loops.header) in
        let retarget l = if String.equal l loop.Loops.header then label else l in
        let blocks =
          List.concat_map
            (fun (b : Block.t) ->
              if String.equal b.Block.label loop.Loops.header then [ pre_blk; header' ]
              else if List.exists (String.equal b.Block.label) outside_preds then
                [ { b with Block.term = Instr.map_term_labels retarget b.Block.term } ]
              else [ b ])
            f.Func.blocks
        in
        (Func.with_blocks ~next_id:counter.Func.next f blocks, true)
      end
      else begin
        let f = Utils.insert_block_on_edges f ~froms:outside_preds ~to_:loop.Loops.header ~label in
        (f, true)
      end
    end

(* Merge multiple latches through one backedge block. *)
let ensure_single_latch (f : Func.t) (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.latches with
  | [] | [ _ ] -> (f, false)
  | latches ->
    let header = Func.find_block_exn f loop.Loops.header in
    let phis = Block.phis header in
    let conflicting =
      List.exists
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi (_, incs) ->
            let vals =
              List.filter_map
                (fun (l, v) ->
                  if List.exists (String.equal l) latches then Some v else None)
                incs
            in
            (match vals with
             | [] -> false
             | v :: rest -> not (List.for_all (Value.equal v) rest))
          | _ -> false)
        phis
    in
    if conflicting then (f, false) (* would need a phi in the backedge block *)
    else begin
      let label = Utils.fresh_label f (loop.Loops.header ^ ".backedge") in
      (Utils.insert_block_on_edges f ~froms:latches ~to_:loop.Loops.header ~label, true)
    end

let loop_simplify_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let rec go f budget =
    if budget = 0 then f
    else begin
      let li = Loops.compute f in
      let step =
        List.find_map
          (fun loop ->
            let f', changed = ensure_preheader f loop in
            if changed then Some f'
            else
              let f', changed = ensure_single_latch f loop in
              if changed then Some f' else None)
          li.Loops.loops
      in
      match step with Some f' -> go f' (budget - 1) | None -> f
    end
  in
  go f 16

let pass =
  Pass.function_pass "loop-simplify"
    ~description:"canonicalize loops: dedicated preheaders and single latches"
    loop_simplify_func

(* --- lcssa --------------------------------------------------------------- *)

let lcssa_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let li = Loops.compute f in
  if li.Loops.loops = [] then f
  else begin
    let counter = Func.fresh_counter f in
    let f =
      List.fold_left
        (fun f (loop : Loops.loop) ->
          (* registers defined in the loop *)
          let defined_in =
            List.fold_left
              (fun acc (b : Block.t) ->
                if SSet.mem b.Block.label loop.Loops.blocks then
                  List.fold_left
                    (fun acc (i : Instr.t) ->
                      if i.Instr.id >= 0 then ISet.add i.Instr.id acc else acc)
                    acc b.Block.insns
                else acc)
              ISet.empty f.Func.blocks
          in
          (* uses outside the loop *)
          let exit_set = SSet.of_list loop.Loops.exits in
          let outside_uses = Hashtbl.create 8 in
          List.iter
            (fun (b : Block.t) ->
              if not (SSet.mem b.Block.label loop.Loops.blocks) then begin
                let record v =
                  match v with
                  | Value.Reg r when ISet.mem r defined_in ->
                    Hashtbl.replace outside_uses r ()
                  | _ -> ()
                in
                List.iter
                  (fun (i : Instr.t) ->
                    match i.Instr.op with
                    | Instr.Phi (_, incs) ->
                      (* a phi in an exit block already plays the lcssa
                         role for its incoming edges *)
                      if SSet.mem b.Block.label exit_set then ()
                      else List.iter (fun (_, v) -> record v) incs
                    | op -> List.iter record (Instr.operands op))
                  b.Block.insns;
                List.iter record (Instr.term_operands b.Block.term)
              end)
            f.Func.blocks;
          if Hashtbl.length outside_uses = 0 then f
          else begin
            (* for simplicity require a unique exit block; otherwise skip *)
            match loop.Loops.exits with
            | [ exit_label ] ->
              let cfg = Cfg.of_func f in
              let in_loop_preds =
                List.filter
                  (fun p -> SSet.mem p loop.Loops.blocks)
                  (Cfg.preds cfg exit_label)
              in
              let def_tys =
                let m = Hashtbl.create 8 in
                Func.iter_insns
                  (fun _ i ->
                    if i.Instr.id >= 0 then
                      Hashtbl.replace m i.Instr.id (Instr.result_ty i.Instr.op))
                  f;
                m
              in
              let new_phis = ref [] in
              let substs = ref [] in
              Hashtbl.iter
                (fun r () ->
                  let ty = Option.value (Hashtbl.find_opt def_tys r) ~default:Types.I64 in
                  let phi_reg = Func.fresh counter in
                  let incs = List.map (fun p -> (p, Value.Reg r)) in_loop_preds in
                  new_phis := Instr.mk phi_reg (Instr.Phi (ty, incs)) :: !new_phis;
                  substs := (r, phi_reg) :: !substs)
                outside_uses;
              let blocks =
                List.map
                  (fun (b : Block.t) ->
                    if String.equal b.Block.label exit_label then
                      let phis, rest = Block.split_phis b in
                      { b with Block.insns = phis @ !new_phis @ rest }
                    else b)
                  f.Func.blocks
              in
              let f = Func.with_blocks ~next_id:counter.Func.next f blocks in
              (* rewrite outside uses (not inside the loop, not the new phis) *)
              let blocks =
                List.map
                  (fun (b : Block.t) ->
                    if SSet.mem b.Block.label loop.Loops.blocks then b
                    else
                      let subst_in_op (i : Instr.t) =
                        if String.equal b.Block.label exit_label
                           && List.exists (fun p -> p.Instr.id = i.Instr.id) !new_phis
                        then i
                        else
                          let fix v =
                            match v with
                            | Value.Reg r ->
                              (match List.assoc_opt r !substs with
                               | Some pr -> Value.Reg pr
                               | None -> v)
                            | _ -> v
                          in
                          (* phis in the exit block keep direct references
                             on their loop edges *)
                          match i.Instr.op with
                          | Instr.Phi (ty, incs) when String.equal b.Block.label exit_label ->
                            ignore ty; ignore incs; i
                          | op -> { i with Instr.op = Instr.map_operands fix op }
                      in
                      let term' =
                        Instr.map_term_operands
                          (fun v ->
                            match v with
                            | Value.Reg r ->
                              (match List.assoc_opt r !substs with
                               | Some pr -> Value.Reg pr
                               | None -> v)
                            | _ -> v)
                          b.Block.term
                      in
                      { (Block.map_insns subst_in_op b) with Block.term = term' })
                  f.Func.blocks
              in
              Func.with_blocks f blocks
            | _ -> f
          end)
        f li.Loops.loops
    in
    Func.commit_counter f counter
  end

let lcssa_pass =
  Pass.function_pass "lcssa"
    ~description:"insert loop-closed SSA phis in loop exit blocks" lcssa_func
