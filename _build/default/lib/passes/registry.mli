(** Name-to-pass registry: all 54 unique passes of the LLVM-10 -Oz
    pipeline (paper Table I), registered under their LLVM flag names. *)

val all : Pass.t list

val find : string -> Pass.t option
(** Lookup by flag name; resolves the paper's spelling variants
    (e.g. ["alignmentfromassumptions"]). *)

val find_exn : string -> Pass.t
(** @raise Invalid_argument on unknown names. *)

val names : unit -> string list
