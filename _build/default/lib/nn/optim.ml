(* Adam optimizer over a network's accumulated gradients. *)

type t = {
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  grad_clip : float; (* global-norm clip; 0 disables *)
  mutable step_count : int;
}

let create ?(lr = 1e-4) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8)
    ?(grad_clip = 10.0) () =
  { lr; beta1; beta2; eps; grad_clip; step_count = 0 }

let grad_norm (net : Mlp.t) : float =
  let acc = ref 0.0 in
  Array.iter
    (fun (l : Layer.t) ->
      Array.iter (fun g -> acc := !acc +. (g *. g)) l.Layer.gw.Matrix.data;
      Array.iter (fun g -> acc := !acc +. (g *. g)) l.Layer.gb)
    net.Mlp.layers;
  sqrt !acc

let step (o : t) (net : Mlp.t) : unit =
  o.step_count <- o.step_count + 1;
  let t = float_of_int o.step_count in
  let bc1 = 1.0 -. (o.beta1 ** t) in
  let bc2 = 1.0 -. (o.beta2 ** t) in
  let clip_scale =
    if o.grad_clip > 0.0 then begin
      let n = grad_norm net in
      if n > o.grad_clip then o.grad_clip /. n else 1.0
    end
    else 1.0
  in
  Array.iter
    (fun (l : Layer.t) ->
      let wd = l.Layer.w.Matrix.data
      and gd = l.Layer.gw.Matrix.data
      and md = l.Layer.mw.Matrix.data
      and vd = l.Layer.vw.Matrix.data in
      for i = 0 to Array.length wd - 1 do
        let g = gd.(i) *. clip_scale in
        md.(i) <- (o.beta1 *. md.(i)) +. ((1.0 -. o.beta1) *. g);
        vd.(i) <- (o.beta2 *. vd.(i)) +. ((1.0 -. o.beta2) *. g *. g);
        let mhat = md.(i) /. bc1 and vhat = vd.(i) /. bc2 in
        wd.(i) <- wd.(i) -. (o.lr *. mhat /. (sqrt vhat +. o.eps))
      done;
      for i = 0 to Array.length l.Layer.b - 1 do
        let g = l.Layer.gb.(i) *. clip_scale in
        l.Layer.mb.(i) <- (o.beta1 *. l.Layer.mb.(i)) +. ((1.0 -. o.beta1) *. g);
        l.Layer.vb.(i) <- (o.beta2 *. l.Layer.vb.(i)) +. ((1.0 -. o.beta2) *. g *. g);
        let mhat = l.Layer.mb.(i) /. bc1 and vhat = l.Layer.vb.(i) /. bc2 in
        l.Layer.b.(i) <- l.Layer.b.(i) -. (o.lr *. mhat /. (sqrt vhat +. o.eps))
      done)
    net.Mlp.layers
