(* Dense row-major matrices; just enough linear algebra for the MLPs. *)

type t = {
  rows : int;
  cols : int;
  data : float array; (* length rows*cols, row-major *)
}

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

let fill_zero m = Array.fill m.data 0 (Array.length m.data) 0.0

(* y = M x *)
let matvec (m : t) (x : float array) : float array =
  if Array.length x <> m.cols then invalid_arg "Matrix.matvec: dimension mismatch";
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

(* y = Mᵀ x *)
let matvec_t (m : t) (x : float array) : float array =
  if Array.length x <> m.rows then invalid_arg "Matrix.matvec_t: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(base + j) *. xi)
      done
  done;
  y

(* M <- M + k * (a ⊗ b)  (outer product accumulate, used for gradients) *)
let outer_add (m : t) ~(k : float) (a : float array) (b : float array) =
  if Array.length a <> m.rows || Array.length b <> m.cols then
    invalid_arg "Matrix.outer_add: dimension mismatch";
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let ai = k *. a.(i) in
    if ai <> 0.0 then
      for j = 0 to m.cols - 1 do
        m.data.(base + j) <- m.data.(base + j) +. (ai *. b.(j))
      done
  done

let map_inplace f m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- f m.data.(i)
  done

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)
