(* Loss functions. The DQN uses Huber (smooth-L1) on TD errors, the
   standard choice for stability under occasional large rewards. *)

(* Returns (loss value, dloss/dpred). *)
let huber ?(delta = 1.0) ~(pred : float) ~(target : float) () : float * float =
  let d = pred -. target in
  if Float.abs d <= delta then ((0.5 *. d *. d), d)
  else ((delta *. (Float.abs d -. (0.5 *. delta))), if d > 0.0 then delta else -.delta)

let mse ~(pred : float) ~(target : float) () : float * float =
  let d = pred -. target in
  (0.5 *. d *. d, d)
