lib/nn/layer.ml: Array Matrix Posetrl_support Rng
