lib/nn/mlp.ml: Array Layer Matrix Posetrl_support Rng
