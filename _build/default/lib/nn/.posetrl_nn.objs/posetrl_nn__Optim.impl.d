lib/nn/optim.ml: Array Layer Matrix Mlp
