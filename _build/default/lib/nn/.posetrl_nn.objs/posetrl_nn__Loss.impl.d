lib/nn/loss.ml: Float
