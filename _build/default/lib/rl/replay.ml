(* Replay memory: a fixed-capacity ring of transitions with uniform
   sampling (paper §V-A: random batches are sampled from the replay
   memory every µ steps). *)

open Posetrl_support

type transition = {
  state : float array;
  action : int;
  reward : float;
  next_state : float array option; (* [None] marks a terminal step *)
}

type t = {
  capacity : int;
  mutable data : transition array;
  mutable size : int;
  mutable next : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Replay.create: capacity must be positive";
  { capacity;
    data = Array.make capacity { state = [||]; action = 0; reward = 0.0; next_state = None };
    size = 0;
    next = 0 }

let size t = t.size

let push t tr =
  t.data.(t.next) <- tr;
  t.next <- (t.next + 1) mod t.capacity;
  if t.size < t.capacity then t.size <- t.size + 1

let sample (rng : Rng.t) t n : transition array =
  if t.size = 0 then invalid_arg "Replay.sample: empty buffer";
  Array.init n (fun _ -> t.data.(Rng.int rng t.size))
