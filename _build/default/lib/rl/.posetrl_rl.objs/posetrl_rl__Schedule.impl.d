lib/rl/schedule.ml:
