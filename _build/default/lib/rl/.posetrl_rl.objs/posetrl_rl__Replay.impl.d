lib/rl/replay.ml: Array Posetrl_support Rng
