lib/rl/dqn.ml: Array Layer List Loss Matrix Mlp Optim Posetrl_nn Posetrl_support Printf Replay Rng String Vecf
