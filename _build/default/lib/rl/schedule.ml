(* ε-greedy annealing schedule. The paper anneals ε linearly from 1.0
   down to 0.01 over 20 000 timesteps. *)

type t = {
  start : float;
  stop : float;
  decay_steps : int;
}

let create ?(start = 1.0) ?(stop = 0.01) ?(decay_steps = 20_000) () =
  { start; stop; decay_steps }

let value (t : t) (step : int) : float =
  if step >= t.decay_steps then t.stop
  else
    let frac = float_of_int step /. float_of_int t.decay_steps in
    t.start +. ((t.stop -. t.start) *. frac)

let paper_default = create ()
