lib/mca/mca.ml: Block Float Func List Loops Lower Modul Option Posetrl_codegen Posetrl_ir Target
