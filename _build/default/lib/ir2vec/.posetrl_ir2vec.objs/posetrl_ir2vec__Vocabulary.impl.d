lib/ir2vec/vocabulary.ml: Char Hashtbl Int64 Posetrl_support Rng String Vecf
