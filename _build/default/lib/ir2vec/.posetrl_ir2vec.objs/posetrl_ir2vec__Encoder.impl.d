lib/ir2vec/encoder.ml: Block Func Hashtbl Instr List Modul Posetrl_ir Posetrl_support Types Value Vecf Vocabulary
