(* Sub-sequence derivation by walking the ODG (paper §IV-B).

   A walk starts at a critical node and follows successor edges; it ends
   just before reaching another critical node (or at a node with no
   outgoing edges). Interior nodes are not revisited within one walk, so
   walks terminate. Every consecutive pair in a walk is an Oz edge, which
   is the dependency-preservation property the paper claims. *)

module SSet = Graph.SSet

let max_walk_len = 24

(* All maximal walks from [start]; each walk includes [start] and excludes
   the terminating critical node. *)
let walks_from (g : Graph.t) ~(critical : SSet.t) (start : string) : string list list =
  let results = ref [] in
  let rec extend (path_rev : string list) (visited : SSet.t) (node : string) =
    if List.length path_rev >= max_walk_len then
      results := List.rev path_rev :: !results
    else begin
      let succs = Graph.successors g node in
      let continuations =
        SSet.elements succs
        |> List.filter (fun s -> not (SSet.mem s visited))
        |> List.filter (fun s -> not (SSet.mem s critical))
      in
      let terminates =
        SSet.exists (fun s -> SSet.mem s critical) succs
        || SSet.is_empty succs
        || continuations = []
      in
      if terminates then results := List.rev path_rev :: !results;
      List.iter
        (fun s -> extend (s :: path_rev) (SSet.add s visited) s)
        continuations
    end
  in
  extend [ start ] (SSet.singleton start) start;
  List.sort_uniq compare !results

let derive ?(k = 8) (g : Graph.t) : string list list =
  let critical = SSet.of_list (List.map fst (Graph.critical_nodes ~k g)) in
  SSet.elements critical
  |> List.concat_map (fun c -> walks_from g ~critical c)
  |> List.sort_uniq compare

(* Structural validation used by the tests: every consecutive pair in a
   derived walk must be an edge of the graph, the head must be critical,
   and interior nodes must be non-critical. *)
let valid_walk ?(k = 8) (g : Graph.t) (walk : string list) : bool =
  let critical = SSet.of_list (List.map fst (Graph.critical_nodes ~k g)) in
  match walk with
  | [] -> false
  | head :: rest ->
    SSet.mem head critical
    && List.for_all (fun n -> not (SSet.mem n critical)) rest
    && fst
         (List.fold_left
            (fun (ok, prev) n ->
              (ok && SSet.mem n (Graph.successors g prev), n))
            (true, head) rest)
