lib/odg/walks.ml: Graph List
