lib/odg/action_space.mli:
