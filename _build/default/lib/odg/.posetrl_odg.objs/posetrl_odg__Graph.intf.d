lib/odg/graph.mli: Map Set
