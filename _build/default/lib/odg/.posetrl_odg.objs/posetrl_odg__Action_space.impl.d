lib/odg/action_space.ml: Array Graph Lazy List Option Posetrl_passes Printf String Walks
