lib/odg/graph.ml: Buffer List Map Option Posetrl_passes Printf Set String
