lib/odg/walks.mli: Graph
