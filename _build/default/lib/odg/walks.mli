(** Sub-sequence derivation by walking the ODG (paper §IV-B).

    A walk starts at a critical node, follows successor edges without
    revisiting interior nodes, and ends just before reaching another
    critical node. For the default graph at k ≥ 8 this yields exactly the
    paper's 34 sub-sequences (Table III). *)

val max_walk_len : int

val walks_from :
  Graph.t -> critical:Graph.SSet.t -> string -> string list list
(** All maximal walks from one critical node. *)

val derive : ?k:int -> Graph.t -> string list list
(** All walks from every critical node, deduplicated and sorted. *)

val valid_walk : ?k:int -> Graph.t -> string list -> bool
(** Structural validity: head critical, interior non-critical, every
    consecutive pair an edge of the graph (i.e. an Oz order). *)
