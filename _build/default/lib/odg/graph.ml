(* Oz Dependence Graph (paper §IV-B, Fig. 4).

   Nodes are the unique passes of the Oz pipeline; a directed edge u → v
   exists when v immediately follows u somewhere in the Oz sequence.
   (The paper's prose describes the edge direction both ways; its own
   example sub-sequences follow successor order, which is what we build —
   see DESIGN.md.) Nodes whose total degree reaches the threshold k are
   the *critical nodes* from which sub-sequence walks start and end. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type t = {
  nodes : string list;
  succs : SSet.t SMap.t;
  preds : SSet.t SMap.t;
}

let of_sequence (seq : string list) : t =
  let nodes = List.sort_uniq String.compare seq in
  let add m k v =
    let cur = Option.value (SMap.find_opt k m) ~default:SSet.empty in
    SMap.add k (SSet.add v cur) m
  in
  let rec edges succs preds = function
    | a :: (b :: _ as rest) -> edges (add succs a b) (add preds b a) rest
    | _ -> (succs, preds)
  in
  let succs, preds = edges SMap.empty SMap.empty seq in
  { nodes; succs; preds }

let default = lazy (of_sequence Posetrl_passes.Pipelines.oz_sequence)

let successors t n = Option.value (SMap.find_opt n t.succs) ~default:SSet.empty

let predecessors t n = Option.value (SMap.find_opt n t.preds) ~default:SSet.empty

(* Degree = distinct in-neighbours + distinct out-neighbours, the measure
   under which the paper's critical nodes get degrees 11, 10 and 8. *)
let degree t n = SSet.cardinal (successors t n) + SSet.cardinal (predecessors t n)

let critical_nodes ?(k = 8) (t : t) : (string * int) list =
  t.nodes
  |> List.filter_map (fun n ->
         let d = degree t n in
         if d >= k then Some (n, d) else None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let edge_count t =
  SMap.fold (fun _ s acc -> acc + SSet.cardinal s) t.succs 0

let node_count t = List.length t.nodes

(* Graphviz rendering of Fig. 4. *)
let to_dot ?(k = 8) (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph odg {\n  rankdir=LR;\n";
  let crit = SSet.of_list (List.map fst (critical_nodes ~k t)) in
  List.iter
    (fun n ->
      if SSet.mem n crit then
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" [shape=doublecircle,style=bold];\n" n)
      else Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" n))
    t.nodes;
  SMap.iter
    (fun u vs ->
      SSet.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" u v))
        vs)
    t.succs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
