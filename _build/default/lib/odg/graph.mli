(** The Oz Dependence Graph (paper §IV-B, Fig. 4).

    Nodes are the unique passes of the -Oz pipeline; a directed edge
    [u → v] exists when [v] immediately follows [u] somewhere in the Oz
    sequence. Nodes of degree ≥ k are the {e critical nodes} from which
    sub-sequence walks start and end. *)

module SSet : Set.S with type elt = string
module SMap : Map.S with type key = string

type t = {
  nodes : string list;
  succs : SSet.t SMap.t;
  preds : SSet.t SMap.t;
}

val of_sequence : string list -> t
(** Build the graph from a pass sequence (consecutive-pair edges,
    deduplicated). *)

val default : t lazy_t
(** The graph of the canonical -Oz sequence (Table I). *)

val successors : t -> string -> SSet.t
val predecessors : t -> string -> SSet.t

val degree : t -> string -> int
(** Distinct in-neighbours + distinct out-neighbours — the measure under
    which the paper's critical nodes have degrees 11, 10 and 8. *)

val critical_nodes : ?k:int -> t -> (string * int) list
(** Nodes of degree ≥ k (default 8) with their degrees, highest first.
    For the default graph and k: [simplifycfg, 11; instcombine, 10;
    loop-simplify, 8]. *)

val edge_count : t -> int
val node_count : t -> int

val to_dot : ?k:int -> t -> string
(** Graphviz rendering (critical nodes double-circled). *)
