(* SPEC CPU 2006-like validation suite. Distinct program shapes from the
   2017 set: DP recurrences (456.hmmer), quantum gate simulation
   (462.libquantum), board scanning (445.gobmk), compression pipelines
   (401.bzip2), motion estimation with early exit (464.h264ref), grid
   pathfinding (473.astar), complex-arithmetic loops (433.milc), hash +
   dispatch interpreter loops (400.perlbench), move generation (458.sjeng),
   and dense float updates (450.soplex). *)

open Posetrl_ir
open Dsl

let mk_main () =
  Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 ()

let finish_main (c : ctx) (r : Value.t) = Builder.ret c.b Types.I64 r

(* --- hmmer: Viterbi-style dynamic programming ------------------------------- *)

let hmmer () : Modul.t =
  let states = 24 and seq = 160 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let dp = arr c Types.I64 states in
  let ndp = arr c Types.I64 states in
  for_up c ~from:0 ~bound:(i64 states) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 dp iv (Builder.mul c.b Types.I64 iv (i64 3)));
  for_up c ~from:0 ~bound:(i64 seq) (fun tp ->
      let tv = get c Types.I64 tp in
      let emit = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 tv (i64 17)) (i64 31) in
      for_up c ~from:0 ~bound:(i64 states) (fun sp ->
          let sv = get c Types.I64 sp in
          (* best over stay / advance / skip *)
          let stay = get_at c Types.I64 dp sv in
          let prev = Builder.sub c.b Types.I64 sv (i64 1) in
          let prevneg = Builder.icmp c.b Instr.Slt Types.I64 prev (i64 0) in
          let prev2 = Builder.select c.b Types.I64 prevneg (i64 0) prev in
          let adv0 = get_at c Types.I64 dp prev2 in
          let adv = Builder.add c.b Types.I64 adv0 (i64 2) in
          let skipi = Builder.sub c.b Types.I64 sv (i64 2) in
          let skipneg = Builder.icmp c.b Instr.Slt Types.I64 skipi (i64 0) in
          let skipi2 = Builder.select c.b Types.I64 skipneg (i64 0) skipi in
          let skip0 = get_at c Types.I64 dp skipi2 in
          let skip = Builder.add c.b Types.I64 skip0 (i64 5) in
          let m1 = Builder.icmp c.b Instr.Sgt Types.I64 stay adv in
          let best01 = Builder.select c.b Types.I64 m1 stay adv in
          let m2 = Builder.icmp c.b Instr.Sgt Types.I64 best01 skip in
          let best = Builder.select c.b Types.I64 m2 best01 skip in
          let scored = Builder.add c.b Types.I64 best emit in
          set_at c Types.I64 ndp sv scored);
      for_up c ~from:0 ~bound:(i64 states) (fun sp ->
          let sv = get c Types.I64 sp in
          set_at c Types.I64 dp sv (get_at c Types.I64 ndp sv)));
  let best = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 states) (fun sp ->
      let sv = get c Types.I64 sp in
      let v = get_at c Types.I64 dp sv in
      let gt = Builder.icmp c.b Instr.Sgt Types.I64 v (get c Types.I64 best) in
      if_then c gt (fun () ->
          let sv = get c Types.I64 sp in
          set c Types.I64 best (get_at c Types.I64 dp sv)));
  finish_main c (get c Types.I64 best);
  Modul.mk ~name:"spec2006.hmmer" [ Builder.finish bm ]

(* --- libquantum: gate operations over a register array ----------------------- *)

let libquantum () : Modul.t =
  let n = 1024 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let reg = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 reg iv iv);
  (* toffoli-ish conditional bit flips, then a "phase" pass *)
  for_up c ~from:0 ~bound:(i64 24) (fun gp ->
      let gv = get c Types.I64 gp in
      let ctrl = Builder.and_ c.b Types.I64 gv (i64 7) in
      let targ = Builder.add c.b Types.I64 (Builder.and_ c.b Types.I64 gv (i64 15)) (i64 8) in
      for_up c ~from:0 ~bound:(i64 n) (fun ip ->
          let iv = get c Types.I64 ip in
          let v = get_at c Types.I64 reg iv in
          let cbit = Builder.and_ c.b Types.I64 (Builder.lshr c.b Types.I64 v ctrl) (i64 1) in
          let on = Builder.icmp c.b Instr.Ne Types.I64 cbit (i64 0) in
          if_then c on (fun () ->
              let iv = get c Types.I64 ip in
              let v = get_at c Types.I64 reg iv in
              let mask = Builder.shl c.b Types.I64 (i64 1) targ in
              set_at c Types.I64 reg iv (Builder.xor c.b Types.I64 v mask))));
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = get_at c Types.I64 reg iv in
      let rot = Builder.xor c.b Types.I64 v (Builder.lshr c.b Types.I64 v (i64 5)) in
      bump c sum rot);
  finish_main c (get c Types.I64 sum);
  Modul.mk ~name:"spec2006.libquantum" [ Builder.finish bm ]

(* --- gobmk: 2D board scanning with neighbour counting ------------------------ *)

let gobmk () : Modul.t =
  let n = 19 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let board = arr c Types.I64 (n * n) in
  for_up c ~from:0 ~bound:(i64 (n * n)) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 7)) (i64 3) in
      set_at c Types.I64 board iv v);
  let liberties = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 60) (fun _pass ->
      for_up c ~from:1 ~bound:(i64 (n - 1)) (fun yp ->
          for_up c ~from:1 ~bound:(i64 (n - 1)) (fun xp ->
              let yv = get c Types.I64 yp and xv = get c Types.I64 xp in
              let pos = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 yv (i64 n)) xv in
              let v = get_at c Types.I64 board pos in
              let stone = Builder.icmp c.b Instr.Ne Types.I64 v (i64 0) in
              if_then c stone (fun () ->
                  let yv = get c Types.I64 yp and xv = get c Types.I64 xp in
                  let pos = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 yv (i64 n)) xv in
                  let count = var c Types.I64 (i64 0) in
                  let check off =
                    let npos = Builder.add c.b Types.I64 pos (i64 off) in
                    let nv = get_at c Types.I64 board npos in
                    let empty = Builder.icmp c.b Instr.Eq Types.I64 nv (i64 0) in
                    let one = Builder.zext c.b ~from_ty:Types.I1 ~to_ty:Types.I64 empty in
                    bump c count one
                  in
                  check 1;
                  check (-1);
                  check n;
                  check (-n);
                  bump c liberties (get c Types.I64 count)))));
  finish_main c (get c Types.I64 liberties);
  Modul.mk ~name:"spec2006.gobmk" [ Builder.finish bm ]

(* --- bzip2: run-length encode + move-to-front ---------------------------------- *)

let bzip2 () : Modul.t =
  let len = 800 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let data = arr c Types.I64 len in
  for_up c ~from:0 ~bound:(i64 len) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.srem c.b Types.I64 (Builder.sdiv c.b Types.I64 iv (i64 7)) (i64 16) in
      set_at c Types.I64 data iv v);
  (* RLE *)
  let out = var c Types.I64 (i64 0) in
  let run = var c Types.I64 (i64 1) in
  for_up c ~from:1 ~bound:(i64 len) (fun ip ->
      let iv = get c Types.I64 ip in
      let prev = Builder.sub c.b Types.I64 iv (i64 1) in
      let a = get_at c Types.I64 data iv in
      let b' = get_at c Types.I64 data prev in
      let same = Builder.icmp c.b Instr.Eq Types.I64 a b' in
      if_ c same
        (fun () -> bump c run (i64 1))
        (fun () ->
          let r = get c Types.I64 run in
          let iv = get c Types.I64 ip in
          let pv = get_at c Types.I64 data (Builder.sub c.b Types.I64 iv (i64 1)) in
          let token = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 r (i64 16)) pv in
          bump c out token;
          set c Types.I64 run (i64 1)));
  (* move-to-front over a 16-entry alphabet *)
  let mtf = arr c Types.I64 16 in
  for_up c ~from:0 ~bound:(i64 16) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 mtf iv iv);
  let mtfsum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 len) (fun ip ->
      let iv = get c Types.I64 ip in
      let sym = get_at c Types.I64 data iv in
      (* find rank *)
      let rank = var c Types.I64 (i64 0) in
      for_up c ~from:0 ~bound:(i64 16) (fun kp ->
          let kv = get c Types.I64 kp in
          let e = get_at c Types.I64 mtf kv in
          let eq = Builder.icmp c.b Instr.Eq Types.I64 e sym in
          if_then c eq (fun () -> set c Types.I64 rank (get c Types.I64 kp)));
      bump c mtfsum (get c Types.I64 rank);
      (* shift front *)
      let rv = get c Types.I64 rank in
      let j = var c Types.I64 rv in
      while_ c
        (fun () ->
          let jv = get c Types.I64 j in
          Builder.icmp c.b Instr.Sgt Types.I64 jv (i64 0))
        (fun () ->
          let jv = get c Types.I64 j in
          let pj = Builder.sub c.b Types.I64 jv (i64 1) in
          set_at c Types.I64 mtf jv (get_at c Types.I64 mtf pj);
          set c Types.I64 j pj);
      set_at c Types.I64 mtf (i64 0) sym);
  let r = Builder.add c.b Types.I64 (get c Types.I64 out) (get c Types.I64 mtfsum) in
  finish_main c r;
  Modul.mk ~name:"spec2006.bzip2" [ Builder.finish bm ]

(* --- h264ref: motion search with early termination ------------------------------ *)

let h264ref () : Modul.t =
  let w = 48 and h = 48 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let frame = arr c Types.I64 (w * h) in
  for_up c ~from:0 ~bound:(i64 (w * h)) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 131)) (i64 256) in
      set_at c Types.I64 frame iv v);
  let total = var c Types.I64 (i64 0) in
  (* for a few blocks, search +-4 displacement for min SAD with early out *)
  for_up c ~from:1 ~bound:(i64 5) (fun bp ->
      let bv = get c Types.I64 bp in
      let base = Builder.mul c.b Types.I64 bv (i64 (4 * w + 8)) in
      let best = var c Types.I64 (i64 1_000_000) in
      for_up c ~from:0 ~bound:(i64 9) (fun dp ->
          let dv = get c Types.I64 dp in
          let disp = Builder.sub c.b Types.I64 dv (i64 4) in
          let sad = var c Types.I64 (i64 0) in
          let abort = var c Types.I64 (i64 0) in
          for_up c ~from:0 ~bound:(i64 4) (fun yp ->
              let go = Builder.icmp c.b Instr.Eq Types.I64 (get c Types.I64 abort) (i64 0) in
              if_then c go (fun () ->
                  for_up c ~from:0 ~bound:(i64 4) (fun xp ->
                      let yv = get c Types.I64 yp and xv = get c Types.I64 xp in
                      let row = Builder.mul c.b Types.I64 yv (i64 w) in
                      let p0 = Builder.add c.b Types.I64 base (Builder.add c.b Types.I64 row xv) in
                      let p1 = Builder.add c.b Types.I64 p0
                          (Builder.add c.b Types.I64 disp (i64 (2 * w))) in
                      let a = get_at c Types.I64 frame p0 in
                      let b' = get_at c Types.I64 frame p1 in
                      let d = Builder.sub c.b Types.I64 a b' in
                      let dn = Builder.sub c.b Types.I64 (i64 0) d in
                      let isneg = Builder.icmp c.b Instr.Slt Types.I64 d (i64 0) in
                      let ad = Builder.select c.b Types.I64 isneg dn d in
                      bump c sad ad);
                  let over = Builder.icmp c.b Instr.Sgt Types.I64 (get c Types.I64 sad) (get c Types.I64 best) in
                  if_then c over (fun () -> set c Types.I64 abort (i64 1))));
          let s = get c Types.I64 sad in
          let ok = Builder.icmp c.b Instr.Eq Types.I64 (get c Types.I64 abort) (i64 0) in
          let lt = Builder.icmp c.b Instr.Slt Types.I64 s (get c Types.I64 best) in
          let take = Builder.and_ c.b Types.I1 ok lt in
          if_then c take (fun () -> set c Types.I64 best (get c Types.I64 sad)));
      bump c total (get c Types.I64 best));
  finish_main c (get c Types.I64 total);
  Modul.mk ~name:"spec2006.h264ref" [ Builder.finish bm ]

(* --- astar: greedy best-first walk on a weighted grid --------------------------- *)

let astar () : Modul.t =
  let n = 32 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let cost = arr c Types.I64 (n * n) in
  for_up c ~from:0 ~bound:(i64 (n * n)) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.add c.b Types.I64
          (Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 23)) (i64 9)) (i64 1) in
      set_at c Types.I64 cost iv v);
  let x = var c Types.I64 (i64 0) in
  let y = var c Types.I64 (i64 0) in
  let path = var c Types.I64 (i64 0) in
  while_ c
    (fun () ->
      let xv = get c Types.I64 x and yv = get c Types.I64 y in
      let fx = Builder.icmp c.b Instr.Slt Types.I64 xv (i64 (n - 1)) in
      let fy = Builder.icmp c.b Instr.Slt Types.I64 yv (i64 (n - 1)) in
      Builder.or_ c.b Types.I1 fx fy)
    (fun () ->
      let xv = get c Types.I64 x and yv = get c Types.I64 y in
      let can_x = Builder.icmp c.b Instr.Slt Types.I64 xv (i64 (n - 1)) in
      let can_y = Builder.icmp c.b Instr.Slt Types.I64 yv (i64 (n - 1)) in
      let xr = Builder.add c.b Types.I64 xv (i64 1) in
      let yd = Builder.add c.b Types.I64 yv (i64 1) in
      let row = Builder.mul c.b Types.I64 yv (i64 n) in
      let rowd = Builder.mul c.b Types.I64 yd (i64 n) in
      let cright0 = get_at c Types.I64 cost (Builder.add c.b Types.I64 row xr) in
      let cdown0 = get_at c Types.I64 cost (Builder.add c.b Types.I64 rowd xv) in
      (* forbid the impossible direction *)
      let cright = Builder.select c.b Types.I64 can_x cright0 (i64 1_000_000) in
      let cdown = Builder.select c.b Types.I64 can_y cdown0 (i64 1_000_000) in
      let right_better = Builder.icmp c.b Instr.Sle Types.I64 cright cdown in
      if_ c right_better
        (fun () ->
          bump c path cright;
          set c Types.I64 x xr)
        (fun () ->
          bump c path cdown;
          set c Types.I64 y yd));
  finish_main c (get c Types.I64 path);
  Modul.mk ~name:"spec2006.astar" [ Builder.finish bm ]

(* --- milc: complex multiply-accumulate sweeps ------------------------------------ *)

let milc () : Modul.t =
  let n = 384 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let ar = arr c Types.F64 n and ai = arr c Types.F64 n in
  let br = arr c Types.F64 n and bi = arr c Types.F64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let f = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 iv in
      set_at c Types.F64 ar iv (Builder.fmul c.b f (Value.cfloat 0.002));
      set_at c Types.F64 ai iv (Builder.fmul c.b f (Value.cfloat (-0.003)));
      set_at c Types.F64 br iv (Builder.fadd c.b f (Value.cfloat 1.0));
      set_at c Types.F64 bi iv (Builder.fmul c.b f (Value.cfloat 0.001)));
  let sr = var c Types.F64 (Value.cfloat 0.0) in
  let si = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 40) (fun _sweep ->
      for_up c ~from:0 ~bound:(i64 n) (fun ip ->
          let iv = get c Types.I64 ip in
          let xr = get_at c Types.F64 ar iv and xi = get_at c Types.F64 ai iv in
          let yr = get_at c Types.F64 br iv and yi = get_at c Types.F64 bi iv in
          let pr = Builder.fsub c.b (Builder.fmul c.b xr yr) (Builder.fmul c.b xi yi) in
          let pi = Builder.fadd c.b (Builder.fmul c.b xr yi) (Builder.fmul c.b xi yr) in
          set c Types.F64 sr (Builder.fadd c.b (get c Types.F64 sr) pr);
          set c Types.F64 si (Builder.fadd c.b (get c Types.F64 si) pi)));
  let mag = Builder.fadd c.b
      (Builder.fmul c.b (get c Types.F64 sr) (get c Types.F64 sr))
      (Builder.fmul c.b (get c Types.F64 si) (get c Types.F64 si)) in
  let r = Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64 mag in
  finish_main c r;
  Modul.mk ~name:"spec2006.milc" [ Builder.finish bm ]

(* --- perlbench: string hashing plus opcode dispatch loop -------------------------- *)

let perlbench () : Modul.t =
  let bh = Builder.create ~name:"hash_step" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let h = Builder.param bh 0 and ch = Builder.param bh 1 in
  let m = Builder.mul bh Types.I64 h (Value.ci64 33) in
  let r = Builder.xor bh Types.I64 m ch in
  Builder.ret bh Types.I64 r;
  let hash_step = Builder.finish bh in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let acc = var c Types.I64 (i64 5381) in
  let pc = var c Types.I64 (i64 0) in
  let stack = arr c Types.I64 32 in
  let sp = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 4000) (fun ip ->
      let iv = get c Types.I64 ip in
      (* hash the "source byte" *)
      let byte = Builder.and_ c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 167)) (i64 127) in
      let h0 = get c Types.I64 acc in
      let h1 = Builder.call c.b Types.I64 "hash_step" [ h0; byte ] in
      set c Types.I64 acc h1;
      (* tiny stack VM: push / add / dup dispatch *)
      let opc = Builder.srem c.b Types.I64 byte (i64 3) in
      let is_push = Builder.icmp c.b Instr.Eq Types.I64 opc (i64 0) in
      if_ c is_push
        (fun () ->
          let s = get c Types.I64 sp in
          let full = Builder.icmp c.b Instr.Sge Types.I64 s (i64 31) in
          if_then c (Builder.xor c.b Types.I1 full (Value.ci1 true)) (fun () ->
              let s = get c Types.I64 sp in
              set_at c Types.I64 stack s byte;
              set c Types.I64 sp (Builder.add c.b Types.I64 s (i64 1))))
        (fun () ->
          let is_add = Builder.icmp c.b Instr.Eq Types.I64 opc (i64 1) in
          if_ c is_add
            (fun () ->
              let s = get c Types.I64 sp in
              let has2 = Builder.icmp c.b Instr.Sge Types.I64 s (i64 2) in
              if_then c has2 (fun () ->
                  let s = get c Types.I64 sp in
                  let t1 = Builder.sub c.b Types.I64 s (i64 1) in
                  let t2 = Builder.sub c.b Types.I64 s (i64 2) in
                  let a = get_at c Types.I64 stack t1 in
                  let b' = get_at c Types.I64 stack t2 in
                  set_at c Types.I64 stack t2 (Builder.add c.b Types.I64 a b');
                  set c Types.I64 sp t1))
            (fun () ->
              let s = get c Types.I64 sp in
              let nonempty = Builder.icmp c.b Instr.Sge Types.I64 s (i64 1) in
              let notfull = Builder.icmp c.b Instr.Slt Types.I64 s (i64 31) in
              let can = Builder.and_ c.b Types.I1 nonempty notfull in
              if_then c can (fun () ->
                  let s = get c Types.I64 sp in
                  let top = get_at c Types.I64 stack (Builder.sub c.b Types.I64 s (i64 1)) in
                  set_at c Types.I64 stack s top;
                  set c Types.I64 sp (Builder.add c.b Types.I64 s (i64 1)))));
      bump c pc (i64 1));
  (* drain stack into checksum *)
  let total = var c Types.I64 (get c Types.I64 acc) in
  for_up c ~from:0 ~bound:(get c Types.I64 sp) (fun kp ->
      let kv = get c Types.I64 kp in
      bump c total (get_at c Types.I64 stack kv));
  finish_main c (Builder.add c.b Types.I64 (get c Types.I64 total) (get c Types.I64 pc));
  Modul.mk ~name:"spec2006.perlbench" [ hash_step; Builder.finish bm ]

(* --- sjeng: recursive perft-style move counting ------------------------------------ *)

let sjeng () : Modul.t =
  let bp = Builder.create ~name:"perft" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  let c = ctx bp in
  Builder.block bp "entry";
  let pos = Builder.param bp 0 and depth = Builder.param bp 1 in
  let count = var c Types.I64 (i64 0) in
  let leaf = Builder.icmp c.b Instr.Sle Types.I64 depth (i64 0) in
  if_ c leaf
    (fun () -> set c Types.I64 count (i64 1))
    (fun () ->
      (* branching factor depends on the position hash: 2..4 moves *)
      let h = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 pos (i64 2654435761)) (i64 3) in
      let nmoves = Builder.add c.b Types.I64 h (i64 2) in
      let m = var c Types.I64 (i64 0) in
      while_ c
        (fun () ->
          let mv = get c Types.I64 m in
          Builder.icmp c.b Instr.Slt Types.I64 mv nmoves)
        (fun () ->
          let mv = get c Types.I64 m in
          let child = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 pos (i64 5)) mv in
          let child2 = Builder.add c.b Types.I64 child (i64 3) in
          let d1 = Builder.sub c.b Types.I64 depth (i64 1) in
          let sub = Builder.call c.b Types.I64 "perft" [ child2; d1 ] in
          bump c count sub;
          set c Types.I64 m (Builder.add c.b Types.I64 mv (i64 1))));
  Builder.ret bp Types.I64 (get c Types.I64 count);
  let perft = Builder.finish bp in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let n = Builder.call c.b Types.I64 "perft" [ i64 1; i64 8 ] in
  finish_main c n;
  Modul.mk ~name:"spec2006.sjeng" [ perft; Builder.finish bm ]

(* --- soplex: dense row reductions ---------------------------------------------------- *)

let soplex () : Modul.t =
  let rows = 24 and cols = 48 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let mat = arr c Types.F64 (rows * cols) in
  for_up c ~from:0 ~bound:(i64 (rows * cols)) (fun ip ->
      let iv = get c Types.I64 ip in
      let f = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 iv in
      let v = Builder.fadd c.b (Builder.fmul c.b f (Value.cfloat 0.0013)) (Value.cfloat 1.0) in
      set_at c Types.F64 mat iv v);
  (* eliminate below each pivot row *)
  for_up c ~from:0 ~bound:(i64 (rows - 1)) (fun pp ->
      let pv = get c Types.I64 pp in
      let prow = Builder.mul c.b Types.I64 pv (i64 cols) in
      let pivot = get_at c Types.F64 mat (Builder.add c.b Types.I64 prow pv) in
      for_up c ~from:0 ~bound:(i64 rows) (fun rp ->
          let rv = get c Types.I64 rp in
          let below = Builder.icmp c.b Instr.Sgt Types.I64 rv pv in
          if_then c below (fun () ->
              let rv = get c Types.I64 rp in
              let rrow = Builder.mul c.b Types.I64 rv (i64 cols) in
              let lead = get_at c Types.F64 mat (Builder.add c.b Types.I64 rrow pv) in
              let factor = Builder.fdiv c.b lead pivot in
              for_up c ~from:0 ~bound:(i64 cols) (fun cp ->
                  let cv = get c Types.I64 cp in
                  let src = get_at c Types.F64 mat (Builder.add c.b Types.I64 prow cv) in
                  let pos = Builder.add c.b Types.I64 rrow cv in
                  let cur = get_at c Types.F64 mat pos in
                  let nv = Builder.fsub c.b cur (Builder.fmul c.b factor src) in
                  set_at c Types.F64 mat pos nv))));
  let acc = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 rows) (fun rp ->
      let rv = get c Types.I64 rp in
      let diag = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 rv (i64 cols)) rv in
      let v = get_at c Types.F64 mat diag in
      set c Types.F64 acc (Builder.fadd c.b (get c Types.F64 acc) v));
  let r = Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64
      (Builder.fmul c.b (get c Types.F64 acc) (Value.cfloat 1000.0)) in
  finish_main c r;
  Modul.mk ~name:"spec2006.soplex" [ Builder.finish bm ]

let all : (string * (unit -> Modul.t)) list =
  [ ("456.hmmer", hmmer);
    ("462.libquantum", libquantum);
    ("445.gobmk", gobmk);
    ("401.bzip2", bzip2);
    ("464.h264ref", h264ref);
    ("473.astar", astar);
    ("433.milc", milc);
    ("400.perlbench", perlbench);
    ("458.sjeng", sjeng);
    ("450.soplex", soplex) ]
