(* Statement-level helpers over [Builder] for writing benchmark programs.

   Programs are deliberately built the way clang -O0 emits them: every
   local variable is an alloca, every statement loads and stores through
   it, and control flow uses the head-tested while shape. That gives
   mem2reg, sroa, licm, loop-rotate and friends exactly the raw material
   they get from a real front end. *)

open Posetrl_ir

type ctx = {
  b : Builder.t;
  mutable label_counter : int;
}

let ctx b = { b; label_counter = 0 }

let fresh_label (c : ctx) (base : string) : string =
  c.label_counter <- c.label_counter + 1;
  Printf.sprintf "%s%d" base c.label_counter

(* local variable: alloca + initial store; use [get]/[set] to access *)
let var (c : ctx) (ty : Types.t) (init : Value.t) : Value.t =
  let p = Builder.alloca c.b ty 1 in
  Builder.store c.b ty init p;
  p

let arr (c : ctx) (ty : Types.t) (n : int) : Value.t = Builder.alloca c.b ty n

let get (c : ctx) (ty : Types.t) (p : Value.t) : Value.t = Builder.load c.b ty p

let set (c : ctx) (ty : Types.t) (p : Value.t) (v : Value.t) : unit =
  Builder.store c.b ty v p

let idx (c : ctx) (ty : Types.t) (base : Value.t) (i : Value.t) : Value.t =
  Builder.gep c.b ty base i

let get_at (c : ctx) (ty : Types.t) (base : Value.t) (i : Value.t) : Value.t =
  get c ty (idx c ty base i)

let set_at (c : ctx) (ty : Types.t) (base : Value.t) (i : Value.t) (v : Value.t) : unit =
  set c ty (idx c ty base i) v

(* while (cond()) { body() } — head-tested, as clang -O0 emits *)
let while_ (c : ctx) (cond : unit -> Value.t) (body : unit -> unit) : unit =
  let head = fresh_label c "while.head" in
  let bodyl = fresh_label c "while.body" in
  let endl = fresh_label c "while.end" in
  Builder.br c.b head;
  Builder.block c.b head;
  let cv = cond () in
  Builder.cbr c.b cv bodyl endl;
  Builder.block c.b bodyl;
  body ();
  Builder.br c.b head;
  Builder.block c.b endl

(* for (i = from; i < bound; i += step) body(i_ptr) *)
let for_up (c : ctx) ?(step = 1) ~(from : int) ~(bound : Value.t) (body : Value.t -> unit) : unit =
  let i = var c Types.I64 (Value.ci64 from) in
  while_ c
    (fun () ->
      let iv = get c Types.I64 i in
      Builder.icmp c.b Instr.Slt Types.I64 iv bound)
    (fun () ->
      body i;
      let iv = get c Types.I64 i in
      let iv' = Builder.add c.b Types.I64 iv (Value.ci64 step) in
      set c Types.I64 i iv')

(* if (cond) then_() else else_() *)
let if_ (c : ctx) (cond : Value.t) (then_ : unit -> unit) (else_ : unit -> unit) : unit =
  let tl = fresh_label c "if.then" in
  let el = fresh_label c "if.else" in
  let jl = fresh_label c "if.end" in
  Builder.cbr c.b cond tl el;
  Builder.block c.b tl;
  then_ ();
  Builder.br c.b jl;
  Builder.block c.b el;
  else_ ();
  Builder.br c.b jl;
  Builder.block c.b jl

let if_then (c : ctx) (cond : Value.t) (then_ : unit -> unit) : unit =
  if_ c cond then_ (fun () -> ())

(* common int ops through memory, clang -O0 style *)
let bump (c : ctx) (p : Value.t) (v : Value.t) : unit =
  let cur = get c Types.I64 p in
  set c Types.I64 p (Builder.add c.b Types.I64 cur v)

let i64 = Value.ci64
