(* Suite registry: the validation suites (disjoint from the training
   corpus, as in the paper) and the training corpus itself. *)

open Posetrl_ir

type suite = {
  suite_name : string;
  programs : (string * (unit -> Modul.t)) list;
}

let mibench = { suite_name = "MiBench"; programs = Mibench.all }

let spec2017 = { suite_name = "SPEC-2017"; programs = Spec2017.all }

let spec2006 = { suite_name = "SPEC-2006"; programs = Spec2006.all }

let validation_suites = [ spec2017; spec2006; mibench ]

let find_program (name : string) : (unit -> Modul.t) option =
  List.find_map
    (fun s -> List.assoc_opt name s.programs)
    validation_suites

let all_programs () : (string * Modul.t) list =
  List.concat_map
    (fun s -> List.map (fun (n, mk) -> (s.suite_name ^ "/" ^ n, mk ())) s.programs)
    validation_suites

(* The 130-program training corpus (paper §V-A): half live-output kernel
   templates in the llvm-test-suite spirit, half random structured
   programs for coverage of odd shapes. Disjoint from the validation
   suites. *)
let training_corpus ?(n = 130) ?(seed = 7) () : Modul.t array =
  Array.init n (fun k ->
      if k mod 2 = 0 then Templates.generate ~seed:(seed + k)
      else Genprog.generate ~seed:(seed + k))
