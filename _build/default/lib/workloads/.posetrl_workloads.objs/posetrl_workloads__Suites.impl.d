lib/workloads/suites.ml: Array Genprog List Mibench Modul Posetrl_ir Spec2006 Spec2017 Templates
