lib/workloads/genprog.ml: Array Builder Dsl Func Instr List Modul Posetrl_ir Posetrl_support Printf Rng Types Value
