lib/workloads/spec2006.ml: Builder Dsl Func Instr Modul Posetrl_ir Types Value
