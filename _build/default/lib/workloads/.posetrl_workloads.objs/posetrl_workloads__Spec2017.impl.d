lib/workloads/spec2017.ml: Builder Dsl Func Instr Modul Posetrl_ir Types Value
