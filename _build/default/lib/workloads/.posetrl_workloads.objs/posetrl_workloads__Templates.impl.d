lib/workloads/templates.ml: Array Builder Dsl Func Instr Modul Posetrl_ir Posetrl_support Printf Rng Types Value
