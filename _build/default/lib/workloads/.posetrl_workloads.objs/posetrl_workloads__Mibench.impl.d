lib/workloads/mibench.ml: Array Builder Char Dsl Func Global Instr Int64 Modul Posetrl_ir String Types Value
