lib/workloads/dsl.ml: Builder Instr Posetrl_ir Printf Types Value
