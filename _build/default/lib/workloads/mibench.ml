(* MiBench-like validation suite: small embedded kernels in the spirit of
   the benchmarks the paper evaluates (bitcount, CRC, dijkstra, sorting,
   image smoothing, FFT-ish float math, hashing, ADPCM, string search,
   basic math). Each program returns an i64 checksum from main. *)

open Posetrl_ir
open Dsl

let finish_main (c : ctx) (result : Value.t) =
  Builder.ret c.b Types.I64 result

let mk_main () =
  Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 ()

(* --- bitcount: count set bits of a pseudo-random stream ------------------ *)

let bitcount () : Modul.t =
  (* helper: popcount by nibble loop *)
  let bh = Builder.create ~name:"popcount" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  let c = ctx bh in
  Builder.block bh "entry";
  let x = var c Types.I64 (Builder.param bh 0) in
  let n = var c Types.I64 (i64 0) in
  while_ c
    (fun () ->
      let xv = get c Types.I64 x in
      Builder.icmp c.b Instr.Ne Types.I64 xv (i64 0))
    (fun () ->
      let xv = get c Types.I64 x in
      let bit = Builder.and_ c.b Types.I64 xv (i64 1) in
      bump c n bit;
      let sh = Builder.lshr c.b Types.I64 xv (i64 1) in
      set c Types.I64 x sh);
  finish_main c (get c Types.I64 n);
  let popcount = Builder.finish bh in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let seed = var c Types.I64 (i64 0x2545F4914F6CDD1D) in
  let total = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 4000) (fun _i ->
      let s = get c Types.I64 seed in
      let s1 = Builder.xor c.b Types.I64 s (Builder.shl c.b Types.I64 s (i64 13)) in
      let s2 = Builder.xor c.b Types.I64 s1 (Builder.lshr c.b Types.I64 s1 (i64 7)) in
      let s3 = Builder.xor c.b Types.I64 s2 (Builder.shl c.b Types.I64 s2 (i64 17)) in
      set c Types.I64 seed s3;
      let pc = Builder.call c.b Types.I64 "popcount" [ s3 ] in
      bump c total pc);
  finish_main c (get c Types.I64 total);
  Modul.mk ~name:"mibench.bitcount" [ popcount; Builder.finish bm ]

(* --- crc32: table-free bitwise CRC over a byte buffer --------------------- *)

let crc32 () : Modul.t =
  let data =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Bytes (String.init 256 (fun i -> Char.chr ((i * 7 + 13) land 0xFF))))
      "crc_data" Types.I8 256
  in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let crc = var c Types.I64 (i64 0xFFFFFFFF) in
  for_up c ~from:0 ~bound:(i64 256) (fun ip ->
      let iv = get c Types.I64 ip in
      let byte = get_at c Types.I8 (Value.global "crc_data") iv in
      let b64 = Builder.zext c.b ~from_ty:Types.I8 ~to_ty:Types.I64 byte in
      let cr = get c Types.I64 crc in
      set c Types.I64 crc (Builder.xor c.b Types.I64 cr b64);
      for_up c ~from:0 ~bound:(i64 8) (fun _j ->
          let cv = get c Types.I64 crc in
          let lsb = Builder.and_ c.b Types.I64 cv (i64 1) in
          let shifted = Builder.lshr c.b Types.I64 cv (i64 1) in
          let is_set = Builder.icmp c.b Instr.Ne Types.I64 lsb (i64 0) in
          if_ c is_set
            (fun () ->
              set c Types.I64 crc
                (Builder.xor c.b Types.I64 shifted (i64 0xEDB88320)))
            (fun () -> set c Types.I64 crc shifted)));
  finish_main c (get c Types.I64 crc);
  Modul.mk ~name:"mibench.crc32" ~globals:[ data ] [ Builder.finish bm ]

(* --- dijkstra: shortest paths on a dense synthetic graph ----------------- *)

let dijkstra () : Modul.t =
  let n = 48 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let adj = arr c Types.I64 (n * n) in
  (* synthetic weights: (i*31 + j*17) mod 97 + 1 *)
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      for_up c ~from:0 ~bound:(i64 n) (fun jp ->
          let iv = get c Types.I64 ip and jv = get c Types.I64 jp in
          let a = Builder.mul c.b Types.I64 iv (i64 31) in
          let bq = Builder.mul c.b Types.I64 jv (i64 17) in
          let s = Builder.add c.b Types.I64 a bq in
          let w = Builder.srem c.b Types.I64 s (i64 97) in
          let w1 = Builder.add c.b Types.I64 w (i64 1) in
          let off = Builder.mul c.b Types.I64 iv (i64 n) in
          let pos = Builder.add c.b Types.I64 off jv in
          set_at c Types.I64 adj pos w1));
  let dist = arr c Types.I64 n in
  let visited = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 dist iv (i64 1_000_000_000);
      set_at c Types.I64 visited iv (i64 0));
  set_at c Types.I64 dist (i64 0) (i64 0);
  for_up c ~from:0 ~bound:(i64 n) (fun _round ->
      (* find unvisited min *)
      let best = var c Types.I64 (i64 (-1)) in
      let bestd = var c Types.I64 (i64 2_000_000_000) in
      for_up c ~from:0 ~bound:(i64 n) (fun ip ->
          let iv = get c Types.I64 ip in
          let vis = get_at c Types.I64 visited iv in
          let unv = Builder.icmp c.b Instr.Eq Types.I64 vis (i64 0) in
          if_then c unv (fun () ->
              let d = get_at c Types.I64 dist iv in
              let lt = Builder.icmp c.b Instr.Slt Types.I64 d (get c Types.I64 bestd) in
              if_then c lt (fun () ->
                  set c Types.I64 bestd d;
                  set c Types.I64 best iv)));
      let bv = get c Types.I64 best in
      let found = Builder.icmp c.b Instr.Sge Types.I64 bv (i64 0) in
      if_then c found (fun () ->
          let bv = get c Types.I64 best in
          set_at c Types.I64 visited bv (i64 1);
          let bd = get_at c Types.I64 dist bv in
          for_up c ~from:0 ~bound:(i64 n) (fun jp ->
              let jv = get c Types.I64 jp in
              let off = Builder.mul c.b Types.I64 bv (i64 n) in
              let pos = Builder.add c.b Types.I64 off jv in
              let w = get_at c Types.I64 adj pos in
              let cand = Builder.add c.b Types.I64 bd w in
              let dj = get_at c Types.I64 dist jv in
              let better = Builder.icmp c.b Instr.Slt Types.I64 cand dj in
              if_then c better (fun () -> set_at c Types.I64 dist jv cand))));
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c sum (get_at c Types.I64 dist iv));
  finish_main c (get c Types.I64 sum);
  Modul.mk ~name:"mibench.dijkstra" [ Builder.finish bm ]

(* --- qsort: shell sort over a generated array ----------------------------- *)

let qsort () : Modul.t =
  let n = 512 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let a = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let x = Builder.mul c.b Types.I64 iv (i64 1103515245) in
      let x2 = Builder.add c.b Types.I64 x (i64 12345) in
      let v = Builder.srem c.b Types.I64 x2 (i64 10007) in
      set_at c Types.I64 a iv v);
  (* shell sort with gap sequence n/2, n/4, ..., 1 *)
  let gap = var c Types.I64 (i64 (n / 2)) in
  while_ c
    (fun () ->
      let g = get c Types.I64 gap in
      Builder.icmp c.b Instr.Sgt Types.I64 g (i64 0))
    (fun () ->
      let g = get c Types.I64 gap in
      for_up c ~from:0 ~bound:(i64 n) (fun ip ->
          let iv = get c Types.I64 ip in
          let ge = Builder.icmp c.b Instr.Sge Types.I64 iv g in
          if_then c ge (fun () ->
              let iv = get c Types.I64 ip in
              let tmp = var c Types.I64 (get_at c Types.I64 a iv) in
              let j = var c Types.I64 iv in
              while_ c
                (fun () ->
                  let jv = get c Types.I64 j in
                  let jge = Builder.icmp c.b Instr.Sge Types.I64 jv g in
                  let jg = Builder.sub c.b Types.I64 jv g in
                  (* guard the load with select to stay in bounds *)
                  let safe_jg =
                    Builder.select c.b Types.I64 jge jg (i64 0)
                  in
                  let prev = get_at c Types.I64 a safe_jg in
                  let bigger =
                    Builder.icmp c.b Instr.Sgt Types.I64 prev (get c Types.I64 tmp)
                  in
                  Builder.and_ c.b Types.I1 jge bigger)
                (fun () ->
                  let jv = get c Types.I64 j in
                  let jg = Builder.sub c.b Types.I64 jv g in
                  let prev = get_at c Types.I64 a jg in
                  set_at c Types.I64 a jv prev;
                  set c Types.I64 j jg);
              set_at c Types.I64 a (get c Types.I64 j) (get c Types.I64 tmp)));
      let g2 = Builder.sdiv c.b Types.I64 (get c Types.I64 gap) (i64 2) in
      set c Types.I64 gap g2);
  (* checksum: weighted sum *)
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = get_at c Types.I64 a iv in
      let w = Builder.mul c.b Types.I64 v iv in
      bump c sum w);
  finish_main c (get c Types.I64 sum);
  Modul.mk ~name:"mibench.qsort" [ Builder.finish bm ]

(* --- susan: 3x1 smoothing filter over a synthetic image ------------------ *)

let susan () : Modul.t =
  let w = 64 and h = 32 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let img = arr c Types.I64 (w * h) in
  let out = arr c Types.I64 (w * h) in
  for_up c ~from:0 ~bound:(i64 (w * h)) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.mul c.b Types.I64 iv (i64 97) in
      let v2 = Builder.srem c.b Types.I64 v (i64 251) in
      set_at c Types.I64 img iv v2);
  for_up c ~from:1 ~bound:(i64 (h - 1)) (fun yp ->
      for_up c ~from:1 ~bound:(i64 (w - 1)) (fun xp ->
          let yv = get c Types.I64 yp and xv = get c Types.I64 xp in
          let row = Builder.mul c.b Types.I64 yv (i64 w) in
          let pos = Builder.add c.b Types.I64 row xv in
          let left = Builder.sub c.b Types.I64 pos (i64 1) in
          let right = Builder.add c.b Types.I64 pos (i64 1) in
          let up = Builder.sub c.b Types.I64 pos (i64 w) in
          let down = Builder.add c.b Types.I64 pos (i64 w) in
          let s0 = get_at c Types.I64 img pos in
          let s1 = Builder.add c.b Types.I64 s0 (get_at c Types.I64 img left) in
          let s2 = Builder.add c.b Types.I64 s1 (get_at c Types.I64 img right) in
          let s3 = Builder.add c.b Types.I64 s2 (get_at c Types.I64 img up) in
          let s4 = Builder.add c.b Types.I64 s3 (get_at c Types.I64 img down) in
          let avg = Builder.sdiv c.b Types.I64 s4 (i64 5) in
          set_at c Types.I64 out pos avg));
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 (w * h)) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c sum (get_at c Types.I64 out iv));
  finish_main c (get c Types.I64 sum);
  Modul.mk ~name:"mibench.susan" [ Builder.finish bm ]

(* --- fft: butterfly-style float mixing ------------------------------------ *)

let fft () : Modul.t =
  let n = 256 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let re = arr c Types.F64 n in
  let im = arr c Types.F64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let fv = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 iv in
      let s = Builder.fmul c.b fv (Value.cfloat 0.1) in
      set_at c Types.F64 re iv s;
      set_at c Types.F64 im iv (Value.cfloat 0.0));
  (* log2(n) passes of neighbour butterflies with constant twiddles *)
  let span = var c Types.I64 (i64 1) in
  while_ c
    (fun () ->
      let s = get c Types.I64 span in
      Builder.icmp c.b Instr.Slt Types.I64 s (i64 n))
    (fun () ->
      let s = get c Types.I64 span in
      for_up c ~from:0 ~bound:(i64 (n / 2)) (fun kp ->
          let kv = get c Types.I64 kp in
          let a = Builder.srem c.b Types.I64 kv (i64 n) in
          let bq = Builder.add c.b Types.I64 a s in
          let bmod = Builder.srem c.b Types.I64 bq (i64 n) in
          let ra = get_at c Types.F64 re a in
          let rb = get_at c Types.F64 re bmod in
          let ia = get_at c Types.F64 im a in
          let ib = get_at c Types.F64 im bmod in
          let tr = Builder.fsub c.b (Builder.fmul c.b rb (Value.cfloat 0.92387953))
                     (Builder.fmul c.b ib (Value.cfloat 0.38268343)) in
          let ti = Builder.fadd c.b (Builder.fmul c.b rb (Value.cfloat 0.38268343))
                     (Builder.fmul c.b ib (Value.cfloat 0.92387953)) in
          set_at c Types.F64 re a (Builder.fadd c.b ra tr);
          set_at c Types.F64 im a (Builder.fadd c.b ia ti);
          set_at c Types.F64 re bmod (Builder.fsub c.b ra tr);
          set_at c Types.F64 im bmod (Builder.fsub c.b ia ti));
      set c Types.I64 span (Builder.shl c.b Types.I64 (get c Types.I64 span) (i64 1)));
  (* checksum: truncate energy to int *)
  let acc = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let r = get_at c Types.F64 re iv in
      let i = get_at c Types.F64 im iv in
      let e = Builder.fadd c.b (Builder.fmul c.b r r) (Builder.fmul c.b i i) in
      let cur = get c Types.F64 acc in
      set c Types.F64 acc (Builder.fadd c.b cur e));
  let total = Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64
                (get c Types.F64 acc) in
  finish_main c total;
  Modul.mk ~name:"mibench.fft" [ Builder.finish bm ]

(* --- sha: rounds of rotate-xor-add mixing --------------------------------- *)

let sha () : Modul.t =
  (* helper rotl *)
  let bh = Builder.create ~name:"rotl" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let x = Builder.param bh 0 and r = Builder.param bh 1 in
  let left = Builder.shl bh Types.I64 x r in
  let inv = Builder.sub bh Types.I64 (Value.ci64 64) r in
  let right = Builder.lshr bh Types.I64 x inv in
  let rot = Builder.or_ bh Types.I64 left right in
  Builder.ret bh Types.I64 rot;
  let rotl = Builder.finish bh in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let h0 = var c Types.I64 (Value.cint Types.I64 0x6A09E667F3BCC908L) in
  let h1 = var c Types.I64 (Value.cint Types.I64 0xBB67AE8584CAA73BL) in
  let h2 = var c Types.I64 (i64 0x3C6EF372FE94F82B) in
  let h3 = var c Types.I64 (Value.cint Types.I64 0xA54FF53A5F1D36F1L) in
  for_up c ~from:0 ~bound:(i64 2000) (fun ip ->
      let iv = get c Types.I64 ip in
      let w = Builder.mul c.b Types.I64 iv (Value.cint Types.I64 0x9E3779B97F4A7C15L) in
      let a = get c Types.I64 h0 in
      let b' = get c Types.I64 h1 in
      let d = get c Types.I64 h3 in
      let t1 = Builder.call c.b Types.I64 "rotl" [ a; i64 5 ] in
      let t2 = Builder.xor c.b Types.I64 t1 b' in
      let t3 = Builder.add c.b Types.I64 t2 w in
      let t4 = Builder.add c.b Types.I64 t3 d in
      set c Types.I64 h3 (get c Types.I64 h2);
      set c Types.I64 h2 (get c Types.I64 h1);
      set c Types.I64 h1 (get c Types.I64 h0);
      set c Types.I64 h0 t4);
  let s1 = Builder.xor c.b Types.I64 (get c Types.I64 h0) (get c Types.I64 h1) in
  let s2 = Builder.xor c.b Types.I64 s1 (get c Types.I64 h2) in
  let s3 = Builder.xor c.b Types.I64 s2 (get c Types.I64 h3) in
  finish_main c s3;
  Modul.mk ~name:"mibench.sha" [ rotl; Builder.finish bm ]

(* --- adpcm: table-driven decode loop -------------------------------------- *)

let adpcm () : Modul.t =
  let steps =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Ints (Array.init 16 (fun i -> Int64.of_int ((i * i * 3) + 7))))
      "step_table" Types.I64 16
  in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let pred = var c Types.I64 (i64 0) in
  let index = var c Types.I64 (i64 0) in
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 3000) (fun ip ->
      let iv = get c Types.I64 ip in
      let nib = Builder.and_ c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 2654435761)) (i64 15) in
      let idx0 = get c Types.I64 index in
      let step = get_at c Types.I64 (Value.global "step_table") idx0 in
      let mag = Builder.and_ c.b Types.I64 nib (i64 7) in
      let delta = Builder.mul c.b Types.I64 step mag in
      let signbit = Builder.and_ c.b Types.I64 nib (i64 8) in
      let neg = Builder.icmp c.b Instr.Ne Types.I64 signbit (i64 0) in
      let pv = get c Types.I64 pred in
      let minus = Builder.sub c.b Types.I64 pv delta in
      let plus = Builder.add c.b Types.I64 pv delta in
      let nv = Builder.select c.b Types.I64 neg minus plus in
      set c Types.I64 pred nv;
      (* index update with clamping *)
      let bigmag = Builder.icmp c.b Instr.Sge Types.I64 mag (i64 4) in
      let up = Builder.add c.b Types.I64 idx0 (i64 2) in
      let down = Builder.sub c.b Types.I64 idx0 (i64 1) in
      let ni = Builder.select c.b Types.I64 bigmag up down in
      let lo = Builder.icmp c.b Instr.Slt Types.I64 ni (i64 0) in
      let ni2 = Builder.select c.b Types.I64 lo (i64 0) ni in
      let hi = Builder.icmp c.b Instr.Sgt Types.I64 ni2 (i64 15) in
      let ni3 = Builder.select c.b Types.I64 hi (i64 15) ni2 in
      set c Types.I64 index ni3;
      bump c sum nv);
  finish_main c (get c Types.I64 sum);
  Modul.mk ~name:"mibench.adpcm" ~globals:[ steps ] [ Builder.finish bm ]

(* --- stringsearch: naive substring search over byte data ------------------ *)

let stringsearch () : Modul.t =
  let hay =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Bytes (String.init 512 (fun i -> Char.chr (97 + ((i * i + i / 3) mod 17)))))
      "haystack" Types.I8 512
  in
  let needle =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Bytes "cabbage") "needle" Types.I8 7
  in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let count = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 (512 - 7)) (fun ip ->
      let matched = var c Types.I64 (i64 1) in
      for_up c ~from:0 ~bound:(i64 7) (fun jp ->
          let iv = get c Types.I64 ip and jv = get c Types.I64 jp in
          let pos = Builder.add c.b Types.I64 iv jv in
          let hc = get_at c Types.I8 (Value.global "haystack") pos in
          let nc = get_at c Types.I8 (Value.global "needle") jv in
          let ne = Builder.icmp c.b Instr.Ne Types.I8 hc nc in
          if_then c ne (fun () -> set c Types.I64 matched (i64 0)));
      let m = get c Types.I64 matched in
      bump c count m);
  (* also count character frequency as a second kernel *)
  let freq = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 512) (fun ip ->
      let iv = get c Types.I64 ip in
      let ch = get_at c Types.I8 (Value.global "haystack") iv in
      let is_a = Builder.icmp c.b Instr.Eq Types.I8 ch (Value.cint Types.I8 97L) in
      let one = Builder.zext c.b ~from_ty:Types.I1 ~to_ty:Types.I64 is_a in
      bump c freq one);
  let r =
    Builder.add c.b Types.I64
      (Builder.mul c.b Types.I64 (get c Types.I64 count) (i64 1000))
      (get c Types.I64 freq)
  in
  finish_main c r;
  Modul.mk ~name:"mibench.stringsearch" ~globals:[ hay; needle ] [ Builder.finish bm ]

(* --- basicmath: integer sqrt and gcd loops --------------------------------- *)

let basicmath () : Modul.t =
  let bsq = Builder.create ~name:"isqrt" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  let c = ctx bsq in
  Builder.block bsq "entry";
  let n = Builder.param bsq 0 in
  let x = var c Types.I64 n in
  let y = var c Types.I64 (i64 1) in
  while_ c
    (fun () ->
      let xv = get c Types.I64 x in
      let yv = get c Types.I64 y in
      Builder.icmp c.b Instr.Sgt Types.I64 xv yv)
    (fun () ->
      let xv = get c Types.I64 x in
      let yv = get c Types.I64 y in
      let s = Builder.add c.b Types.I64 xv yv in
      set c Types.I64 x (Builder.sdiv c.b Types.I64 s (i64 2));
      let xv2 = get c Types.I64 x in
      let q = Builder.sdiv c.b Types.I64 n xv2 in
      set c Types.I64 y q);
  Builder.ret bsq Types.I64 (get c Types.I64 x);
  let isqrt = Builder.finish bsq in

  let bg = Builder.create ~name:"gcd" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  let c = ctx bg in
  Builder.block bg "entry";
  let a = var c Types.I64 (Builder.param bg 0) in
  let b' = var c Types.I64 (Builder.param bg 1) in
  while_ c
    (fun () ->
      let bv = get c Types.I64 b' in
      Builder.icmp c.b Instr.Ne Types.I64 bv (i64 0))
    (fun () ->
      let av = get c Types.I64 a in
      let bv = get c Types.I64 b' in
      let r = Builder.srem c.b Types.I64 av bv in
      set c Types.I64 a bv;
      set c Types.I64 b' r);
  Builder.ret bg Types.I64 (get c Types.I64 a);
  let gcd = Builder.finish bg in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let total = var c Types.I64 (i64 0) in
  for_up c ~from:1 ~bound:(i64 400) (fun ip ->
      let iv = get c Types.I64 ip in
      let sq = Builder.mul c.b Types.I64 iv (i64 37) in
      let r1 = Builder.call c.b Types.I64 "isqrt" [ sq ] in
      let r2 = Builder.call c.b Types.I64 "gcd" [ sq; Builder.add c.b Types.I64 iv (i64 60) ] in
      bump c total (Builder.add c.b Types.I64 r1 r2));
  finish_main c (get c Types.I64 total);
  Modul.mk ~name:"mibench.basicmath" [ isqrt; gcd; Builder.finish bm ]

(* --- blowfish-like feistel rounds ------------------------------------------ *)

let blowfish () : Modul.t =
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let sbox = arr c Types.I64 256 in
  for_up c ~from:0 ~bound:(i64 256) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.mul c.b Types.I64 iv (i64 0x9E3779B9) in
      let v2 = Builder.xor c.b Types.I64 v (i64 0x243F6A88) in
      set_at c Types.I64 sbox iv v2);
  let l = var c Types.I64 (i64 0x0123456789ABCDEF) in
  let r = var c Types.I64 (i64 0x1133557799BBDDFF) in
  for_up c ~from:0 ~bound:(i64 4000) (fun ip ->
      let iv = get c Types.I64 ip in
      let lv = get c Types.I64 l in
      let b0 = Builder.and_ c.b Types.I64 lv (i64 255) in
      let b1 = Builder.and_ c.b Types.I64 (Builder.lshr c.b Types.I64 lv (i64 8)) (i64 255) in
      let s0 = get_at c Types.I64 sbox b0 in
      let s1 = get_at c Types.I64 sbox b1 in
      let f = Builder.add c.b Types.I64 s0 s1 in
      let f2 = Builder.xor c.b Types.I64 f iv in
      let rv = get c Types.I64 r in
      let nr = Builder.xor c.b Types.I64 rv f2 in
      set c Types.I64 r lv;
      set c Types.I64 l nr);
  finish_main c (Builder.xor c.b Types.I64 (get c Types.I64 l) (get c Types.I64 r));
  Modul.mk ~name:"mibench.blowfish" [ Builder.finish bm ]

let all : (string * (unit -> Modul.t)) list =
  [ ("bitcount", bitcount);
    ("crc32", crc32);
    ("dijkstra", dijkstra);
    ("qsort", qsort);
    ("susan", susan);
    ("fft", fft);
    ("sha", sha);
    ("adpcm", adpcm);
    ("stringsearch", stringsearch);
    ("basicmath", basicmath);
    ("blowfish", blowfish) ]
