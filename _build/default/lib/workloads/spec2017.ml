(* SPEC CPU 2017-like validation suite: larger programs with the
   qualitative character of the benchmarks the paper reports on —
   525.x264-like SAD kernels, 541.leela-like recursive tree search,
   520.omnetpp-like event simulation with indirect calls, 508.namd-like
   float kernels, 505.mcf-like network relaxation, 557.xz-like match
   finding, 511.povray-like ray math, 502.gcc-like state machines,
   519.lbm-like stencils, 531.deepsjeng-like alpha-beta search. *)

open Posetrl_ir
open Dsl

let mk_main () =
  Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 ()

let finish_main (c : ctx) (r : Value.t) = Builder.ret c.b Types.I64 r

(* --- x264: sum-of-absolute-differences over macroblocks ------------------- *)

let x264 () : Modul.t =
  let babs = Builder.create ~name:"iabs" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block babs "entry";
  let x = Builder.param babs 0 in
  let neg = Builder.sub babs Types.I64 (Value.ci64 0) x in
  let isneg = Builder.icmp babs Instr.Slt Types.I64 x (Value.ci64 0) in
  let r = Builder.select babs Types.I64 isneg neg x in
  Builder.ret babs Types.I64 r;
  let iabs = Builder.finish babs in

  (* sad over one 8x8 block pair *)
  let bsad =
    Builder.create ~name:"sad8x8" ~params:[ Types.Ptr; Types.Ptr; Types.I64 ]
      ~ret:Types.I64 ()
  in
  let c = ctx bsad in
  Builder.block bsad "entry";
  let a = Builder.param bsad 0
  and b' = Builder.param bsad 1
  and stride = Builder.param bsad 2 in
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 8) (fun yp ->
      for_up c ~from:0 ~bound:(i64 8) (fun xp ->
          let yv = get c Types.I64 yp and xv = get c Types.I64 xp in
          let row = Builder.mul c.b Types.I64 yv stride in
          let pos = Builder.add c.b Types.I64 row xv in
          let va = get_at c Types.I64 a pos in
          let vb = get_at c Types.I64 b' pos in
          let d = Builder.sub c.b Types.I64 va vb in
          let ad = Builder.call c.b Types.I64 "iabs" [ d ] in
          bump c acc ad));
  Builder.ret bsad Types.I64 (get c Types.I64 acc);
  let sad = Builder.finish bsad in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let w = 64 and h = 32 in
  let cur = arr c Types.I64 (w * h) in
  let ref_ = arr c Types.I64 (w * h) in
  for_up c ~from:0 ~bound:(i64 (w * h)) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 73)) (i64 255) in
      set_at c Types.I64 cur iv v;
      let v2 = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 89)) (i64 255) in
      set_at c Types.I64 ref_ iv v2);
  let best = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 (h / 8)) (fun byp ->
      for_up c ~from:0 ~bound:(i64 (w / 8)) (fun bxp ->
          let by = get c Types.I64 byp and bx = get c Types.I64 bxp in
          let yoff = Builder.mul c.b Types.I64 by (i64 (8 * w)) in
          let xoff = Builder.mul c.b Types.I64 bx (i64 8) in
          let off = Builder.add c.b Types.I64 yoff xoff in
          let pa = Builder.gep c.b Types.I64 cur off in
          let pb = Builder.gep c.b Types.I64 ref_ off in
          let s = Builder.call c.b Types.I64 "sad8x8" [ pa; pb; i64 w ] in
          bump c best s));
  finish_main c (get c Types.I64 best);
  Modul.mk ~name:"spec2017.x264" [ iabs; sad; Builder.finish bm ]

(* --- leela: recursive minimax over a synthetic game tree ------------------- *)

let leela () : Modul.t =
  (* value(node) = hash mixing; minimax(node, depth) recursive *)
  let bv = Builder.create ~name:"node_value" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block bv "entry";
  let nde = Builder.param bv 0 in
  let h1 = Builder.mul bv Types.I64 nde (Value.ci64 2654435761) in
  let h2 = Builder.xor bv Types.I64 h1 (Builder.lshr bv Types.I64 h1 (Value.ci64 29)) in
  let h3 = Builder.srem bv Types.I64 h2 (Value.ci64 1000) in
  Builder.ret bv Types.I64 h3;
  let node_value = Builder.finish bv in

  let bmm =
    Builder.create ~name:"minimax" ~params:[ Types.I64; Types.I64; Types.I64 ]
      ~ret:Types.I64 ()
  in
  let c = ctx bmm in
  Builder.block bmm "entry";
  let node = Builder.param bmm 0
  and depth = Builder.param bmm 1
  and maxing = Builder.param bmm 2 in
  let leaf = Builder.icmp c.b Instr.Sle Types.I64 depth (i64 0) in
  let best = var c Types.I64 (i64 0) in
  if_ c leaf
    (fun () ->
      let v = Builder.call c.b Types.I64 "node_value" [ node ] in
      set c Types.I64 best v)
    (fun () ->
      let init = Builder.select c.b Types.I64
          (Builder.icmp c.b Instr.Ne Types.I64 maxing (i64 0))
          (i64 (-100000)) (i64 100000)
      in
      set c Types.I64 best init;
      for_up c ~from:0 ~bound:(i64 4) (fun kp ->
          let kv = get c Types.I64 kp in
          let child0 = Builder.mul c.b Types.I64 node (i64 4) in
          let child = Builder.add c.b Types.I64 child0 kv in
          let child2 = Builder.add c.b Types.I64 child (i64 1) in
          let d1 = Builder.sub c.b Types.I64 depth (i64 1) in
          let flip = Builder.sub c.b Types.I64 (i64 1) maxing in
          let sub = Builder.call c.b Types.I64 "minimax" [ child2; d1; flip ] in
          let cur = get c Types.I64 best in
          let is_max = Builder.icmp c.b Instr.Ne Types.I64 maxing (i64 0) in
          let gt = Builder.icmp c.b Instr.Sgt Types.I64 sub cur in
          let lt = Builder.icmp c.b Instr.Slt Types.I64 sub cur in
          let take_max = Builder.and_ c.b Types.I1 is_max gt in
          let not_max = Builder.xor c.b Types.I1 is_max (Value.ci1 true) in
          let take_min = Builder.and_ c.b Types.I1 not_max lt in
          let take = Builder.or_ c.b Types.I1 take_max take_min in
          let nv = Builder.select c.b Types.I64 take sub cur in
          set c Types.I64 best nv));
  Builder.ret bmm Types.I64 (get c Types.I64 best);
  let minimax = Builder.finish bmm in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let total = var c Types.I64 (i64 0) in
  for_up c ~from:1 ~bound:(i64 12) (fun rp ->
      let rv = get c Types.I64 rp in
      let s = Builder.call c.b Types.I64 "minimax" [ rv; i64 5; i64 1 ] in
      bump c total s);
  finish_main c (get c Types.I64 total);
  Modul.mk ~name:"spec2017.leela" [ node_value; minimax; Builder.finish bm ]

(* --- omnetpp: discrete-event loop with indirect handlers ------------------- *)

let omnetpp () : Modul.t =
  let mk_handler name mix =
    let b = Builder.create ~name ~params:[ Types.I64 ] ~ret:Types.I64 () in
    Builder.block b "entry";
    let e = Builder.param b 0 in
    let v = mix b e in
    Builder.ret b Types.I64 v;
    Builder.finish b
  in
  let h0 =
    mk_handler "on_arrive" (fun b e ->
        Builder.add b Types.I64 (Builder.mul b Types.I64 e (Value.ci64 3)) (Value.ci64 11))
  in
  let h1 =
    mk_handler "on_depart" (fun b e ->
        Builder.xor b Types.I64 e (Builder.lshr b Types.I64 e (Value.ci64 3)))
  in
  let h2 =
    mk_handler "on_timer" (fun b e ->
        Builder.sub b Types.I64 (Builder.shl b Types.I64 e (Value.ci64 1)) (Value.ci64 7))
  in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let handlers = arr c Types.Ptr 3 in
  set_at c Types.Ptr handlers (i64 0) (Value.global "on_arrive");
  set_at c Types.Ptr handlers (i64 1) (Value.global "on_depart");
  set_at c Types.Ptr handlers (i64 2) (Value.global "on_timer");
  let state = var c Types.I64 (i64 42) in
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 5000) (fun _ip ->
      let s = get c Types.I64 state in
      let kind = Builder.srem c.b Types.I64 s (i64 3) in
      let h = get_at c Types.Ptr handlers kind in
      let r = Builder.callind c.b Types.I64 h [ s ] in
      bump c acc r;
      let ns = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 s (Value.cint Types.I64 6364136223846793005L)) (Value.cint Types.I64 1442695040888963407L) in
      let ns2 = Builder.lshr c.b Types.I64 ns (i64 11) in
      set c Types.I64 state ns2);
  finish_main c (get c Types.I64 acc);
  Modul.mk ~name:"spec2017.omnetpp" [ h0; h1; h2; Builder.finish bm ]

(* --- namd: pairwise force float kernel -------------------------------------- *)

let namd () : Modul.t =
  let n = 96 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let px = arr c Types.F64 n and py = arr c Types.F64 n in
  let fx = arr c Types.F64 n and fy = arr c Types.F64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let f = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 iv in
      set_at c Types.F64 px iv (Builder.fmul c.b f (Value.cfloat 0.37));
      set_at c Types.F64 py iv (Builder.fmul c.b f (Value.cfloat 0.73));
      set_at c Types.F64 fx iv (Value.cfloat 0.0);
      set_at c Types.F64 fy iv (Value.cfloat 0.0));
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      for_up c ~from:0 ~bound:(i64 n) (fun jp ->
          let iv = get c Types.I64 ip and jv = get c Types.I64 jp in
          let ne = Builder.icmp c.b Instr.Ne Types.I64 iv jv in
          if_then c ne (fun () ->
              let iv = get c Types.I64 ip and jv = get c Types.I64 jp in
              let xi = get_at c Types.F64 px iv and xj = get_at c Types.F64 px jv in
              let yi = get_at c Types.F64 py iv and yj = get_at c Types.F64 py jv in
              let dx = Builder.fsub c.b xi xj in
              let dy = Builder.fsub c.b yi yj in
              let r2 = Builder.fadd c.b (Builder.fmul c.b dx dx) (Builder.fmul c.b dy dy) in
              let r2c = Builder.fadd c.b r2 (Value.cfloat 0.5) in
              let inv = Builder.fdiv c.b (Value.cfloat 1.0) r2c in
              let fxi = get_at c Types.F64 fx iv in
              let fyi = get_at c Types.F64 fy iv in
              set_at c Types.F64 fx iv (Builder.fadd c.b fxi (Builder.fmul c.b dx inv));
              set_at c Types.F64 fy iv (Builder.fadd c.b fyi (Builder.fmul c.b dy inv)))));
  let acc = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let vx = get_at c Types.F64 fx iv in
      let vy = get_at c Types.F64 fy iv in
      let e = Builder.fadd c.b (Builder.fmul c.b vx vx) (Builder.fmul c.b vy vy) in
      set c Types.F64 acc (Builder.fadd c.b (get c Types.F64 acc) e));
  let r = Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64
      (Builder.fmul c.b (get c Types.F64 acc) (Value.cfloat 1000.0))
  in
  finish_main c r;
  Modul.mk ~name:"spec2017.namd" [ Builder.finish bm ]

(* --- mcf: Bellman-Ford-style relaxation over an arc list -------------------- *)

let mcf () : Modul.t =
  let nodes = 64 and arcs = 256 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let src = arr c Types.I64 arcs and dst = arr c Types.I64 arcs in
  let cost = arr c Types.I64 arcs in
  for_up c ~from:0 ~bound:(i64 arcs) (fun ip ->
      let iv = get c Types.I64 ip in
      let s = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 37)) (i64 nodes) in
      let d = Builder.srem c.b Types.I64 (Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 53)) (i64 11)) (i64 nodes) in
      let w = Builder.add c.b Types.I64 (Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 19)) (i64 40)) (i64 1) in
      set_at c Types.I64 src iv s;
      set_at c Types.I64 dst iv d;
      set_at c Types.I64 cost iv w);
  let dist = arr c Types.I64 nodes in
  for_up c ~from:0 ~bound:(i64 nodes) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 dist iv (i64 1_000_000));
  set_at c Types.I64 dist (i64 0) (i64 0);
  for_up c ~from:0 ~bound:(i64 (nodes - 1)) (fun _round ->
      for_up c ~from:0 ~bound:(i64 arcs) (fun ap ->
          let av = get c Types.I64 ap in
          let s = get_at c Types.I64 src av in
          let d = get_at c Types.I64 dst av in
          let w = get_at c Types.I64 cost av in
          let ds = get_at c Types.I64 dist s in
          let cand = Builder.add c.b Types.I64 ds w in
          let dd = get_at c Types.I64 dist d in
          let lt = Builder.icmp c.b Instr.Slt Types.I64 cand dd in
          if_then c lt (fun () ->
              let av = get c Types.I64 ap in
              let d = get_at c Types.I64 dst av in
              set_at c Types.I64 dist d cand)));
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 nodes) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c sum (get_at c Types.I64 dist iv));
  finish_main c (get c Types.I64 sum);
  Modul.mk ~name:"spec2017.mcf" [ Builder.finish bm ]

(* --- xz: LZ77-style longest-match search ------------------------------------ *)

let xz () : Modul.t =
  let len = 600 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let buf = arr c Types.I64 len in
  for_up c ~from:0 ~bound:(i64 len) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 11)) (i64 7) in
      set_at c Types.I64 buf iv v);
  let total = var c Types.I64 (i64 0) in
  for_up c ~from:1 ~bound:(i64 len) (fun posp ->
      let best = var c Types.I64 (i64 0) in
      let pos = get c Types.I64 posp in
      let start = Builder.sub c.b Types.I64 pos (i64 32) in
      let neg = Builder.icmp c.b Instr.Slt Types.I64 start (i64 0) in
      let start2 = Builder.select c.b Types.I64 neg (i64 0) start in
      let cand = var c Types.I64 start2 in
      while_ c
        (fun () ->
          let cv = get c Types.I64 cand in
          Builder.icmp c.b Instr.Slt Types.I64 cv (get c Types.I64 posp))
        (fun () ->
          let cv = get c Types.I64 cand in
          let pv = get c Types.I64 posp in
          let mlen = var c Types.I64 (i64 0) in
          let cont = var c Types.I64 (i64 1) in
          while_ c
            (fun () ->
              let ml = get c Types.I64 mlen in
              let cnt = get c Types.I64 cont in
              let inb = Builder.icmp c.b Instr.Slt Types.I64
                  (Builder.add c.b Types.I64 pv ml) (i64 len) in
              let going = Builder.icmp c.b Instr.Ne Types.I64 cnt (i64 0) in
              let short = Builder.icmp c.b Instr.Slt Types.I64 ml (i64 16) in
              Builder.and_ c.b Types.I1 (Builder.and_ c.b Types.I1 inb going) short)
            (fun () ->
              let ml = get c Types.I64 mlen in
              let a = get_at c Types.I64 buf (Builder.add c.b Types.I64 cv ml) in
              let b' = get_at c Types.I64 buf (Builder.add c.b Types.I64 pv ml) in
              let eq = Builder.icmp c.b Instr.Eq Types.I64 a b' in
              if_ c eq
                (fun () -> set c Types.I64 mlen (Builder.add c.b Types.I64 (get c Types.I64 mlen) (i64 1)))
                (fun () -> set c Types.I64 cont (i64 0)));
          let ml = get c Types.I64 mlen in
          let better = Builder.icmp c.b Instr.Sgt Types.I64 ml (get c Types.I64 best) in
          if_then c better (fun () -> set c Types.I64 best (get c Types.I64 mlen));
          set c Types.I64 cand (Builder.add c.b Types.I64 (get c Types.I64 cand) (i64 1)));
      bump c total (get c Types.I64 best));
  finish_main c (get c Types.I64 total);
  Modul.mk ~name:"spec2017.xz" [ Builder.finish bm ]

(* --- povray: sphere-intersection float math ---------------------------------- *)

let povray () : Modul.t =
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let hits = var c Types.I64 (i64 0) in
  let accum = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 64) (fun yp ->
      for_up c ~from:0 ~bound:(i64 64) (fun xp ->
          let yv = get c Types.I64 yp and xv = get c Types.I64 xp in
          let fx = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 xv in
          let fy = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 yv in
          let dx = Builder.fsub c.b (Builder.fmul c.b fx (Value.cfloat 0.03125)) (Value.cfloat 1.0) in
          let dy = Builder.fsub c.b (Builder.fmul c.b fy (Value.cfloat 0.03125)) (Value.cfloat 1.0) in
          (* ray-sphere: b = dx*ox + dy*oy; disc = b^2 - (o.o - r^2) *)
          let b' = Builder.fadd c.b (Builder.fmul c.b dx (Value.cfloat 0.5))
              (Builder.fmul c.b dy (Value.cfloat (-0.3))) in
          let oo = Value.cfloat (0.25 +. 0.09) in
          let disc = Builder.fsub c.b (Builder.fmul c.b b' b')
              (Builder.fsub c.b oo (Value.cfloat 0.64)) in
          let pos = Builder.fcmp c.b Instr.Sgt disc (Value.cfloat 0.0) in
          if_then c pos (fun () ->
              set c Types.I64 hits (Builder.add c.b Types.I64 (get c Types.I64 hits) (i64 1));
              let cur = get c Types.F64 accum in
              set c Types.F64 accum (Builder.fadd c.b cur disc))));
  let scaled = Builder.fmul c.b (get c Types.F64 accum) (Value.cfloat 100.0) in
  let si = Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64 scaled in
  let r = Builder.add c.b Types.I64 si
      (Builder.mul c.b Types.I64 (get c Types.I64 hits) (i64 100000)) in
  finish_main c r;
  Modul.mk ~name:"spec2017.povray" [ Builder.finish bm ]

(* --- gcc: switch-driven token state machine ----------------------------------- *)

let gcc () : Modul.t =
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let state = var c Types.I64 (i64 0) in
  let out = var c Types.I64 (i64 0) in
  let stream = var c Types.I64 (i64 12345) in
  for_up c ~from:0 ~bound:(i64 6000) (fun _ip ->
      let s = get c Types.I64 stream in
      let tok = Builder.srem c.b Types.I64 s (i64 6) in
      let ns = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 s (i64 1103515245)) (i64 12345) in
      let ns2 = Builder.and_ c.b Types.I64 ns (Value.cint Types.I64 0x3FFFFFFFL) in
      set c Types.I64 stream ns2;
      (* switch over (state*6 + tok) via nested branches *)
      let st = get c Types.I64 state in
      let key0 = Builder.mul c.b Types.I64 st (i64 6) in
      let key = Builder.add c.b Types.I64 key0 tok in
      let km = Builder.srem c.b Types.I64 key (i64 5) in
      let is0 = Builder.icmp c.b Instr.Eq Types.I64 km (i64 0) in
      if_ c is0
        (fun () ->
          set c Types.I64 state (i64 1);
          bump c out (i64 3))
        (fun () ->
          let is1 = Builder.icmp c.b Instr.Eq Types.I64 km (i64 1) in
          if_ c is1
            (fun () ->
              set c Types.I64 state (i64 2);
              bump c out (i64 5))
            (fun () ->
              let is2 = Builder.icmp c.b Instr.Eq Types.I64 km (i64 2) in
              if_ c is2
                (fun () ->
                  set c Types.I64 state (i64 3);
                  bump c out (i64 7))
                (fun () ->
                  let is3 = Builder.icmp c.b Instr.Eq Types.I64 km (i64 3) in
                  if_ c is3
                    (fun () ->
                      set c Types.I64 state (i64 0);
                      bump c out (i64 11))
                    (fun () ->
                      set c Types.I64 state (i64 4);
                      bump c out (i64 13))))));
  let st = get c Types.I64 state in
  let r = Builder.add c.b Types.I64 (get c Types.I64 out) st in
  finish_main c r;
  Modul.mk ~name:"spec2017.gcc" [ Builder.finish bm ]

(* --- lbm: 1D three-point stencil sweeps ---------------------------------------- *)

let lbm () : Modul.t =
  let n = 512 in
  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let a = arr c Types.F64 n and b' = arr c Types.F64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let f = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 iv in
      set_at c Types.F64 a iv (Builder.fmul c.b f (Value.cfloat 0.01));
      set_at c Types.F64 b' iv (Value.cfloat 0.0));
  for_up c ~from:0 ~bound:(i64 30) (fun _sweep ->
      for_up c ~from:1 ~bound:(i64 (n - 1)) (fun ip ->
          let iv = get c Types.I64 ip in
          let l = Builder.sub c.b Types.I64 iv (i64 1) in
          let r = Builder.add c.b Types.I64 iv (i64 1) in
          let vl = get_at c Types.F64 a l in
          let vc = get_at c Types.F64 a iv in
          let vr = get_at c Types.F64 a r in
          let s = Builder.fadd c.b vl (Builder.fadd c.b (Builder.fmul c.b vc (Value.cfloat 2.0)) vr) in
          set_at c Types.F64 b' iv (Builder.fmul c.b s (Value.cfloat 0.25)));
      for_up c ~from:1 ~bound:(i64 (n - 1)) (fun ip ->
          let iv = get c Types.I64 ip in
          set_at c Types.F64 a iv (get_at c Types.F64 b' iv)));
  let acc = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set c Types.F64 acc (Builder.fadd c.b (get c Types.F64 acc) (get_at c Types.F64 a iv)));
  let r = Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64
      (Builder.fmul c.b (get c Types.F64 acc) (Value.cfloat 100.0)) in
  finish_main c r;
  Modul.mk ~name:"spec2017.lbm" [ Builder.finish bm ]

(* --- deepsjeng: alpha-beta with transposition-like memo ------------------------ *)

let deepsjeng () : Modul.t =
  let beval = Builder.create ~name:"eval_pos" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block beval "entry";
  let p = Builder.param beval 0 in
  let a = Builder.mul beval Types.I64 p (Value.ci64 48271) in
  let b' = Builder.srem beval Types.I64 a (Value.ci64 197) in
  let r = Builder.sub beval Types.I64 b' (Value.ci64 98) in
  Builder.ret beval Types.I64 r;
  let eval_pos = Builder.finish beval in

  let bab =
    Builder.create ~name:"alphabeta"
      ~params:[ Types.I64; Types.I64; Types.I64; Types.I64 ] ~ret:Types.I64 ()
  in
  let c = ctx bab in
  Builder.block bab "entry";
  let pos = Builder.param bab 0
  and depth = Builder.param bab 1
  and alpha = Builder.param bab 2
  and beta = Builder.param bab 3 in
  let result = var c Types.I64 (i64 0) in
  let leaf = Builder.icmp c.b Instr.Sle Types.I64 depth (i64 0) in
  if_ c leaf
    (fun () ->
      let v = Builder.call c.b Types.I64 "eval_pos" [ pos ] in
      set c Types.I64 result v)
    (fun () ->
      let a' = var c Types.I64 alpha in
      let done_ = var c Types.I64 (i64 0) in
      for_up c ~from:0 ~bound:(i64 3) (fun mp ->
          let not_done = Builder.icmp c.b Instr.Eq Types.I64 (get c Types.I64 done_) (i64 0) in
          if_then c not_done (fun () ->
              let mv = get c Types.I64 mp in
              let child0 = Builder.mul c.b Types.I64 pos (i64 3) in
              let child = Builder.add c.b Types.I64 child0 mv in
              let child1 = Builder.add c.b Types.I64 child (i64 7) in
              let d1 = Builder.sub c.b Types.I64 depth (i64 1) in
              let nb = Builder.sub c.b Types.I64 (i64 0) (get c Types.I64 a') in
              let na = Builder.sub c.b Types.I64 (i64 0) beta in
              let sub = Builder.call c.b Types.I64 "alphabeta" [ child1; d1; na; nb ] in
              let score = Builder.sub c.b Types.I64 (i64 0) sub in
              let better = Builder.icmp c.b Instr.Sgt Types.I64 score (get c Types.I64 a') in
              if_then c better (fun () -> set c Types.I64 a' score);
              let cutoff = Builder.icmp c.b Instr.Sge Types.I64 (get c Types.I64 a') beta in
              if_then c cutoff (fun () -> set c Types.I64 done_ (i64 1))));
      set c Types.I64 result (get c Types.I64 a'));
  Builder.ret bab Types.I64 (get c Types.I64 result);
  let alphabeta = Builder.finish bab in

  let bm = mk_main () in
  let c = ctx bm in
  Builder.block bm "entry";
  let total = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 20) (fun rp ->
      let rv = get c Types.I64 rp in
      let s = Builder.call c.b Types.I64 "alphabeta"
          [ rv; i64 6; i64 (-100000); i64 100000 ] in
      bump c total s);
  finish_main c (get c Types.I64 total);
  Modul.mk ~name:"spec2017.deepsjeng" [ eval_pos; alphabeta; Builder.finish bm ]

let all : (string * (unit -> Modul.t)) list =
  [ ("508.namd", namd);
    ("505.mcf", mcf);
    ("525.x264", x264);
    ("541.leela", leela);
    ("520.omnetpp", omnetpp);
    ("557.xz", xz);
    ("511.povray", povray);
    ("502.gcc", gcc);
    ("519.lbm", lbm);
    ("531.deepsjeng", deepsjeng) ]
