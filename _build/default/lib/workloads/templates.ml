(* Parameterized kernel templates for the training corpus.

   The paper trains on the llvm-test-suite single-source programs: small
   but *real* kernels whose results are live. Purely random programs are
   a poor stand-in on their own — they contain lots of dead computation,
   so a reward-greedy policy overfits to dead-code passes that do nothing
   on real code. These templates generate live-output kernels (reductions,
   stencils, scans, sorting networks, hashing, string matching, matrix
   products, histogram, polynomial evaluation) over a seeded parameter
   space; mixed with the random programs they give the corpus the same
   flavour as the paper's training set. *)

open Posetrl_ir
open Posetrl_support
open Dsl

let mk_main name =
  Builder.create ~linkage:Func.External ~name:(ignore name; "main") ~params:[] ~ret:Types.I64 ()

(* every template returns main's builder context plus a checksum value *)

let reduction (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 16 + (8 * Rng.int rng 24) in
  let stride = 1 + Rng.int rng 3 in
  let a = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv (Builder.mul c.b Types.I64 iv (i64 (Rng.int rng 50 + 1))));
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~step:stride ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c acc (get_at c Types.I64 a iv));
  ignore b;
  get c Types.I64 acc

let stencil (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 32 + (8 * Rng.int rng 16) in
  let sweeps = 2 + Rng.int rng 6 in
  let a = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv iv);
  for_up c ~from:0 ~bound:(i64 sweeps) (fun _s ->
      for_up c ~from:1 ~bound:(i64 (n - 1)) (fun ip ->
          let iv = get c Types.I64 ip in
          let l = get_at c Types.I64 a (Builder.sub c.b Types.I64 iv (i64 1)) in
          let r = get_at c Types.I64 a (Builder.add c.b Types.I64 iv (i64 1)) in
          let m = get_at c Types.I64 a iv in
          let s = Builder.add c.b Types.I64 l (Builder.add c.b Types.I64 m r) in
          set_at c Types.I64 a iv (Builder.sdiv c.b Types.I64 s (i64 3))));
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c acc (get_at c Types.I64 a iv));
  ignore b;
  get c Types.I64 acc

let prefix_scan (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 24 + (8 * Rng.int rng 20) in
  let a = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv
        (Builder.and_ c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 2654435761)) (i64 255)));
  let run = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c run (get_at c Types.I64 a iv);
      set_at c Types.I64 a iv (get c Types.I64 run));
  ignore b;
  get_at c Types.I64 a (i64 (Rng.int rng 8))

let hashing (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let rounds = 200 + (100 * Rng.int rng 12) in
  let mult = [| 31L; 33L; 131L; 1099511628211L |].(Rng.int rng 4) in
  let h = var c Types.I64 (i64 (5381 + Rng.int rng 100)) in
  for_up c ~from:0 ~bound:(i64 rounds) (fun ip ->
      let iv = get c Types.I64 ip in
      let hv = get c Types.I64 h in
      let m = Builder.mul c.b Types.I64 hv (Value.cint Types.I64 mult) in
      let x = Builder.xor c.b Types.I64 m iv in
      let sh = Builder.lshr c.b Types.I64 x (i64 (1 + Rng.int rng 3)) in
      set c Types.I64 h (Builder.xor c.b Types.I64 x sh));
  ignore b;
  get c Types.I64 h

let matmul (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 4 + Rng.int rng 8 in
  let a = arr c Types.I64 (n * n) and bq = arr c Types.I64 (n * n) in
  let out = arr c Types.I64 (n * n) in
  for_up c ~from:0 ~bound:(i64 (n * n)) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv (Builder.srem c.b Types.I64 iv (i64 7));
      set_at c Types.I64 bq iv (Builder.srem c.b Types.I64 iv (i64 5)));
  for_up c ~from:0 ~bound:(i64 n) (fun ipi ->
      for_up c ~from:0 ~bound:(i64 n) (fun ipj ->
          let acc = var c Types.I64 (i64 0) in
          for_up c ~from:0 ~bound:(i64 n) (fun ipk ->
              let iv = get c Types.I64 ipi and jv = get c Types.I64 ipj
              and kv = get c Types.I64 ipk in
              let va = get_at c Types.I64 a (Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 n)) kv) in
              let vb = get_at c Types.I64 bq (Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 kv (i64 n)) jv) in
              bump c acc (Builder.mul c.b Types.I64 va vb));
          let iv = get c Types.I64 ipi and jv = get c Types.I64 ipj in
          set_at c Types.I64 out
            (Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 n)) jv)
            (get c Types.I64 acc)));
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 (n * n)) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c acc (get_at c Types.I64 out iv));
  ignore b;
  get c Types.I64 acc

let histogram (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 200 + (50 * Rng.int rng 8) in
  let buckets = 8 lsl Rng.int rng 2 in
  let hist = arr c Types.I64 buckets in
  for_up c ~from:0 ~bound:(i64 buckets) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 hist iv (i64 0));
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = Builder.mul c.b Types.I64 iv (i64 48271) in
      let k = Builder.and_ c.b Types.I64 v (i64 (buckets - 1)) in
      let cur = get_at c Types.I64 hist k in
      set_at c Types.I64 hist k (Builder.add c.b Types.I64 cur (i64 1)));
  (* weighted checksum *)
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 buckets) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = get_at c Types.I64 hist iv in
      bump c acc (Builder.mul c.b Types.I64 v (Builder.add c.b Types.I64 iv (i64 1))));
  ignore b;
  get c Types.I64 acc

let polynomial (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  (* Horner evaluation of a degree-d polynomial at many points, through a
     helper function (inlining fodder) *)
  ignore b;
  let d = 3 + Rng.int rng 5 in
  let pts = 50 + (25 * Rng.int rng 6) in
  let coeff = arr c Types.I64 d in
  for_up c ~from:0 ~bound:(i64 d) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 coeff iv (Builder.add c.b Types.I64 iv (i64 (Rng.int rng 9 + 1))));
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 pts) (fun ip ->
      let x = get c Types.I64 ip in
      let h = var c Types.I64 (i64 0) in
      for_up c ~from:0 ~bound:(i64 d) (fun kp ->
          let kv = get c Types.I64 kp in
          let cv = get_at c Types.I64 coeff kv in
          let hv = get c Types.I64 h in
          let m = Builder.mul c.b Types.I64 hv x in
          let m = Builder.and_ c.b Types.I64 m (Value.cint Types.I64 0xFFFFFFFL) in
          set c Types.I64 h (Builder.add c.b Types.I64 m cv));
      bump c acc (get c Types.I64 h));
  get c Types.I64 acc

let sorting_network (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 16 + (16 * Rng.int rng 3) in
  let a = arr c Types.I64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv
        (Builder.srem c.b Types.I64 (Builder.mul c.b Types.I64 iv (i64 7919)) (i64 1000)));
  (* odd-even transposition: n rounds of compare-exchange *)
  for_up c ~from:0 ~bound:(i64 n) (fun rp ->
      let rv = get c Types.I64 rp in
      let parity = Builder.and_ c.b Types.I64 rv (i64 1) in
      for_up c ~from:0 ~bound:(i64 ((n / 2) - 1)) (fun kp ->
          let kv = get c Types.I64 kp in
          let base = Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 kv (i64 2)) parity in
          let nxt = Builder.add c.b Types.I64 base (i64 1) in
          let x = get_at c Types.I64 a base in
          let y = get_at c Types.I64 a nxt in
          let gt = Builder.icmp c.b Instr.Sgt Types.I64 x y in
          let lo = Builder.select c.b Types.I64 gt y x in
          let hi = Builder.select c.b Types.I64 gt x y in
          set_at c Types.I64 a base lo;
          set_at c Types.I64 a nxt hi));
  ignore b;
  (* checksum of a few positions *)
  let p = Rng.int rng (n / 2) in
  let x = get_at c Types.I64 a (i64 p) in
  let y = get_at c Types.I64 a (i64 (n - 1 - p)) in
  Builder.add c.b Types.I64 (Builder.mul c.b Types.I64 x (i64 1000)) y

let float_kernel (rng : Rng.t) (b : Builder.t) (c : ctx) : Value.t =
  let n = 64 + (32 * Rng.int rng 6) in
  let a = arr c Types.F64 n in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let f = Builder.cast c.b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 iv in
      set_at c Types.F64 a iv (Builder.fmul c.b f (Value.cfloat (0.01 +. Rng.float rng))));
  let acc = var c Types.F64 (Value.cfloat 0.0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = get_at c Types.F64 a iv in
      let sq = Builder.fmul c.b v v in
      set c Types.F64 acc (Builder.fadd c.b (get c Types.F64 acc) sq));
  ignore b;
  Builder.cast c.b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64
    (Builder.fmul c.b (get c Types.F64 acc) (Value.cfloat 100.0))

(* A helper function some templates call, so the inliner has real work. *)
let mix_helper (rng : Rng.t) : Func.t =
  let b = Builder.create ~name:"mix" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block b "entry";
  let x = Builder.param b 0 in
  let m = Builder.mul b Types.I64 x (Value.ci64 (Rng.int rng 1000 + 3)) in
  let s = Builder.lshr b Types.I64 m (Value.ci64 (1 + Rng.int rng 5)) in
  let r = Builder.xor b Types.I64 m s in
  Builder.ret b Types.I64 r;
  Builder.finish b

let families =
  [| ("reduction", reduction); ("stencil", stencil); ("scan", prefix_scan);
     ("hashing", hashing); ("matmul", matmul); ("histogram", histogram);
     ("polynomial", polynomial); ("sorting", sorting_network);
     ("floatkernel", float_kernel) |]

(* Generate one kernel program: 1-2 template instances whose checksums
   combine, sometimes through the helper. *)
let generate ~(seed : int) : Modul.t =
  let rng = Rng.create (seed * 7_368_787 + 5) in
  let use_helper = Rng.bool rng in
  let helper = if use_helper then [ mix_helper rng ] else [] in
  let fam_name, fam = Rng.choose rng families in
  let b = mk_main fam_name in
  let c = ctx b in
  Builder.block b "entry";
  let v1 = fam rng b c in
  let v2 =
    if Rng.int rng 3 = 0 then begin
      let _, fam2 = Rng.choose rng families in
      fam2 rng b c
    end
    else i64 (Rng.int rng 1000)
  in
  let combined = Builder.add c.b Types.I64 v1 v2 in
  let result =
    if use_helper then Builder.call c.b Types.I64 "mix" [ combined ] else combined
  in
  Builder.ret b Types.I64 result;
  Modul.mk ~name:(Printf.sprintf "tmpl.%s.%d" fam_name seed) (helper @ [ Builder.finish b ])
