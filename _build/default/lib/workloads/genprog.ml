(* Seeded random program generator for the training corpus.

   The paper trains on 130 single-source programs from the llvm-test-suite;
   we stand those in with structured random programs: a few helper
   functions plus a main, built from counted loops (guaranteed
   termination), branches, scalar arithmetic chains and array traffic
   through masked indices (guaranteed in-bounds). Programs are valid by
   construction, deterministic per seed, and diverse enough that the DQN
   sees a spread of embeddings. *)

open Posetrl_ir
open Posetrl_support
open Dsl

let array_size = 64 (* power of two so indices mask cheaply *)

type genv = {
  rng : Rng.t;
  c : ctx;
  mutable int_vars : Value.t list; (* alloca pointers of i64 locals *)
  mutable arrays : Value.t list;
  helpers : string list;
  mutable depth : int;
}

(* random arithmetic expression over current values *)
let rec gen_expr (g : genv) (budget : int) : Value.t =
  let b = g.c.b in
  if budget <= 0 || g.int_vars = [] then
    match Rng.int g.rng 3 with
    | 0 when g.int_vars <> [] -> get g.c Types.I64 (Rng.choose_list g.rng g.int_vars)
    | _ -> i64 (Rng.int g.rng 1000 - 200)
  else
    match Rng.int g.rng 10 with
    | 0 | 1 -> get g.c Types.I64 (Rng.choose_list g.rng g.int_vars)
    | 2 -> i64 (Rng.int g.rng 5000 - 1000)
    | 3 ->
      let x = gen_expr g (budget - 1) and y = gen_expr g (budget - 1) in
      Builder.add b Types.I64 x y
    | 4 ->
      let x = gen_expr g (budget - 1) and y = gen_expr g (budget - 1) in
      Builder.sub b Types.I64 x y
    | 5 ->
      let x = gen_expr g (budget - 1) in
      Builder.mul b Types.I64 x (i64 (1 + Rng.int g.rng 64))
    | 6 ->
      let x = gen_expr g (budget - 1) and y = gen_expr g (budget - 1) in
      Builder.xor b Types.I64 x y
    | 7 ->
      let x = gen_expr g (budget - 1) in
      Builder.and_ b Types.I64 x (i64 ((1 lsl (1 + Rng.int g.rng 10)) - 1))
    | 8 ->
      let x = gen_expr g (budget - 1) in
      Builder.lshr b Types.I64 x (i64 (Rng.int g.rng 8))
    | _ ->
      let x = gen_expr g (budget - 1) in
      (* non-trapping division by a non-zero constant *)
      Builder.sdiv b Types.I64 x (i64 (2 + Rng.int g.rng 14))

let masked_index (g : genv) (v : Value.t) : Value.t =
  Builder.and_ g.c.b Types.I64 v (i64 (array_size - 1))

let gen_cond (g : genv) : Value.t =
  let x = gen_expr g 2 and y = gen_expr g 2 in
  let pred =
    Rng.choose g.rng [| Instr.Slt; Instr.Sle; Instr.Sgt; Instr.Eq; Instr.Ne |]
  in
  Builder.icmp g.c.b pred Types.I64 x y

(* one random statement; recursion bounded by [g.depth] *)
let rec gen_stmt (g : genv) : unit =
  let choice = Rng.int g.rng 12 in
  match choice with
  | 0 | 1 | 2 ->
    (* assignment to a variable *)
    if g.int_vars <> [] then begin
      let v = Rng.choose_list g.rng g.int_vars in
      set g.c Types.I64 v (gen_expr g 3)
    end
  | 3 | 4 ->
    (* array store *)
    if g.arrays <> [] then begin
      let a = Rng.choose_list g.rng g.arrays in
      let idx = masked_index g (gen_expr g 2) in
      set_at g.c Types.I64 a idx (gen_expr g 3)
    end
  | 5 | 6 ->
    (* array load into a variable *)
    if g.arrays <> [] && g.int_vars <> [] then begin
      let a = Rng.choose_list g.rng g.arrays in
      let v = Rng.choose_list g.rng g.int_vars in
      let idx = masked_index g (gen_expr g 2) in
      set g.c Types.I64 v (get_at g.c Types.I64 a idx)
    end
  | 7 | 8 when g.depth < 2 ->
    (* counted loop *)
    g.depth <- g.depth + 1;
    let trips = 2 + Rng.int g.rng 24 in
    let body_stmts = 1 + Rng.int g.rng 3 in
    for_up g.c ~from:0 ~bound:(i64 trips) (fun ip ->
        (* expose the induction variable as a temporary *)
        if g.int_vars <> [] && Rng.bool g.rng then begin
          let v = Rng.choose_list g.rng g.int_vars in
          let iv = get g.c Types.I64 ip in
          set g.c Types.I64 v (Builder.add g.c.b Types.I64 (get g.c Types.I64 v) iv)
        end;
        for _ = 1 to body_stmts do
          gen_stmt g
        done);
    g.depth <- g.depth - 1
  | 9 when g.depth < 3 ->
    (* branch *)
    g.depth <- g.depth + 1;
    let n_then = 1 + Rng.int g.rng 2 in
    let n_else = Rng.int g.rng 2 in
    if_ g.c (gen_cond g)
      (fun () -> for _ = 1 to n_then do gen_stmt g done)
      (fun () -> for _ = 1 to n_else do gen_stmt g done);
    g.depth <- g.depth - 1
  | 10 when g.helpers <> [] && g.int_vars <> [] ->
    (* helper call *)
    let h = Rng.choose_list g.rng g.helpers in
    let v = Rng.choose_list g.rng g.int_vars in
    let r = Builder.call g.c.b Types.I64 h [ gen_expr g 2 ] in
    set g.c Types.I64 v r
  | _ ->
    if g.int_vars <> [] then begin
      let v = Rng.choose_list g.rng g.int_vars in
      bump g.c v (gen_expr g 2)
    end

(* a small pure-ish helper function: arithmetic on its argument through a
   short counted loop *)
let gen_helper (rng : Rng.t) (name : string) : Func.t =
  let b = Builder.create ~name ~params:[ Types.I64 ] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let x = var c Types.I64 (Builder.param b 0) in
  let acc = var c Types.I64 (i64 (Rng.int rng 100)) in
  let trips = 1 + Rng.int rng 8 in
  for_up c ~from:0 ~bound:(i64 trips) (fun ip ->
      let iv = get c Types.I64 ip in
      let xv = get c Types.I64 x in
      let t =
        match Rng.int rng 4 with
        | 0 -> Builder.mul c.b Types.I64 xv (i64 (3 + Rng.int rng 5))
        | 1 -> Builder.xor c.b Types.I64 xv (Builder.shl c.b Types.I64 xv (i64 (1 + Rng.int rng 4)))
        | 2 -> Builder.add c.b Types.I64 xv iv
        | _ -> Builder.sub c.b Types.I64 (Builder.lshr c.b Types.I64 xv (i64 1)) iv
      in
      set c Types.I64 x t;
      bump c acc (get c Types.I64 x));
  Builder.ret b Types.I64 (get c Types.I64 acc);
  Builder.finish b

let generate ~(seed : int) : Modul.t =
  let rng = Rng.create (seed * 2_000_003 + 17) in
  let n_helpers = Rng.int rng 3 in
  let helper_names = List.init n_helpers (fun k -> Printf.sprintf "helper%d" k) in
  let helpers = List.map (gen_helper rng) helper_names in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let g = { rng; c; int_vars = []; arrays = []; helpers = helper_names; depth = 0 } in
  let n_vars = 2 + Rng.int rng 5 in
  for k = 0 to n_vars - 1 do
    g.int_vars <- var c Types.I64 (i64 (k * 7 + Rng.int rng 50)) :: g.int_vars
  done;
  let n_arrays = Rng.int rng 3 in
  for _ = 1 to n_arrays do
    let a = arr c Types.I64 array_size in
    (* initialize deterministically *)
    for_up c ~from:0 ~bound:(i64 array_size) (fun ip ->
        let iv = get c Types.I64 ip in
        set_at c Types.I64 a iv (Builder.mul c.b Types.I64 iv (i64 (Rng.int rng 90 + 1))));
    g.arrays <- a :: g.arrays
  done;
  let n_stmts = 4 + Rng.int rng 10 in
  for _ = 1 to n_stmts do
    gen_stmt g
  done;
  (* checksum everything observable *)
  let sum = var c Types.I64 (i64 0) in
  List.iter (fun v -> bump c sum (get c Types.I64 v)) g.int_vars;
  List.iter
    (fun a ->
      for_up c ~from:0 ~bound:(i64 array_size) (fun ip ->
          let iv = get c Types.I64 ip in
          bump c sum (get_at c Types.I64 a iv)))
    g.arrays;
  Builder.ret b Types.I64 (get c Types.I64 sum);
  Modul.mk ~name:(Printf.sprintf "gen.seed%d" seed) (helpers @ [ Builder.finish b ])

(* The training corpus: 130 programs, as in the paper. *)
let corpus ?(n = 130) ?(seed = 7) () : Modul.t array =
  Array.init n (fun k -> generate ~seed:(seed + k))
