(** Dense float vectors: the numerical primitives shared by the embedding
    encoder and the neural-network layers. All operations are over
    [float array]; in-place variants are suffixed [_inplace] or named
    after BLAS ([axpy]). *)

type t = float array

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int
val of_list : float list -> t
val fill_zero : t -> unit

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** @raise Invalid_argument on dimension mismatch (as do all binary ops). *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : k:float -> t -> t -> unit
(** [axpy ~k a b] performs [a <- a + k*b] in place. *)

val add_inplace : t -> t -> unit
val scale_inplace : float -> t -> unit

val dot : t -> t -> float
val norm2 : t -> float
val norm1 : t -> float
val linf : t -> float

val normalize : t -> t
(** Unit-norm copy; near-zero vectors are returned unchanged. *)

val cosine : t -> t -> float
(** Cosine similarity; 0 when either vector is near-zero. *)

val mean : t list -> t
val sum : t list -> t

val argmax : t -> int
val max_elt : t -> float

val clip : lo:float -> hi:float -> t -> t
val concat : t -> t -> t
val pp : Format.formatter -> t -> unit
