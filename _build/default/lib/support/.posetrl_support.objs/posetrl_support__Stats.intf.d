lib/support/stats.mli:
