lib/support/vecf.ml: Array Float Fmt List Printf
