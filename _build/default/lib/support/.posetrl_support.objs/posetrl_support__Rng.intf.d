lib/support/rng.mli:
