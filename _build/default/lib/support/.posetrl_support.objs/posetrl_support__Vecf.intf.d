lib/support/vecf.mli: Format
