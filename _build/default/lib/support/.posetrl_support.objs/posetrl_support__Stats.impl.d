lib/support/stats.ml: Array Float List
