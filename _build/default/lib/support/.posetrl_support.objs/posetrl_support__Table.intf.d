lib/support/table.mli:
