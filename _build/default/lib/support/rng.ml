(* Deterministic pseudo-random streams based on SplitMix64.

   Every source of randomness in the project (weight initialization,
   epsilon-greedy exploration, replay sampling, workload generation) draws
   from an explicit [t] value, so whole experiments are reproducible
   bit-for-bit from a single integer seed. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Core SplitMix64 step: advances the state and mixes it into an output. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent stream; used to give each component its own RNG. *)
let split t =
  let s = next_int64 t in
  { state = Int64.logxor s 0xA5A5A5A5A5A5A5A5L }

let bits53 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

(* Uniform float in [0, 1). *)
let float t = float_of_int (bits53 t) /. 9007199254740992.0

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform float in [lo, hi). *)
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

(* Standard normal via Box-Muller. *)
let normal t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian t ~mean ~stddev = mean +. (stddev *. normal t)

(* Pick a uniformly random element of a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

(* In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
