(* Dense float vectors.

   The embedding and neural-network layers need only a small set of
   vector primitives; they are collected here so numerical code reads as
   math rather than loops. All operations are over [float array]. *)

type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let fill_zero (v : t) = Array.fill v 0 (Array.length v) 0.0

let check_same_dim a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vecf.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let map = Array.map

let map2 f a b =
  check_same_dim a b "map2";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let scale k = Array.map (fun x -> k *. x)

(* a <- a + k * b, in place; the inner-loop workhorse. *)
let axpy ~k a b =
  check_same_dim a b "axpy";
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) +. (k *. b.(i))
  done

let add_inplace a b = axpy ~k:1.0 a b

let scale_inplace k a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- k *. a.(i)
  done

let dot a b =
  check_same_dim a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm1 a = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 a

let linf a = Array.fold_left (fun acc x -> max acc (abs_float x)) 0.0 a

let normalize a =
  let n = norm2 a in
  if n < 1e-12 then copy a else scale (1.0 /. n) a

let cosine a b =
  let na = norm2 a and nb = norm2 b in
  if na < 1e-12 || nb < 1e-12 then 0.0 else dot a b /. (na *. nb)

let mean vs =
  match vs with
  | [] -> invalid_arg "Vecf.mean: empty list"
  | v0 :: _ ->
    let acc = create (dim v0) in
    List.iter (fun v -> add_inplace acc v) vs;
    scale_inplace (1.0 /. float_of_int (List.length vs)) acc;
    acc

let sum vs =
  match vs with
  | [] -> invalid_arg "Vecf.sum: empty list"
  | v0 :: _ ->
    let acc = create (dim v0) in
    List.iter (fun v -> add_inplace acc v) vs;
    acc

let argmax a =
  if Array.length a = 0 then invalid_arg "Vecf.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let max_elt a = a.(argmax a)

let clip ~lo ~hi = Array.map (fun x -> Float.min hi (Float.max lo x))

let concat = Array.append

let pp ppf v =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") (float_dfrac 4)) v
