(* Plain-text table rendering for the benchmark harness.

   The bench executable reproduces the paper's tables; this module turns
   row data into aligned ASCII output comparable side-by-side with the
   published tables. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~headers ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let addf_cell f = Printf.sprintf "%.2f" f

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let spaces = String.make (width - n) ' ' in
    match align with Left -> s ^ spaces | Right -> spaces ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let aligns = Array.of_list t.aligns in
  let render_row row =
    let cells = List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)
