(* Summary statistics over float lists; used by the evaluation harness to
   produce the min/avg/max columns of the paper's tables. *)

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let minimum = function
  | [] -> nan
  | x :: rest -> List.fold_left Float.min x rest

let maximum = function
  | [] -> nan
  | x :: rest -> List.fold_left Float.max x rest

let variance l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    let n = float_of_int (List.length l) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l /. (n -. 1.0)

let stddev l = sqrt (variance l)

(* Geometric mean of strictly positive values. *)
let geomean l =
  match l with
  | [] -> nan
  | _ ->
    let logs = List.map (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        log x) l
    in
    exp (mean logs)

let median l =
  match l with
  | [] -> nan
  | _ ->
    let arr = Array.of_list l in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

type summary = { n : int; min : float; mean : float; max : float; stddev : float }

let summarize l =
  { n = List.length l;
    min = minimum l;
    mean = mean l;
    max = maximum l;
    stddev = stddev l }

(* Percentage change of [v] relative to [base]: positive = reduction. *)
let pct_reduction ~base v =
  if base = 0.0 then 0.0 else 100.0 *. (base -. v) /. base

(* Percentage improvement (higher-is-better metric). *)
let pct_improvement ~base v =
  if base = 0.0 then 0.0 else 100.0 *. (v -. base) /. base
