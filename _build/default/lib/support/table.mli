(** Plain-text table rendering for the benchmark harness: turns row data
    into aligned ASCII output comparable side-by-side with the paper's
    tables. *)

type align = Left | Right

type t

val create : title:string -> headers:string list -> ?aligns:align list -> unit -> t
(** [aligns] defaults to all-[Right];
    @raise Invalid_argument if its length differs from [headers]. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument on a row of the wrong width. *)

val addf_cell : float -> string
(** Format a float cell with two decimals. *)

val render : t -> string
val print : t -> unit
