(** Deterministic pseudo-random streams (SplitMix64).

    All project randomness flows through explicit values of type {!t},
    making experiments reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] is a fresh stream determined entirely by [seed]. *)

val copy : t -> t
(** Independent copy that replays the same future draws. *)

val split : t -> t
(** Derive an independent child stream, advancing the parent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val normal : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian : t -> mean:float -> stddev:float -> float

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
