lib/interp/interp.ml: Array Block Buffer Bytes Char Float Fold Func Global Hashtbl Instr Int64 List Modul Option Posetrl_ir Printf String Types Value
