(* Tests for the IR2Vec-style encoder. *)

open Posetrl_ir
module V = Posetrl_ir2vec.Vocabulary
module E = Posetrl_ir2vec.Encoder
module Vecf = Posetrl_support.Vecf

let test_dimension () =
  Alcotest.(check int) "300-dim" 300 V.dimension;
  let m = Testutil.sum_squares_module () in
  Alcotest.(check int) "program embedding 300-dim" 300 (Vecf.dim (E.embed_program m))

let test_vocabulary_deterministic () =
  let a = V.opcode "add" and b = V.opcode "add" in
  Alcotest.(check bool) "same entity same vector" true (a == b || a = b);
  let c = V.opcode "mul" in
  Alcotest.(check bool) "different entities differ" true (Vecf.cosine a c < 0.5)

let test_vocabulary_namespaces () =
  (* an opcode named like a type must not collide *)
  let a = V.opcode "i64" and b = V.ty "i64" in
  Alcotest.(check bool) "namespaced" true (Vecf.cosine a b < 0.5)

let test_embedding_changes_with_program () =
  let m1 = Testutil.sum_squares_module () in
  let m2 = Posetrl_workloads.Mibench.crc32 () in
  let e1 = E.embed_program m1 and e2 = E.embed_program m2 in
  Alcotest.(check bool) "different programs differ" true (Vecf.cosine e1 e2 < 0.999)

let test_embedding_changes_under_optimization () =
  let m = Testutil.sum_squares_module () in
  let m' = Posetrl_passes.Pass_manager.run_level Posetrl_passes.Pipelines.Oz m in
  let e = E.embed_program m and e' = E.embed_program m' in
  Alcotest.(check bool) "optimization moves the embedding" true
    (Vecf.norm2 (Vecf.sub e e') > 1e-6)

let test_flow_sensitivity () =
  (* same multiset of instructions, different data flow: y uses x vs y uses
     a constant — flow-aware refinement must separate them *)
  let mk flow =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let a = Builder.add b Types.I64 x (Value.ci64 1) in
        let y =
          if flow then Builder.mul b Types.I64 a a
          else Builder.mul b Types.I64 x x
        in
        let z = Builder.add b Types.I64 y a in
        Builder.ret b Types.I64 z)
  in
  let e1 = E.embed_program (mk true) and e2 = E.embed_program (mk false) in
  Alcotest.(check bool) "flow-aware distinguishes" true
    (Vecf.norm2 (Vecf.sub e1 e2) > 1e-6)

let test_state_bounded () =
  List.iter
    (fun (name, m) ->
      let s = E.embed_program_state m in
      Alcotest.(check bool) (name ^ " state in unit ball") true (Vecf.norm2 s < 1.0))
    (Posetrl_workloads.Suites.all_programs ())

let test_empty_module () =
  let m = Modul.mk ~name:"empty" [] in
  let e = E.embed_program m in
  Alcotest.(check (float 0.0)) "zero vector" 0.0 (Vecf.norm2 e)

let test_declaration_contributes_nothing () =
  let decl = Func.declare ~name:"ext" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  let m = Modul.mk ~name:"decls" [ decl ] in
  Alcotest.(check (float 0.0)) "decl-only module is zero" 0.0
    (Vecf.norm2 (E.embed_program m))

let prop_embedding_deterministic =
  QCheck2.Test.make ~count:40 ~name:"embedding deterministic per program"
    QCheck2.Gen.(int_range 500_000 520_000)
    (fun seed ->
      let m = Posetrl_workloads.Genprog.generate ~seed in
      let a = E.embed_program m and b = E.embed_program m in
      a = b)

let suite =
  [ Alcotest.test_case "dimension" `Quick test_dimension;
    Alcotest.test_case "vocabulary deterministic" `Quick test_vocabulary_deterministic;
    Alcotest.test_case "vocabulary namespaces" `Quick test_vocabulary_namespaces;
    Alcotest.test_case "program sensitivity" `Quick test_embedding_changes_with_program;
    Alcotest.test_case "optimization sensitivity" `Quick test_embedding_changes_under_optimization;
    Alcotest.test_case "flow sensitivity" `Quick test_flow_sensitivity;
    Alcotest.test_case "state bounded" `Quick test_state_bounded;
    Alcotest.test_case "empty module" `Quick test_empty_module;
    Alcotest.test_case "declarations" `Quick test_declaration_contributes_nothing;
    QCheck_alcotest.to_alcotest prop_embedding_deterministic ]
