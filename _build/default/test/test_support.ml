(* Tests for Posetrl_support: rng, vectors, stats, tables. *)

open Posetrl_support

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next_int64 a) (Rng.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let a = Rng.next_int64 child and b = Rng.next_int64 parent in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal a b))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_normal_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.normal rng) in
  let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
    /. float_of_int n
  in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_vecf_dot () =
  check_float "dot" 32.0 (Vecf.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_vecf_axpy () =
  let a = [| 1.0; 1.0 |] in
  Vecf.axpy ~k:2.0 a [| 3.0; 4.0 |];
  check_float "axpy[0]" 7.0 a.(0);
  check_float "axpy[1]" 9.0 a.(1)

let test_vecf_norm_normalize () =
  let v = [| 3.0; 4.0 |] in
  check_float "norm2" 5.0 (Vecf.norm2 v);
  let u = Vecf.normalize v in
  check_float "unit norm" 1.0 (Vecf.norm2 u)

let test_vecf_cosine () =
  check_float "parallel" 1.0 (Vecf.cosine [| 1.0; 2.0 |] [| 2.0; 4.0 |]);
  check_float "orthogonal" 0.0 (Vecf.cosine [| 1.0; 0.0 |] [| 0.0; 1.0 |])

let test_vecf_argmax () =
  Alcotest.(check int) "argmax" 2 (Vecf.argmax [| 1.0; 0.5; 7.0; 3.0 |])

let test_vecf_mismatch () =
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Vecf.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vecf.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_stats_basic () =
  let l = [ 1.0; 2.0; 3.0; 4.0 ] in
  check_float "mean" 2.5 (Stats.mean l);
  check_float "min" 1.0 (Stats.minimum l);
  check_float "max" 4.0 (Stats.maximum l);
  check_float "median" 2.5 (Stats.median l)

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stats_pct () =
  check_float "reduction" 25.0 (Stats.pct_reduction ~base:100.0 75.0);
  check_float "improvement" 20.0 (Stats.pct_improvement ~base:100.0 120.0)

let test_stats_stddev () =
  check_float "stddev" (sqrt 2.5) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_table_render () =
  let t =
    Table.create ~title:"t" ~headers:[ "a"; "bb" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "long"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 6 = "== t =");
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains row" true (contains ~needle:"long" s)

let test_table_bad_row () =
  let t = Table.create ~title:"t" ~headers:[ "a" ] () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng normal moments" `Quick test_rng_normal_moments;
    Alcotest.test_case "vecf dot" `Quick test_vecf_dot;
    Alcotest.test_case "vecf axpy" `Quick test_vecf_axpy;
    Alcotest.test_case "vecf norm/normalize" `Quick test_vecf_norm_normalize;
    Alcotest.test_case "vecf cosine" `Quick test_vecf_cosine;
    Alcotest.test_case "vecf argmax" `Quick test_vecf_argmax;
    Alcotest.test_case "vecf mismatch" `Quick test_vecf_mismatch;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats pct" `Quick test_stats_pct;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table bad row" `Quick test_table_bad_row ]
