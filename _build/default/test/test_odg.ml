(* Tests for the Oz Dependence Graph: the paper's exact structural claims
   (Fig. 4, Tables I-III) and the walk-derivation algorithm. *)

module O = Posetrl_odg
module P = Posetrl_passes

let g = lazy (Lazy.force O.Graph.default)

let test_node_count () =
  Alcotest.(check int) "54 unique passes" 54 (O.Graph.node_count (Lazy.force g))

let test_critical_nodes_match_paper () =
  (* paper §IV-B: simplifycfg (11), instcombine (10), loop-simplify (8) *)
  let crit = O.Graph.critical_nodes ~k:8 (Lazy.force g) in
  Alcotest.(check (list (pair string int)))
    "critical nodes and degrees"
    [ ("simplifycfg", 11); ("instcombine", 10); ("loop-simplify", 8) ]
    crit

let test_no_other_high_degree_nodes () =
  let crit = O.Graph.critical_nodes ~k:7 (Lazy.force g) in
  Alcotest.(check int) "k=7 adds no nodes" 3 (List.length crit)

let test_edges_follow_sequence () =
  let g = Lazy.force g in
  (* spot-check a few consecutive pairs from Table I *)
  let has_edge u v = O.Graph.SSet.mem v (O.Graph.successors g u) in
  Alcotest.(check bool) "ee-instrument -> simplifycfg" true (has_edge "ee-instrument" "simplifycfg");
  Alcotest.(check bool) "instcombine -> barrier" true (has_edge "instcombine" "barrier");
  Alcotest.(check bool) "barrier -> elim-avail-extern" true (has_edge "barrier" "elim-avail-extern");
  Alcotest.(check bool) "no reverse edge" false (has_edge "simplifycfg" "ee-instrument")

let test_derived_walk_count_is_34 () =
  let walks = O.Walks.derive ~k:8 (Lazy.force g) in
  Alcotest.(check int) "34 sub-sequences (paper Table III)" 34 (List.length walks)

let test_derived_walks_are_valid () =
  let g = Lazy.force g in
  let walks = O.Walks.derive ~k:8 g in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        ("valid walk: " ^ String.concat " " w)
        true
        (O.Walks.valid_walk ~k:8 g w))
    walks

let test_derived_walks_unique () =
  let walks = O.Walks.derive ~k:8 (Lazy.force g) in
  Alcotest.(check int) "no duplicates" (List.length walks)
    (List.length (List.sort_uniq compare walks))

let test_walks_start_at_critical () =
  let walks = O.Walks.derive ~k:8 (Lazy.force g) in
  List.iter
    (fun w ->
      match w with
      | head :: _ ->
        Alcotest.(check bool) "head critical" true
          (List.mem head [ "simplifycfg"; "instcombine"; "loop-simplify" ])
      | [] -> Alcotest.fail "empty walk")
    walks

let test_higher_k_fewer_critical () =
  let g = Lazy.force g in
  Alcotest.(check int) "k=11" 1 (List.length (O.Graph.critical_nodes ~k:11 g));
  Alcotest.(check int) "k=10" 2 (List.length (O.Graph.critical_nodes ~k:10 g))

let test_dot_output () =
  let dot = O.Graph.to_dot (Lazy.force g) in
  Alcotest.(check bool) "digraph" true (String.length dot > 100);
  Alcotest.(check string) "starts" "digraph" (String.sub dot 0 7)

(* --- action spaces --------------------------------------------------------- *)

let test_manual_space_is_15 () =
  Alcotest.(check int) "15 manual groups (Table II)" 15
    (O.Action_space.n_actions O.Action_space.manual)

let test_odg_space_is_34 () =
  Alcotest.(check int) "34 ODG sub-sequences (Table III)" 34
    (O.Action_space.n_actions O.Action_space.odg)

let test_action_spaces_validate () =
  (match O.Action_space.validate O.Action_space.manual with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("manual space: unknown passes " ^ e));
  match O.Action_space.validate O.Action_space.odg with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("odg space: unknown passes " ^ e)

let test_manual_concat_is_oz () =
  (* Table II is a grouping of the Oz pipeline (modulo the duplicated
     barrier): concatenating the groups and dropping one barrier yields
     the canonical sequence *)
  Alcotest.(check int) "sequence length" 90 (List.length P.Pipelines.oz_sequence);
  let concat = List.concat P.Pipelines.manual_groups in
  Alcotest.(check int) "grouping has exactly one extra barrier" 91 (List.length concat)

let test_odg_actions_preserve_dependencies () =
  (* every consecutive pair inside a canonical ODG action (excluding walk
     heads) appears as an edge of the graph, i.e. the order is an Oz
     order; allow the handful of paper-table rows with OCR-level
     deviations to be absent but require > 90% edge coverage *)
  let g = Lazy.force g in
  let total = ref 0 and ok = ref 0 in
  Array.iter
    (fun action ->
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          incr total;
          if O.Graph.SSet.mem b (O.Graph.successors g a) then incr ok;
          pairs rest
        | _ -> ()
      in
      pairs action)
    O.Action_space.odg.O.Action_space.actions;
  Alcotest.(check bool)
    (Printf.sprintf "edges preserved (%d/%d)" !ok !total)
    true
    (!ok * 100 >= !total * 90)

let test_derived_matches_canonical_closely () =
  (* the live derivation must reproduce most of the canonical Table III *)
  let derived = O.Walks.derive ~k:8 (Lazy.force g) in
  let canonical =
    Array.to_list O.Action_space.odg.O.Action_space.actions
    (* normalize the paper's spelling variant *)
    |> List.map
         (List.map (fun p ->
              if p = "alignment-from-assumptions" then p
              else if p = "alignmentfromassumptions" then "alignment-from-assumptions"
              else p))
  in
  let matches =
    List.length (List.filter (fun w -> List.mem w canonical) derived)
  in
  (* the residual differences are the OCR-level inconsistencies of the
     paper's own Table III (barrier placement, mem2reg position) *)
  Alcotest.(check bool)
    (Printf.sprintf "derived matches canonical (%d/34)" matches)
    true (matches >= 20)

let test_actions_runnable () =
  (* every action of both spaces must run on a real module and preserve
     behaviour *)
  let m = Testutil.sum_squares_module () in
  let before = Testutil.observe m in
  List.iter
    (fun (space : O.Action_space.t) ->
      Array.iteri
        (fun idx action ->
          let m' = P.Pass_manager.run ~verify:true P.Config.oz action m in
          Alcotest.(check bool)
            (Printf.sprintf "%s action %d" space.O.Action_space.name idx)
            true
            (Testutil.observe m' = before))
        space.O.Action_space.actions)
    [ O.Action_space.manual; O.Action_space.odg ]

let suite =
  [ Alcotest.test_case "54 nodes" `Quick test_node_count;
    Alcotest.test_case "critical nodes = paper" `Quick test_critical_nodes_match_paper;
    Alcotest.test_case "k=7 same set" `Quick test_no_other_high_degree_nodes;
    Alcotest.test_case "edges follow sequence" `Quick test_edges_follow_sequence;
    Alcotest.test_case "34 derived walks" `Quick test_derived_walk_count_is_34;
    Alcotest.test_case "walks valid" `Quick test_derived_walks_are_valid;
    Alcotest.test_case "walks unique" `Quick test_derived_walks_unique;
    Alcotest.test_case "walks start critical" `Quick test_walks_start_at_critical;
    Alcotest.test_case "higher k fewer critical" `Quick test_higher_k_fewer_critical;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "manual space 15" `Quick test_manual_space_is_15;
    Alcotest.test_case "odg space 34" `Quick test_odg_space_is_34;
    Alcotest.test_case "action spaces validate" `Quick test_action_spaces_validate;
    Alcotest.test_case "manual concat = Oz" `Quick test_manual_concat_is_oz;
    Alcotest.test_case "odg deps preserved" `Quick test_odg_actions_preserve_dependencies;
    Alcotest.test_case "derived ~ canonical" `Quick test_derived_matches_canonical_closely;
    Alcotest.test_case "actions runnable" `Quick test_actions_runnable ]
