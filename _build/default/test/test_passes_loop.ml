(* Unit tests for the loop passes. Loops are built in the canonical
   clang -O0 shape via the workloads DSL and promoted with mem2reg/sroa
   first where a pass expects SSA-form loops. *)

open Posetrl_ir
open Posetrl_workloads.Dsl
open Testutil

(* main: acc = 0; for (i = 0; i < n; i++) acc += i*k; return acc *)
let counted_loop_module ?(n = 10) ?(k = 3) () : Modul.t =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 n) (fun ip ->
      let iv = get c Types.I64 ip in
      let t = Builder.mul c.b Types.I64 iv (i64 k) in
      bump c acc t);
  Builder.ret b Types.I64 (get c Types.I64 acc);
  Modul.mk ~name:"counted" [ Builder.finish b ]

(* main: arr fill loop — memset idiom shape *)
let memset_loop_module () : Modul.t =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let a = arr c Types.I64 32 in
  for_up c ~from:0 ~bound:(i64 32) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv (i64 7));
  Builder.ret b Types.I64 (get_at c Types.I64 a (i64 13));
  Modul.mk ~name:"memset" [ Builder.finish b ]

let ssa_of m =
  m |> run_pass "mem2reg" |> run_pass "instcombine" |> run_pass "simplifycfg"

let canonical m = m |> ssa_of |> run_pass "loop-simplify" |> run_pass "lcssa"

let has_phi_loop (m : Modul.t) =
  let f = main_func m in
  Loops.loop_count (Loops.compute f) > 0

(* --- loop-simplify / lcssa -------------------------------------------------- *)

let test_loop_simplify_creates_preheader () =
  let m = ssa_of (counted_loop_module ()) in
  let m' = run_pass "loop-simplify" m in
  check_same_behaviour "loop-simplify" m m';
  let f = main_func m' in
  let li = Loops.compute f in
  List.iter
    (fun l ->
      Alcotest.(check bool) "has preheader" true (Option.is_some l.Loops.preheader))
    li.Loops.loops

let test_lcssa_valid () =
  let m = ssa_of (counted_loop_module ()) |> run_pass "loop-simplify" in
  let m' = run_pass "lcssa" m in
  check_same_behaviour "lcssa" m m'

(* --- loop-rotate --------------------------------------------------------------- *)

let test_loop_rotate_bottom_tests () =
  let m = canonical (counted_loop_module ()) in
  let m' = run_pass "loop-rotate" m in
  check_same_behaviour "rotate" m m';
  (* after rotation the latch must end in a conditional branch *)
  let f = main_func m' in
  let li = Loops.compute f in
  match li.Loops.loops with
  | [] -> Alcotest.fail "loop disappeared during rotation"
  | l :: _ ->
    let latch = Func.find_block_exn f (List.hd l.Loops.latches) in
    (match latch.Block.term with
     | Instr.Cbr _ -> ()
     | _ -> Alcotest.fail "latch not conditional after rotate")

let test_loop_rotate_preserves_zero_trip () =
  (* bound 0: the loop body must not execute *)
  let m = canonical (counted_loop_module ~n:0 ()) in
  let m' = run_pass "loop-rotate" m in
  check_same_behaviour "zero-trip" m m';
  Alcotest.(check string) "0" "0" (ret_of m')

(* --- licm ------------------------------------------------------------------------ *)

let test_licm_hoists_invariant () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let x = var c Types.I64 (i64 21) in
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 50) (fun _ip ->
      let xv = get c Types.I64 x in
      let inv = Builder.mul c.b Types.I64 xv (i64 2) in (* invariant multiply *)
      bump c acc inv);
  Builder.ret b Types.I64 (get c Types.I64 acc);
  let m = Modul.mk ~name:"licm" [ Builder.finish b ] in
  let mc = canonical m in
  let m' = run_pass "licm" mc in
  check_same_behaviour "licm" mc m';
  Alcotest.(check string) "2100" "2100" (ret_of m');
  (* the multiply must now live outside the loop *)
  let f = main_func m' in
  let li = Loops.compute f in
  let in_loop_muls =
    List.fold_left
      (fun acc (blk : Block.t) ->
        if Loops.depth li blk.Block.label > 0 then
          acc
          + List.length
              (List.filter
                 (fun (i : Instr.t) ->
                   match i.Instr.op with
                   | Instr.Binop (Instr.Mul, _, _, _) -> true
                   | _ -> false)
                 blk.Block.insns)
        else acc)
      0 f.Func.blocks
  in
  Alcotest.(check int) "mul hoisted" 0 in_loop_muls

(* --- loop-unroll -------------------------------------------------------------------- *)

let test_loop_unroll_full () =
  let m = canonical (counted_loop_module ~n:6 ()) |> run_pass "loop-rotate" in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.unroll_count = 16;
              Posetrl_passes.Config.unroll_size_limit = 64 } in
  let m' = run_pass_cfg "loop-unroll" cfg m in
  check_same_behaviour "unroll" m m';
  Alcotest.(check string) "45" "45" (ret_of m');
  let f = main_func m' in
  Alcotest.(check int) "loop gone" 0 (Loops.loop_count (Loops.compute f))

let test_loop_unroll_respects_threshold () =
  let m = canonical (counted_loop_module ~n:100 ()) |> run_pass "loop-rotate" in
  (* Oz config: unroll_count = 2 < 100 trips, must not unroll *)
  let m' = run_pass "loop-unroll" m in
  check_same_behaviour "no unroll" m m';
  let f = main_func m' in
  Alcotest.(check bool) "loop kept" true (Loops.loop_count (Loops.compute f) > 0)

let test_loop_unroll_iv_final_value () =
  (* the IV observed after the loop must be the final value *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let last = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 5) (fun ip ->
      set c Types.I64 last (get c Types.I64 ip));
  Builder.ret b Types.I64 (get c Types.I64 last);
  let m = Modul.mk ~name:"ivfinal" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.unroll_count = 8;
              Posetrl_passes.Config.unroll_size_limit = 64 } in
  let m' = run_pass_cfg "loop-unroll" cfg mc in
  check_same_behaviour "iv final" mc m';
  Alcotest.(check string) "4" "4" (ret_of m')

(* --- indvars / loop-deletion ----------------------------------------------------------- *)

let test_indvars_exit_value () =
  (* return value is the IV's final value; indvars should make it constant *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let sink = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 9) (fun ip ->
      bump c sink (get c Types.I64 ip));
  Builder.ret b Types.I64 (get c Types.I64 sink);
  let m = Modul.mk ~name:"iv" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" in
  let m' = run_pass "indvars" mc in
  check_same_behaviour "indvars" mc m'

let test_loop_deletion_removes_dead_loop () =
  (* a loop that computes nothing observable *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let waste = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 40) (fun ip ->
      let iv = get c Types.I64 ip in
      set c Types.I64 waste (Builder.mul c.b Types.I64 iv (i64 3)));
  Builder.ret b Types.I64 (i64 77);
  let m = Modul.mk ~name:"deadloop" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" |> run_pass "indvars"
           |> run_pass "adce" |> run_pass "instcombine" in
  let m' = run_pass "loop-deletion" mc in
  check_same_behaviour "deletion" mc m';
  Alcotest.(check string) "77" "77" (ret_of m');
  let f = main_func m' in
  Alcotest.(check int) "no loops" 0 (Loops.loop_count (Loops.compute f))

(* --- loop-idiom -------------------------------------------------------------------------- *)

let test_loop_idiom_memset () =
  let m = canonical (memset_loop_module ()) |> run_pass "loop-rotate" |> run_pass "indvars" in
  let m' = run_pass "loop-idiom" m in
  check_same_behaviour "idiom" m m';
  Alcotest.(check string) "7" "7" (ret_of m');
  Alcotest.(check bool) "memset inserted" true
    (count_insns
       (fun op -> match op with Instr.Intrinsic ("memset", _, _) -> true | _ -> false)
       m'
     > 0)

let test_loop_idiom_memcpy () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let src = arr c Types.I64 16 in
  let dst = arr c Types.I64 16 in
  for_up c ~from:0 ~bound:(i64 16) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 src iv (Builder.mul c.b Types.I64 iv (i64 5)));
  for_up c ~from:0 ~bound:(i64 16) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 dst iv (get_at c Types.I64 src iv));
  Builder.ret b Types.I64 (get_at c Types.I64 dst (i64 9));
  let m = Modul.mk ~name:"cpyloop" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" |> run_pass "indvars" in
  let m' = run_pass "loop-idiom" mc in
  check_same_behaviour "memcpy idiom" mc m';
  Alcotest.(check string) "45" "45" (ret_of m')

(* --- loop-unswitch ------------------------------------------------------------------------- *)

let test_loop_unswitch () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let flagp = var c Types.I64 (i64 1) in
  let flag = get c Types.I64 flagp in
  let cond = Builder.icmp c.b Instr.Ne Types.I64 flag (i64 0) in
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 20) (fun ip ->
      if_ c cond
        (fun () -> bump c acc (get c Types.I64 ip))
        (fun () -> bump c acc (i64 1)));
  Builder.ret b Types.I64 (get c Types.I64 acc);
  let m = Modul.mk ~name:"unswitch" [ Builder.finish b ] in
  let mc = canonical m in
  let cfg = { Posetrl_passes.Config.o3 with Posetrl_passes.Config.size_level = 0 } in
  let m' = run_pass_cfg "loop-unswitch" cfg mc in
  check_same_behaviour "unswitch" mc m';
  Alcotest.(check string) "190" "190" (ret_of m')

(* --- loop-vectorize -------------------------------------------------------------------------- *)

let vec_candidate_module () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let a = arr c Types.I64 64 in
  let out = arr c Types.I64 64 in
  for_up c ~from:0 ~bound:(i64 64) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv (Builder.mul c.b Types.I64 iv (i64 3)));
  for_up c ~from:0 ~bound:(i64 64) (fun ip ->
      let iv = get c Types.I64 ip in
      let v = get_at c Types.I64 a iv in
      let w = Builder.add c.b Types.I64 v (i64 10) in
      let w2 = Builder.mul c.b Types.I64 w (i64 2) in
      set_at c Types.I64 out iv w2);
  let sum = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 64) (fun ip ->
      let iv = get c Types.I64 ip in
      bump c sum (get_at c Types.I64 out iv));
  Builder.ret b Types.I64 (get c Types.I64 sum);
  Modul.mk ~name:"vec" [ Builder.finish b ]

let test_loop_vectorize () =
  let m = canonical (vec_candidate_module ()) |> run_pass "loop-rotate" |> run_pass "indvars" in
  let cfg = Posetrl_passes.Config.o3 in
  let m' = run_pass_cfg "loop-vectorize" cfg m in
  check_same_behaviour "vectorize" m m';
  Alcotest.(check bool) "vector ops appear" true
    (count_insns
       (fun op ->
         match op with
         | Instr.Load (Types.Vec _, _) | Instr.Store (Types.Vec _, _, _) -> true
         | _ -> false)
       m'
     > 0)

let test_loop_vectorize_disabled_at_oz () =
  let m = canonical (vec_candidate_module ()) |> run_pass "loop-rotate" in
  let m' = run_pass_cfg "loop-vectorize" Posetrl_passes.Config.oz m in
  Alcotest.(check int) "no vector ops at Oz" 0
    (count_insns
       (fun op ->
         match op with
         | Instr.Load (Types.Vec _, _) | Instr.Store (Types.Vec _, _, _) -> true
         | _ -> false)
       m')

(* --- loop-sink / loop-load-elim / loop-distribute ------------------------------------------------ *)

let test_loop_load_elim () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let a = arr c Types.I64 8 in
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 8) (fun ip ->
      let iv = get c Types.I64 ip in
      let p = idx c Types.I64 a iv in
      Builder.store c.b Types.I64 iv p;
      (* immediate reload of the slot just stored *)
      let v = Builder.load c.b Types.I64 p in
      bump c acc v);
  Builder.ret b Types.I64 (get c Types.I64 acc);
  let m = Modul.mk ~name:"lle" [ Builder.finish b ] in
  let m' = run_pass "loop-load-elim" m in
  check_same_behaviour "loop-load-elim" m m';
  Alcotest.(check string) "28" "28" (ret_of m')

let test_loop_distribute () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let a = arr c Types.I64 32 in
  let bq = arr c Types.I64 32 in
  for_up c ~from:0 ~bound:(i64 32) (fun ip ->
      let iv = get c Types.I64 ip in
      set_at c Types.I64 a iv (Builder.mul c.b Types.I64 iv (i64 2));
      set_at c Types.I64 bq iv (Builder.mul c.b Types.I64 iv (i64 5)));
  let s = Builder.add c.b Types.I64 (get_at c Types.I64 a (i64 3)) (get_at c Types.I64 bq (i64 4)) in
  Builder.ret b Types.I64 s;
  let m = Modul.mk ~name:"dist" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" |> run_pass "indvars" in
  let m' = run_pass "loop-distribute" mc in
  check_same_behaviour "distribute" mc m';
  Alcotest.(check string) "26" "26" (ret_of m')

let test_loop_sink () =
  let m = canonical (counted_loop_module ()) in
  let m' = run_pass "loop-sink" m in
  check_same_behaviour "loop-sink" m m'

let test_partial_unroll () =
  (* trip 40 > O3's full-unroll limit (32): partial by 8 *)
  let m = canonical (counted_loop_module ~n:40 ()) |> run_pass "loop-rotate" in
  let m' = run_pass_cfg "loop-unroll" Posetrl_passes.Config.o3 m in
  check_same_behaviour "partial unroll" m m';
  let f = main_func m' in
  Alcotest.(check bool) "loop kept" true (Loops.loop_count (Loops.compute f) > 0);
  Alcotest.(check bool) "body replicated" true
    (List.length f.Func.blocks > List.length (main_func m).Func.blocks + 4)

let test_partial_unroll_disabled_at_oz () =
  let m = canonical (counted_loop_module ~n:40 ()) |> run_pass "loop-rotate" in
  let m' = run_pass_cfg "loop-unroll" Posetrl_passes.Config.oz m in
  check_same_behaviour "no partial at Oz" m m';
  Alcotest.(check bool) "no growth" true
    (List.length (main_func m').Func.blocks
     <= List.length (main_func m).Func.blocks + 1)

let test_partial_unroll_iv_outside () =
  (* the IV observed after the loop must still be the final value *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let last = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 48) (fun ip ->
      set c Types.I64 last (get c Types.I64 ip));
  Builder.ret b Types.I64 (get c Types.I64 last);
  let m = Modul.mk ~name:"pivfinal" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" in
  let m' = run_pass_cfg "loop-unroll" Posetrl_passes.Config.o3 mc in
  check_same_behaviour "partial iv final" mc m';
  Alcotest.(check string) "47" "47" (ret_of m')

let test_nested_unroll_labels_unique () =
  (* two nested counted loops unrolled in sequence must not collide labels *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let acc = var c Types.I64 (i64 0) in
  for_up c ~from:0 ~bound:(i64 4) (fun _op ->
      for_up c ~from:0 ~bound:(i64 4) (fun ip ->
          bump c acc (get c Types.I64 ip)));
  Builder.ret b Types.I64 (get c Types.I64 acc);
  let m = Modul.mk ~name:"nest" [ Builder.finish b ] in
  let mc = canonical m |> run_pass "loop-rotate" in
  let cfg = { Posetrl_passes.Config.o3 with Posetrl_passes.Config.unroll_count = 8 } in
  let m' = run_pass_cfg "loop-unroll" cfg mc in
  check_same_behaviour "nested unroll" mc m';
  Alcotest.(check string) "24" "24" (ret_of m')

let test_ssa_helpers_sane () =
  Alcotest.(check bool) "counted loop has loop" true (has_phi_loop (ssa_of (counted_loop_module ())))

let suite =
  [ Alcotest.test_case "loop-simplify preheader" `Quick test_loop_simplify_creates_preheader;
    Alcotest.test_case "lcssa valid" `Quick test_lcssa_valid;
    Alcotest.test_case "loop-rotate bottom test" `Quick test_loop_rotate_bottom_tests;
    Alcotest.test_case "loop-rotate zero trip" `Quick test_loop_rotate_preserves_zero_trip;
    Alcotest.test_case "licm hoists" `Quick test_licm_hoists_invariant;
    Alcotest.test_case "unroll full" `Quick test_loop_unroll_full;
    Alcotest.test_case "unroll threshold" `Quick test_loop_unroll_respects_threshold;
    Alcotest.test_case "unroll iv final value" `Quick test_loop_unroll_iv_final_value;
    Alcotest.test_case "indvars exit value" `Quick test_indvars_exit_value;
    Alcotest.test_case "loop-deletion" `Quick test_loop_deletion_removes_dead_loop;
    Alcotest.test_case "loop-idiom memset" `Quick test_loop_idiom_memset;
    Alcotest.test_case "loop-idiom memcpy" `Quick test_loop_idiom_memcpy;
    Alcotest.test_case "loop-unswitch" `Quick test_loop_unswitch;
    Alcotest.test_case "loop-vectorize" `Quick test_loop_vectorize;
    Alcotest.test_case "loop-vectorize off at Oz" `Quick test_loop_vectorize_disabled_at_oz;
    Alcotest.test_case "loop-load-elim" `Quick test_loop_load_elim;
    Alcotest.test_case "loop-distribute" `Quick test_loop_distribute;
    Alcotest.test_case "loop-sink" `Quick test_loop_sink;
    Alcotest.test_case "partial unroll" `Quick test_partial_unroll;
    Alcotest.test_case "partial unroll off at Oz" `Quick test_partial_unroll_disabled_at_oz;
    Alcotest.test_case "partial unroll iv" `Quick test_partial_unroll_iv_outside;
    Alcotest.test_case "nested unroll labels" `Quick test_nested_unroll_labels_unique;
    Alcotest.test_case "ssa helper sanity" `Quick test_ssa_helpers_sane ]
