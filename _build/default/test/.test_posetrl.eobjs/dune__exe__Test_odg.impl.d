test/test_odg.ml: Alcotest Array Lazy List Posetrl_odg Posetrl_passes Printf String Testutil
