test/test_rl.ml: Alcotest Array Filename Float Posetrl_rl Posetrl_support Printf Rng Sys
