test/test_passes_scalar.ml: Alcotest Builder Func Instr Modul Posetrl_ir Testutil Types Value
