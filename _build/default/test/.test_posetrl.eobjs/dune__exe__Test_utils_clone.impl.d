test/test_utils_clone.ml: Alcotest Block Builder Func Instr List Loops Modul Option Posetrl_ir Posetrl_passes Posetrl_workloads String Testutil Types Value
