test/test_ir.ml: Alcotest Block Builder Cfg Dom Float Func Hashtbl Instr List Loops Mibench Modul Parser Posetrl_ir Posetrl_workloads Printer Testutil Types Value Verifier
