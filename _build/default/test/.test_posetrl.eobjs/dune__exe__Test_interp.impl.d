test/test_interp.ml: Alcotest Array Builder Fold Func Global Instr Int64 List Modul Posetrl_interp Posetrl_ir Posetrl_workloads QCheck2 QCheck_alcotest Testutil Types Value Verifier
