test/test_passes_ipo.ml: Alcotest Attrs Builder Func Global Instr List Modul Posetrl_ir Posetrl_passes Printer Testutil Types Value
