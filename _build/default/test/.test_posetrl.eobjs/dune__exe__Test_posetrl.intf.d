test/test_posetrl.mli:
