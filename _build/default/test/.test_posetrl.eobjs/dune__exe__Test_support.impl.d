test/test_support.ml: Alcotest Array Float Fun Int64 Posetrl_support Rng Stats String Table Vecf
