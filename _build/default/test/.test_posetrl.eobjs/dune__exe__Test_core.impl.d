test/test_core.ml: Alcotest Array List Option Posetrl_codegen Posetrl_core Posetrl_odg Posetrl_rl Posetrl_workloads Testutil
