test/test_passes_loop.ml: Alcotest Block Builder Func Instr List Loops Modul Option Posetrl_ir Posetrl_passes Posetrl_workloads Testutil Types
