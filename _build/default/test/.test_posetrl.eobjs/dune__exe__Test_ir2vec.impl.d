test/test_ir2vec.ml: Alcotest Builder Func List Modul Posetrl_ir Posetrl_ir2vec Posetrl_passes Posetrl_support Posetrl_workloads QCheck2 QCheck_alcotest Testutil Types Value
