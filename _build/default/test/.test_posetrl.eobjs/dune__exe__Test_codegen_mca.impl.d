test/test_codegen_mca.ml: Alcotest Array Builder Func Global Instr List Modul Posetrl_codegen Posetrl_ir Posetrl_mca Posetrl_passes Posetrl_workloads Printf Testutil Types Value
