test/testutil.ml: Alcotest Builder Func Instr List Modul Posetrl_interp Posetrl_ir Posetrl_passes Printf Types Value
