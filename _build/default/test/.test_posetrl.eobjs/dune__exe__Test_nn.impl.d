test/test_nn.ml: Alcotest Array Float Layer Loss Matrix Mlp Optim Posetrl_nn Posetrl_support Printf Rng
