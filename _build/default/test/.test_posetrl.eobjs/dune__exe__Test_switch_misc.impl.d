test/test_switch_misc.ml: Alcotest Array Attrs Builder Float Func Instr List Modul Parser Posetrl_ir Posetrl_odg Posetrl_passes Posetrl_workloads Printer Testutil Types Value Verifier
