(* Unit tests for the scalar passes: each test builds a tiny function
   exhibiting the pattern the pass targets, runs the single pass (with IR
   verification), and checks both the structural effect and behavioural
   equivalence under the interpreter. *)

open Posetrl_ir
open Testutil

let is_binop b = function Instr.Binop (b', _, _, _) -> b = b' | _ -> false
let is_call = function Instr.Call _ -> true | _ -> false
let is_load = function Instr.Load _ -> true | _ -> false
let is_store = function Instr.Store _ -> true | _ -> false
let is_alloca = function Instr.Alloca _ -> true | _ -> false
let is_phi = function Instr.Phi _ -> true | _ -> false
let is_select = function Instr.Select _ -> true | _ -> false

(* --- instcombine ---------------------------------------------------------- *)

let test_instcombine_add_zero () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 7) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.add b Types.I64 x (Value.ci64 0) in
        Builder.ret b Types.I64 y)
  in
  let m' = run_pass "instcombine" m in
  check_same_behaviour "add zero" m m';
  Alcotest.(check int) "add removed" 0 (count_insns (is_binop Instr.Add) m')

let test_instcombine_mul_pow2 () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 5) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.mul b Types.I64 x (Value.ci64 8) in
        Builder.ret b Types.I64 y)
  in
  let m' = run_pass "instcombine" m in
  check_same_behaviour "mul pow2" m m';
  Alcotest.(check int) "mul gone" 0 (count_insns (is_binop Instr.Mul) m');
  Alcotest.(check int) "shl appears" 1 (count_insns (is_binop Instr.Shl) m')

let test_instcombine_constant_chain () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let a = Builder.add b Types.I64 x (Value.ci64 3) in
        let bq = Builder.add b Types.I64 a (Value.ci64 4) in
        Builder.ret b Types.I64 bq)
  in
  let m' = run_pass "instcombine" m in
  check_same_behaviour "(x+3)+4" m m';
  Alcotest.(check int) "single add left" 1 (count_insns (is_binop Instr.Add) m')

let test_instcombine_sub_self () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 9) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.sub b Types.I64 x x in
        Builder.ret b Types.I64 y)
  in
  let m' = run_pass "instcombine" m in
  check_same_behaviour "x-x" m m';
  Alcotest.(check string) "returns 0" "0" (ret_of m')

let test_instcombine_folds_constants () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let x = Builder.add b Types.I64 (Value.ci64 2) (Value.ci64 3) in
        let y = Builder.mul b Types.I64 x (Value.ci64 4) in
        Builder.ret b Types.I64 y)
  in
  let m' = run_pass "instcombine" m in
  Alcotest.(check string) "still 20" "20" (ret_of m');
  Alcotest.(check int) "no arithmetic left" 0
    (count_insns (fun op -> match op with Instr.Binop _ -> true | _ -> false) m')

let test_instcombine_urem_pow2 () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 29) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.binop b Instr.Urem Types.I64 x (Value.ci64 16) in
        Builder.ret b Types.I64 y)
  in
  let m' = run_pass "instcombine" m in
  check_same_behaviour "urem 16" m m';
  Alcotest.(check int) "became and" 1 (count_insns (is_binop Instr.And) m')

(* --- instsimplify ----------------------------------------------------------- *)

let test_instsimplify_folds () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let x = Builder.add b Types.I64 (Value.ci64 40) (Value.ci64 2) in
        Builder.ret b Types.I64 x)
  in
  let m' = run_pass "instsimplify" m in
  Alcotest.(check string) "folded" "42" (ret_of m');
  Alcotest.(check int) "empty body" 0 (count_insns (fun _ -> true) m')

(* --- early-cse --------------------------------------------------------------- *)

let test_early_cse_dedups () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 6) p;
        let x = Builder.load b Types.I64 p in
        let a = Builder.mul b Types.I64 x x in
        let bq = Builder.mul b Types.I64 x x in
        let s = Builder.add b Types.I64 a bq in
        Builder.ret b Types.I64 s)
  in
  let m' = run_pass "early-cse" m in
  check_same_behaviour "cse" m m';
  Alcotest.(check int) "one mul" 1 (count_insns (is_binop Instr.Mul) m')

let test_early_cse_store_load_forward () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 11) p;
        let x = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 x)
  in
  let m' = run_pass "early-cse" m in
  check_same_behaviour "forward" m m';
  Alcotest.(check int) "load gone" 0 (count_insns is_load m')

let test_early_cse_memssa_not_across_store () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        Builder.store b Types.I64 (Value.ci64 2) p;
        let y = Builder.load b Types.I64 p in
        let s = Builder.add b Types.I64 x y in
        Builder.ret b Types.I64 s)
  in
  let m' = run_pass "early-cse-memssa" m in
  check_same_behaviour "clobber respected" m m';
  Alcotest.(check string) "3" "3" (ret_of m')

(* --- gvn ----------------------------------------------------------------------- *)

let test_gvn_commutative () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 3) p;
        let x = Builder.load b Types.I64 p in
        let q = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 4) q;
        let y = Builder.load b Types.I64 q in
        let a = Builder.add b Types.I64 x y in
        let bq = Builder.add b Types.I64 y x in
        let s = Builder.mul b Types.I64 a bq in
        Builder.ret b Types.I64 s)
  in
  let m' = run_pass "gvn" m in
  check_same_behaviour "gvn commutative" m m';
  Alcotest.(check int) "one add" 1 (count_insns (is_binop Instr.Add) m')

let test_gvn_across_blocks () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 5) p;
        let x = Builder.load b Types.I64 p in
        let a = Builder.mul b Types.I64 x x in
        let c = Builder.icmp b Instr.Sgt Types.I64 a (Value.ci64 10) in
        Builder.cbr b c "big" "small";
        Builder.block b "big";
        let a2 = Builder.mul b Types.I64 x x in
        Builder.ret b Types.I64 a2;
        Builder.block b "small";
        Builder.ret b Types.I64 (Value.ci64 0))
  in
  let m' = run_pass "gvn" m in
  check_same_behaviour "gvn dominating" m m';
  Alcotest.(check int) "one mul" 1 (count_insns (is_binop Instr.Mul) m')

(* --- sccp ------------------------------------------------------------------------ *)

let test_sccp_folds_branch () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let c = Builder.icmp b Instr.Slt Types.I64 (Value.ci64 1) (Value.ci64 2) in
        Builder.cbr b c "t" "f";
        Builder.block b "t";
        Builder.ret b Types.I64 (Value.ci64 10);
        Builder.block b "f";
        Builder.ret b Types.I64 (Value.ci64 20))
  in
  let m' = run_pass "sccp" m in
  Alcotest.(check string) "took true" "10" (ret_of m');
  (* sccp removes the dead arm; block merging is simplifycfg's job *)
  Alcotest.(check bool) "dead branch removed" true (count_blocks m' <= 2)

let test_sccp_through_phi () =
  (* both incoming edges carry the same constant; sccp must see through *)
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let c = Builder.icmp b Instr.Sgt Types.I64 x (Value.ci64 0) in
        Builder.cbr b c "a" "b";
        Builder.block b "a";
        Builder.br b "join";
        Builder.block b "b";
        Builder.br b "join";
        Builder.block b "join";
        let ph = Builder.phi b Types.I64 [ ("a", Value.ci64 7); ("b", Value.ci64 7) ] in
        let y = Builder.add b Types.I64 ph (Value.ci64 1) in
        Builder.ret b Types.I64 y)
  in
  let m' = run_pass "sccp" m in
  check_same_behaviour "phi const" m m';
  Alcotest.(check int) "add folded away" 0 (count_insns (is_binop Instr.Add) m')

let test_ipsccp_specializes_args () =
  let bh = Builder.create ~name:"addk" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let s = Builder.add bh Types.I64 (Builder.param bh 0) (Builder.param bh 1) in
  Builder.ret bh Types.I64 s;
  let addk = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let p = Builder.alloca b Types.I64 1 in
  Builder.store b Types.I64 (Value.ci64 1) p;
  let x = Builder.load b Types.I64 p in
  let r1 = Builder.call b Types.I64 "addk" [ x; Value.ci64 10 ] in
  let r2 = Builder.call b Types.I64 "addk" [ r1; Value.ci64 10 ] in
  Builder.ret b Types.I64 r2;
  let m = Modul.mk ~name:"t" [ addk; Builder.finish b ] in
  let m' = run_pass "ipsccp" m in
  check_same_behaviour "ipsccp" m m'

(* --- dce family --------------------------------------------------------------------- *)

let test_adce_removes_dead_cycle () =
  (* two phis feeding only each other across a loop must die *)
  let m = Testutil.sum_squares_module () in
  let m1 = run_pass "mem2reg" m in
  let m' = run_pass "adce" m1 in
  check_same_behaviour "adce" m m'

let test_adce_keeps_stores () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 3) p;
        let x = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 x)
  in
  let m' = run_pass "adce" m in
  check_same_behaviour "adce stores" m m';
  Alcotest.(check int) "store kept" 1 (count_insns is_store m')

let test_bdce_masked_bits () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 0xAB) p;
        let x = Builder.load b Types.I64 p in
        (* high bits of the shl are masked off entirely *)
        let hi = Builder.shl b Types.I64 x (Value.ci64 32) in
        let masked = Builder.and_ b Types.I64 hi (Value.ci64 0xFF) in
        let r = Builder.or_ b Types.I64 masked x in
        Builder.ret b Types.I64 r)
  in
  let m' = run_pass "bdce" m in
  check_same_behaviour "bdce" m m'

(* --- dse -------------------------------------------------------------------------------- *)

let test_dse_overwritten_store () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        Builder.store b Types.I64 (Value.ci64 2) p;
        let x = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 x)
  in
  let m' = run_pass "dse" m in
  check_same_behaviour "dse overwrite" m m';
  Alcotest.(check int) "one store" 1 (count_insns is_store m')

let test_dse_never_read () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        Builder.ret b Types.I64 (Value.ci64 0))
  in
  let m' = run_pass "dse" m in
  Alcotest.(check int) "store removed" 0 (count_insns is_store m')

let test_dse_respects_intervening_load () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        Builder.store b Types.I64 (Value.ci64 2) p;
        let y = Builder.load b Types.I64 p in
        let s = Builder.add b Types.I64 x y in
        Builder.ret b Types.I64 s)
  in
  let m' = run_pass "dse" m in
  check_same_behaviour "intervening load" m m';
  Alcotest.(check string) "3" "3" (ret_of m')

(* --- mem2reg / sroa --------------------------------------------------------------------- *)

let test_mem2reg_promotes () =
  let m = Testutil.sum_squares_module () in
  let m' = run_pass "mem2reg" m in
  check_same_behaviour "mem2reg" m m';
  Alcotest.(check int) "no allocas" 0 (count_insns is_alloca m');
  Alcotest.(check bool) "phis inserted" true (count_insns is_phi m' > 0)

let test_mem2reg_skips_escaping () =
  let bh = Builder.create ~name:"writer" ~params:[ Types.Ptr ] ~ret:Types.Void () in
  Builder.block bh "entry";
  Builder.store bh Types.I64 (Value.ci64 99) (Builder.param bh 0);
  Builder.ret_void bh;
  let writer = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let p = Builder.alloca b Types.I64 1 in
  Builder.store b Types.I64 (Value.ci64 1) p;
  let _ = Builder.call b Types.Void "writer" [ p ] in
  let x = Builder.load b Types.I64 p in
  Builder.ret b Types.I64 x;
  let m = Modul.mk ~name:"t" [ writer; Builder.finish b ] in
  let m' = run_pass "mem2reg" m in
  check_same_behaviour "escape respected" m m';
  Alcotest.(check string) "99" "99" (ret_of m');
  Alcotest.(check int) "alloca kept" 1 (count_insns is_alloca m')

let test_sroa_splits_and_promotes () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let a = Builder.alloca b Types.I64 4 in
        let p0 = Builder.gep b Types.I64 a (Value.ci64 0) in
        let p1 = Builder.gep b Types.I64 a (Value.ci64 1) in
        Builder.store b Types.I64 (Value.ci64 10) p0;
        Builder.store b Types.I64 (Value.ci64 20) p1;
        let x = Builder.load b Types.I64 p0 in
        let y = Builder.load b Types.I64 p1 in
        let s = Builder.add b Types.I64 x y in
        Builder.ret b Types.I64 s)
  in
  let m' = run_pass "sroa" m in
  check_same_behaviour "sroa" m m';
  Alcotest.(check string) "30" "30" (ret_of m');
  Alcotest.(check int) "allocas promoted away" 0 (count_insns is_alloca m')

let test_sroa_skips_variable_index () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let a = Builder.alloca b Types.I64 4 in
        let ip = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 2) ip;
        let iv = Builder.load b Types.I64 ip in
        let p = Builder.gep b Types.I64 a iv in
        Builder.store b Types.I64 (Value.ci64 5) p;
        let x = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 x)
  in
  let m' = run_pass "sroa" m in
  check_same_behaviour "variable index respected" m m'

(* --- jump-threading / correlated-propagation ---------------------------------------------- *)

let test_jump_threading () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let c = Builder.icmp b Instr.Sgt Types.I64 x (Value.ci64 0) in
        Builder.cbr b c "a" "b";
        Builder.block b "a";
        Builder.br b "hub";
        Builder.block b "b";
        Builder.br b "hub";
        Builder.block b "hub";
        let ph = Builder.phi b Types.I1 [ ("a", Value.ci1 true); ("b", Value.ci1 false) ] in
        Builder.cbr b ph "t" "f";
        Builder.block b "t";
        Builder.ret b Types.I64 (Value.ci64 100);
        Builder.block b "f";
        Builder.ret b Types.I64 (Value.ci64 200))
  in
  let m' = run_pass "jump-threading" m in
  check_same_behaviour "jump threading" m m'

let test_correlated_propagation () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 5) p;
        let x = Builder.load b Types.I64 p in
        let c = Builder.icmp b Instr.Eq Types.I64 x (Value.ci64 5) in
        Builder.cbr b c "t" "f";
        Builder.block b "t";
        (* inside the true arm x is 5 *)
        let y = Builder.add b Types.I64 x (Value.ci64 1) in
        Builder.ret b Types.I64 y;
        Builder.block b "f";
        Builder.ret b Types.I64 (Value.ci64 0))
  in
  let m' = run_pass "correlated-propagation" m in
  check_same_behaviour "correlated" m m';
  Alcotest.(check string) "6" "6" (ret_of m')

(* --- tailcallelim ---------------------------------------------------------------------------- *)

let test_tailcallelim () =
  (* sum(n) = n <= 0 ? 0 : sum2(n-1, acc+n) — classic accumulating tail call *)
  let bh = Builder.create ~name:"sum_to" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let n = Builder.param bh 0 and acc = Builder.param bh 1 in
  let c = Builder.icmp bh Instr.Sle Types.I64 n (Value.ci64 0) in
  Builder.cbr bh c "base" "rec";
  Builder.block bh "base";
  Builder.ret bh Types.I64 acc;
  Builder.block bh "rec";
  let n1 = Builder.sub bh Types.I64 n (Value.ci64 1) in
  let a1 = Builder.add bh Types.I64 acc n in
  let r = Builder.call bh Types.I64 "sum_to" [ n1; a1 ] in
  Builder.ret bh Types.I64 r;
  let sum_to = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.call b Types.I64 "sum_to" [ Value.ci64 100; Value.ci64 0 ] in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" [ sum_to; Builder.finish b ] in
  let m' = run_pass "tailcallelim" m in
  check_same_behaviour "tailcall" m m';
  Alcotest.(check string) "5050" "5050" (ret_of m');
  (* the self-call is gone *)
  let self_calls =
    count_insns (fun op -> match op with Instr.Call (_, "sum_to", _) -> true | _ -> false) m'
    - 1 (* main's call remains *)
  in
  Alcotest.(check int) "recursion removed" 0 self_calls

(* --- reassociate ------------------------------------------------------------------------------- *)

let test_reassociate_constant_meeting () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 5) p;
        let x = Builder.load b Types.I64 p in
        (* ((x + 1) + x) + 2 : constants should meet and fold *)
        let a = Builder.add b Types.I64 x (Value.ci64 1) in
        let bq = Builder.add b Types.I64 a x in
        let cq = Builder.add b Types.I64 bq (Value.ci64 2) in
        Builder.ret b Types.I64 cq)
  in
  let m' = run_pass "reassociate" m in
  check_same_behaviour "reassociate" m m';
  Alcotest.(check string) "13" "13" (ret_of m')

(* --- div-rem-pairs ------------------------------------------------------------------------------ *)

let test_div_rem_pairs () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 17) p;
        let x = Builder.load b Types.I64 p in
        let q = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 5) q;
        let y = Builder.load b Types.I64 q in
        let d = Builder.sdiv b Types.I64 x y in
        let r = Builder.srem b Types.I64 x y in
        let s = Builder.add b Types.I64 d r in
        Builder.ret b Types.I64 s)
  in
  let m' = run_pass "div-rem-pairs" m in
  check_same_behaviour "div-rem" m m';
  Alcotest.(check int) "one division" 1
    (count_insns (fun op -> is_binop Instr.Sdiv op || is_binop Instr.Srem op) m');
  Alcotest.(check string) "5" "5" (ret_of m')

(* --- lower-expect / lower-constant-intrinsics --------------------------------------------------- *)

let test_lower_expect () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let e = Builder.expect b Types.I64 x (Value.ci64 1) in
        Builder.ret b Types.I64 e)
  in
  let m' = run_pass "lower-expect" m in
  check_same_behaviour "lower-expect" m m';
  Alcotest.(check int) "expects gone" 0
    (count_insns (fun op -> match op with Instr.Expect _ -> true | _ -> false) m');
  Alcotest.(check bool) "branch-hints attr" true
    (Func.has_attr "branch-hints" (main_func m'))

let test_lower_constant_intrinsics () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let isc = Builder.intrinsic b "is.constant" Types.I1 [ Value.ci64 5 ] in
        let z = Builder.zext b ~from_ty:Types.I1 ~to_ty:Types.I64 isc in
        Builder.ret b Types.I64 z)
  in
  let m' = run_pass "lower-constant-intrinsics" m in
  Alcotest.(check string) "is.constant(5)=1" "1" (ret_of m')

(* --- float2int ----------------------------------------------------------------------------------- *)

let test_float2int () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 6) p;
        let x = Builder.load b Types.I64 p in
        let fx = Builder.cast b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 x in
        let fy = Builder.cast b Instr.Sitofp ~from_ty:Types.I64 ~to_ty:Types.F64 (Value.ci64 7) in
        let fs = Builder.fmul b fx fy in
        let r = Builder.cast b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64 fs in
        Builder.ret b Types.I64 r)
  in
  let m' = run_pass "float2int" m in
  check_same_behaviour "float2int" m m';
  Alcotest.(check string) "42" "42" (ret_of m');
  Alcotest.(check int) "no fmul left" 0 (count_insns (is_binop Instr.Fmul) m')

(* --- speculative-execution / simplifycfg if-conversion -------------------------------------------- *)

let test_simplifycfg_if_conversion () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 4) p;
        let x = Builder.load b Types.I64 p in
        let c = Builder.icmp b Instr.Sgt Types.I64 x (Value.ci64 0) in
        Builder.cbr b c "t" "f";
        Builder.block b "t";
        Builder.br b "join";
        Builder.block b "f";
        Builder.br b "join";
        Builder.block b "join";
        let ph = Builder.phi b Types.I64 [ ("t", Value.ci64 1); ("f", Value.ci64 2) ] in
        Builder.ret b Types.I64 ph)
  in
  let m' = run_pass "simplifycfg" m in
  check_same_behaviour "if-convert" m m';
  Alcotest.(check int) "single block" 1 (count_blocks m');
  Alcotest.(check bool) "select or folded" true
    (count_insns is_select m' <= 1)

let test_simplifycfg_folds_constant_branch () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        Builder.cbr b (Value.ci1 true) "t" "f";
        Builder.block b "t";
        Builder.ret b Types.I64 (Value.ci64 1);
        Builder.block b "f";
        Builder.ret b Types.I64 (Value.ci64 2))
  in
  let m' = run_pass "simplifycfg" m in
  Alcotest.(check string) "1" "1" (ret_of m');
  Alcotest.(check int) "one block" 1 (count_blocks m')

let test_speculative_execution_hoists () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 3) p;
        let x = Builder.load b Types.I64 p in
        let c = Builder.icmp b Instr.Sgt Types.I64 x (Value.ci64 0) in
        Builder.cbr b c "t" "f";
        Builder.block b "t";
        let a = Builder.add b Types.I64 x (Value.ci64 1) in
        Builder.ret b Types.I64 a;
        Builder.block b "f";
        let d = Builder.sub b Types.I64 x (Value.ci64 1) in
        Builder.ret b Types.I64 d)
  in
  let m' = run_pass "speculative-execution" m in
  check_same_behaviour "speculation" m m'

(* --- memcpyopt / mldst-motion ----------------------------------------------------------------------- *)

let test_memcpyopt_expands_small () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let src = Builder.alloca b Types.I64 2 in
        let dst = Builder.alloca b Types.I64 2 in
        Builder.store b Types.I64 (Value.ci64 7) src;
        let s1 = Builder.gep b Types.I64 src (Value.ci64 1) in
        Builder.store b Types.I64 (Value.ci64 8) s1;
        Builder.memcpy b dst src (Value.ci64 16);
        let x = Builder.load b Types.I64 dst in
        let d1 = Builder.gep b Types.I64 dst (Value.ci64 1) in
        let y = Builder.load b Types.I64 d1 in
        let r = Builder.add b Types.I64 x y in
        Builder.ret b Types.I64 r)
  in
  let m' = run_pass "memcpyopt" m in
  check_same_behaviour "memcpy expand" m m';
  Alcotest.(check string) "15" "15" (ret_of m');
  Alcotest.(check int) "no memcpy" 0
    (count_insns (fun op -> match op with Instr.Memcpy _ -> true | _ -> false) m')

let test_mldst_motion_sinks_stores () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        let q = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 2) q;
        let x = Builder.load b Types.I64 q in
        let c = Builder.icmp b Instr.Sgt Types.I64 x (Value.ci64 0) in
        Builder.cbr b c "t" "f";
        Builder.block b "t";
        Builder.store b Types.I64 (Value.ci64 1) p;
        Builder.br b "join";
        Builder.block b "f";
        Builder.store b Types.I64 (Value.ci64 9) p;
        Builder.br b "join";
        Builder.block b "join";
        let r = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 r)
  in
  let m' = run_pass "mldst-motion" m in
  check_same_behaviour "mldst" m m';
  Alcotest.(check int) "stores merged" 2 (count_insns is_store m')

let suite =
  [ Alcotest.test_case "instcombine add zero" `Quick test_instcombine_add_zero;
    Alcotest.test_case "instcombine mul pow2" `Quick test_instcombine_mul_pow2;
    Alcotest.test_case "instcombine const chain" `Quick test_instcombine_constant_chain;
    Alcotest.test_case "instcombine x-x" `Quick test_instcombine_sub_self;
    Alcotest.test_case "instcombine folds constants" `Quick test_instcombine_folds_constants;
    Alcotest.test_case "instcombine urem pow2" `Quick test_instcombine_urem_pow2;
    Alcotest.test_case "instsimplify folds" `Quick test_instsimplify_folds;
    Alcotest.test_case "early-cse dedups" `Quick test_early_cse_dedups;
    Alcotest.test_case "early-cse store-load" `Quick test_early_cse_store_load_forward;
    Alcotest.test_case "early-cse-memssa clobber" `Quick test_early_cse_memssa_not_across_store;
    Alcotest.test_case "gvn commutative" `Quick test_gvn_commutative;
    Alcotest.test_case "gvn across blocks" `Quick test_gvn_across_blocks;
    Alcotest.test_case "sccp folds branch" `Quick test_sccp_folds_branch;
    Alcotest.test_case "sccp through phi" `Quick test_sccp_through_phi;
    Alcotest.test_case "ipsccp specializes" `Quick test_ipsccp_specializes_args;
    Alcotest.test_case "adce dead cycle" `Quick test_adce_removes_dead_cycle;
    Alcotest.test_case "adce keeps stores" `Quick test_adce_keeps_stores;
    Alcotest.test_case "bdce masked bits" `Quick test_bdce_masked_bits;
    Alcotest.test_case "dse overwritten store" `Quick test_dse_overwritten_store;
    Alcotest.test_case "dse never read" `Quick test_dse_never_read;
    Alcotest.test_case "dse intervening load" `Quick test_dse_respects_intervening_load;
    Alcotest.test_case "mem2reg promotes" `Quick test_mem2reg_promotes;
    Alcotest.test_case "mem2reg skips escaping" `Quick test_mem2reg_skips_escaping;
    Alcotest.test_case "sroa splits+promotes" `Quick test_sroa_splits_and_promotes;
    Alcotest.test_case "sroa variable index" `Quick test_sroa_skips_variable_index;
    Alcotest.test_case "jump threading" `Quick test_jump_threading;
    Alcotest.test_case "correlated propagation" `Quick test_correlated_propagation;
    Alcotest.test_case "tailcallelim" `Quick test_tailcallelim;
    Alcotest.test_case "reassociate" `Quick test_reassociate_constant_meeting;
    Alcotest.test_case "div-rem-pairs" `Quick test_div_rem_pairs;
    Alcotest.test_case "lower-expect" `Quick test_lower_expect;
    Alcotest.test_case "lower-constant-intrinsics" `Quick test_lower_constant_intrinsics;
    Alcotest.test_case "float2int" `Quick test_float2int;
    Alcotest.test_case "simplifycfg if-conversion" `Quick test_simplifycfg_if_conversion;
    Alcotest.test_case "simplifycfg constant branch" `Quick test_simplifycfg_folds_constant_branch;
    Alcotest.test_case "speculative execution" `Quick test_speculative_execution_hoists;
    Alcotest.test_case "memcpyopt expands" `Quick test_memcpyopt_expands_small;
    Alcotest.test_case "mldst-motion" `Quick test_mldst_motion_sinks_stores ]
