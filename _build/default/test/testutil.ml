(* Shared fixtures and helpers for the test suites. *)

open Posetrl_ir
module P = Posetrl_passes

(* sum of i*i for i in [0,10) computed through memory, with a call *)
let sum_squares_module () : Modul.t =
  let bh = Builder.create ~name:"square" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let x = Builder.param bh 0 in
  let y = Builder.mul bh Types.I64 x x in
  Builder.ret bh Types.I64 y;
  let square = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let acc = Builder.alloca b Types.I64 1 in
  let i = Builder.alloca b Types.I64 1 in
  Builder.store b Types.I64 (Value.ci64 0) acc;
  Builder.store b Types.I64 (Value.ci64 0) i;
  Builder.br b "loop";
  Builder.block b "loop";
  let iv = Builder.load b Types.I64 i in
  let sq = Builder.call b Types.I64 "square" [ iv ] in
  let a0 = Builder.load b Types.I64 acc in
  let a1 = Builder.add b Types.I64 a0 sq in
  Builder.store b Types.I64 a1 acc;
  let iv1 = Builder.add b Types.I64 iv (Value.ci64 1) in
  Builder.store b Types.I64 iv1 i;
  let c = Builder.icmp b Instr.Slt Types.I64 iv1 (Value.ci64 10) in
  Builder.cbr b c "loop" "exit";
  Builder.block b "exit";
  let r = Builder.load b Types.I64 acc in
  Builder.ret b Types.I64 r;
  Modul.mk ~name:"sum_squares" [ square; Builder.finish b ]

(* a single-function wrapper for pass unit tests *)
let wrap_main (build : Builder.t -> unit) : Modul.t =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  build b;
  Modul.mk ~name:"test" [ Builder.finish b ]

let run_pass (name : string) (m : Modul.t) : Modul.t =
  P.Pass.run ~verify:true (P.Registry.find_exn name) P.Config.oz m

let run_pass_cfg (name : string) (cfg : P.Config.t) (m : Modul.t) : Modul.t =
  P.Pass.run ~verify:true (P.Registry.find_exn name) cfg m

(* observable behaviour: Ok (return value string, stdout) or Error trap *)
let observe (m : Modul.t) = Posetrl_interp.Interp.observe m

let check_same_behaviour msg m m' =
  let a = observe m and b = observe m' in
  Alcotest.(check bool)
    (msg ^ ": behaviour preserved "
    ^ (match a, b with
       | Ok (x, _), Ok (y, _) -> Printf.sprintf "(%s vs %s)" x y
       | Error e, _ -> "(orig trap: " ^ e ^ ")"
       | _, Error e -> "(opt trap: " ^ e ^ ")"))
    true (a = b)

(* count instructions matching a predicate over the whole module *)
let count_insns (p : Instr.op -> bool) (m : Modul.t) : int =
  List.fold_left
    (fun acc f ->
      if Func.is_declaration f then acc
      else Func.fold_insns (fun acc _ i -> if p i.Instr.op then acc + 1 else acc) acc f)
    0 m.Modul.funcs

let count_blocks (m : Modul.t) : int =
  List.fold_left
    (fun acc f -> acc + List.length f.Func.blocks)
    0 m.Modul.funcs

let main_func (m : Modul.t) : Func.t = Modul.find_func_exn m "main"

let ret_of (m : Modul.t) : string =
  match observe m with
  | Ok (r, _) -> r
  | Error e -> Alcotest.fail ("program trapped: " ^ e)
