(* Unit tests for interprocedural and attribute passes. *)

open Posetrl_ir
open Testutil

let is_call g = function Instr.Call (_, g', _) -> g = g' | _ -> false

(* --- inline -------------------------------------------------------------- *)

let test_inline_small_callee () =
  let m = sum_squares_module () in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.inline_threshold = 100 } in
  let m' = run_pass_cfg "inline" cfg m in
  check_same_behaviour "inline" m m';
  Alcotest.(check int) "call gone" 0 (count_insns (is_call "square") m')

let test_inline_respects_threshold () =
  let m = sum_squares_module () in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.inline_threshold = 1 } in
  let m' = run_pass_cfg "inline" cfg m in
  Alcotest.(check int) "call kept" 1 (count_insns (is_call "square") m')

let test_inline_respects_noinline () =
  let m = sum_squares_module () in
  let m =
    Modul.map_funcs
      (fun f ->
        if f.Func.name = "square" then Func.add_attr Attrs.noinline f else f)
      m
  in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.inline_threshold = 1000 } in
  let m' = run_pass_cfg "inline" cfg m in
  Alcotest.(check int) "noinline kept" 1 (count_insns (is_call "square") m')

let test_inline_always_inline () =
  let m = sum_squares_module () in
  let m =
    Modul.map_funcs
      (fun f ->
        if f.Func.name = "square" then Func.add_attr Attrs.always_inline f else f)
      m
  in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.inline_threshold = 0 } in
  (* threshold 0 disables the pass entirely in our model, so use 1 *)
  let cfg = { cfg with Posetrl_passes.Config.inline_threshold = 1 } in
  let m' = run_pass_cfg "inline" cfg m in
  check_same_behaviour "alwaysinline" m m';
  Alcotest.(check int) "inlined" 0 (count_insns (is_call "square") m')

let test_inline_recursive_not_inlined_into_self () =
  let bh = Builder.create ~name:"fact" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let n = Builder.param bh 0 in
  let c = Builder.icmp bh Instr.Sle Types.I64 n (Value.ci64 1) in
  Builder.cbr bh c "base" "rec";
  Builder.block bh "base";
  Builder.ret bh Types.I64 (Value.ci64 1);
  Builder.block bh "rec";
  let n1 = Builder.sub bh Types.I64 n (Value.ci64 1) in
  let r = Builder.call bh Types.I64 "fact" [ n1 ] in
  let p = Builder.mul bh Types.I64 n r in
  Builder.ret bh Types.I64 p;
  let fact = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.call b Types.I64 "fact" [ Value.ci64 10 ] in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" [ fact; Builder.finish b ] in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.inline_threshold = 1000 } in
  let m' = run_pass_cfg "inline" cfg m in
  check_same_behaviour "recursion" m m';
  Alcotest.(check string) "3628800" "3628800" (ret_of m')

let test_inline_void_callee () =
  let gl = Global.mk ~linkage:Global.Internal ~init:Global.Zeroinit "cell" Types.I64 1 in
  let bh = Builder.create ~name:"poke" ~params:[ Types.I64 ] ~ret:Types.Void () in
  Builder.block bh "entry";
  Builder.store bh Types.I64 (Builder.param bh 0) (Value.global "cell");
  Builder.ret_void bh;
  let poke = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let _ = Builder.call b Types.Void "poke" [ Value.ci64 123 ] in
  let x = Builder.load b Types.I64 (Value.global "cell") in
  Builder.ret b Types.I64 x;
  let m = Modul.mk ~name:"t" ~globals:[ gl ] [ poke; Builder.finish b ] in
  let cfg = { Posetrl_passes.Config.oz with Posetrl_passes.Config.inline_threshold = 100 } in
  let m' = run_pass_cfg "inline" cfg m in
  check_same_behaviour "void inline" m m';
  Alcotest.(check string) "123" "123" (ret_of m')

(* --- globaldce ------------------------------------------------------------- *)

let test_globaldce_removes_unused () =
  let bh = Builder.create ~name:"unused" ~params:[] ~ret:Types.I64 () in
  Builder.block bh "entry";
  Builder.ret bh Types.I64 (Value.ci64 0);
  let unused = Builder.finish bh in
  let gl = Global.mk ~linkage:Global.Internal ~init:Global.Zeroinit "unused_g" Types.I64 4 in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  Builder.ret b Types.I64 (Value.ci64 1);
  let m = Modul.mk ~name:"t" ~globals:[ gl ] [ unused; Builder.finish b ] in
  let m' = run_pass "globaldce" m in
  Alcotest.(check int) "function removed" 1 (List.length m'.Modul.funcs);
  Alcotest.(check int) "global removed" 0 (List.length m'.Modul.globals)

let test_globaldce_keeps_reachable () =
  let m = sum_squares_module () in
  let m' = run_pass "globaldce" m in
  Alcotest.(check int) "both kept" 2 (List.length m'.Modul.funcs);
  check_same_behaviour "globaldce" m m'

(* --- deadargelim ------------------------------------------------------------- *)

let test_deadargelim () =
  let bh = Builder.create ~name:"f" ~params:[ Types.I64; Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  (* second parameter unused *)
  let x = Builder.param bh 0 in
  let r = Builder.add bh Types.I64 x (Value.ci64 1) in
  Builder.ret bh Types.I64 r;
  let f = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.call b Types.I64 "f" [ Value.ci64 4; Value.ci64 999 ] in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" [ f; Builder.finish b ] in
  let m' = run_pass "deadargelim" m in
  check_same_behaviour "deadargelim" m m';
  let f' = Modul.find_func_exn m' "f" in
  Alcotest.(check int) "one param" 1 (List.length f'.Func.params)

(* --- constmerge ------------------------------------------------------------------ *)

let test_constmerge () =
  let g1 =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Ints [| 1L; 2L |]) "c1" Types.I64 2
  in
  let g2 =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Ints [| 1L; 2L |]) "c2" Types.I64 2
  in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let x = Builder.load b Types.I64 (Value.global "c1") in
  let p = Builder.gep b Types.I64 (Value.global "c2") (Value.ci64 1) in
  let y = Builder.load b Types.I64 p in
  let s = Builder.add b Types.I64 x y in
  Builder.ret b Types.I64 s;
  let m = Modul.mk ~name:"t" ~globals:[ g1; g2 ] [ Builder.finish b ] in
  let m' = run_pass "constmerge" m in
  check_same_behaviour "constmerge" m m';
  Alcotest.(check int) "merged to one" 1 (List.length m'.Modul.globals);
  Alcotest.(check string) "3" "3" (ret_of m')

(* --- globalopt --------------------------------------------------------------------- *)

let test_globalopt_constantizes () =
  let g = Global.mk ~linkage:Global.Internal ~init:(Global.Ints [| 41L |]) "k" Types.I64 1 in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let x = Builder.load b Types.I64 (Value.global "k") in
  let r = Builder.add b Types.I64 x (Value.ci64 1) in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" ~globals:[ g ] [ Builder.finish b ] in
  let m' = run_pass "globalopt" m in
  check_same_behaviour "globalopt" m m';
  Alcotest.(check string) "42" "42" (ret_of m');
  Alcotest.(check int) "load folded" 0
    (count_insns (fun op -> match op with Instr.Load _ -> true | _ -> false) m')

let test_globalopt_drops_writeonly_stores () =
  let g = Global.mk ~linkage:Global.Internal ~init:Global.Zeroinit "sinkhole" Types.I64 1 in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  Builder.store b Types.I64 (Value.ci64 5) (Value.global "sinkhole");
  Builder.ret b Types.I64 (Value.ci64 0);
  let m = Modul.mk ~name:"t" ~globals:[ g ] [ Builder.finish b ] in
  let m' = run_pass "globalopt" m in
  Alcotest.(check int) "store dropped" 0
    (count_insns (fun op -> match op with Instr.Store _ -> true | _ -> false) m')

(* --- called-value-propagation -------------------------------------------------------- *)

let test_cvp_devirtualizes () =
  let bh = Builder.create ~name:"target" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let r = Builder.mul bh Types.I64 (Builder.param bh 0) (Value.ci64 2) in
  Builder.ret bh Types.I64 r;
  let target = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.callind b Types.I64 (Value.global "target") [ Value.ci64 21 ] in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" [ target; Builder.finish b ] in
  let m' = run_pass "called-value-propagation" m in
  check_same_behaviour "cvp" m m';
  Alcotest.(check string) "42" "42" (ret_of m');
  Alcotest.(check int) "now direct" 1 (count_insns (is_call "target") m');
  Alcotest.(check int) "no indirect" 0
    (count_insns (fun op -> match op with Instr.Callind _ -> true | _ -> false) m')

(* --- strip-dead-prototypes ------------------------------------------------------------- *)

let test_strip_dead_prototypes () =
  let decl = Func.declare ~name:"never_called" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  Builder.ret b Types.I64 (Value.ci64 0);
  let m = Modul.mk ~name:"t" [ decl; Builder.finish b ] in
  let m' = run_pass "strip-dead-prototypes" m in
  Alcotest.(check int) "prototype stripped" 1 (List.length m'.Modul.funcs)

(* --- functionattrs / attributor ---------------------------------------------------------- *)

let test_functionattrs_readnone () =
  let m = sum_squares_module () in
  let m' = run_pass "functionattrs" m in
  let sq = Modul.find_func_exn m' "square" in
  Alcotest.(check bool) "square readnone" true (Func.has_attr Attrs.readnone sq);
  Alcotest.(check bool) "square norecurse" true (Func.has_attr Attrs.norecurse sq)

let test_functionattrs_readonly_propagates () =
  (* a function that only loads is readonly; its caller (that also only
     loads and calls it) becomes readonly too *)
  let g = Global.mk ~linkage:Global.Internal ~init:(Global.Ints [| 7L |]) "k" Types.I64 1 in
  let bh = Builder.create ~name:"reader" ~params:[] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let x = Builder.load bh Types.I64 (Value.global "k") in
  Builder.ret bh Types.I64 x;
  let reader = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.call b Types.I64 "reader" [] in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" ~globals:[ g ] [ reader; Builder.finish b ] in
  let m' = run_pass "functionattrs" m in
  Alcotest.(check bool) "reader readonly" true
    (Func.has_attr Attrs.readonly (Modul.find_func_exn m' "reader"));
  Alcotest.(check bool) "main readonly" true
    (Func.has_attr Attrs.readonly (Modul.find_func_exn m' "main"))

let test_attributor_willreturn () =
  (* willreturn needs a recognizable counted loop: promote to SSA first *)
  let m = sum_squares_module () |> run_pass "mem2reg" in
  let m' = run_pass "attributor" m in
  Alcotest.(check bool) "main willreturn" true
    (Func.has_attr Attrs.willreturn (Modul.find_func_exn m' "main"))

let test_forceattrs_sets_size_attrs () =
  let m = sum_squares_module () in
  let m' = run_pass_cfg "forceattrs" Posetrl_passes.Config.oz m in
  Alcotest.(check bool) "minsize" true
    (Func.has_attr Attrs.minsize (Modul.find_func_exn m' "main"));
  let m2 = run_pass_cfg "forceattrs" Posetrl_passes.Config.o3 m in
  Alcotest.(check bool) "no minsize at O3" false
    (Func.has_attr Attrs.minsize (Modul.find_func_exn m2 "main"))

let test_inferattrs_library_decls () =
  let decl = Func.declare ~name:"sqrt" ~params:[ Types.F64 ] ~ret:Types.F64 () in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.call b Types.F64 "sqrt" [ Value.cfloat 4.0 ] in
  let i = Builder.cast b Instr.Fptosi ~from_ty:Types.F64 ~to_ty:Types.I64 r in
  Builder.ret b Types.I64 i;
  let m = Modul.mk ~name:"t" [ decl; Builder.finish b ] in
  let m' = run_pass "inferattrs" m in
  Alcotest.(check bool) "sqrt readnone" true
    (Func.has_attr Attrs.readnone (Modul.find_func_exn m' "sqrt"));
  Alcotest.(check string) "runs" "2" (ret_of m')

let test_prune_eh_nounwind () =
  let m = sum_squares_module () in
  let m' = run_pass "prune-eh" m in
  Alcotest.(check bool) "nounwind" true
    (Func.has_attr Attrs.nounwind (Modul.find_func_exn m' "main"))

let test_barrier_identity () =
  let m = sum_squares_module () in
  let m' = run_pass "barrier" m in
  Alcotest.(check string) "identical print" (Printer.module_to_string m)
    (Printer.module_to_string m')

let suite =
  [ Alcotest.test_case "inline small callee" `Quick test_inline_small_callee;
    Alcotest.test_case "inline threshold" `Quick test_inline_respects_threshold;
    Alcotest.test_case "inline noinline" `Quick test_inline_respects_noinline;
    Alcotest.test_case "inline alwaysinline" `Quick test_inline_always_inline;
    Alcotest.test_case "inline recursion" `Quick test_inline_recursive_not_inlined_into_self;
    Alcotest.test_case "inline void callee" `Quick test_inline_void_callee;
    Alcotest.test_case "globaldce removes unused" `Quick test_globaldce_removes_unused;
    Alcotest.test_case "globaldce keeps reachable" `Quick test_globaldce_keeps_reachable;
    Alcotest.test_case "deadargelim" `Quick test_deadargelim;
    Alcotest.test_case "constmerge" `Quick test_constmerge;
    Alcotest.test_case "globalopt constantizes" `Quick test_globalopt_constantizes;
    Alcotest.test_case "globalopt write-only" `Quick test_globalopt_drops_writeonly_stores;
    Alcotest.test_case "cvp devirtualizes" `Quick test_cvp_devirtualizes;
    Alcotest.test_case "strip-dead-prototypes" `Quick test_strip_dead_prototypes;
    Alcotest.test_case "functionattrs readnone" `Quick test_functionattrs_readnone;
    Alcotest.test_case "functionattrs readonly" `Quick test_functionattrs_readonly_propagates;
    Alcotest.test_case "attributor willreturn" `Quick test_attributor_willreturn;
    Alcotest.test_case "forceattrs size attrs" `Quick test_forceattrs_sets_size_attrs;
    Alcotest.test_case "inferattrs library" `Quick test_inferattrs_library_decls;
    Alcotest.test_case "prune-eh nounwind" `Quick test_prune_eh_nounwind;
    Alcotest.test_case "barrier identity" `Quick test_barrier_identity ]
