(* Interpreter semantics tests: arithmetic wrapping, memory, phis, calls,
   intrinsics, traps, and the fold/interp agreement property. *)

open Posetrl_ir
module I = Posetrl_interp.Interp

let run_main m = I.run m

let ret_i64 m =
  match (run_main m).I.ret with
  | I.VInt v -> v
  | _ -> Alcotest.fail "expected integer return"

let test_arith_wrapping () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        (* i32 overflow must wrap *)
        let big = Value.cint Types.I32 2147483647L in
        let x = Builder.add b Types.I32 big (Value.cint Types.I32 1L) in
        let y = Builder.sext b ~from_ty:Types.I32 ~to_ty:Types.I64 x in
        Builder.ret b Types.I64 y)
  in
  Alcotest.(check int64) "i32 wraps" (-2147483648L) (ret_i64 m)

let test_division_trap () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 0) p;
        let z = Builder.load b Types.I64 p in
        let x = Builder.sdiv b Types.I64 (Value.ci64 5) z in
        Builder.ret b Types.I64 x)
  in
  Alcotest.(check bool) "div by zero traps" true
    (match I.observe m with Error _ -> true | Ok _ -> false)

let test_memory_byte_granularity () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I8 8 in
        Builder.store b Types.I64 (Value.ci64 0x0102030405060708) p;
        (* read back byte 0 (little endian => 8) *)
        let x = Builder.load b Types.I8 p in
        let y = Builder.zext b ~from_ty:Types.I8 ~to_ty:Types.I64 x in
        Builder.ret b Types.I64 y)
  in
  Alcotest.(check int64) "little endian" 8L (ret_i64 m)

let test_global_init_ints () =
  let g =
    Global.mk ~is_const:true ~linkage:Global.Internal
      ~init:(Global.Ints [| 10L; 20L; 30L |]) "tbl" Types.I64 3
  in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let p = Builder.gep b Types.I64 (Value.global "tbl") (Value.ci64 2) in
  let x = Builder.load b Types.I64 p in
  Builder.ret b Types.I64 x;
  let m = Modul.mk ~name:"t" ~globals:[ g ] [ Builder.finish b ] in
  Alcotest.(check int64) "init read" 30L (ret_i64 m)

let test_global_bytes_and_putchar () =
  let g =
    Global.mk ~is_const:true ~linkage:Global.Internal ~init:(Global.Bytes "Hi")
      "msg" Types.I8 2
  in
  let decl = Func.declare ~name:"putchar" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let c0 = Builder.load b Types.I8 (Value.global "msg") in
  let c0' = Builder.zext b ~from_ty:Types.I8 ~to_ty:Types.I64 c0 in
  let _ = Builder.call b Types.I64 "putchar" [ c0' ] in
  let p1 = Builder.gep b Types.I8 (Value.global "msg") (Value.ci64 1) in
  let c1 = Builder.load b Types.I8 p1 in
  let c1' = Builder.zext b ~from_ty:Types.I8 ~to_ty:Types.I64 c1 in
  let _ = Builder.call b Types.I64 "putchar" [ c1' ] in
  Builder.ret b Types.I64 (Value.ci64 0);
  let m = Modul.mk ~name:"t" ~globals:[ g ] [ decl; Builder.finish b ] in
  Alcotest.(check string) "output" "Hi" (run_main m).I.output

let test_phi_simultaneous_swap () =
  (* the classic swap test: phis must read predecessor values atomically *)
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  Builder.br b "loop";
  Builder.block b "loop";
  let x = Builder.phi b Types.I64 [ ("entry", Value.ci64 1); ("loop", Value.Reg 1) ] in
  let y = Builder.phi b Types.I64 [ ("entry", Value.ci64 2); ("loop", Value.Reg 0) ] in
  (* note: x is %0, y is %1 — each phi reads the other (swap each iteration) *)
  let i = Builder.phi b Types.I64 [ ("entry", Value.ci64 0); ("loop", Value.Reg 3) ] in
  let i' = Builder.add b Types.I64 i (Value.ci64 1) in
  let c = Builder.icmp b Instr.Slt Types.I64 i' (Value.ci64 3) in
  Builder.cbr b c "loop" "exit";
  Builder.block b "exit";
  (* after 3 iterations (odd number of swaps): x=2, y=1 — value of x on exit *)
  let r = Builder.mul b Types.I64 x (Value.ci64 10) in
  let r2 = Builder.add b Types.I64 r y in
  Builder.ret b Types.I64 r2;
  let m = Modul.mk ~name:"t" [ Builder.finish b ] in
  Verifier.check m;
  (* iteration values: enter (1,2); iter1 -> (2,1); iter2 -> (1,2); iter3 -> (2,1);
     but the exit reads the CURRENT iteration's phi values, i.e. after the
     third entry into loop: x=1,y=2 on 3rd entry... compute via interpreter *)
  let v = ret_i64 m in
  Alcotest.(check bool) "swap result consistent" true (v = 12L || v = 21L);
  (* and it must equal the fixed semantic value *)
  Alcotest.(check int64) "exact" 12L v

let test_call_stack_depth_trap () =
  let bh = Builder.create ~name:"inf" ~params:[ Types.I64 ] ~ret:Types.I64 () in
  Builder.block bh "entry";
  let r = Builder.call bh Types.I64 "inf" [ Builder.param bh 0 ] in
  Builder.ret bh Types.I64 r;
  let inf = Builder.finish bh in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let r = Builder.call b Types.I64 "inf" [ Value.ci64 0 ] in
  Builder.ret b Types.I64 r;
  let m = Modul.mk ~name:"t" [ inf; Builder.finish b ] in
  Alcotest.(check bool) "stack overflow trapped" true
    (match I.observe m with Error _ -> true | Ok _ -> false)

let test_fuel_exhaustion () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  Builder.br b "spin";
  Builder.block b "spin";
  Builder.br b "spin";
  let m = Modul.mk ~name:"t" [ Builder.finish b ] in
  Alcotest.(check bool) "out of fuel" true
    (match I.observe ~fuel:1000 m with Error e -> e = "out of fuel" | Ok _ -> false)

let test_memset_intrinsic () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let a = Builder.alloca b Types.I64 4 in
        let _ =
          Builder.intrinsic b "memset" Types.Void
            [ a; Value.ci64 9; Value.ci64 4; Value.ci64 8 ]
        in
        let p = Builder.gep b Types.I64 a (Value.ci64 3) in
        let x = Builder.load b Types.I64 p in
        Builder.ret b Types.I64 x)
  in
  Alcotest.(check int64) "memset wrote" 9L (ret_i64 m)

let test_memcpy_op () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let src = Builder.alloca b Types.I64 2 in
        let dst = Builder.alloca b Types.I64 2 in
        Builder.store b Types.I64 (Value.ci64 5) src;
        let s1 = Builder.gep b Types.I64 src (Value.ci64 1) in
        Builder.store b Types.I64 (Value.ci64 6) s1;
        Builder.memcpy b dst src (Value.ci64 16);
        let d1 = Builder.gep b Types.I64 dst (Value.ci64 1) in
        let x = Builder.load b Types.I64 dst in
        let y = Builder.load b Types.I64 d1 in
        let s = Builder.add b Types.I64 x y in
        Builder.ret b Types.I64 s)
  in
  Alcotest.(check int64) "memcpy copied" 11L (ret_i64 m)

let test_vector_ops () =
  let m =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let a = Builder.alloca b Types.I64 4 in
        (* write 1,2,3,4 *)
        List.iteri
          (fun k v ->
            let p = Builder.gep b Types.I64 a (Value.ci64 k) in
            Builder.store b Types.I64 (Value.ci64 v) p)
          [ 1; 2; 3; 4 ];
        let vec_ty = Types.Vec (Types.I64, 4) in
        let v = Builder.load b vec_ty a in
        (* splat 10 and add *)
        let s = Builder.cast b Instr.Bitcast ~from_ty:Types.I64 ~to_ty:vec_ty (Value.ci64 10) in
        let sum = Builder.add b vec_ty v s in
        Builder.store b vec_ty sum a;
        (* read back element 2 -> 13 *)
        let p2 = Builder.gep b Types.I64 a (Value.ci64 2) in
        let x = Builder.load b Types.I64 p2 in
        Builder.ret b Types.I64 x)
  in
  Alcotest.(check int64) "vector lane" 13L (ret_i64 m)

let test_switch_dispatch () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let p = Builder.alloca b Types.I64 1 in
  Builder.store b Types.I64 (Value.ci64 2) p;
  let x = Builder.load b Types.I64 p in
  Builder.switch b Types.I64 x [ (1L, "one"); (2L, "two") ] "other";
  Builder.block b "one";
  Builder.ret b Types.I64 (Value.ci64 100);
  Builder.block b "two";
  Builder.ret b Types.I64 (Value.ci64 200);
  Builder.block b "other";
  Builder.ret b Types.I64 (Value.ci64 300);
  let m = Modul.mk ~name:"t" [ Builder.finish b ] in
  Alcotest.(check int64) "switch" 200L (ret_i64 m)

let test_cycles_monotone_in_work () =
  let mk n =
    let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
    let c = Posetrl_workloads.Dsl.ctx b in
    Builder.block b "entry";
    let acc = Posetrl_workloads.Dsl.var c Types.I64 (Value.ci64 0) in
    Posetrl_workloads.Dsl.for_up c ~from:0 ~bound:(Value.ci64 n) (fun ip ->
        Posetrl_workloads.Dsl.bump c acc (Posetrl_workloads.Dsl.get c Types.I64 ip));
    Builder.ret b Types.I64 (Posetrl_workloads.Dsl.get c Types.I64 acc);
    Modul.mk ~name:"t" [ Builder.finish b ]
  in
  let c10 = (run_main (mk 10)).I.cycles in
  let c100 = (run_main (mk 100)).I.cycles in
  Alcotest.(check bool) "more work, more cycles" true (c100 > c10 * 5)

(* property: Fold.fold_op agrees with interpreter execution on random
   integer binops *)
let prop_fold_matches_interp =
  QCheck2.Test.make ~count:500 ~name:"fold_op agrees with interpreter"
    QCheck2.Gen.(triple (int_range 0 12) (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (opidx, a, b) ->
      let bop =
        [| Instr.Add; Instr.Sub; Instr.Mul; Instr.Sdiv; Instr.Udiv; Instr.Srem;
           Instr.Urem; Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Lshr;
           Instr.Ashr |].(opidx)
      in
      let op = Instr.Binop (bop, Types.I64, Value.ci64 a, Value.ci64 b) in
      match Fold.fold_op op with
      | None -> true (* division by zero etc.: nothing to compare *)
      | Some (Value.Const (Value.Cint (_, folded))) ->
        let m =
          Testutil.wrap_main (fun bb ->
              Builder.block bb "entry";
              let p = Builder.alloca bb Types.I64 1 in
              Builder.store bb Types.I64 (Value.ci64 a) p;
              let x = Builder.load bb Types.I64 p in
              let r = Builder.binop bb bop Types.I64 x (Value.ci64 b) in
              Builder.ret bb Types.I64 r)
        in
        (match (run_main m).I.ret with
         | I.VInt v -> Int64.equal v folded
         | _ -> false)
      | Some _ -> false)

let suite =
  [ Alcotest.test_case "arith wrapping" `Quick test_arith_wrapping;
    Alcotest.test_case "division trap" `Quick test_division_trap;
    Alcotest.test_case "memory byte granularity" `Quick test_memory_byte_granularity;
    Alcotest.test_case "global init ints" `Quick test_global_init_ints;
    Alcotest.test_case "global bytes + putchar" `Quick test_global_bytes_and_putchar;
    Alcotest.test_case "phi simultaneous swap" `Quick test_phi_simultaneous_swap;
    Alcotest.test_case "stack depth trap" `Quick test_call_stack_depth_trap;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "memset intrinsic" `Quick test_memset_intrinsic;
    Alcotest.test_case "memcpy" `Quick test_memcpy_op;
    Alcotest.test_case "vector ops" `Quick test_vector_ops;
    Alcotest.test_case "switch dispatch" `Quick test_switch_dispatch;
    Alcotest.test_case "cycles monotone" `Quick test_cycles_monotone_in_work;
    QCheck_alcotest.to_alcotest prop_fold_matches_interp ]
