(* Tests for the shared transformation utilities and the region cloner. *)

open Posetrl_ir
module P = Posetrl_passes
open Testutil

let test_trivial_dce () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 5) p;
        let x = Builder.load b Types.I64 p in
        (* chain of dead pure computation *)
        let d1 = Builder.mul b Types.I64 x x in
        let _d2 = Builder.add b Types.I64 d1 (Value.ci64 1) in
        Builder.ret b Types.I64 x)
  in
  let f = P.Utils.trivial_dce (main_func m) in
  let m' = Modul.replace_func m f in
  check_same_behaviour "trivial dce" m m';
  Alcotest.(check int) "dead chain removed" 0
    (count_insns (fun op -> match op with Instr.Binop _ -> true | _ -> false) m')

let test_fold_terminators () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        Builder.cbr b (Value.ci1 false) "a" "b";
        Builder.block b "a";
        Builder.ret b Types.I64 (Value.ci64 1);
        Builder.block b "b";
        Builder.ret b Types.I64 (Value.ci64 2))
  in
  let f = P.Utils.fold_terminators (main_func m) in
  Alcotest.(check int) "dead arm removed" 2 (List.length f.Func.blocks);
  Alcotest.(check string) "takes false arm" "2" (ret_of (Modul.replace_func m f))

let test_merge_blocks () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 3) p;
        Builder.br b "mid";
        Builder.block b "mid";
        let x = Builder.load b Types.I64 p in
        Builder.br b "last";
        Builder.block b "last";
        Builder.ret b Types.I64 x)
  in
  let f = P.Utils.merge_blocks (main_func m) in
  Alcotest.(check int) "merged into one" 1 (List.length f.Func.blocks);
  check_same_behaviour "merge" m (Modul.replace_func m f)

let test_remove_forwarding_blocks () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let c = Builder.icmp b Instr.Sgt Types.I64 x (Value.ci64 0) in
        Builder.cbr b c "fwd" "other";
        Builder.block b "fwd";
        Builder.br b "target";
        Builder.block b "other";
        Builder.br b "target";
        Builder.block b "target";
        Builder.ret b Types.I64 x)
  in
  let f = P.Utils.remove_forwarding_blocks (main_func m) in
  Alcotest.(check bool) "fewer blocks" true (List.length f.Func.blocks <= 3);
  check_same_behaviour "forwarding" m (Modul.replace_func m f)

let test_fresh_label () =
  let m = sum_squares_module () in
  let f = main_func m in
  Alcotest.(check string) "fresh when free" "new" (P.Utils.fresh_label f "new");
  Alcotest.(check bool) "avoids collision" true
    (P.Utils.fresh_label f "entry" <> "entry")

let test_func_cost_ordering () =
  let small = main_func (wrap_main (fun b ->
      Builder.block b "entry";
      Builder.ret b Types.I64 (Value.ci64 0)))
  in
  let big = main_func (Posetrl_workloads.Mibench.dijkstra ()) in
  Alcotest.(check bool) "cost ordering" true
    (P.Utils.func_cost small < P.Utils.func_cost big)

let test_analyze_counted_loop () =
  (* rotated canonical loop: for (i=0; i<10; i++) *)
  let m =
    Posetrl_passes.Pass_manager.run P.Config.oz
      [ "mem2reg"; "instcombine"; "simplifycfg"; "loop-simplify"; "lcssa"; "loop-rotate" ]
      (sum_squares_module ())
  in
  let f = main_func m in
  let li = Loops.compute f in
  match li.Loops.loops with
  | [ loop ] ->
    (match P.Utils.analyze_counted_loop f loop with
     | Some info ->
       Alcotest.(check int) "trip count" 10 info.P.Utils.trip_count;
       Alcotest.(check int64) "step" 1L info.P.Utils.step;
       Alcotest.(check int64) "init" 0L info.P.Utils.init
     | None -> Alcotest.fail "counted loop not recognized")
  | _ -> Alcotest.fail "expected one loop"

(* --- clone ------------------------------------------------------------------ *)

let test_clone_blocks_fresh_regs () =
  let f = main_func (sum_squares_module ()) in
  let counter = Func.fresh_counter f in
  let cloned, find =
    P.Clone.clone_blocks ~counter ~rename_label:(fun l -> l ^ ".c") ~init_map:[]
      f.Func.blocks
  in
  (* every def got a fresh register above the original next_id *)
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if i.Instr.id >= 0 then
            Alcotest.(check bool) "fresh id" true (i.Instr.id >= f.Func.next_id))
        b.Block.insns)
    cloned;
  (* labels renamed *)
  List.iter
    (fun (b : Block.t) ->
      Alcotest.(check bool) "label suffixed" true
        (String.length b.Block.label > 2
         && String.sub b.Block.label (String.length b.Block.label - 2) 2 = ".c"))
    cloned;
  (* the mapping reports where defs went *)
  let some_def =
    List.concat_map (fun (b : Block.t) -> b.Block.insns) f.Func.blocks
    |> List.find_map (fun (i : Instr.t) -> if i.Instr.id >= 0 then Some i.Instr.id else None)
  in
  (match some_def with
   | Some r -> Alcotest.(check bool) "find maps def" true (Option.is_some (find r))
   | None -> Alcotest.fail "no defs?")

let test_clone_respects_init_map () =
  let blk =
    Block.mk "b"
      [ Instr.mk 5 (Instr.Binop (Instr.Add, Types.I64, Value.Reg 0, Value.ci64 1)) ]
      (Instr.Ret (Some (Types.I64, Value.Reg 5)))
  in
  let counter = { Func.next = 10 } in
  let cloned, _ =
    P.Clone.clone_blocks ~counter ~rename_label:(fun l -> l)
      ~init_map:[ (0, Value.ci64 41) ] [ blk ]
  in
  match (List.hd cloned).Block.insns with
  | [ { Instr.op = Instr.Binop (Instr.Add, _, Value.Const (Value.Cint (_, 41L)), _); _ } ] -> ()
  | _ -> Alcotest.fail "init_map not applied"

let test_region_defs () =
  let f = main_func (sum_squares_module ()) in
  let defs = P.Clone.region_defs f.Func.blocks in
  Alcotest.(check bool) "some defs" true (List.length defs > 3)

(* --- config/pipelines --------------------------------------------------------- *)

let test_config_ordering () =
  Alcotest.(check bool) "O3 inlines more than Oz" true
    (P.Config.o3.P.Config.inline_threshold > P.Config.oz.P.Config.inline_threshold);
  Alcotest.(check bool) "O3 unrolls more than Oz" true
    (P.Config.o3.P.Config.unroll_count > P.Config.oz.P.Config.unroll_count);
  Alcotest.(check bool) "Oz is size level 2" true (P.Config.oz.P.Config.size_level = 2);
  Alcotest.(check bool) "Oz disables vectorize" true (not P.Config.oz.P.Config.vectorize);
  Alcotest.(check bool) "O2 enables vectorize" true P.Config.o2.P.Config.vectorize

let test_pipeline_levels () =
  Alcotest.(check bool) "level parse" true
    (P.Pipelines.level_of_string "Oz" = Some P.Pipelines.Oz);
  Alcotest.(check bool) "level parse lc" true
    (P.Pipelines.level_of_string "o3" = Some P.Pipelines.O3);
  Alcotest.(check bool) "bad level" true (P.Pipelines.level_of_string "O9" = None);
  Alcotest.(check int) "O0 empty" 0 (List.length (P.Pipelines.sequence_of P.Pipelines.O0))

let test_pass_manager_stats () =
  let m = sum_squares_module () in
  let _, stats =
    P.Pass_manager.run_names ~collect:true P.Config.oz
      [ "mem2reg"; "instcombine" ] m
  in
  Alcotest.(check int) "two entries" 2 (List.length stats);
  let first = List.hd stats in
  Alcotest.(check string) "name" "mem2reg" first.P.Pass_manager.pass_name;
  Alcotest.(check bool) "shrunk" true
    (first.P.Pass_manager.insns_after < first.P.Pass_manager.insns_before)

let test_pass_manager_unknown_pass () =
  let m = sum_squares_module () in
  Alcotest.(check bool) "unknown pass raises" true
    (try ignore (P.Pass_manager.run P.Config.oz [ "no-such-pass" ] m); false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "trivial dce" `Quick test_trivial_dce;
    Alcotest.test_case "fold terminators" `Quick test_fold_terminators;
    Alcotest.test_case "merge blocks" `Quick test_merge_blocks;
    Alcotest.test_case "remove forwarding blocks" `Quick test_remove_forwarding_blocks;
    Alcotest.test_case "fresh label" `Quick test_fresh_label;
    Alcotest.test_case "func cost ordering" `Quick test_func_cost_ordering;
    Alcotest.test_case "analyze counted loop" `Quick test_analyze_counted_loop;
    Alcotest.test_case "clone fresh regs" `Quick test_clone_blocks_fresh_regs;
    Alcotest.test_case "clone init map" `Quick test_clone_respects_init_map;
    Alcotest.test_case "region defs" `Quick test_region_defs;
    Alcotest.test_case "config ordering" `Quick test_config_ordering;
    Alcotest.test_case "pipeline levels" `Quick test_pipeline_levels;
    Alcotest.test_case "pass manager stats" `Quick test_pass_manager_stats;
    Alcotest.test_case "pass manager unknown" `Quick test_pass_manager_unknown_pass ]
