(* Tests for the codegen size model and the MCA throughput model. *)

open Posetrl_ir
module CG = Posetrl_codegen
module Mca = Posetrl_mca.Mca
module P = Posetrl_passes
module W = Posetrl_workloads

let x86 = CG.Target.x86_64
let arm = CG.Target.aarch64

let test_size_positive_on_suites () =
  List.iter
    (fun (name, m) ->
      let sx = CG.Objfile.size x86 m in
      let sa = CG.Objfile.size arm m in
      Alcotest.(check bool) (name ^ " x86 size > headers") true
        (sx > x86.CG.Target.header_bytes);
      Alcotest.(check bool) (name ^ " arm size > headers") true
        (sa > arm.CG.Target.header_bytes))
    (W.Suites.all_programs ())

let test_more_insns_more_bytes () =
  let m = Testutil.sum_squares_module () in
  let m_oz = P.Pass_manager.run_level P.Pipelines.Oz m in
  Alcotest.(check bool) "Oz binary smaller than unoptimized" true
    (CG.Objfile.size x86 m_oz < CG.Objfile.size x86 m)

let test_o3_bigger_than_oz () =
  (* O3 unrolls/inlines aggressively: across the suites, total text must be
     at least as large as Oz's, typically strictly larger *)
  let total level =
    List.fold_left
      (fun acc (_, m) ->
        acc + CG.Objfile.text_size x86 (P.Pass_manager.run_level level m))
      0 (W.Suites.all_programs ())
  in
  let t3 = total P.Pipelines.O3 and tz = total P.Pipelines.Oz in
  Alcotest.(check bool)
    (Printf.sprintf "O3 text (%d) > Oz text (%d)" t3 tz)
    true (t3 > tz)

let test_aarch64_fixed_width_dominates_encoding () =
  (* every AArch64 machine instruction is 4 bytes except paired
     materializations; spot-check per-function size is a multiple of 4 at
     the granularity of the lowering's instruction list *)
  let m = Testutil.sum_squares_module () in
  let f = Testutil.main_func m in
  let lf = CG.Lower.lower_func arm f in
  List.iter
    (fun (lb : CG.Lower.lowered_block) ->
      List.iter
        (fun (mi : CG.Target.minst) ->
          Alcotest.(check bool) "arm encodings 4-byte-ish" true
            (mi.CG.Target.bytes = 4 || mi.CG.Target.bytes = 8 || mi.CG.Target.bytes = 1))
        lb.CG.Lower.minsts)
    lf.CG.Lower.blocks

let test_wide_immediate_costs_more () =
  let mk v =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.add b Types.I64 x (Value.ci64 v) in
        Builder.ret b Types.I64 y)
  in
  let small = CG.Objfile.func_size x86 (Testutil.main_func (mk 5)) in
  let wide = CG.Objfile.func_size x86 (Testutil.main_func (mk 123456789)) in
  Alcotest.(check bool) "wide immediate bigger" true (wide > small)

let test_bss_free_data_costly () =
  let mk init =
    let g = Global.mk ~linkage:Global.Internal ~init "buf" Types.I64 128 in
    let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
    Builder.block b "entry";
    let x = Builder.load b Types.I64 (Value.global "buf") in
    Builder.ret b Types.I64 x;
    Modul.mk ~name:"t" ~globals:[ g ] [ Builder.finish b ]
  in
  let zero = CG.Objfile.size x86 (mk Global.Zeroinit) in
  let data = CG.Objfile.size x86 (mk (Global.Ints (Array.make 128 7L))) in
  Alcotest.(check bool) "initialized data larger than bss" true (data > zero + 900)

let test_spill_model_kicks_in () =
  (* a block with very many live values must cost more than the sum of its
     plain instructions *)
  let mk n =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let vals = ref [ x ] in
        for k = 1 to n do
          let v = Builder.mul b Types.I64 (List.hd !vals) (Value.ci64 (k + 1)) in
          vals := v :: !vals
        done;
        (* keep them all live by a final fold *)
        let sum =
          List.fold_left (fun acc v -> Builder.add b Types.I64 acc v) (Value.ci64 0) !vals
        in
        Builder.ret b Types.I64 sum)
  in
  let small = CG.Objfile.func_size x86 (Testutil.main_func (mk 4)) in
  let big = CG.Objfile.func_size x86 (Testutil.main_func (mk 40)) in
  (* 10x the values but more than 10x the bytes due to spills *)
  Alcotest.(check bool) "spills add bytes" true (big > small * 10)

(* --- MCA ----------------------------------------------------------------- *)

let test_mca_positive () =
  List.iter
    (fun (name, m) ->
      let e = Mca.estimate x86 m in
      Alcotest.(check bool) (name ^ " cycles positive") true (e.Mca.cycles > 0.0);
      Alcotest.(check bool) (name ^ " throughput positive") true (e.Mca.throughput > 0.0))
    (W.Suites.all_programs ())

let test_mca_throughput_inverse_cycles () =
  let m = Testutil.sum_squares_module () in
  let e = Mca.estimate x86 m in
  Alcotest.(check (float 1e-6)) "thr = scale/cycles"
    (Mca.throughput_scale /. e.Mca.cycles) e.Mca.throughput

let test_mca_loop_weighting () =
  (* the same instructions inside a loop must cost more statically *)
  let flat =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 1) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.mul b Types.I64 x x in
        Builder.ret b Types.I64 y)
  in
  let loopy =
    let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
    let c = W.Dsl.ctx b in
    Builder.block b "entry";
    let acc = W.Dsl.var c Types.I64 (Value.ci64 1) in
    W.Dsl.for_up c ~from:0 ~bound:(Value.ci64 4) (fun _ ->
        let v = W.Dsl.get c Types.I64 acc in
        W.Dsl.set c Types.I64 acc (Builder.mul c.W.Dsl.b Types.I64 v v));
    Builder.ret b Types.I64 (W.Dsl.get c Types.I64 acc);
    Modul.mk ~name:"t" [ Builder.finish b ]
  in
  let ef = Mca.estimate x86 flat and el = Mca.estimate x86 loopy in
  Alcotest.(check bool) "loop weighted heavier" true (el.Mca.cycles > 3.0 *. ef.Mca.cycles)

let test_mca_division_bottleneck () =
  let mk op =
    Testutil.wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.I64 1 in
        Builder.store b Types.I64 (Value.ci64 100) p;
        let x = Builder.load b Types.I64 p in
        let y = Builder.binop b op Types.I64 x (Value.ci64 7) in
        let z = Builder.binop b op Types.I64 y (Value.ci64 3) in
        Builder.ret b Types.I64 z)
  in
  let div = Mca.estimate x86 (mk Instr.Sdiv) in
  let add = Mca.estimate x86 (mk Instr.Add) in
  Alcotest.(check bool) "divisions dominate" true (div.Mca.cycles > add.Mca.cycles)

let test_mca_oz_vs_unopt () =
  (* Oz-optimized modules should never be estimated slower than 3x the
     unoptimized static cost; typically they are faster *)
  let faster = ref 0 and total = ref 0 in
  List.iter
    (fun (_, m) ->
      incr total;
      let m' = P.Pass_manager.run_level P.Pipelines.Oz m in
      if Mca.throughput x86 m' > Mca.throughput x86 m then incr faster)
    (W.Suites.all_programs ());
  Alcotest.(check bool)
    (Printf.sprintf "Oz statically faster on most (%d/%d)" !faster !total)
    true
    (!faster * 10 >= !total * 7)

let suite =
  [ Alcotest.test_case "size positive on suites" `Quick test_size_positive_on_suites;
    Alcotest.test_case "Oz binary smaller" `Quick test_more_insns_more_bytes;
    Alcotest.test_case "O3 bigger than Oz" `Quick test_o3_bigger_than_oz;
    Alcotest.test_case "aarch64 encodings" `Quick test_aarch64_fixed_width_dominates_encoding;
    Alcotest.test_case "wide immediates" `Quick test_wide_immediate_costs_more;
    Alcotest.test_case "bss vs data" `Quick test_bss_free_data_costly;
    Alcotest.test_case "spill model" `Quick test_spill_model_kicks_in;
    Alcotest.test_case "mca positive" `Quick test_mca_positive;
    Alcotest.test_case "mca inverse cycles" `Quick test_mca_throughput_inverse_cycles;
    Alcotest.test_case "mca loop weighting" `Quick test_mca_loop_weighting;
    Alcotest.test_case "mca division bottleneck" `Quick test_mca_division_bottleneck;
    Alcotest.test_case "mca Oz vs unopt" `Quick test_mca_oz_vs_unopt ]
