(* Switch-terminator handling across passes, plus assorted edge cases
   that the main suites don't reach. *)

open Posetrl_ir
open Testutil

let switch_module ?(key = 2) () =
  wrap_main (fun b ->
      Builder.block b "entry";
      let p = Builder.alloca b Types.I64 1 in
      Builder.store b Types.I64 (Value.ci64 key) p;
      let x = Builder.load b Types.I64 p in
      Builder.switch b Types.I64 x [ (0L, "zero"); (1L, "one"); (2L, "two") ] "def";
      Builder.block b "zero";
      Builder.ret b Types.I64 (Value.ci64 100);
      Builder.block b "one";
      Builder.ret b Types.I64 (Value.ci64 200);
      Builder.block b "two";
      Builder.ret b Types.I64 (Value.ci64 300);
      Builder.block b "def";
      Builder.ret b Types.I64 (Value.ci64 999))

let test_switch_through_oz () =
  let m = switch_module () in
  let m' = Posetrl_passes.Pass_manager.run_level ~verify:true Posetrl_passes.Pipelines.Oz m in
  check_same_behaviour "switch through Oz" m m';
  Alcotest.(check string) "300" "300" (ret_of m')

let test_sccp_folds_switch () =
  let m = switch_module ~key:1 () in
  (* after mem2reg the switch key is the constant 1 *)
  let m' = m |> run_pass "mem2reg" |> run_pass "sccp" in
  Alcotest.(check string) "took case 1" "200" (ret_of m');
  Alcotest.(check bool) "dead cases removed" true (count_blocks m' <= 2)

let test_switch_default_taken () =
  let m = switch_module ~key:42 () in
  Alcotest.(check string) "default" "999" (ret_of m);
  let m' = Posetrl_passes.Pass_manager.run_level ~verify:true Posetrl_passes.Pipelines.O2 m in
  Alcotest.(check string) "default after O2" "999" (ret_of m')

let test_switch_roundtrip () =
  let m = switch_module () in
  let text = Printer.module_to_string m in
  let m' = Parser.parse_module text in
  Alcotest.(check string) "roundtrip" text (Printer.module_to_string m')

let test_switch_in_loop () =
  (* a state machine driven by a switch inside a loop *)
  let open Posetrl_workloads.Dsl in
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = ctx b in
  Builder.block b "entry";
  let acc = var c Types.I64 (i64 0) in
  let state = var c Types.I64 (i64 0) in
  let i = var c Types.I64 (i64 0) in
  Builder.br b "head";
  Builder.block b "head";
  let iv = get c Types.I64 i in
  let cont = Builder.icmp b Instr.Slt Types.I64 iv (i64 50) in
  Builder.cbr b cont "dispatch" "exit";
  Builder.block b "dispatch";
  let sv = get c Types.I64 state in
  Builder.switch b Types.I64 sv [ (0L, "s0"); (1L, "s1") ] "s2";
  Builder.block b "s0";
  bump c acc (i64 1);
  set c Types.I64 state (i64 1);
  Builder.br b "cont";
  Builder.block b "s1";
  bump c acc (i64 10);
  set c Types.I64 state (i64 2);
  Builder.br b "cont";
  Builder.block b "s2";
  bump c acc (i64 100);
  set c Types.I64 state (i64 0);
  Builder.br b "cont";
  Builder.block b "cont";
  set c Types.I64 i (Builder.add b Types.I64 (get c Types.I64 i) (i64 1));
  Builder.br b "head";
  Builder.block b "exit";
  Builder.ret b Types.I64 (get c Types.I64 acc);
  let m = Modul.mk ~name:"sm" [ Builder.finish b ] in
  Verifier.check m;
  let expect = ret_of m in
  List.iter
    (fun level ->
      let m' = Posetrl_passes.Pass_manager.run_level ~verify:true level m in
      Alcotest.(check string)
        (Posetrl_passes.Pipelines.level_to_string level ^ " preserves switch loop")
        expect (ret_of m'))
    [ Posetrl_passes.Pipelines.O1; Posetrl_passes.Pipelines.O2;
      Posetrl_passes.Pipelines.O3; Posetrl_passes.Pipelines.Os;
      Posetrl_passes.Pipelines.Oz ]

(* --- printer/parser edges ------------------------------------------------- *)

let test_parser_negative_and_float_literals () =
  let text =
    "module lits\n\
     func @main(): i64 {\n\
     entry:\n\
     \  %0 = add i64 -42, 100\n\
     \  %1 = fadd f64 1.5, -2.25\n\
     \  %2 = fptosi f64 %1 to i64\n\
     \  %3 = add i64 %0, %2\n\
     \  ret i64 %3\n\
     }\n"
  in
  let m = Parser.parse_module text in
  Alcotest.(check string) "58 + trunc(-0.75) = 58" "58" (ret_of m)

let test_parser_vector_type () =
  let text =
    "module v\n\
     func @main(): i64 {\n\
     entry:\n\
     \  %0 = alloca i64 x 4\n\
     \  store i64 9, %0\n\
     \  %1 = load <4 x i64>, %0\n\
     \  %2 = add <4 x i64> %1, %1\n\
     \  store <4 x i64> %2, %0\n\
     \  %3 = load i64, %0\n\
     \  ret i64 %3\n\
     }\n"
  in
  let m = Parser.parse_module text in
  Alcotest.(check string) "vector doubles" "18" (ret_of m)

let test_parser_comments () =
  let text =
    "module c ; a comment\n\
     ; full line comment\n\
     func @main(): i64 {\n\
     entry: ; trailing\n\
     \  ret i64 7\n\
     }\n"
  in
  Alcotest.(check string) "comments skipped" "7" (ret_of (Parser.parse_module text))

let test_printer_special_floats () =
  let m =
    wrap_main (fun b ->
        Builder.block b "entry";
        let p = Builder.alloca b Types.F64 1 in
        Builder.store b Types.F64 (Value.cfloat Float.infinity) p;
        let x = Builder.load b Types.F64 p in
        let c = Builder.fcmp b Instr.Sgt x (Value.cfloat 1e300) in
        let z = Builder.zext b ~from_ty:Types.I1 ~to_ty:Types.I64 c in
        Builder.ret b Types.I64 z)
  in
  let text = Printer.module_to_string m in
  let m' = Parser.parse_module text in
  Alcotest.(check string) "inf survives" (ret_of m) (ret_of m')

(* --- attribute plumbing ----------------------------------------------------- *)

let test_attrs_roundtrip () =
  let m = sum_squares_module () in
  let m =
    Modul.map_funcs (fun f -> Func.add_attr Attrs.inline_hint (Func.add_attr Attrs.cold f)) m
  in
  let text = Printer.module_to_string m in
  let m' = Parser.parse_module text in
  let f = Modul.find_func_exn m' "square" in
  Alcotest.(check bool) "attrs parsed" true
    (Func.has_attr Attrs.inline_hint f && Func.has_attr Attrs.cold f)

(* --- environment/odg cross checks ------------------------------------------- *)

let test_manual_actions_compose_to_oz () =
  (* applying manual actions 1..15 in order = running the Oz pipeline
     (modulo the duplicated barrier, which is a no-op) *)
  let m = Posetrl_workloads.Mibench.crc32 () in
  let via_actions =
    Array.fold_left
      (fun m action ->
        Posetrl_passes.Pass_manager.run Posetrl_passes.Config.oz action m)
      m
      Posetrl_odg.Action_space.manual.Posetrl_odg.Action_space.actions
  in
  let via_oz = Posetrl_passes.Pass_manager.run_level Posetrl_passes.Pipelines.Oz m in
  Alcotest.(check string) "same text" (Printer.module_to_string via_oz)
    (Printer.module_to_string via_actions)

let suite =
  [ Alcotest.test_case "switch through Oz" `Quick test_switch_through_oz;
    Alcotest.test_case "sccp folds switch" `Quick test_sccp_folds_switch;
    Alcotest.test_case "switch default" `Quick test_switch_default_taken;
    Alcotest.test_case "switch roundtrip" `Quick test_switch_roundtrip;
    Alcotest.test_case "switch state machine" `Quick test_switch_in_loop;
    Alcotest.test_case "parser literals" `Quick test_parser_negative_and_float_literals;
    Alcotest.test_case "parser vector type" `Quick test_parser_vector_type;
    Alcotest.test_case "parser comments" `Quick test_parser_comments;
    Alcotest.test_case "printer special floats" `Quick test_printer_special_floats;
    Alcotest.test_case "attrs roundtrip" `Quick test_attrs_roundtrip;
    Alcotest.test_case "manual actions = Oz" `Quick test_manual_actions_compose_to_oz ]
