(* Whole-pipeline and property-based differential tests: the heavy
   correctness artillery. Every pass and pipeline must preserve the
   observable behaviour (return value + output) of every workload. *)

open Posetrl_ir
module P = Posetrl_passes
module W = Posetrl_workloads

let observe = Posetrl_interp.Interp.observe

let all_programs = lazy (W.Suites.all_programs ())

(* each registered pass individually preserves behaviour on all suites *)
let test_each_pass_preserves_suites () =
  List.iter
    (fun pass_name ->
      let p = P.Registry.find_exn pass_name in
      List.iter
        (fun (prog_name, m) ->
          let m' = P.Pass.run ~verify:true p P.Config.oz m in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" pass_name prog_name)
            true
            (observe m = observe m'))
        (Lazy.force all_programs))
    (P.Registry.names ())

(* standard pipelines preserve behaviour on all suites *)
let test_pipelines_preserve_suites () =
  List.iter
    (fun level ->
      List.iter
        (fun (prog_name, m) ->
          let m' = P.Pass_manager.run_level ~verify:true level m in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" (P.Pipelines.level_to_string level) prog_name)
            true
            (observe m = observe m'))
        (Lazy.force all_programs))
    [ P.Pipelines.O1; P.Pipelines.O2; P.Pipelines.O3; P.Pipelines.Os; P.Pipelines.Oz ]

(* pipelines never grow the suites' instruction counts catastrophically and
   Oz actually shrinks most programs *)
let test_oz_shrinks_most_programs () =
  let shrunk = ref 0 and total = ref 0 in
  List.iter
    (fun (_, m) ->
      incr total;
      let m' = P.Pass_manager.run_level P.Pipelines.Oz m in
      if Modul.insn_count m' < Modul.insn_count m then incr shrunk)
    (Lazy.force all_programs);
  Alcotest.(check bool)
    (Printf.sprintf "Oz shrinks most programs (%d/%d)" !shrunk !total)
    true
    (!shrunk * 10 >= !total * 8)

(* Oz sequence reconstruction matches the paper's counts *)
let test_oz_sequence_counts () =
  Alcotest.(check int) "90 pass instances" 90 (List.length P.Pipelines.oz_sequence);
  Alcotest.(check int) "54 unique passes" 54 (List.length P.Pipelines.unique_passes);
  Alcotest.(check int) "15 manual groups" 15 (List.length P.Pipelines.manual_groups)

let test_all_oz_passes_registered () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Option.is_some (P.Registry.find name)))
    P.Pipelines.unique_passes

let test_registry_alias () =
  Alcotest.(check bool) "paper spelling resolves" true
    (Option.is_some (P.Registry.find "alignmentfromassumptions"))

(* idempotence-ish: running Oz twice keeps behaviour and never grows much *)
let test_oz_twice_stable () =
  List.iter
    (fun (prog_name, m) ->
      let m1 = P.Pass_manager.run_level P.Pipelines.Oz m in
      let m2 = P.Pass_manager.run_level ~verify:true P.Pipelines.Oz m1 in
      Alcotest.(check bool) (prog_name ^ " behaviour") true (observe m1 = observe m2))
    (Lazy.force all_programs)

(* property: on random generated programs, a random pass preserves
   behaviour and verifier validity *)
let prop_random_pass_preserves =
  QCheck2.Test.make ~count:120 ~name:"random pass preserves random program"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 53))
    (fun (seed, pass_idx) ->
      let m = W.Genprog.generate ~seed in
      let pass_name = List.nth (P.Registry.names ()) pass_idx in
      let p = P.Registry.find_exn pass_name in
      let m' = P.Pass.run ~verify:true p P.Config.oz m in
      observe m = observe m')

let prop_oz_preserves_random =
  QCheck2.Test.make ~count:25 ~name:"Oz pipeline preserves random program"
    QCheck2.Gen.(int_range 200_000 220_000)
    (fun seed ->
      let m = W.Genprog.generate ~seed in
      let m' = P.Pass_manager.run_level ~verify:true P.Pipelines.Oz m in
      observe m = observe m')

let prop_o3_preserves_random =
  QCheck2.Test.make ~count:25 ~name:"O3 pipeline preserves random program"
    QCheck2.Gen.(int_range 300_000 320_000)
    (fun seed ->
      let m = W.Genprog.generate ~seed in
      let m' = P.Pass_manager.run_level ~verify:true P.Pipelines.O3 m in
      observe m = observe m')

(* property: parser round trip on random programs *)
let prop_roundtrip_random =
  QCheck2.Test.make ~count:60 ~name:"print/parse round trip on random program"
    QCheck2.Gen.(int_range 400_000 420_000)
    (fun seed ->
      let m = W.Genprog.generate ~seed in
      let text = Printer.module_to_string m in
      let m' = Parser.parse_module text in
      String.equal text (Printer.module_to_string m'))

(* property: the interpreter is deterministic *)
let prop_interp_deterministic =
  QCheck2.Test.make ~count:40 ~name:"interpreter deterministic"
    QCheck2.Gen.(int_range 800_000 800_200)
    (fun seed ->
      let m = W.Genprog.generate ~seed in
      observe m = observe m)

(* property: Oz twice on a random program preserves behaviour *)
let prop_oz_twice_random =
  QCheck2.Test.make ~count:15 ~name:"Oz twice preserves random program"
    QCheck2.Gen.(int_range 810_000 810_100)
    (fun seed ->
      let m = W.Genprog.generate ~seed in
      let m1 = P.Pass_manager.run_level P.Pipelines.Oz m in
      let m2 = P.Pass_manager.run_level ~verify:true P.Pipelines.Oz m1 in
      observe m1 = observe m2)

(* failure injection: a deliberately broken pass is caught by ~verify *)
let test_verify_catches_broken_pass () =
  let broken =
    P.Pass.mk "deliberately-broken" ~description:"drops every terminator target"
      (fun _cfg m ->
        Modul.map_defined
          (fun f ->
            Func.map_blocks
              (fun b ->
                { b with
                  Block.term =
                    Instr.map_term_labels (fun _ -> "no-such-block") b.Block.term })
              f)
          m)
  in
  let m = Testutil.sum_squares_module () in
  Alcotest.(check bool) "verifier fires" true
    (try ignore (P.Pass.run ~verify:true broken P.Config.oz m); false
     with Verifier.Invalid _ -> true)

(* the size model grows when code is added *)
let prop_size_monotone_in_functions =
  QCheck2.Test.make ~count:20 ~name:"object size grows with added functions"
    QCheck2.Gen.(int_range 820_000 820_100)
    (fun seed ->
      let m1 = W.Genprog.generate ~seed in
      let extra =
        let b = Builder.create ~name:"extra_fn" ~params:[ Types.I64 ] ~ret:Types.I64 () in
        Builder.block b "entry";
        let x = Builder.param b 0 in
        let y = Builder.mul b Types.I64 x (Value.ci64 3) in
        Builder.ret b Types.I64 y;
        Builder.finish b
      in
      let m2 = { m1 with Modul.funcs = extra :: m1.Modul.funcs } in
      let t = Posetrl_codegen.Target.x86_64 in
      Posetrl_codegen.Objfile.size t m2 > Posetrl_codegen.Objfile.size t m1)

let suite =
  [ Alcotest.test_case "each pass preserves suites" `Slow test_each_pass_preserves_suites;
    Alcotest.test_case "pipelines preserve suites" `Slow test_pipelines_preserve_suites;
    Alcotest.test_case "Oz shrinks most programs" `Quick test_oz_shrinks_most_programs;
    Alcotest.test_case "Oz sequence counts" `Quick test_oz_sequence_counts;
    Alcotest.test_case "all Oz passes registered" `Quick test_all_oz_passes_registered;
    Alcotest.test_case "registry alias" `Quick test_registry_alias;
    Alcotest.test_case "Oz twice stable" `Slow test_oz_twice_stable;
    QCheck_alcotest.to_alcotest prop_random_pass_preserves;
    QCheck_alcotest.to_alcotest prop_oz_preserves_random;
    QCheck_alcotest.to_alcotest prop_o3_preserves_random;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_interp_deterministic;
    QCheck_alcotest.to_alcotest prop_oz_twice_random;
    Alcotest.test_case "verify catches broken pass" `Quick test_verify_catches_broken_pass;
    QCheck_alcotest.to_alcotest prop_size_monotone_in_functions ]
