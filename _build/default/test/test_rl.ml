(* Tests for the RL substrate: replay buffer, schedule, and the DDQN
   learning simple known-optimal environments. *)

open Posetrl_support
module Rl = Posetrl_rl

let tr s a r ns =
  { Rl.Replay.state = s; action = a; reward = r; next_state = ns }

let test_replay_ring () =
  let buf = Rl.Replay.create 3 in
  Alcotest.(check int) "empty" 0 (Rl.Replay.size buf);
  for k = 1 to 5 do
    Rl.Replay.push buf (tr [| float_of_int k |] 0 0.0 None)
  done;
  Alcotest.(check int) "capped at capacity" 3 (Rl.Replay.size buf)

let test_replay_sample () =
  let buf = Rl.Replay.create 8 in
  for k = 1 to 8 do
    Rl.Replay.push buf (tr [| float_of_int k |] k 0.0 None)
  done;
  let rng = Rng.create 1 in
  let batch = Rl.Replay.sample rng buf 32 in
  Alcotest.(check int) "batch size" 32 (Array.length batch);
  Array.iter
    (fun t ->
      Alcotest.(check bool) "valid action" true (t.Rl.Replay.action >= 1 && t.Rl.Replay.action <= 8))
    batch

let test_schedule_anneal () =
  let s = Rl.Schedule.create ~start:1.0 ~stop:0.01 ~decay_steps:100 () in
  Alcotest.(check (float 1e-9)) "start" 1.0 (Rl.Schedule.value s 0);
  Alcotest.(check (float 1e-9)) "end" 0.01 (Rl.Schedule.value s 100);
  Alcotest.(check (float 1e-9)) "beyond" 0.01 (Rl.Schedule.value s 10_000);
  let mid = Rl.Schedule.value s 50 in
  Alcotest.(check bool) "monotone" true (mid < 1.0 && mid > 0.01)

let test_schedule_paper_default () =
  Alcotest.(check (float 1e-9)) "paper start" 1.0
    (Rl.Schedule.value Rl.Schedule.paper_default 0);
  Alcotest.(check (float 1e-9)) "paper end" 0.01
    (Rl.Schedule.value Rl.Schedule.paper_default 20_000)

(* contextual bandit: state identifies which arm pays; the agent must
   learn state-dependent greedy actions *)
let test_dqn_learns_contextual_bandit () =
  let rng = Rng.create 11 in
  let agent = Rl.Dqn.create ~gamma:0.0 ~lr:0.01 rng ~state_dim:2 ~hidden:[ 16 ] ~n_actions:2 in
  let buf = Rl.Replay.create 512 in
  let states = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  (* state 0 pays on action 1; state 1 pays on action 0 *)
  for step = 1 to 2500 do
    let s_idx = Rng.int rng 2 in
    let s = states.(s_idx) in
    let a = Rl.Dqn.select_action agent rng ~epsilon:0.3 s in
    let r = if (s_idx = 0 && a = 1) || (s_idx = 1 && a = 0) then 1.0 else 0.0 in
    Rl.Replay.push buf (tr s a r None);
    if step > 64 && step mod 2 = 0 then
      ignore (Rl.Dqn.train_batch agent (Rl.Replay.sample rng buf 16))
  done;
  Alcotest.(check int) "state0 -> action1" 1 (Rl.Dqn.greedy_action agent states.(0));
  Alcotest.(check int) "state1 -> action0" 0 (Rl.Dqn.greedy_action agent states.(1))

(* 3-step chain MDP where the delayed reward requires bootstrapping:
   states s0 -> s1 -> s2(terminal, reward 1) only via action 0 *)
let test_dqn_bootstraps_chain () =
  let rng = Rng.create 21 in
  let agent =
    Rl.Dqn.create ~gamma:0.9 ~lr:0.01 rng ~state_dim:3 ~hidden:[ 16 ] ~n_actions:2
  in
  let buf = Rl.Replay.create 1024 in
  let state k = Array.init 3 (fun j -> if j = k then 1.0 else 0.0) in
  for step = 1 to 4000 do
    (* generate an episode with epsilon-greedy *)
    let rec play k =
      if k < 2 then begin
        let s = state k in
        let a = Rl.Dqn.select_action agent rng ~epsilon:0.4 s in
        if a = 0 then begin
          let terminal = k + 1 = 2 in
          let r = if terminal then 1.0 else 0.0 in
          Rl.Replay.push buf
            (tr s a r (if terminal then None else Some (state (k + 1))));
          play (k + 1)
        end
        else Rl.Replay.push buf (tr s a 0.0 None) (* falls off: episode over *)
      end
    in
    play 0;
    if step > 64 && step mod 2 = 0 then
      ignore (Rl.Dqn.train_batch agent (Rl.Replay.sample rng buf 16));
    if step mod 100 = 0 then Rl.Dqn.sync_target agent
  done;
  Alcotest.(check int) "s0 continues" 0 (Rl.Dqn.greedy_action agent (state 0));
  Alcotest.(check int) "s1 continues" 0 (Rl.Dqn.greedy_action agent (state 1));
  (* the value of s0 must reflect the discounted future reward *)
  let q = (Rl.Dqn.q_values agent (state 0)).(0) in
  Alcotest.(check bool) (Printf.sprintf "q(s0,continue)=%.3f near 0.9" q) true
    (q > 0.5 && q < 1.3)

let test_double_dqn_uses_online_selection () =
  (* structural check: double and vanilla targets differ when online and
     target networks disagree on the best next action *)
  let rng = Rng.create 33 in
  let agent = Rl.Dqn.create ~gamma:1.0 ~lr:0.01 ~double:true rng ~state_dim:2 ~hidden:[ 4 ] ~n_actions:2 in
  (* drift the online net away from the target without syncing *)
  let buf = Rl.Replay.create 64 in
  let s = [| 1.0; -1.0 |] in
  for _ = 1 to 32 do
    Rl.Replay.push buf (tr s 0 1.0 (Some s))
  done;
  for _ = 1 to 50 do
    ignore (Rl.Dqn.train_batch agent (Rl.Replay.sample rng buf 8))
  done;
  (* both flavours produce finite targets; smoke check via training loss *)
  let loss = Rl.Dqn.train_batch agent (Rl.Replay.sample rng buf 8) in
  Alcotest.(check bool) "finite loss" true (Float.is_finite loss)

let test_save_load_weights () =
  let rng = Rng.create 9 in
  let a = Rl.Dqn.create rng ~state_dim:4 ~hidden:[ 8 ] ~n_actions:3 in
  let path = Filename.temp_file "posetrl" ".weights" in
  Rl.Dqn.save_weights a path;
  let rng2 = Rng.create 10 in
  let b = Rl.Dqn.create rng2 ~state_dim:4 ~hidden:[ 8 ] ~n_actions:3 in
  Rl.Dqn.load_weights b path;
  Sys.remove path;
  let x = [| 0.1; 0.2; 0.3; 0.4 |] in
  let qa = Rl.Dqn.q_values a x and qb = Rl.Dqn.q_values b x in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) (Printf.sprintf "q[%d]" i) v qb.(i))
    qa

let suite =
  [ Alcotest.test_case "replay ring" `Quick test_replay_ring;
    Alcotest.test_case "replay sample" `Quick test_replay_sample;
    Alcotest.test_case "schedule anneal" `Quick test_schedule_anneal;
    Alcotest.test_case "schedule paper default" `Quick test_schedule_paper_default;
    Alcotest.test_case "dqn contextual bandit" `Quick test_dqn_learns_contextual_bandit;
    Alcotest.test_case "dqn bootstraps chain" `Quick test_dqn_bootstraps_chain;
    Alcotest.test_case "double dqn smoke" `Quick test_double_dqn_uses_online_selection;
    Alcotest.test_case "save/load weights" `Quick test_save_load_weights ]
