(* Tests for the workload suites and the random-program generator. *)

open Posetrl_ir
module W = Posetrl_workloads
module I = Posetrl_interp.Interp

let test_suite_sizes () =
  Alcotest.(check int) "mibench programs" 11 (List.length W.Suites.mibench.W.Suites.programs);
  Alcotest.(check int) "spec2017 programs" 10 (List.length W.Suites.spec2017.W.Suites.programs);
  Alcotest.(check int) "spec2006 programs" 10 (List.length W.Suites.spec2006.W.Suites.programs)

let test_all_programs_run () =
  List.iter
    (fun (name, m) ->
      match I.observe m with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ " trapped: " ^ e))
    (W.Suites.all_programs ())

let test_programs_deterministic () =
  List.iter
    (fun (name, mk) ->
      let a = I.observe (mk ()) and b = I.observe (mk ()) in
      Alcotest.(check bool) (name ^ " deterministic") true (a = b))
    W.Suites.mibench.W.Suites.programs

let test_programs_nontrivial () =
  (* every validation program must be big enough to exercise the passes *)
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ " nontrivial") true (Modul.insn_count m >= 30))
    (W.Suites.all_programs ())

let test_programs_have_loops () =
  List.iter
    (fun (name, m) ->
      let has_loop =
        List.exists
          (fun f ->
            (not (Func.is_declaration f))
            && Loops.loop_count (Loops.compute f) > 0)
          m.Modul.funcs
      in
      Alcotest.(check bool) (name ^ " has loops") true has_loop)
    (W.Suites.all_programs ())

let test_corpus_size_and_determinism () =
  let c1 = W.Genprog.corpus ~n:10 () in
  let c2 = W.Genprog.corpus ~n:10 () in
  Alcotest.(check int) "corpus size" 10 (Array.length c1);
  Array.iteri
    (fun k m ->
      Alcotest.(check string) (Printf.sprintf "corpus[%d] deterministic" k)
        (Printer.module_to_string m)
        (Printer.module_to_string c2.(k)))
    c1

let test_corpus_default_is_130 () =
  Alcotest.(check int) "paper corpus size" 130 (Array.length (W.Genprog.corpus ()))

let test_corpus_diverse () =
  let c = W.Genprog.corpus ~n:20 () in
  let sizes = Array.map Modul.insn_count c in
  let distinct = Array.to_list sizes |> List.sort_uniq compare |> List.length in
  Alcotest.(check bool) "diverse sizes" true (distinct >= 10)

let prop_generated_programs_valid =
  QCheck2.Test.make ~count:100 ~name:"generated programs verify and terminate"
    QCheck2.Gen.(int_range 600_000 650_000)
    (fun seed ->
      let m = W.Genprog.generate ~seed in
      Verifier.is_valid m
      && (match I.observe ~fuel:50_000_000 m with Ok _ -> true | Error _ -> false))

let prop_template_programs_valid =
  QCheck2.Test.make ~count:60 ~name:"template kernels verify, run, survive Oz"
    QCheck2.Gen.(int_range 700_000 700_500)
    (fun seed ->
      let m = W.Templates.generate ~seed in
      Verifier.is_valid m
      &&
      match I.observe ~fuel:50_000_000 m with
      | Ok r ->
        let mz =
          Posetrl_passes.Pass_manager.run_level Posetrl_passes.Pipelines.Oz m
        in
        I.observe ~fuel:50_000_000 mz = Ok r
      | Error _ -> false)

let test_corpus_is_mixed () =
  let c = W.Suites.training_corpus ~n:10 () in
  let tmpl =
    Array.to_list c
    |> List.filter (fun m ->
           String.length m.Modul.name >= 5 && String.sub m.Modul.name 0 5 = "tmpl.")
  in
  Alcotest.(check int) "half templates" 5 (List.length tmpl)

let test_dsl_for_up () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = W.Dsl.ctx b in
  Builder.block b "entry";
  let acc = W.Dsl.var c Types.I64 (Value.ci64 0) in
  W.Dsl.for_up c ~from:3 ~bound:(Value.ci64 7) (fun ip ->
      W.Dsl.bump c acc (W.Dsl.get c Types.I64 ip));
  Builder.ret b Types.I64 (W.Dsl.get c Types.I64 acc);
  let m = Modul.mk ~name:"t" [ Builder.finish b ] in
  Alcotest.(check string) "3+4+5+6" "18" (Testutil.ret_of m)

let test_dsl_if () =
  let b = Builder.create ~linkage:Func.External ~name:"main" ~params:[] ~ret:Types.I64 () in
  let c = W.Dsl.ctx b in
  Builder.block b "entry";
  let r = W.Dsl.var c Types.I64 (Value.ci64 0) in
  let x = W.Dsl.var c Types.I64 (Value.ci64 5) in
  let xv = W.Dsl.get c Types.I64 x in
  let cond = Builder.icmp b Instr.Sgt Types.I64 xv (Value.ci64 3) in
  W.Dsl.if_ c cond
    (fun () -> W.Dsl.set c Types.I64 r (Value.ci64 1))
    (fun () -> W.Dsl.set c Types.I64 r (Value.ci64 2));
  Builder.ret b Types.I64 (W.Dsl.get c Types.I64 r);
  let m = Modul.mk ~name:"t" [ Builder.finish b ] in
  Alcotest.(check string) "then" "1" (Testutil.ret_of m)

let test_find_program () =
  Alcotest.(check bool) "bitcount found" true
    (Option.is_some (W.Suites.find_program "bitcount"));
  Alcotest.(check bool) "541.leela found" true
    (Option.is_some (W.Suites.find_program "541.leela"));
  Alcotest.(check bool) "missing" true
    (Option.is_none (W.Suites.find_program "no.such.benchmark"))

let suite =
  [ Alcotest.test_case "suite sizes" `Quick test_suite_sizes;
    Alcotest.test_case "all programs run" `Quick test_all_programs_run;
    Alcotest.test_case "programs deterministic" `Quick test_programs_deterministic;
    Alcotest.test_case "programs nontrivial" `Quick test_programs_nontrivial;
    Alcotest.test_case "programs have loops" `Quick test_programs_have_loops;
    Alcotest.test_case "corpus determinism" `Quick test_corpus_size_and_determinism;
    Alcotest.test_case "corpus default 130" `Quick test_corpus_default_is_130;
    Alcotest.test_case "corpus diverse" `Quick test_corpus_diverse;
    QCheck_alcotest.to_alcotest prop_generated_programs_valid;
    QCheck_alcotest.to_alcotest prop_template_programs_valid;
    Alcotest.test_case "corpus is mixed" `Quick test_corpus_is_mixed;
    Alcotest.test_case "dsl for_up" `Quick test_dsl_for_up;
    Alcotest.test_case "dsl if" `Quick test_dsl_if;
    Alcotest.test_case "find program" `Quick test_find_program ]
