(* posetrl — command-line interface to the POSET-RL reproduction.

   Subcommands:
     opt    apply a standard pipeline or an explicit pass list to a
            textual MiniIR module and report size/throughput changes
     run    interpret a textual MiniIR module
     train  train a DQN phase-ordering model and save its weights
     eval   evaluate a saved model against the validation suites
     report aggregate a --trace JSONL file into per-span/per-pass tables
     odg    inspect the Oz Dependence Graph (stats, dot, derived walks)
     list   list registered passes / benchmark programs

   opt/train/eval take --trace FILE.jsonl (write a span trace) and
   --metrics (print the metrics registry on exit). *)

open Cmdliner
open Posetrl_ir
module P = Posetrl_passes
module W = Posetrl_workloads
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module Obs = Posetrl_obs

let read_module path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Parser.parse_module s

let load_program (spec : string) : Modul.t =
  (* a benchmark name from the suites, or a path to a textual module *)
  match W.Suites.find_program spec with
  | Some mk -> mk ()
  | None ->
    if Sys.file_exists spec then read_module spec
    else failwith (Printf.sprintf "unknown program %s (not a benchmark, not a file)" spec)

let target_of_string = function
  | "x86" | "x86-64" | "x86_64" -> CG.Target.x86_64
  | "arm" | "aarch64" -> CG.Target.aarch64
  | t -> failwith ("unknown target " ^ t)

let space_of_string = function
  | "odg" -> O.Action_space.odg
  | "manual" -> O.Action_space.manual
  | s -> failwith ("unknown action space " ^ s)

(* --- observability flags (shared by opt/train/eval) ----------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.jsonl"
         ~doc:"Write a JSONL span trace to \\$(docv) (analyse with `posetrl report`).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the metrics registry snapshot on exit.")

(* Run [f] with the observability surface requested on the command line:
   a JSONL sink while [f] runs, a metrics table after it. *)
let with_obs ~(trace : string option) ~(metrics : bool) (f : unit -> 'a) : 'a =
  let run () =
    match trace with
    | None -> f ()
    | Some path ->
      let r = Obs.Span.with_sink (Obs.Sink.jsonl path) f in
      Printf.printf "trace written to %s\n" path;
      r
  in
  let r = run () in
  if metrics then Obs.Console.print_metrics ~title:"metrics (posetrl.*)" ();
  r

let report_module (target : CG.Target.t) (label : string) (m : Modul.t) =
  Printf.printf "%-10s insns=%-5d size=%-6dB text=%-6dB mca-throughput=%.3f\n"
    label (Modul.insn_count m)
    (CG.Objfile.size target m)
    (CG.Objfile.text_size target m)
    (Posetrl_mca.Mca.throughput target m)

(* --- opt ------------------------------------------------------------------ *)

let opt_cmd =
  let program =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name (e.g. 541.leela, crc32) or path to a textual MiniIR file.")
  in
  let level =
    Arg.(value & opt string "Oz" & info [ "O"; "level" ] ~docv:"LEVEL"
           ~doc:"Pipeline level: O0 O1 O2 O3 Os Oz.")
  in
  let passes =
    Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"P1,P2,..."
           ~doc:"Explicit comma-separated pass list (overrides --level).")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~docv:"TARGET"
           ~doc:"x86 or aarch64.")
  in
  let emit =
    Arg.(value & flag & info [ "emit" ] ~doc:"Print the optimized module.")
  in
  let run program level passes target emit trace metrics =
    let m = load_program program in
    let tgt = target_of_string target in
    report_module tgt "input" m;
    let m' =
      with_obs ~trace ~metrics (fun () ->
          match passes with
          | Some ps ->
            let names = String.split_on_char ',' ps |> List.map String.trim in
            List.iter
              (fun n -> if Option.is_none (P.Registry.find n) then failwith ("unknown pass " ^ n))
              names;
            P.Pass_manager.run ~verify:true P.Config.oz names m
          | None ->
            (match P.Pipelines.level_of_string level with
             | Some l -> P.Pass_manager.run_level ~verify:true l m
             | None -> failwith ("unknown level " ^ level)))
    in
    report_module tgt "output" m';
    if emit then print_string (Printer.module_to_string m')
  in
  Cmd.v (Cmd.info "opt" ~doc:"Apply an optimization pipeline to a module")
    Term.(const run $ program $ level $ passes $ target $ emit $ trace_arg $ metrics_arg)

(* --- run ------------------------------------------------------------------- *)

let run_cmd =
  let program =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name or path to a textual MiniIR file.")
  in
  let level =
    Arg.(value & opt (some string) None & info [ "O"; "level" ]
           ~doc:"Optimize before running.")
  in
  let go program level =
    let m = load_program program in
    let m =
      match level with
      | Some l ->
        (match P.Pipelines.level_of_string l with
         | Some l -> P.Pass_manager.run_level l m
         | None -> failwith ("unknown level " ^ l))
      | None -> m
    in
    match Posetrl_interp.Interp.run m with
    | o ->
      if String.length o.Posetrl_interp.Interp.output > 0 then
        print_string o.Posetrl_interp.Interp.output;
      Printf.printf "return: %s\ncycles: %d\ndynamic instructions: %d\n"
        (match o.Posetrl_interp.Interp.ret with
         | Posetrl_interp.Interp.VInt v -> Int64.to_string v
         | Posetrl_interp.Interp.VFloat f -> string_of_float f
         | Posetrl_interp.Interp.VPtr p -> Printf.sprintf "ptr:%d" p
         | _ -> "void")
        o.Posetrl_interp.Interp.cycles o.Posetrl_interp.Interp.dyn_insns
    | exception Posetrl_interp.Interp.Trap e -> Printf.printf "trap: %s\n" e
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret a module") Term.(const go $ program $ level)

(* --- train ----------------------------------------------------------------- *)

let train_cmd =
  let out =
    Arg.(value & opt string "posetrl.weights" & info [ "o"; "output" ]
           ~docv:"FILE" ~doc:"Where to save the trained weights.")
  in
  let space =
    Arg.(value & opt string "odg" & info [ "space" ] ~doc:"Action space: odg or manual.")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~doc:"x86 or aarch64.")
  in
  let steps =
    Arg.(value & opt (some int) None & info [ "steps" ]
           ~doc:"Total training timesteps (default: 20100, the paper budget; \
                 with --fast, the fast schedule's 1800).")
  in
  let fast =
    Arg.(value & flag & info [ "fast" ]
           ~doc:"Use the scaled-down fast hyperparameters instead of the paper schedule.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let corpus_size =
    Arg.(value & opt int 130 & info [ "corpus" ] ~doc:"Training corpus size (paper: 130).")
  in
  let go out space target steps fast seed corpus_size trace metrics =
    let actions = space_of_string space in
    let tgt = target_of_string target in
    let corpus = W.Suites.training_corpus ~n:corpus_size () in
    let base = if fast then C.Trainer.fast else C.Trainer.paper in
    let hp =
      match steps with
      | None -> base
      | Some s ->
        { base with
          C.Trainer.total_steps = s;
          C.Trainer.epsilon =
            (if fast then
               Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.05
                 ~decay_steps:(max 1 (s * 2 / 3)) ()
             else
               Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.01
                 ~decay_steps:(max 1 (s - 100)) ()) }
    in
    Obs.Console.info "training %s/%s for %d steps on %d programs...\n%!" space
      target hp.C.Trainer.total_steps corpus_size;
    (* progress lines read back from the metrics registry (the trainer
       refreshes the posetrl.train.* series before each tick), so the
       metrics layer — not the progress record — is the source of truth *)
    let metric name = Option.value ~default:0.0 (Obs.Metrics.value name) in
    let on_progress (_ : C.Trainer.progress) =
      Obs.Console.info
        "  step %6d  episode %5d  eps %.3f  mean-reward %7.2f  mean-size-gain %6.2f%%  loss %.4f\n%!"
        (int_of_float (metric "posetrl.train.steps"))
        (int_of_float (metric "posetrl.train.episodes"))
        (metric "posetrl.train.epsilon")
        (metric "posetrl.train.mean_reward")
        (metric "posetrl.train.mean_size_gain")
        (metric "posetrl.train.loss")
    in
    let res =
      with_obs ~trace ~metrics (fun () ->
          C.Trainer.train ~hp ~on_progress ~seed ~corpus ~actions ~target:tgt ())
    in
    Posetrl_rl.Dqn.save_weights res.C.Trainer.agent out;
    Obs.Console.info "saved weights to %s (%d episodes)\n" out res.C.Trainer.episodes
  in
  Cmd.v (Cmd.info "train" ~doc:"Train a phase-ordering model")
    Term.(const go $ out $ space $ target $ steps $ fast $ seed $ corpus_size
          $ trace_arg $ metrics_arg)

(* --- eval ------------------------------------------------------------------- *)

let eval_cmd =
  let weights =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WEIGHTS"
           ~doc:"Weights file saved by `posetrl train`.")
  in
  let space =
    Arg.(value & opt string "odg" & info [ "space" ] ~doc:"Action space: odg or manual.")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~doc:"x86 or aarch64.")
  in
  let go weights space target trace metrics =
    let actions = space_of_string space in
    let tgt = target_of_string target in
    let rng = Posetrl_support.Rng.create 0 in
    let agent =
      Posetrl_rl.Dqn.create rng ~state_dim:C.Environment.state_dim
        ~hidden:[ 128; 64 ] ~n_actions:(O.Action_space.n_actions actions)
    in
    Posetrl_rl.Dqn.load_weights agent weights;
    with_obs ~trace ~metrics @@ fun () ->
    List.iter
      (fun suite ->
        let results =
          List.map
            (fun (name, mk) ->
              C.Evaluate.evaluate_program ~agent ~actions ~target:tgt ~name (mk ()))
            suite.W.Suites.programs
        in
        let s = C.Evaluate.summarize_suite ~suite:suite.W.Suites.suite_name results in
        Printf.printf "%-10s size reduction vs Oz: min %6.2f%%  avg %6.2f%%  max %6.2f%%"
          s.C.Evaluate.suite s.C.Evaluate.min_red s.C.Evaluate.avg_red s.C.Evaluate.max_red;
        (match s.C.Evaluate.avg_time_impr with
         | Some t -> Printf.printf "  time improvement: %6.2f%%\n" t
         | None -> print_newline ());
        List.iter
          (fun r ->
            Printf.printf "    %-16s oz=%6dB model=%6dB (%+.2f%%) seq=%s\n"
              r.C.Evaluate.prog_name r.C.Evaluate.size_oz r.C.Evaluate.size_model
              (C.Evaluate.size_reduction_pct r)
              (String.concat "->" (List.map string_of_int r.C.Evaluate.predicted)))
          results)
      W.Suites.validation_suites
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a trained model on the validation suites")
    Term.(const go $ weights $ space $ target $ trace_arg $ metrics_arg)

(* --- report ------------------------------------------------------------------ *)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.jsonl"
           ~doc:"Trace file written by --trace.")
  in
  let top_k =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the span-summary table.")
  in
  let go file top_k =
    let events = Obs.Report.read_jsonl file in
    print_string (Obs.Report.render ~top_k events)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Aggregate a span trace into per-span, per-pass and per-action tables")
    Term.(const go $ file $ top_k)

(* --- odg -------------------------------------------------------------------- *)

let odg_cmd =
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write a graphviz rendering to FILE.")
  in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"Critical-node degree threshold.") in
  let walks = Arg.(value & flag & info [ "walks" ] ~doc:"Print the derived sub-sequences.") in
  let go dot k walks =
    let g = Lazy.force O.Graph.default in
    Printf.printf "ODG: %d nodes, %d edges\n" (O.Graph.node_count g) (O.Graph.edge_count g);
    Printf.printf "critical nodes (k >= %d):\n" k;
    List.iter (fun (n, d) -> Printf.printf "  %-16s degree %d\n" n d)
      (O.Graph.critical_nodes ~k g);
    if walks then begin
      let ws = O.Walks.derive ~k g in
      Printf.printf "%d derived sub-sequences:\n" (List.length ws);
      List.iteri
        (fun i w -> Printf.printf "%2d | %s\n" (i + 1) (String.concat " " w))
        ws
    end;
    match dot with
    | Some path ->
      let oc = open_out path in
      output_string oc (O.Graph.to_dot ~k g);
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v (Cmd.info "odg" ~doc:"Inspect the Oz Dependence Graph")
    Term.(const go $ dot $ k $ walks)

(* --- list ------------------------------------------------------------------- *)

let list_cmd =
  let what =
    Arg.(value & pos 0 string "passes" & info [] ~docv:"WHAT"
           ~doc:"What to list: passes, benchmarks, oz.")
  in
  let go what =
    match what with
    | "passes" ->
      List.iter
        (fun (p : P.Pass.t) -> Printf.printf "%-28s %s\n" p.P.Pass.name p.P.Pass.description)
        P.Registry.all
    | "benchmarks" ->
      List.iter
        (fun s ->
          Printf.printf "%s:\n" s.W.Suites.suite_name;
          List.iter (fun (n, _) -> Printf.printf "  %s\n" n) s.W.Suites.programs)
        W.Suites.validation_suites
    | "oz" ->
      List.iter (fun p -> Printf.printf "-%s " p) P.Pipelines.oz_sequence;
      print_newline ()
    | w -> failwith ("unknown listing " ^ w)
  in
  Cmd.v (Cmd.info "list" ~doc:"List passes, benchmarks or the Oz sequence")
    Term.(const go $ what)

let () =
  let doc = "POSET-RL: phase ordering for size and execution time with RL" in
  let info = Cmd.info "posetrl" ~version:"1.0.0" ~doc in
  match
    Cmd.eval ~catch:false
      (Cmd.group info
         [ opt_cmd; run_cmd; train_cmd; eval_cmd; report_cmd; odg_cmd; list_cmd ])
  with
  | code -> exit code
  | exception (Failure msg | Sys_error msg) ->
    Printf.eprintf "posetrl: error: %s\n" msg;
    exit 1
