(* posetrl — command-line interface to the POSET-RL reproduction.

   Subcommands:
     opt    apply a standard pipeline or an explicit pass list to a
            textual MiniIR module and report size/throughput changes
     run    interpret a textual MiniIR module
     train  train a DQN phase-ordering model and save its weights
     eval   evaluate a saved model against the validation suites
     report aggregate a --trace JSONL file into per-span/per-pass tables
     profile run train/eval under the hotspot profiler: ranked self-time
            table, jobs-1-vs-N comparison, GC/alloc totals, folded export
     runs   the run ledger: list past runs, show one (manifest +
            training curves), compare two with regression detection
            (--attrib adds the per-action reward-attribution diff),
            rebuild a profile from a run's trace
     explain replay a run's ledger into a policy-introspection report:
            per-action reward attribution (verified against the episode
            stream), top schedules, drift timeline, watchdog alerts
     coverage decision-space coverage report for a run: ODG edge
            coverage with per-edge mean rewards, transition hot list,
            entropy, state-sketch occupancy, heat-annotated dot export
     watch  live terminal dashboard tailing a (running) ledger run,
            including a red row for watchdog alerts
     odg    inspect the Oz Dependence Graph (stats, dot, derived walks)
     list   list registered passes / benchmark programs

   opt/train/eval take --trace FILE.jsonl (write a span trace) and
   --metrics (print the metrics registry on exit); train/eval take
   --run-dir DIR (or --run NAME) to persist the run in the ledger and
   --serve PORT to expose live /metrics + /healthz over HTTP;
   report takes --chrome OUT.json for a Perfetto-loadable export. *)

open Cmdliner
open Posetrl_ir
module P = Posetrl_passes
module W = Posetrl_workloads
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module Obs = Posetrl_obs
module A = Posetrl_analysis

let read_module path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Parser.parse_module s
  with Parser.Parse_error msg ->
    failwith (Printf.sprintf "%s: parse error: %s" path msg)

let load_program (spec : string) : Modul.t =
  (* a benchmark name from the suites, or a path to a textual module *)
  match W.Suites.find_program spec with
  | Some mk -> mk ()
  | None ->
    if Sys.file_exists spec then read_module spec
    else failwith (Printf.sprintf "unknown program %s (not a benchmark, not a file)" spec)

let target_of_string = function
  | "x86" | "x86-64" | "x86_64" -> CG.Target.x86_64
  | "arm" | "aarch64" -> CG.Target.aarch64
  | t -> failwith ("unknown target " ^ t)

let space_of_string = function
  | "odg" -> O.Action_space.odg
  | "manual" -> O.Action_space.manual
  | s -> failwith ("unknown action space " ^ s)

(* --- observability flags (shared by opt/train/eval) ----------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.jsonl"
         ~doc:"Write a JSONL span trace to \\$(docv) (analyse with `posetrl report`).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the metrics registry snapshot on exit.")

(* Run [f] with the observability surface requested on the command line:
   a JSONL sink while [f] runs, a metrics table after it. *)
let with_obs ~(trace : string option) ~(metrics : bool) (f : unit -> 'a) : 'a =
  let run () =
    match trace with
    | None -> f ()
    | Some path ->
      let r = Obs.Span.with_sink (Obs.Sink.jsonl path) f in
      Printf.printf "trace written to %s\n" path;
      r
  in
  let r = run () in
  if metrics then Obs.Console.print_metrics ~title:"metrics (posetrl.*)" ();
  r

(* --- IR checking (--verify-each / --sanitize, shared by opt/train/eval) ---- *)

let verify_each_arg =
  Arg.(value & flag & info [ "verify-each" ]
         ~doc:"Run the structural IR verifier after every pass (slower; \
               catches miscompiling passes at the pass that broke the IR).")

let sanitize_arg =
  Arg.(value & opt string "off" & info [ "sanitize" ] ~docv:"LEVEL"
         ~doc:"Semantic sanitizer level: off, structural (re-verify after \
               every pass), ssa (structural + SSA dominance checking), or \
               equiv (ssa + translation validation: each pass application is \
               differentially simulated against its input on seeded concrete \
               inputs). On failure a delta-minimized repro is written to the \
               run ledger's repros/ directory (or runs/repros without a \
               ledger run) and the command aborts.")

let sanitize_of_string (s : string) : A.Sanitize.level =
  match A.Sanitize.level_of_string s with
  | Ok l -> l
  | Error e -> failwith e

(* Repros land next to the ledger run when one is open. *)
let repro_dir_of_run (run : Obs.Run.t option) : string =
  match run with
  | Some r -> Filename.concat (Obs.Run.dir r) "repros"
  | None -> Filename.concat "runs" "repros"

(* --- worker pool (--jobs, shared by train/eval) ---------------------------- *)

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel work: suite programs in `eval`, \
               the minibatch gemm rows in `train`. Results are byte-identical \
               to --jobs 1 (see DESIGN.md §9). Default 1 (sequential, no \
               domains spawned).")

(* [f] gets [Some pool] only when parallelism was actually requested, so
   the sequential path stays domain-free. *)
let with_jobs ~(jobs : int) (f : Posetrl_support.Pool.t option -> 'a) : 'a =
  if jobs <= 1 then f None
  else Posetrl_support.Pool.with_pool ~name:"posetrl" ~jobs (fun p -> f (Some p))

(* --- run-ledger plumbing (shared by train/eval) --------------------------- *)

let run_dir_arg =
  Arg.(value & opt (some string) None & info [ "run-dir" ] ~docv:"DIR"
         ~doc:"Persist this run in the ledger at \\$(docv): manifest.json, \
               progress.jsonl, eval.json, trace.jsonl. Inspect with `posetrl runs`.")

let run_name_arg =
  Arg.(value & opt (some string) None & info [ "run" ] ~docv:"NAME"
         ~doc:"Persist this run in the ledger under runs/<timestamp>-\\$(docv).")

let json_of_hp (hp : C.Trainer.hyperparams) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [ ("total_steps", Int hp.C.Trainer.total_steps);
      ("epsilon_start", Float hp.C.Trainer.epsilon.Posetrl_rl.Schedule.start);
      ("epsilon_stop", Float hp.C.Trainer.epsilon.Posetrl_rl.Schedule.stop);
      ("epsilon_decay_steps", Int hp.C.Trainer.epsilon.Posetrl_rl.Schedule.decay_steps);
      ("batch_size", Int hp.C.Trainer.batch_size);
      ("train_every", Int hp.C.Trainer.train_every);
      ("target_sync_every", Int hp.C.Trainer.target_sync_every);
      ("replay_capacity", Int hp.C.Trainer.replay_capacity);
      ("warmup_steps", Int hp.C.Trainer.warmup_steps);
      ("gamma", Float hp.C.Trainer.gamma);
      ("lr", Float hp.C.Trainer.lr);
      ("hidden", Arr (List.map (fun h -> Int h) hp.C.Trainer.hidden));
      ("max_episode_steps", Int hp.C.Trainer.max_episode_steps);
      ("double", Bool hp.C.Trainer.double);
      ("reward_scale", Float hp.C.Trainer.reward_scale);
      ("snapshot_every", Int hp.C.Trainer.snapshot_every);
      ("alpha", Float C.Reward.paper_weights.C.Reward.alpha);
      ("beta", Float C.Reward.paper_weights.C.Reward.beta) ]

(* Open a ledger run when either flag was given; [--run-dir] wins. *)
let start_run ~(run_dir : string option) ~(run_name : string option)
    ~(kind : string) ~(meta : (string * Obs.Json.t) list) : Obs.Run.t option =
  match run_dir, run_name with
  | None, None -> None
  | dir, name ->
    let name = Option.value name ~default:kind in
    Some (Obs.Run.create ?dir ~name ~meta:(("kind", Obs.Json.Str kind) :: meta) ())

(* Run [f] with the run's trace.jsonl capturing the span stream (in
   addition to any --trace sink), and always finish the manifest. *)
let with_run (run : Obs.Run.t option) (f : unit -> (string * Obs.Json.t) list) : unit =
  match run with
  | None -> ignore (f ())
  | Some r ->
    let result = ref [] in
    Fun.protect
      ~finally:(fun () -> Obs.Run.finish ~result:!result r)
      (fun () ->
        Obs.Span.with_sink
          (Obs.Sink.jsonl (Obs.Run.trace_path (Obs.Run.dir r)))
          (fun () -> result := f ()));
    Obs.Console.info "run recorded in %s\n" (Obs.Run.dir r)

(* --- live telemetry (--serve, shared by train/eval) ------------------------ *)

let serve_arg =
  Arg.(value & opt (some int) None & info [ "serve" ] ~docv:"PORT"
         ~doc:"Serve live telemetry over HTTP on 127.0.0.1:\\$(docv) while the \
               run is in flight: GET /metrics (Prometheus exposition), \
               /healthz, /runs, /runs/ID/progress.")

let serve_grace_arg =
  Arg.(value & opt float 5.0 & info [ "serve-grace" ] ~docv:"SECS"
         ~doc:"With --serve: keep answering requests for \\$(docv) seconds \
               after the run finishes, so a scraper can observe the final \
               'done' /healthz state and the last metric values.")

(* Wrap [f] in a telemetry server's lifecycle: bind before, report
   status "running" until [f] returns and "done" during the grace
   window after. [f] receives a pump thunk to call from its hot loop
   (the server is single-threaded — nothing is served between pumps). *)
let with_serve ?(alerts : unit -> Obs.Json.t list = fun () -> [])
    ?(coverage : unit -> Obs.Json.t option = fun () -> None)
    ~(serve : int option) ~(grace : float) ~(kind : string)
    ~(run_dir : unit -> string option) (f : pump:(unit -> unit) -> 'a) : 'a =
  match serve with
  | None -> f ~pump:(fun () -> ())
  | Some port ->
    let status = ref "running" in
    let started = Obs.Clock.now () in
    let metric name = Option.value ~default:0.0 (Obs.Metrics.value name) in
    let health () =
      let open Obs.Json in
      Obj
        [ ("status", Str !status);
          ("kind", Str kind);
          ("uptime_s", Float (Obs.Clock.now () -. started));
          ("step", Int (int_of_float (metric "posetrl.train.steps")));
          ("episode", Int (int_of_float (metric "posetrl.train.episodes")));
          ("epsilon", Float (metric "posetrl.train.epsilon"));
          ("mean_reward", Float (metric "posetrl.train.mean_reward"));
          ("run", match run_dir () with Some d -> Str d | None -> Null) ]
    in
    let server =
      Obs.Httpd.create ~port
        ~handler:(Obs.Httpd.telemetry_handler ~alerts ~coverage ~health ()) ()
    in
    Obs.Console.info
      "telemetry on http://127.0.0.1:%d  (/metrics /healthz /alerts /coverage \
       /runs)\n%!"
      (Obs.Httpd.port server);
    Fun.protect
      ~finally:(fun () -> Obs.Httpd.close server)
      (fun () ->
        let r = f ~pump:(fun () -> Obs.Httpd.pump server) in
        status := "done";
        if grace > 0.0 then begin
          Obs.Console.info "%s done; serving final state for %.1fs\n%!" kind grace;
          let deadline = Obs.Clock.now () +. grace in
          while Obs.Clock.now () < deadline do
            Obs.Httpd.pump server;
            Unix.sleepf 0.05
          done
        end;
        r)

let report_module (target : CG.Target.t) (label : string) (m : Modul.t) =
  Printf.printf "%-10s insns=%-5d size=%-6dB text=%-6dB mca-throughput=%.3f\n"
    label (Modul.insn_count m)
    (CG.Objfile.size target m)
    (CG.Objfile.text_size target m)
    (Posetrl_mca.Mca.throughput target m)

(* --- opt ------------------------------------------------------------------ *)

let opt_cmd =
  let program =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name (e.g. 541.leela, crc32) or path to a textual MiniIR file.")
  in
  let level =
    Arg.(value & opt string "Oz" & info [ "O"; "level" ] ~docv:"LEVEL"
           ~doc:"Pipeline level: O0 O1 O2 O3 Os Oz.")
  in
  let passes =
    Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"P1,P2,..."
           ~doc:"Explicit comma-separated pass list (overrides --level).")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~docv:"TARGET"
           ~doc:"x86 or aarch64.")
  in
  let emit =
    Arg.(value & flag & info [ "emit" ] ~doc:"Print the optimized module.")
  in
  let alias =
    Arg.(value & flag & info [ "alias" ]
           ~doc:"Consult the interprocedural alias analysis in dse/licm/gvn \
                 (opt-in; byte-identical to the legacy facts on the bundled \
                 suites, cmp-gated in the test suite).")
  in
  let inject_bug =
    Arg.(value & flag & info [ "inject-bug" ]
           ~doc:"Append a deliberately miscompiling sink pass (first add in \
                 each function flipped to sub) after the pipeline. The sink \
                 passes the structural and ssa sanitizer tiers; only \
                 --sanitize equiv catches it. Testing hook for the \
                 translation-validation tier.")
  in
  let run program level passes target emit sanitize alias inject_bug trace
      metrics =
    let m = load_program program in
    let tgt = target_of_string target in
    let sanitize = sanitize_of_string sanitize in
    let repro_dir = repro_dir_of_run None in
    let with_alias cfg = { cfg with P.Config.use_alias = alias } in
    report_module tgt "input" m;
    let m' =
      with_obs ~trace ~metrics (fun () ->
          let m' =
            match passes with
            | Some ps ->
              let names = String.split_on_char ',' ps |> List.map String.trim in
              List.iter
                (fun n -> if Option.is_none (P.Registry.find n) then failwith ("unknown pass " ^ n))
                names;
              P.Pass_manager.run ~verify:true ~sanitize ~repro_dir
                (with_alias P.Config.oz) names m
            | None ->
              (match P.Pipelines.level_of_string level with
               | Some l ->
                 P.Pass_manager.run ~verify:true ~sanitize ~repro_dir
                   (with_alias (P.Pipelines.config_of l))
                   (P.Pipelines.sequence_of l) m
               | None -> failwith ("unknown level " ^ level))
          in
          if inject_bug then
            P.Pass_manager.run_pass ~sanitize ~repro_dir P.Sink.pass
              (with_alias P.Config.oz) m'
          else m')
    in
    report_module tgt "output" m';
    if emit then print_string (Printer.module_to_string m')
  in
  Cmd.v (Cmd.info "opt" ~doc:"Apply an optimization pipeline to a module")
    Term.(const run $ program $ level $ passes $ target $ emit $ sanitize_arg
          $ alias $ inject_bug $ trace_arg $ metrics_arg)

(* --- run ------------------------------------------------------------------- *)

let run_cmd =
  let program =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name or path to a textual MiniIR file.")
  in
  let level =
    Arg.(value & opt (some string) None & info [ "O"; "level" ]
           ~doc:"Optimize before running.")
  in
  let go program level =
    let m = load_program program in
    let m =
      match level with
      | Some l ->
        (match P.Pipelines.level_of_string l with
         | Some l -> P.Pass_manager.run_level l m
         | None -> failwith ("unknown level " ^ l))
      | None -> m
    in
    match Posetrl_interp.Interp.run m with
    | o ->
      if String.length o.Posetrl_interp.Interp.output > 0 then
        print_string o.Posetrl_interp.Interp.output;
      Printf.printf "return: %s\ncycles: %d\ndynamic instructions: %d\n"
        (match o.Posetrl_interp.Interp.ret with
         | Posetrl_interp.Interp.VInt v -> Int64.to_string v
         | Posetrl_interp.Interp.VFloat f -> string_of_float f
         | Posetrl_interp.Interp.VPtr p -> Printf.sprintf "ptr:%d" p
         | _ -> "void")
        o.Posetrl_interp.Interp.cycles o.Posetrl_interp.Interp.dyn_insns
    | exception Posetrl_interp.Interp.Trap e -> Printf.printf "trap: %s\n" e
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret a module") Term.(const go $ program $ level)

(* --- train ----------------------------------------------------------------- *)

let train_cmd =
  let out =
    Arg.(value & opt string "posetrl.weights" & info [ "o"; "output" ]
           ~docv:"FILE" ~doc:"Where to save the trained weights.")
  in
  let space =
    Arg.(value & opt string "odg" & info [ "space" ] ~doc:"Action space: odg or manual.")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~doc:"x86 or aarch64.")
  in
  let steps =
    Arg.(value & opt (some int) None & info [ "steps" ]
           ~doc:"Total training timesteps (default: 20100, the paper budget; \
                 with --fast, the fast schedule's 1800).")
  in
  let fast =
    Arg.(value & flag & info [ "fast" ]
           ~doc:"Use the scaled-down fast hyperparameters instead of the paper schedule.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let corpus_size =
    Arg.(value & opt int 130 & info [ "corpus" ] ~doc:"Training corpus size (paper: 130).")
  in
  let inject_nan =
    Arg.(value & opt (some int) None & info [ "inject-nan" ] ~docv:"STEP"
           ~doc:"Fault injection: poison one online-network weight with NaN at \
                 global step \\$(docv), so the training-health watchdog's \
                 nan_loss rule fires. CI uses this to exercise the alert \
                 pipeline end to end; never set it for real training.")
  in
  let go out space target steps fast seed corpus_size inject_nan jobs
      verify_each sanitize trace metrics run_dir run_name serve serve_grace =
    let actions = space_of_string space in
    let tgt = target_of_string target in
    let sanitize = sanitize_of_string sanitize in
    let corpus = W.Suites.training_corpus ~n:corpus_size () in
    let base = if fast then C.Trainer.fast else C.Trainer.paper in
    let hp =
      match steps with
      | None -> base
      | Some s ->
        { base with
          C.Trainer.total_steps = s;
          C.Trainer.epsilon =
            (if fast then
               Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.05
                 ~decay_steps:(max 1 (s * 2 / 3)) ()
             else
               Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.01
                 ~decay_steps:(max 1 (s - 100)) ()) }
    in
    Obs.Console.info "training %s/%s for %d steps on %d programs...\n%!" space
      target hp.C.Trainer.total_steps corpus_size;
    let run =
      start_run ~run_dir ~run_name ~kind:"train"
        ~meta:
          [ ("seed", Obs.Json.Int seed);
            ("action_space", Obs.Json.Str space);
            ("target", Obs.Json.Str tgt.CG.Target.name);
            ("corpus",
             Obs.Json.Obj
               [ ("n", Obs.Json.Int (Array.length corpus));
                 ("source", Obs.Json.Str "Suites.training_corpus") ]);
            ("hyperparams", json_of_hp hp) ]
    in
    (* progress lines read back from the metrics registry (the trainer
       refreshes the posetrl.train.* series before each tick), so the
       metrics layer — not the progress record — is the source of truth *)
    let metric name = Option.value ~default:0.0 (Obs.Metrics.value name) in
    let on_progress (p : C.Trainer.progress) =
      Obs.Console.info
        "  step %6d  episode %5d  eps %.3f  mean-reward %7.2f  mean-size-gain %6.2f%%  loss %.4f\n%!"
        (int_of_float (metric "posetrl.train.steps"))
        (int_of_float (metric "posetrl.train.episodes"))
        (metric "posetrl.train.epsilon")
        (metric "posetrl.train.mean_reward")
        (metric "posetrl.train.mean_size_gain")
        (metric "posetrl.train.loss");
      Option.iter
        (fun r ->
          Obs.Run.progress r
            (Obs.Runlog.tick_record
               ?q_mean:(Obs.Metrics.value "posetrl.dqn.q_mean")
               ?q_max:(Obs.Metrics.value "posetrl.dqn.q_max")
               ?gc_minor:
                 (Option.map int_of_float
                    (Obs.Metrics.value "posetrl.gc.minor_collections"))
               ?gc_major:
                 (Option.map int_of_float
                    (Obs.Metrics.value "posetrl.gc.major_collections"))
               ?gc_heap_mb:
                 (Option.map
                    (fun w -> w *. 8.0 /. 1e6)
                    (Obs.Metrics.value "posetrl.gc.heap_words"))
               ?gc_alloc_mb_s:(Obs.Metrics.value "posetrl.gc.alloc_rate_mb_s")
               ~step:p.C.Trainer.step
               ~episode:p.C.Trainer.episode ~epsilon:p.C.Trainer.epsilon_now
               ~mean_reward:p.C.Trainer.mean_reward
               ~mean_size_gain:p.C.Trainer.mean_size_gain
               ~r_binsize:p.C.Trainer.r_binsize
               ~r_throughput:p.C.Trainer.r_throughput ~loss:p.C.Trainer.loss ()))
        run
    in
    let on_episode (e : C.Trainer.episode_summary) =
      Option.iter
        (fun r ->
          Obs.Run.progress r
            (Obs.Runlog.episode_record ~actions:e.C.Trainer.ep_actions
               ~step_rewards:e.C.Trainer.ep_step_rewards
               ~episode:e.C.Trainer.ep_index
               ~step:e.C.Trainer.ep_end_step ~reward:e.C.Trainer.ep_reward
               ~r_binsize:e.C.Trainer.ep_r_binsize
               ~r_throughput:e.C.Trainer.ep_r_throughput
               ~size_gain_pct:e.C.Trainer.ep_size_gain_pct
               ~thru_gain_pct:e.C.Trainer.ep_thru_gain_pct
               ~epsilon:e.C.Trainer.ep_epsilon ~loss:e.C.Trainer.ep_loss ()))
        run
    in
    (* watchdog alerts: persist each one as it fires (crash-tolerant),
       warn on the console, and keep the JSON forms live for /alerts *)
    let live_alerts = ref [] in
    let on_alert (a : Obs.Health.alert) =
      let j = Obs.Health.alert_to_json a in
      live_alerts := j :: !live_alerts;
      Option.iter (fun r -> Obs.Run.alert r j) run;
      Obs.Console.info "  ALERT [%s] %s step %d: %s\n%!" a.Obs.Health.a_severity
        a.Obs.Health.a_rule a.Obs.Health.a_step a.Obs.Health.a_message
    in
    (* built here (not inside the trainer) so the live /coverage endpoint
       and the trainer fold the same table *)
    let coverage = C.Trainer.make_coverage ~registry:Obs.Metrics.global actions in
    with_serve ~alerts:(fun () -> List.rev !live_alerts)
      ~coverage:(fun () -> Some (Obs.Coverage.to_json coverage)) ~serve
      ~grace:serve_grace ~kind:"train"
      ~run_dir:(fun () -> Option.map Obs.Run.dir run)
      (fun ~pump ->
        with_run run (fun () ->
            let res =
              with_obs ~trace ~metrics (fun () ->
                  with_jobs ~jobs (fun pool ->
                      C.Trainer.train ?pool ~hp ~on_progress ~on_episode
                        ~on_step:(fun _ -> pump ()) ~on_alert
                        ?inject_nan_at:inject_nan ~coverage
                        ~verify:verify_each
                        ~sanitize ~repro_dir:(repro_dir_of_run run) ~seed
                        ~corpus ~actions ~target:tgt ()))
            in
            Posetrl_rl.Dqn.save_weights res.C.Trainer.agent out;
            let attrib_doc =
              Posetrl_rl.Attrib.to_json
                ~labels:(fun a ->
                  String.concat "," (O.Action_space.action actions a))
                res.C.Trainer.attrib
            in
            Option.iter (fun r -> Obs.Run.write_attrib r attrib_doc) run;
            let cov = res.C.Trainer.coverage in
            Option.iter
              (fun r -> Obs.Run.write_coverage r (Obs.Coverage.to_json cov))
              run;
            let n_alerts = List.length res.C.Trainer.alerts in
            if n_alerts > 0 then
              Obs.Console.info "training-health: %d alert%s fired (see \
                                alerts.jsonl / `posetrl explain`)\n"
                n_alerts (if n_alerts = 1 then "" else "s");
            Obs.Console.info
              "coverage: %d/%d ODG edges (%.1f%%), action entropy %.3f bits\n"
              (Obs.Coverage.edges_visited cov)
              (Obs.Coverage.edge_count cov)
              (Obs.Coverage.edge_pct cov) (Obs.Coverage.entropy cov);
            Obs.Console.info "saved weights to %s (%d episodes)\n" out
              res.C.Trainer.episodes;
            [ ("episodes", Obs.Json.Int res.C.Trainer.episodes);
              ("final_mean_reward", Obs.Json.Float res.C.Trainer.final_mean_reward);
              ("coverage_edge_pct", Obs.Json.Float (Obs.Coverage.edge_pct cov));
              ("coverage_entropy_bits", Obs.Json.Float (Obs.Coverage.entropy cov));
              ("alerts", Obs.Json.Int n_alerts);
              ("weights", Obs.Json.Str out) ]))
  in
  Cmd.v (Cmd.info "train" ~doc:"Train a phase-ordering model")
    Term.(const go $ out $ space $ target $ steps $ fast $ seed $ corpus_size
          $ inject_nan $ jobs_arg $ verify_each_arg $ sanitize_arg $ trace_arg
          $ metrics_arg $ run_dir_arg $ run_name_arg $ serve_arg
          $ serve_grace_arg)

(* --- eval ------------------------------------------------------------------- *)

let eval_cmd =
  let weights =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WEIGHTS"
           ~doc:"Weights file saved by `posetrl train`.")
  in
  let space =
    Arg.(value & opt string "odg" & info [ "space" ] ~doc:"Action space: odg or manual.")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~doc:"x86 or aarch64.")
  in
  let go weights space target jobs verify_each sanitize trace metrics run_dir
      run_name serve serve_grace =
    let actions = space_of_string space in
    let tgt = target_of_string target in
    let sanitize = sanitize_of_string sanitize in
    let rng = Posetrl_support.Rng.create 0 in
    let agent =
      Posetrl_rl.Dqn.create rng ~state_dim:C.Environment.state_dim
        ~hidden:[ 128; 64 ] ~n_actions:(O.Action_space.n_actions actions)
    in
    Posetrl_rl.Dqn.load_weights agent weights;
    let run =
      start_run ~run_dir ~run_name ~kind:"eval"
        ~meta:
          [ ("weights", Obs.Json.Str weights);
            ("action_space", Obs.Json.Str space);
            ("target", Obs.Json.Str tgt.CG.Target.name) ]
    in
    (* eval coverage: the greedy rollout sequences folded as episodes
       (reward components are not re-derived — counts/entropy only);
       results come back in input order, so the table is byte-identical
       across --jobs settings like eval.json itself *)
    let coverage = C.Trainer.make_coverage ~registry:Obs.Metrics.global actions in
    with_serve ~coverage:(fun () -> Some (Obs.Coverage.to_json coverage)) ~serve
      ~grace:serve_grace ~kind:"eval"
      ~run_dir:(fun () -> Option.map Obs.Run.dir run)
      (fun ~pump ->
      with_run run (fun () ->
        let evaluated =
          with_obs ~trace ~metrics (fun () ->
              with_jobs ~jobs (fun pool ->
                  List.map
                    (fun suite ->
                      pump ();
                      let results =
                        C.Evaluate.evaluate_programs ?pool ~verify:verify_each
                          ~sanitize ~repro_dir:(repro_dir_of_run run) ~agent
                          ~actions ~target:tgt suite.W.Suites.programs
                      in
                      ( C.Evaluate.summarize_suite
                          ~suite:suite.W.Suites.suite_name results,
                        results ))
                    W.Suites.validation_suites))
        in
        List.iter
          (fun ((s : C.Evaluate.suite_summary), results) ->
            Printf.printf "%-10s size reduction vs Oz: min %6.2f%%  avg %6.2f%%  max %6.2f%%"
              s.C.Evaluate.suite s.C.Evaluate.min_red s.C.Evaluate.avg_red s.C.Evaluate.max_red;
            (match s.C.Evaluate.avg_time_impr with
             | Some t -> Printf.printf "  time improvement: %6.2f%%\n" t
             | None -> print_newline ());
            List.iter
              (fun r ->
                Printf.printf "    %-16s oz=%6dB model=%6dB (%+.2f%%) seq=%s\n"
                  r.C.Evaluate.prog_name r.C.Evaluate.size_oz r.C.Evaluate.size_model
                  (C.Evaluate.size_reduction_pct r)
                  (String.concat "->" (List.map string_of_int r.C.Evaluate.predicted)))
              results)
          evaluated;
        List.iter
          (fun (_, results) ->
            List.iter
              (fun (r : C.Evaluate.program_result) ->
                List.iteri
                  (fun pos a ->
                    Obs.Coverage.observe coverage ~action:a ~pos ~reward:0.0
                      ~r_binsize:0.0 ~r_throughput:0.0)
                  r.C.Evaluate.predicted)
              results)
          evaluated;
        Obs.Coverage.sample coverage ~step:(Obs.Coverage.steps coverage);
        Option.iter
          (fun r ->
            Obs.Run.write_eval r (C.Evaluate.suites_to_json evaluated);
            Obs.Run.write_coverage r (Obs.Coverage.to_json coverage))
          run;
        let avg_reds =
          List.map (fun ((s : C.Evaluate.suite_summary), _) -> s.C.Evaluate.avg_red)
            evaluated
        in
        [ ("suites", Obs.Json.Int (List.length evaluated));
          ("overall_avg_size_red",
           Obs.Json.Float (Posetrl_support.Stats.mean avg_reds)) ]))
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a trained model on the validation suites")
    Term.(const go $ weights $ space $ target $ jobs_arg $ verify_each_arg
          $ sanitize_arg $ trace_arg $ metrics_arg $ run_dir_arg $ run_name_arg
          $ serve_arg $ serve_grace_arg)

(* --- report ------------------------------------------------------------------ *)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.jsonl"
           ~doc:"Trace file written by --trace.")
  in
  let top_k =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the span-summary table.")
  in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"OUT.json"
           ~doc:"Also export the trace as Chrome trace-event JSON — load it \
                 in ui.perfetto.dev or chrome://tracing for a flamegraph view.")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"OUT.folded"
           ~doc:"Also export the trace as folded stacks (self-time in µs) for \
                 flamegraph.pl / inferno / speedscope.")
  in
  let go file top_k chrome folded =
    let events = Obs.Report.read_jsonl file in
    (match chrome with
     | Some out ->
       Obs.Chrome.write ~path:out events;
       Printf.printf "chrome trace written to %s (%d events)\n" out
         (List.length events)
     | None -> ());
    (match folded with
     | Some out ->
       Obs.Prof.write_folded ~path:out (Obs.Prof.of_events events);
       Printf.printf "folded stacks written to %s (%d events)\n" out
         (List.length events)
     | None -> ());
    print_string (Obs.Report.render ~top_k events)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Aggregate a span trace into per-span, per-pass and per-action tables")
    Term.(const go $ file $ top_k $ chrome $ folded)

(* --- profile ----------------------------------------------------------------- *)

(* Runs a workload under a profiling collector (plus per-span allocation
   attribution) and prints hotspot attribution. The sequential (jobs=1)
   run is the attribution baseline; unless --once, the same workload
   re-runs at --jobs N and the per-span self-times are tabled side by
   side — the measured answer to "where does the pooled run spend its
   time". *)
let profile_cmd =
  let mode =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODE"
           ~doc:"Workload to profile: train (a short fast-schedule training \
                 run) or eval (the validation suites under a fixed-seed \
                 model).")
  in
  let suite =
    Arg.(value & opt ~vopt:"all" string "all" & info [ "suite" ] ~docv:"SUITE"
           ~doc:"Restrict eval mode to one validation suite (default: all).")
  in
  let level =
    Arg.(value & opt (some string) None & info [ "O"; "level" ] ~docv:"L"
           ~doc:"Eval mode: profile the \\$(docv) pass pipeline over the suite \
                 programs instead of the model rollout.")
  in
  let jobs =
    Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Pool size for the comparison run (default 4).")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Profile the sequential run only; skip the jobs-1-vs-N \
                 comparison (CI smoke).")
  in
  let top =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the hotspot table.")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"OUT.folded"
           ~doc:"Write the sequential run's folded stacks (flamegraph.pl \
                 format) to \\$(docv).")
  in
  let steps =
    Arg.(value & opt int 600 & info [ "steps" ]
           ~doc:"Training steps for profile train (fast schedule).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let go mode suite level jobs once top folded steps seed =
    let module SPool = Posetrl_support.Pool in
    let actions = O.Action_space.odg in
    let tgt = CG.Target.x86_64 in
    let suites =
      if suite = "all" then W.Suites.validation_suites
      else
        match
          List.filter
            (fun s -> s.W.Suites.suite_name = suite)
            W.Suites.validation_suites
        with
        | [] ->
          failwith
            (Printf.sprintf "unknown suite %s (have: %s)" suite
               (String.concat ", "
                  (List.map
                     (fun s -> s.W.Suites.suite_name)
                     W.Suites.validation_suites)))
        | l -> l
    in
    let eval_workload pool =
      match level with
      | Some l ->
        let lvl =
          match P.Pipelines.level_of_string l with
          | Some lv -> lv
          | None -> failwith ("unknown level " ^ l)
        in
        let progs =
          Array.of_list (List.concat_map (fun s -> s.W.Suites.programs) suites)
        in
        (match pool with
         | None ->
           Array.iter
             (fun (name, mk) ->
               Obs.Span.with_
                 ~attrs:[ ("program", Obs.Event.S name) ]
                 "posetrl.profile.program"
                 (fun _ -> ignore (P.Pass_manager.run_level lvl (mk ()))))
             progs
         | Some p ->
           let t0 = Obs.Clock.now () in
           let _, timings =
             SPool.map_timed p
               (fun (_, mk) -> ignore (P.Pass_manager.run_level lvl (mk ())))
               progs
           in
           let t1 = Obs.Clock.now () in
           ignore
             (Obs.Prof.note_pool_batch ~jobs:(SPool.jobs p) ~t0 ~t1 timings);
           Array.iter
             (fun (tm : SPool.timing) ->
               Obs.Span.emit
                 ~attrs:
                   [ ("program", Obs.Event.S (fst progs.(tm.SPool.t_index))) ]
                 ~tid:tm.SPool.t_domain ~name:"posetrl.pool.task"
                 ~t_start:tm.SPool.t_start ~dur:tm.SPool.t_dur ())
             timings)
      | None ->
        let rng = Posetrl_support.Rng.create seed in
        let agent =
          Posetrl_rl.Dqn.create rng ~state_dim:C.Environment.state_dim
            ~hidden:[ 128; 64 ] ~n_actions:(O.Action_space.n_actions actions)
        in
        List.iter
          (fun s ->
            ignore
              (C.Evaluate.evaluate_programs ?pool ~measure_time:false ~agent
                 ~actions ~target:tgt s.W.Suites.programs))
          suites
    in
    let train_workload pool =
      let hp =
        { C.Trainer.fast with
          C.Trainer.total_steps = steps;
          C.Trainer.epsilon =
            Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.05
              ~decay_steps:(max 1 (steps * 2 / 3)) () }
      in
      let corpus = W.Suites.training_corpus ~n:16 () in
      ignore (C.Trainer.train ?pool ~hp ~seed ~corpus ~actions ~target:tgt ())
    in
    let workload =
      match mode with
      | "eval" -> eval_workload
      | "train" -> train_workload
      | m -> failwith ("unknown profile mode " ^ m ^ " (expected train or eval)")
    in
    let run_one jobs =
      let mark = Obs.Prof.gc_mark () in
      let (), prof =
        Obs.Prof.collect (fun () -> with_jobs ~jobs (fun pool -> workload pool))
      in
      (prof, Obs.Prof.gc_delta mark)
    in
    let prof1, gc1 = run_one 1 in
    print_string (Obs.Prof.render ~top ~title:"hotspots (jobs=1)" prof1);
    print_string (Obs.Prof.render_gc gc1);
    (match folded with
     | Some out ->
       Obs.Prof.write_folded ~path:out prof1;
       Printf.printf "folded stacks written to %s\n" out
     | None -> ());
    if (not once) && jobs > 1 then begin
      let profN, gcN = run_one jobs in
      print_newline ();
      print_string (Obs.Prof.render_compare ~jobs prof1 profN);
      (match Obs.Metrics.value "posetrl.pool.busy_frac" with
       | Some busy ->
         Printf.printf "pool: busy=%.1f%% mean queue wait %.1f us\n"
           (100.0 *. busy)
           (1e6
            *. Option.value ~default:0.0
                 (Obs.Metrics.value "posetrl.pool.queue_wait_mean_s"))
       | None -> ());
      print_string (Obs.Prof.render_gc gcN)
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a workload under the hotspot profiler: ranked self-time \
             table, jobs-1-vs-N comparison, GC/alloc totals, optional \
             flamegraph export")
    Term.(const go $ mode $ suite $ level $ jobs $ once $ top $ folded $ steps
          $ seed)

(* --- runs (the ledger) ------------------------------------------------------- *)

module Tbl = Posetrl_support.Table
module Stats = Posetrl_support.Stats

let root_arg =
  Arg.(value & opt string Obs.Run.default_root & info [ "root" ] ~docv:"DIR"
         ~doc:"Ledger root directory scanned for run ids.")

let json_scalar : Obs.Json.t -> string = function
  | Obs.Json.Str s -> s
  | Obs.Json.Int i -> string_of_int i
  | Obs.Json.Float f -> Printf.sprintf "%g" f
  | Obs.Json.Bool b -> string_of_bool b
  | Obs.Json.Null -> "-"
  | (Obs.Json.Arr _ | Obs.Json.Obj _) as j -> Obs.Json.to_string j

let fmt_num = function Some v -> Printf.sprintf "%.3f" v | None -> "-"

let runs_list_cmd =
  let go root =
    match Obs.Run.list_runs ~root () with
    | [] -> Printf.printf "no runs under %s\n" root
    | runs ->
      let t =
        Tbl.create ~title:(Printf.sprintf "run ledger (%s)" root)
          ~headers:[ "id"; "kind"; "status"; "wall s"; "mean reward"; "avg size red %" ]
          ~aligns:[ Tbl.Left; Tbl.Left; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right ]
          ()
      in
      List.iter
        (fun (i : Obs.Run.info) ->
          let m = i.Obs.Run.manifest in
          let get k = Option.value ~default:"-" (Obs.Runlog.str k m) in
          Tbl.add_row t
            [ i.Obs.Run.run_id;
              get "kind";
              get "status";
              (match Obs.Runlog.num "wall_s" m with
               | Some w -> Printf.sprintf "%.1f" w
               | None -> "-");
              fmt_num (Obs.Runlog.path_num [ "result"; "final_mean_reward" ] m);
              fmt_num (Obs.Runlog.path_num [ "result"; "overall_avg_size_red" ] m) ])
        runs;
      Tbl.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List past runs in the ledger")
    Term.(const go $ root_arg)

let print_eval_tables (doc : Obs.Json.t) =
  match Obs.Runlog.field "suites" doc with
  | Some (Obs.Json.Arr suites) ->
    let t =
      Tbl.create ~title:"eval: size reduction vs Oz (eval.json)"
        ~headers:[ "suite"; "n"; "min"; "avg"; "max"; "time impr" ]
        ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
        ()
    in
    List.iter
      (fun s ->
        let num k = Obs.Runlog.num k s in
        Tbl.add_row t
          [ Option.value ~default:"?" (Obs.Runlog.str "suite" s);
            (match num "n" with Some n -> Printf.sprintf "%.0f" n | None -> "-");
            fmt_num (num "min_red"); fmt_num (num "avg_red");
            fmt_num (num "max_red"); fmt_num (num "avg_time_impr") ])
      suites;
    Tbl.print t
  | _ -> ()

let runs_show_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN"
           ~doc:"Run id (under --root) or a run directory path.")
  in
  let go root id =
    let info = Obs.Run.find ~root id in
    Printf.printf "run %s (%s)\n" info.Obs.Run.run_id info.Obs.Run.run_dir;
    (match info.Obs.Run.manifest with
     | Obs.Json.Obj fields ->
       List.iter
         (fun (k, v) ->
           if k <> "id" then Printf.printf "  %-18s %s\n" k (json_scalar v))
         fields
     | _ -> ());
    let records, dropped = Obs.Run.read_progress info in
    if dropped > 0 then
      Printf.printf "  (%d torn progress line%s skipped)\n" dropped
        (if dropped = 1 then "" else "s");
    if records <> [] then begin
      Printf.printf "\ntraining curves (%d progress records):\n" (List.length records);
      let curve ~kind ~y label =
        match Obs.Runlog.series ~kind ~x:"step" ~y records with
        | [] -> ()
        | pts ->
          let ys = List.map snd pts in
          Printf.printf "  %-14s n=%-5d last %10.3f  min %10.3f  max %10.3f  %s\n"
            label (List.length ys)
            (List.nth ys (List.length ys - 1))
            (Stats.minimum ys) (Stats.maximum ys) (Stats.sparkline ys)
      in
      curve ~kind:"episode" ~y:"reward" "reward";
      curve ~kind:"episode" ~y:"r_binsize" "r_binsize";
      curve ~kind:"episode" ~y:"r_throughput" "r_throughput";
      curve ~kind:"episode" ~y:"size_gain_pct" "size gain %";
      curve ~kind:"tick" ~y:"loss" "loss";
      curve ~kind:"tick" ~y:"epsilon" "epsilon"
    end;
    match Obs.Run.read_eval info with
    | Some doc -> print_newline (); print_eval_tables doc
    | None -> ()
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Show a run: manifest, ASCII training curves, eval tables")
    Term.(const go $ root_arg $ id)

let runs_compare_cmd =
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE"
           ~doc:"Baseline run id or directory.")
  in
  let cand =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE"
           ~doc:"Candidate run id or directory.")
  in
  let d = Obs.Run.default_thresholds in
  let reward_drop =
    Arg.(value & opt float d.Obs.Run.max_reward_drop_pct
         & info [ "max-reward-drop" ] ~docv:"PCT"
             ~doc:"Regression when final mean reward drops more than \\$(docv)%% vs base.")
  in
  let size_drop =
    Arg.(value & opt float d.Obs.Run.max_size_drop_pts
         & info [ "max-size-drop" ] ~docv:"PTS"
             ~doc:"Regression when a suite's avg size reduction drops more than \\$(docv) points.")
  in
  let wall_factor =
    Arg.(value & opt float d.Obs.Run.max_wall_factor
         & info [ "max-wall-factor" ] ~docv:"X"
             ~doc:"Regression when candidate wall time exceeds \\$(docv) times base (0 disables).")
  in
  let attrib_flag =
    Arg.(value & flag & info [ "attrib" ]
           ~doc:"Also diff the two runs' per-action reward attribution \
                 (attrib.json): actions ranked by the reward-total shift. \
                 Runs without attribution data report 'no data' and never \
                 fail the comparison.")
  in
  let coverage_flag =
    Arg.(value & flag & info [ "coverage" ]
           ~doc:"Also diff the two runs' decision-space coverage \
                 (coverage.json): ODG edge coverage %% and action-entropy \
                 shift. Informational only — never fails the comparison.")
  in
  let go root base cand reward_drop size_drop wall_factor attrib coverage =
    let b = Obs.Run.find ~root base in
    let c = Obs.Run.find ~root cand in
    let thresholds =
      { Obs.Run.max_reward_drop_pct = reward_drop;
        Obs.Run.max_size_drop_pts = size_drop;
        Obs.Run.max_wall_factor = wall_factor }
    in
    let deltas = Obs.Run.compare_runs ~thresholds ~base:b ~cand:c () in
    if deltas = [] then
      Printf.printf "no comparable metrics between %s and %s\n"
        b.Obs.Run.run_id c.Obs.Run.run_id
    else begin
      let t =
        Tbl.create
          ~title:(Printf.sprintf "%s (base) vs %s (candidate)"
                    b.Obs.Run.run_id c.Obs.Run.run_id)
          ~headers:[ "metric"; "base"; "candidate"; "delta"; "status"; "note" ]
          ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left; Tbl.Left ]
          ()
      in
      List.iter
        (fun (dl : Obs.Run.delta) ->
          let delta =
            match dl.Obs.Run.d_base, dl.Obs.Run.d_cand with
            | Some b, Some c -> Printf.sprintf "%+.3f" (c -. b)
            | _ -> "-"
          in
          Tbl.add_row t
            [ dl.Obs.Run.d_metric;
              fmt_num dl.Obs.Run.d_base;
              fmt_num dl.Obs.Run.d_cand;
              delta;
              (if dl.Obs.Run.d_regressed then "REGRESSED" else "ok");
              dl.Obs.Run.d_note ])
        deltas;
      Tbl.print t
    end;
    if attrib then begin
      (* informational only — attribution shifts explain a reward delta,
         they don't gate it, so this never affects the exit code *)
      let table_of (i : Obs.Run.info) =
        Option.bind (Obs.Run.read_attrib i) Posetrl_rl.Attrib.of_json
      in
      match table_of b, table_of c with
      | None, _ | _, None ->
        Printf.printf
          "attribution: no data on at least one side (pre-attribution run \
           or unreadable attrib.json)\n"
      | Some ab, Some ac ->
        let n = min (Posetrl_rl.Attrib.n_actions ab)
                  (Posetrl_rl.Attrib.n_actions ac) in
        let rows =
          List.init n Fun.id
          |> List.filter (fun a ->
                 Posetrl_rl.Attrib.count ab a > 0
                 || Posetrl_rl.Attrib.count ac a > 0)
          |> List.sort (fun x y ->
                 let shift a =
                   Float.abs
                     (Posetrl_rl.Attrib.total_reward ac a
                      -. Posetrl_rl.Attrib.total_reward ab a)
                 in
                 compare (shift y) (shift x))
        in
        let t =
          Tbl.create ~title:"per-action reward attribution (base vs candidate)"
            ~headers:[ "action"; "count b/c"; "reward base"; "reward cand";
                       "shift" ]
            ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
            ()
        in
        List.iteri
          (fun i a ->
            if i < 15 then
              Tbl.add_row t
                [ string_of_int a;
                  Printf.sprintf "%d/%d" (Posetrl_rl.Attrib.count ab a)
                    (Posetrl_rl.Attrib.count ac a);
                  Printf.sprintf "%.3f" (Posetrl_rl.Attrib.total_reward ab a);
                  Printf.sprintf "%.3f" (Posetrl_rl.Attrib.total_reward ac a);
                  Printf.sprintf "%+.3f"
                    (Posetrl_rl.Attrib.total_reward ac a
                     -. Posetrl_rl.Attrib.total_reward ab a) ])
          rows;
        Tbl.print t
    end;
    if coverage then begin
      (* informational only, like --attrib: an exploration shift explains
         a reward delta, it doesn't gate the comparison *)
      let cov_of (i : Obs.Run.info) =
        Option.bind (Obs.Run.read_coverage i) Obs.Coverage.of_json
      in
      match cov_of b, cov_of c with
      | None, _ | _, None ->
        Printf.printf
          "coverage: no data on at least one side (pre-coverage run or \
           unreadable coverage.json)\n"
      | Some cb, Some cc ->
        Printf.printf
          "coverage: edges %.1f%% -> %.1f%% (%+.1f pts)  entropy %.3f -> \
           %.3f bits (%+.3f)  nodes %d -> %d\n"
          (Obs.Coverage.edge_pct cb) (Obs.Coverage.edge_pct cc)
          (Obs.Coverage.edge_pct cc -. Obs.Coverage.edge_pct cb)
          (Obs.Coverage.entropy cb) (Obs.Coverage.entropy cc)
          (Obs.Coverage.entropy cc -. Obs.Coverage.entropy cb)
          (Obs.Coverage.nodes_visited cb) (Obs.Coverage.nodes_visited cc)
    end;
    if Obs.Run.has_regression deltas then begin
      Printf.printf "regression detected\n";
      exit 3
    end
    else Printf.printf "within thresholds\n"
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two runs against regression thresholds; exits 3 on regression \
             (usable as a CI gate)")
    Term.(const go $ root_arg $ base $ cand $ reward_drop $ size_drop
          $ wall_factor $ attrib_flag $ coverage_flag)

let runs_profile_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN"
           ~doc:"Run id (under --root) or a run directory path.")
  in
  let top =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the hotspot table.")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"OUT.folded"
           ~doc:"Also write folded stacks (flamegraph.pl format) to \\$(docv).")
  in
  let go root id top folded =
    let info = Obs.Run.find ~root id in
    let trace = Obs.Run.trace_path info.Obs.Run.run_dir in
    if not (Sys.file_exists trace) then
      failwith
        (Printf.sprintf "run %s has no trace.jsonl" info.Obs.Run.run_id);
    let prof = Obs.Prof.of_events (Obs.Report.read_jsonl trace) in
    print_string
      (Obs.Prof.render ~top
         ~title:(Printf.sprintf "hotspots (%s)" info.Obs.Run.run_id)
         prof);
    match folded with
    | Some out ->
      Obs.Prof.write_folded ~path:out prof;
      Printf.printf "folded stacks written to %s\n" out
    | None -> ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Rebuild a hotspot profile (and optionally folded stacks) from a \
             persisted run's trace.jsonl")
    Term.(const go $ root_arg $ id $ top $ folded)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:"The run ledger: list, inspect and compare persisted runs")
    [ runs_list_cmd; runs_show_cmd; runs_compare_cmd; runs_profile_cmd ]

(* --- explain (policy introspection from the ledger) -------------------------- *)

module Attrib = Posetrl_rl.Attrib

(* The per-window action histograms behind the drift timeline: episode
   records chunked into [windows] consecutive groups, each folded into a
   selection-count array sized by the largest action id seen. *)
let drift_windows ~(windows : int) (episodes : Obs.Json.t list) :
    (int * int * int array) list =
  let actions_of r =
    match Obs.Runlog.field "actions" r with
    | Some (Obs.Json.Arr l) ->
      List.filter_map
        (function Obs.Json.Int a when a >= 0 -> Some a | _ -> None)
        l
    | _ -> []
  in
  let all = List.map actions_of episodes in
  let n_act = 1 + List.fold_left (List.fold_left max) 0 all in
  let n_ep = List.length all in
  if n_ep = 0 then []
  else begin
    let per = max 1 ((n_ep + windows - 1) / windows) in
    let rec chunk i = function
      | [] -> []
      | eps ->
        let rec take k = function
          | x :: rest when k > 0 ->
            let taken, rest = take (k - 1) rest in
            (x :: taken, rest)
          | rest -> ([], rest)
        in
        let group, rest = take per eps in
        let hist = Array.make n_act 0 in
        List.iter
          (List.iter (fun a -> hist.(a) <- hist.(a) + 1))
          group;
        (i * per, min n_ep ((i + 1) * per) - 1, hist) :: chunk (i + 1) rest
    in
    chunk 0 all
  end

let print_alert_line (a : Obs.Json.t) =
  Printf.printf "  [%s] %-16s step %-8s %s\n"
    (Option.value ~default:"?" (Obs.Runlog.str "severity" a))
    (Option.value ~default:"?" (Obs.Runlog.str "rule" a))
    (match Obs.Runlog.num "step" a with
     | Some s -> Printf.sprintf "%.0f" s
     | None -> "-")
    (Option.value ~default:"" (Obs.Runlog.str "message" a))

let explain_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN"
           ~doc:"Run id (under --root) or a run directory path.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the attribution table (actions ranked by total reward).")
  in
  let schedules =
    Arg.(value & opt int 5 & info [ "schedules" ] ~docv:"K"
           ~doc:"Top schedules (episodes ranked by reward) to break down per pass.")
  in
  let go root id top schedules =
    let info = Obs.Run.find ~root id in
    let m = info.Obs.Run.manifest in
    Printf.printf "run %s  [%s, %s]\n" info.Obs.Run.run_id
      (Option.value ~default:"?" (Obs.Runlog.str "kind" m))
      (Option.value ~default:"?" (Obs.Runlog.str "status" m));
    let records, dropped = Obs.Run.read_progress info in
    if dropped > 0 then
      Printf.printf "(%d torn progress line%s skipped)\n" dropped
        (if dropped = 1 then "" else "s");
    (* 1 — per-pass reward attribution (attrib.json, verified vs ledger) *)
    (match Obs.Run.read_attrib info with
     | None ->
       print_string
         "\nattribution: no data (run predates the attribution layer, or \
          attrib.json is unreadable)\n"
     | Some doc ->
       match Attrib.of_json doc with
       | None ->
         print_string
           "\nattribution: attrib.json is structurally invalid — no data\n"
       | Some at ->
         let n = Attrib.n_actions at in
         let labels = Array.make n "" in
         (match Obs.Runlog.field "actions" doc with
          | Some (Obs.Json.Arr entries) ->
            List.iter
              (fun e ->
                match Obs.Runlog.num "action" e, Obs.Runlog.str "passes" e with
                | Some a, Some p ->
                  let a = int_of_float a in
                  if a >= 0 && a < n then labels.(a) <- p
                | _ -> ())
              entries
          | _ -> ());
         Printf.printf "\nper-action reward attribution (%d steps):\n"
           (Attrib.steps at);
         let taken =
           List.init n Fun.id
           |> List.filter (fun a -> Attrib.count at a > 0)
           |> List.sort (fun a b ->
                  compare (Attrib.total_reward at b) (Attrib.total_reward at a))
         in
         let t =
           Tbl.create ~title:"reward attribution (attrib.json)"
             ~headers:[ "action"; "count"; "reward"; "mean"; "binsize";
                        "throughput"; "top pos"; "passes" ]
             ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right;
                       Tbl.Right; Tbl.Right; Tbl.Left ]
             ()
         in
         List.iteri
           (fun i a ->
             if i < top then
               Tbl.add_row t
                 [ string_of_int a;
                   string_of_int (Attrib.count at a);
                   Printf.sprintf "%.3f" (Attrib.total_reward at a);
                   Printf.sprintf "%.3f" (Attrib.mean_reward at a);
                   Printf.sprintf "%.3f" (Attrib.total_binsize at a);
                   Printf.sprintf "%.3f" (Attrib.total_throughput at a);
                   (match Attrib.top_position at a with
                    | Some p -> string_of_int p
                    | None -> "-");
                   labels.(a) ])
           taken;
         Tbl.print t;
         if List.length taken > top then
           Printf.printf "  (%d more actions with selections not shown)\n"
             (List.length taken - top);
         (* the recompute contract: the streaming table must equal the
            brute-force fold over the ledger's per-step rewards, float
            for float — CI greps the "matches" line *)
         let recomputed =
           Attrib.of_records ~n_actions:n ~max_pos:(Attrib.max_pos at) records
         in
         if Attrib.steps recomputed = 0 && Attrib.steps at > 0 then
           print_string
             "attribution check: episode records carry no per-step rewards \
              (pre-attribution ledger); recompute skipped\n"
         else if Attrib.equal at recomputed then
           Printf.printf
             "attribution check: table matches the episode stream exactly \
              (%d steps)\n"
             (Attrib.steps at)
         else
           print_string
             "attribution check: DIVERGENCE between attrib.json and the \
              episode stream\n");
    (* 2 — top schedules with their per-pass reward breakdown *)
    let episodes =
      List.filter (fun r -> Obs.Runlog.str "kind" r = Some "episode") records
    in
    let scored =
      List.filter_map
        (fun r -> Option.map (fun rew -> (rew, r)) (Obs.Runlog.num "reward" r))
        episodes
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    if scored <> [] then begin
      Printf.printf "\ntop %d schedules by episode reward:\n"
        (min schedules (List.length scored));
      List.iteri
        (fun i (rew, r) ->
          if i < schedules then begin
            let seq =
              match Obs.Runlog.field "actions" r with
              | Some (Obs.Json.Arr l) ->
                String.concat "->"
                  (List.filter_map
                     (function
                       | Obs.Json.Int a -> Some (string_of_int a)
                       | _ -> None)
                     l)
              | _ -> "-"
            in
            Printf.printf "  #%d  episode %s  reward %8.3f  seq %s\n" (i + 1)
              (match Obs.Runlog.num "episode" r with
               | Some e -> Printf.sprintf "%.0f" e
               | None -> "?")
              rew seq;
            List.iteri
              (fun p (a, sr, rb, rt) ->
                Printf.printf
                  "        pos %-2d action %-3d r %8.3f  (binsize %8.3f  \
                   throughput %8.3f)\n"
                  p a sr rb rt)
              (Attrib.episode_steps r)
          end)
        scored
    end;
    (* 3 — action-distribution drift timeline (KL between consecutive
       episode windows, same divergence the watchdog's drift rule uses) *)
    (match drift_windows ~windows:8 episodes with
     | [] | [ _ ] -> ()
     | (_ :: _ :: _) as ws ->
       Printf.printf "\naction-distribution drift (KL vs previous window):\n";
       let threshold = Obs.Health.default_config.Obs.Health.drift_kl in
       ignore
         (List.fold_left
            (fun prev (lo, hi, hist) ->
              (match prev with
               | None -> ()
               | Some prev_hist ->
                 let d = Obs.Health.kl hist prev_hist in
                 Printf.printf "  episodes %4d-%-4d  KL %.4f%s\n" lo hi d
                   (if d > threshold then "  << drift" else ""));
              Some hist)
            None ws));
    (* 4 — watchdog alerts *)
    (match Obs.Run.read_alerts info with
     | None ->
       print_string
         "\nalerts: not recorded by this run (predates the watchdog)\n"
     | Some ([], _) -> print_string "\nalerts: none\n"
     | Some (alerts, torn) ->
       Printf.printf "\nalerts (%d fired):\n" (List.length alerts);
       List.iter print_alert_line alerts;
       if torn > 0 then
         Printf.printf "  (%d torn alert line%s skipped)\n" torn
           (if torn = 1 then "" else "s"))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay a run's ledger into a policy-introspection report: the \
             per-action reward-attribution table (verified against the \
             episode stream), top schedules with per-pass reward breakdown, \
             the action-distribution drift timeline, and any watchdog alerts. \
             Degrades gracefully on runs predating these fields.")
    Term.(const go $ root_arg $ id $ top $ schedules)

(* --- coverage (decision-space coverage from the ledger) ---------------------- *)

let coverage_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN"
           ~doc:"Run id (under --root) or a run directory path.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the edge and transition tables.")
  in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT.dot"
           ~doc:"Write a heat-annotated ODG rendering to \\$(docv): visited \
                 edges colour-ramp grey to red by visit count, unvisited \
                 edges dashed (same layout as `posetrl odg --dot`).")
  in
  let go root id top dot =
    let info = Obs.Run.find ~root id in
    let m = info.Obs.Run.manifest in
    Printf.printf "run %s  [%s, %s]\n" info.Obs.Run.run_id
      (Option.value ~default:"?" (Obs.Runlog.str "kind" m))
      (Option.value ~default:"?" (Obs.Runlog.str "status" m));
    match Obs.Run.read_coverage info with
    | None ->
      print_string
        "coverage: no data (run predates the coverage layer, or \
         coverage.json is unreadable)\n"
    | Some doc ->
      match Obs.Coverage.of_json doc with
      | None ->
        print_string "coverage: coverage.json is structurally invalid — no data\n"
      | Some cov ->
        Printf.printf
          "\ndecision-space coverage (%d steps, %d episodes):\n\
          \  ODG edges visited   %d/%d (%.1f%%)\n\
          \  ODG nodes visited   %d/%d\n\
          \  action entropy      %.3f bits (max %.3f over %d actions)\n\
          \  state sketch        %d/%d buckets occupied\n"
          (Obs.Coverage.steps cov) (Obs.Coverage.episodes cov)
          (Obs.Coverage.edges_visited cov) (Obs.Coverage.edge_count cov)
          (Obs.Coverage.edge_pct cov)
          (Obs.Coverage.nodes_visited cov) (Obs.Coverage.node_count cov)
          (Obs.Coverage.entropy cov)
          (Float.log2 (float_of_int (Obs.Coverage.n_actions cov)))
          (Obs.Coverage.n_actions cov)
          (Obs.Coverage.sketch_occupied cov)
          (1 lsl Obs.Coverage.sketch_bits cov);
        (match Obs.Coverage.top_edges cov ~k:top with
         | [] -> print_string "no visited edges\n"
         | edges ->
           let t =
             Tbl.create ~title:"hottest ODG edges (coverage.json)"
               ~headers:[ "edge"; "visits"; "mean r"; "mean binsize";
                          "mean throughput" ]
               ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
               ()
           in
           List.iter
             (fun (u, v, count, r, rb, rt) ->
               let mean x = x /. float_of_int count in
               Tbl.add_row t
                 [ Printf.sprintf "%s -> %s" (Obs.Coverage.node_name cov u)
                     (Obs.Coverage.node_name cov v);
                   string_of_int count;
                   Printf.sprintf "%.3f" (mean r);
                   Printf.sprintf "%.3f" (mean rb);
                   Printf.sprintf "%.3f" (mean rt) ])
             edges;
           Tbl.print t);
        (match Obs.Coverage.top_transitions cov ~k:top with
         | [] -> ()
         | trans ->
           let t =
             Tbl.create ~title:"top action transitions"
               ~headers:[ "from"; "to"; "count" ]
               ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right ]
               ()
           in
           List.iter
             (fun (a, b, count) ->
               Tbl.add_row t
                 [ string_of_int a; string_of_int b; string_of_int count ])
             trans;
           Tbl.print t);
        (* the recompute contract, same shape as `posetrl explain`'s
           attribution check: the streaming table must equal the
           brute-force fold over the ledger — CI greps the line *)
        let records, dropped = Obs.Run.read_progress info in
        if dropped > 0 then
          Printf.printf "(%d torn progress line%s skipped)\n" dropped
            (if dropped = 1 then "" else "s");
        let recomputed =
          Obs.Coverage.of_records ~like:(Obs.Coverage.universe cov) records
        in
        if Obs.Coverage.steps recomputed = 0 && Obs.Coverage.steps cov > 0 then
          print_string
            "coverage check: episode records carry no step stream \
             (eval run or pre-attribution ledger); recompute skipped\n"
        else if Obs.Coverage.equal cov recomputed then
          Printf.printf
            "coverage check: table matches the step stream exactly (%d steps)\n"
            (Obs.Coverage.steps cov)
        else
          print_string
            "coverage check: DIVERGENCE between coverage.json and the \
             episode stream\n";
        (match dot with
         | Some out ->
           let oc = open_out out in
           output_string oc (Obs.Coverage.to_dot cov);
           close_out oc;
           Printf.printf "coverage heat dot written to %s\n" out
         | None -> ())
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Decision-space coverage report for a ledger run: ODG edge \
             coverage with per-edge mean rewards, action-transition \
             hot list, entropy and state-sketch occupancy (verified \
             against the episode stream), plus a heat-annotated ODG \
             dot export. Degrades gracefully on runs predating \
             coverage.json.")
    Term.(const go $ root_arg $ id $ top $ dot)

(* --- watch (live dashboard) -------------------------------------------------- *)

let watch_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN"
           ~doc:"Run id (under --root) or a run directory path. The run may \
                 not exist yet; watch waits for it.")
  in
  let interval =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECS"
           ~doc:"Redraw period.")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Render a single frame and exit (no polling, no screen \
                 clearing; exits 1 if the run does not exist).")
  in
  let go root id interval once =
    let interval = Float.max 0.05 interval in
    let clear () = print_string "\027[H\027[2J" in
    let frame (info : Obs.Run.info) =
      let records, dropped = Obs.Run.read_progress info in
      (* None = run predates the watchdog; the dashboard renders a
         placeholder row for it, not a blank or garbled line *)
      let alerts = Option.map fst (Obs.Run.read_alerts info) in
      let coverage = Obs.Run.read_coverage info in
      let serve = Obs.Run.read_serve info in
      Obs.Dashboard.render ~alerts ~coverage ~serve ~id:info.Obs.Run.run_id
        ~manifest:info.Obs.Run.manifest ~records ~dropped ()
    in
    let rec loop () =
      match Obs.Run.find ~root id with
      | exception Failure msg ->
        if once then begin
          Printf.printf "no run to watch: %s\n" msg;
          exit 1
        end
        else begin
          clear ();
          Printf.printf "waiting for run %s...\n(%s)\n%!" id msg;
          Unix.sleepf interval;
          loop ()
        end
      | info ->
        if once then print_string (frame info)
        else begin
          clear ();
          print_string (frame info);
          flush stdout;
          match Obs.Runlog.str "status" info.Obs.Run.manifest with
          | Some "running" ->
            Unix.sleepf interval;
            loop ()
          | status ->
            Printf.printf "\nrun %s is %s; watch done\n" info.Obs.Run.run_id
              (Option.value ~default:"finished" status)
        end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Live terminal dashboard for a ledger run: tails progress.jsonl \
             and redraws reward/epsilon/loss sparklines and the action \
             histogram until the run leaves 'running'")
    Term.(const go $ root_arg $ id $ interval $ once)

(* --- odg -------------------------------------------------------------------- *)

let odg_cmd =
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write a graphviz rendering to FILE.")
  in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"Critical-node degree threshold.") in
  let walks = Arg.(value & flag & info [ "walks" ] ~doc:"Print the derived sub-sequences.") in
  let go dot k walks =
    let g = Lazy.force O.Graph.default in
    Printf.printf "ODG: %d nodes, %d edges\n" (O.Graph.node_count g) (O.Graph.edge_count g);
    Printf.printf "critical nodes (k >= %d):\n" k;
    List.iter (fun (n, d) -> Printf.printf "  %-16s degree %d\n" n d)
      (O.Graph.critical_nodes ~k g);
    if walks then begin
      let ws = O.Walks.derive ~k g in
      Printf.printf "%d derived sub-sequences:\n" (List.length ws);
      List.iteri
        (fun i w -> Printf.printf "%2d | %s\n" (i + 1) (String.concat " " w))
        ws
    end;
    match dot with
    | Some path ->
      let oc = open_out path in
      output_string oc (O.Graph.to_dot ~k g);
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v (Cmd.info "odg" ~doc:"Inspect the Oz Dependence Graph")
    Term.(const go $ dot $ k $ walks)

(* --- list ------------------------------------------------------------------- *)

let list_cmd =
  let what =
    Arg.(value & pos 0 string "passes" & info [] ~docv:"WHAT"
           ~doc:"What to list: passes, benchmarks, oz.")
  in
  let go what =
    match what with
    | "passes" ->
      List.iter
        (fun (p : P.Pass.t) -> Printf.printf "%-28s %s\n" p.P.Pass.name p.P.Pass.description)
        P.Registry.all
    | "benchmarks" ->
      List.iter
        (fun s ->
          Printf.printf "%s:\n" s.W.Suites.suite_name;
          List.iter (fun (n, _) -> Printf.printf "  %s\n" n) s.W.Suites.programs)
        W.Suites.validation_suites
    | "oz" ->
      List.iter (fun p -> Printf.printf "-%s " p) P.Pipelines.oz_sequence;
      print_newline ()
    | w -> failwith ("unknown listing " ^ w)
  in
  Cmd.v (Cmd.info "list" ~doc:"List passes, benchmarks or the Oz sequence")
    Term.(const go $ what)

(* --- dump -------------------------------------------------------------------- *)

let dump_cmd =
  let program =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name (e.g. crc32) or path to a textual MiniIR file.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to \\$(docv) instead of stdout.")
  in
  let go program out =
    let text = Printer.module_to_string (load_program program) in
    match out with
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
    | None -> print_string text
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Print a bundled benchmark (or a parsed file) as MiniIR text — \
             the wire format `posetrl serve`'s POST /optimize accepts")
    Term.(const go $ program $ out)

(* --- serve (optimization-as-a-service daemon) -------------------------------- *)

let serve_cmd =
  let port =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"PORT"
           ~doc:"Listen on 127.0.0.1:\\$(docv) (0 picks a free port).")
  in
  let opt_routes =
    Arg.(value & flag & info [ "opt" ]
           ~doc:"Enable the optimization routes: POST /optimize (MiniIR text \
                 in, optimized IR + schedule + size/throughput deltas out) \
                 and POST /optimize/batch. Without this flag only the \
                 telemetry GET routes are served.")
  in
  let weights =
    Arg.(value & opt (some string) None & info [ "weights" ] ~docv:"FILE"
           ~doc:"Weights file saved by `posetrl train`; without it the daemon \
                 serves a fresh seed-0 policy (deterministic, untrained).")
  in
  let space =
    Arg.(value & opt string "odg" & info [ "space" ] ~doc:"Action space: odg or manual.")
  in
  let target =
    Arg.(value & opt string "x86" & info [ "target" ] ~doc:"x86 or aarch64.")
  in
  let cache_mb =
    Arg.(value & opt int 16 & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Byte bound of the IR-hash result cache (LRU beyond it).")
  in
  let queue =
    Arg.(value & opt int Posetrl_serve.Server.default_queue_cap
         & info [ "queue" ] ~docv:"N"
             ~doc:"Max cache-missing requests admitted per pump; beyond it \
                   clients get 429 + Retry-After (backpressure).")
  in
  let max_body_kb =
    Arg.(value & opt int 1024 & info [ "max-body-kb" ] ~docv:"KB"
           ~doc:"Reject POST bodies larger than \\$(docv) KiB with a 413.")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N"
           ~doc:"Exit after answering \\$(docv) requests (CI smoke hooks); \
                 default: serve until SIGINT/SIGTERM.")
  in
  let serve_sanitize =
    Arg.(value & opt string "ssa" & info [ "sanitize" ] ~docv:"LEVEL"
           ~doc:"Sanitizer level for admission and every rollout pass \
                 application: off, structural, ssa (default) or equiv \
                 (translation validation of each pass the policy applies).")
  in
  let go port opt_routes weights space target jobs cache_mb queue max_body_kb
      max_requests sanitize run_dir run_name trace metrics =
    let sanitize = sanitize_of_string sanitize in
    let actions = space_of_string space in
    let tgt = target_of_string target in
    let run =
      start_run ~run_dir ~run_name ~kind:"serve"
        ~meta:
          [ ("action_space", Obs.Json.Str space);
            ("target", Obs.Json.Str tgt.CG.Target.name);
            ("opt_routes", Obs.Json.Bool opt_routes);
            ("weights",
             match weights with Some w -> Obs.Json.Str w | None -> Obs.Json.Null) ]
    in
    let stop = ref false in
    let handle = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigint handle;
    Sys.set_signal Sys.sigterm handle;
    let started = Unix.gettimeofday () in
    with_obs ~trace ~metrics (fun () ->
        with_run run (fun () ->
            with_jobs ~jobs (fun pool ->
                let rng = Posetrl_support.Rng.create 0 in
                let agent =
                  Posetrl_rl.Dqn.create rng ~state_dim:C.Environment.state_dim
                    ~hidden:[ 128; 64 ]
                    ~n_actions:(O.Action_space.n_actions actions)
                in
                Option.iter (Posetrl_rl.Dqn.load_weights agent) weights;
                let engine =
                  Posetrl_serve.Engine.create
                    ~cache_bytes:(cache_mb * 1024 * 1024)
                    ~sanitize ?pool ~agent ~actions ~target:tgt ()
                in
                let srv = ref None in
                let health () =
                  let reqs =
                    match !srv with
                    | Some s -> Posetrl_serve.Server.requests s
                    | None -> 0
                  in
                  Obs.Json.Obj
                    [ ("status", Obs.Json.Str "running");
                      ("kind", Obs.Json.Str "serve");
                      ("opt_routes", Obs.Json.Bool opt_routes);
                      ("uptime_s",
                       Obs.Json.Float (Unix.gettimeofday () -. started));
                      ("requests", Obs.Json.Int reqs);
                      ("run",
                       match run with
                       | Some r -> Obs.Json.Str (Obs.Run.dir r)
                       | None -> Obs.Json.Null) ]
                in
                let telemetry = Obs.Httpd.telemetry_handler ~health () in
                let max_body = max_body_kb * 1024 in
                if opt_routes then begin
                  let s =
                    Posetrl_serve.Server.create ~max_body ~queue_cap:queue
                      ~telemetry ~port ~engine ()
                  in
                  srv := Some s;
                  Obs.Console.info
                    "optimization service on http://127.0.0.1:%d  \
                     (POST /optimize /optimize/batch; GET /metrics /healthz /serve)\n%!"
                    (Posetrl_serve.Server.port s);
                  let last_snapshot = ref 0.0 in
                  let snapshot () =
                    Option.iter
                      (fun r ->
                        Obs.Run.write_serve r (Posetrl_serve.Server.stats_json s))
                      run
                  in
                  Fun.protect
                    ~finally:(fun () ->
                      snapshot ();
                      Posetrl_serve.Server.close s)
                    (fun () ->
                      let done_ () =
                        !stop
                        || match max_requests with
                           | Some n -> Posetrl_serve.Server.requests s >= n
                           | None -> false
                      in
                      while not (done_ ()) do
                        Posetrl_serve.Server.pump s;
                        let now = Unix.gettimeofday () in
                        if now -. !last_snapshot > 1.0 then begin
                          last_snapshot := now;
                          snapshot ()
                        end;
                        (try Unix.sleepf 0.005
                         with Unix.Unix_error (Unix.EINTR, _, _) -> ())
                      done);
                  let stats = Posetrl_serve.Server.stats_json s in
                  [ ("requests",
                     Obs.Json.Int (Posetrl_serve.Server.requests s));
                    ("stats", stats) ]
                end
                else begin
                  let s = Obs.Httpd.create ~max_body ~port ~handler:telemetry () in
                  Obs.Console.info
                    "telemetry on http://127.0.0.1:%d  (GET /metrics /healthz \
                     /alerts /runs)\n%!"
                    (Obs.Httpd.port s);
                  Fun.protect
                    ~finally:(fun () -> Obs.Httpd.close s)
                    (fun () ->
                      while not !stop do
                        Obs.Httpd.pump s;
                        (try Unix.sleepf 0.005
                         with Unix.Unix_error (Unix.EINTR, _, _) -> ())
                      done);
                  [ ("requests", Obs.Json.Int 0) ]
                end)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Optimization-as-a-service daemon: POST MiniIR to /optimize and \
             get back optimized IR, the predicted pass schedule and \
             size/throughput deltas as JSON, with an IR-hash LRU result \
             cache, admission sanitizing (400 + lint diagnostics), bounded \
             queueing (429 + Retry-After) and batched policy inference \
             across concurrent requests")
    Term.(const go $ port $ opt_routes $ weights $ space $ target $ jobs_arg
          $ cache_mb $ queue $ max_body_kb $ max_requests $ serve_sanitize
          $ run_dir_arg
          $ run_name_arg $ trace_arg $ metrics_arg)

(* --- lint -------------------------------------------------------------------- *)

(* --- validate --------------------------------------------------------------

   Translation-validate pipelines over the bundled suite (or one
   program): every pass application is checked at the requested
   sanitizer level (default equiv — differential simulation against the
   pass input). The CI acceptance gate for the Equiv tier. *)

let validate_cmd =
  let program =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name or path to a textual MiniIR file \
                 (default: every program of the bundled suites).")
  in
  let level =
    Arg.(value & opt string "all" & info [ "O"; "level" ] ~docv:"LEVEL"
           ~doc:"Pipeline level to validate (O0 O1 O2 O3 Os Oz) or `all`.")
  in
  let v_sanitize =
    Arg.(value & opt string "equiv" & info [ "sanitize" ] ~docv:"LEVEL"
           ~doc:"Sanitizer level to validate at (default equiv).")
  in
  let go program level v_sanitize trace metrics =
    let sanitize = sanitize_of_string v_sanitize in
    let levels =
      if String.equal level "all" then P.Pipelines.[ O0; O1; O2; O3; Os; Oz ]
      else
        match P.Pipelines.level_of_string level with
        | Some l -> [ l ]
        | None -> failwith ("unknown level " ^ level)
    in
    let programs =
      match program with
      | Some p -> [ (p, fun () -> load_program p) ]
      | None ->
        List.concat_map (fun s -> s.W.Suites.programs) W.Suites.validation_suites
    in
    let repro_dir = repro_dir_of_run None in
    let failures = ref 0 and checked = ref 0 in
    with_obs ~trace ~metrics (fun () ->
        List.iter
          (fun l ->
            List.iter
              (fun (name, mk) ->
                incr checked;
                match
                  P.Pass_manager.run_level ~sanitize ~repro_dir l (mk ())
                with
                | _ -> ()
                | exception A.Sanitize.Failed { pass; errors; repro_path } ->
                  incr failures;
                  Printf.printf "FAIL  %-22s %-3s pass %s (%d error%s)%s\n%!"
                    name
                    (P.Pipelines.level_to_string l)
                    pass (List.length errors)
                    (if List.length errors = 1 then "" else "s")
                    (match repro_path with
                     | Some p -> "  repro " ^ p
                     | None -> ""))
              programs;
            Printf.printf "  -%s: %d program(s) validated\n%!"
              (P.Pipelines.level_to_string l)
              (List.length programs))
          levels);
    Printf.printf "validate: %d pipeline run(s) at --sanitize %s, %d failure(s)\n"
      !checked
      (A.Sanitize.level_to_string sanitize)
      !failures;
    if !failures > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Translation-validate optimization pipelines over the bundled \
             suite: every pass application is differentially simulated \
             against its input (--sanitize equiv, the default) or checked \
             at a lower sanitizer tier")
    Term.(const go $ program $ level $ v_sanitize $ trace_arg $ metrics_arg)

let lint_cmd =
  let program =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Benchmark name or path to a textual MiniIR file \
                 (omit with --suite).")
  in
  let suite =
    Arg.(value & flag & info [ "suite" ]
           ~doc:"Lint every program of the bundled validation suites.")
  in
  let level =
    Arg.(value & opt (some string) None & info [ "O"; "level" ] ~docv:"LEVEL"
           ~doc:"Run pipeline \\$(docv) (O0 O1 O2 O3 Os Oz) before linting — \
                 `--suite -O Oz --fail-on error` is the CI gate over the \
                 optimized workloads.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the findings as a JSON document instead of a table.")
  in
  let fail_on =
    Arg.(value & opt (some string) None & info [ "fail-on" ] ~docv:"SEVERITY"
           ~doc:"Exit 4 when any finding of severity \\$(docv) (error, \
                 warning or info) or higher is present — the CI gate.")
  in
  let go program suite level json fail_on trace metrics =
    let threshold =
      Option.map
        (fun s ->
          match A.Lint.severity_of_string s with
          | Ok sev -> sev
          | Error e -> failwith e)
        fail_on
    in
    let opt_level =
      Option.map
        (fun l ->
          match P.Pipelines.level_of_string l with
          | Some l -> l
          | None -> failwith ("unknown level " ^ l))
        level
    in
    let programs =
      if suite then
        List.concat_map (fun s -> s.W.Suites.programs) W.Suites.validation_suites
      else
        match program with
        | Some p -> [ (p, fun () -> load_program p) ]
        | None -> failwith "lint: give a PROGRAM or --suite"
    in
    let reports =
      with_obs ~trace ~metrics (fun () ->
          List.map
            (fun (name, mk) ->
              let m = mk () in
              let m =
                match opt_level with
                | Some l -> P.Pass_manager.run_level l m
                | None -> m
              in
              (name, A.Lint.lint_module m))
            programs)
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("kind", Obs.Json.Str "lint-run");
                ("level",
                 match level with
                 | Some l -> Obs.Json.Str l
                 | None -> Obs.Json.Null);
                ("modules",
                 Obs.Json.Arr
                   (List.map (fun (n, fs) -> A.Lint.to_json ~name:n fs) reports)) ]))
    else begin
      let t =
        Tbl.create ~title:"posetrl lint"
          ~headers:[ "module"; "severity"; "rule"; "location"; "message" ]
          ~aligns:[ Tbl.Left; Tbl.Left; Tbl.Left; Tbl.Left; Tbl.Left ]
          ()
      in
      let total = ref 0 in
      List.iter
        (fun (name, fs) ->
          List.iter
            (fun (f : A.Lint.finding) ->
              incr total;
              Tbl.add_row t
                [ name;
                  A.Lint.severity_to_string f.A.Lint.severity;
                  f.A.Lint.rule;
                  (f.A.Lint.func
                   ^ match f.A.Lint.block with Some b -> "/" ^ b | None -> "");
                  f.A.Lint.message ])
            fs)
        reports;
      if !total > 0 then Tbl.print t;
      let all = List.concat_map snd reports in
      Printf.printf "%d module%s linted: %d error%s, %d warning%s, %d info\n"
        (List.length reports)
        (if List.length reports = 1 then "" else "s")
        (A.Lint.count A.Lint.Error all)
        (if A.Lint.count A.Lint.Error all = 1 then "" else "s")
        (A.Lint.count A.Lint.Warning all)
        (if A.Lint.count A.Lint.Warning all = 1 then "" else "s")
        (A.Lint.count A.Lint.Info all)
    end;
    match threshold with
    | Some sev when A.Lint.reaches sev (List.concat_map snd reports) ->
      Printf.eprintf "lint: findings at or above --fail-on %s\n"
        (A.Lint.severity_to_string sev);
      exit 4
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static findings over a module or the bundled suites: verifier \
             and SSA dominance errors, attribute contradictions, dead \
             stores, unreachable blocks, dead code")
    Term.(const go $ program $ suite $ level $ json $ fail_on $ trace_arg
          $ metrics_arg)

let () =
  let doc = "POSET-RL: phase ordering for size and execution time with RL" in
  let info = Cmd.info "posetrl" ~version:"1.0.0" ~doc in
  match
    Cmd.eval ~catch:false
      (Cmd.group info
         [ opt_cmd; run_cmd; train_cmd; eval_cmd; serve_cmd; lint_cmd;
           validate_cmd; report_cmd; profile_cmd; runs_cmd; explain_cmd;
           coverage_cmd; watch_cmd; odg_cmd; list_cmd; dump_cmd ])
  with
  | code -> exit code
  | exception (Failure msg | Sys_error msg) ->
    Printf.eprintf "posetrl: error: %s\n" msg;
    exit 1
