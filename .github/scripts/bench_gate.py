#!/usr/bin/env python3
"""Perf-regression gate for the benched subsystems.

Usage: bench_gate.py BASELINE.json CANDIDATE.json [CANDIDATE2.json ...]

Compares the `gate` section of freshly-benched BENCH_*.json files
against the committed baseline and exits 2 if a gated series regressed
by more than the tolerance (BENCH_GATE_TOL, default 0.25 = 25%). The
document `kind` selects which series are enforced; all files on one
invocation must share a kind (one gate run per subsystem).

The gated values are *calibration-relative*: each kernel's ns/run is
divided by the ns/run of an untiled 4k dot product benched in the same
process, so raw machine speed mostly cancels and the committed baseline
is meaningful on a different runner. Sync-bound rows (pool dispatch)
are still noisy, so the workflow benches more than once and this script
takes the best (minimum) candidate value per series before comparing.
"""

import json
import os
import sys

# One declarative entry per benched subsystem: the document kind, the
# gated series (everything else in `gate` is printed for context) and
# what the gate protects. Adding a subsystem = adding a row here plus
# its bench section and committed BENCH_*.json baseline.
GATE_TABLE = [
    {
        "kind": "bench-parallel",
        "gated": ("gemm_rel", "pool_dispatch_rel"),
        "why": "pooled gemm arithmetic and pool dispatch overhead",
    },
    {
        "kind": "bench-analysis",
        "gated": ("liveness_rel", "sanitize_rel", "lint_rel",
                  "alias_rel", "absint_rel", "equiv_rel"),
        "why": "static-analysis passes on the sanitizer/lint hot path, "
               "plus the alias/value-range analyses and the bounded "
               "translation-validation check of the equiv tier",
    },
    {
        "kind": "bench-prof",
        "gated": ("span_disabled_rel", "counter_inc_rel", "hist_observe_rel"),
        "why": "profiling-disabled overhead: span no-sink fast path and "
               "the counter/histogram updates every run pays",
    },
    {
        "kind": "bench-health",
        "gated": ("watchdog_tick_rel", "attrib_observe_rel"),
        "why": "watchdog rule pass (per trainer tick) and streaming "
               "attribution update (per env step)",
    },
    {
        "kind": "bench-coverage",
        "gated": ("coverage_observe_rel",),
        "why": "streaming decision-space coverage fold (per env step)",
    },
    {
        "kind": "bench-serve",
        "gated": ("serve_cold_cost_rel", "serve_hot_cost_rel", "serve_hot_p99_rel"),
        "why": "serve daemon per-request cost: cold (admission + batched "
               "rollout) and hot (IR-hash cache hit) paths of POST /optimize",
    },
]

GATED = {row["kind"]: row["gated"] for row in GATE_TABLE}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    kind = doc.get("kind")
    if kind not in GATED or "gate" not in doc:
        sys.exit(f"bench_gate: {path} is not a gated BENCH_*.json document")
    return kind, doc["gate"]


def main(argv):
    if len(argv) < 3:
        sys.exit(f"usage: {argv[0]} BASELINE.json CANDIDATE.json [CANDIDATE.json ...]")
    tol = float(os.environ.get("BENCH_GATE_TOL", "0.25"))
    kind, base = load(argv[1])
    cands = []
    for p in argv[2:]:
        k, g = load(p)
        if k != kind:
            sys.exit(f"bench_gate: {p} is {k}, baseline is {kind}")
        cands.append(g)
    gated = GATED[kind]

    regressed = False
    print(f"bench gate [{kind}]: {len(cands)} candidate run(s), tolerance {tol:.0%}")
    for key in sorted(base):
        if key == "calib_ns":
            continue
        b = base[key]
        c = min(x[key] for x in cands)
        ratio = c / b if b > 0 else float("inf")
        if key in gated:
            bad = ratio > 1.0 + tol
            regressed |= bad
            status = "REGRESSED" if bad else "ok"
        else:
            status = "(context)"
        print(f"  {key:20s} base {b:10.3f}  cand {c:10.3f}  ratio {ratio:5.2f}  {status}")

    if regressed:
        print("bench gate: regression detected")
        return 2
    print("bench gate: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
