(** Profiling: hotspot attribution, flamegraph export, GC/allocation and
    pool-utilization telemetry (DESIGN.md §11).

    The streaming collector folds a span-event stream into per-span-name
    aggregates and a per-domain stack reconstruction, either live (as an
    installed sink) or by replaying a ledger's [trace.jsonl]. Self-time
    is taken from the events themselves — the span layer computes
    [dur - Σ direct children] online — so a profile is a single pass
    over the stream. *)

type t
(** A streaming profile collector. Fed from the span emit path (already
    serialized) or a single-threaded replay — not itself thread-safe. *)

val create : unit -> t

val add : t -> Event.t -> unit
(** Fold one event into the profile. Events must arrive in completion
    order per emitting domain (the order sinks and traces provide). *)

val sink : t -> Sink.t
(** A span sink feeding the collector; [close] is a no-op. *)

val of_events : Event.t list -> t
(** Fold an event list (e.g. [Report.read_jsonl] output) into a fresh
    collector. *)

val collect : ?alloc:bool -> (unit -> 'a) -> 'a * t
(** Run a workload with a collector sink installed and return its result
    plus the profile. [alloc] (default true) switches per-span
    allocation attribution on for the duration ({!Span.set_alloc_attrs}). *)

(** {1 Hotspots} *)

type entry = {
  e_name : string;
  e_count : int;
  e_total : float;   (** Σ dur, seconds *)
  e_self : float;    (** Σ self, seconds *)
  e_alloc_b : float; (** Σ per-event self-allocated bytes (0 unless
                         allocation attribution was on) *)
  e_p50 : float;     (** median per-event self time, seconds *)
  e_p99 : float;
}

val hotspots : t -> entry list
(** Every span name, ranked by self-time descending (name-ordered tie
    break). p50/p99 come from a capped reservoir of per-event samples. *)

val events : t -> int
val total_self : t -> float
val total_alloc : t -> float
val self_of : t -> string -> float

val render : ?top:int -> ?title:string -> t -> string
(** Ranked hotspot table (default top 15) with self%% and cumulative%%
    columns, followed by a totals line. *)

val render_compare : ?top:int -> jobs:int -> t -> t -> string
(** [render_compare ~jobs seq par] tables per-span self-time of a jobs-1
    run against a jobs-[jobs] run over the union of both runs' top
    spans, plus a totals row. *)

(** {1 Folded-stack export} *)

val folded : t -> string
(** flamegraph.pl-compatible folded stacks: one
    ["frame;frame;frame <n>"] line per distinct stack, where [<n>] is
    integer microseconds of self-time (zero-µs stacks dropped), sorted
    for stable output. When events carry more than one domain id, each
    stack is rooted at a ["main"]/["domain-N"] frame. *)

val write_folded : path:string -> t -> unit

(** {1 GC / allocation telemetry} *)

type gc_mark
(** A point-in-time GC snapshot ([Gc.quick_stat] — no heap walk). *)

val gc_mark : unit -> gc_mark

type gc_delta = {
  d_elapsed_s : float;
  d_alloc_b : float;     (** bytes allocated on this domain since the mark *)
  d_minor : int;
  d_major : int;
  d_promoted_w : float;
  d_heap_w : int;        (** major heap words at delta time (not a delta) *)
}

val gc_delta : gc_mark -> gc_delta
val render_gc : gc_delta -> string

type gc_sample = {
  gs_minor : int;
  gs_major : int;
  gs_promoted_w : float;
  gs_heap_w : int;
  gs_alloc_mb_s : float; (** allocation rate since the previous sample *)
}

val sample_gc : ?r:Metrics.t -> unit -> gc_sample
(** Sample [Gc.quick_stat] into the [posetrl.gc.*] gauges
    (minor/major collections, promoted words, heap words, allocation
    rate in MB/s since the previous sample on the same registry) and
    return the reading. Called on the trainer tick; single-domain. *)

(** {1 Pool utilization} *)

type pool_util = {
  pu_jobs : int;
  pu_tasks : int;
  pu_busy_frac : float;  (** Σ task dur / (jobs × batch wall) *)
  pu_queue_mean : float; (** mean seconds a task waited before starting *)
  pu_dispatch_s : float; (** mean queue wait of the first wave — the
                             min(jobs, n) earliest-starting tasks, which
                             waited on dispatch alone *)
}

val pool_util :
  jobs:int -> t0:float -> t1:float -> Posetrl_support.Pool.timing array ->
  pool_util
(** Pure aggregation of a [Pool.map_timed] batch: [t0]/[t1] bracket the
    batch on the same clock as the timings ([Unix.gettimeofday]). *)

val note_pool_batch :
  ?r:Metrics.t ->
  jobs:int -> t0:float -> t1:float -> Posetrl_support.Pool.timing array ->
  pool_util
(** {!pool_util}, also published to metrics: busy-fraction and
    queue-wait gauges plus the [posetrl.pool.dispatch_s] per-task
    queue-wait histogram. *)

val render_pool : pool_util -> string
