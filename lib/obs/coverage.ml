(* Decision-space coverage over the ODG (which part of the graph the
   policy actually explores, not just how well it scores).

   The trainer feeds every environment step's (action, position, reward
   split) into a table keyed by a fixed *universe* — the ODG nodes, the
   ODG edge set and each action's pass path mapped to node indices
   (built by [Posetrl_odg.Action_space.coverage_universe]; this module
   takes plain arrays so the obs layer keeps its no-odg dependency).
   Per step the table credits node visits along the action's path, the
   intra-path ODG edges plus the junction edge from the previous
   action's last node, the action×action transition matrix, and the
   cumulative action histogram that drives the Shannon entropy series.

   Everything except the state sketch is a pure fold over the in-order
   step stream, so the table is byte-deterministic per seed — including
   under the domain pool (DESIGN.md §9) — and [of_records] recomputes
   it float-exactly from the run ledger's episode/tick records, which
   the tests hold equal to the streaming table. The state sketch
   (seeded sign-projection buckets over the IR2Vec embedding) is
   jobs-deterministic too, but states are not persisted in the ledger,
   so it is excluded from [equal] and checked via the --jobs 1/4
   coverage.json byte-compare instead.

   Metric exposure is opt-in per table ([registry]): the trainer's
   table publishes posetrl.coverage.* gauges on [sample]; recomputed
   tables (tests, `posetrl coverage`) stay silent. *)

module Rng = Posetrl_support.Rng

type universe = {
  nodes : string array;
  edges : (int * int) array;
  action_paths : int array array;
}

type edge_cell = {
  mutable e_count : int;
  mutable e_reward : float;
  mutable e_binsize : float;
  mutable e_throughput : float;
}

type metric_handles = {
  m_edge_pct : Metrics.gauge;
  m_entropy : Metrics.gauge;
  m_edges_visited : Metrics.gauge;
  m_nodes_visited : Metrics.gauge;
}

type t = {
  universe : universe;
  n_actions : int;
  node_counts : int array;
  edge_cells : edge_cell array;
  edge_index : (int * int, int) Hashtbl.t;
  transitions : int array array; (* prev action × next action *)
  action_counts : int array;
  mutable steps : int;
  mutable episodes : int;
  mutable prev_action : int; (* -1 at episode boundaries *)
  mutable series_rev : (int * float * float) list; (* (step, edge%, entropy) *)
  sketch_bits : int;
  sketch_seed : int;
  state_dim : int;
  proj : float array array; (* sketch_bits × state_dim, seeded *)
  sketch : int array; (* 2^sketch_bits bucket counts *)
  metrics : metric_handles option;
}

let fresh_edge_cell () =
  { e_count = 0; e_reward = 0.0; e_binsize = 0.0; e_throughput = 0.0 }

let create ?registry ?(sketch_bits = 6) ?(sketch_seed = 9461)
    ?(state_dim = 300) (u : universe) : t =
  let n_nodes = Array.length u.nodes in
  let n_actions = Array.length u.action_paths in
  if n_actions = 0 then invalid_arg "Coverage.create: empty action set";
  Array.iter
    (fun (a, b) ->
      if a < 0 || a >= n_nodes || b < 0 || b >= n_nodes then
        invalid_arg "Coverage.create: edge endpoint out of range")
    u.edges;
  Array.iter
    (Array.iter (fun i ->
         if i < 0 || i >= n_nodes then
           invalid_arg "Coverage.create: action path node out of range"))
    u.action_paths;
  let sketch_bits = max 1 (min 12 sketch_bits) in
  let state_dim = max 1 state_dim in
  let edge_index = Hashtbl.create (max 16 (2 * Array.length u.edges)) in
  Array.iteri
    (fun i e -> if not (Hashtbl.mem edge_index e) then Hashtbl.add edge_index e i)
    u.edges;
  (* fixed seeded projection, filled in row-major order so the sketch
     is identical for any two tables built with the same seed *)
  let rng = Rng.create sketch_seed in
  let proj = Array.make_matrix sketch_bits state_dim 0.0 in
  for i = 0 to sketch_bits - 1 do
    for d = 0 to state_dim - 1 do
      proj.(i).(d) <- Rng.normal rng
    done
  done;
  let metrics =
    Option.map
      (fun r ->
        { m_edge_pct = Metrics.gauge ~r "posetrl.coverage.edge_pct";
          m_entropy = Metrics.gauge ~r "posetrl.coverage.entropy_bits";
          m_edges_visited = Metrics.gauge ~r "posetrl.coverage.edges_visited";
          m_nodes_visited = Metrics.gauge ~r "posetrl.coverage.nodes_visited" })
      registry
  in
  { universe = u;
    n_actions;
    node_counts = Array.make n_nodes 0;
    edge_cells = Array.init (Array.length u.edges) (fun _ -> fresh_edge_cell ());
    edge_index;
    transitions = Array.make_matrix n_actions n_actions 0;
    action_counts = Array.make n_actions 0;
    steps = 0;
    episodes = 0;
    prev_action = -1;
    series_rev = [];
    sketch_bits;
    sketch_seed;
    state_dim;
    proj;
    sketch = Array.make (1 lsl sketch_bits) 0;
    metrics }

let universe (t : t) = t.universe
let n_actions (t : t) = t.n_actions
let steps (t : t) = t.steps
let episodes (t : t) = t.episodes
let node_count (t : t) = Array.length t.universe.nodes
let edge_count (t : t) = Array.length t.universe.edges
let node_name (t : t) (i : int) = t.universe.nodes.(i)
let node_visits (t : t) (i : int) = t.node_counts.(i)
let action_count (t : t) (a : int) = t.action_counts.(a)
let transition (t : t) ~(from : int) ~(to_ : int) = t.transitions.(from).(to_)

let nodes_visited (t : t) =
  Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 t.node_counts

let edges_visited (t : t) =
  Array.fold_left
    (fun acc c -> if c.e_count > 0 then acc + 1 else acc)
    0 t.edge_cells

let edge_pct (t : t) =
  let total = Array.length t.universe.edges in
  if total = 0 then 0.0
  else 100.0 *. float_of_int (edges_visited t) /. float_of_int total

(* Shannon entropy (bits) of the cumulative action distribution: log2 34
   ≈ 5.09 for a uniform policy over the ODG space, → 0 on collapse. *)
let entropy (t : t) =
  if t.steps = 0 then 0.0
  else begin
    let total = float_of_int t.steps in
    Array.fold_left
      (fun acc n ->
        if n = 0 then acc
        else begin
          let p = float_of_int n /. total in
          acc -. (p *. Float.log2 p)
        end)
      0.0 t.action_counts
  end

let credit_edge (t : t) u v ~reward ~r_binsize ~r_throughput =
  match Hashtbl.find_opt t.edge_index (u, v) with
  | None -> () (* consecutive passes that are not an ODG edge *)
  | Some i ->
    let c = t.edge_cells.(i) in
    c.e_count <- c.e_count + 1;
    c.e_reward <- c.e_reward +. reward;
    c.e_binsize <- c.e_binsize +. r_binsize;
    c.e_throughput <- c.e_throughput +. r_throughput

let observe (t : t) ~(action : int) ~(pos : int) ~(reward : float)
    ~(r_binsize : float) ~(r_throughput : float) : unit =
  if action < 0 || action >= t.n_actions then
    invalid_arg "Coverage.observe: action out of range";
  if pos = 0 then begin
    t.prev_action <- -1;
    t.episodes <- t.episodes + 1
  end;
  let path = t.universe.action_paths.(action) in
  if t.prev_action >= 0 then begin
    t.transitions.(t.prev_action).(action) <-
      t.transitions.(t.prev_action).(action) + 1;
    (* junction edge: the previous sub-sequence's last pass into this
       sub-sequence's first pass, when that hop exists in the ODG *)
    let prev_path = t.universe.action_paths.(t.prev_action) in
    if Array.length prev_path > 0 && Array.length path > 0 then
      credit_edge t
        prev_path.(Array.length prev_path - 1)
        path.(0) ~reward ~r_binsize ~r_throughput
  end;
  t.action_counts.(action) <- t.action_counts.(action) + 1;
  Array.iter (fun n -> t.node_counts.(n) <- t.node_counts.(n) + 1) path;
  for i = 0 to Array.length path - 2 do
    credit_edge t path.(i) path.(i + 1) ~reward ~r_binsize ~r_throughput
  done;
  t.prev_action <- action;
  t.steps <- t.steps + 1

(* Bucketed state-visitation sketch: the sign pattern of [sketch_bits]
   fixed random projections of the (pre-action) IR2Vec embedding picks
   one of 2^bits buckets. Same seed + same step stream → same sketch. *)
let observe_state (t : t) (state : float array) : unit =
  let d = min t.state_dim (Array.length state) in
  let idx = ref 0 in
  for i = 0 to t.sketch_bits - 1 do
    let row = t.proj.(i) in
    let dot = ref 0.0 in
    for j = 0 to d - 1 do
      dot := !dot +. (row.(j) *. state.(j))
    done;
    if !dot >= 0.0 then idx := !idx lor (1 lsl i)
  done;
  t.sketch.(!idx) <- t.sketch.(!idx) + 1

let sketch_bits (t : t) = t.sketch_bits
let sketch_buckets (t : t) = Array.copy t.sketch

let sketch_occupied (t : t) =
  Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 t.sketch

let sample (t : t) ~(step : int) : unit =
  let pct = edge_pct t in
  let ent = entropy t in
  t.series_rev <- (step, pct, ent) :: t.series_rev;
  match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.set m.m_edge_pct pct;
    Metrics.set m.m_entropy ent;
    Metrics.set m.m_edges_visited (float_of_int (edges_visited t));
    Metrics.set m.m_nodes_visited (float_of_int (nodes_visited t))

let series (t : t) = List.rev t.series_rev

(* Ranked tables for the CLI; ties break on universe index so the
   ordering is deterministic. *)
let top_edges (t : t) ~(k : int) :
    (int * int * int * float * float * float) list =
  Array.to_list (Array.mapi (fun i c -> (i, c)) t.edge_cells)
  |> List.filter (fun (_, c) -> c.e_count > 0)
  |> List.sort (fun (i, a) (j, b) ->
         if a.e_count <> b.e_count then compare b.e_count a.e_count
         else compare i j)
  |> List.filteri (fun rank _ -> rank < k)
  |> List.map (fun (i, c) ->
         let u, v = t.universe.edges.(i) in
         (u, v, c.e_count, c.e_reward, c.e_binsize, c.e_throughput))

let top_transitions (t : t) ~(k : int) : (int * int * int) list =
  let xs = ref [] in
  for i = t.n_actions - 1 downto 0 do
    for j = t.n_actions - 1 downto 0 do
      if t.transitions.(i).(j) > 0 then
        xs := (i, j, t.transitions.(i).(j)) :: !xs
    done
  done;
  !xs
  |> List.sort (fun (i1, j1, a) (i2, j2, b) ->
         if a <> b then compare b a else compare (i1, j1) (i2, j2))
  |> List.filteri (fun rank _ -> rank < k)

(* Exact structural equality over everything recomputable from the run
   ledger — float-for-float, not approximate. The sketch (and its
   projection) is deliberately excluded: states are not persisted, so a
   ledger recompute cannot rebuild it; its determinism is covered by
   the --jobs 1/4 coverage.json byte-compare. [prev_action] is
   mid-stream cursor state, not a result, and is also excluded so a
   JSON round-trip compares equal. *)
let equal (a : t) (b : t) : bool =
  a.n_actions = b.n_actions
  && a.universe.nodes = b.universe.nodes
  && a.universe.edges = b.universe.edges
  && a.universe.action_paths = b.universe.action_paths
  && a.steps = b.steps && a.episodes = b.episodes
  && a.node_counts = b.node_counts
  && a.action_counts = b.action_counts
  && a.transitions = b.transitions
  && Array.for_all2
       (fun (x : edge_cell) (y : edge_cell) ->
         x.e_count = y.e_count
         && Float.equal x.e_reward y.e_reward
         && Float.equal x.e_binsize y.e_binsize
         && Float.equal x.e_throughput y.e_throughput)
       a.edge_cells b.edge_cells
  && List.length a.series_rev = List.length b.series_rev
  && List.for_all2
       (fun (s1, p1, e1) (s2, p2, e2) ->
         s1 = s2 && Float.equal p1 p2 && Float.equal e1 e2)
       a.series_rev b.series_rev

(* --- persistence (coverage.json) ----------------------------------------- *)

let to_json (t : t) : Json.t =
  let open Json in
  let ints xs = Arr (Array.to_list (Array.map (fun n -> Int n) xs)) in
  Obj
    [ ("kind", Str "coverage");
      ("n_actions", Int t.n_actions);
      ("steps", Int t.steps);
      ("episodes", Int t.episodes);
      ("edge_pct", Float (edge_pct t));
      ("entropy_bits", Float (entropy t));
      ("nodes_visited", Int (nodes_visited t));
      ("edges_visited", Int (edges_visited t));
      ("universe",
       Obj
         [ ("nodes",
            Arr (Array.to_list (Array.map (fun n -> Str n) t.universe.nodes)));
           ("edges",
            Arr
              (Array.to_list
                 (Array.map (fun (u, v) -> Arr [ Int u; Int v ]) t.universe.edges)));
           ("action_paths",
            Arr (Array.to_list (Array.map (fun p -> ints p) t.universe.action_paths)))
         ]);
      ("node_counts", ints t.node_counts);
      ("action_counts", ints t.action_counts);
      ("edges",
       Arr
         (List.init (Array.length t.edge_cells) (fun i ->
              let u, v = t.universe.edges.(i) in
              let c = t.edge_cells.(i) in
              Obj
                [ ("u", Int u);
                  ("v", Int v);
                  ("count", Int c.e_count);
                  ("reward_total", Float c.e_reward);
                  ("r_binsize_total", Float c.e_binsize);
                  ("r_throughput_total", Float c.e_throughput) ])));
      ("transitions", Arr (Array.to_list (Array.map (fun row -> ints row) t.transitions)));
      ("series",
       Arr
         (List.map
            (fun (s, pct, ent) ->
              Obj [ ("step", Int s); ("edge_pct", Float pct); ("entropy", Float ent) ])
            (series t)));
      ("sketch",
       Obj
         [ ("bits", Int t.sketch_bits);
           ("seed", Int t.sketch_seed);
           ("state_dim", Int t.state_dim);
           ("buckets", ints t.sketch) ]) ]

(* Robust reader: anything structurally off yields [None], never an
   exception — coverage.json is ledger data and may be torn or from a
   different version. *)
let of_json (doc : Json.t) : t option =
  let open Json in
  let int_of = function
    | Int i -> Some i
    | Float f -> Some (int_of_float f)
    | _ -> None
  in
  let float_of = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    | Null -> Some Float.nan (* non-finite floats serialize as null *)
    | _ -> None
  in
  let member k j = Runlog.field k j in
  let int_array = function
    | Some (Arr xs) ->
      let out = List.filter_map int_of xs in
      if List.length out = List.length xs then Some (Array.of_list out) else None
    | _ -> None
  in
  match
    ( Runlog.str "kind" doc,
      member "universe" doc,
      Option.bind (member "steps" doc) int_of,
      Option.bind (member "episodes" doc) int_of )
  with
  | Some "coverage", Some uni, Some steps, Some episodes -> (
    let nodes =
      match member "nodes" uni with
      | Some (Arr xs) ->
        let out = List.filter_map (function Str s -> Some s | _ -> None) xs in
        if List.length out = List.length xs then Some (Array.of_list out) else None
      | _ -> None
    in
    let edges =
      match member "edges" uni with
      | Some (Arr xs) ->
        let out =
          List.filter_map
            (function
              | Arr [ a; b ] -> (
                match (int_of a, int_of b) with
                | Some u, Some v -> Some (u, v)
                | _ -> None)
              | _ -> None)
            xs
        in
        if List.length out = List.length xs then Some (Array.of_list out) else None
      | _ -> None
    in
    let paths =
      match member "action_paths" uni with
      | Some (Arr xs) ->
        let out = List.filter_map (fun p -> int_array (Some p)) xs in
        if List.length out = List.length xs then Some (Array.of_list out) else None
      | _ -> None
    in
    let sketch = member "sketch" doc in
    let sk k = Option.bind (Option.bind sketch (member k)) int_of in
    match (nodes, edges, paths, sk "bits", sk "seed", sk "state_dim") with
    | Some nodes, Some edges, Some action_paths, Some bits, Some seed, Some dim
      when Array.length action_paths > 0 -> (
      match
        create ~sketch_bits:bits ~sketch_seed:seed ~state_dim:dim
          { nodes; edges; action_paths }
      with
      | exception Invalid_argument _ -> None
      | t -> (
        t.steps <- steps;
        t.episodes <- episodes;
        let ok = ref true in
        let fill_ints dst = function
          | Some src when Array.length src = Array.length dst ->
            Array.blit src 0 dst 0 (Array.length src)
          | _ -> ok := false
        in
        fill_ints t.node_counts (int_array (member "node_counts" doc));
        fill_ints t.action_counts (int_array (member "action_counts" doc));
        (match member "transitions" doc with
         | Some (Arr rows) when List.length rows = t.n_actions ->
           List.iteri (fun i row -> fill_ints t.transitions.(i) (int_array (Some row))) rows
         | _ -> ok := false);
        (match member "edges" doc with
         | Some (Arr cells) when List.length cells = Array.length t.edge_cells ->
           List.iteri
             (fun i cell ->
               match
                 ( Option.bind (member "count" cell) int_of,
                   Option.bind (member "reward_total" cell) float_of,
                   Option.bind (member "r_binsize_total" cell) float_of,
                   Option.bind (member "r_throughput_total" cell) float_of )
               with
               | Some count, Some r, Some rb, Some rt ->
                 let c = t.edge_cells.(i) in
                 c.e_count <- count;
                 c.e_reward <- r;
                 c.e_binsize <- rb;
                 c.e_throughput <- rt
               | _ -> ok := false)
             cells
         | _ -> ok := false);
        (match member "series" doc with
         | Some (Arr points) ->
           List.iter
             (fun p ->
               match
                 ( Option.bind (member "step" p) int_of,
                   Option.bind (member "edge_pct" p) float_of,
                   Option.bind (member "entropy" p) float_of )
               with
               | Some s, Some pct, Some ent ->
                 t.series_rev <- (s, pct, ent) :: t.series_rev
               | _ -> ok := false)
             points
         | _ -> ok := false);
        fill_ints t.sketch (int_array (Option.bind sketch (member "buckets")));
        if !ok then Some t else None))
    | _ -> None)
  | _ -> None

(* --- brute-force recompute from the run ledger ---------------------------- *)

(* One episode's step stream out of a progress.jsonl "episode" record:
   the "actions" array zipped with the per-step "steps" reward triples
   (same schema Attrib replays). Pre-health ledgers yield []. *)
let episode_steps (record : Json.t) : (int * float * float * float) list =
  let open Json in
  match (Runlog.field "actions" record, Runlog.field "steps" record) with
  | Some (Arr actions), Some (Arr steps)
    when List.length actions = List.length steps ->
    List.map2
      (fun a s ->
        match a with
        | Int action ->
          let f k = Option.value ~default:0.0 (Runlog.num k s) in
          (action, f "r", f "rb", f "rt")
        | _ -> (-1, 0.0, 0.0, 0.0))
      actions steps
    |> List.filter (fun (a, _, _, _) -> a >= 0)
  | _ -> []

(* Replay the ledger against the same arithmetic as the streaming fold.
   Episode records land in the file *after* any tick record emitted
   mid-episode, so the flattened step stream (each step's global index
   recovered from the episode's end step) is merged with the tick steps
   by index: a tick at step S samples after every step with index ≤ S,
   exactly as the trainer does. *)
let of_records ?sketch_bits ?sketch_seed ?state_dim ~(like : universe)
    (records : Json.t list) : t =
  let t = create ?sketch_bits ?sketch_seed ?state_dim like in
  let flat = ref [] in
  let ticks = ref [] in
  List.iter
    (fun r ->
      match Runlog.str "kind" r with
      | Some "episode" ->
        let steps = episode_steps r in
        let n = List.length steps in
        let ep_end =
          match Runlog.num "step" r with
          | Some s -> int_of_float s
          | None -> 0
        in
        List.iteri
          (fun i (action, rw, rb, rt) ->
            flat := (ep_end - n + 1 + i, i, action, rw, rb, rt) :: !flat)
          steps
      | Some "tick" -> (
        match Runlog.num "step" r with
        | Some s -> ticks := int_of_float s :: !ticks
        | None -> ())
      | _ -> ())
    records;
  let obs (_, pos, action, reward, r_binsize, r_throughput) =
    if action >= 0 && action < t.n_actions then
      observe t ~action ~pos ~reward ~r_binsize ~r_throughput
  in
  let rec split_le s acc = function
    | ((g, _, _, _, _, _) as x) :: rest when g <= s -> split_le s (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go flat = function
    | [] -> List.iter obs flat
    | s :: rest ->
      let now, later = split_le s [] flat in
      List.iter obs now;
      sample t ~step:s;
      go later rest
  in
  go (List.rev !flat) (List.rev !ticks);
  t

(* --- heat-annotated ODG rendering ----------------------------------------- *)

(* Same structure as [Posetrl_odg.Graph.to_dot] (header, critical-node
   styling by degree ≥ k), with visit heat on the edges: colour ramps
   grey → red and penwidth grows with log-scaled count; edges in the
   universe that training never crossed render dashed light-grey. *)
let to_dot ?(k = 8) (t : t) : string =
  let u = t.universe in
  let deg = Array.make (Array.length u.nodes) 0 in
  Array.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    u.edges;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph odg {\n  rankdir=LR;\n";
  Array.iteri
    (fun i n ->
      if deg.(i) >= k then
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" [shape=doublecircle,style=bold];\n" n)
      else Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" n))
    u.nodes;
  let max_c = Array.fold_left (fun acc c -> max acc c.e_count) 0 t.edge_cells in
  Array.iteri
    (fun i (a, b) ->
      let c = t.edge_cells.(i).e_count in
      if c = 0 then
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" -> \"%s\" [style=dashed,color=\"#cccccc\"];\n"
             u.nodes.(a) u.nodes.(b))
      else begin
        let frac =
          if max_c <= 0 then 0.0
          else log (1.0 +. float_of_int c) /. log (1.0 +. float_of_int max_c)
        in
        let lerp lo hi =
          int_of_float (float_of_int lo +. (frac *. float_of_int (hi - lo)))
        in
        let color =
          Printf.sprintf "#%02x%02x%02x" (lerp 0x96 0xcc) (lerp 0x96 0x00)
            (lerp 0x96 0x00)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  \"%s\" -> \"%s\" [color=\"%s\",penwidth=%.2f,label=\"%d\"];\n"
             u.nodes.(a) u.nodes.(b) color
             (1.0 +. (3.0 *. frac))
             c)
      end)
    u.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
