(* Chrome Trace Event Format export.

   One complete ("ph":"X") event per span. The viewer nests X events on
   a (pid, tid) track by interval containment, and the span layer
   guarantees proper nesting (children start and end inside their
   parents), so a single track reproduces the span stack as a
   flamegraph. ts/dur are microseconds per the format; the original
   attrs, the computed self-time and the recorded depth go to args. *)

let usec (s : float) : Json.t = Json.Float (s *. 1e6)

let event_json (e : Event.t) : Json.t =
  Json.Obj
    [ ("name", Json.Str e.Event.name);
      ("ph", Json.Str "X");
      ("ts", usec e.Event.t_start);
      ("dur", usec e.Event.dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args",
       Json.Obj
         (("self_us", Json.Float (e.Event.self *. 1e6))
          :: ("depth", Json.Int e.Event.depth)
          :: List.map
               (fun (k, v) -> (k, Event.value_to_json v))
               e.Event.attrs)) ]

let of_events (events : Event.t list) : Json.t =
  let sorted =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.t_start b.Event.t_start)
      events
  in
  Json.Arr (List.map event_json sorted)

let to_string (events : Event.t list) : string = Json.to_string (of_events events)

let write ~(path : string) (events : Event.t list) : unit =
  Runlog.write_json_file path (of_events events)
