(* Chrome Trace Event Format export.

   One complete ("ph":"X") event per span, placed on the track of the
   domain that emitted it ([Event.tid]): the viewer nests X events on a
   (pid, tid) track by interval containment, and the span layer
   guarantees proper nesting per domain, so each domain's span stack
   renders as its own flamegraph — pool-worker tasks no longer collapse
   onto the owner's track. A "thread_name" metadata ("ph":"M") event per
   distinct tid labels the tracks ("main" for domain 0, "domain-N"
   otherwise). ts/dur are microseconds per the format; the original
   attrs, the computed self-time and the recorded depth go to args. *)

let usec (s : float) : Json.t = Json.Float (s *. 1e6)

let event_json (e : Event.t) : Json.t =
  Json.Obj
    [ ("name", Json.Str e.Event.name);
      ("ph", Json.Str "X");
      ("ts", usec e.Event.t_start);
      ("dur", usec e.Event.dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.Event.tid);
      ("args",
       Json.Obj
         (("self_us", Json.Float (e.Event.self *. 1e6))
          :: ("depth", Json.Int e.Event.depth)
          :: List.map
               (fun (k, v) -> (k, Event.value_to_json v))
               e.Event.attrs)) ]

let thread_name_json (tid : int) : Json.t =
  let name = if tid = 0 then "main" else Printf.sprintf "domain-%d" tid in
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let of_events (events : Event.t list) : Json.t =
  let sorted =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.t_start b.Event.t_start)
      events
  in
  let tids =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.Event.tid) events)
  in
  Json.Arr (List.map thread_name_json tids @ List.map event_json sorted)

let to_string (events : Event.t list) : string = Json.to_string (of_events events)

let write ~(path : string) (events : Event.t list) : unit =
  Runlog.write_json_file path (of_events events)
