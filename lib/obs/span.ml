(* Nested, monotonic-clock span tracing.

   Self-time is accounted online: every active span accumulates the
   durations of its direct children, so the emitted event carries
   self = dur - children and the offline report never reconstructs the
   tree. Children complete before their parents, so a JSONL trace lists
   events innermost-first.

   When allocation attribution is switched on ([set_alloc_attrs true],
   done by the profiler), the same online scheme runs over
   [Gc.allocated_bytes] — domain-local in OCaml 5 — and every event
   carries "alloc_b" (inclusive) and "self_alloc_b" (minus direct
   children) attributes. Off by default: the flag costs one branch when
   tracing is on and nothing when it is off.

   The fast path matters: with no sink installed [with_] must not read
   the clock or allocate a span, because it wraps Dqn forwards, MCA
   evaluations and every pass execution. *)

type t = {
  s_name : string;
  mutable s_attrs : (string * Event.value) list; (* reversed *)
  s_start : float;
  mutable s_children : float;
  s_depth : int;
  s_live : bool;
  s_alloc_start : float;           (* Gc.allocated_bytes at open; nan = off *)
  mutable s_alloc_children : float;
}

(* shared no-op span handed to callbacks when tracing is off *)
let disabled_span =
  { s_name = ""; s_attrs = []; s_start = 0.0; s_children = 0.0; s_depth = 0;
    s_live = false; s_alloc_start = Float.nan; s_alloc_children = 0.0 }

let sinks : Sink.t list ref = ref []

(* opt-in per-span allocation attribution (see Prof) *)
let alloc_attrs = ref false
let set_alloc_attrs b = alloc_attrs := b
let alloc_attrs_enabled () = !alloc_attrs

(* The span stack is domain-local: a worker domain nests its own spans
   without racing the owner's stack or inheriting its depth. Sinks stay
   global (installed from the owner domain around parallel regions);
   the emit path below serializes writers so JSONL lines never tear. *)
let stack_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let emit_lock = Mutex.create ()

let enabled () = !sinks <> []

let install (s : Sink.t) = sinks := !sinks @ [ s ]
let remove (s : Sink.t) = sinks := List.filter (fun s' -> s' != s) !sinks

let with_sink (s : Sink.t) (f : unit -> 'a) : 'a =
  install s;
  Fun.protect
    ~finally:(fun () ->
      remove s;
      s.Sink.close ())
    f

let set_attr (sp : t) (k : string) (v : Event.value) =
  if sp.s_live then sp.s_attrs <- (k, v) :: sp.s_attrs

let emit_event (ev : Event.t) =
  Mutex.lock emit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_lock)
    (fun () -> List.iter (fun (s : Sink.t) -> s.Sink.emit ev) !sinks)

let self_tid () = (Domain.self () :> int)

let finish (sp : t) =
  let t1 = Clock.now () in
  let stack = stack () in
  (match !stack with _ :: rest -> stack := rest | [] -> ());
  let dur = t1 -. sp.s_start in
  let attrs =
    if Float.is_nan sp.s_alloc_start then sp.s_attrs
    else begin
      let alloc = Float.max 0.0 (Gc.allocated_bytes () -. sp.s_alloc_start) in
      (match !stack with
       | parent :: _ when not (Float.is_nan parent.s_alloc_start) ->
         parent.s_alloc_children <- parent.s_alloc_children +. alloc
       | _ -> ());
      ("self_alloc_b", Event.F (Float.max 0.0 (alloc -. sp.s_alloc_children)))
      :: ("alloc_b", Event.F alloc)
      :: sp.s_attrs
    end
  in
  (match !stack with
   | parent :: _ -> parent.s_children <- parent.s_children +. dur
   | [] -> ());
  emit_event
    { Event.name = sp.s_name;
      attrs = List.rev attrs;
      t_start = sp.s_start;
      dur;
      self = Float.max 0.0 (dur -. sp.s_children);
      depth = sp.s_depth;
      tid = self_tid () }

let with_ ?(attrs = []) (name : string) (f : t -> 'a) : 'a =
  if !sinks == [] then f disabled_span
  else begin
    let stack = stack () in
    let sp =
      { s_name = name;
        s_attrs = List.rev attrs;
        s_start = Clock.now ();
        s_children = 0.0;
        s_depth = List.length !stack;
        s_live = true;
        s_alloc_start = (if !alloc_attrs then Gc.allocated_bytes () else Float.nan);
        s_alloc_children = 0.0 }
    in
    stack := sp :: !stack;
    match f sp with
    | v ->
      finish sp;
      v
    | exception e ->
      set_attr sp "error" (Event.S (Printexc.to_string e));
      finish sp;
      raise e
  end

(* Emit a pre-timed complete event at the caller's current depth — used
   by pool owners to record per-task spans measured on worker domains
   without threading sink state through the workers. [tid] defaults to
   the caller's domain; pool owners pass the worker's recorded domain id
   so the event lands on the track that actually ran the task. *)
let emit ?(attrs = []) ?tid ~(name : string) ~(t_start : float) ~(dur : float)
    () : unit =
  if !sinks != [] then
    emit_event
      { Event.name;
        attrs;
        t_start;
        dur;
        self = dur;
        depth = List.length !(stack ());
        tid = (match tid with Some t -> t | None -> self_tid ()) }
