(* Nested, monotonic-clock span tracing.

   Self-time is accounted online: every active span accumulates the
   durations of its direct children, so the emitted event carries
   self = dur - children and the offline report never reconstructs the
   tree. Children complete before their parents, so a JSONL trace lists
   events innermost-first.

   The fast path matters: with no sink installed [with_] must not read
   the clock or allocate a span, because it wraps Dqn forwards, MCA
   evaluations and every pass execution. *)

type t = {
  s_name : string;
  mutable s_attrs : (string * Event.value) list; (* reversed *)
  s_start : float;
  mutable s_children : float;
  s_depth : int;
  s_live : bool;
}

(* shared no-op span handed to callbacks when tracing is off *)
let disabled_span =
  { s_name = ""; s_attrs = []; s_start = 0.0; s_children = 0.0; s_depth = 0;
    s_live = false }

let sinks : Sink.t list ref = ref []

(* The span stack is domain-local: a worker domain nests its own spans
   without racing the owner's stack or inheriting its depth. Sinks stay
   global (installed from the owner domain around parallel regions);
   the emit path below serializes writers so JSONL lines never tear. *)
let stack_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let emit_lock = Mutex.create ()

let enabled () = !sinks <> []

let install (s : Sink.t) = sinks := !sinks @ [ s ]
let remove (s : Sink.t) = sinks := List.filter (fun s' -> s' != s) !sinks

let with_sink (s : Sink.t) (f : unit -> 'a) : 'a =
  install s;
  Fun.protect
    ~finally:(fun () ->
      remove s;
      s.Sink.close ())
    f

let set_attr (sp : t) (k : string) (v : Event.value) =
  if sp.s_live then sp.s_attrs <- (k, v) :: sp.s_attrs

let emit_event (ev : Event.t) =
  Mutex.lock emit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_lock)
    (fun () -> List.iter (fun (s : Sink.t) -> s.Sink.emit ev) !sinks)

let finish (sp : t) =
  let t1 = Clock.now () in
  let stack = stack () in
  (match !stack with _ :: rest -> stack := rest | [] -> ());
  let dur = t1 -. sp.s_start in
  (match !stack with
   | parent :: _ -> parent.s_children <- parent.s_children +. dur
   | [] -> ());
  emit_event
    { Event.name = sp.s_name;
      attrs = List.rev sp.s_attrs;
      t_start = sp.s_start;
      dur;
      self = Float.max 0.0 (dur -. sp.s_children);
      depth = sp.s_depth }

let with_ ?(attrs = []) (name : string) (f : t -> 'a) : 'a =
  if !sinks == [] then f disabled_span
  else begin
    let stack = stack () in
    let sp =
      { s_name = name;
        s_attrs = List.rev attrs;
        s_start = Clock.now ();
        s_children = 0.0;
        s_depth = List.length !stack;
        s_live = true }
    in
    stack := sp :: !stack;
    match f sp with
    | v ->
      finish sp;
      v
    | exception e ->
      set_attr sp "error" (Event.S (Printexc.to_string e));
      finish sp;
      raise e
  end

(* Emit a pre-timed complete event at the caller's current depth — used
   by pool owners to record per-task spans measured on worker domains
   without threading sink state through the workers. *)
let emit ?(attrs = []) ~(name : string) ~(t_start : float) ~(dur : float) () :
    unit =
  if !sinks != [] then
    emit_event
      { Event.name;
        attrs;
        t_start;
        dur;
        self = dur;
        depth = List.length !(stack ()) }
