(* Prometheus text exposition (format version 0.0.4).

   One header pair per metric name:

     # HELP posetrl_env_step_seconds posetrl.env.step_seconds
     # TYPE posetrl_env_step_seconds histogram
     posetrl_env_step_seconds_bucket{le="1e-06"} 0
     ...
     posetrl_env_step_seconds_bucket{le="+Inf"} 12
     posetrl_env_step_seconds_sum 0.34
     posetrl_env_step_seconds_count 12

   The HELP text is the original dotted name, so a scrape is
   self-documenting back to the DESIGN.md naming convention. Histogram
   buckets are cumulative per the format (each le bound counts every
   observation <= bound), built from the registry's raw per-bucket
   counts — never re-derived from the quantile summary string. *)

let sanitize_name (name : string) : string =
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char b '_';
        Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_label_value (v : string) : string =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let format_value (v : float) : string =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* the {a="x",b="y"} block; [extra] appends a pre-rendered pair (le) *)
let render_labels ?extra (labels : (string * string) list) : string =
  let pairs =
    List.map
      (fun (k, v) ->
        Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
      labels
    @ (match extra with Some p -> [ p ] | None -> [])
  in
  match pairs with [] -> "" | ps -> "{" ^ String.concat "," ps ^ "}"

let bound_string (b : float) : string =
  if b = infinity then "+Inf" else Printf.sprintf "%g" b

let render_row (buf : Buffer.t) (name : string) (row : Metrics.row) : unit =
  match row.Metrics.row_kind with
  | "histogram" ->
    let cum = ref 0 in
    List.iter
      (fun (bound, count) ->
        cum := !cum + count;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" name
             (render_labels
                ~extra:(Printf.sprintf "le=\"%s\"" (bound_string bound))
                row.Metrics.row_labels)
             !cum))
      row.Metrics.row_buckets;
    Buffer.add_string buf
      (Printf.sprintf "%s_sum%s %s\n" name
         (render_labels row.Metrics.row_labels)
         (format_value row.Metrics.row_sum));
    Buffer.add_string buf
      (Printf.sprintf "%s_count%s %d\n" name
         (render_labels row.Metrics.row_labels)
         row.Metrics.row_count)
  | _ ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name
         (render_labels row.Metrics.row_labels)
         (format_value row.Metrics.row_value))

let render (rows : Metrics.row list) : string =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun (row : Metrics.row) ->
      let name = sanitize_name row.Metrics.row_name in
      if row.Metrics.row_name <> !last_name then begin
        last_name := row.Metrics.row_name;
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name row.Metrics.row_name);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name row.Metrics.row_kind)
      end;
      render_row buf name row)
    rows;
  Buffer.contents buf

let scrape ?(r = Metrics.global) () : string = render (Metrics.snapshot ~r ())
