(* The trace event: one record per completed span. Events carry their
   own self-time (duration minus direct children), computed at runtime
   by the span layer, so offline aggregation never has to reconstruct
   the nesting tree. [tid] is the emitting domain's id (0 on the main
   domain), which lets the profiler and the Chrome export keep
   per-domain stacks apart without interval heuristics.

   JSONL schema (one object per line, see DESIGN.md "Observability"):
     {"name":..., "t":..., "dur":..., "self":..., "depth":..., "tid":...,
      "attrs":{...}}
   Traces written before the tid field read back with tid 0. *)

type value =
  | S of string
  | I of int
  | F of float

type t = {
  name : string;                      (* posetrl.<area>.<name> *)
  attrs : (string * value) list;
  t_start : float;                    (* seconds on the obs clock *)
  dur : float;                        (* wall duration, seconds *)
  self : float;                       (* dur minus direct children *)
  depth : int;                        (* nesting depth at emit time *)
  tid : int;                          (* emitting domain id (0 = main) *)
}

let value_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f

let value_to_json = function
  | S s -> Json.Str s
  | I i -> Json.Int i
  | F f -> Json.Float f

let value_of_json = function
  | Json.Str s -> S s
  | Json.Int i -> I i
  | Json.Float f -> F f
  | Json.Bool b -> S (string_of_bool b)
  | Json.Null -> S "null"
  | _ -> invalid_arg "Event.value_of_json: nested attr value"

let to_json (e : t) : Json.t =
  Json.Obj
    [ ("name", Json.Str e.name);
      ("t", Json.Float e.t_start);
      ("dur", Json.Float e.dur);
      ("self", Json.Float e.self);
      ("depth", Json.Int e.depth);
      ("tid", Json.Int e.tid);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) e.attrs)) ]

let number_to_float = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> invalid_arg "Event.of_json: expected number"

let of_json (j : Json.t) : t =
  let get k = match Json.member k j with
    | Some v -> v
    | None -> invalid_arg ("Event.of_json: missing field " ^ k)
  in
  let attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, value_of_json v)) kvs
    | _ -> []
  in
  { name = (match get "name" with Json.Str s -> s | _ -> invalid_arg "Event.of_json: name");
    attrs;
    t_start = number_to_float (get "t");
    dur = number_to_float (get "dur");
    self = number_to_float (get "self");
    depth = (match get "depth" with Json.Int i -> i | v -> int_of_float (number_to_float v));
    tid =
      (match Json.member "tid" j with
       | Some (Json.Int i) -> i
       | Some v -> int_of_float (number_to_float v)
       | None -> 0) }

(* attr accessors used by the report aggregator *)

let attr (e : t) (key : string) : value option = List.assoc_opt key e.attrs

let attr_string (e : t) (key : string) : string option =
  match attr e key with Some (S s) -> Some s | _ -> None

let attr_int (e : t) (key : string) : int option =
  match attr e key with
  | Some (I i) -> Some i
  | Some (F f) -> Some (int_of_float f)
  | _ -> None

let attr_float (e : t) (key : string) : float option =
  match attr e key with
  | Some (F f) -> Some f
  | Some (I i) -> Some (float_of_int i)
  | _ -> None
