(* Profiling layer over the span/metrics plumbing.

   Three concerns live here (see DESIGN.md §11 "Profiling"):

   - Hotspot attribution: a streaming span collector that folds the
     event stream into per-span-name aggregates (count, total,
     self-time, p50/p99 of per-event self) and renders a ranked hotspot
     table. Self-time is computed online by the span layer (dur minus
     direct children), so the collector never reconstructs the tree for
     the table.

   - Folded-stack export: the same stream reconstructed into
     flamegraph.pl-compatible "frame;frame;frame <µs>" lines. Events
     arrive in completion order (children strictly before their parent,
     per emitting domain), so reconstruction is a per-tid map from depth
     to pending child stacks: when the parent at depth d completes, it
     prefixes its name onto everything pending at depth d+1.

   - GC/allocation and pool-utilization telemetry: [sample_gc] turns
     [Gc.quick_stat] into posetrl.gc.* gauges on the trainer tick;
     [note_pool_batch] turns a [Pool.map_timed] timing array into
     queue-depth/busy-fraction gauges and a dispatch-latency histogram.

   The collector is only ever fed from the span emit path (already
   serialized by the span layer's emit lock) or from a single-threaded
   trace replay, so it keeps plain mutable state. *)

open Posetrl_support

(* --- growable sample buffer with reservoir fallback ---------------------- *)

(* Per-name self-time samples back the p50/p99 columns. Traces from long
   training runs can carry millions of events for one name, so past
   [sample_cap] the buffer degrades to uniform reservoir sampling (a
   fixed-seed private RNG keeps replay deterministic). *)
let sample_cap = 65536

type buf = { mutable data : float array; mutable len : int }

let buf_create () = { data = Array.make 64 0.0; len = 0 }

let buf_push (rng : Random.State.t) (b : buf) (seen : int) (v : float) =
  if b.len < sample_cap then begin
    if b.len = Array.length b.data then begin
      let d = Array.make (min sample_cap (2 * b.len)) 0.0 in
      Array.blit b.data 0 d 0 b.len;
      b.data <- d
    end;
    b.data.(b.len) <- v;
    b.len <- b.len + 1
  end
  else begin
    let j = Random.State.int rng seen in
    if j < sample_cap then b.data.(j) <- v
  end

(* nearest-rank quantile over a sorted copy *)
let buf_quantile (b : buf) (q : float) : float =
  if b.len = 0 then 0.0
  else begin
    let s = Array.sub b.data 0 b.len in
    Array.sort compare s;
    let rank = int_of_float (ceil (q *. float_of_int b.len)) in
    s.(max 0 (min (b.len - 1) (rank - 1)))
  end

(* --- the streaming collector --------------------------------------------- *)

type agg = {
  mutable a_count : int;
  mutable a_total : float;              (* Σ dur   (seconds) *)
  mutable a_self : float;               (* Σ self  (seconds) *)
  mutable a_alloc : float;              (* Σ self_alloc_b attr (bytes) *)
  a_samples : buf;                      (* per-event self times *)
}

type t = {
  by_name : (string, agg) Hashtbl.t;
  (* folded-stack reconstruction: tid -> depth -> (frames -> Σ self),
     where frames are root-first paths below (and including) that
     depth. Aggregating by path at insert keeps the collector's memory
     bounded by the number of *distinct* stacks, not by event count. *)
  pending : (int, (int, (string list, float) Hashtbl.t) Hashtbl.t) Hashtbl.t;
  rng : Random.State.t;
  mutable n_events : int;
}

let create () =
  { by_name = Hashtbl.create 64;
    pending = Hashtbl.create 4;
    rng = Random.State.make [| 0x9e3779b9 |];
    n_events = 0 }

let add (t : t) (e : Event.t) =
  t.n_events <- t.n_events + 1;
  let a =
    match Hashtbl.find_opt t.by_name e.Event.name with
    | Some a -> a
    | None ->
      let a =
        { a_count = 0; a_total = 0.0; a_self = 0.0; a_alloc = 0.0;
          a_samples = buf_create () }
      in
      Hashtbl.add t.by_name e.Event.name a;
      a
  in
  a.a_count <- a.a_count + 1;
  a.a_total <- a.a_total +. e.Event.dur;
  a.a_self <- a.a_self +. e.Event.self;
  (match Event.attr_float e "self_alloc_b" with
   | Some b -> a.a_alloc <- a.a_alloc +. b
   | None -> ());
  buf_push t.rng a.a_samples a.a_count e.Event.self;
  (* fold the event into the per-tid stack reconstruction *)
  let per =
    match Hashtbl.find_opt t.pending e.Event.tid with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add t.pending e.Event.tid h;
      h
  in
  let mine =
    match Hashtbl.find_opt per e.Event.depth with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.add per e.Event.depth tbl;
      tbl
  in
  let bump frames v =
    let prev =
      match Hashtbl.find_opt mine frames with Some x -> x | None -> 0.0
    in
    Hashtbl.replace mine frames (prev +. v)
  in
  bump [ e.Event.name ] e.Event.self;
  match Hashtbl.find_opt per (e.Event.depth + 1) with
  | Some children ->
    Hashtbl.remove per (e.Event.depth + 1);
    Hashtbl.iter (fun fs v -> bump (e.Event.name :: fs) v) children
  | None -> ()

let sink (t : t) : Sink.t =
  { Sink.emit = (fun e -> add t e); close = ignore }

let of_events (events : Event.t list) : t =
  let t = create () in
  List.iter (add t) events;
  t

(* --- ranked hotspot entries ---------------------------------------------- *)

type entry = {
  e_name : string;
  e_count : int;
  e_total : float;
  e_self : float;
  e_alloc_b : float;
  e_p50 : float;
  e_p99 : float;
}

let events (t : t) = t.n_events

let total_self (t : t) : float =
  Hashtbl.fold (fun _ a acc -> acc +. a.a_self) t.by_name 0.0

let total_alloc (t : t) : float =
  Hashtbl.fold (fun _ a acc -> acc +. a.a_alloc) t.by_name 0.0

let hotspots (t : t) : entry list =
  Hashtbl.fold
    (fun name a acc ->
      { e_name = name;
        e_count = a.a_count;
        e_total = a.a_total;
        e_self = a.a_self;
        e_alloc_b = a.a_alloc;
        e_p50 = buf_quantile a.a_samples 0.5;
        e_p99 = buf_quantile a.a_samples 0.99 }
      :: acc)
    t.by_name []
  |> List.sort (fun a b ->
         match compare b.e_self a.e_self with
         | 0 -> compare a.e_name b.e_name
         | c -> c)

let self_of (t : t) (name : string) : float =
  match Hashtbl.find_opt t.by_name name with Some a -> a.a_self | None -> 0.0

(* --- rendering ----------------------------------------------------------- *)

let ms v = Printf.sprintf "%.2f" (v *. 1e3)
let us v = Printf.sprintf "%.0f" (v *. 1e6)
let mb v = Printf.sprintf "%.2f" (v /. 1e6)

let render ?(top = 15) ?(title = "hotspots") (t : t) : string =
  let total = total_self t in
  let entries = hotspots t in
  let shown = List.filteri (fun i _ -> i < top) entries in
  let tbl =
    Table.create ~title
      ~headers:[ "#"; "span"; "n"; "total ms"; "self ms"; "self%"; "cum%";
                 "p50 us"; "p99 us"; "alloc MB" ]
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let cum = ref 0.0 in
  List.iteri
    (fun i e ->
      cum := !cum +. e.e_self;
      let pct v = if total > 0.0 then 100.0 *. v /. total else 0.0 in
      Table.add_row tbl
        [ string_of_int (i + 1);
          e.e_name;
          string_of_int e.e_count;
          ms e.e_total;
          ms e.e_self;
          Printf.sprintf "%.1f" (pct e.e_self);
          Printf.sprintf "%.1f" (pct !cum);
          us e.e_p50;
          us e.e_p99;
          (if e.e_alloc_b > 0.0 then mb e.e_alloc_b else "-") ])
    shown;
  let omitted = List.length entries - List.length shown in
  Table.render tbl
  ^ Printf.sprintf "%d events, %d span names%s; total self %s ms%s\n"
      t.n_events (List.length entries)
      (if omitted > 0 then Printf.sprintf " (%d rows omitted)" omitted else "")
      (ms total)
      (let a = total_alloc t in
       if a > 0.0 then Printf.sprintf ", self-alloc %s MB" (mb a) else "")

(* jobs-1 vs jobs-N comparison over the union of both runs' top spans *)
let render_compare ?(top = 10) ~(jobs : int) (seq : t) (par : t) : string =
  let tbl =
    Table.create
      ~title:(Printf.sprintf "self-time: jobs=1 vs jobs=%d" jobs)
      ~headers:[ "span"; "self@1 ms"; Printf.sprintf "self@%d ms" jobs; "x" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let names =
    let top_of t = List.filteri (fun i _ -> i < top) (hotspots t) in
    List.sort_uniq compare
      (List.map (fun e -> e.e_name) (top_of seq @ top_of par))
  in
  let ranked =
    List.sort
      (fun a b -> compare (self_of seq b) (self_of seq a))
      names
  in
  List.iter
    (fun name ->
      let s = self_of seq name and p = self_of par name in
      Table.add_row tbl
        [ name; ms s; ms p;
          (if p > 0.0 then Printf.sprintf "%.2f" (s /. p) else "-") ])
    ranked;
  Table.add_row tbl
    [ "(total)"; ms (total_self seq); ms (total_self par);
      (let p = total_self par in
       if p > 0.0 then Printf.sprintf "%.2f" (total_self seq /. p) else "-") ];
  Table.render tbl

(* --- folded-stack (flamegraph.pl) export --------------------------------- *)

let tid_frame tid = if tid = 0 then "main" else Printf.sprintf "domain-%d" tid

let folded (t : t) : string =
  let multi = Hashtbl.length t.pending > 1 in
  let stacks : (string, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun tid per ->
      Hashtbl.iter
        (fun _depth entries ->
          Hashtbl.iter
            (fun frames self ->
              let frames = if multi then tid_frame tid :: frames else frames in
              let key = String.concat ";" frames in
              let prev =
                match Hashtbl.find_opt stacks key with Some v -> v | None -> 0.0
              in
              Hashtbl.replace stacks key (prev +. self))
            entries)
        per)
    t.pending;
  let lines =
    Hashtbl.fold
      (fun key v acc ->
        let us = int_of_float (Float.round (v *. 1e6)) in
        if us > 0 then Printf.sprintf "%s %d" key us :: acc else acc)
      stacks []
    |> List.sort compare
  in
  String.concat "\n" lines ^ (if lines = [] then "" else "\n")

let write_folded ~(path : string) (t : t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (folded t))

(* --- GC / allocation telemetry ------------------------------------------- *)

type gc_mark = {
  gm_time : float;
  gm_stat : Gc.stat;                    (* quick_stat: no heap walk *)
  gm_alloc_b : float;
}

let gc_mark () : gc_mark =
  { gm_time = Clock.now ();
    gm_stat = Gc.quick_stat ();
    gm_alloc_b = Gc.allocated_bytes () }

type gc_delta = {
  d_elapsed_s : float;
  d_alloc_b : float;                    (* bytes allocated on this domain *)
  d_minor : int;                        (* minor collections *)
  d_major : int;                        (* major collections *)
  d_promoted_w : float;                 (* words promoted to the major heap *)
  d_heap_w : int;                       (* major heap words now *)
}

let gc_delta (m : gc_mark) : gc_delta =
  let s = Gc.quick_stat () in
  { d_elapsed_s = Clock.now () -. m.gm_time;
    d_alloc_b = Float.max 0.0 (Gc.allocated_bytes () -. m.gm_alloc_b);
    d_minor = s.Gc.minor_collections - m.gm_stat.Gc.minor_collections;
    d_major = s.Gc.major_collections - m.gm_stat.Gc.major_collections;
    d_promoted_w = s.Gc.promoted_words -. m.gm_stat.Gc.promoted_words;
    d_heap_w = s.Gc.heap_words }

let render_gc (d : gc_delta) : string =
  let rate =
    if d.d_elapsed_s > 0.0 then d.d_alloc_b /. d.d_elapsed_s /. 1e6 else 0.0
  in
  Printf.sprintf
    "GC/alloc: %.2f MB allocated (%.1f MB/s), %d minor / %d major \
     collections, %.2f Mw promoted, major heap %.2f MB\n"
    (d.d_alloc_b /. 1e6) rate d.d_minor d.d_major (d.d_promoted_w /. 1e6)
    (float_of_int d.d_heap_w *. 8.0 /. 1e6)

(* gauge handles + the previous sample, for the allocation-rate gauge;
   [sample_gc] runs on the trainer tick (one domain), so a plain ref is
   enough. Keyed per registry so tests with private registries don't
   inherit the global's rate state. *)
let last_sample : (Metrics.t * float * float) option ref = ref None

type gc_sample = {
  gs_minor : int;
  gs_major : int;
  gs_promoted_w : float;
  gs_heap_w : int;
  gs_alloc_mb_s : float;
}

let sample_gc ?(r = Metrics.global) () : gc_sample =
  let s = Gc.quick_stat () in
  let now = Clock.now () in
  let alloc_b = Gc.allocated_bytes () in
  let rate_b_s =
    match !last_sample with
    | Some (r', t0, b0) when r' == r && now > t0 -> (alloc_b -. b0) /. (now -. t0)
    | _ -> 0.0
  in
  last_sample := Some (r, now, alloc_b);
  Metrics.set (Metrics.gauge ~r "posetrl.gc.minor_collections")
    (float_of_int s.Gc.minor_collections);
  Metrics.set (Metrics.gauge ~r "posetrl.gc.major_collections")
    (float_of_int s.Gc.major_collections);
  Metrics.set (Metrics.gauge ~r "posetrl.gc.promoted_words") s.Gc.promoted_words;
  Metrics.set (Metrics.gauge ~r "posetrl.gc.heap_words")
    (float_of_int s.Gc.heap_words);
  Metrics.set (Metrics.gauge ~r "posetrl.gc.alloc_rate_mb_s") (rate_b_s /. 1e6);
  { gs_minor = s.Gc.minor_collections;
    gs_major = s.Gc.major_collections;
    gs_promoted_w = s.Gc.promoted_words;
    gs_heap_w = s.Gc.heap_words;
    gs_alloc_mb_s = rate_b_s /. 1e6 }

(* --- pool utilization ---------------------------------------------------- *)

type pool_util = {
  pu_jobs : int;
  pu_tasks : int;
  pu_busy_frac : float;         (* Σ task dur / (jobs × batch wall) *)
  pu_queue_mean : float;        (* mean seconds a task waited to start *)
  pu_dispatch_s : float;        (* mean first-wave dispatch latency *)
}

let pool_util ~(jobs : int) ~(t0 : float) ~(t1 : float)
    (timings : Pool.timing array) : pool_util =
  let n = Array.length timings in
  let wall = Float.max (t1 -. t0) 1e-9 in
  let busy = Array.fold_left (fun acc tm -> acc +. tm.Pool.t_dur) 0.0 timings in
  let waits =
    Array.map (fun tm -> Float.max 0.0 (tm.Pool.t_start -. t0)) timings
  in
  let queue_mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 waits /. float_of_int n
  in
  (* dispatch latency: queue wait of the first wave — the min(jobs, n)
     earliest-starting tasks, which waited on dispatch alone rather than
     on a busy worker *)
  let dispatch =
    if n = 0 then 0.0
    else begin
      let sorted = Array.copy waits in
      Array.sort compare sorted;
      let wave = min jobs n in
      let acc = ref 0.0 in
      for i = 0 to wave - 1 do acc := !acc +. sorted.(i) done;
      !acc /. float_of_int wave
    end
  in
  { pu_jobs = jobs;
    pu_tasks = n;
    pu_busy_frac = busy /. (float_of_int (max 1 jobs) *. wall);
    pu_queue_mean = queue_mean;
    pu_dispatch_s = dispatch }

let dispatch_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1 |]

let note_pool_batch ?(r = Metrics.global) ~(jobs : int) ~(t0 : float)
    ~(t1 : float) (timings : Pool.timing array) : pool_util =
  let u = pool_util ~jobs ~t0 ~t1 timings in
  Metrics.set (Metrics.gauge ~r "posetrl.pool.busy_frac") u.pu_busy_frac;
  Metrics.set (Metrics.gauge ~r "posetrl.pool.queue_wait_mean_s") u.pu_queue_mean;
  let h =
    Metrics.histogram ~r ~buckets:dispatch_buckets "posetrl.pool.dispatch_s"
  in
  Array.iter
    (fun tm -> Metrics.observe h (Float.max 0.0 (tm.Pool.t_start -. t0)))
    timings;
  u

let render_pool (u : pool_util) : string =
  Printf.sprintf
    "pool: jobs=%d tasks=%d busy=%.1f%% mean queue wait %.1f us, first-wave \
     dispatch %.1f us\n"
    u.pu_jobs u.pu_tasks (100.0 *. u.pu_busy_frac) (u.pu_queue_mean *. 1e6)
    (u.pu_dispatch_s *. 1e6)

(* --- profiled workload runner -------------------------------------------- *)

let collect ?(alloc = true) (f : unit -> 'a) : 'a * t =
  let t = create () in
  let prev_alloc = Span.alloc_attrs_enabled () in
  Span.set_alloc_attrs alloc;
  let restore () = Span.set_alloc_attrs prev_alloc in
  match Span.with_sink (sink t) f with
  | v -> restore (); (v, t)
  | exception e -> restore (); raise e
