(** Decision-space coverage over the ODG: which nodes/edges of the Oz
    Dependence Graph the policy actually walks, how its action
    distribution evolves, and a bucketed sketch of the visited state
    space (see DESIGN.md §13).

    The table is a pure fold over the in-order step stream, so it is
    byte-deterministic per seed — identical for [--jobs 1] and
    [--jobs 4] — and {!of_records} recomputes it float-exactly from
    the run ledger. Only the state sketch is not ledger-recomputable
    (states are not persisted) and is therefore excluded from
    {!equal}. *)

type universe = {
  nodes : string array;          (** pass names (ODG nodes first, then
                                     any extra passes the action space
                                     references) *)
  edges : (int * int) array;     (** ODG edges as node-index pairs *)
  action_paths : int array array; (** per action, its pass path as node
                                      indices *)
}
(** The fixed decision space a table counts against — plain arrays so
    this layer needs no dependency on [Posetrl_odg] (which builds one
    via [Action_space.coverage_universe]). *)

type t

val create :
  ?registry:Metrics.t -> ?sketch_bits:int -> ?sketch_seed:int ->
  ?state_dim:int -> universe -> t
(** A fresh table. [registry] opts into posetrl.coverage.* gauges
    (published on {!sample}); recomputed tables stay silent. The state
    sketch hashes embeddings into [2^sketch_bits] buckets (default 6)
    through a projection seeded by [sketch_seed] — fixed defaults keep
    tables comparable across runs. [state_dim] defaults to the IR2Vec
    embedding width (300).
    @raise Invalid_argument on an empty action set or out-of-range
    indices in the universe. *)

val observe :
  t -> action:int -> pos:int -> reward:float -> r_binsize:float ->
  r_throughput:float -> unit
(** Fold one environment step. [pos] is the position within the
    episode; [pos = 0] marks an episode boundary (resets the
    transition predecessor). Credits node visits along the action's
    path, intra-path ODG edges, the junction edge from the previous
    action's last pass, the action histogram and the transition
    matrix. Must be called in step-stream order — the determinism
    contract is the same as [Attrib]'s.
    @raise Invalid_argument if [action] is out of range. *)

val observe_state : t -> float array -> unit
(** Fold one (pre-action) IR2Vec embedding into the visitation sketch:
    the sign pattern of the seeded projections selects a bucket. *)

val sample : t -> step:int -> unit
(** Append a (step, edge-coverage %, entropy bits) point to the time
    series and publish the posetrl.coverage.* gauges (when created
    with a registry). The trainer calls this once per progress tick. *)

(** {1 Readings} *)

val universe : t -> universe
val n_actions : t -> int
val steps : t -> int
val episodes : t -> int
val node_count : t -> int
val edge_count : t -> int
val node_name : t -> int -> string
val node_visits : t -> int -> int
val action_count : t -> int -> int
val transition : t -> from:int -> to_:int -> int

val nodes_visited : t -> int
val edges_visited : t -> int

val edge_pct : t -> float
(** Percentage of universe edges with at least one visit. *)

val entropy : t -> float
(** Shannon entropy (bits) of the cumulative action distribution;
    [log2 n_actions] when uniform, 0 when collapsed (or empty). *)

val series : t -> (int * float * float) list
(** The sampled (step, edge %, entropy) points, oldest first. *)

val top_edges : t -> k:int -> (int * int * int * float * float * float) list
(** The [k] most-visited edges as [(u, v, count, reward_total,
    r_binsize_total, r_throughput_total)], count-descending with
    universe-index tie-break (deterministic). *)

val top_transitions : t -> k:int -> (int * int * int) list
(** The [k] most frequent action→action transitions. *)

val sketch_bits : t -> int
val sketch_buckets : t -> int array
val sketch_occupied : t -> int
(** Buckets with at least one visit (of [2^sketch_bits]). *)

val equal : t -> t -> bool
(** Exact structural equality (floats via [Float.equal]) over
    everything recomputable from the run ledger: universe, counts,
    edge cells, transitions, series. The sketch and the mid-stream
    transition cursor are excluded (see module doc). *)

(** {1 Persistence and recompute} *)

val to_json : t -> Json.t
(** The coverage.json document: self-contained (embeds the universe),
    floats as %.17g so a reload round-trips exactly. *)

val of_json : Json.t -> t option
(** Robust reader: [None] on anything structurally off, never an
    exception. *)

val episode_steps : Json.t -> (int * float * float * float) list
(** [(action, reward, r_binsize, r_throughput)] per step of one
    ["episode"] progress record; [[]] for records without the step
    stream. *)

val of_records :
  ?sketch_bits:int -> ?sketch_seed:int -> ?state_dim:int ->
  like:universe -> Json.t list -> t
(** Brute-force recompute from progress.jsonl records (in file order):
    episode step streams are re-indexed to global steps and merged
    with the tick records so every {!sample} lands exactly where the
    streaming table sampled it. The result is {!equal} to the
    streaming table of the same run. *)

val to_dot : ?k:int -> t -> string
(** Heat-annotated Graphviz rendering of the universe, structurally
    compatible with [Posetrl_odg.Graph.to_dot] ([k] is the critical-
    node degree threshold): visited edges colour-ramp grey → red with
    penwidth and a count label by log-scaled visits, unvisited edges
    dashed light-grey. *)
