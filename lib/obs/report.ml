(* Trace report aggregator: JSONL in, sorted tables out. *)

open Posetrl_support

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_cum : float;
  sr_self : float;
  sr_max : float;
}

type pass_row = {
  pr_pass : string;
  pr_count : int;
  pr_cum : float;
  pr_self : float;
  pr_d_insns : int;
}

type action_row = {
  ar_action : int;
  ar_passes : string;
  ar_count : int;
  ar_cum : float;
  ar_d_size : float;
  ar_mean_reward : float;
}

let read_jsonl (path : string) : Event.t list =
  let ic = open_in path in
  let events = ref [] in
  let lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          incr lineno;
          if String.trim line <> "" then
            match Event.of_json (Json.of_string line) with
            | e -> events := e :: !events
            | exception (Json.Parse_error _ | Invalid_argument _) ->
              failwith
                (Printf.sprintf "%s:%d: malformed trace line" path !lineno)
        done;
        assert false
      with End_of_file -> List.rev !events)

(* fold rows into a table keyed by [key], then sort by cum desc *)
let group_fold (type k) (key : Event.t -> k option)
    (events : Event.t list) : (k * Event.t list) list =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match key e with
      | None -> ()
      | Some k ->
        (match Hashtbl.find_opt tbl k with
         | Some l -> l := e :: !l
         | None ->
           Hashtbl.add tbl k (ref [ e ]);
           order := k :: !order))
    events;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let by_cum_desc cum a b = compare (cum b) (cum a)

let spans (events : Event.t list) : span_row list =
  group_fold (fun e -> Some e.Event.name) events
  |> List.map (fun (name, es) ->
         { sr_name = name;
           sr_count = List.length es;
           sr_cum = List.fold_left (fun a e -> a +. e.Event.dur) 0.0 es;
           sr_self = List.fold_left (fun a e -> a +. e.Event.self) 0.0 es;
           sr_max = List.fold_left (fun a e -> Float.max a e.Event.dur) 0.0 es })
  |> List.sort (by_cum_desc (fun r -> r.sr_cum))

let passes (events : Event.t list) : pass_row list =
  group_fold (fun e -> Event.attr_string e "pass") events
  |> List.map (fun (pass, es) ->
         { pr_pass = pass;
           pr_count = List.length es;
           pr_cum = List.fold_left (fun a e -> a +. e.Event.dur) 0.0 es;
           pr_self = List.fold_left (fun a e -> a +. e.Event.self) 0.0 es;
           pr_d_insns =
             List.fold_left
               (fun a e -> a + Option.value ~default:0 (Event.attr_int e "d_insns"))
               0 es })
  |> List.sort (by_cum_desc (fun r -> r.pr_cum))

let actions (events : Event.t list) : action_row list =
  group_fold
    (fun e ->
      if e.Event.name = "posetrl.env.step" then Event.attr_int e "action"
      else None)
    events
  |> List.map (fun (action, es) ->
         let n = List.length es in
         { ar_action = action;
           ar_passes =
             (match List.find_map (fun e -> Event.attr_string e "passes") es with
              | Some p -> p
              | None -> "");
           ar_count = n;
           ar_cum = List.fold_left (fun a e -> a +. e.Event.dur) 0.0 es;
           ar_d_size =
             List.fold_left
               (fun a e -> a +. Option.value ~default:0.0 (Event.attr_float e "d_size"))
               0.0 es;
           ar_mean_reward =
             List.fold_left
               (fun a e -> a +. Option.value ~default:0.0 (Event.attr_float e "reward"))
               0.0 es
             /. float_of_int (max 1 n) })
  |> List.sort (by_cum_desc (fun r -> r.ar_cum))

let top k l = List.filteri (fun i _ -> i < k) l

let secs s = Printf.sprintf "%.6f" s

let render ?(top_k = 20) (events : Event.t list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d trace events\n\n" (List.length events));
  let span_tbl =
    Table.create ~title:(Printf.sprintf "span summary (top %d by cumulative time)" top_k)
      ~headers:[ "span"; "count"; "cum s"; "self s"; "max s" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row span_tbl
        [ r.sr_name; string_of_int r.sr_count; secs r.sr_cum; secs r.sr_self;
          secs r.sr_max ])
    (top top_k (spans events));
  Buffer.add_string buf (Table.render span_tbl);
  (match passes events with
   | [] -> ()
   | ps ->
     let t =
       Table.create ~title:"per-pass cumulative time and size delta"
         ~headers:[ "pass"; "runs"; "cum s"; "self s"; "sum d_insns" ]
         ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
         ()
     in
     List.iter
       (fun r ->
         Table.add_row t
           [ r.pr_pass; string_of_int r.pr_count; secs r.pr_cum;
             secs r.pr_self; string_of_int r.pr_d_insns ])
       ps;
     Buffer.add_char buf '\n';
     Buffer.add_string buf (Table.render t));
  (match actions events with
   | [] -> ()
   | rs ->
     let t =
       Table.create ~title:"per-action (env.step) time, size delta, reward"
         ~headers:[ "action"; "sub-sequence"; "steps"; "cum s"; "sum d_size B"; "mean reward" ]
         ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
         ()
     in
     List.iter
       (fun r ->
         Table.add_row t
           [ string_of_int r.ar_action; r.ar_passes; string_of_int r.ar_count;
             secs r.ar_cum; Printf.sprintf "%.0f" r.ar_d_size;
             Printf.sprintf "%.3f" r.ar_mean_reward ])
       rs;
     Buffer.add_char buf '\n';
     Buffer.add_string buf (Table.render t));
  Buffer.contents buf
