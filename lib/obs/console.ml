(* Console output helper: the single funnel for human-readable progress
   lines, so CLI/bench output goes through the observability layer
   rather than scattered bare Printf calls. *)

let out : out_channel ref = ref stdout

let set_channel oc = out := oc

let info fmt = Printf.fprintf !out fmt

let print_metrics ?(title = "metrics") ?(r = Metrics.global) () =
  output_string !out (Metrics.render ~title (Metrics.snapshot ~r ()));
  flush !out
