(** Minimal dependency-free HTTP/1.1 server for live telemetry.

    Single-threaded and polling-friendly: the listening socket is
    non-blocking, and {!pump} — called from the trainer tick — accepts
    and serves every pending connection, so no threads are needed.
    Responses always close the connection (no keep-alive): scrapers and
    [curl] reconnect per request, which keeps the server stateless.

    The request surface is deliberately tiny (GET only, path + query
    ignored beyond the path); everything else is parsed to an error
    response rather than an exception, so a malformed client can never
    take down a training run. *)

type request = {
  meth : string;  (** request method, upper-case as sent *)
  path : string;  (** path component only; the query string is dropped *)
}

type response = {
  status : int;
  content_type : string;
  body : string;
}

type handler = request -> response

val response : ?status:int -> ?content_type:string -> string -> response
(** Defaults: status 200, content-type [text/plain; charset=utf-8]. *)

val json_response : ?status:int -> Json.t -> response

val parse_request : string -> (request, response) result
(** Parse the head of a raw request. Errors come back as ready-to-send
    responses: 400 for a malformed request line, 405 for any method
    other than GET. *)

val render_response : response -> string
(** Full HTTP/1.1 wire bytes: status line, [Content-Type],
    [Content-Length], [Connection: close], blank line, body. *)

val telemetry_handler :
  ?registry:Metrics.t ->
  ?runs_root:string ->
  ?alerts:(unit -> Json.t list) ->
  ?coverage:(unit -> Json.t option) ->
  health:(unit -> Json.t) ->
  unit ->
  handler
(** The standard route table:
    - [GET /metrics] — Prometheus exposition of [registry] ({!Expo});
    - [GET /healthz] — the [health] thunk's JSON (status, uptime,
      current step/episode...);
    - [GET /alerts] — JSON array of the [alerts] thunk's records
      (watchdog alerts fired so far this run; [[]] by default);
    - [GET /coverage] — the [coverage] thunk's document (the live
      {!Coverage} table; 404 when the thunk yields [None], the default);
    - [GET /runs] — JSON array of the {!Run} ledger under [runs_root];
    - [GET /runs/:id/progress] — that run's progress records;
    - anything else — a JSON 404. *)

type t
(** A listening server. *)

val create : ?backlog:int -> port:int -> handler:handler -> unit -> t
(** Bind and listen on [127.0.0.1:port] ([port = 0] picks a free port —
    read it back with {!port}). @raise Unix.Unix_error if the bind
    fails (e.g. the port is taken). *)

val port : t -> int

val pump : t -> unit
(** Accept and serve every connection currently pending; returns
    immediately when none are. Per-client errors (torn connections,
    read timeouts) are swallowed. Call this from a training/eval loop
    tick. *)

val close : t -> unit
