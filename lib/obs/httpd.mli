(** Minimal dependency-free HTTP/1.1 server for live telemetry and the
    optimization service.

    Single-threaded and polling-friendly: the listening socket is
    non-blocking, and {!pump} — called from the trainer tick or the
    serve daemon's loop — accepts and serves every pending connection,
    so no threads are needed. Responses always close the connection (no
    keep-alive): scrapers and [curl] reconnect per request, which keeps
    the server stateless.

    The request surface is deliberately tiny (GET and POST, path + query
    ignored beyond the path); everything else is parsed to an error
    response rather than an exception, so a malformed client can never
    take down a training run or the serve daemon. POST bodies are read
    against their declared [Content-Length] with a hard size bound: an
    oversized declaration is a 413, a missing/invalid/torn one a 400 —
    never a raise, never an unbounded buffer. *)

type request = {
  meth : string;  (** request method, upper-case as sent *)
  path : string;  (** path component only; the query string is dropped *)
  body : string;  (** POST body, exactly [Content-Length] bytes; [""] on GET *)
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
      (** extra response headers (e.g. [Retry-After] on a 429) *)
  body : string;
}

type handler = request -> response

val default_max_body : int
(** 1 MiB — the default bound on a POST body. *)

val response :
  ?status:int -> ?content_type:string -> ?headers:(string * string) list ->
  string -> response
(** Defaults: status 200, content-type [text/plain; charset=utf-8],
    no extra headers. *)

val json_response :
  ?status:int -> ?headers:(string * string) list -> Json.t -> response

val error_response :
  ?headers:(string * string) list -> int -> string -> response
(** [{"error": msg}] as JSON under the given status. *)

val parse_request : ?max_body:int -> string -> (request, response) result
(** Parse a complete raw request (head and body). Errors come back as
    ready-to-send responses: 400 for a malformed request line, a POST
    without a valid [Content-Length], or a body shorter than declared
    (torn client); 405 for any method other than GET/POST; 413 for a
    body declared larger than [max_body]. *)

val render_response : response -> string
(** Full HTTP/1.1 wire bytes: status line, [Content-Type],
    [Content-Length], extra headers, [Connection: close], blank line,
    body. *)

val telemetry_handler :
  ?registry:Metrics.t ->
  ?runs_root:string ->
  ?alerts:(unit -> Json.t list) ->
  ?coverage:(unit -> Json.t option) ->
  health:(unit -> Json.t) ->
  unit ->
  handler
(** The standard route table:
    - [GET /metrics] — Prometheus exposition of [registry] ({!Expo});
    - [GET /healthz] — the [health] thunk's JSON (status, uptime,
      current step/episode...);
    - [GET /alerts] — JSON array of the [alerts] thunk's records
      (watchdog alerts fired so far this run; [[]] by default);
    - [GET /coverage] — the [coverage] thunk's document (the live
      {!Coverage} table; 404 when the thunk yields [None], the default);
    - [GET /runs] — JSON array of the {!Run} ledger under [runs_root];
    - [GET /runs/:id/progress] — that run's progress records;
    - anything else — a JSON 404. *)

type t
(** A listening server. *)

type client
(** An accepted connection whose request has been read; owned by the
    caller until {!respond} (which writes and closes it). *)

val create :
  ?backlog:int -> ?max_body:int -> port:int -> handler:handler -> unit -> t
(** Bind and listen on [127.0.0.1:port] ([port = 0] picks a free port —
    read it back with {!port}). [max_body] bounds POST bodies
    ({!default_max_body}). @raise Unix.Unix_error if the bind fails
    (e.g. the port is taken). *)

val port : t -> int

val accept : t -> (client * (request, response) result) option
(** Accept one pending connection and read its request fully (bounded,
    with a receive timeout); [None] when none is pending. An [Error] is
    the ready-to-send parse-failure response. Every returned client must
    be passed to {!respond} exactly once — this is how a batching layer
    (lib/serve) collects many requests before answering any of them. *)

val respond : client -> response -> unit
(** Write the response and close the connection; socket errors are
    swallowed, double-responds are no-ops. *)

val pump : t -> unit
(** Accept and serve every connection currently pending through the
    [handler]; returns immediately when none are. Per-client errors
    (torn connections, read timeouts) are swallowed. Call this from a
    training/eval loop tick. *)

val close : t -> unit
