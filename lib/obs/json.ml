(* Minimal JSON used by the JSONL trace sink and the report aggregator.
   Only the subset the trace schema needs: objects, arrays, strings,
   ints, floats, bools, null. No external dependency, so the obs layer
   stays installable in the sealed container. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_string (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec write (b : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* %.17g round-trips every finite double through float_of_string; keep a
       decimal point so integral floats stay floats when parsed back *)
    if Float.is_finite f then begin
      let s = Printf.sprintf "%.17g" f in
      let s =
        if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
        else s ^ ".0"
      in
      Buffer.add_string b s
    end
    else Buffer.add_string b "null"
  | Str s -> Buffer.add_string b (escape_string s)
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (escape_string k);
        Buffer.add_char b ':';
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string (j : t) : string =
  let b = Buffer.create 128 in
  write b j;
  Buffer.contents b

(* --- parsing (recursive descent) --------------------------------------- *)

exception Parse_error of string

let of_string (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "short unicode escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* trace strings are ASCII; clamp the rest *)
           Buffer.add_char b (if code < 128 then Char.chr code else '?')
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member (key : string) (j : t) : t option =
  match j with
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
