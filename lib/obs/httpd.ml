(* Minimal HTTP/1.1 telemetry server over Unix sockets.

   Design constraints (see DESIGN.md §8):
   - no threads: the listener is non-blocking and [pump] is driven from
     the trainer tick, so serving telemetry can never deadlock training;
   - no keep-alive: one request, one response, close — the server holds
     no per-client state between pumps;
   - never raise into the training loop: parse failures become 4xx
     responses, socket failures are swallowed per client. *)

type request = { meth : string; path : string }

type response = {
  status : int;
  content_type : string;
  body : string;
}

type handler = request -> response

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    (body : string) : response =
  { status; content_type; body }

let json_response ?(status = 200) (j : Json.t) : response =
  { status;
    content_type = "application/json";
    body = Json.to_string j ^ "\n" }

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let error_response status msg =
  json_response ~status (Json.Obj [ ("error", Json.Str msg) ])

(* first line of the head: METHOD SP target SP version *)
let parse_request (raw : string) : (request, response) result =
  let line =
    match String.index_opt raw '\n' with
    | Some i ->
      let l = String.sub raw 0 i in
      if String.length l > 0 && l.[String.length l - 1] = '\r' then
        String.sub l 0 (String.length l - 1)
      else l
    | None -> raw
  in
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
    if meth <> "GET" then
      Error (error_response 405 (Printf.sprintf "method %s not allowed" meth))
    else
      let path =
        match String.index_opt target '?' with
        | Some i -> String.sub target 0 i
        | None -> target
      in
      Ok { meth; path }
  | _ -> Error (error_response 400 "malformed request line")

let render_response (r : response) : string =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status (status_reason r.status) r.content_type
    (String.length r.body) r.body

(* --- the standard telemetry routes ---------------------------------------- *)

let run_summary (i : Run.info) : Json.t =
  Json.Obj
    [ ("id", Json.Str i.Run.run_id);
      ("dir", Json.Str i.Run.run_dir);
      ("manifest", i.Run.manifest) ]

let telemetry_handler ?(registry = Metrics.global)
    ?(runs_root = Run.default_root)
    ?(alerts : unit -> Json.t list = fun () -> [])
    ?(coverage : unit -> Json.t option = fun () -> None)
    ~(health : unit -> Json.t) () : handler =
 fun (req : request) ->
  match String.split_on_char '/' req.path with
  | [ ""; "metrics" ] -> response (Expo.scrape ~r:registry ())
  | [ ""; "healthz" ] -> json_response (health ())
  | [ ""; "alerts" ] -> json_response (Json.Arr (alerts ()))
  | [ ""; "coverage" ] ->
    (match coverage () with
     | Some doc -> json_response doc
     | None -> error_response 404 "no coverage table for this run")
  | [ ""; "runs" ] ->
    json_response (Json.Arr (List.map run_summary (Run.list_runs ~root:runs_root ())))
  | [ ""; "runs"; id; "progress" ] ->
    (match Run.find ~root:runs_root id with
     | info ->
       let records, dropped = Run.read_progress info in
       json_response
         (Json.Obj
            [ ("id", Json.Str info.Run.run_id);
              ("dropped", Json.Int dropped);
              ("records", Json.Arr records) ])
     | exception Failure msg -> error_response 404 msg)
  | _ -> error_response 404 (Printf.sprintf "no route for %s" req.path)

(* --- the socket loop ------------------------------------------------------- *)

type t = {
  sock : Unix.file_descr;
  t_port : int;
  handler : handler;
  mutable closed : bool;
}

let create ?(backlog = 16) ~(port : int) ~(handler : handler) () : t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock backlog;
     Unix.set_nonblock sock
   with e ->
     Unix.close sock;
     raise e);
  let t_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; t_port; handler; closed = false }

let port (t : t) = t.t_port

(* serve one accepted client: read the request head (bounded, with a
   receive timeout so a silent client cannot stall the pump), respond,
   close. All failures are local to the client. *)
let serve_client (t : t) (client : Unix.file_descr) : unit =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.clear_nonblock client;
        Unix.setsockopt_float client Unix.SO_RCVTIMEO 1.0;
        Unix.setsockopt_float client Unix.SO_SNDTIMEO 1.0;
        let buf = Bytes.create 8192 in
        let n = Unix.read client buf 0 (Bytes.length buf) in
        let resp =
          if n <= 0 then error_response 400 "empty request"
          else
            match parse_request (Bytes.sub_string buf 0 n) with
            | Ok req ->
              (try t.handler req
               with e ->
                 error_response 500 (Printexc.to_string e))
            | Error resp -> resp
        in
        let bytes = Bytes.of_string (render_response resp) in
        let len = Bytes.length bytes in
        let written = ref 0 in
        while !written < len do
          written :=
            !written + Unix.write client bytes !written (len - !written)
        done
      with Unix.Unix_error _ | Sys_error _ -> ())

let pump (t : t) : unit =
  if not t.closed then begin
    let continue = ref true in
    while !continue do
      match Unix.accept t.sock with
      | client, _ -> serve_client t client
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
      | exception Unix.Unix_error _ -> continue := false
    done
  end

let close (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
